(* The command-line front end.

   Subcommands mirror the artifact's experiments:
     pipeline  — E1: deny / profile / enforce on the minimal example
     browse    — E2: run a page + script through a chosen configuration
     exploit   — E3: the CVE-style attack on base and mpk builds
     micro     — the §5.2 micro-benchmarks and the Figure-3 sweep
     suite     — run one benchmark suite and print its table
     trace     — run one benchmark with telemetry and export the trace
     report    — attribution report: site heat, flow matrix, sampled
                 flamegraph stacks, Prometheus exposition
     audit     — run one benchmark with the heap census on, then scan the
                 final heap for MT objects reachable from U
     doctor    — render a flight-recorder dump as an incident report *)

open Cmdliner

let mode_conv =
  let parse = function
    | "base" -> Ok Pkru_safe.Config.Base
    | "alloc" -> Ok Pkru_safe.Config.Alloc
    | "profiling" -> Ok Pkru_safe.Config.Profiling
    | "mpk" -> Ok Pkru_safe.Config.Mpk
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S (base|alloc|profiling|mpk)" s))
  in
  Arg.conv (parse, fun fmt mode -> Format.pp_print_string fmt (Pkru_safe.Config.mode_to_string mode))

let mitigation_conv =
  let parse s =
    match Runtime.Mitigator.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S (abort|emulate|promote|degrade)" s))
  in
  Arg.conv
    (parse, fun fmt p -> Format.pp_print_string fmt (Runtime.Mitigator.policy_to_string p))

let mitigation_flag =
  Arg.(value & opt (some mitigation_conv) None
       & info [ "mitigation" ] ~docv:"POLICY"
           ~doc:"Fault-recovery policy for enforcement (mpk) runs: abort (paper default), \
                 emulate, promote, or degrade")

let fail_on_error = function
  | Ok v -> v
  | Error msg -> failwith msg

(* Execution-tier selection and fast-tier layer toggles, shared by
   `browse` and `report`.  Every tier simulates the same machine: the
   bytecode tiers are bit-identical to each other by construction, so
   these flags change host wall-clock only (plus the AST tier's different
   — but still deterministic — cycle accounting). *)
let tier_conv =
  let parse = function
    | "ast" -> Ok Engine.Ast_tier
    | "bytecode" -> Ok Engine.Bytecode_tier
    | "threaded" -> Ok Engine.Threaded_tier
    | s -> Error (`Msg (Printf.sprintf "unknown tier %S (ast|bytecode|threaded)" s))
  in
  Arg.conv
    ( parse,
      fun fmt t ->
        Format.pp_print_string fmt
          (match t with
          | Engine.Ast_tier -> "ast"
          | Engine.Bytecode_tier -> "bytecode"
          | Engine.Threaded_tier -> "threaded") )

let tier_flag =
  Arg.(value & opt tier_conv Engine.Ast_tier
       & info [ "tier" ] ~docv:"TIER"
           ~doc:"Engine execution tier: ast (default), bytecode (the reference interpreter) \
                 or threaded (fast tier: closure-compiled dispatch, superinstructions, \
                 inline caches — simulates bit-identically to bytecode)")

let engine_opts_term =
  let off names doc = Arg.(value & flag & info names ~doc) in
  let make no_super no_var no_prop no_batch =
    {
      Engine.Threaded.superinstructions = not no_super;
      var_ic = not no_var;
      prop_ic = not no_prop;
      batched_slots = not no_batch;
    }
  in
  Term.(
    const make
    $ off [ "no-superinstructions" ] "Disable superinstruction fusion (threaded tier only)"
    $ off [ "no-var-ic" ] "Disable variable inline caches (threaded tier only)"
    $ off [ "no-prop-ic" ] "Disable property (shape) inline caches (threaded tier only)"
    $ off [ "no-batched-slots" ] "Disable the batched-TLB slot fast path (threaded tier only)")

let engine_tier_digest tier browser =
  (* Only the fast tier has ICs / superinstructions to report on. *)
  if tier = Engine.Threaded_tier then begin
    let engine = Browser.engine browser in
    let v = Engine.Eval.ic_stats (Engine.evaluator engine)
    and s = Engine.threaded_stats engine in
    Printf.printf
      "engine[threaded]: var IC %d/%d hits, prop IC %d/%d hits, %d superinstruction exec(s)\n"
      v.Engine.Eval.var_hits
      (v.Engine.Eval.var_hits + v.Engine.Eval.var_misses)
      s.Engine.Threaded.prop_hits
      (s.Engine.Threaded.prop_hits + s.Engine.Threaded.prop_misses)
      s.Engine.Threaded.super_execs
  end

(* --flight FILE: arm the black-box recorder for the duration of a run;
   any post-mortem dump lands in FILE, ready for `doctor`. *)
let flight_flag =
  Arg.(value & opt (some string) None
       & info [ "flight" ] ~docv:"FILE"
           ~doc:"Arm the flight recorder; post-mortem dumps (gate-verify kills, unrecovered \
                 faults, degradations) are written to FILE for `doctor`")

let with_flight ?context flight f =
  match flight with
  | None -> f ()
  | Some path ->
    let recorder = Telemetry.Flight.arm ~path () in
    (match context with Some c -> Telemetry.Flight.set_context recorder c | None -> ());
    Fun.protect
      ~finally:(fun () ->
        if Telemetry.Flight.dump_total recorder > 0 then
          Printf.printf "flight recorder: %d dump(s), latest written to %s\n"
            (Telemetry.Flight.dump_total recorder) path;
        Telemetry.Flight.disarm ())
      f

(* --- pipeline (E1) --- *)

let e1_source () =
  let open Ir in
  let m = Module_ir.create () in
  let u = Builder.create ~name:"untrusted_write" ~crate:"clib" ~nparams:1 () in
  Builder.store u ~src:(Instr.Imm 1337) ~addr:(Instr.Reg 0) ();
  Builder.ret u None;
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let shared = Builder.alloc f (Instr.Imm 64) in
  Builder.store f ~src:(Instr.Imm 0) ~addr:(Instr.Reg shared) ();
  ignore (Builder.call f "untrusted_write" [ Instr.Reg shared ]);
  let v = Builder.load f (Instr.Reg shared) in
  Builder.ret f (Some (Instr.Reg v));
  Module_ir.add_func m (Builder.finish f);
  m

let run_pipeline () =
  print_endline "E1: three-step pipeline on the minimal mixed-language program";
  print_endline "  (trusted main allocates a value; untrusted clib writes 1337 into it)\n";
  let source = e1_source () in
  print_endline "[1/3] enforcement build with an empty profile:";
  let deny =
    fail_on_error
      (Toolchain.Pipeline.build ~profile:(Runtime.Profile.create ()) ~mode:Pkru_safe.Config.Mpk
         source)
  in
  (match Toolchain.Interp.run deny.Toolchain.Pipeline.interp "main" [] with
  | v -> Printf.printf "  unexpected success: %d\n" v
  | exception Vmm.Fault.Unhandled fault ->
    Printf.printf "  crashed as expected: %s\n" (Vmm.Fault.to_string fault));
  print_endline "[2/3] profiling build, one profiling input:";
  let profile =
    fail_on_error
      (Toolchain.Pipeline.collect_profile source
         ~inputs:[ (fun interp -> ignore (Toolchain.Interp.run interp "main" [])) ])
  in
  Printf.printf "  profile records %d shared allocation site(s)\n" (Runtime.Profile.cardinal profile);
  print_endline "[3/3] enforcement build with the collected profile:";
  let final = fail_on_error (Toolchain.Pipeline.build ~profile ~mode:Pkru_safe.Config.Mpk source) in
  Printf.printf "  main() = %d (allocation now shared through MU; 0 -> 1337)\n"
    (Toolchain.Interp.run final.Toolchain.Pipeline.interp "main" []);
  Printf.printf "  pass stats: %d sites, %d moved, %d wrappers\n"
    final.Toolchain.Pipeline.pass_stats.Ir.Passes.alloc_sites
    final.Toolchain.Pipeline.pass_stats.Ir.Passes.sites_moved
    final.Toolchain.Pipeline.pass_stats.Ir.Passes.wrappers;
  `Ok ()

(* --- browse (E2-style) --- *)

let default_page = {|<div id="app" data="hello"><p>alpha</p><p>beta</p></div>|}

let default_script =
  {|var app = domQueryTag("div")[0];
var d = domGetAttribute(app, "data");
print("data = " + d);
print("innerHTML = " + domGetInnerHTML(app));
print("children = " + domChildCount(app));|}

let run_browse mode page script mitigation flight tier engine_opts =
  let profile =
    match mode with
    | Pkru_safe.Config.Alloc | Pkru_safe.Config.Mpk ->
      (* Profile the same workload first, as the pipeline prescribes. *)
      let env =
        fail_on_error (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling))
      in
      let b = Browser.create env in
      Browser.load_page b page;
      ignore (Browser.exec_script b script);
      Pkru_safe.Env.recorded_profile env
    | Pkru_safe.Config.Base | Pkru_safe.Config.Profiling -> Runtime.Profile.create ()
  in
  let env =
    fail_on_error (Pkru_safe.Env.create ~profile (Pkru_safe.Config.make ?mitigation mode))
  in
  let browser = Browser.create env in
  Engine.reset_stats (Browser.engine browser);
  Engine.Threaded.with_opts engine_opts (fun () ->
      with_flight ~context:(Pkru_safe.Env.flight_context env) flight (fun () ->
          Browser.load_page browser page;
          match Browser.exec_script ~tier browser script with
          | _ -> ()
          | exception Vmm.Fault.Unhandled fault ->
            Printf.printf "script killed: %s\n" (Vmm.Fault.to_string fault)
          | exception Sim.Signals.Process_killed msg -> Printf.printf "process killed: %s\n" msg
          | exception Runtime.Mitigator.Degraded fault ->
            Printf.printf "request degraded: %s\n" (Vmm.Fault.to_string fault)));
  List.iter print_endline (Browser.console browser);
  (match Pkru_safe.Env.mitigator env with
  | Some m when Runtime.Mitigator.incidents m > 0 ->
    Printf.printf "mitigation[%s]: %d incident(s)%s%s\n"
      (Runtime.Mitigator.policy_to_string (Runtime.Mitigator.policy m))
      (Runtime.Mitigator.incidents m)
      (String.concat ""
         (List.map
            (fun (o, n) -> Printf.sprintf " %s=%d" o n)
            (Runtime.Mitigator.outcome_counts m)))
      (match Runtime.Mitigator.promoted_sites m with
      | [] -> ""
      | sites -> "; promoted: " ^ String.concat ", " sites)
  | _ -> ());
  Printf.printf "[%s] cycles=%d transitions=%d %%MU=%.2f sites(moved/used)=%d/%d\n"
    (Pkru_safe.Config.mode_to_string mode)
    (Pkru_safe.Env.cycles env) (Pkru_safe.Env.transitions env)
    (Pkru_safe.Env.percent_untrusted_bytes env)
    (Pkru_safe.Env.sites_moved env) (Pkru_safe.Env.sites_used env);
  engine_tier_digest tier browser;
  `Ok ()

(* --- exploit (E3) --- *)

let run_exploit () =
  print_endline "E3: CVE-2019-11707-style arbitrary write against the browser secret\n";
  List.iter
    (fun mode ->
      match Exploit.run mode with
      | Ok outcome -> Format.printf "%a@." Exploit.pp_outcome outcome
      | Error msg -> Printf.printf "error: %s\n" msg)
    [ Pkru_safe.Config.Base; Pkru_safe.Config.Mpk ];
  `Ok ()

(* --- micro --- *)

let run_micro () =
  List.iter
    (fun (r : Workloads.Microbench.result) ->
      Printf.printf "%-10s ungated %6.1f  gated %6.1f  overhead %.2fx\n"
        r.Workloads.Microbench.name r.Workloads.Microbench.ungated_cycles_per_call
        r.Workloads.Microbench.gated_cycles_per_call r.Workloads.Microbench.overhead_x)
    (Workloads.Microbench.run ());
  print_endline "\nFigure 3 sweep:";
  List.iter
    (fun (loops, overhead) -> Printf.printf "  loops=%3d  normalized=%.2f\n" loops overhead)
    (Workloads.Microbench.sweep ~loop_counts:[ 0; 25; 50; 100; 200 ] ());
  `Ok ()

(* --- suite --- *)

(* Per-bench telemetry digest for `suite --telemetry`: counts from each
   mpk run's trace, then exact gate round-trip percentiles pooled across
   the suite. *)
let print_suite_telemetry (result : Workloads.Runner.suite_result) =
  let traced =
    List.filter_map
      (fun (r : Workloads.Runner.bench_result) ->
        Option.map
          (fun sink -> (r.Workloads.Runner.bench, sink))
          r.Workloads.Runner.mpk.Workloads.Runner.trace)
      result.Workloads.Runner.bench_results
  in
  if traced <> [] then begin
    print_endline "\nTelemetry (mpk configuration, per benchmark):";
    Util.Table.print
      ~header:[ "benchmark"; "events"; "gate"; "wrpkru"; "alloc"; "free"; "faults" ]
      (List.map
         (fun (name, sink) ->
           [
             name;
             string_of_int (Telemetry.Sink.events_total sink);
             string_of_int (Telemetry.Sink.gate_transitions sink);
             string_of_int (Telemetry.Sink.count sink "wrpkru");
             string_of_int (Telemetry.Sink.count sink "alloc");
             string_of_int (Telemetry.Sink.count sink "free");
             string_of_int
               (Telemetry.Sink.count sink "mpk_fault" + Telemetry.Sink.count sink "page_fault");
           ])
         traced);
    match List.concat_map (fun (_, sink) -> Telemetry.Export.gate_latencies sink) traced with
    | [] -> ()
    | latencies ->
      Printf.printf "gate round-trip (%d pairs): p50 %.0f  p90 %.0f  p99 %.0f cycles\n"
        (List.length latencies)
        (Util.Stats.percentile 50.0 latencies)
        (Util.Stats.percentile 90.0 latencies)
        (Util.Stats.percentile 99.0 latencies)
  end

let run_suite name telemetry =
  match Workloads.Registry.suite_of_name name with
  | Error msg -> `Error (false, msg)
  | Ok suite ->
    let tty = Unix.isatty Unix.stdout in
    let result =
      Workloads.Runner.run_suite
        ~progress:(fun bench -> if tty then Printf.printf "  %-36s\r%!" bench)
        ~telemetry suite
    in
    if tty then Printf.printf "%-48s\r%!" "";
    Util.Table.print
      ~header:[ "benchmark"; "alloc %"; "mpk %"; "transitions"; "%MU" ]
      (List.map
         (fun (r : Workloads.Runner.bench_result) ->
           [
             r.Workloads.Runner.bench;
             Printf.sprintf "%+.2f" r.Workloads.Runner.alloc_overhead_pct;
             Printf.sprintf "%+.2f" r.Workloads.Runner.mpk_overhead_pct;
             string_of_int r.Workloads.Runner.mpk.Workloads.Runner.transitions;
             Printf.sprintf "%.2f" r.Workloads.Runner.mpk.Workloads.Runner.pct_mu;
           ])
         result.Workloads.Runner.bench_results);
    Printf.printf "\nmean: alloc %+.2f%%  mpk %+.2f%%  transitions %d  %%MU %.2f\n"
      result.Workloads.Runner.mean_alloc_pct result.Workloads.Runner.mean_mpk_pct
      result.Workloads.Runner.total_transitions result.Workloads.Runner.mean_pct_mu;
    if telemetry then print_suite_telemetry result;
    `Ok ()

(* --- trace: one benchmark under telemetry, exported as a trace file --- *)

let trace_format_conv =
  let parse = function
    | "chrome" -> Ok `Chrome
    | "json" -> Ok `Json
    | "summary" -> Ok `Summary
    | s -> Error (`Msg (Printf.sprintf "unknown format %S (chrome|json|summary)" s))
  in
  Arg.conv
    ( parse,
      fun fmt f ->
        Format.pp_print_string fmt
          (match f with `Chrome -> "chrome" | `Json -> "json" | `Summary -> "summary") )

(* Replays the methodology for a single benchmark: enforcement modes get a
   profile collected from the same workload first. *)
let profile_for ~mode (bench : Workloads.Bench_def.bench) =
  match mode with
  | Pkru_safe.Config.Alloc | Pkru_safe.Config.Mpk ->
    let suite =
      { Workloads.Bench_def.suite_name = bench.Workloads.Bench_def.name; benches = [ bench ] }
    in
    Workloads.Runner.profile_suite suite
  | Pkru_safe.Config.Base | Pkru_safe.Config.Profiling -> Runtime.Profile.create ()

let run_trace bench_name mode format output flight =
  match Workloads.Registry.bench_of_name bench_name with
  | Error msg -> `Error (false, msg)
  | Ok bench ->
    let profile = profile_for ~mode bench in
    let m =
      with_flight flight (fun () ->
          Workloads.Runner.run_config ~telemetry:true ~mode ~profile bench)
    in
    let sink =
      match m.Workloads.Runner.trace with
      | Some sink -> sink
      | None -> assert false
    in
    let rendered =
      match format with
      | `Chrome -> Util.Json.to_string_pretty (Telemetry.Export.chrome_trace sink) ^ "\n"
      | `Json -> Util.Json.to_string_pretty (Telemetry.Export.to_json sink) ^ "\n"
      | `Summary -> Telemetry.Export.summary sink
    in
    (match output with
    | Some path -> (
      match Out_channel.with_open_text path (fun oc -> output_string oc rendered) with
      | () -> `Ok (Printf.printf "trace written to %s\n" path)
      | exception Sys_error msg -> `Error (false, "cannot write trace: " ^ msg))
    | None -> `Ok (print_string rendered))
    |> function
    | `Error _ as e -> e
    | `Ok () ->
      Printf.printf
        "[%s] %s: cycles=%d events=%d (%d dropped from trace)  gate events=%d  transitions=%d\n"
        (Pkru_safe.Config.mode_to_string mode)
        bench_name m.Workloads.Runner.cycles
        (Telemetry.Sink.events_total sink)
        (Telemetry.Sink.dropped sink)
        (Telemetry.Sink.gate_transitions sink)
        m.Workloads.Runner.transitions;
      `Ok ()

(* --- report: attribution + sampled-flamegraph analysis of one benchmark --- *)

let report_format_conv =
  let parse = function
    | "table" -> Ok `Table
    | "json" -> Ok `Json
    | "prom" -> Ok `Prom
    | "folded" -> Ok `Folded
    | s -> Error (`Msg (Printf.sprintf "unknown format %S (table|json|prom|folded)" s))
  in
  Arg.conv
    ( parse,
      fun fmt f ->
        Format.pp_print_string fmt
          (match f with `Table -> "table" | `Json -> "json" | `Prom -> "prom" | `Folded -> "folded")
    )

(* report --opcodes: opcode / adjacent-pair frequency profile of the
   reference bytecode interpreter over one benchmark.  This is the data
   the fast tier's superinstruction set is chosen from (EXPERIMENTS.md
   records the suite-wide ranking); collection is host-side only, so the
   profiled run is bit-identical to an unprofiled one. *)
let run_opcode_report bench_name mode format output =
  match Workloads.Registry.bench_of_name bench_name with
  | Error msg -> `Error (false, msg)
  | Ok bench -> (
    let profile = profile_for ~mode bench in
    let st, m =
      Engine.Opstats.collect (fun () ->
          Workloads.Runner.run_config ~engine_tier:Engine.Bytecode_tier ~mode ~profile bench)
    in
    match
      match format with
      | `Table ->
        Ok
          (Printf.sprintf "opcode profile: %s [%s] (reference bytecode tier, %d cycles)\n\n"
             bench_name
             (Pkru_safe.Config.mode_to_string mode)
             m.Workloads.Runner.cycles
          ^ Engine.Opstats.render st)
      | `Json ->
        Ok
          (Util.Json.to_string_pretty
             (Util.Json.Obj
                [
                  ("bench", Util.Json.String bench_name);
                  ("mode", Util.Json.String (Pkru_safe.Config.mode_to_string mode));
                  ("cycles", Util.Json.Int m.Workloads.Runner.cycles);
                  ("opcodes", Engine.Opstats.to_json st);
                ])
          ^ "\n")
      | `Prom | `Folded -> Error "--opcodes supports only table or json output"
    with
    | Error msg -> `Error (false, msg)
    | Ok rendered -> (
      match output with
      | Some path -> (
        match Out_channel.with_open_text path (fun oc -> output_string oc rendered) with
        | () -> `Ok (Printf.printf "opcode profile written to %s\n" path)
        | exception Sys_error msg -> `Error (false, "cannot write opcode profile: " ^ msg))
      | None -> `Ok (print_string rendered)))

let run_report bench_name mode sample_every format output mitigation flight opcodes tier =
  if opcodes then run_opcode_report bench_name mode format output
  else if sample_every <= 0 then `Error (false, "--sample-every must be positive")
  else
    match Workloads.Registry.bench_of_name bench_name with
    | Error msg -> `Error (false, msg)
    | Ok bench ->
      let profile = profile_for ~mode bench in
      let m =
        with_flight flight (fun () ->
            Workloads.Runner.run_config ~telemetry:true ~sample_every ?mitigation ~mode ~profile
              ~engine_tier:tier bench)
      in
      let sink = Option.get m.Workloads.Runner.trace in
      let sampler = Option.get m.Workloads.Runner.samples in
      let attribution =
        Telemetry.Attribution.of_sink ~total_cycles:m.Workloads.Runner.cycles sink
      in
      let quarantined = m.Workloads.Runner.quarantined_sites in
      let rendered =
        match format with
        | `Table ->
          let buf = Buffer.create 4096 in
          Buffer.add_string buf (Telemetry.Attribution.report attribution);
          Buffer.add_string buf
            (Printf.sprintf "\nSampling profile (1 sample / %d cycles, %d samples):\n"
               (Telemetry.Sampler.every sampler)
               (Telemetry.Sampler.samples_total sampler));
          List.iter
            (fun (leaf, share) ->
              Buffer.add_string buf (Printf.sprintf "  %-12s %5.1f%%\n" leaf (100.0 *. share)))
            (Telemetry.Sampler.leaf_shares sampler);
          Buffer.add_string buf
            (match quarantined with
            | [] -> "\nQuarantined sites: none\n"
            | sites ->
              Printf.sprintf "\nQuarantined sites (future MT allocations routed to MU): %s\n"
                (String.concat ", " sites));
          Buffer.contents buf
        | `Json ->
          Util.Json.to_string_pretty
            (Util.Json.Obj
               [
                 ("bench", Util.Json.String bench_name);
                 ("mode", Util.Json.String (Pkru_safe.Config.mode_to_string mode));
                 ("cycles", Util.Json.Int m.Workloads.Runner.cycles);
                 ("attribution", Telemetry.Attribution.to_json attribution);
                 ("profile", Telemetry.Sampler.to_json sampler);
                 ( "quarantined_sites",
                   Util.Json.List (List.map (fun s -> Util.Json.String s) quarantined) );
               ])
          ^ "\n"
        | `Prom -> Telemetry.Export.prometheus ~attribution ~sampler sink
        | `Folded -> Telemetry.Sampler.to_folded sampler
      in
      (match output with
      | Some path -> (
        match Out_channel.with_open_text path (fun oc -> output_string oc rendered) with
        | () -> `Ok (Printf.printf "report written to %s\n" path)
        | exception Sys_error msg -> `Error (false, "cannot write report: " ^ msg))
      | None -> `Ok (print_string rendered))

(* --- run: execute a textual IR program through the toolchain --- *)

let run_ir_file path mode use_static entry telemetry =
  let text = In_channel.with_open_text path In_channel.input_all in
  match Ir.Ir_text.of_string text with
  | exception Ir.Ir_text.Syntax_error msg -> `Error (false, path ^ ": " ^ msg)
  | source ->
    let build =
      if use_static then begin
        let b, result = fail_on_error (Toolchain.Pipeline.build_static ~mode source) in
        Printf.printf "static analysis: %d shared site(s), %d fixpoint round(s)\n"
          (Runtime.Alloc_id.Set.cardinal result.Ir.Static_taint.shared)
          result.Ir.Static_taint.iterations;
        b
      end
      else begin
        let profile =
          match mode with
          | Pkru_safe.Config.Alloc | Pkru_safe.Config.Mpk ->
            let p =
              fail_on_error
                (Toolchain.Pipeline.collect_profile source
                   ~inputs:[ (fun i -> ignore (Toolchain.Interp.run i entry [])) ])
            in
            Printf.printf "dynamic profile: %d shared site(s)\n" (Runtime.Profile.cardinal p);
            p
          | Pkru_safe.Config.Base | Pkru_safe.Config.Profiling -> Runtime.Profile.create ()
        in
        fail_on_error (Toolchain.Pipeline.build ~profile ~mode source)
      end
    in
    let sink = if telemetry then Some (Telemetry.Sink.create ()) else None in
    let execute () =
      match sink with
      | Some s ->
        Telemetry.Sink.with_sink s (fun () ->
            Toolchain.Interp.run build.Toolchain.Pipeline.interp entry [])
      | None -> Toolchain.Interp.run build.Toolchain.Pipeline.interp entry []
    in
    (match execute () with
    | result ->
      Printf.printf "%s() = %d\n" entry result;
      Printf.printf "[%s] cycles=%d transitions=%d sites=%d moved=%d wrappers=%d\n"
        (Pkru_safe.Config.mode_to_string mode)
        (Pkru_safe.Env.cycles build.Toolchain.Pipeline.env)
        (Pkru_safe.Env.transitions build.Toolchain.Pipeline.env)
        build.Toolchain.Pipeline.pass_stats.Ir.Passes.alloc_sites
        build.Toolchain.Pipeline.pass_stats.Ir.Passes.sites_moved
        build.Toolchain.Pipeline.pass_stats.Ir.Passes.wrappers
    | exception Vmm.Fault.Unhandled fault ->
      Printf.printf "program killed: %s\n" (Vmm.Fault.to_string fault));
    (match sink with
    | Some s ->
      print_newline ();
      print_string (Telemetry.Export.summary s)
    | None -> ());
    `Ok ()

(* --- corpus: collect, inspect and persist the profiling corpus --- *)

let run_corpus save_dir =
  let corpus = Workloads.Browsing.collect () in
  Printf.printf "collected %d profiling runs:\n" (Runtime.Corpus.run_count corpus);
  List.iter
    (fun (name, gained) -> Printf.printf "  %-16s %+d new site(s)\n" name gained)
    (Runtime.Corpus.marginal_gains corpus);
  let merged = Runtime.Corpus.merged corpus in
  Printf.printf "deployment profile: %d shared sites\n" (Runtime.Profile.cardinal merged);
  let fragile = Runtime.Corpus.fragile_sites corpus ~max_runs:1 in
  Printf.printf "fragile sites (seen by a single run): %d\n" (List.length fragile);
  (match save_dir with
  | Some dir ->
    Runtime.Corpus.save_dir corpus dir;
    Printf.printf "corpus written to %s/\n" dir
  | None -> ());
  `Ok ()

(* --- compare: diff two --json result directories --- *)

let load_json path = Util.Json.of_string (In_channel.with_open_text path In_channel.input_all)

let run_compare dir_a dir_b =
  let files =
    Sys.readdir dir_a |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json" && Sys.file_exists (Filename.concat dir_b f))
    |> List.sort compare
  in
  if files = [] then `Error (false, "no common .json result files")
  else begin
    List.iter
      (fun file ->
        match (load_json (Filename.concat dir_a file), load_json (Filename.concat dir_b file)) with
        | Util.Json.Obj _ as a, (Util.Json.Obj _ as b) ->
          (* Suite result files: compare the suite means. *)
          (try
             let mean j key = Util.Json.to_float (Util.Json.member key j) in
             Printf.printf "%-28s alloc %+6.2f%% -> %+6.2f%%   mpk %+6.2f%% -> %+6.2f%%\n"
               file (mean a "mean_alloc_pct") (mean b "mean_alloc_pct")
               (mean a "mean_mpk_pct") (mean b "mean_mpk_pct")
           with Not_found | Invalid_argument _ ->
             Printf.printf "%-28s (not a suite file; skipped)\n" file)
        | Util.Json.List a_rows, Util.Json.List b_rows
          when file = "micro.json" && List.length a_rows = List.length b_rows ->
          List.iter2
            (fun a b ->
              try
                let name = Util.Json.to_str (Util.Json.member "name" a) in
                let ov j = Util.Json.to_float (Util.Json.member "overhead_x" j) in
                Printf.printf "%-28s %-10s %.2fx -> %.2fx\n" file name (ov a) (ov b)
              with Not_found | Invalid_argument _ -> ())
            a_rows b_rows
        | _ -> Printf.printf "%-28s (unrecognised shape; skipped)\n" file)
      files;
    `Ok ()
  end

(* --- chaos: deterministic fault injection over the enforcement pipeline --- *)

let scenario_conv =
  let parse = function
    | "all" -> Ok None
    | s -> (
      match Chaos.scenario_of_string s with
      | Some sc -> Ok (Some sc)
      | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown scenario %S (coverage-gap|pkalloc-oom|gate-corruption|handler-tamper|all)"
               s)))
  in
  Arg.conv
    ( parse,
      fun fmt -> function
        | None -> Format.pp_print_string fmt "all"
        | Some sc -> Format.pp_print_string fmt (Chaos.scenario_to_string sc) )

let chaos_policy_conv =
  let parse = function
    | "all" -> Ok None
    | s -> (
      match Runtime.Mitigator.policy_of_string s with
      | Some p -> Ok (Some p)
      | None ->
        Error (`Msg (Printf.sprintf "unknown policy %S (abort|emulate|promote|degrade|all)" s)))
  in
  Arg.conv
    ( parse,
      fun fmt -> function
        | None -> Format.pp_print_string fmt "all"
        | Some p -> Format.pp_print_string fmt (Runtime.Mitigator.policy_to_string p) )

let chaos_format_conv =
  let parse = function
    | "table" -> Ok `Table
    | "json" -> Ok `Json
    | "prom" -> Ok `Prom
    | s -> Error (`Msg (Printf.sprintf "unknown format %S (table|json|prom)" s))
  in
  Arg.conv
    ( parse,
      fun fmt f ->
        Format.pp_print_string fmt
          (match f with `Table -> "table" | `Json -> "json" | `Prom -> "prom") )

let attack_conv =
  let parse = function
    | "all" -> Ok None
    | s -> (
      match Exploit.Garmr.attack_of_string s with
      | Some a -> Ok (Some a)
      | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown attack %S (wrpkru-race|sigreturn-forge|syscall-confusion|all)" s)))
  in
  Arg.conv
    ( parse,
      fun fmt -> function
        | None -> Format.pp_print_string fmt "all"
        | Some a -> Format.pp_print_string fmt (Exploit.Garmr.attack_to_string a) )

(* The Garmr battery (`chaos --attacks`): every attack twice — defense
   off (must leak) and on (must be defeated) — non-zero exit on any
   invariant violation, flight dumps pooled for the CI artifact. *)
let run_chaos_attacks attack harts seed format output flight =
  if harts < 2 then `Error (false, "--attack-harts must be at least 2")
  else begin
    let attacks =
      match attack with Some a -> [ a ] | None -> Exploit.Garmr.all_attacks
    in
    let reports = Chaos.run_attacks ~harts ~attacks ~seed () in
    let rendered =
      match format with
      | `Table | `Prom ->
        let buf = Buffer.create 4096 in
        List.iter
          (fun r -> Buffer.add_string buf (Format.asprintf "%a@." Chaos.pp_attack_report r))
          reports;
        Buffer.contents buf
      | `Json ->
        Util.Json.to_string_pretty
          (Util.Json.List (List.map Chaos.attack_report_to_json reports))
        ^ "\n"
    in
    (match output with
    | Some path -> (
      match Out_channel.with_open_text path (fun oc -> output_string oc rendered) with
      | () -> Printf.printf "attack battery report written to %s\n" path
      | exception Sys_error msg -> failwith ("cannot write attack report: " ^ msg))
    | None -> print_string rendered);
    (match flight with
    | Some path ->
      let dumps =
        List.concat_map (fun (r : Chaos.attack_report) -> r.Chaos.ar_flight_dumps) reports
      in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Util.Json.to_string_pretty (Util.Json.List dumps) ^ "\n"));
      Printf.printf "%d flight dump(s) written to %s\n" (List.length dumps) path
    | None -> ());
    let broken = List.filter (fun r -> r.Chaos.ar_invariant_failures <> []) reports in
    if broken = [] then `Ok ()
    else
      `Error
        ( false,
          Printf.sprintf "%d of %d attack(s) violated battery invariants"
            (List.length broken) (List.length reports) )
  end

let run_chaos scenario policy seed drop oom_at format output flight attacks attack harts =
  if attacks || attack <> None then run_chaos_attacks attack harts seed format output flight
  else if drop <= 0.0 || drop >= 1.0 then `Error (false, "--drop must be in (0, 1)")
  else if oom_at <= 0 then `Error (false, "--oom-at must be positive")
  else begin
    let scenarios = match scenario with Some sc -> [ sc ] | None -> Chaos.all_scenarios in
    let policies =
      match policy with Some p -> [ p ] | None -> Runtime.Mitigator.all_policies
    in
    let reports =
      List.concat_map
        (fun sc ->
          List.map
            (fun p -> Chaos.run ~drop ~oom_at ~scenario:sc ~policy:p ~seed ())
            policies)
        scenarios
    in
    let rendered =
      match format with
      | `Table ->
        let buf = Buffer.create 4096 in
        List.iter
          (fun r ->
            Buffer.add_string buf (Format.asprintf "%a@." Chaos.pp_report r);
            List.iter (fun d -> Buffer.add_string buf ("    " ^ d ^ "\n")) r.Chaos.details)
          reports;
        Buffer.contents buf
      | `Json ->
        Util.Json.to_string_pretty (Util.Json.List (List.map Chaos.report_to_json reports))
        ^ "\n"
      | `Prom -> String.concat "\n" (List.map (fun r -> r.Chaos.prometheus) reports)
    in
    (match output with
    | Some path -> (
      match Out_channel.with_open_text path (fun oc -> output_string oc rendered) with
      | () -> Printf.printf "chaos report written to %s\n" path
      | exception Sys_error msg -> failwith ("cannot write chaos report: " ^ msg))
    | None -> print_string rendered);
    (match flight with
    | Some path ->
      (* Each scenario records into its own recorder; pool the dumps so a
         CI artifact (or `doctor`) sees every death of the run. *)
      let dumps = List.concat_map (fun (r : Chaos.report) -> r.Chaos.flight_dumps) reports in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Util.Json.to_string_pretty (Util.Json.List dumps) ^ "\n"));
      Printf.printf "%d flight dump(s) written to %s\n" (List.length dumps) path
    | None -> ());
    let broken =
      List.filter (fun r -> r.Chaos.invariant_failures <> []) reports
    in
    if broken = [] then `Ok ()
    else
      `Error
        ( false,
          Printf.sprintf "%d of %d chaos run(s) violated invariants" (List.length broken)
            (List.length reports) )
  end

(* --- audit: post-run provenance scan of one benchmark's heap --- *)

let audit_format_conv =
  let parse = function
    | "table" -> Ok `Table
    | "json" -> Ok `Json
    | "prom" -> Ok `Prom
    | s -> Error (`Msg (Printf.sprintf "unknown format %S (table|json|prom)" s))
  in
  Arg.conv
    ( parse,
      fun fmt f ->
        Format.pp_print_string fmt
          (match f with `Table -> "table" | `Json -> "json" | `Prom -> "prom") )

let run_audit bench_name mode census_every promote format output mitigation flight =
  if census_every <= 0 then `Error (false, "--census-every must be positive")
  else
    match Workloads.Registry.bench_of_name bench_name with
    | Error msg -> `Error (false, msg)
    | Ok bench ->
      let profile = profile_for ~mode bench in
      (* Hand-rolled run (not Runner.run_config): the auditor scans the
         env's pages after the workload, so the env must stay in hand —
         and a promotion re-run needs the quarantine table carried onto a
         fresh image. *)
      let run_once ~flight ~quarantine =
        let env =
          fail_on_error (Pkru_safe.Env.create ~profile (Pkru_safe.Config.make ?mitigation mode))
        in
        let pkalloc = Pkru_safe.Env.pkalloc env in
        List.iter (Allocators.Pkalloc.quarantine_site pkalloc) quarantine;
        Pkru_safe.Env.track_census env;
        let browser = Browser.create ~engine_seed:bench.Workloads.Bench_def.engine_seed env in
        let census = Telemetry.Census.create ~every:census_every () in
        let sink = Telemetry.Sink.create () in
        with_flight ~context:(Pkru_safe.Env.flight_context env) flight (fun () ->
            Telemetry.Sink.with_sink sink (fun () ->
                Telemetry.Census.with_census ~provider:(Pkru_safe.Env.census_snapshot env)
                  census (fun () ->
                    Browser.load_page browser bench.Workloads.Bench_def.page;
                    ignore (Browser.exec_script browser bench.Workloads.Bench_def.script))));
        let metadata = Option.get (Pkru_safe.Env.census_metadata env) in
        (env, sink, census, Audit.scan ~metadata pkalloc)
      in
      let env, sink, census, report = run_once ~flight ~quarantine:[] in
      let attribution =
        Telemetry.Attribution.of_sink ~total_cycles:(Pkru_safe.Env.cycles env) sink
      in
      let promoted, rerun =
        if promote && not (Audit.leak_free report) then begin
          let pkalloc = Pkru_safe.Env.pkalloc env in
          let promoted = Audit.promote pkalloc report in
          (* Convergence check: a fresh image with the evidence-derived
             quarantine carried over must come back leak-free — promoted
             sites now allocate from MU. *)
          let _, _, _, report2 =
            run_once ~flight:None ~quarantine:(Allocators.Pkalloc.quarantined_sites pkalloc)
          in
          (promoted, Some report2)
        end
        else ([], None)
      in
      let rendered =
        match format with
        | `Table ->
          let buf = Buffer.create 4096 in
          Buffer.add_string buf (Audit.render ~attribution report);
          (match Telemetry.Census.latest census with
          | Some snap ->
            Buffer.add_string buf
              (Printf.sprintf "census: %d snapshot(s), 1 every %d cycles; last at cycle %d\n"
                 (Telemetry.Census.taken_total census)
                 (Telemetry.Census.every census) snap.Telemetry.Census.at_cycle)
          | None -> ());
          if promoted <> [] then
            Buffer.add_string buf
              (Printf.sprintf "promoted to MU for the next run: %s\n"
                 (String.concat ", " promoted));
          (match rerun with
          | Some r ->
            Buffer.add_string buf
              (if Audit.leak_free r then "re-run after promotion: leak-free\n"
               else
                 Printf.sprintf "re-run after promotion: STILL LEAKING (%d finding(s))\n"
                   (List.length r.Audit.findings))
          | None -> ());
          Buffer.contents buf
        | `Json ->
          Util.Json.to_string_pretty
            (Util.Json.Obj
               [
                 ("bench", Util.Json.String bench_name);
                 ("mode", Util.Json.String (Pkru_safe.Config.mode_to_string mode));
                 ("cycles", Util.Json.Int (Pkru_safe.Env.cycles env));
                 ("audit", Audit.to_json report);
                 ("census", Telemetry.Census.digest_json census);
                 ( "promoted_sites",
                   Util.Json.List (List.map (fun s -> Util.Json.String s) promoted) );
                 ( "rerun_leak_free",
                   match rerun with
                   | Some r -> Util.Json.Bool (Audit.leak_free r)
                   | None -> Util.Json.Null );
               ])
          ^ "\n"
        | `Prom ->
          Audit.prometheus report ^ Telemetry.Export.prometheus ~attribution ~census sink
      in
      (match output with
      | Some path -> (
        match Out_channel.with_open_text path (fun oc -> output_string oc rendered) with
        | () -> Printf.printf "audit written to %s\n" path
        | exception Sys_error msg -> failwith ("cannot write audit: " ^ msg))
      | None -> print_string rendered);
      if Audit.leak_free report then `Ok ()
      else begin
        match rerun with
        | Some r when Audit.leak_free r ->
          (* Evidence consumed: the leak is quarantined and the converged
             image is clean, so the exit code reports success. *)
          `Ok ()
        | _ ->
          `Error
            ( false,
              Printf.sprintf "audit: %d MT object(s) reachable from U across %d site(s)"
                (List.length report.Audit.findings)
                (List.length report.Audit.sites) )
      end

(* --- fleet: N concurrent sessions over per-CPU run queues --- *)

let fleet_format_conv =
  let parse = function
    | "table" -> Ok `Table
    | "json" -> Ok `Json
    | "prom" -> Ok `Prom
    | s -> Error (`Msg (Printf.sprintf "unknown format %S (table|json|prom)" s))
  in
  Arg.conv
    ( parse,
      fun fmt f ->
        Format.pp_print_string fmt
          (match f with `Table -> "table" | `Json -> "json" | `Prom -> "prom") )

let fleet_table (r : Fleet.result) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "fleet: %d session(s) over %d CPU(s), timeslice %d ticks\n" r.Fleet.r_sessions
    r.Fleet.r_cpus r.Fleet.r_timeslice;
  add "  makespan        %d cycles\n" r.Fleet.r_makespan_cycles;
  add "  throughput      %.1f sessions/sec\n" r.Fleet.r_sessions_per_sec;
  add "  latency         p50 %.0f ns, p99 %.0f ns\n" r.Fleet.r_p50_latency_ns
    r.Fleet.r_p99_latency_ns;
  add "  work            %d cycles across sessions, %d yield(s), %d steal(s)\n"
    r.Fleet.r_total_cycles r.Fleet.r_yields r.Fleet.r_steals;
  add "  outcomes        %d completed, %d oom, %d failed\n" r.Fleet.r_completed r.Fleet.r_oom
    r.Fleet.r_failed;
  (match r.Fleet.r_backing with
  | None -> ()
  | Some b ->
    add "  page budget     %d pages, low-water %d, %d denial(s)\n" b.Fleet.bk_total_pages
      b.Fleet.bk_min_available b.Fleet.bk_denials);
  Buffer.contents buf

let run_fleet bench_name sessions cpus timeslice max_live page_budget mode tier format output
    per_session =
  if sessions <= 0 then `Error (false, "--sessions must be positive")
  else if cpus <= 0 then `Error (false, "--cpus must be positive")
  else if timeslice <= 0 then `Error (false, "--timeslice must be positive")
  else if max_live <= 0 then `Error (false, "--max-live must be positive")
  else
    match Workloads.Registry.bench_of_name bench_name with
    | Error msg -> `Error (false, msg)
    | Ok bench ->
      (* Enforcement modes need a profile; collect it from the same
         workload first, exactly as `browse` does. *)
      let profile = profile_for ~mode bench in
      let r =
        Fleet.run ~mode ~profile ~cpus ~timeslice ~max_live ?page_budget ~tier ~sessions
          [ Fleet.job_of_bench bench ]
      in
      let rendered =
        match format with
        | `Table -> fleet_table r
        | `Json -> Util.Json.to_string_pretty (Fleet.to_json ~per_session r) ^ "\n"
        | `Prom -> Telemetry.Metrics.expose (Fleet.metrics r)
      in
      (match output with
      | Some path -> (
        match Out_channel.with_open_text path (fun oc -> output_string oc rendered) with
        | () -> Printf.printf "fleet report written to %s\n" path
        | exception Sys_error msg -> failwith ("cannot write fleet report: " ^ msg))
      | None -> print_string rendered);
      if r.Fleet.r_failed > 0 then
        `Error
          (false, Printf.sprintf "fleet: %d of %d session(s) failed" r.Fleet.r_failed sessions)
      else `Ok ()

(* --- doctor: render a flight-recorder dump as an incident report --- *)

let run_doctor path =
  match load_json path with
  | exception Sys_error msg -> `Error (false, msg)
  | exception Util.Json.Parse_error msg ->
    `Error (false, Printf.sprintf "%s: not valid JSON (%s)" path msg)
  | Util.Json.List [] -> `Error (false, path ^ ": empty dump list — nothing died in that run")
  | Util.Json.List dumps ->
    (* A pooled file (chaos --flight): render every dump in order. *)
    List.iteri
      (fun i dump ->
        if i > 0 then print_endline (String.make 72 '=');
        print_string (Telemetry.Flight.render dump))
      dumps;
    `Ok ()
  | dump -> (
    match Telemetry.Flight.render dump with
    | report ->
      print_string report;
      `Ok ()
    | exception (Not_found | Invalid_argument _) ->
      `Error (false, path ^ ": not a flight-recorder dump"))

(* --- cmdliner wiring --- *)

let pipeline_cmd =
  Cmd.v (Cmd.info "pipeline" ~doc:"Run the E1 deny/profile/enforce demonstration")
    Term.(ret (const run_pipeline $ const ()))

let browse_cmd =
  let mode =
    Arg.(value & opt mode_conv Pkru_safe.Config.Mpk & info [ "m"; "mode" ] ~doc:"Build mode")
  in
  let page =
    Arg.(value & opt string default_page & info [ "p"; "page" ] ~doc:"HTML page to load")
  in
  let script =
    Arg.(value & opt string default_script & info [ "s"; "script" ] ~doc:"Script to execute")
  in
  Cmd.v (Cmd.info "browse" ~doc:"Run a page + script under a configuration (E2-style)")
    Term.(
      ret
        (const run_browse $ mode $ page $ script $ mitigation_flag $ flight_flag $ tier_flag
        $ engine_opts_term))

let exploit_cmd =
  Cmd.v (Cmd.info "exploit" ~doc:"Run the E3 security experiment")
    Term.(ret (const run_exploit $ const ()))

let micro_cmd =
  Cmd.v (Cmd.info "micro" ~doc:"Run the call-gate micro-benchmarks")
    Term.(ret (const run_micro $ const ()))

let telemetry_flag =
  Arg.(value & flag
       & info [ "telemetry" ] ~doc:"Record telemetry during the run and print a digest")

let suite_cmd =
  let suite_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SUITE"
             ~doc:"dromaeo|dom|v8|sunspider|jslib|kraken|octane|jetstream2")
  in
  Cmd.v (Cmd.info "suite" ~doc:"Run one benchmark suite")
    Term.(ret (const run_suite $ suite_arg $ telemetry_flag))

let trace_cmd =
  let bench_arg =
    Arg.(required & opt (some string) None
         & info [ "b"; "bench" ] ~docv:"BENCH" ~doc:"Benchmark name (e.g. richards, dom-attr)")
  in
  let mode =
    Arg.(value & opt mode_conv Pkru_safe.Config.Mpk & info [ "m"; "mode" ] ~doc:"Build mode")
  in
  let format =
    Arg.(value & opt trace_format_conv `Chrome
         & info [ "f"; "format" ] ~docv:"FORMAT"
             ~doc:"chrome (trace_event for chrome://tracing / Perfetto), json, or summary")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run one benchmark with telemetry enabled and export the trace")
    Term.(ret (const run_trace $ bench_arg $ mode $ format $ output $ flight_flag))

let report_cmd =
  let bench_arg =
    Arg.(required & opt (some string) None
         & info [ "b"; "bench" ] ~docv:"BENCH" ~doc:"Benchmark name (e.g. richards, dom-attr)")
  in
  let mode =
    Arg.(value & opt mode_conv Pkru_safe.Config.Mpk & info [ "m"; "mode" ] ~doc:"Build mode")
  in
  let sample_every =
    Arg.(value & opt int 64
         & info [ "sample-every" ] ~docv:"CYCLES" ~doc:"Cycles between profile samples")
  in
  let format =
    Arg.(value & opt report_format_conv `Table
         & info [ "f"; "format" ] ~docv:"FORMAT"
             ~doc:"table (flow matrix + site heat), json, prom (Prometheus text \
                   exposition), or folded (collapsed stacks for flamegraph.pl / \
                   speedscope)")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file")
  in
  let opcodes =
    Arg.(value & flag
         & info [ "opcodes" ]
             ~doc:"Profile opcode and adjacent-pair frequencies on the reference bytecode \
                   tier instead of the attribution report (the data behind the fast tier's \
                   superinstruction set; table or json format)")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run one benchmark with telemetry + cycle sampling and print the attribution report")
    Term.(
      ret
        (const run_report $ bench_arg $ mode $ sample_every $ format $ output $ mitigation_flag
        $ flight_flag $ opcodes $ tier_flag))

let compare_cmd =
  let dir n doc = Arg.(required & pos n (some dir) None & info [] ~docv:"DIR" ~doc) in
  Cmd.v (Cmd.info "compare" ~doc:"Compare two bench --json result directories")
    Term.(ret (const run_compare $ dir 0 "baseline results" $ dir 1 "new results"))

let corpus_cmd =
  let save_dir =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"DIR" ~doc:"Persist the corpus")
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"Collect the browsing profiling corpus and report its coverage")
    Term.(ret (const run_corpus $ save_dir))

let run_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Textual IR program")
  in
  let mode =
    Arg.(value & opt mode_conv Pkru_safe.Config.Mpk & info [ "m"; "mode" ] ~doc:"Build mode")
  in
  let use_static =
    Arg.(value & flag & info [ "static" ] ~doc:"Partition with the static analysis instead of profiling")
  in
  let entry = Arg.(value & opt string "main" & info [ "entry" ] ~doc:"Entry function") in
  Cmd.v (Cmd.info "run" ~doc:"Compile and run a .ir program through the pipeline")
    Term.(ret (const run_ir_file $ path $ mode $ use_static $ entry $ telemetry_flag))

let chaos_cmd =
  let scenario =
    Arg.(value & opt scenario_conv None
         & info [ "scenario" ] ~docv:"SCENARIO"
             ~doc:"coverage-gap, pkalloc-oom, gate-corruption, handler-tamper, or all")
  in
  let policy =
    Arg.(value & opt chaos_policy_conv None
         & info [ "policy" ] ~docv:"POLICY" ~doc:"abort, emulate, promote, degrade, or all")
  in
  let seed = Arg.(value & opt int 1337 & info [ "seed" ] ~docv:"SEED" ~doc:"Injection seed") in
  let drop =
    Arg.(value & opt float 0.10
         & info [ "drop" ] ~docv:"FRACTION" ~doc:"Profile fraction dropped (coverage gaps)")
  in
  let oom_at =
    Arg.(value & opt int 40
         & info [ "oom-at" ] ~docv:"N" ~doc:"Poison the Nth pool allocation (pkalloc-oom)")
  in
  let format =
    Arg.(value & opt chaos_format_conv `Table
         & info [ "f"; "format" ] ~docv:"FORMAT" ~doc:"table, json, or prom")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file")
  in
  let attacks =
    Arg.(value & flag
         & info [ "attacks" ]
             ~doc:"Run the Garmr attack battery instead of the fault scenarios: each attack \
                   class defended and undefended, non-zero exit if any defended attack \
                   succeeds or any undefended attack is silently stopped")
  in
  let attack =
    Arg.(value & opt attack_conv None
         & info [ "attack" ] ~docv:"ATTACK"
             ~doc:"Restrict the battery to one attack class (implies --attacks): \
                   wrpkru-race, sigreturn-forge, syscall-confusion, or all")
  in
  let harts =
    Arg.(value & opt int 2
         & info [ "attack-harts" ] ~docv:"N"
             ~doc:"Harts per attack battery: N-1 benign victims plus the attacker (min 2)")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Inject deterministic faults into the enforcement pipeline and check invariants")
    Term.(
      ret
        (const run_chaos $ scenario $ policy $ seed $ drop $ oom_at $ format $ output
        $ flight_flag $ attacks $ attack $ harts))

let audit_cmd =
  let bench_arg =
    Arg.(required & opt (some string) None
         & info [ "b"; "bench" ] ~docv:"BENCH" ~doc:"Benchmark name (e.g. richards, dom-attr)")
  in
  let mode =
    Arg.(value & opt mode_conv Pkru_safe.Config.Mpk & info [ "m"; "mode" ] ~doc:"Build mode")
  in
  let census_every =
    Arg.(value & opt int 256
         & info [ "census-every" ] ~docv:"CYCLES" ~doc:"Cycles between heap-census snapshots")
  in
  let promote =
    Arg.(value & flag
         & info [ "audit-promote" ]
             ~doc:"Quarantine confirmed-leaking sites (future MT allocations routed to MU) and \
                   re-run on a fresh image to verify the heap comes back leak-free")
  in
  let format =
    Arg.(value & opt audit_format_conv `Table
         & info [ "f"; "format" ] ~docv:"FORMAT" ~doc:"table, json, or prom")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Run one benchmark with the heap census on, then conservatively scan every \
             U-readable resident page for pointers into live MT objects; exits non-zero when \
             an unresolved leak is found")
    Term.(
      ret
        (const run_audit $ bench_arg $ mode $ census_every $ promote $ format $ output
        $ mitigation_flag $ flight_flag))

let fleet_cmd =
  let bench_arg =
    Arg.(value & opt string "dom-query"
         & info [ "b"; "bench" ] ~docv:"BENCH"
             ~doc:"Benchmark each session runs (e.g. dom-query, richards)")
  in
  let sessions =
    Arg.(value & opt int 100
         & info [ "n"; "sessions" ] ~docv:"N" ~doc:"Number of sessions to run")
  in
  let cpus =
    Arg.(value & opt int 4 & info [ "cpus" ] ~docv:"CPUS" ~doc:"Scheduler CPUs (run queues)")
  in
  let timeslice =
    Arg.(value & opt int 4000
         & info [ "timeslice" ] ~docv:"TICKS"
             ~doc:"Cooperative yield budget in evaluator ticks")
  in
  let max_live =
    Arg.(value & opt int 128
         & info [ "max-live" ] ~docv:"N"
             ~doc:"Maximum concurrently-materialised sessions (bounds host memory)")
  in
  let page_budget =
    Arg.(value & opt (some int) None
         & info [ "page-budget" ] ~docv:"PAGES"
             ~doc:"Shared backing-page budget all sessions contend for; exhaustion retires \
                   the victim session with an oom outcome")
  in
  let mode =
    Arg.(value & opt mode_conv Pkru_safe.Config.Mpk & info [ "m"; "mode" ] ~doc:"Build mode")
  in
  let format =
    Arg.(value & opt fleet_format_conv `Table
         & info [ "f"; "format" ] ~docv:"FORMAT" ~doc:"table, json, or prom")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file")
  in
  let per_session =
    Arg.(value & flag
         & info [ "per-session" ] ~doc:"Include the per-session table in json output")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Run N concurrent browsing sessions over per-CPU run queues with cooperative \
             scheduling and report sessions/sec and latency percentiles")
    Term.(
      ret
        (const run_fleet $ bench_arg $ sessions $ cpus $ timeslice $ max_live $ page_budget
        $ mode $ tier_flag $ format $ output $ per_session))

let doctor_cmd =
  let path =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"DUMP"
             ~doc:"A flight-recorder dump file (from --flight, chaos, or an aborted run)")
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:"Render a flight-recorder dump into a human-readable incident report: context, \
             gate-tail balance, span timeline, and the causal chain open at death")
    Term.(ret (const run_doctor $ path))

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info = Cmd.info "pkru_safe_cli" ~doc:"PKRU-Safe reproduction driver" in
  exit (Cmd.eval (Cmd.group ~default info [ pipeline_cmd; browse_cmd; exploit_cmd; micro_cmd; suite_cmd; trace_cmd; report_cmd; run_cmd; corpus_cmd; compare_cmd; chaos_cmd; audit_cmd; fleet_cmd; doctor_cmd ]))
