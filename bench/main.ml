(* The benchmark harness: regenerates every table and figure from the
   paper's evaluation (§5), printing measured results next to the paper's
   reported numbers, then runs the ablation studies and a bechamel pass
   over scaled-down versions of each experiment.

   Usage: main.exe [--skip-bechamel] [--only SECTION]...
                   [--compare BASELINE] [--baseline-out FILE]
                   [--wall-tolerance X] [--compare-strict]
   --only may repeat; with none given, every section runs.
   Sections: micro fig3 table1 table2 fig5 fig6 fig7 security sites
             ablations tlb mitigation census dispatch fleet garmr bechamel

   --compare / --baseline-out run only the regression-sentinel probes
   (unless sections are also requested with --only): --baseline-out
   regenerates BENCH_BASELINE.json, --compare diffs a fresh probe run
   against a checked-in baseline.  Simulated-cycle drift is flagged hard
   but, being a warn-only CI gate, only fails the process under
   --compare-strict; host wall-clock always warns only. *)

let skip_bechamel = ref false
let only : string list ref = ref []
let json_dir : string option ref = ref None
let compare_file : string option ref = ref None
let baseline_out : string option ref = ref None
let wall_tolerance = ref Workloads.Sentinel.default_wall_tolerance
let compare_strict = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--skip-bechamel" :: rest ->
      skip_bechamel := true;
      parse rest
    | "--only" :: section :: rest ->
      only := section :: !only;
      parse rest
    | "--json" :: dir :: rest ->
      json_dir := Some dir;
      parse rest
    | "--compare" :: file :: rest ->
      compare_file := Some file;
      parse rest
    | "--baseline-out" :: file :: rest ->
      baseline_out := Some file;
      parse rest
    | "--wall-tolerance" :: x :: rest ->
      (match float_of_string_opt x with
      | Some t when t > 1.0 -> wall_tolerance := t
      | _ -> failwith ("--wall-tolerance must be a factor > 1.0, got " ^ x));
      parse rest
    | "--compare-strict" :: rest ->
      compare_strict := true;
      parse rest
    | arg :: _ -> failwith ("unknown argument " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv))

(* A sentinel-only invocation skips the report sections unless some were
   explicitly requested. *)
let sentinel_requested () = !compare_file <> None || !baseline_out <> None
let section name = (!only = [] && not (sentinel_requested ())) || List.mem name !only

(* Per-section host wall-clock, recorded for every section that runs and
   emitted into host.json alongside the simulated-cycle results. *)
let section_walls : (string * float) list ref = ref []

let timed name f =
  let start = Unix.gettimeofday () in
  f ();
  section_walls := !section_walls @ [ (name, Unix.gettimeofday () -. start) ]

let header title = Printf.printf "\n=== %s ===\n\n" title

let pct p = Printf.sprintf "%+.2f%%" p
let ratio r = Printf.sprintf "%.2fx" r

let bar ?(scale = 40.0) v =
  let n = int_of_float (Float.min (v *. scale /. 2.0) 60.0) in
  String.make (max n 1) '#'

(* --- §5.2 Micro-benchmarks --- *)

let run_micro () =
  header "Micro-benchmarks (paper 5.2): call-gate overhead per FFI call";
  let results = Workloads.Microbench.run () in
  let paper = Workloads.Paper.micro_overheads in
  Util.Table.print
    ~header:[ "workload"; "ungated cyc"; "gated cyc"; "overhead"; "paper" ]
    (List.map
       (fun (r : Workloads.Microbench.result) ->
         [
           r.Workloads.Microbench.name;
           Printf.sprintf "%.1f" r.Workloads.Microbench.ungated_cycles_per_call;
           Printf.sprintf "%.1f" r.Workloads.Microbench.gated_cycles_per_call;
           ratio r.Workloads.Microbench.overhead_x;
           ratio (List.assoc r.Workloads.Microbench.name paper);
         ])
       results)

(* --- Figure 3 --- *)

let run_fig3 () =
  header "Figure 3: call-gate overhead vs work between transitions";
  let loop_counts = [ 0; 5; 10; 25; 50; 75; 100; 125; 150; 175; 200 ] in
  let sweep = Workloads.Microbench.sweep ~loop_counts () in
  Util.Table.print
    ~header:[ "loop count"; "normalized runtime"; "" ]
    (List.map
       (fun (loops, overhead) ->
         [ string_of_int loops; Printf.sprintf "%.2f" overhead; bar ~scale:8.0 overhead ])
       sweep);
  print_endline "(paper: starts near the Empty ratio and decays toward 1.0 by loop count 200)"

(* --- Suite execution (shared by Table 1/2 and Figures 4-7) --- *)

let tty = Unix.isatty Unix.stdout

let run_suite_with_progress suite =
  let progress name = if tty then Printf.printf "  running %-36s\r%!" name in
  let result = Workloads.Runner.run_suite ~progress suite in
  if tty then Printf.printf "%-48s\r%!" "";
  result

let suite_rows runs =
  List.map
    (fun (label, (result : Workloads.Runner.suite_result)) ->
      [
        label;
        pct result.Workloads.Runner.mean_alloc_pct;
        pct result.Workloads.Runner.mean_mpk_pct;
        string_of_int result.Workloads.Runner.total_transitions;
        Printf.sprintf "%.2f%%" result.Workloads.Runner.mean_pct_mu;
      ])
    runs

let print_fig ~title (result : Workloads.Runner.suite_result) =
  header title;
  Util.Table.print
    ~header:[ "benchmark"; "alloc"; "mpk"; "mpk normalized" ]
    (List.map
       (fun (r : Workloads.Runner.bench_result) ->
         let norm m =
           float_of_int m.Workloads.Runner.cycles
           /. float_of_int r.Workloads.Runner.base.Workloads.Runner.cycles
         in
         [
           r.Workloads.Runner.bench;
           Printf.sprintf "%.3f" (norm r.Workloads.Runner.alloc);
           Printf.sprintf "%.3f" (norm r.Workloads.Runner.mpk);
           bar ~scale:40.0 (norm r.Workloads.Runner.mpk);
         ])
       result.Workloads.Runner.bench_results);
  let disagreements =
    List.filter
      (fun (r : Workloads.Runner.bench_result) -> not r.Workloads.Runner.outputs_agree)
      result.Workloads.Runner.bench_results
  in
  if disagreements <> [] then
    Printf.printf "WARNING: %d benchmarks produced diverging outputs!\n" (List.length disagreements)

let dromaeo_sub_runs =
  lazy
    (List.map
       (fun s -> (s.Workloads.Bench_def.suite_name, run_suite_with_progress s))
       Workloads.Dromaeo.sub_suites)

let kraken_run = lazy (run_suite_with_progress Workloads.Kraken.all)
let octane_run = lazy (run_suite_with_progress Workloads.Octane.all)
let jetstream_run = lazy (run_suite_with_progress Workloads.Jetstream.all)

let dromaeo_aggregate () =
  let subs = Lazy.force dromaeo_sub_runs in
  let means f = Util.Stats.mean (List.map (fun (_, r) -> f r) subs) in
  ( means (fun r -> r.Workloads.Runner.mean_alloc_pct),
    means (fun r -> r.Workloads.Runner.mean_mpk_pct),
    List.fold_left (fun acc (_, r) -> acc + r.Workloads.Runner.total_transitions) 0 subs,
    means (fun r -> r.Workloads.Runner.mean_pct_mu) )

(* --- Table 1 --- *)

let run_table1 () =
  header "Table 1: Servo-equivalent mean benchmark overhead and statistics";
  let d_alloc, d_mpk, d_trans, d_mu = dromaeo_aggregate () in
  let suite_row label (result : Workloads.Runner.suite_result) =
    [
      label;
      pct result.Workloads.Runner.mean_alloc_pct;
      pct result.Workloads.Runner.mean_mpk_pct;
      string_of_int result.Workloads.Runner.total_transitions;
      Printf.sprintf "%.2f%%" result.Workloads.Runner.mean_pct_mu;
    ]
  in
  let measured =
    [ "Dromaeo"; pct d_alloc; pct d_mpk; string_of_int d_trans; Printf.sprintf "%.2f%%" d_mu ]
    :: [
         suite_row "JetStream2" (Lazy.force jetstream_run);
         suite_row "Kraken" (Lazy.force kraken_run);
         suite_row "Octane" (Lazy.force octane_run);
       ]
  in
  Util.Table.print ~header:[ "suite"; "alloc"; "mpk"; "transitions"; "%MU" ] measured;
  print_endline "\nPaper (Table 1):";
  Util.Table.print ~header:[ "suite"; "alloc"; "mpk"; "transitions"; "%MU" ]
    (List.map
       (fun (row : Workloads.Paper.table1_row) ->
         [
           row.Workloads.Paper.t1_suite;
           pct row.Workloads.Paper.t1_alloc_pct;
           pct row.Workloads.Paper.t1_mpk_pct;
           string_of_int row.Workloads.Paper.t1_transitions;
           Printf.sprintf "%.2f%%" row.Workloads.Paper.t1_pct_mu;
         ])
       Workloads.Paper.table1)

(* --- Table 2 / Figure 4 --- *)

let run_table2 () =
  header "Table 2 / Figure 4: Dromaeo sub-suite overhead and statistics";
  let subs = Lazy.force dromaeo_sub_runs in
  let d_alloc, d_mpk, _, _ = dromaeo_aggregate () in
  Util.Table.print
    ~header:[ "sub-suite"; "alloc"; "mpk"; "transitions"; "%MU" ]
    (suite_rows subs @ [ [ "mean"; pct d_alloc; pct d_mpk; "-"; "-" ] ]);
  print_endline "\nPaper (Table 2):";
  Util.Table.print
    ~header:[ "sub-suite"; "alloc"; "mpk"; "transitions"; "%MU" ]
    (List.map
       (fun (row : Workloads.Paper.table2_row) ->
         [
           row.Workloads.Paper.t2_sub;
           pct row.Workloads.Paper.t2_alloc_pct;
           pct row.Workloads.Paper.t2_mpk_pct;
           (match row.Workloads.Paper.t2_transitions with
           | Some n -> string_of_int n
           | None -> "-");
           Printf.sprintf "%.2f%%" row.Workloads.Paper.t2_pct_mu;
         ])
       Workloads.Paper.table2
    @ [
        [ "mean"; pct Workloads.Paper.table2_mean_alloc; pct Workloads.Paper.table2_mean_mpk;
          "-"; "-" ];
      ]);
  print_endline "\nFigure 4 (normalized mpk runtime per sub-suite):";
  List.iter
    (fun (label, (result : Workloads.Runner.suite_result)) ->
      let norm = 1.0 +. (result.Workloads.Runner.mean_mpk_pct /. 100.0) in
      Printf.printf "  %-10s %.3f %s\n" label norm (bar ~scale:40.0 norm))
    subs

(* --- Figures 5-7, Table 3 --- *)

let run_fig5 () = print_fig ~title:"Figure 5: Kraken normalized runtime" (Lazy.force kraken_run)
let run_fig6 () = print_fig ~title:"Figure 6: Octane normalized runtime" (Lazy.force octane_run)

let run_fig7 () =
  print_fig ~title:"Figure 7: JetStream2 normalized runtime" (Lazy.force jetstream_run);
  header "Table 3: JetStream2 overall scores (geometric mean; higher is better)";
  let result = Lazy.force jetstream_run in
  let score = Workloads.Runner.geomean_score result in
  let base = score Pkru_safe.Config.Base in
  let alloc = score Pkru_safe.Config.Alloc in
  let mpk = score Pkru_safe.Config.Mpk in
  let overhead s = (base -. s) /. s *. 100.0 in
  Util.Table.print
    ~header:[ ""; "base"; "alloc"; "mpk" ]
    [
      [ "score (base = 100)"; "100.00"; Printf.sprintf "%.2f" (alloc /. base *. 100.0);
        Printf.sprintf "%.2f" (mpk /. base *. 100.0) ];
      [ "overhead"; "-"; pct (overhead alloc); pct (overhead mpk) ];
    ];
  print_endline "\nPaper (Table 3): scores 60.31 / 61.20 / 59.94 -> overhead alloc -1.48%, mpk +0.61%"

(* --- Software-TLB microbench --- *)

(* Kept so host.json can reuse the section's result instead of re-running
   the workload. *)
let last_tlb : Workloads.Microbench.tlb_result option ref = ref None

let tlb_result ?pages ?iters () =
  match !last_tlb with
  | Some r -> r
  | None ->
    let r = Workloads.Microbench.tlb_hot ?pages ?iters () in
    last_tlb := Some r;
    r

let run_tlb () =
  header "Software TLB: page-hot checked-access loop, host wall-clock";
  let r = tlb_result () in
  if r.Workloads.Microbench.cycles_on <> r.Workloads.Microbench.cycles_off then
    failwith
      (Printf.sprintf "TLB changed simulated cycles: %d (on) vs %d (off)"
         r.Workloads.Microbench.cycles_on r.Workloads.Microbench.cycles_off);
  Printf.printf "working set %d pages x %d rounds (read+write u64 per page)\n"
    r.Workloads.Microbench.pages r.Workloads.Microbench.iters;
  Util.Table.print
    ~header:[ "config"; "host wall ms"; "sim cycles" ]
    [
      [ "tlb off"; Printf.sprintf "%.1f" (1000.0 *. r.Workloads.Microbench.wall_off_s);
        string_of_int r.Workloads.Microbench.cycles_off ];
      [ "tlb on"; Printf.sprintf "%.1f" (1000.0 *. r.Workloads.Microbench.wall_on_s);
        string_of_int r.Workloads.Microbench.cycles_on ];
    ];
  let stats = r.Workloads.Microbench.tlb in
  Printf.printf "speedup: %.2fx  hit rate: %.2f%% (%d hits, %d misses, %d flush generations)\n"
    r.Workloads.Microbench.speedup
    (100.0 *. Sim.Tlb.hit_rate stats)
    stats.Sim.Tlb.hits stats.Sim.Tlb.misses stats.Sim.Tlb.flushes;
  print_endline "(simulated cycles are identical by construction: the TLB is architecturally invisible)"

(* --- §5.4 Security --- *)

let run_security () =
  header "Security (paper 5.4 / E3): CVE-2019-11707-style arbitrary write";
  List.iter
    (fun mode ->
      match Exploit.run mode with
      | Ok outcome -> Format.printf "%a@." Exploit.pp_outcome outcome
      | Error msg -> Printf.printf "error: %s\n" msg)
    [ Pkru_safe.Config.Base; Pkru_safe.Config.Mpk ];
  print_endline
    "(paper: the base build's secret is overwritten 42 -> 1337; the mpk build dies on an MPK violation)"

(* --- §5.3 site statistics --- *)

let run_sites () =
  header "Allocation-site statistics (paper 5.3)";
  let bench =
    Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:12) "site-stats"
      (Workloads.Dom_scripts.dom_attr ~iters:60)
  in
  let suite = { Workloads.Bench_def.suite_name = "sites"; benches = [ bench ] } in
  let profile = Workloads.Runner.profile_suite suite in
  let env =
    match Pkru_safe.Env.create ~profile (Pkru_safe.Config.make Pkru_safe.Config.Mpk) with
    | Ok env -> env
    | Error msg -> failwith msg
  in
  let browser = Browser.create env in
  Browser.load_page browser bench.Workloads.Bench_def.page;
  ignore (Browser.exec_script browser bench.Workloads.Bench_def.script);
  let used = Pkru_safe.Env.sites_used env in
  let moved = Pkru_safe.Env.sites_moved env in
  Printf.printf "browser substrate: %d of %d exercised sites moved to MU (%.2f%%)\n" moved used
    (100.0 *. float_of_int moved /. float_of_int (max used 1));
  Printf.printf "paper (Servo):     %d of %d allocation sites moved to MU (%.2f%%)\n"
    Workloads.Paper.servo_sites_moved Workloads.Paper.servo_alloc_sites
    (100.0
    *. float_of_int Workloads.Paper.servo_sites_moved
    /. float_of_int Workloads.Paper.servo_alloc_sites)

(* --- Ablations --- *)

let run_ablations () =
  header "Ablation: MU allocator choice (paper 5.3)";
  let slow, fast = Workloads.Ablation.fast_mu_allocator () in
  Printf.printf "alloc-config overhead with libc-style MU allocator: %s\n" (pct slow);
  Printf.printf "alloc-config overhead with jemalloc-style MU:       %s\n" (pct fast);
  print_endline "(paper: replacing the MU allocator removed any detectable allocator overhead)";
  header "Ablation: WRPKRU cost sweep (gate-bound workload)";
  let sweep = Workloads.Ablation.gate_cost_sweep ~wrpkru_costs:[ 0; 7; 14; 28; 56; 112 ] in
  Util.Table.print
    ~header:[ "wrpkru cycles"; "mpk overhead" ]
    (List.map (fun (c, o) -> [ string_of_int c; pct o ]) sweep);
  header "Ablation: profile coverage (paper 6: missed dataflows crash)";
  let coverage =
    Workloads.Ablation.profile_coverage ~fractions:[ 1.0; 0.75; 0.5; 0.25; 0.0 ] ~seed:11
  in
  Util.Table.print
    ~header:[ "profile kept"; "enforcement run" ]
    (List.map
       (fun (f, survived) ->
         [ Printf.sprintf "%.0f%%" (100.0 *. f); (if survived then "completed" else "CRASHED") ])
       coverage);
  header "Ablation: engine execution tier (AST walker vs bytecode VM)";
  (let cycles tier =
     let env =
       match Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base) with
       | Ok env -> env
       | Error msg -> failwith msg
     in
     let engine = Engine.create ~seed:7 env in
     ignore (Engine.eval_string ~tier engine (Workloads.Kernels.fft ~n:256));
     Pkru_safe.Env.cycles env
   in
   let ast = cycles Engine.Ast_tier in
   let bc = cycles Engine.Bytecode_tier in
   Printf.printf "fft kernel, AST tier:      %8d cycles\n" ast;
   Printf.printf "fft kernel, bytecode tier: %8d cycles (%+.2f%%)\n" bc
     (Util.Stats.percent_overhead ~baseline:(float_of_int ast) ~measured:(float_of_int bc));
   print_endline "(both tiers are observationally identical; see the differential tests)");
  header "Ablation: static analysis vs dynamic profiling (paper 6)";
  (let source =
     (* Use the shipped sample program when run from the repo root;
        otherwise build the equivalent module directly. *)
     if Sys.file_exists "examples/programs/shared_buffer.ir" then
       Ir.Ir_text.of_string
         (In_channel.with_open_text "examples/programs/shared_buffer.ir" In_channel.input_all)
     else begin
       let m = Ir.Module_ir.create () in
       let u = Ir.Builder.create ~name:"u_write" ~crate:"clib" ~nparams:1 () in
       Ir.Builder.store u ~src:(Ir.Instr.Imm 1337) ~addr:(Ir.Instr.Reg 0) ();
       Ir.Builder.ret u None;
       Ir.Module_ir.add_func m (Ir.Builder.finish u);
       Ir.Module_ir.mark_untrusted m "clib";
       let f = Ir.Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
       let shared = Ir.Builder.alloc f (Ir.Instr.Imm 64) in
       ignore (Ir.Builder.call f "u_write" [ Ir.Instr.Reg shared ]);
       let v = Ir.Builder.load f (Ir.Instr.Reg shared) in
       Ir.Builder.ret f (Some (Ir.Instr.Reg v));
       Ir.Module_ir.add_func m (Ir.Builder.finish f);
       m
     end
   in
   let dynamic =
     match
       Toolchain.Pipeline.collect_profile source
         ~inputs:[ (fun i -> ignore (Toolchain.Interp.run i "main" [])) ]
     with
     | Ok p -> p
     | Error msg -> failwith msg
   in
   let dyn_build =
     match Toolchain.Pipeline.build ~profile:dynamic ~mode:Pkru_safe.Config.Mpk source with
     | Ok b -> b
     | Error msg -> failwith msg
   in
   let static_build, static_result =
     match Toolchain.Pipeline.build_static ~mode:Pkru_safe.Config.Mpk source with
     | Ok r -> r
     | Error msg -> failwith msg
   in
   let run b = Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" [] in
   Printf.printf "dynamic profile: %d site(s) moved, main() = %d\n"
     dyn_build.Toolchain.Pipeline.pass_stats.Ir.Passes.sites_moved (run dyn_build);
   Printf.printf "static analysis: %d site(s) moved (%d fixpoint rounds), main() = %d\n"
     static_build.Toolchain.Pipeline.pass_stats.Ir.Passes.sites_moved
     static_result.Ir.Static_taint.iterations (run static_build);
   print_endline
     "(paper: the static alternative works on small programs but over-approximates; both agree here)");
  header "Ablation: single-step profiling vs switch-on-fault (paper 4.3.2)";
  let stepped, switched = Workloads.Ablation.single_step_vs_switch () in
  Printf.printf "sites recorded with single-stepping:       %d\n" stepped;
  Printf.printf "sites recorded with compartment-switching: %d (misses later flows)\n" switched

(* --- Mitigation: enforcement-mode fault-recovery policies --- *)

let mitigation_seed = 1337

(* Shared between the printed section and mitigation.json so the chaos
   runs happen at most once per invocation. *)
let mitigation_reports =
  lazy
    (List.map
       (fun policy ->
         (policy, Chaos.run ~scenario:Chaos.Coverage_gap ~policy ~seed:mitigation_seed ()))
       Runtime.Mitigator.all_policies)

let mitigation_bench =
  Workloads.Bench_def.bench
    ~page:(Workloads.Dom_scripts.page ~rows:8)
    "mitigation" (Workloads.Dom_scripts.dom_attr ~iters:60)

let mitigation_cycles =
  lazy
    (let suite =
       { Workloads.Bench_def.suite_name = "mitigation"; benches = [ mitigation_bench ] }
     in
     let profile = Workloads.Runner.profile_suite suite in
     let cycles m = m.Workloads.Runner.cycles in
     let baseline =
       cycles (Workloads.Runner.run_config ~mode:Pkru_safe.Config.Mpk ~profile mitigation_bench)
     in
     let per_policy =
       List.map
         (fun policy ->
           ( policy,
             cycles
               (Workloads.Runner.run_config ~mitigation:policy ~mode:Pkru_safe.Config.Mpk
                  ~profile mitigation_bench) ))
         Runtime.Mitigator.all_policies
     in
     (baseline, per_policy))

let run_mitigation () =
  header "Mitigation: fault-recovery policy overhead (full profile, no faults)";
  let baseline, per_policy = Lazy.force mitigation_cycles in
  Util.Table.print
    ~header:[ "policy"; "cycles"; "vs no mitigator" ]
    ([ "(none)"; string_of_int baseline; "-" ]
    :: List.map
         (fun (policy, c) ->
           [
             Runtime.Mitigator.policy_to_string policy;
             string_of_int c;
             (if c = baseline then "identical"
              else
                pct
                  (Util.Stats.percent_overhead ~baseline:(float_of_int baseline)
                     ~measured:(float_of_int c)));
           ])
         per_policy);
  print_endline
    "(an installed mitigator costs nothing until an unprofiled site faults; Abort is\n\
    \ bit-identical to no mitigator by construction)";
  header "Mitigation: coverage-gap chaos run per policy (10% of profile dropped)";
  Util.Table.print
    ~header:[ "policy"; "outcome"; "incidents"; "rerun"; "promoted sites"; "invariants" ]
    (List.map
       (fun (policy, (r : Chaos.report)) ->
         [
           Runtime.Mitigator.policy_to_string policy;
           r.Chaos.outcome;
           string_of_int r.Chaos.incidents;
           (match r.Chaos.rerun_incidents with Some n -> string_of_int n | None -> "-");
           string_of_int (List.length r.Chaos.promoted_sites);
           (if r.Chaos.invariant_failures = [] then "ok"
            else String.concat "; " r.Chaos.invariant_failures);
         ])
       (Lazy.force mitigation_reports));
  print_endline
    "(abort dies exactly like the seed; emulate/promote complete with incidents counted;\n\
    \ promote's rerun faults strictly less: quarantined sites now allocate in MU)"

(* --- Heap census + provenance audit --- *)

let census_every_default = 128

let census_bench =
  Workloads.Bench_def.bench
    ~page:(Workloads.Dom_scripts.page ~rows:12)
    "census" (Workloads.Dom_scripts.dom_attr ~iters:60)

(* Shared between the printed section and census.json: one uncensused and
   one censused run (cycles must be identical — the census is
   architecturally invisible) plus a post-run provenance scan. *)
let census_runs =
  lazy
    (let suite = { Workloads.Bench_def.suite_name = "census"; benches = [ census_bench ] } in
     let profile = Workloads.Runner.profile_suite suite in
     let plain = Workloads.Runner.run_config ~mode:Pkru_safe.Config.Mpk ~profile census_bench in
     let censused =
       Workloads.Runner.run_config ~census_every:census_every_default
         ~mode:Pkru_safe.Config.Mpk ~profile census_bench
     in
     let env =
       match Pkru_safe.Env.create ~profile (Pkru_safe.Config.make Pkru_safe.Config.Mpk) with
       | Ok env -> env
       | Error msg -> failwith msg
     in
     Pkru_safe.Env.track_census env;
     let browser =
       Browser.create ~engine_seed:census_bench.Workloads.Bench_def.engine_seed env
     in
     Browser.load_page browser census_bench.Workloads.Bench_def.page;
     ignore (Browser.exec_script browser census_bench.Workloads.Bench_def.script);
     let audit_report =
       Audit.scan
         ~metadata:(Option.get (Pkru_safe.Env.census_metadata env))
         (Pkru_safe.Env.pkalloc env)
     in
     (plain, censused, audit_report))

let run_census () =
  header "Heap census + provenance audit (dom-attr, mpk)";
  let plain, censused, audit_report = Lazy.force census_runs in
  if plain.Workloads.Runner.cycles <> censused.Workloads.Runner.cycles then
    failwith
      (Printf.sprintf "census changed simulated cycles: %d (off) vs %d (on)"
         plain.Workloads.Runner.cycles censused.Workloads.Runner.cycles);
  Printf.printf "cycles %d with the census off and on (identical by construction)\n"
    plain.Workloads.Runner.cycles;
  let census =
    match censused.Workloads.Runner.census with Some c -> c | None -> assert false
  in
  Printf.printf "%d snapshot(s), 1 every %d cycles\n"
    (Telemetry.Census.taken_total census)
    (Telemetry.Census.every census);
  (match Telemetry.Census.latest census with
  | None -> ()
  | Some snap ->
    Printf.printf "last snapshot (cycle %d):\n" snap.Telemetry.Census.at_cycle;
    Util.Table.print
      ~header:[ "pool"; "live bytes"; "objects"; "pages"; "peak pages"; "frag" ]
      (List.map
         (fun (p : Telemetry.Census.pool_stats) ->
           [
             p.Telemetry.Census.cp_pool;
             string_of_int p.Telemetry.Census.cp_live_bytes;
             string_of_int p.Telemetry.Census.cp_live_objects;
             string_of_int p.Telemetry.Census.cp_pages_in_use;
             string_of_int p.Telemetry.Census.cp_high_water_pages;
             Printf.sprintf "%.2f" p.Telemetry.Census.cp_fragmentation;
           ])
         snap.Telemetry.Census.pools);
    Printf.printf "%d live allocation site(s); object-age log2 buckets: %d\n"
      (List.length snap.Telemetry.Census.sites)
      (List.length (Telemetry.Histogram.nonempty_buckets snap.Telemetry.Census.ages)));
  Printf.printf "provenance audit: %d U-accessible pages, %d words — %s\n"
    audit_report.Audit.scanned_pages audit_report.Audit.scanned_words
    (if Audit.leak_free audit_report then "no MT object reachable from U"
     else
       Printf.sprintf "%d MT object(s) REACHABLE FROM U" (List.length audit_report.Audit.findings));
  if not (Audit.leak_free audit_report) then
    failwith "provenance audit found MT objects reachable from U on a seed workload"

(* --- Dispatch: execution-tier equivalence + host speedup --- *)

type dispatch_row = {
  dr_label : string;
  dr_benches : int;
  dr_cycles : int;  (* summed over the suite; identical across bytecode tiers *)
  dr_wall_ast : float;
  dr_wall_ref : float;
  dr_wall_thr : float;
  dr_var_hits : int;
  dr_var_misses : int;
  dr_prop_hits : int;
  dr_prop_misses : int;
  dr_super_execs : int;
}

(* The engine-bound suites the fast tier targets.  Every bench runs under
   all three tiers; any simulated divergence between the two bytecode
   tiers is a hard failure (the threaded tier is supposed to be
   architecturally invisible), and outputs must agree with the AST tier.
   IC counters are read from each run's own engine instance (they are
   per-instance, reset at browser creation). *)
let dispatch_suites =
  [ ("dromaeo-v8", Workloads.Dromaeo.v8); ("octane", Workloads.Octane.all) ]

let run_dispatch_suite (label, (suite : Workloads.Bench_def.suite)) =
  let profile = Runtime.Profile.create () in
  let mode = Pkru_safe.Config.Base in
  let row =
    ref
      {
        dr_label = label;
        dr_benches = List.length suite.Workloads.Bench_def.benches;
        dr_cycles = 0;
        dr_wall_ast = 0.0;
        dr_wall_ref = 0.0;
        dr_wall_thr = 0.0;
        dr_var_hits = 0;
        dr_var_misses = 0;
        dr_prop_hits = 0;
        dr_prop_misses = 0;
        dr_super_execs = 0;
      }
  in
  (* Setup (machine, browser, page) is untimed — only the script run is
     the engine's work; cycles/transitions are the post-setup deltas,
     exactly as [Runner.run_config] measures them. *)
  let timed_run tier (bench : Workloads.Bench_def.bench) =
    let env =
      match Pkru_safe.Env.create ~profile (Pkru_safe.Config.make mode) with
      | Ok env -> env
      | Error msg -> failwith msg
    in
    let browser = Browser.create ~engine_seed:bench.Workloads.Bench_def.engine_seed env in
    Browser.load_page browser bench.Workloads.Bench_def.page;
    Pkru_safe.Env.reset_counters env;
    Engine.reset_stats (Browser.engine browser);
    let t0 = Unix.gettimeofday () in
    ignore (Browser.exec_script ~tier browser bench.Workloads.Bench_def.script);
    let wall = Unix.gettimeofday () -. t0 in
    ( wall,
      Pkru_safe.Env.cycles env,
      Pkru_safe.Env.transitions env,
      Browser.console browser,
      Engine.Eval.ic_stats (Engine.evaluator (Browser.engine browser)),
      Engine.threaded_stats (Browser.engine browser) )
  in
  List.iter
    (fun (bench : Workloads.Bench_def.bench) ->
      let name = bench.Workloads.Bench_def.name in
      let t_ast, _, _, out_ast, _, _ = timed_run Engine.Ast_tier bench in
      let t_ref, cyc_ref, trans_ref, out_ref, _, _ = timed_run Engine.Bytecode_tier bench in
      let t_thr, cyc_thr, trans_thr, out_thr, ic, ts = timed_run Engine.Threaded_tier bench in
      if out_ast <> out_ref || out_ref <> out_thr then
        failwith (Printf.sprintf "dispatch: %s outputs disagree across tiers" name);
      if cyc_ref <> cyc_thr || trans_ref <> trans_thr then
        failwith
          (Printf.sprintf
             "dispatch: %s simulated divergence — reference %d cycles/%d transitions vs \
              threaded %d/%d"
             name cyc_ref trans_ref cyc_thr trans_thr);
      row :=
        {
          !row with
          dr_cycles = !row.dr_cycles + cyc_ref;
          dr_wall_ast = !row.dr_wall_ast +. t_ast;
          dr_wall_ref = !row.dr_wall_ref +. t_ref;
          dr_wall_thr = !row.dr_wall_thr +. t_thr;
          dr_var_hits = !row.dr_var_hits + ic.Engine.Eval.var_hits;
          dr_var_misses = !row.dr_var_misses + ic.Engine.Eval.var_misses;
          dr_prop_hits = !row.dr_prop_hits + ts.Engine.Threaded.prop_hits;
          dr_prop_misses = !row.dr_prop_misses + ts.Engine.Threaded.prop_misses;
          dr_super_execs = !row.dr_super_execs + ts.Engine.Threaded.super_execs;
        })
    suite.Workloads.Bench_def.benches;
  !row

let dispatch_rows = lazy (List.map run_dispatch_suite dispatch_suites)

let hit_rate hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int total

let run_dispatch () =
  header "Execution tiers: threaded dispatch + superinstructions + inline caches";
  let rows = Lazy.force dispatch_rows in
  Util.Table.print
    ~header:
      [ "suite"; "sim cycles"; "ast wall"; "bytecode wall"; "threaded wall"; "vs bytecode";
        "vs ast" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%s (%d benches)" r.dr_label r.dr_benches;
           string_of_int r.dr_cycles;
           Printf.sprintf "%.1fms" (1000.0 *. r.dr_wall_ast);
           Printf.sprintf "%.1fms" (1000.0 *. r.dr_wall_ref);
           Printf.sprintf "%.1fms" (1000.0 *. r.dr_wall_thr);
           ratio (r.dr_wall_ref /. r.dr_wall_thr);
           ratio (r.dr_wall_ast /. r.dr_wall_thr);
         ])
       rows);
  List.iter
    (fun r ->
      Printf.printf
        "%s ICs: var %d/%d hits (%.1f%%), prop %d/%d hits (%.1f%%), %d superinstruction \
         executions\n"
        r.dr_label r.dr_var_hits
        (r.dr_var_hits + r.dr_var_misses)
        (hit_rate r.dr_var_hits r.dr_var_misses)
        r.dr_prop_hits
        (r.dr_prop_hits + r.dr_prop_misses)
        (hit_rate r.dr_prop_hits r.dr_prop_misses)
        r.dr_super_execs)
    rows;
  print_endline
    "(simulated cycles are identical across the bytecode tiers by construction — the \n\
    \ section hard-fails on any divergence; walls are host-side only)"

let dispatch_json () =
  Util.Json.Obj
    (List.map
       (fun r ->
         ( r.dr_label,
           Util.Json.Obj
             [
               ("benches", Util.Json.Int r.dr_benches);
               ("sim_cycles", Util.Json.Int r.dr_cycles);
               ("cycles_identical", Util.Json.Bool true);
               ("ast_wall_s", Util.Json.Float r.dr_wall_ast);
               ("bytecode_wall_s", Util.Json.Float r.dr_wall_ref);
               ("threaded_wall_s", Util.Json.Float r.dr_wall_thr);
               ("speedup_vs_bytecode", Util.Json.Float (r.dr_wall_ref /. r.dr_wall_thr));
               ("speedup_vs_ast", Util.Json.Float (r.dr_wall_ast /. r.dr_wall_thr));
               ( "inline_caches",
                 Util.Json.Obj
                   [
                     ("var_hits", Util.Json.Int r.dr_var_hits);
                     ("var_misses", Util.Json.Int r.dr_var_misses);
                     ("var_hit_rate_pct", Util.Json.Float (hit_rate r.dr_var_hits r.dr_var_misses));
                     ("prop_hits", Util.Json.Int r.dr_prop_hits);
                     ("prop_misses", Util.Json.Int r.dr_prop_misses);
                     ( "prop_hit_rate_pct",
                       Util.Json.Float (hit_rate r.dr_prop_hits r.dr_prop_misses) );
                     ("super_execs", Util.Json.Int r.dr_super_execs);
                   ] );
             ] ))
       (Lazy.force dispatch_rows))

(* --- Fleet: multi-session scheduling throughput (per-CPU run queues) --- *)

(* Mixed-weight jobs so the latency percentiles actually spread: a light
   FFT and a heavier SHA kernel, interleaved round-robin. *)
let fleet_mixed_jobs =
  [
    Fleet.job_of_bench
      (Workloads.Bench_def.bench "fleet-light" (Workloads.Kernels.fft ~n:16));
    Fleet.job_of_bench
      (Workloads.Bench_def.bench "fleet-heavy" (Workloads.Kernels.crypto_sha ~iters:20));
  ]

let fleet_tiny_job =
  Fleet.job_of_bench (Workloads.Bench_def.bench "fleet-tiny" "var x = 1;")

let fleet_ident_bench =
  Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:8) "fleet-ident"
    (Workloads.Dom_scripts.dom_attr ~iters:12)

let fleet_point ~sessions ~cpus jobs =
  let t0 = Unix.gettimeofday () in
  let r = Fleet.run ~cpus ~timeslice:500 ~max_live:64 ~sessions jobs in
  let wall = Unix.gettimeofday () -. t0 in
  if r.Fleet.r_completed <> sessions then
    failwith
      (Printf.sprintf "fleet: %d of %d session(s) did not complete (%d oom, %d failed)"
         (sessions - r.Fleet.r_completed)
         sessions r.Fleet.r_oom r.Fleet.r_failed);
  (r, wall)

(* The scaling table (1k at 1/2/4 CPUs, 10k at 4) plus the 100k smoke.
   Shared by the printed section and fleet.json. *)
let fleet_runs =
  lazy
    (let scale =
       List.map
         (fun (sessions, cpus) -> fleet_point ~sessions ~cpus fleet_mixed_jobs)
         [ (1_000, 1); (1_000, 2); (1_000, 4); (10_000, 4) ]
     in
     let smoke = fleet_point ~sessions:100_000 ~cpus:4 [ fleet_tiny_job ] in
     (scale, smoke))

let fleet_trace_json sink =
  Util.Json.to_string
    (Util.Json.List (List.map Telemetry.Event.record_to_json (Telemetry.Sink.events sink)))

(* Single-session bit-identity vs the plain runner: same cycles, same
   transitions, same event trace — with a timeslice small enough that the
   fleet run yields mid-script, proving the yield hook is architecturally
   invisible.  Returns (cycles, yields) for the report. *)
let fleet_identity =
  lazy
    (let profile = Runtime.Profile.create () in
     let runner =
       Workloads.Runner.run_config ~telemetry:true ~mode:Pkru_safe.Config.Base ~profile
         fleet_ident_bench
     in
     let fleet =
       Fleet.run ~telemetry:true ~timeslice:200 ~sessions:1
         [ Fleet.job_of_bench fleet_ident_bench ]
     in
     let sr = List.hd fleet.Fleet.r_results in
     if sr.Fleet.sr_cycles <> runner.Workloads.Runner.cycles then
       failwith
         (Printf.sprintf "fleet: single-session cycles diverge from runner — %d vs %d"
            sr.Fleet.sr_cycles runner.Workloads.Runner.cycles);
     if sr.Fleet.sr_transitions <> runner.Workloads.Runner.transitions then
       failwith
         (Printf.sprintf "fleet: single-session transitions diverge from runner — %d vs %d"
            sr.Fleet.sr_transitions runner.Workloads.Runner.transitions);
     (match (fleet.Fleet.r_trace, runner.Workloads.Runner.trace) with
     | Some ft, Some rt ->
       if fleet_trace_json ft <> fleet_trace_json rt then
         failwith "fleet: single-session event trace diverges from runner";
       List.iter
         (fun counter ->
           if Telemetry.Sink.count ft counter <> Telemetry.Sink.count rt counter then
             failwith
               (Printf.sprintf "fleet: single-session counter %S diverges from runner" counter))
         [ "tlb_hit"; "tlb_miss"; "tlb_flush"; "engine_var_ic_hit"; "engine_var_ic_miss";
           "engine_prop_ic_hit"; "engine_prop_ic_miss"; "engine_super_exec";
           "engine_selector_hit"; "engine_selector_miss" ]
     | _ -> failwith "fleet: missing trace on one side of the identity check");
     (sr.Fleet.sr_cycles, fleet.Fleet.r_yields))

let run_fleet () =
  header "Fleet: N concurrent sessions, per-CPU run queues, cooperative scheduling";
  let scale, (smoke, smoke_wall) = Lazy.force fleet_runs in
  Util.Table.print
    ~header:
      [ "sessions"; "cpus"; "sessions/sec"; "p50 latency"; "p99 latency"; "yields"; "steals";
        "host wall" ]
    (List.map
       (fun ((r : Fleet.result), wall) ->
         [
           string_of_int r.Fleet.r_sessions;
           string_of_int r.Fleet.r_cpus;
           Printf.sprintf "%.0f" r.Fleet.r_sessions_per_sec;
           Printf.sprintf "%.0fns" r.Fleet.r_p50_latency_ns;
           Printf.sprintf "%.0fns" r.Fleet.r_p99_latency_ns;
           string_of_int r.Fleet.r_yields;
           string_of_int r.Fleet.r_steals;
           Printf.sprintf "%.2fs" wall;
         ])
       (scale @ [ (smoke, smoke_wall) ]));
  (* Throughput must scale: 4 CPUs at least 2x 1 CPU on the same 1k
     workload (a hard gate — the simulated scheduler has no contention
     excuse for less). *)
  let sps ~sessions ~cpus =
    let r, _ =
      List.find
        (fun ((r : Fleet.result), _) ->
          r.Fleet.r_sessions = sessions && r.Fleet.r_cpus = cpus)
        scale
    in
    r.Fleet.r_sessions_per_sec
  in
  let s1 = sps ~sessions:1_000 ~cpus:1 and s4 = sps ~sessions:1_000 ~cpus:4 in
  if s4 < 2.0 *. s1 then
    failwith
      (Printf.sprintf "fleet: poor scaling — %.0f sessions/sec at 4 CPUs vs %.0f at 1" s4 s1);
  Printf.printf "scaling 1 -> 4 CPUs: %.2fx sessions/sec\n" (s4 /. s1);
  (* Per-session results must not depend on the CPU count: each session
     owns its machine, so cycles and checksums are structural. *)
  let digest ~cpus =
    let r, _ =
      List.find
        (fun ((r : Fleet.result), _) -> r.Fleet.r_sessions = 1_000 && r.Fleet.r_cpus = cpus)
        scale
    in
    List.map
      (fun (sr : Fleet.session_result) -> (sr.Fleet.sr_name, sr.Fleet.sr_cycles, sr.Fleet.sr_checksum))
      r.Fleet.r_results
  in
  if digest ~cpus:1 <> digest ~cpus:4 then
    failwith "fleet: per-session results changed with the CPU count";
  print_endline "per-session cycles/checksums identical at 1, 2 and 4 CPUs";
  let ident_cycles, ident_yields = Lazy.force fleet_identity in
  Printf.printf
    "single-session fleet run bit-identical to the runner (%d cycles, %d mid-script \
     yield(s); cycles, transitions, event trace and all injected counters compared)\n"
    ident_cycles ident_yields

let fleet_json () =
  let scale, (smoke, smoke_wall) = Lazy.force fleet_runs in
  let ident_cycles, ident_yields = Lazy.force fleet_identity in
  let point ((r : Fleet.result), wall) =
    match Fleet.to_json r with
    | Util.Json.Obj fields -> Util.Json.Obj (fields @ [ ("host_wall_s", Util.Json.Float wall) ])
    | other -> other
  in
  Util.Json.Obj
    [
      ("scaling", Util.Json.List (List.map point scale));
      ("smoke_100k", point (smoke, smoke_wall));
      ( "single_session_identity",
        Util.Json.Obj
          [
            ("bit_identical", Util.Json.Bool true);
            ("cycles", Util.Json.Int ident_cycles);
            ("mid_script_yields", Util.Json.Int ident_yields);
          ] );
    ]

(* --- Garmr: attack battery + hardened-gate defense invisibility --- *)

(* Arming every defense on a benign fleet must be architecturally
   invisible: the scrub/filter/re-verify pass paths charge no cycles and
   emit nothing, so per-session cycles, transitions and checksums — and
   the makespan — are bit-identical to the undefended run.  Hard gate. *)
let garmr_invisibility =
  lazy
    (let run defenses = Fleet.run ~defenses ~cpus:2 ~timeslice:200 ~sessions:16 fleet_mixed_jobs in
     let off = run Pkru_safe.Config.no_defenses in
     let on = run Pkru_safe.Config.all_defenses in
     let digest (r : Fleet.result) =
       List.map
         (fun (sr : Fleet.session_result) ->
           (sr.Fleet.sr_name, sr.Fleet.sr_cycles, sr.Fleet.sr_transitions, sr.Fleet.sr_checksum))
         r.Fleet.r_results
     in
     if digest off <> digest on then
       failwith "garmr: armed defenses changed a benign fleet's cycles/checksums";
     if off.Fleet.r_makespan_cycles <> on.Fleet.r_makespan_cycles then
       failwith "garmr: armed defenses changed the benign fleet's makespan";
     (off, on))

let garmr_seed = 20_220_405

let garmr_reports = lazy (Chaos.run_attacks ~harts:2 ~seed:garmr_seed ())

let run_garmr () =
  header "Garmr attack battery: concurrent attacks vs hardened-gate defenses";
  let off, _on = Lazy.force garmr_invisibility in
  Printf.printf
    "invisibility: %d-session benign fleet bit-identical with all defenses armed (makespan \
     %d cycles, %d yields)\n\n"
    off.Fleet.r_sessions off.Fleet.r_makespan_cycles off.Fleet.r_yields;
  let reports = Lazy.force garmr_reports in
  Util.Table.print
    ~header:[ "attack"; "defense"; "undefended"; "defended"; "resume kills"; "dumps" ]
    (List.map
       (fun (r : Chaos.attack_report) ->
         [
           Exploit.Garmr.attack_to_string r.Chaos.ar_attack;
           Exploit.Garmr.defense_name r.Chaos.ar_attack;
           (if Exploit.Garmr.succeeded r.Chaos.ar_undefended then "leaked" else "STOPPED?");
           (if Exploit.Garmr.defeated r.Chaos.ar_defended then "defeated" else "LEAKED?");
           string_of_int r.Chaos.ar_defended.Exploit.Garmr.g_resume_kills;
           string_of_int (List.length r.Chaos.ar_flight_dumps);
         ])
       reports);
  let broken = List.concat_map (fun r -> r.Chaos.ar_invariant_failures) reports in
  if broken <> [] then
    failwith ("garmr: battery invariants violated — " ^ String.concat "; " broken);
  Printf.printf
    "\nall %d attack classes leak the secret undefended and are defeated defended (seed %d)\n"
    (List.length reports) garmr_seed

let garmr_json () =
  let off, _on = Lazy.force garmr_invisibility in
  Util.Json.Obj
    [
      ( "invisibility",
        Util.Json.Obj
          [
            ("bit_identical", Util.Json.Bool true);
            ("sessions", Util.Json.Int off.Fleet.r_sessions);
            ("makespan_cycles", Util.Json.Int off.Fleet.r_makespan_cycles);
          ] );
      ("seed", Util.Json.Int garmr_seed);
      ( "battery",
        Util.Json.List (List.map Chaos.attack_report_to_json (Lazy.force garmr_reports)) );
    ]

(* --- Bechamel --- *)

let run_bechamel () =
  header "Bechamel wall-clock micro-benchmarks (scaled-down experiment per table/figure)";
  let open Bechamel in
  let fresh_env () =
    match
      Pkru_safe.Env.create ~profile:(Runtime.Profile.create ())
        (Pkru_safe.Config.make Pkru_safe.Config.Mpk)
    with
    | Ok env -> env
    | Error msg -> failwith msg
  in
  let gate_env = fresh_env () in
  let gate = Pkru_safe.Env.gate gate_env in
  let machine = Pkru_safe.Env.machine gate_env in
  let buf = Pkru_safe.Env.malloc_untrusted gate_env 64 in
  let mk_suite_test ~name bench =
    let suite = { Workloads.Bench_def.suite_name = name; benches = [ bench ] } in
    let profile = Workloads.Runner.profile_suite suite in
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Workloads.Runner.run_config ~mode:Pkru_safe.Config.Mpk ~profile bench)))
  in
  let tests =
    [
      Test.make ~name:"micro.table"
        (Staged.stage (fun () -> ignore (Workloads.Microbench.run ~iterations:50 ())));
      Test.make ~name:"fig3.gate-roundtrip"
        (Staged.stage (fun () -> Runtime.Gate.call_untrusted gate (fun () -> ())));
      Test.make ~name:"sim.read_write_u64"
        (Staged.stage (fun () ->
             Sim.Machine.write_u64 machine buf 42;
             ignore (Sim.Machine.read_u64 machine buf)));
      mk_suite_test ~name:"table1.dromaeo-dom"
        (Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:4) "t1"
           (Workloads.Dom_scripts.dom_attr ~iters:8));
      mk_suite_test ~name:"table2.fig4.dromaeo-v8"
        (Workloads.Bench_def.bench "t2" (Workloads.Kernels.richards ~iterations:25));
      mk_suite_test ~name:"fig5.kraken-fft"
        (Workloads.Bench_def.bench "f5" (Workloads.Kernels.fft ~n:64));
      mk_suite_test ~name:"fig6.octane-splay"
        (Workloads.Bench_def.bench "f6" (Workloads.Kernels.splay ~nodes:60 ~lookups:60));
      mk_suite_test ~name:"fig7.table3.jetstream-sha"
        (Workloads.Bench_def.bench "f7" (Workloads.Kernels.crypto_sha ~iters:250));
    ]
  in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"pkru" ~fmt:"%s %s" tests) in
  let results = Analyze.all ols (List.hd instances) raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  Util.Table.print
    ~header:[ "benchmark"; "ns/run" ]
    (List.map
       (fun (name, ols) ->
         let estimate =
           match Analyze.OLS.estimates ols with
           | Some (e :: _) -> Printf.sprintf "%.0f" e
           | _ -> "n/a"
         in
         [ name; estimate ])
       (List.sort compare rows))

(* Artifact-style machine-readable results (the docker image's
   bench-results/*.json folders). *)
let measurement_json (m : Workloads.Runner.measurement) =
  Util.Json.Obj
    ([
       ("cycles", Util.Json.Int m.Workloads.Runner.cycles);
       ("transitions", Util.Json.Int m.Workloads.Runner.transitions);
       ("pct_mu", Util.Json.Float m.Workloads.Runner.pct_mu);
     ]
    @ (match m.Workloads.Runner.trace with
      | Some sink ->
        let attribution =
          Telemetry.Attribution.of_sink ~total_cycles:m.Workloads.Runner.cycles sink
        in
        [
          ( "telemetry",
            Telemetry.Export.summary_json ?census:m.Workloads.Runner.census sink );
          ("site_heat", Telemetry.Attribution.site_heat_json ~limit:10 attribution);
          ("flow_matrix", Telemetry.Attribution.flow_json attribution);
        ]
      | None -> [])
    @ (match m.Workloads.Runner.census with
      | Some census -> [ ("census", Telemetry.Census.digest_json census) ]
      | None -> [])
    @
    match m.Workloads.Runner.samples with
    | Some sampler -> [ ("profile", Telemetry.Sampler.to_json sampler) ]
    | None -> [])

let suite_json (result : Workloads.Runner.suite_result) =
  Util.Json.Obj
    [
      ("suite", Util.Json.String result.Workloads.Runner.suite);
      ("mean_alloc_pct", Util.Json.Float result.Workloads.Runner.mean_alloc_pct);
      ("mean_mpk_pct", Util.Json.Float result.Workloads.Runner.mean_mpk_pct);
      ("total_transitions", Util.Json.Int result.Workloads.Runner.total_transitions);
      ("pct_mu", Util.Json.Float result.Workloads.Runner.mean_pct_mu);
      ( "benchmarks",
        Util.Json.List
          (List.map
             (fun (r : Workloads.Runner.bench_result) ->
               Util.Json.Obj
                 [
                   ("name", Util.Json.String r.Workloads.Runner.bench);
                   ("base", measurement_json r.Workloads.Runner.base);
                   ("alloc", measurement_json r.Workloads.Runner.alloc);
                   ("mpk", measurement_json r.Workloads.Runner.mpk);
                   ("alloc_overhead_pct", Util.Json.Float r.Workloads.Runner.alloc_overhead_pct);
                   ("mpk_overhead_pct", Util.Json.Float r.Workloads.Runner.mpk_overhead_pct);
                   ("outputs_agree", Util.Json.Bool r.Workloads.Runner.outputs_agree);
                 ])
             result.Workloads.Runner.bench_results) );
    ]

let artifact_schema = "pkru-safe.bench-artifact/1"

let write_json_results dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let commit = Workloads.Sentinel.commit_hash () in
  let written = ref [] in
  (* Object-rooted artifacts carry the schema + commit stamp inline;
     list-rooted ones (micro.json, fig3.json, security.json) keep their
     shape — the CLI `compare` subcommand pattern-matches on it — and are
     covered by manifest.json instead. *)
  let stamp = function
    | Util.Json.Obj fields ->
      Util.Json.Obj
        (("schema", Util.Json.String artifact_schema)
        :: ("commit", Util.Json.String commit)
        :: fields)
    | other -> other
  in
  let write name json =
    written := name :: !written;
    let oc = open_out (Filename.concat dir name) in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Util.Json.to_string_pretty (stamp json)))
  in
  write "micro.json"
    (Util.Json.List
       (List.map
          (fun (r : Workloads.Microbench.result) ->
            Util.Json.Obj
              [
                ("name", Util.Json.String r.Workloads.Microbench.name);
                ("ungated", Util.Json.Float r.Workloads.Microbench.ungated_cycles_per_call);
                ("gated", Util.Json.Float r.Workloads.Microbench.gated_cycles_per_call);
                ("overhead_x", Util.Json.Float r.Workloads.Microbench.overhead_x);
              ])
          (Workloads.Microbench.run ())));
  write "fig3.json"
    (Util.Json.List
       (List.map
          (fun (loops, overhead) ->
            Util.Json.Obj
              [ ("loop_count", Util.Json.Int loops); ("normalized", Util.Json.Float overhead) ])
          (Workloads.Microbench.sweep ~loop_counts:[ 0; 5; 10; 25; 50; 75; 100; 125; 150; 175; 200 ] ())));
  List.iter
    (fun (label, result) -> write (label ^ ".json") (suite_json result))
    (List.map (fun (l, r) -> ("dromaeo-" ^ l, r)) (Lazy.force dromaeo_sub_runs)
    @ [
        ("kraken", Lazy.force kraken_run);
        ("octane", Lazy.force octane_run);
        ("jetstream2", Lazy.force jetstream_run);
      ]);
  let security =
    List.filter_map
      (fun mode ->
        match Exploit.run mode with
        | Ok o ->
          Some
            (Util.Json.Obj
               [
                 ("mode", Util.Json.String (Pkru_safe.Config.mode_to_string o.Exploit.mode));
                 ("secret_before", Util.Json.Int o.Exploit.secret_before);
                 ("secret_after", Util.Json.Int o.Exploit.secret_after);
                 ("crashed", Util.Json.Bool o.Exploit.crashed);
               ])
        | Error _ -> None)
      [ Pkru_safe.Config.Base; Pkru_safe.Config.Mpk ]
  in
  write "security.json" (Util.Json.List security);
  (let baseline, per_policy = Lazy.force mitigation_cycles in
   write "mitigation.json"
     (Util.Json.Obj
        [
          ("seed", Util.Json.Int mitigation_seed);
          ( "full_profile_cycles",
            Util.Json.Obj
              (("none", Util.Json.Int baseline)
              :: List.map
                   (fun (policy, c) ->
                     (Runtime.Mitigator.policy_to_string policy, Util.Json.Int c))
                   per_policy) );
          ( "coverage_gap",
            Util.Json.List
              (List.map (fun (_, r) -> Chaos.report_to_json r) (Lazy.force mitigation_reports))
          );
        ]));
  (* One telemetry-instrumented run per substrate family: histogram
     summaries (gate round-trip, allocation sizes, fault service) plus the
     attribution digests — site heat, the compartment flow matrix and the
     cycle-sampled folded stacks — ride along with the artifact's result
     folders.  The traced runs are separate from the timing runs above, so
     telemetry cannot perturb the reported numbers even in principle. *)
  let traced_bench name bench =
    let suite = { Workloads.Bench_def.suite_name = name; benches = [ bench ] } in
    let profile = Workloads.Runner.profile_suite suite in
    let m =
      Workloads.Runner.run_config ~telemetry:true ~sample_every:64 ~mode:Pkru_safe.Config.Mpk
        ~profile bench
    in
    ( name,
      match m.Workloads.Runner.trace with
      | Some sink ->
        let attribution =
          Telemetry.Attribution.of_sink ~total_cycles:m.Workloads.Runner.cycles sink
        in
        Util.Json.Obj
          ([
             ("summary", Telemetry.Export.summary_json sink);
             ("site_heat", Telemetry.Attribution.site_heat_json ~limit:10 attribution);
             ("flow_matrix", Telemetry.Attribution.flow_json attribution);
           ]
          @
          match m.Workloads.Runner.samples with
          | Some sampler -> [ ("profile", Telemetry.Sampler.to_json sampler) ]
          | None -> [])
      | None -> Util.Json.Null )
  in
  write "telemetry.json"
    (Util.Json.Obj
       [
         traced_bench "dom-attr"
           (Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:12) "dom-attr"
              (Workloads.Dom_scripts.dom_attr ~iters:60));
         traced_bench "richards"
           (Workloads.Bench_def.bench "richards" (Workloads.Kernels.richards ~iterations:40));
       ]);
  (let plain, censused, audit_report = Lazy.force census_runs in
   write "census.json"
     (Util.Json.Obj
        [
          ("bench", Util.Json.String census_bench.Workloads.Bench_def.name);
          ("cycles_off", Util.Json.Int plain.Workloads.Runner.cycles);
          ("cycles_on", Util.Json.Int censused.Workloads.Runner.cycles);
          ( "cycles_identical",
            Util.Json.Bool (plain.Workloads.Runner.cycles = censused.Workloads.Runner.cycles)
          );
          ( "census",
            match censused.Workloads.Runner.census with
            | Some c -> Telemetry.Census.digest_json c
            | None -> Util.Json.Null );
          ("audit", Audit.to_json audit_report);
        ]));
  write "dispatch.json" (dispatch_json ());
  write "fleet.json" (fleet_json ());
  write "garmr.json" (garmr_json ());
  (* Host-side timing: per-section wall clock for whatever ran this
     invocation, plus the TLB microbench digest (reusing the tlb
     section's result, or running a scaled-down one here) and the
     execution-tier wall comparison.  Format is documented in
     EXPERIMENTS.md. *)
  let tlb = tlb_result ~pages:8 ~iters:20_000 () in
  write "host.json"
    (Util.Json.Obj
       [
         ( "section_wall_seconds",
           Util.Json.Obj
             (List.map (fun (name, s) -> (name, Util.Json.Float s)) !section_walls) );
         ( "dispatch",
           Util.Json.Obj
             (List.map
                (fun r ->
                  ( r.dr_label,
                    Util.Json.Obj
                      [
                        ("ast_wall_s", Util.Json.Float r.dr_wall_ast);
                        ("bytecode_wall_s", Util.Json.Float r.dr_wall_ref);
                        ("threaded_wall_s", Util.Json.Float r.dr_wall_thr);
                        ( "speedup_vs_bytecode",
                          Util.Json.Float (r.dr_wall_ref /. r.dr_wall_thr) );
                        ("speedup_vs_ast", Util.Json.Float (r.dr_wall_ast /. r.dr_wall_thr));
                      ] ))
                (Lazy.force dispatch_rows)) );
         ( "tlb",
           Util.Json.Obj
             [
               ("pages", Util.Json.Int tlb.Workloads.Microbench.pages);
               ("iters", Util.Json.Int tlb.Workloads.Microbench.iters);
               ("wall_on_s", Util.Json.Float tlb.Workloads.Microbench.wall_on_s);
               ("wall_off_s", Util.Json.Float tlb.Workloads.Microbench.wall_off_s);
               ("speedup", Util.Json.Float tlb.Workloads.Microbench.speedup);
               ("cycles_on", Util.Json.Int tlb.Workloads.Microbench.cycles_on);
               ("cycles_off", Util.Json.Int tlb.Workloads.Microbench.cycles_off);
               ( "cycles_identical",
                 Util.Json.Bool
                   (tlb.Workloads.Microbench.cycles_on = tlb.Workloads.Microbench.cycles_off) );
               ("hits", Util.Json.Int tlb.Workloads.Microbench.tlb.Sim.Tlb.hits);
               ("misses", Util.Json.Int tlb.Workloads.Microbench.tlb.Sim.Tlb.misses);
               ("flushes", Util.Json.Int tlb.Workloads.Microbench.tlb.Sim.Tlb.flushes);
             ] );
       ]);
  (* Written last so it lists every other artifact in this directory. *)
  write "manifest.json"
    (Util.Json.Obj
       [
         ( "files",
           Util.Json.List
             (List.rev_map (fun f -> Util.Json.String f) !written) );
       ]);
  Printf.printf "JSON results written to %s/
" dir

(* --- Regression sentinel (--compare / --baseline-out) --- *)

let run_sentinel () =
  header "Regression sentinel: deterministic probe workloads";
  let results = Workloads.Sentinel.run_probes () in
  Util.Table.print
    ~header:[ "probe"; "sim cycles"; "transitions"; "host wall" ]
    (List.map
       (fun (r : Workloads.Sentinel.probe_result) ->
         [
           r.Workloads.Sentinel.p_name;
           string_of_int r.Workloads.Sentinel.p_cycles;
           string_of_int r.Workloads.Sentinel.p_transitions;
           Printf.sprintf "%.3fs" r.Workloads.Sentinel.p_wall_s;
         ])
       results);
  (* Twin probes express an optimisation's architectural invisibility as
     data; any divergence is a hard failure regardless of the baseline. *)
  (match Workloads.Sentinel.twin_mismatches results with
  | [] ->
    Printf.printf "twin probes cycle-equal: %s\n"
      (String.concat ", "
         (List.map (fun (a, b) -> Printf.sprintf "%s = %s" a b) Workloads.Sentinel.twin_pairs))
  | pairs ->
    failwith
      (Printf.sprintf "sentinel twin probes diverged: %s"
         (String.concat ", " (List.map (fun (a, b) -> a ^ " vs " ^ b) pairs))));
  (match !baseline_out with
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        output_string oc
          (Util.Json.to_string_pretty (Workloads.Sentinel.baseline_json results) ^ "\n"));
    Printf.printf "baseline written to %s (commit %s)\n" path (Workloads.Sentinel.commit_hash ())
  | None -> ());
  match !compare_file with
  | None -> true
  | Some path ->
    let commit, baseline =
      Workloads.Sentinel.baseline_of_json
        (Util.Json.of_string (In_channel.with_open_text path In_channel.input_all))
    in
    let verdicts =
      Workloads.Sentinel.compare_results ~wall_tolerance:!wall_tolerance ~baseline results
    in
    print_newline ();
    print_string (Workloads.Sentinel.render_comparison ~commit verdicts);
    if not (Workloads.Sentinel.has_regression verdicts) then true
    else begin
      print_endline
        (if !compare_strict then "cycle drift detected; failing (--compare-strict)"
         else
           "cycle drift detected — warn-only gate, not failing the build; re-run with \
            --compare-strict to gate hard, or regenerate the baseline with --baseline-out \
            if the change is intended");
      not !compare_strict
    end

let () =
  print_endline "PKRU-Safe reproduction: benchmark harness";
  print_endline "Cycle counts are simulated machine cycles; see DESIGN.md section 5.";
  if section "micro" then timed "micro" run_micro;
  if section "fig3" then timed "fig3" run_fig3;
  if section "table1" then timed "table1" run_table1;
  if section "table2" then timed "table2" run_table2;
  if section "fig5" then timed "fig5" run_fig5;
  if section "fig6" then timed "fig6" run_fig6;
  if section "fig7" then timed "fig7" run_fig7;
  if section "security" then timed "security" run_security;
  if section "sites" then timed "sites" run_sites;
  if section "ablations" then timed "ablations" run_ablations;
  if section "tlb" then timed "tlb" run_tlb;
  if section "mitigation" then timed "mitigation" run_mitigation;
  if section "census" then timed "census" run_census;
  if section "dispatch" then timed "dispatch" run_dispatch;
  if section "fleet" then timed "fleet" run_fleet;
  if section "garmr" then timed "garmr" run_garmr;
  if (not !skip_bechamel) && section "bechamel" then timed "bechamel" run_bechamel;
  let sentinel_ok =
    if sentinel_requested () then begin
      let ok = ref true in
      timed "sentinel" (fun () -> ok := run_sentinel ());
      !ok
    end
    else true
  in
  (match !json_dir with
  | Some dir -> write_json_results dir
  | None -> ());
  print_endline "\ndone.";
  if not sentinel_ok then exit 1
