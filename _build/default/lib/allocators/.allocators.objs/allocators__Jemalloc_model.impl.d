lib/allocators/jemalloc_model.ml: Alloc_stats Array Bytes Char Hashtbl Pool Printf Sim Size_class Vmm
