lib/allocators/dlmalloc_model.ml: Alloc_stats Array Hashtbl List Pool Printf Sim Vmm
