lib/allocators/alloc_stats.mli: Format
