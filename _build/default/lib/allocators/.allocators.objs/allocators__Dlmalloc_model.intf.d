lib/allocators/dlmalloc_model.mli: Alloc_stats Pool Sim
