lib/allocators/size_class.mli:
