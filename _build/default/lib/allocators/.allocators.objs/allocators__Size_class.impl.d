lib/allocators/size_class.ml: Array Vmm
