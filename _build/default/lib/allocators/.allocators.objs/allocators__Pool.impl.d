lib/allocators/pool.ml: List Mpk Sim Vmm
