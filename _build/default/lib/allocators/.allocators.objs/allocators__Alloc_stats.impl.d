lib/allocators/alloc_stats.ml: Format
