lib/allocators/pkalloc.mli: Alloc_stats Mpk Pool Sim
