lib/allocators/jemalloc_model.mli: Alloc_stats Pool Sim
