lib/allocators/pkalloc.ml: Alloc_stats Dlmalloc_model Jemalloc_model Mpk Pool Printf Sim Vmm
