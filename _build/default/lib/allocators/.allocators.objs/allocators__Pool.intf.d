lib/allocators/pool.mli: Mpk Sim
