(* The ladder matches jemalloc's classic small classes: multiples of 8 up
   to 128, then progressively coarser steps up to 3584. *)
let ladder =
  [|
    8; 16; 24; 32; 40; 48; 56; 64; 80; 96; 112; 128; 160; 192; 224; 256; 320; 384; 448; 512;
    640; 768; 896; 1024; 1280; 1536; 1792; 2048; 2560; 3072; 3584;
  |]

type t = int

let count = Array.length ladder

let max_small = ladder.(count - 1)

let of_size n =
  if n <= 0 || n > max_small then None
  else
    (* The ladder is tiny; a linear scan is clearer than binary search and
       not a bottleneck (simulated cost is charged separately). *)
    let rec find i = if ladder.(i) >= n then Some i else find (i + 1) in
    find 0

let bytes c = ladder.(c)

let page_size = Vmm.Layout.page_size

let run_pages c =
  let b = bytes c in
  if b <= 256 then 1
  else if b <= 1024 then 2
  else if b <= 2048 then 4
  else 8

let slots_per_run c = run_pages c * page_size / bytes c

let to_int c = c
