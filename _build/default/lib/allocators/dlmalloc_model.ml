(* Boundary-tag allocator with metadata in simulated memory.

   Chunk layout (sizes are multiples of 16 and include both tags):

     c+0      header  u64 = size | in_use
     c+8      payload (fwd pointer when free)
     c+16     ...     (bck pointer when free)
     c+size-8 footer  u64 = size | in_use

   Segments are page spans bracketed by 8-byte in_use sentinels of size 0,
   so coalescing walks can never leave the segment. *)

type segment = {
  seg_base : int;
  seg_len : int;
}

type t = {
  machine : Sim.Machine.t;
  pool : Pool.t;
  bins : int array; (* head chunk address per bin; 0 = empty *)
  live : (int, unit) Hashtbl.t; (* payload address -> () *)
  mutable segments : segment list;
  stats : Alloc_stats.t;
}

let bin_count = 96
let min_chunk = 32
let default_segment_pages = 16
let cost_op_overhead = 20

let create machine pool =
  {
    machine;
    pool;
    bins = Array.make bin_count 0;
    live = Hashtbl.create 256;
    segments = [];
    stats = Alloc_stats.create ();
  }

let page_size = Vmm.Layout.page_size

let in_use v = v land 1 = 1
let chunk_size v = v land lnot 15
let tag ~size ~used = size lor (if used then 1 else 0)

let read t addr = Sim.Machine.read_u64 t.machine addr
let write t addr v = Sim.Machine.write_u64 t.machine addr v

let set_tags t c size used =
  write t c (tag ~size ~used);
  write t (c + size - 8) (tag ~size ~used)

let round16 n = (n + 15) land lnot 15

let rec log2 v = if v <= 1 then 0 else 1 + log2 (v / 2)

let bin_index size =
  let size16 = size lsr 4 in
  if size16 < 64 then size16 else 64 + min 31 (log2 (size / 1024))

(* Free-list surgery; fwd lives at c+8, bck at c+16. *)

let insert_free t c size =
  let b = bin_index size in
  let head = t.bins.(b) in
  write t (c + 8) head;
  write t (c + 16) 0;
  if head <> 0 then write t (head + 16) c;
  t.bins.(b) <- c

let unlink_free t c size =
  let b = bin_index size in
  let fwd = read t (c + 8) in
  let bck = read t (c + 16) in
  if bck = 0 then t.bins.(b) <- fwd else write t (bck + 8) fwd;
  if fwd <> 0 then write t (fwd + 16) bck

let new_segment t min_bytes =
  let pages = max default_segment_pages ((min_bytes + 16 + page_size - 1) / page_size) in
  match Pool.alloc_span t.pool pages with
  | None -> false
  | Some base ->
    let len = pages * page_size in
    (* Start and end sentinels: fake in-use chunks of size 0. *)
    write t base (tag ~size:0 ~used:true);
    write t (base + len - 8) (tag ~size:0 ~used:true);
    let c = base + 8 in
    let size = len - 16 in
    set_tags t c size false;
    insert_free t c size;
    t.segments <- { seg_base = base; seg_len = len } :: t.segments;
    true

(* First fit: scan bins from the request's bin upward, walking each list. *)
let find_fit t req =
  let rec scan_bin b =
    if b >= bin_count then None
    else
      let rec walk c =
        if c = 0 then scan_bin (b + 1)
        else
          let hdr = read t c in
          if chunk_size hdr >= req then Some (c, chunk_size hdr) else walk (read t (c + 8))
      in
      walk t.bins.(b)
  in
  scan_bin (bin_index req)

let alloc t size =
  if size <= 0 then invalid_arg "Dlmalloc_model.alloc: non-positive size";
  Sim.Machine.charge t.machine cost_op_overhead;
  let req = max min_chunk (round16 (size + 16)) in
  let attempt () =
    match find_fit t req with
    | None -> None
    | Some (c, found_size) ->
      unlink_free t c found_size;
      let remainder = found_size - req in
      let size_taken =
        if remainder >= min_chunk then begin
          let r = c + req in
          set_tags t r remainder false;
          insert_free t r remainder;
          req
        end
        else found_size
      in
      set_tags t c size_taken true;
      Some c
  in
  let chunk =
    match attempt () with
    | Some c -> Some c
    | None -> if new_segment t req then attempt () else None
  in
  match chunk with
  | None -> None
  | Some c ->
    let payload = c + 8 in
    Hashtbl.replace t.live payload ();
    Alloc_stats.record_alloc t.stats (chunk_size (read t c) - 16);
    Some payload

let free t payload =
  if not (Hashtbl.mem t.live payload) then
    invalid_arg (Printf.sprintf "Dlmalloc_model.free: unknown or freed pointer 0x%x" payload);
  Hashtbl.remove t.live payload;
  Sim.Machine.charge t.machine cost_op_overhead;
  let c = payload - 8 in
  let hdr = read t c in
  if not (in_use hdr) then
    invalid_arg (Printf.sprintf "Dlmalloc_model.free: double free at 0x%x" payload);
  let size = chunk_size hdr in
  let footer = read t (c + size - 8) in
  if footer <> hdr then
    invalid_arg (Printf.sprintf "Dlmalloc_model.free: corrupted boundary tag at 0x%x" payload);
  Alloc_stats.record_free t.stats (size - 16);
  (* Coalesce with the following chunk. *)
  let c, size =
    let next = c + size in
    let next_hdr = read t next in
    if in_use next_hdr then (c, size)
    else begin
      let next_size = chunk_size next_hdr in
      unlink_free t next next_size;
      (c, size + next_size)
    end
  in
  (* Coalesce with the preceding chunk (its footer sits just below us). *)
  let c, size =
    let prev_footer = read t (c - 8) in
    if in_use prev_footer then (c, size)
    else begin
      let prev_size = chunk_size prev_footer in
      let prev = c - prev_size in
      unlink_free t prev prev_size;
      (prev, size + prev_size)
    end
  in
  set_tags t c size false;
  insert_free t c size

(* In-place resize: the classic dlmalloc fast paths.  Shrinking carves the
   tail into a free chunk; growing absorbs a free successor. *)
let try_resize t payload new_size =
  if not (Hashtbl.mem t.live payload) then
    invalid_arg (Printf.sprintf "Dlmalloc_model.try_resize: unknown pointer 0x%x" payload);
  Sim.Machine.charge t.machine cost_op_overhead;
  let c = payload - 8 in
  let size = chunk_size (read t c) in
  let needed = max min_chunk (round16 (new_size + 16)) in
  if needed <= size then begin
    (* Shrink (or exact fit): split the tail off when it makes a chunk. *)
    let remainder = size - needed in
    if remainder >= min_chunk then begin
      set_tags t c needed true;
      let r = c + needed in
      set_tags t r remainder false;
      (* Coalesce the remainder with a free successor before binning. *)
      let next = r + remainder in
      let next_hdr = read t next in
      let r, remainder =
        if in_use next_hdr then (r, remainder)
        else begin
          let next_size = chunk_size next_hdr in
          unlink_free t next next_size;
          let merged = remainder + next_size in
          set_tags t r merged false;
          (r, merged)
        end
      in
      insert_free t r remainder;
      Alloc_stats.record_free t.stats (size - needed)
    end;
    true
  end
  else begin
    let next = c + size in
    let next_hdr = read t next in
    if in_use next_hdr then false
    else begin
      let next_size = chunk_size next_hdr in
      if size + next_size < needed then false
      else begin
        unlink_free t next next_size;
        let total = size + next_size in
        let remainder = total - needed in
        if remainder >= min_chunk then begin
          set_tags t c needed true;
          let r = c + needed in
          set_tags t r remainder false;
          insert_free t r remainder;
          Alloc_stats.record_alloc t.stats (needed - size)
        end
        else begin
          set_tags t c total true;
          Alloc_stats.record_alloc t.stats (total - size)
        end;
        true
      end
    end
  end

let usable_size t payload =
  if Hashtbl.mem t.live payload then Some (chunk_size (read t (payload - 8)) - 16) else None

let owns t payload = Hashtbl.mem t.live payload

let stats t = t.stats

(* Heap validator for the property tests; uses privileged reads so it does
   not perturb cycle counts. *)
let check_heap t =
  let priv = Sim.Machine.priv_read_u64 t.machine in
  let exception Bad of string in
  try
    (* Collect every chunk threaded through the bins. *)
    let binned = Hashtbl.create 64 in
    Array.iteri
      (fun b head ->
        let rec walk c steps =
          if c <> 0 then begin
            if steps > 1_000_000 then raise (Bad (Printf.sprintf "bin %d: cycle" b));
            if Hashtbl.mem binned c then raise (Bad (Printf.sprintf "bin %d: duplicate chunk" b));
            Hashtbl.add binned c ();
            walk (priv (c + 8)) (steps + 1)
          end
        in
        walk head 0)
      t.bins;
    let seen_free = ref 0 in
    List.iter
      (fun seg ->
        let first = seg.seg_base + 8 in
        let stop = seg.seg_base + seg.seg_len - 8 in
        if priv seg.seg_base <> tag ~size:0 ~used:true then raise (Bad "bad start sentinel");
        if priv stop <> tag ~size:0 ~used:true then raise (Bad "bad end sentinel");
        let rec walk c prev_free =
          if c > stop then raise (Bad "chunk walk overran segment")
          else if c = stop then ()
          else
            let hdr = priv c in
            let size = chunk_size hdr in
            if size < min_chunk || size mod 16 <> 0 then
              raise (Bad (Printf.sprintf "bad chunk size %d at 0x%x" size c));
            if priv (c + size - 8) <> hdr then
              raise (Bad (Printf.sprintf "footer mismatch at 0x%x" c));
            let free = not (in_use hdr) in
            if free then begin
              incr seen_free;
              if prev_free then raise (Bad (Printf.sprintf "uncoalesced free chunks at 0x%x" c));
              if not (Hashtbl.mem binned c) then
                raise (Bad (Printf.sprintf "free chunk 0x%x not in any bin" c))
            end
            else if not (Hashtbl.mem t.live (c + 8)) then
              raise (Bad (Printf.sprintf "in-use chunk 0x%x not in live set" c));
            walk (c + size) free
        in
        walk first false)
      t.segments;
    if !seen_free <> Hashtbl.length binned then
      raise
        (Bad
           (Printf.sprintf "free count mismatch: %d walked vs %d binned" !seen_free
              (Hashtbl.length binned)));
    Ok ()
  with Bad msg -> Error msg
