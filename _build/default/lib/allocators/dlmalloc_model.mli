(** The untrusted-pool allocator, modelled on libc (dl)malloc.

    A boundary-tag allocator: every chunk carries an 8-byte header and an
    8-byte footer holding [size | in_use]; free chunks additionally thread
    forward/backward free-list pointers through their payload.  All of this
    metadata lives {e in simulated memory}, so every bin walk, split and
    coalesce costs checked machine loads and stores — which is precisely
    why this allocator is slower than the jemalloc model, reproducing the
    paper's finding that the MU allocator ("the libc version of malloc")
    is the source of the alloc-configuration overhead (§5.3).

    Segments are page spans drawn from a single {!Pool.t} and are guarded
    by in-memory sentinels so coalescing never crosses a segment edge. *)

type t

val create : Sim.Machine.t -> Pool.t -> t

val alloc : t -> int -> int option
(** [alloc t size]: address of a block of at least [size] bytes, 16-byte
    payload alignment; [None] when the pool is exhausted.  [size] must be
    positive. *)

val free : t -> int -> unit
(** @raise Invalid_argument on a pointer this allocator does not own, on a
    double free, and on a corrupted boundary tag. *)

val usable_size : t -> int -> int option

val try_resize : t -> int -> int -> bool
(** [try_resize t addr new_size] attempts an in-place resize: shrinking
    splits off a remainder chunk; growing coalesces with the following
    chunk when it is free and large enough.  Returns whether the block at
    [addr] now holds at least [new_size] usable bytes. *)

val owns : t -> int -> bool
(** True iff [addr] is a currently-live payload pointer of this
    allocator. *)

val stats : t -> Alloc_stats.t

val check_heap : t -> (unit, string) result
(** Walks every segment validating boundary tags, footers, sentinels and
    free-list membership — used by the property tests. *)
