(** The trusted-pool allocator, modelled on jemalloc.

    Small allocations are served from runs: page spans dedicated to a
    single size class with a slot bitmap.  Large allocations are whole page
    spans.  All pages come from one {!Pool.t} and return to it, never to
    another pool — this is the property pkalloc depends on.

    Bookkeeping lives in OCaml (conceptually inside the pool's own pages;
    we account for it via {!metadata_bytes}), and operations charge a
    calibrated cycle cost on the machine, making this the "fast" allocator
    of the pair, as jemalloc is in the paper. *)

type t

val create : Sim.Machine.t -> Pool.t -> t

val alloc : t -> int -> int option
(** [alloc t size] returns the address of a fresh block of at least [size]
    bytes (8-aligned), or [None] when the pool is exhausted.  [size] must
    be positive. *)

val free : t -> int -> unit
(** [free t addr] releases a block previously returned by [alloc].
    @raise Invalid_argument on a pointer this allocator does not own. *)

val usable_size : t -> int -> int option
(** Size of the block holding [addr] ([None] if not owned). *)

val try_resize : t -> int -> int -> bool
(** In-place resize: succeeds iff the new size still fits the block's size
    class (small) or page span (large) — jemalloc never migrates a slot in
    place. *)

val owns : t -> int -> bool

val stats : t -> Alloc_stats.t

val metadata_bytes : t -> int
(** Bytes of allocator bookkeeping attributed to the pool's compartment. *)

val live_runs : t -> int
(** Number of pages currently owned by small-class runs (for tests). *)
