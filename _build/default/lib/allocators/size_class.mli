(** jemalloc-style size classes for the trusted-pool allocator.

    Small requests are rounded up to one of a fixed ladder of classes; each
    class is served from "runs" (spans of pages segregated by class).
    Requests above {!max_small} are large and served as whole page spans. *)

type t = private int
(** Index into the class ladder. *)

val max_small : int
(** Largest size (bytes) treated as a small allocation. *)

val count : int
(** Number of small classes. *)

val of_size : int -> t option
(** [of_size n] is the smallest class that fits [n]; [None] when [n] is
    large (or non-positive). *)

val bytes : t -> int
(** Slot size of the class in bytes. *)

val run_pages : t -> int
(** Pages per run for this class, chosen to keep slack low. *)

val slots_per_run : t -> int
(** Number of objects a run of this class holds. *)

val to_int : t -> int
