(** Allocation counters shared by all allocator implementations; the
    benchmark harness uses them to report %MU (fraction of heap traffic
    served from untrusted memory, Table 1). *)

type t = {
  mutable allocs : int;
  mutable frees : int;
  mutable bytes_allocated : int;
  mutable bytes_freed : int;
}

val create : unit -> t
val live_bytes : t -> int
val record_alloc : t -> int -> unit
val record_free : t -> int -> unit
val pp : Format.formatter -> t -> unit
