type run = {
  run_base : int;
  cls : Size_class.t;
  bitmap : Bytes.t; (* one bit per slot *)
  mutable free_slots : int;
  mutable next_probe : int; (* rotating first-free search start *)
  mutable released : bool;
}

type t = {
  machine : Sim.Machine.t;
  pool : Pool.t;
  nonfull : run list array; (* per class, runs with at least one free slot *)
  page_to_run : (int, run) Hashtbl.t;
  large : (int, int) Hashtbl.t; (* base address -> pages *)
  stats : Alloc_stats.t;
  mutable metadata_bytes : int;
}

(* Cycle costs of the allocator itself (fast paths, per §5.3 jemalloc is
   the performant allocator of the pair). *)
let cost_alloc_fast = 24
let cost_free = 18
let cost_run_setup = 180
let cost_large = 150
let cost_large_free = 60

let create machine pool =
  {
    machine;
    pool;
    nonfull = Array.make Size_class.count [];
    page_to_run = Hashtbl.create 256;
    large = Hashtbl.create 64;
    stats = Alloc_stats.create ();
    metadata_bytes = 0;
  }

let page_size = Vmm.Layout.page_size

let bit_get bm i = Char.code (Bytes.get bm (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set bm i =
  Bytes.set bm (i lsr 3) (Char.chr (Char.code (Bytes.get bm (i lsr 3)) lor (1 lsl (i land 7))))

let bit_clear bm i =
  Bytes.set bm (i lsr 3)
    (Char.chr (Char.code (Bytes.get bm (i lsr 3)) land lnot (1 lsl (i land 7))))

let new_run t cls =
  let pages = Size_class.run_pages cls in
  match Pool.alloc_span t.pool pages with
  | None -> None
  | Some run_base ->
    let slots = Size_class.slots_per_run cls in
    let run =
      {
        run_base;
        cls;
        bitmap = Bytes.make ((slots + 7) / 8) '\000';
        free_slots = slots;
        next_probe = 0;
        released = false;
      }
    in
    let first_page = Vmm.Layout.page_of_addr run_base in
    for p = first_page to first_page + pages - 1 do
      Hashtbl.replace t.page_to_run p run
    done;
    t.metadata_bytes <- t.metadata_bytes + 64 + Bytes.length run.bitmap;
    Sim.Machine.charge t.machine cost_run_setup;
    Some run

(* Pop a usable run for [cls], discarding stale entries (full or released
   runs linger in the list and are skipped lazily). *)
let rec current_run t cls =
  match t.nonfull.(Size_class.to_int cls) with
  | [] ->
    (match new_run t cls with
    | None -> None
    | Some run ->
      t.nonfull.(Size_class.to_int cls) <- [ run ];
      Some run)
  | run :: rest ->
    if run.released || run.free_slots = 0 then begin
      t.nonfull.(Size_class.to_int cls) <- rest;
      current_run t cls
    end
    else Some run

let find_free_slot run =
  let slots = Size_class.slots_per_run run.cls in
  let rec probe i remaining =
    if remaining = 0 then None
    else if not (bit_get run.bitmap i) then Some i
    else probe ((i + 1) mod slots) (remaining - 1)
  in
  probe run.next_probe slots

let alloc_small t cls =
  match current_run t cls with
  | None -> None
  | Some run ->
    (match find_free_slot run with
    | None -> assert false (* free_slots > 0 guarantees a slot *)
    | Some slot ->
      bit_set run.bitmap slot;
      run.free_slots <- run.free_slots - 1;
      run.next_probe <- (slot + 1) mod Size_class.slots_per_run cls;
      Sim.Machine.charge t.machine cost_alloc_fast;
      Alloc_stats.record_alloc t.stats (Size_class.bytes cls);
      Some (run.run_base + (slot * Size_class.bytes cls)))

let alloc_large t size =
  let pages = (size + page_size - 1) / page_size in
  match Pool.alloc_span t.pool pages with
  | None -> None
  | Some addr ->
    Hashtbl.replace t.large addr pages;
    Sim.Machine.charge t.machine cost_large;
    Alloc_stats.record_alloc t.stats (pages * page_size);
    Some addr

let alloc t size =
  if size <= 0 then invalid_arg "Jemalloc_model.alloc: non-positive size";
  match Size_class.of_size size with
  | Some cls -> alloc_small t cls
  | None -> alloc_large t size

let run_of_addr t addr = Hashtbl.find_opt t.page_to_run (Vmm.Layout.page_of_addr addr)

let free t addr =
  match Hashtbl.find_opt t.large addr with
  | Some pages ->
    Hashtbl.remove t.large addr;
    Pool.free_span t.pool addr pages;
    Sim.Machine.charge t.machine cost_large_free;
    Alloc_stats.record_free t.stats (pages * page_size)
  | None ->
    (match run_of_addr t addr with
    | None -> invalid_arg (Printf.sprintf "Jemalloc_model.free: unknown pointer 0x%x" addr)
    | Some run ->
      let bytes = Size_class.bytes run.cls in
      let offset = addr - run.run_base in
      if offset mod bytes <> 0 then
        invalid_arg (Printf.sprintf "Jemalloc_model.free: misaligned pointer 0x%x" addr);
      let slot = offset / bytes in
      if not (bit_get run.bitmap slot) then
        invalid_arg (Printf.sprintf "Jemalloc_model.free: double free at 0x%x" addr);
      bit_clear run.bitmap slot;
      let was_full = run.free_slots = 0 in
      run.free_slots <- run.free_slots + 1;
      Sim.Machine.charge t.machine cost_free;
      Alloc_stats.record_free t.stats bytes;
      let slots = Size_class.slots_per_run run.cls in
      if run.free_slots = slots then begin
        (* Run entirely free: give its pages back to the pool. *)
        run.released <- true;
        let pages = Size_class.run_pages run.cls in
        let first_page = Vmm.Layout.page_of_addr run.run_base in
        for p = first_page to first_page + pages - 1 do
          Hashtbl.remove t.page_to_run p
        done;
        t.metadata_bytes <- t.metadata_bytes - (64 + Bytes.length run.bitmap);
        Pool.free_span t.pool run.run_base pages
      end
      else if was_full then
        t.nonfull.(Size_class.to_int run.cls) <-
          run :: t.nonfull.(Size_class.to_int run.cls))

let usable_size t addr =
  match Hashtbl.find_opt t.large addr with
  | Some pages -> Some (pages * page_size)
  | None ->
    (match run_of_addr t addr with
    | Some run -> Some (Size_class.bytes run.cls)
    | None -> None)

let try_resize t addr new_size =
  Sim.Machine.charge t.machine cost_free;
  match usable_size t addr with
  | Some usable -> new_size > 0 && new_size <= usable
  | None -> invalid_arg (Printf.sprintf "Jemalloc_model.try_resize: unknown pointer 0x%x" addr)

let owns t addr = Hashtbl.mem t.large addr || run_of_addr t addr <> None

let stats t = t.stats

let metadata_bytes t = t.metadata_bytes

let live_runs t = Hashtbl.length t.page_to_run
