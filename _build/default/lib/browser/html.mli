(** A small HTML parser for page loads and innerHTML assignment.

    Supports nested elements, double-quoted attributes, self-closing tags
    and text; enough for the benchmark pages.  No entities or comments. *)

type tree =
  | Element of string * (string * string) list * tree list
  | Text of string

exception Html_error of string

val parse : string -> tree list
(** @raise Html_error on mismatched or malformed tags. *)

val to_string : tree list -> string
(** Inverse of {!parse} (canonical form, for tests). *)
