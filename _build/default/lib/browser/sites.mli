(** The browser's allocation sites.

    The browser substrate is hand-written host code rather than compiled
    IR, so its allocator call sites carry fixed AllocIds (the compiler
    would have assigned equivalents).  Keeping them distinct is what lets
    the profiler discover that, e.g., script source buffers and
    getAttribute results flow into the engine while DOM node records never
    do — the "274 of 12088 sites" effect of §5.3. *)

val node_record : Runtime.Alloc_id.t
(** 64-byte DOM node records *)

val text_buffer : Runtime.Alloc_id.t
(** text node payloads *)

val attr_record : Runtime.Alloc_id.t
(** attribute list cells *)

val attr_value : Runtime.Alloc_id.t
(** attribute value bytes *)

val title_buffer : Runtime.Alloc_id.t
val script_source : Runtime.Alloc_id.t
(** script text handed to the engine *)

val inner_html : Runtime.Alloc_id.t
(** innerHTML serialisation buffers *)

val get_attribute : Runtime.Alloc_id.t
(** getAttribute result copies *)

val text_content : Runtime.Alloc_id.t
(** textContent result copies *)

val query_result : Runtime.Alloc_id.t
(** scratch used to build query results *)

val style_record : Runtime.Alloc_id.t
(** computed-style records *)

val layout_scratch : Runtime.Alloc_id.t
(** layout pass scratch buffers *)


val all : Runtime.Alloc_id.t list
(** Every browser site, for statistics. *)

val shared_with_engine : Runtime.Alloc_id.t list
(** The sites whose objects are, by construction of the bindings, read by
    the engine — what a correct profile must contain. *)
