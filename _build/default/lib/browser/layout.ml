type box = {
  x : int;
  y : int;
  width : int;
  height : int;
}

type t = {
  machine : Sim.Machine.t;
  records : (Dom.node, int) Hashtbl.t; (* node -> box record address *)
  mutable total_height : int;
}

let line_height = 16
let chars_per_line = 40

let box_record_size = 32

let write_box env records node (b : box) =
  let machine = Pkru_safe.Env.machine env in
  let addr = Pkru_safe.Env.alloc env ~site:Sites.layout_scratch box_record_size in
  Sim.Machine.write_u32 machine addr b.x;
  Sim.Machine.write_u32 machine (addr + 4) b.y;
  Sim.Machine.write_u32 machine (addr + 8) b.width;
  Sim.Machine.write_u32 machine (addr + 12) b.height;
  Hashtbl.replace records node addr

let read_box machine addr =
  {
    x = Sim.Machine.read_u32 machine addr;
    y = Sim.Machine.read_u32 machine (addr + 4);
    width = Sim.Machine.read_u32 machine (addr + 8);
    height = Sim.Machine.read_u32 machine (addr + 12);
  }

let text_height text =
  let len = String.length text in
  if len = 0 then 0 else line_height * (1 + ((len - 1) / chars_per_line))

let style_of dom node =
  match Dom.get_attribute dom node "style" with
  | Some text -> Style.parse text
  | None -> Style.default

(* Lay out [node] with its top-left at (x, y) and at most [avail] width;
   returns the height consumed. *)
let rec layout_node env dom records node ~x ~y ~avail =
  if Dom.is_text dom node then begin
    let height = text_height (Dom.text_of dom node) in
    write_box env records node { x; y; width = avail; height };
    height
  end
  else begin
    let style = style_of dom node in
    match style.Style.display with
    | Style.None_display -> 0
    | Style.Block | Style.Inline ->
      let margin = style.Style.margin in
      let padding = style.Style.padding in
      let width =
        match style.Style.width with
        | Some w -> min w (max 0 (avail - (2 * margin)))
        | None -> max 0 (avail - (2 * margin))
      in
      let content_x = x + margin + padding in
      let content_y = y + margin + padding in
      let content_width = max 0 (width - (2 * padding)) in
      let children_height =
        List.fold_left
          (fun offset child ->
            offset
            + layout_node env dom records child ~x:content_x ~y:(content_y + offset)
                ~avail:content_width)
          0 (Dom.children dom node)
      in
      let height =
        match style.Style.height with
        | Some h -> h + (2 * padding)
        | None -> children_height + (2 * padding)
      in
      write_box env records node { x = x + margin; y = y + margin; width; height };
      height + (2 * margin)
  end

let reflow ?(viewport_width = 800) dom =
  let env = Dom.env dom in
  let machine = Pkru_safe.Env.machine env in
  let records = Hashtbl.create 64 in
  let total_height =
    layout_node env dom records (Dom.root dom) ~x:0 ~y:0 ~avail:viewport_width
  in
  { machine; records; total_height }

let box_record_addr t node = Hashtbl.find_opt t.records node

let box_of t node = Option.map (read_box t.machine) (box_record_addr t node)

let document_height t = t.total_height

let boxes_computed t = Hashtbl.length t.records
