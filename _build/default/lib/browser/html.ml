type tree =
  | Element of string * (string * string) list * tree list
  | Text of string

exception Html_error of string

let () =
  Printexc.register_printer (function
    | Html_error msg -> Some ("Html.Html_error: " ^ msg)
    | _ -> None)

type cursor = { src : string; mutable pos : int }

let fail cur msg = raise (Html_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance cur;
    skip_ws cur
  | _ -> ()

let read_name cur =
  let start = cur.pos in
  let rec loop () =
    match peek cur with
    | Some c when is_name_char c ->
      advance cur;
      loop ()
    | _ -> ()
  in
  loop ();
  if cur.pos = start then fail cur "expected a name";
  String.sub cur.src start (cur.pos - start)

let read_attrs cur =
  let rec loop acc =
    skip_ws cur;
    match peek cur with
    | Some c when is_name_char c ->
      let name = read_name cur in
      skip_ws cur;
      (match peek cur with
      | Some '=' ->
        advance cur;
        skip_ws cur;
        (match peek cur with
        | Some '"' ->
          advance cur;
          let start = cur.pos in
          let rec to_quote () =
            match peek cur with
            | Some '"' -> ()
            | Some _ ->
              advance cur;
              to_quote ()
            | None -> fail cur "unterminated attribute value"
          in
          to_quote ();
          let value = String.sub cur.src start (cur.pos - start) in
          advance cur;
          loop ((name, value) :: acc)
        | _ -> fail cur "expected a quoted attribute value")
      | _ -> loop ((name, "") :: acc))
    | _ -> List.rev acc
  in
  loop []

(* Parse a sequence of nodes until [stop_tag] (or end of input when None). *)
let rec parse_nodes cur stop_tag =
  let nodes = ref [] in
  let rec loop () =
    match peek cur with
    | None ->
      (match stop_tag with
      | None -> ()
      | Some tag -> fail cur (Printf.sprintf "missing </%s>" tag))
    | Some '<' ->
      if cur.pos + 1 < String.length cur.src && cur.src.[cur.pos + 1] = '/' then begin
        (* Closing tag: consume and verify against the stop tag. *)
        advance cur;
        advance cur;
        let name = read_name cur in
        skip_ws cur;
        (match peek cur with
        | Some '>' -> advance cur
        | _ -> fail cur "expected '>' in closing tag");
        match stop_tag with
        | Some tag when tag = name -> ()
        | Some tag -> fail cur (Printf.sprintf "expected </%s>, found </%s>" tag name)
        | None -> fail cur (Printf.sprintf "stray closing tag </%s>" name)
      end
      else begin
        advance cur;
        let name = read_name cur in
        let attrs = read_attrs cur in
        skip_ws cur;
        (match peek cur with
        | Some '/' ->
          advance cur;
          (match peek cur with
          | Some '>' ->
            advance cur;
            nodes := Element (name, attrs, []) :: !nodes
          | _ -> fail cur "expected '>' after '/'")
        | Some '>' ->
          advance cur;
          let kids = parse_nodes cur (Some name) in
          nodes := Element (name, attrs, kids) :: !nodes
        | _ -> fail cur "expected '>' in opening tag");
        loop ()
      end
    | Some _ ->
      let start = cur.pos in
      let rec to_tag () =
        match peek cur with
        | Some '<' | None -> ()
        | Some _ ->
          advance cur;
          to_tag ()
      in
      to_tag ();
      let text = String.sub cur.src start (cur.pos - start) in
      if String.trim text <> "" then nodes := Text text :: !nodes;
      loop ()
  in
  loop ();
  List.rev !nodes

let parse src = parse_nodes { src; pos = 0 } None

let rec node_to_string buf = function
  | Text s -> Buffer.add_string buf s
  | Element (name, attrs, kids) ->
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k v))
      attrs;
    Buffer.add_char buf '>';
    List.iter (node_to_string buf) kids;
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'

let to_string trees =
  let buf = Buffer.create 128 in
  List.iter (node_to_string buf) trees;
  Buffer.contents buf
