lib/browser/style.ml: List Option Pkru_safe Printf Sim Sites String
