lib/browser/selector.ml: Dom List Printexc Printf String
