lib/browser/browser.mli: Dom Engine Html Layout Pkru_safe Selector Sites Style
