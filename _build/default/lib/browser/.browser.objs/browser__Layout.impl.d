lib/browser/layout.ml: Dom Hashtbl List Option Pkru_safe Sim Sites String Style
