lib/browser/sites.mli: Runtime
