lib/browser/dom.mli: Pkru_safe Runtime
