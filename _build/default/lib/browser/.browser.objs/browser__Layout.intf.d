lib/browser/layout.mli: Dom
