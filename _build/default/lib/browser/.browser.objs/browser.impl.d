lib/browser/browser.ml: Dom Engine Format Hashtbl Html Layout List Pkru_safe Printf Selector Sim Sites String Style Vmm
