lib/browser/html.mli:
