lib/browser/html.ml: Buffer List Printexc Printf String
