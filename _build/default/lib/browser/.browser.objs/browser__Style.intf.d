lib/browser/style.mli: Pkru_safe Sim
