lib/browser/sites.ml: Runtime
