lib/browser/selector.mli: Dom
