lib/browser/dom.ml: Array Buffer Bytes Hashtbl List Pkru_safe Printf Sim Sites String
