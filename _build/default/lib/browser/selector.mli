(** CSS-selector matching over the machine-resident DOM.

    Supports the selector core that drives jQuery-style workloads:
    {ul
    {- simple selectors: [div], [#id], [.class], [*];}
    {- compound selectors: [div.row], [p#main.note];}
    {- descendant combinators: [ul li], [div .row span];}
    {- selector lists: [h1, h2].}}

    Class matching reads the element's [class] attribute out of simulated
    memory (whitespace-separated word match), so selector-heavy workloads
    cost checked machine loads like real style matching does. *)

type t

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on empty or malformed selectors. *)

val to_string : t -> string
(** Canonical rendering (single spaces, original component order). *)

val matches : Dom.t -> Dom.node -> t -> bool
(** Whether a node matches (considering its ancestors for descendant
    combinators). *)

val query_all : Dom.t -> t -> Dom.node list
(** All matching elements, in document order (the root itself is never
    returned; text nodes never match). *)

val query_first : Dom.t -> t -> Dom.node option
