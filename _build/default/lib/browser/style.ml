type display =
  | Block
  | Inline
  | None_display

type t = {
  display : display;
  width : int option;
  height : int option;
  margin : int;
  padding : int;
}

let default = { display = Block; width = None; height = None; margin = 0; padding = 0 }

let parse text =
  let apply style decl =
    match String.index_opt decl ':' with
    | None -> style
    | Some i ->
      let prop = String.trim (String.sub decl 0 i) in
      let value = String.trim (String.sub decl (i + 1) (String.length decl - i - 1)) in
      let int_value () = int_of_string_opt value in
      (match prop with
      | "display" ->
        (match value with
        | "block" -> { style with display = Block }
        | "inline" -> { style with display = Inline }
        | "none" -> { style with display = None_display }
        | _ -> style)
      | "width" ->
        (match int_value () with
        | Some w when w >= 0 -> { style with width = Some w }
        | _ -> style)
      | "height" ->
        (match int_value () with
        | Some h when h >= 0 -> { style with height = Some h }
        | _ -> style)
      | "margin" ->
        (match int_value () with
        | Some m when m >= 0 -> { style with margin = m }
        | _ -> style)
      | "padding" ->
        (match int_value () with
        | Some p when p >= 0 -> { style with padding = p }
        | _ -> style)
      | _ -> style)
  in
  List.fold_left apply default (String.split_on_char ';' text)

let to_string t =
  let parts = ref [] in
  let add s = parts := s :: !parts in
  (match t.display with
  | Block -> ()
  | Inline -> add "display:inline"
  | None_display -> add "display:none");
  (match t.width with
  | Some w -> add (Printf.sprintf "width:%d" w)
  | None -> ());
  (match t.height with
  | Some h -> add (Printf.sprintf "height:%d" h)
  | None -> ());
  if t.margin > 0 then add (Printf.sprintf "margin:%d" t.margin);
  if t.padding > 0 then add (Printf.sprintf "padding:%d" t.padding);
  String.concat ";" (List.rev !parts)

(* Record layout: display(u8) | has_width(u8) | has_height(u8) | pad |
   width(u32) height(u32) margin(u32) padding(u32) — 20 bytes, rounded. *)
let record_size = 24

let display_code = function
  | Block -> 0
  | Inline -> 1
  | None_display -> 2

let display_of_code = function
  | 1 -> Inline
  | 2 -> None_display
  | _ -> Block

let write_record env t =
  let machine = Pkru_safe.Env.machine env in
  let addr = Pkru_safe.Env.alloc env ~site:Sites.style_record record_size in
  Sim.Machine.write_u8 machine addr (display_code t.display);
  Sim.Machine.write_u8 machine (addr + 1) (if t.width <> None then 1 else 0);
  Sim.Machine.write_u8 machine (addr + 2) (if t.height <> None then 1 else 0);
  Sim.Machine.write_u32 machine (addr + 4) (Option.value t.width ~default:0);
  Sim.Machine.write_u32 machine (addr + 8) (Option.value t.height ~default:0);
  Sim.Machine.write_u32 machine (addr + 12) t.margin;
  Sim.Machine.write_u32 machine (addr + 16) t.padding;
  addr

let read_record machine addr =
  let display = display_of_code (Sim.Machine.read_u8 machine addr) in
  let has_width = Sim.Machine.read_u8 machine (addr + 1) = 1 in
  let has_height = Sim.Machine.read_u8 machine (addr + 2) = 1 in
  let width = Sim.Machine.read_u32 machine (addr + 4) in
  let height = Sim.Machine.read_u32 machine (addr + 8) in
  {
    display;
    width = (if has_width then Some width else None);
    height = (if has_height then Some height else None);
    margin = Sim.Machine.read_u32 machine (addr + 12);
    padding = Sim.Machine.read_u32 machine (addr + 16);
  }
