(** Styles: parsed [style="..."] attributes and computed style records.

    A computed style is stored as a machine-resident record (site
    {!Sites.style_record}) owned by the trusted side — layout data is
    exactly the kind of browser-internal state the paper's partition keeps
    in MT unless profiling shows it shared. *)

type display =
  | Block
  | Inline
  | None_display

type t = {
  display : display;
  width : int option;   (** device units; None = auto *)
  height : int option;
  margin : int;
  padding : int;
}

val default : t

val parse : string -> t
(** Parses ["display:block;width:100;margin:4"]-style declarations;
    unknown properties and malformed declarations are ignored (CSS error
    recovery). *)

val to_string : t -> string
(** Canonical rendering of the non-default properties. *)

(* Machine-resident computed-style records. *)

val record_size : int

val write_record : Pkru_safe.Env.t -> t -> int
(** Allocates a style record (from {!Sites.style_record}) and serialises
    the computed style into it; returns its address. *)

val read_record : Sim.Machine.t -> int -> t
(** Reads a computed style back from machine memory. *)
