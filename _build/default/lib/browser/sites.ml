(* Browser sites live in a reserved "function" id space (1000+) so they can
   never collide with compiler-assigned or test-synthetic ids. *)
let site n = Runtime.Alloc_id.make ~func_id:1000 ~block_id:0 ~call_id:n

let node_record = site 0
let text_buffer = site 1
let attr_record = site 2
let attr_value = site 3
let title_buffer = site 4
let script_source = site 5
let inner_html = site 6
let get_attribute = site 7
let text_content = site 8
let query_result = site 9
let style_record = site 10
let layout_scratch = site 11

let all =
  [ node_record; text_buffer; attr_record; attr_value; title_buffer; script_source; inner_html;
    get_attribute; text_content; query_result; style_record; layout_scratch ]

let shared_with_engine = [ script_source; inner_html; get_attribute; text_content ]
