(* A compound selector is a conjunction of simple conditions on one
   element; a path is a descendant chain of compounds (rightmost matches
   the candidate, the rest must match ancestors in order); a selector is a
   disjunction of paths. *)

type simple =
  | Tag of string
  | Id of string
  | Class of string
  | Universal

type compound = simple list (* non-empty *)

type t = compound list list (* disjunction of descendant chains *)

exception Parse_error of string

let () =
  Printexc.register_printer (function
    | Parse_error msg -> Some ("Selector.Parse_error: " ^ msg)
    | _ -> None)

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

(* Parse one compound like "div#main.note" or ".row" or "*". *)
let parse_compound text =
  let n = String.length text in
  let rec name_end i = if i < n && is_name_char text.[i] then name_end (i + 1) else i in
  let rec loop i acc =
    if i >= n then List.rev acc
    else
      match text.[i] with
      | '*' -> loop (i + 1) (Universal :: acc)
      | '#' ->
        let stop = name_end (i + 1) in
        if stop = i + 1 then raise (Parse_error ("empty id in " ^ text));
        loop stop (Id (String.sub text (i + 1) (stop - i - 1)) :: acc)
      | '.' ->
        let stop = name_end (i + 1) in
        if stop = i + 1 then raise (Parse_error ("empty class in " ^ text));
        loop stop (Class (String.sub text (i + 1) (stop - i - 1)) :: acc)
      | c when is_name_char c ->
        let stop = name_end i in
        loop stop (Tag (String.sub text i (stop - i)) :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected %C in selector %S" c text))
  in
  match loop 0 [] with
  | [] -> raise (Parse_error ("empty selector component in " ^ text))
  | compound -> compound

let split_on_whitespace text =
  String.split_on_char ' ' text |> List.filter (fun s -> s <> "")

let parse text =
  let alternatives =
    String.split_on_char ',' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map (fun path -> List.map parse_compound (split_on_whitespace path))
  in
  if alternatives = [] || List.exists (fun path -> path = []) alternatives then
    raise (Parse_error (Printf.sprintf "empty selector %S" text));
  alternatives

let simple_to_string = function
  | Tag t -> t
  | Id i -> "#" ^ i
  | Class c -> "." ^ c
  | Universal -> "*"

let to_string t =
  String.concat ", "
    (List.map
       (fun path ->
         String.concat " "
           (List.map (fun compound -> String.concat "" (List.map simple_to_string compound)) path))
       t)

(* --- Matching --- *)

let has_class dom node cls =
  match Dom.get_attribute dom node "class" with
  | None -> false
  | Some value -> List.mem cls (split_on_whitespace value)

let matches_simple dom node = function
  | Universal -> true
  | Tag tag -> Dom.tag_name dom node = tag
  | Id id -> Dom.get_attribute dom node "id" = Some id
  | Class cls -> has_class dom node cls

let matches_compound dom node compound =
  (not (Dom.is_text dom node)) && List.for_all (matches_simple dom node) compound

(* rev_path is the descendant chain rightmost-first; the head must match
   [node], the rest must match some strictly-ascending ancestors. *)
let rec matches_rev_path dom node = function
  | [] -> true
  | compound :: rest ->
    matches_compound dom node compound
    &&
    let rec some_ancestor current =
      match Dom.parent dom current with
      | None -> rest = []
      | Some parent ->
        (match rest with
        | [] -> true
        | next :: _ ->
          ignore next;
          matches_rev_path dom parent rest || some_ancestor parent)
    in
    (match rest with
    | [] -> true
    | _ -> some_ancestor node)

let matches dom node t = List.exists (fun path -> matches_rev_path dom node (List.rev path)) t

let query_all dom t =
  let acc = ref [] in
  let rec walk node =
    if node <> Dom.root dom && matches dom node t then acc := node :: !acc;
    List.iter walk (Dom.children dom node)
  in
  walk (Dom.root dom);
  List.rev !acc

let query_first dom t =
  match query_all dom t with
  | [] -> None
  | node :: _ -> Some node
