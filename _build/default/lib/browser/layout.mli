(** The layout pass: block layout over the machine-resident DOM.

    A reflow walks the document, computes a box (x, y, width, height) for
    every visible node from its computed style and content, and stores the
    boxes as machine-resident records (site {!Sites.layout_scratch}) —
    browser-internal MT data, like Servo's flow tree.  The model:

    {ul
    {- block elements stack vertically inside their parent's content box,
       separated by margins; inline elements and text share that flow with
       heights derived from text length (a crude line model);}
    {- [width] defaults to the parent's content width, [height] to the sum
       of children plus padding;}
    {- [display:none] subtrees get no boxes.}} *)

type box = {
  x : int;
  y : int;
  width : int;
  height : int;
}

type t

val reflow : ?viewport_width:int -> Dom.t -> t
(** Styles come from each element's [style] attribute (parsed with
    {!Style.parse}); absent attributes mean default style. *)

val box_of : t -> Dom.node -> box option
(** [None] for undisplayed or unknown nodes. *)

val document_height : t -> int
val boxes_computed : t -> int

val box_record_addr : t -> Dom.node -> int option
(** Address of the node's machine-resident box record (for tests
    asserting residency). *)
