type t = {
  alu : int;
  mul : int;
  div : int;
  float_op : int;
  branch : int;
  load : int;
  store : int;
  call : int;
  ret : int;
  call_indirect : int;
  wrpkru : int;
  rdpkru : int;
  gate_bookkeeping : int;
  soft_page_fault : int;
  signal_dispatch : int;
}

let default =
  {
    alu = 1;
    mul = 3;
    div = 20;
    float_op = 3;
    branch = 1;
    load = 2;
    store = 2;
    call = 5;
    ret = 5;
    call_indirect = 7;
    wrpkru = 28;
    rdpkru = 8;
    gate_bookkeeping = 2;
    soft_page_fault = 300;
    signal_dispatch = 700;
  }

let with_wrpkru t n = { t with wrpkru = n }
