lib/machine/signals.mli: Vmm
