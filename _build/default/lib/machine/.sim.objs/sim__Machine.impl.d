lib/machine/machine.ml: Bytes Char Cost Cpu Fun Int64 List Mpk Signals Vmm
