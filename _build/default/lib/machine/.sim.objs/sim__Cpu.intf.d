lib/machine/cpu.mli: Cost Mpk
