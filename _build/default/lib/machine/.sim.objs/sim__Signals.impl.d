lib/machine/signals.ml: List Printexc Vmm
