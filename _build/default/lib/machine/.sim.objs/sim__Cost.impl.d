lib/machine/cost.ml:
