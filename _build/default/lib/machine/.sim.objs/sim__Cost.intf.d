lib/machine/cost.mli:
