lib/machine/cpu.ml: Cost Mpk
