lib/machine/machine.mli: Bytes Cost Cpu Signals Vmm
