type t = {
  read : bool;
  write : bool;
  execute : bool;
}

let none = { read = false; write = false; execute = false }
let read_only = { read = true; write = false; execute = false }
let read_write = { read = true; write = true; execute = false }
let read_execute = { read = true; write = false; execute = true }

let validate t =
  if t.write && t.execute then Error "W^X violation: page both writable and executable"
  else Ok t

let equal a b = a.read = b.read && a.write = b.write && a.execute = b.execute

let pp fmt t =
  Format.fprintf fmt "%c%c%c"
    (if t.read then 'r' else '-')
    (if t.write then 'w' else '-')
    (if t.execute then 'x' else '-')
