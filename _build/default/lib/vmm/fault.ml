type access =
  | Read
  | Write
  | Execute

type kind =
  | Not_mapped
  | Prot_violation
  | Pkey_violation of Mpk.Pkey.t

type t = {
  addr : int;
  access : access;
  kind : kind;
}

exception Unhandled of t

let access_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Execute -> "execute"

let kind_to_string = function
  | Not_mapped -> "SEGV_MAPERR"
  | Prot_violation -> "SEGV_ACCERR"
  | Pkey_violation key -> Printf.sprintf "SEGV_PKUERR(key=%d)" (Mpk.Pkey.to_int key)

let pp fmt t =
  Format.fprintf fmt "fault: %s on %s at 0x%x" (kind_to_string t.kind)
    (access_to_string t.access) t.addr

let to_string t = Format.asprintf "%a" pp t

let () =
  Printexc.register_printer (function
    | Unhandled f -> Some ("Fault.Unhandled: " ^ to_string f)
    | _ -> None)
