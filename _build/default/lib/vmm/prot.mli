(** Page protection bits (the classic mmap PROT_* triple).

    The threat model assumes a strict W^X policy, so {!validate} refuses
    writable-and-executable combinations. *)

type t = {
  read : bool;
  write : bool;
  execute : bool;
}

val none : t
val read_only : t
val read_write : t
val read_execute : t

val validate : t -> (t, string) result
(** Rejects W^X violations (write && execute). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
