type t = { taken : bool array (* index = key number; key 0 permanently taken *) }

let create () =
  let taken = Array.make Mpk.Pkey.count false in
  taken.(0) <- true;
  { taken }

let pkey_alloc t =
  let rec scan k =
    if k >= Mpk.Pkey.count then Error "ENOSPC"
    else if not t.taken.(k) then begin
      t.taken.(k) <- true;
      Ok (Mpk.Pkey.of_int k)
    end
    else scan (k + 1)
  in
  scan 1

let reserve t key =
  let k = Mpk.Pkey.to_int key in
  if k = 0 then Error "EINVAL"
  else if t.taken.(k) then Error "EBUSY"
  else begin
    t.taken.(k) <- true;
    Ok ()
  end

let pkey_free t key =
  let k = Mpk.Pkey.to_int key in
  if k = 0 || not t.taken.(k) then Error "EINVAL"
  else begin
    t.taken.(k) <- false;
    Ok ()
  end

let is_allocated t key = t.taken.(Mpk.Pkey.to_int key)

let allocated_count t =
  let total = Array.fold_left (fun acc taken -> if taken then acc + 1 else acc) 0 t.taken in
  total - 1 (* key 0 is permanently taken but not "allocated" *)
