type region = {
  base : int;
  size : int;
  mutable prot : Prot.t;
  mutable pkey : Mpk.Pkey.t;
}

type t = {
  pages : (int, Page.t) Hashtbl.t; (* page number -> page *)
  mutable regions : region list;
  mutable demand_faults : int;
}

let create () = { pages = Hashtbl.create 4096; regions = []; demand_faults = 0 }

let aligned addr = Layout.page_offset addr = 0

let overlaps a b = a.base < b.base + b.size && b.base < a.base + a.size

let region_of t addr =
  List.find_opt (fun r -> addr >= r.base && addr < r.base + r.size) t.regions

let reserve t ~base ~size ~prot ~pkey =
  match Prot.validate prot with
  | Error _ as e -> e
  | Ok prot ->
    if not (aligned base && aligned size) then
      Error (Printf.sprintf "reserve: unaligned range 0x%x+0x%x" base size)
    else if size <= 0 then Error "reserve: empty range"
    else
      let fresh = { base; size; prot; pkey } in
      if List.exists (overlaps fresh) t.regions then
        Error (Printf.sprintf "reserve: overlap at 0x%x" base)
      else begin
        t.regions <- fresh :: t.regions;
        Ok ()
      end

let materialise t region page_number =
  let page = Page.create ~prot:region.prot ~pkey:region.pkey in
  Hashtbl.replace t.pages page_number page;
  page

let lookup t addr =
  let page_number = Layout.page_of_addr addr in
  match Hashtbl.find_opt t.pages page_number with
  | Some _ as found -> found
  | None ->
    (match region_of t addr with
    | None -> None
    | Some region ->
      t.demand_faults <- t.demand_faults + 1;
      Some (materialise t region page_number))

let map_now t ~base ~size ~prot ~pkey =
  match reserve t ~base ~size ~prot ~pkey with
  | Error _ as e -> e
  | Ok () ->
    let region =
      match region_of t base with
      | Some r -> r
      | None -> assert false
    in
    let first = Layout.page_of_addr base in
    let last = Layout.page_of_addr (base + size - 1) in
    for page_number = first to last do
      ignore (materialise t region page_number)
    done;
    Ok ()

let is_reserved t addr = region_of t addr <> None

let iter_range_pages t ~base ~size f =
  let first = Layout.page_of_addr base in
  let last = Layout.page_of_addr (base + size - 1) in
  for page_number = first to last do
    match Hashtbl.find_opt t.pages page_number with
    | Some page -> f page
    | None -> ()
  done

let covering_regions t ~base ~size =
  List.filter (fun r -> r.base < base + size && base < r.base + r.size) t.regions

let pkey_mprotect t ~base ~size pkey =
  if not (aligned base && aligned size) then
    Error (Printf.sprintf "pkey_mprotect: unaligned range 0x%x+0x%x" base size)
  else
    match covering_regions t ~base ~size with
    | [] -> Error (Printf.sprintf "pkey_mprotect: no mapping at 0x%x" base)
    | regions ->
      List.iter (fun r -> r.pkey <- pkey) regions;
      iter_range_pages t ~base ~size (fun page -> page.Page.pkey <- pkey);
      Ok ()

let mprotect t ~base ~size prot =
  match Prot.validate prot with
  | Error _ as e -> e
  | Ok prot ->
    if not (aligned base && aligned size) then
      Error (Printf.sprintf "mprotect: unaligned range 0x%x+0x%x" base size)
    else
      (match covering_regions t ~base ~size with
      | [] -> Error (Printf.sprintf "mprotect: no mapping at 0x%x" base)
      | regions ->
        List.iter (fun r -> r.prot <- prot) regions;
        iter_range_pages t ~base ~size (fun page -> page.Page.prot <- prot);
        Ok ())

let resident_pages t = Hashtbl.length t.pages

let demand_faults t = t.demand_faults
