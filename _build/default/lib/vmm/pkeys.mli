(** The kernel's protection-key allocator (pkey_alloc / pkey_free).

    x86 MPK exposes only 16 keys and Linux hands them out per process;
    key 0 is the implicit default for all memory and can never be
    allocated or freed.  Running out of keys is a real constraint —
    related work (libmpk) builds key virtualisation on top of exactly
    this interface — so the simulator models the syscalls faithfully,
    including the EINVAL/ENOSPC failure modes. *)

type t

val create : unit -> t

val pkey_alloc : t -> (Mpk.Pkey.t, string) result
(** Allocates the lowest free key. [Error "ENOSPC"] when all 15
    allocatable keys are taken. *)

val reserve : t -> Mpk.Pkey.t -> (unit, string) result
(** Claims a specific key (what a runtime that hard-codes its key layout
    effectively does).  [Error "EBUSY"] if already allocated, [Error
    "EINVAL"] for key 0. *)

val pkey_free : t -> Mpk.Pkey.t -> (unit, string) result
(** [Error "EINVAL"] when the key is not currently allocated (or is
    key 0). *)

val is_allocated : t -> Mpk.Pkey.t -> bool
val allocated_count : t -> int
(** Number of keys currently handed out (excluding key 0). *)
