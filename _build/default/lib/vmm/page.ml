type t = {
  data : Bytes.t;
  mutable prot : Prot.t;
  mutable pkey : Mpk.Pkey.t;
}

let create ~prot ~pkey = { data = Bytes.make Layout.page_size '\000'; prot; pkey }
