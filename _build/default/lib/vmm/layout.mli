(** Address-space layout of the simulated process.

    Mirrors the paper's pkalloc layout: a large region reserved at startup
    for trusted memory [MT] (the paper reserves 46 bits of address space and
    places the security-experiment secret at [0x1680_0000_0000], inside it),
    with everything else being untrusted-accessible [MU]. *)

val page_size : int
(** 4096, as on x86-64. *)

val page_shift : int
(** log2 of {!page_size}. *)

val trusted_base : int
(** Base of the MT pool reservation. *)

val trusted_size : int
(** Size of the MT pool reservation (scaled down from the paper's 46 bits
    to keep simulated page-table churn reasonable; the on-demand mapping
    semantics are identical). *)

val untrusted_base : int
(** Base of the MU pool reservation. *)

val untrusted_size : int
(** Size of the MU pool reservation. *)

val stack_base : int
(** Base of the trusted stack region (the §6 stack-protection extension
    marks T's stack as part of MT). *)

val stack_size : int

val secret_addr : int
(** The fixed address used by the paper's security experiment
    (0x1680_0000_0000), inside the trusted region. *)

val in_trusted : int -> bool
(** [in_trusted addr] is true iff [addr] falls in the MT reservation. *)

val in_untrusted : int -> bool
(** [in_untrusted addr] is true iff [addr] falls in the MU reservation. *)

val page_of_addr : int -> int
(** Page number containing an address. *)

val addr_of_page : int -> int
(** First address of a page. *)

val page_offset : int -> int
(** Offset of an address within its page. *)
