(** A single materialised page: backing bytes plus its page-table-entry
    attributes (protection bits and MPK key). *)

type t = {
  data : Bytes.t;
  mutable prot : Prot.t;
  mutable pkey : Mpk.Pkey.t;
}

val create : prot:Prot.t -> pkey:Mpk.Pkey.t -> t
(** Fresh zeroed page. *)
