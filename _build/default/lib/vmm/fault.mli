(** Fault descriptors raised by the simulated MMU.

    These play the role of the hardware page-fault error code that the
    kernel turns into a SIGSEGV with [si_code] distinguishing an unmapped
    address ([SEGV_MAPERR]), a protection violation ([SEGV_ACCERR]) and an
    MPK violation ([SEGV_PKUERR]). *)

type access =
  | Read
  | Write
  | Execute

type kind =
  | Not_mapped                    (** SEGV_MAPERR: no page at the address *)
  | Prot_violation                (** SEGV_ACCERR: page protection denied *)
  | Pkey_violation of Mpk.Pkey.t  (** SEGV_PKUERR: PKRU denied the key *)

type t = {
  addr : int;
  access : access;
  kind : kind;
}

exception Unhandled of t
(** Raised when no registered handler services the fault; the simulated
    process dies, matching default SIGSEGV disposition. *)

val access_to_string : access -> string
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
