lib/vmm/pkeys.mli: Mpk
