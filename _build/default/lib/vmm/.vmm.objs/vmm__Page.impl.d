lib/vmm/page.ml: Bytes Layout Mpk Prot
