lib/vmm/page_table.ml: Hashtbl Layout List Mpk Page Printf Prot
