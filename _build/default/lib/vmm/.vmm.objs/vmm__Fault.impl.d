lib/vmm/fault.ml: Format Mpk Printexc Printf
