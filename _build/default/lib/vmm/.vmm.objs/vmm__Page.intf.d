lib/vmm/page.mli: Bytes Mpk Prot
