lib/vmm/fault.mli: Format Mpk
