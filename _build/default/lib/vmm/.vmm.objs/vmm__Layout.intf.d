lib/vmm/layout.mli:
