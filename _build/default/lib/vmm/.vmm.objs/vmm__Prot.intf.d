lib/vmm/prot.mli: Format
