lib/vmm/pkeys.ml: Array Mpk
