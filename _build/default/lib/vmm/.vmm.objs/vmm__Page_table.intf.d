lib/vmm/page_table.mli: Mpk Page Prot
