lib/vmm/prot.ml: Format
