lib/vmm/layout.ml:
