let page_size = 4096
let page_shift = 12

(* The paper reserves the MT pool with one large mmap at startup and relies
   on on-demand paging; we keep the same base as the artifact (the secret at
   0x1680_0000_0000 lives inside it) with a smaller span, since pages are
   only materialised on first touch anyway. *)
let trusted_base = 0x1600_0000_0000
let trusted_size = 0x0100_0000_0000

let untrusted_base = 0x2000_0000_0000
let untrusted_size = 0x0100_0000_0000

let stack_base = 0x7000_0000_0000
let stack_size = 0x0100_0000 (* 16 MiB *)

let secret_addr = 0x1680_0000_0000

let in_trusted addr = addr >= trusted_base && addr < trusted_base + trusted_size
let in_untrusted addr = addr >= untrusted_base && addr < untrusted_base + untrusted_size

let page_of_addr addr = addr lsr page_shift
let addr_of_page page = page lsl page_shift
let page_offset addr = addr land (page_size - 1)
