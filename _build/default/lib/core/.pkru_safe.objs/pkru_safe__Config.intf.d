lib/core/config.mli: Allocators Mpk Sim
