lib/core/config.ml: Allocators Mpk Sim
