lib/core/env.ml: Allocators Config Fun Hashtbl List Runtime Sim
