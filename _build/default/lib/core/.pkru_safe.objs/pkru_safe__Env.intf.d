lib/core/env.mli: Allocators Config Runtime Sim
