let fail_on_error = function
  | Ok v -> v
  | Error msg -> failwith ("Workloads.Ablation: " ^ msg)

(* An allocation-heavy workload: lots of JSON churn (string buffers), run
   with the getter-heavy DOM page so shared sites see real traffic. *)
let alloc_heavy_bench =
  Bench_def.bench ~page:(Dom_scripts.page ~rows:8) "alloc-heavy"
    (Dom_scripts.dom_html ~iters:50)

let binding_bound_bench =
  Bench_def.bench ~page:(Dom_scripts.page ~rows:8) "gate-bound" (Dom_scripts.dom_attr ~iters:120)

(* Ablation workloads are read-only scripts, so we run them once to warm
   allocator pools and page mappings, then measure a steady-state run —
   otherwise cold-start demand paging (which differs between allocator
   layouts) drowns out the effect under study. *)
let measure ~mode ~mu_backend ~cost ~profile (bench : Bench_def.bench) =
  let config = Pkru_safe.Config.make ~mu_backend ~cost mode in
  let env = fail_on_error (Pkru_safe.Env.create ~profile config) in
  let browser = Browser.create ~engine_seed:bench.Bench_def.engine_seed env in
  Browser.load_page browser bench.Bench_def.page;
  ignore (Browser.exec_script browser bench.Bench_def.script);
  Pkru_safe.Env.reset_counters env;
  ignore (Browser.exec_script browser bench.Bench_def.script);
  Pkru_safe.Env.cycles env

let profile_for (bench : Bench_def.bench) =
  Runner.profile_suite { Bench_def.suite_name = "ablation"; benches = [ bench ] }

let overhead_pct ~base ~measured =
  Util.Stats.percent_overhead ~baseline:(float_of_int base) ~measured:(float_of_int measured)

let fast_mu_allocator () =
  let bench = alloc_heavy_bench in
  let profile = profile_for bench in
  let cost = Sim.Cost.default in
  let run mu_backend mode = measure ~mode ~mu_backend ~cost ~profile bench in
  let base = run Allocators.Pkalloc.Mu_dlmalloc Pkru_safe.Config.Base in
  let slow = run Allocators.Pkalloc.Mu_dlmalloc Pkru_safe.Config.Alloc in
  let fast = run Allocators.Pkalloc.Mu_jemalloc Pkru_safe.Config.Alloc in
  (overhead_pct ~base ~measured:slow, overhead_pct ~base ~measured:fast)

let gate_cost_sweep ~wrpkru_costs =
  let bench = binding_bound_bench in
  let profile = profile_for bench in
  List.map
    (fun wrpkru ->
      let cost = Sim.Cost.with_wrpkru Sim.Cost.default wrpkru in
      let run mode = measure ~mode ~mu_backend:Allocators.Pkalloc.Mu_dlmalloc ~cost ~profile bench in
      let base = run Pkru_safe.Config.Base in
      let mpk = run Pkru_safe.Config.Mpk in
      (wrpkru, overhead_pct ~base ~measured:mpk))
    wrpkru_costs

let profile_coverage ~fractions ~seed =
  let bench = binding_bound_bench in
  let full = profile_for bench in
  let rng = Util.Rng.create seed in
  List.map
    (fun fraction ->
      let profile = Runtime.Profile.subset full ~fraction ~rng in
      let survived =
        match
          measure ~mode:Pkru_safe.Config.Mpk ~mu_backend:Allocators.Pkalloc.Mu_dlmalloc
            ~cost:Sim.Cost.default ~profile bench
        with
        | (_ : int) -> true
        | exception Vmm.Fault.Unhandled _ -> false
      in
      (fraction, survived))
    fractions

(* §4.3.2: compare the adopted single-step profiler against the rejected
   "just switch compartments on the first fault" alternative.  Trusted
   code shares three distinct allocation sites with U within one FFI span;
   the alternative only ever observes the first. *)
let single_step_vs_switch () =
  let scenario install_handler =
    let machine = Sim.Machine.create () in
    let pk = fail_on_error (Allocators.Pkalloc.create machine) in
    let gate = Runtime.Gate.create machine in
    let metadata = Runtime.Metadata.create () in
    let profile = Runtime.Profile.create () in
    install_handler machine metadata profile;
    let objects =
      List.map
        (fun i ->
          let addr = Option.get (Allocators.Pkalloc.alloc_trusted pk 64) in
          Runtime.Metadata.on_alloc metadata ~addr ~size:64
            ~alloc_id:(Runtime.Alloc_id.synthetic i);
          Sim.Machine.write_u64 machine addr i;
          addr)
        [ 1; 2; 3 ]
    in
    Runtime.Gate.call_untrusted gate (fun () ->
        List.iter (fun addr -> ignore (Sim.Machine.read_u64 machine addr)) objects);
    Runtime.Profile.cardinal profile
  in
  let with_single_step =
    scenario (fun machine metadata profile ->
        let saved = ref None in
        Sim.Signals.register_trap machine.Sim.Machine.signals (fun () ->
            match !saved with
            | Some pkru ->
              machine.Sim.Machine.cpu.Sim.Cpu.pkru <- pkru;
              saved := None
            | None -> ());
        Sim.Signals.register_segv machine.Sim.Machine.signals (fun fault ->
            match fault.Vmm.Fault.kind with
            | Vmm.Fault.Pkey_violation _ ->
              (match Runtime.Metadata.lookup metadata fault.Vmm.Fault.addr with
              | Some r -> Runtime.Profile.record profile r.Runtime.Metadata.alloc_id
              | None -> ());
              saved := Some machine.Sim.Machine.cpu.Sim.Cpu.pkru;
              machine.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_enabled;
              machine.Sim.Machine.cpu.Sim.Cpu.trap_flag <- true;
              Sim.Signals.Retry
            | _ -> Sim.Signals.Pass))
  in
  let with_switch =
    scenario (fun machine metadata profile ->
        Sim.Signals.register_segv machine.Sim.Machine.signals (fun fault ->
            match fault.Vmm.Fault.kind with
            | Vmm.Fault.Pkey_violation _ ->
              (match Runtime.Metadata.lookup metadata fault.Vmm.Fault.addr with
              | Some r -> Runtime.Profile.record profile r.Runtime.Metadata.alloc_id
              | None -> ());
              (* Rejected design: reset PKRU and keep running — every later
                 access in this span is silently permitted. *)
              machine.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_enabled;
              Sim.Signals.Retry
            | _ -> Sim.Signals.Pass))
  in
  (with_single_step, with_switch)
