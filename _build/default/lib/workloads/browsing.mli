(** The profiling corpus used for the browser (paper §5.3).

    The paper profiles Servo with "the test suites for the Web Platform
    Tests, jQuery, and Web-IDL" plus Selenium-driven browsing of common
    pages, reaching ~30% code coverage — enough that only 274 sites move.
    This module is that corpus for the browser substrate: named sessions
    (a page plus interaction scripts) that together exercise every shared
    binding flow, collected into a {!Runtime.Corpus.t}. *)

type session = {
  session_name : string;
  page : string;
  scripts : string list;
}

val sessions : session list
(** wpt / jquery / webidl suite stand-ins plus browsing sessions. *)

val run_session : Pkru_safe.Env.t -> session -> string list
(** Loads the page and executes the scripts in an existing environment,
    returning collected console output. *)

val collect : unit -> Runtime.Corpus.t
(** Runs every session on a fresh profiling build and collects the runs. *)

val deployment_profile : unit -> Runtime.Profile.t
(** The merged corpus — what the enforcement build ships with. *)
