type table1_row = {
  t1_suite : string;
  t1_alloc_pct : float;
  t1_mpk_pct : float;
  t1_transitions : int;
  t1_pct_mu : float;
}

let table1 =
  [
    { t1_suite = "Dromaeo"; t1_alloc_pct = 5.89; t1_mpk_pct = 11.55;
      t1_transitions = 1_775_338_812; t1_pct_mu = 4.13 };
    { t1_suite = "JetStream2"; t1_alloc_pct = -1.48; t1_mpk_pct = 0.61;
      t1_transitions = 7_025_902; t1_pct_mu = 42.41 };
    { t1_suite = "Kraken"; t1_alloc_pct = -0.11; t1_mpk_pct = -0.41;
      t1_transitions = 5_831_503; t1_pct_mu = 48.59 };
    { t1_suite = "Octane"; t1_alloc_pct = -2.25; t1_mpk_pct = 3.28;
      t1_transitions = 425_426; t1_pct_mu = 16.57 };
  ]

type table2_row = {
  t2_sub : string;
  t2_alloc_pct : float;
  t2_mpk_pct : float;
  t2_transitions : int option;
  t2_pct_mu : float;
}

let table2 =
  [
    { t2_sub = "dom"; t2_alloc_pct = 7.85; t2_mpk_pct = 30.74;
      t2_transitions = Some 734_083_388; t2_pct_mu = 50.30 };
    { t2_sub = "v8"; t2_alloc_pct = -2.31; t2_mpk_pct = 0.53;
      t2_transitions = Some 339_698; t2_pct_mu = 4.59 };
    { t2_sub = "dromaeo"; t2_alloc_pct = 15.87; t2_mpk_pct = 4.64;
      t2_transitions = Some 730_295; t2_pct_mu = 0.57 };
    { t2_sub = "sunspider"; t2_alloc_pct = -1.34; t2_mpk_pct = -0.81;
      t2_transitions = Some 893_923; t2_pct_mu = 3.11 };
    { t2_sub = "jslib"; t2_alloc_pct = 9.39; t2_mpk_pct = 22.65;
      t2_transitions = Some 1_017_275_385; t2_pct_mu = 13.93 };
  ]

let table2_mean_alloc = 5.89
let table2_mean_mpk = 11.55

let table3_scores = [ ("base", 60.31); ("alloc", 61.20); ("mpk", 59.94) ]

let micro_overheads = [ ("Empty", 8.55); ("Read-One", 7.61); ("Callback", 6.17) ]

let servo_alloc_sites = 12088
let servo_sites_moved = 274
