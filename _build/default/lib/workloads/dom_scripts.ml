let d = string_of_int

let page ~rows =
  let buf = Buffer.create (rows * 64) in
  Buffer.add_string buf "<body>";
  for i = 0 to rows - 1 do
    Buffer.add_string buf
      (Printf.sprintf "<div class=\"row\" data=\"cell%d\"><span>item %d</span></div>" i i)
  done;
  Buffer.add_string buf "</body>";
  Buffer.contents buf

let dom_attr ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var node = domQueryTag("div")[0];
var check = 0;
for (var i = 0; i < iters; i = i + 1) {
  domSetAttribute(node, "data", "v" + (i & 15));
  var back = domGetAttribute(node, "data");
  var t = 0;
  for (var j = 0; j < 2; j = j + 1) { t = (t * 3 + back.charCodeAt(0) + j) & 1023; }
  check = (check + back.charCodeAt(1) + t) & 65535;
}
print("domattr:" + check);
|}

let dom_create ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var root = domRoot();
var host = domCreateElement("section");
domAppendChild(root, host);
var check = 0;
for (var i = 0; i < iters; i = i + 1) {
  var div = domCreateElement("div");
  domAppendChild(host, div);
  var n = domChildCount(host);
  check = check + n;
  var t = 0;
  for (var j = 0; j < 12; j = j + 1) { t = (t * 5 + n + j) & 4095; }
  check = (check + t) & 65535;
  if (n >= 8) { domRemoveChildren(host); }
}
print("domcreate:" + check);
|}

let dom_query ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var check = 0;
for (var i = 0; i < iters; i = i + 1) {
  var divs = domQueryTag("div");
  var spans = domQueryTag("span");
  check = (check + divs.length + spans.length) & 65535;
}
print("domquery:" + check);
|}

let dom_html ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var node = domQueryTag("div")[0];
var check = 0;
for (var i = 0; i < iters; i = i + 1) {
  var html = domGetInnerHTML(node);
  check = (check + html.charCodeAt(i % html.length)) & 65535;
}
print("domhtml:" + check);
|}

let dom_traverse ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var root = domRoot();
var row = domQueryTag("div")[0];
var check = 0;
for (var i = 0; i < iters; i = i + 1) {
  var txt = domTextContent(root);
  var data = domGetAttribute(row, "data");
  check = (check + txt.length + txt.charCodeAt(i % txt.length) + data.charCodeAt(0)) & 65535;
}
print("domtraverse:" + check);
|}

let jslib_toggle ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var rows = domQuery("div.row");
var check = 0;
for (var i = 0; i < iters; i = i + 1) {
  var node = rows[i % rows.length];
  domSetAttribute(node, "class", (i & 1) == 0 ? "row active" : "row");
  var cls = domGetAttribute(node, "class");
  var t = 0;
  for (var j = 0; j < 4; j = j + 1) { t = (t * 7 + cls.charCodeAt(0) + j) & 4095; }
  check = (check + cls.length + t) & 65535;
}
print("jslibtoggle:" + check);
|}

let jslib_build ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var root = domRoot();
var host = domCreateElement("ul");
domAppendChild(root, host);
var check = 0;
for (var i = 0; i < iters; i = i + 1) {
  var markup = "";
  for (var j = 0; j < 4; j = j + 1) {
    markup = markup + "<li id=\"it" + j + "\">entry " + j + "</li>";
  }
  domSetInnerHTML(host, markup);
  check = (check + domChildCount(host)) & 65535;
}
print("jslibbuild:" + check);
|}

let dom_style ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var rows = domQueryTag("div");
var check = 0;
for (var i = 0; i < iters; i = i + 1) {
  var node = rows[i % rows.length];
  domSetAttribute(node, "style", "height:" + (10 + (i & 7)) + ";margin:" + (i & 3));
  var total = domReflow();
  var box = domGetBox(node);
  check = (check + total + box.charCodeAt(0)) & 65535;
}
print("domstyle:" + check);
|}

let dom_events ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var rows = domQueryTag("div");
var hits = 0;
for (var i = 0; i < rows.length; i = i + 1) {
  domAddEventListener(rows[i], "tick", function(n) {
    var d = domGetAttribute(n, "data");
    var t = 0;
    for (var j = 0; j < 3; j = j + 1) { t = (t * 5 + d.charCodeAt(0) + j) & 1023; }
    hits = hits + d.length + (t & 1);
  });
}
var fired = 0;
for (var i = 0; i < iters; i = i + 1) {
  fired = fired + domDispatchEvent(rows[i % rows.length], "tick");
}
print("domevents:" + fired + ":" + hits);
|}

let jslib_select ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var check = 0;
for (var i = 0; i < iters; i = i + 1) {
  check = (check + domQuery(".row").length
                 + domQuery("div span").length
                 + domQuery("div.row, span").length) & 65535;
}
print("jslibselect:" + check);
|}
