(** DOM-bound workload generators (the Dromaeo dom and jslib families).

    These scripts cross the FFI boundary in tight loops — each binding
    call is two gate transitions plus, for the getters, a buffer read out
    of a shared allocation — reproducing the transition density that makes
    dom/jslib the paper's worst cases (Table 2). *)

val page : rows:int -> string
(** A page of [rows] identical <div class="row" data="...">...</div> rows. *)

val dom_attr : iters:int -> string
(** getAttribute/setAttribute ping-pong on one node. *)

val dom_create : iters:int -> string
(** createElement + appendChild + childCount loops, with periodic subtree
    teardown. *)

val dom_query : iters:int -> string
(** Repeated tag queries over the whole document. *)

val dom_html : iters:int -> string
(** innerHTML reads (serialisation into a shared buffer, then scanned). *)

val dom_traverse : iters:int -> string
(** textContent walks. *)

val jslib_toggle : iters:int -> string
(** jQuery-style: query once, then per-node attribute toggling. *)

val jslib_build : iters:int -> string
(** jQuery-style DOM building through innerHTML assignment. *)

val dom_style : iters:int -> string
(** Style mutation + reflow + box readback per iteration: the
    layout-bound workload (each box string is a shared allocation). *)

val jslib_select : iters:int -> string
(** Selector-engine stress: repeated class / descendant / list queries
    (jQuery's hot path). *)

val dom_events : iters:int -> string
(** Event dispatch with listeners that call back into the DOM: the
    deeply-nested-transition workload of §5.3 (script -> dispatch ->
    callback -> getAttribute, four compartment levels per event). *)
