type bench = {
  name : string;
  page : string;
  script : string;
  engine_seed : int;
}

type suite = {
  suite_name : string;
  benches : bench list;
}

let bench ?(page = "<body></body>") ?(seed = 1) name script =
  { name; page; script; engine_seed = seed }
