(* The Octane suite (Figure 6): mostly engine-bound kernels; overall mpk
   overhead in the paper is under 4%. *)

open Bench_def

let std_page = Dom_scripts.page ~rows:10

let all : suite =
  {
    suite_name = "Octane";
    benches =
      [
        bench ~page:std_page "Richards" (Kernels.richards ~iterations:300);
        bench ~page:std_page "DeltaBlue" (Kernels.deltablue ~chain:30 ~iters:240);
        bench ~page:std_page "Crypto" (Kernels.crypto_aes ~blocks:60 ~rounds:9);
        bench ~page:std_page "RayTrace" (Kernels.raytrace ~w:30 ~h:22);
        bench ~page:std_page "EarleyBoyer" (Kernels.earley_boyer ~depth:8 ~iters:12);
        bench ~page:std_page "RegExp" (Kernels.regexp_scan ~copies:56);
        bench ~page:std_page "Splay" (Kernels.splay ~nodes:380 ~lookups:520);
        bench ~page:std_page "SplayLatency" (Kernels.splay ~nodes:180 ~lookups:900);
        bench ~page:std_page "NavierStokes" (Kernels.navier_stokes ~n:26 ~steps:14);
        bench ~page:std_page "PdfJS" (Kernels.byte_codec ~name:"pdfjs" ~bytes:1700 ~rounds:8);
        bench ~page:std_page "Mandreel" (Kernels.float_mix ~n:260 ~iters:34);
        bench ~page:std_page "MandreelLatency" (Kernels.float_mix ~n:110 ~iters:26);
        bench ~page:std_page "Gameboy" (Kernels.byte_codec ~name:"gameboy" ~bytes:1300 ~rounds:11);
        bench ~page:std_page "CodeLoad" (Kernels.codeload ~funcs:230);
        bench ~page:std_page "Box2D" (Kernels.float_mix ~n:190 ~iters:40);
        bench ~page:std_page "zlib" (Kernels.byte_codec ~name:"zlib" ~bytes:2100 ~rounds:9);
        bench ~page:std_page "Typescript" (Kernels.tokenizer ~copies:40);
      ];
  }
