(** Ablation studies for the design choices DESIGN.md calls out.

    {ul
    {- {!fast_mu_allocator}: §5.3's experiment — swapping the MU allocator
       for the fast one should remove most of the alloc-configuration
       overhead;}
    {- {!gate_cost_sweep}: how the dom-style overhead scales with the cost
       of WRPKRU, showing the overhead is gate-bound;}
    {- {!profile_coverage}: enforcement built from a randomly thinned
       profile — missed dataflows crash, quantifying §6's discussion of
       profiling-corpus completeness.}} *)

val fast_mu_allocator : unit -> float * float
(** [(alloc overhead %, with dlmalloc MU), (with jemalloc MU)] on an
    allocation-heavy workload. *)

val gate_cost_sweep : wrpkru_costs:int list -> (int * float) list
(** [(wrpkru cycles, mpk overhead %)] on a binding-bound workload. *)

val profile_coverage :
  fractions:float list -> seed:int -> (float * bool) list
(** [(fraction kept, survived)] — whether the enforcement build completed
    the workload without an MPK crash. *)

val single_step_vs_switch : unit -> int * int
(** Profile sizes from the paper's single-step design vs the rejected
    switch-compartments-on-fault alternative (§4.3.2): the alternative
    misses every subsequent access in the same FFI span, so it records
    fewer sites on a workload that touches several shared objects. *)
