(** The paper's reported numbers, for side-by-side reporting in the bench
    harness and EXPERIMENTS.md (Kirth et al., EuroSys'22, Tables 1-3 and
    §5.2). *)

type table1_row = {
  t1_suite : string;
  t1_alloc_pct : float;
  t1_mpk_pct : float;
  t1_transitions : int;
  t1_pct_mu : float;
}

val table1 : table1_row list

type table2_row = {
  t2_sub : string;
  t2_alloc_pct : float;
  t2_mpk_pct : float;
  t2_transitions : int option; (* only reported for dom/jslib-scale rows *)
  t2_pct_mu : float;
}

val table2 : table2_row list
val table2_mean_alloc : float
val table2_mean_mpk : float

val table3_scores : (string * float) list
(** base / alloc / mpk JetStream2 overall scores. *)

val micro_overheads : (string * float) list
(** Empty 8.55x, Read-One 7.61x, Callback 6.17x. *)

val servo_alloc_sites : int
(** 12088 *)

val servo_sites_moved : int
(** 274 *)
