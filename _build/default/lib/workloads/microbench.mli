(** The call-gate micro-benchmarks (paper §5.2 and Figure 3).

    Three FFI workloads, each in a trusted (no gates) and an untrusted
    (gated) variant that are otherwise identical:
    {ul
    {- [Empty]: the callee has no body — the per-call ceiling;}
    {- [Read-One]: the callee performs one heap read;}
    {- [Callback]: the callee re-enters T through a reverse gate.}}

    [sweep] grows the amount of work done inside the gated callee,
    reproducing Figure 3's decay of normalised runtime toward 1.0. *)

type result = {
  name : string;
  ungated_cycles_per_call : float;
  gated_cycles_per_call : float;
  overhead_x : float;
}

val run : ?iterations:int -> unit -> result list
(** Empty, Read-One and Callback, in that order (default 20k iterations
    each). *)

val sweep : loop_counts:int list -> ?iterations:int -> unit -> (int * float) list
(** [(loop_count, normalised_runtime)] pairs for Figure 3. *)
