lib/workloads/ablation.ml: Allocators Bench_def Browser Dom_scripts List Mpk Option Pkru_safe Runner Runtime Sim Util Vmm
