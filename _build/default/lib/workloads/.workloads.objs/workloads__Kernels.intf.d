lib/workloads/kernels.mli:
