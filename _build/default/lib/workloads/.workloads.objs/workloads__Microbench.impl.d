lib/workloads/microbench.ml: List Pkru_safe Printf Runtime Sim
