lib/workloads/runner.mli: Bench_def Pkru_safe Runtime
