lib/workloads/browsing.mli: Pkru_safe Runtime
