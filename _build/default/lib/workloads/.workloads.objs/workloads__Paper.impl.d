lib/workloads/paper.ml:
