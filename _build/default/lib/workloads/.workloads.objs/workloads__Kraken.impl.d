lib/workloads/kraken.ml: Bench_def Dom_scripts Kernels
