lib/workloads/microbench.mli:
