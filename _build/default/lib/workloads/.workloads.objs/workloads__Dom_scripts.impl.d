lib/workloads/dom_scripts.ml: Buffer Printf
