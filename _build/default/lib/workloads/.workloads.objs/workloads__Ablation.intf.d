lib/workloads/ablation.mli:
