lib/workloads/kernels.ml: Buffer Printf
