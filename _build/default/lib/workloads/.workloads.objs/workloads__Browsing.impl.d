lib/workloads/browsing.ml: Browser Dom_scripts List Pkru_safe Runtime
