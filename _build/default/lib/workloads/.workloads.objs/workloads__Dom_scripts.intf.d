lib/workloads/dom_scripts.mli:
