lib/workloads/jetstream.ml: Bench_def Dom_scripts Kernels
