lib/workloads/runner.ml: Bench_def Browser List Pkru_safe Runtime Util
