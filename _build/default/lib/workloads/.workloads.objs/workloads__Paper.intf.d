lib/workloads/paper.mli:
