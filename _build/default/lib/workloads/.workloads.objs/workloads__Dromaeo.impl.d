lib/workloads/dromaeo.ml: Bench_def Dom_scripts Kernels List
