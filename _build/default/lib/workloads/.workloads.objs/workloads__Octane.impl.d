lib/workloads/octane.ml: Bench_def Dom_scripts Kernels
