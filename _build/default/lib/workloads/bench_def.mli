(** Benchmark and suite descriptions shared by the four suites. *)

type bench = {
  name : string;
  page : string;        (** HTML loaded before the script runs *)
  script : string;      (** the timed workload *)
  engine_seed : int;    (** Math.random seed, fixed for determinism *)
}

type suite = {
  suite_name : string;
  benches : bench list;
}

val bench : ?page:string -> ?seed:int -> string -> string -> bench
(** [bench name script]. *)
