(* Script generators.  Sizes are spliced in as decimal literals; the
   checksum print at the end doubles as a cross-configuration correctness
   oracle. *)

let d = string_of_int

let fft ~n =
  {|
function fft(re, im, n) {
  var j = 0;
  for (var i = 0; i < n - 1; i = i + 1) {
    if (i < j) {
      var tr = re[i]; re[i] = re[j]; re[j] = tr;
      var ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
    var m = n / 2;
    while (m >= 1 && j >= m) { j = j - m; m = m / 2; }
    j = j + m;
  }
  var len = 2;
  while (len <= n) {
    var ang = -6.283185307179586 / len;
    for (var s = 0; s < n; s = s + len) {
      for (var k = 0; k < len / 2; k = k + 1) {
        var wr = Math.cos(ang * k);
        var wi = Math.sin(ang * k);
        var a = s + k;
        var b = s + k + len / 2;
        var xr = re[b] * wr - im[b] * wi;
        var xi = re[b] * wi + im[b] * wr;
        re[b] = re[a] - xr; im[b] = im[a] - xi;
        re[a] = re[a] + xr; im[a] = im[a] + xi;
      }
    }
    len = len * 2;
  }
}
var n = |} ^ d n ^ {|;
var re = new Array(n);
var im = new Array(n);
for (var i = 0; i < n; i = i + 1) { re[i] = Math.sin(i * 0.7) + Math.cos(i * 0.3); im[i] = 0; }
fft(re, im, n);
var sum = 0;
for (var i = 0; i < n; i = i + 1) { sum = sum + re[i] * re[i] + im[i] * im[i]; }
print("fft:" + Math.floor(sum));
|}

let dft ~n =
  {|
var n = |} ^ d n ^ {|;
var x = new Array(n);
for (var i = 0; i < n; i = i + 1) { x[i] = Math.sin(i * 0.5); }
var power = 0;
for (var k = 0; k < n; k = k + 1) {
  var re = 0; var im = 0;
  for (var i = 0; i < n; i = i + 1) {
    var ang = -6.283185307179586 * k * i / n;
    re = re + x[i] * Math.cos(ang);
    im = im + x[i] * Math.sin(ang);
  }
  power = power + re * re + im * im;
}
print("dft:" + Math.floor(power));
|}

let oscillator ~n ~steps =
  {|
var n = |} ^ d n ^ {|;
var steps = |} ^ d steps ^ {|;
var buf = new Array(n);
for (var i = 0; i < n; i = i + 1) { buf[i] = 0; }
var phase = 0;
for (var s = 0; s < steps; s = s + 1) {
  var freq = 0.01 + 0.001 * s;
  for (var i = 0; i < n; i = i + 1) {
    buf[i] = buf[i] * 0.5 + Math.sin(phase + i * freq) * 0.5;
  }
  phase = phase + 0.1;
}
var sum = 0;
for (var i = 0; i < n; i = i + 1) { sum = sum + buf[i] * buf[i]; }
print("oscillator:" + Math.floor(sum * 1000));
|}

let beat_detection ~n =
  {|
var n = |} ^ d n ^ {|;
var signal = new Array(n);
for (var i = 0; i < n; i = i + 1) {
  signal[i] = Math.sin(i * 0.25) + (i % 50 == 0 ? 2 : 0);
}
var best = 0;
var bestLag = 0;
for (var lag = 20; lag < 80; lag = lag + 1) {
  var corr = 0;
  for (var i = 0; i + lag < n; i = i + 1) { corr = corr + signal[i] * signal[i + lag]; }
  if (corr > best) { best = corr; bestLag = lag; }
}
print("beat:" + bestLag + ":" + Math.floor(best));
|}

let gaussian_blur ~w ~h ~passes =
  {|
var w = |} ^ d w ^ {|;
var h = |} ^ d h ^ {|;
var passes = |} ^ d passes ^ {|;
var img = new Array(w * h);
for (var i = 0; i < w * h; i = i + 1) { img[i] = (i * 7919) % 256; }
var out = new Array(w * h);
for (var p = 0; p < passes; p = p + 1) {
  for (var y = 1; y < h - 1; y = y + 1) {
    for (var x = 1; x < w - 1; x = x + 1) {
      var acc =
        img[(y - 1) * w + x - 1] + 2 * img[(y - 1) * w + x] + img[(y - 1) * w + x + 1] +
        2 * img[y * w + x - 1] + 4 * img[y * w + x] + 2 * img[y * w + x + 1] +
        img[(y + 1) * w + x - 1] + 2 * img[(y + 1) * w + x] + img[(y + 1) * w + x + 1];
      out[y * w + x] = acc / 16;
    }
  }
  var tmp = img; img = out; out = tmp;
}
var sum = 0;
for (var i = 0; i < w * h; i = i + 1) { sum = sum + img[i]; }
print("blur:" + Math.floor(sum));
|}

let darkroom ~pixels =
  {|
var n = |} ^ d pixels ^ {|;
var img = new Array(n);
for (var i = 0; i < n; i = i + 1) { img[i] = (i * 2654435761) & 255; }
var sum = 0;
for (var i = 0; i < n; i = i + 1) {
  var v = img[i] / 255;
  v = v * 1.2 - 0.1;               // exposure + brightness
  if (v < 0) { v = 0; }
  if (v > 1) { v = 1; }
  v = Math.sqrt(v);                // gamma-ish
  img[i] = Math.floor(v * 255);
  sum = sum + img[i];
}
print("darkroom:" + sum);
|}

let desaturate ~pixels =
  {|
var n = |} ^ d pixels ^ {|;
var rgb = new Array(n * 3);
for (var i = 0; i < n * 3; i = i + 1) { rgb[i] = (i * 31) & 255; }
var sum = 0;
for (var i = 0; i < n; i = i + 1) {
  var gray = 0.299 * rgb[i * 3] + 0.587 * rgb[i * 3 + 1] + 0.114 * rgb[i * 3 + 2];
  rgb[i * 3] = gray; rgb[i * 3 + 1] = gray; rgb[i * 3 + 2] = gray;
  sum = sum + gray;
}
print("desaturate:" + Math.floor(sum));
|}

let json_parse_kernel ~rows =
  {|
var rows = |} ^ d rows ^ {|;
var txt = "[";
for (var i = 0; i < rows; i = i + 1) {
  txt = txt + '{"id":' + i + ',"price":' + ((i * 37) % 995) + ',"qty":' + (i % 13) + '}';
  if (i < rows - 1) { txt = txt + ","; }
}
txt = txt + "]";
var data = JSON.parse(txt);
var total = 0;
for (var i = 0; i < data.length; i = i + 1) {
  total = total + data[i].price * data[i].qty;
}
print("jsonparse:" + total);
|}

let json_stringify_kernel ~rows =
  {|
var rows = |} ^ d rows ^ {|;
var recs = [];
for (var i = 0; i < rows; i = i + 1) {
  recs.push({ name: "row" + i, flags: [i % 2 == 0, i % 3 == 0], score: i * 1.5 });
}
var txt = JSON.stringify(recs);
var check = 0;
for (var i = 0; i < txt.length; i = i + 7) { check = (check + txt.charCodeAt(i)) & 65535; }
print("jsonstringify:" + txt.length + ":" + check);
|}

(* Substitution-permutation rounds with an S-box, standing in for AES. *)
let crypto_aes ~blocks ~rounds =
  {|
var blocks = |} ^ d blocks ^ {|;
var rounds = |} ^ d rounds ^ {|;
var sbox = new Array(256);
for (var i = 0; i < 256; i = i + 1) { sbox[i] = (i * 167 + 41) & 255; }
var state = new Array(16);
var check = 0;
for (var b = 0; b < blocks; b = b + 1) {
  for (var i = 0; i < 16; i = i + 1) { state[i] = (b * 16 + i * 7) & 255; }
  for (var r = 0; r < rounds; r = r + 1) {
    for (var i = 0; i < 16; i = i + 1) { state[i] = sbox[state[i]] ^ (r + i); }
    var t = state[0];
    for (var i = 0; i < 15; i = i + 1) { state[i] = state[i + 1] ^ (state[i] << 1 & 255); }
    state[15] = t;
  }
  for (var i = 0; i < 16; i = i + 1) { check = (check + state[i]) & 65535; }
}
print("aes:" + check);
|}

let crypto_ccm ~blocks =
  {|
var blocks = |} ^ d blocks ^ {|;
var mac = 1;
var sbox = new Array(256);
for (var i = 0; i < 256; i = i + 1) { sbox[i] = (i * 131 + 7) & 255; }
for (var b = 0; b < blocks; b = b + 1) {
  var block = new Array(16);
  for (var i = 0; i < 16; i = i + 1) { block[i] = (b + i * 11) & 255; }
  for (var r = 0; r < 6; r = r + 1) {
    for (var i = 0; i < 16; i = i + 1) {
      block[i] = sbox[block[i] ^ (mac & 255)];
      mac = (mac * 33 + block[i]) & 16777215;
    }
  }
}
print("ccm:" + mac);
|}

let crypto_pbkdf2 ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var state = [1732584193, -271733879, -1732584194, 271733878];
for (var i = 0; i < iters; i = i + 1) {
  var a = state[0]; var b = state[1]; var c = state[2]; var d = state[3];
  a = (a + ((b & c) | (~b & d)) + i) | 0;
  a = ((a << 7) | (a >> 25)) ^ b;
  d = (d + ((a & b) | (~a & c)) + 1518500249) | 0;
  d = ((d << 12) | (d >> 20)) ^ a;
  state[0] = d; state[1] = a; state[2] = b; state[3] = c;
}
print("pbkdf2:" + ((state[0] ^ state[1] ^ state[2] ^ state[3]) & 65535));
|}

let crypto_sha ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var h0 = 1779033703; var h1 = -1150833019; var h2 = 1013904242; var h3 = -1521486534;
for (var i = 0; i < iters; i = i + 1) {
  var ch = (h0 & h1) ^ (~h0 & h2);
  var maj = (h0 & h1) ^ (h0 & h2) ^ (h1 & h2);
  var s0 = ((h0 >> 2) | (h0 << 30)) ^ ((h0 >> 13) | (h0 << 19));
  var s1 = ((h1 >> 6) | (h1 << 26)) ^ ((h1 >> 11) | (h1 << 21));
  var t = (ch + s1 + i) | 0;
  h3 = h2; h2 = h1; h1 = h0;
  h0 = (t + maj + s0) | 0;
}
print("sha:" + ((h0 ^ h1 ^ h2 ^ h3) & 65535));
|}

(* Dijkstra-flavoured grid search with obstacle walls. *)
let astar ~w ~h =
  {|
var w = |} ^ d w ^ {|;
var h = |} ^ d h ^ {|;
var cost = new Array(w * h);
var dist = new Array(w * h);
for (var i = 0; i < w * h; i = i + 1) {
  cost[i] = 1 + ((i * 2654435761) & 7);
  dist[i] = 1000000;
}
dist[0] = 0;
var frontier = [0];
while (frontier.length > 0) {
  var best = 0;
  for (var i = 1; i < frontier.length; i = i + 1) {
    if (dist[frontier[i]] < dist[frontier[best]]) { best = i; }
  }
  var cell = frontier[best];
  frontier[best] = frontier[frontier.length - 1];
  frontier.pop();
  var x = cell % w;
  var y = (cell - x) / w;
  var neighbors = [];
  if (x > 0) { neighbors.push(cell - 1); }
  if (x < w - 1) { neighbors.push(cell + 1); }
  if (y > 0) { neighbors.push(cell - w); }
  if (y < h - 1) { neighbors.push(cell + w); }
  for (var i = 0; i < neighbors.length; i = i + 1) {
    var nb = neighbors[i];
    var nd = dist[cell] + cost[nb];
    if (nd < dist[nb]) {
      dist[nb] = nd;
      frontier.push(nb);
    }
  }
}
print("astar:" + dist[w * h - 1]);
|}

let richards ~iterations =
  {|
var iters = |} ^ d iterations ^ {|;
var queue = [];
var head = 0;
var done_ = 0;
var checksum = 0;
function enqueue(kind, work) { queue.push({ kind: kind, work: work }); }
enqueue(0, 3); enqueue(1, 2); enqueue(2, 5);
while (done_ < iters) {
  if (head >= queue.length) {
    head = 0;
    queue = [];
    enqueue(done_ % 3, (done_ % 5) + 1);
  }
  var task = queue[head];
  head = head + 1;
  task.work = task.work - 1;
  checksum = (checksum + task.kind * 17 + task.work) & 65535;
  if (task.work > 0) { queue.push(task); }
  else {
    done_ = done_ + 1;
    if (task.kind == 0) { enqueue(1, 2); }
    if (task.kind == 1) { enqueue(2, 1); }
  }
}
print("richards:" + checksum);
|}

(* A chain of one-way constraints repeatedly perturbed and re-satisfied. *)
let deltablue ~chain ~iters =
  {|
var n = |} ^ d chain ^ {|;
var iters = |} ^ d iters ^ {|;
var vars = [];
for (var i = 0; i < n; i = i + 1) { vars.push({ value: 0, stay: i % 4 == 0 }); }
var check = 0;
for (var it = 0; it < iters; it = it + 1) {
  vars[0].value = it;
  for (var i = 1; i < n; i = i + 1) {
    if (!vars[i].stay) { vars[i].value = vars[i - 1].value + 1; }
  }
  check = (check + vars[n - 1].value) & 65535;
}
print("deltablue:" + check);
|}

let splay ~nodes ~lookups =
  {|
var nodes = |} ^ d nodes ^ {|;
var lookups = |} ^ d lookups ^ {|;
var root = null;
var seed = 42;
function nextKey() { seed = (seed * 1103515245 + 12345) & 1073741823; return seed % 10000; }
function insert(key) {
  if (root == null) { root = { key: key, left: null, right: null }; return; }
  var node = root;
  while (true) {
    if (key < node.key) {
      if (node.left == null) { node.left = { key: key, left: null, right: null }; return; }
      node = node.left;
    } else {
      if (node.right == null) { node.right = { key: key, left: null, right: null }; return; }
      node = node.right;
    }
  }
}
function find(key) {
  var node = root;
  var depth = 0;
  while (node != null) {
    depth = depth + 1;
    if (node.key == key) { return depth; }
    if (key < node.key) { node = node.left; } else { node = node.right; }
  }
  return -depth;
}
for (var i = 0; i < nodes; i = i + 1) { insert(nextKey()); }
var check = 0;
for (var i = 0; i < lookups; i = i + 1) { check = (check + find(nextKey())) & 65535; }
print("splay:" + check);
|}

let raytrace ~w ~h =
  {|
var w = |} ^ d w ^ {|;
var h = |} ^ d h ^ {|;
var spheres = [
  { x: 0, y: 0, z: 5, r: 2, shade: 200 },
  { x: 2, y: 1, z: 8, r: 1.5, shade: 120 },
  { x: -2, y: -1, z: 6, r: 1, shade: 80 }
];
var img = 0;
for (var py = 0; py < h; py = py + 1) {
  for (var px = 0; px < w; px = px + 1) {
    var dx = (px - w / 2) / w;
    var dy = (py - h / 2) / h;
    var dz = 1;
    var norm = Math.sqrt(dx * dx + dy * dy + dz * dz);
    dx = dx / norm; dy = dy / norm; dz = dz / norm;
    var bestT = 1000000;
    var shade = 10;
    for (var s = 0; s < spheres.length; s = s + 1) {
      var sp = spheres[s];
      var ox = -sp.x; var oy = -sp.y; var oz = -sp.z;
      var b = ox * dx + oy * dy + oz * dz;
      var c = ox * ox + oy * oy + oz * oz - sp.r * sp.r;
      var disc = b * b - c;
      if (disc > 0) {
        var t = -b - Math.sqrt(disc);
        if (t > 0 && t < bestT) { bestT = t; shade = sp.shade / (1 + t * 0.2); }
      }
    }
    img = (img + Math.floor(shade)) & 16777215;
  }
}
print("raytrace:" + img);
|}

let navier_stokes ~n ~steps =
  {|
var n = |} ^ d n ^ {|;
var steps = |} ^ d steps ^ {|;
var u = new Array(n * n);
var v = new Array(n * n);
for (var i = 0; i < n * n; i = i + 1) { u[i] = Math.sin(i * 0.3); v[i] = 0; }
for (var s = 0; s < steps; s = s + 1) {
  for (var y = 1; y < n - 1; y = y + 1) {
    for (var x = 1; x < n - 1; x = x + 1) {
      var i = y * n + x;
      v[i] = (u[i - 1] + u[i + 1] + u[i - n] + u[i + n]) * 0.25;
    }
  }
  var tmp = u; u = v; v = tmp;
}
var sum = 0;
for (var i = 0; i < n * n; i = i + 1) { sum = sum + u[i] * u[i]; }
print("navier:" + Math.floor(sum * 1000));
|}

let byte_codec ~name ~bytes ~rounds =
  {|
var n = |} ^ d bytes ^ {|;
var rounds = |} ^ d rounds ^ {|;
var buf = new Array(n);
for (var i = 0; i < n; i = i + 1) { buf[i] = (i * 73) & 255; }
var check = 0;
for (var r = 0; r < rounds; r = r + 1) {
  var carry = r;
  for (var i = 0; i < n; i = i + 1) {
    var b = buf[i];
    b = (b + carry) & 255;
    b = ((b << 3) | (b >> 5)) & 255;
    b = b ^ ((i * 13) & 255);
    carry = (carry + b) & 255;
    buf[i] = b;
  }
  check = (check + carry) & 65535;
}
print("|} ^ name ^ {|:" + check);
|}

let codeload ~funcs =
  let buf = Buffer.create (funcs * 64) in
  for i = 0 to funcs - 1 do
    Buffer.add_string buf
      (Printf.sprintf "function cl%d(x) { var t = x + %d; return t * 2 - (t %% 7); }\n" i i)
  done;
  Buffer.add_string buf "var total = 0;\n";
  for i = 0 to funcs - 1 do
    Buffer.add_string buf (Printf.sprintf "total = (total + cl%d(%d)) & 1048575;\n" i (i * 3))
  done;
  Buffer.add_string buf "print(\"codeload:\" + total);\n";
  Buffer.contents buf

let regexp_scan ~copies =
  {|
var copies = |} ^ d copies ^ {|;
var chunk = "GATTACA-the-quick-brown-fox-TAGGED-jumps-over-TAG-lazy-dog-";
var text = "";
for (var i = 0; i < copies; i = i + 1) { text = text + chunk; }
// count occurrences of "TAG" by direct scanning
var hits = 0;
for (var i = 0; i + 3 <= text.length; i = i + 1) {
  if (text.charCodeAt(i) == 84 && text.charCodeAt(i + 1) == 65 && text.charCodeAt(i + 2) == 71) {
    hits = hits + 1;
  }
}
print("regexp:" + hits);
|}

let string_kernel ~iters =
  {|
var iters = |} ^ d iters ^ {|;
var alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
var check = 0;
for (var i = 0; i < iters; i = i + 1) {
  var word = "payload" + i;
  var enc = "";
  for (var j = 0; j < word.length; j = j + 1) {
    enc = enc + alphabet.charAt(word.charCodeAt(j) % 64);
  }
  var back = enc.toUpperCase().toLowerCase();
  check = (check + back.charCodeAt(i % back.length)) & 65535;
}
print("strings:" + check);
|}

let float_mix ~n ~iters =
  {|
var n = |} ^ d n ^ {|;
var iters = |} ^ d iters ^ {|;
var xs = new Array(n);
var vs = new Array(n);
for (var i = 0; i < n; i = i + 1) { xs[i] = i * 0.5; vs[i] = Math.cos(i); }
for (var it = 0; it < iters; it = it + 1) {
  for (var i = 0; i < n; i = i + 1) {
    vs[i] = vs[i] * 0.99 + Math.sin(xs[i]) * 0.01;
    xs[i] = xs[i] + vs[i] * 0.016;
  }
}
var sum = 0;
for (var i = 0; i < n; i = i + 1) { sum = sum + xs[i]; }
print("floatmix:" + Math.floor(sum));
|}

let earley_boyer ~depth ~iters =
  {|
var depth = |} ^ d depth ^ {|;
var iters = |} ^ d iters ^ {|;
function build(d) {
  if (d == 0) { return { leaf: true, v: 1 }; }
  return { leaf: false, l: build(d - 1), r: build(d - 1) };
}
function count(t) {
  if (t.leaf) { return t.v; }
  return count(t.l) + count(t.r);
}
var total = 0;
for (var i = 0; i < iters; i = i + 1) {
  total = total + count(build(depth));
}
print("boyer:" + total);
|}

let tokenizer ~copies =
  {|
var copies = |} ^ d copies ^ {|;
var chunk = "function add(a, b) { return a + b; } var x = add(1, 22.5); // end\n";
var src = "";
for (var i = 0; i < copies; i = i + 1) { src = src + chunk; }
var idents = 0;
var numbers = 0;
var puncts = 0;
var i = 0;
while (i < src.length) {
  var c = src.charCodeAt(i);
  if ((c >= 97 && c <= 122) || (c >= 65 && c <= 90)) {
    idents = idents + 1;
    while (i < src.length) {
      var cc = src.charCodeAt(i);
      if ((cc >= 97 && cc <= 122) || (cc >= 65 && cc <= 90) || (cc >= 48 && cc <= 57)) { i = i + 1; }
      else { break; }
    }
  } else {
    if (c >= 48 && c <= 57) {
      numbers = numbers + 1;
      while (i < src.length) {
        var cd = src.charCodeAt(i);
        if ((cd >= 48 && cd <= 57) || cd == 46) { i = i + 1; } else { break; }
      }
    } else {
      if (c > 32) { puncts = puncts + 1; }
      i = i + 1;
    }
  }
}
print("tokenizer:" + idents + ":" + numbers + ":" + puncts);
|}
