(** MiniJS benchmark kernels.

    Each generator returns a self-contained script, parameterised so the
    four suites can instantiate it at their own scale.  The kernels are
    modelled on the corresponding members of SunSpider / Kraken / Octane /
    JetStream2: FFT and DFT audio processing, image convolution, JSON
    encode/decode, block-cipher and hash rounds, grid pathfinding, the
    Richards scheduler, DeltaBlue-style constraint propagation, splay-tree
    churn, raytracing, Navier-Stokes relaxation, byte-stream codecs,
    parser-dominated code loading, string scanning and tokenisation.

    Every kernel finishes with [print("<name>:<checksum>")] so the runner
    can verify that all build configurations compute identical results. *)

val fft : n:int -> string
val dft : n:int -> string
val oscillator : n:int -> steps:int -> string
val beat_detection : n:int -> string
val gaussian_blur : w:int -> h:int -> passes:int -> string
val darkroom : pixels:int -> string
val desaturate : pixels:int -> string
val json_parse_kernel : rows:int -> string
val json_stringify_kernel : rows:int -> string
val crypto_aes : blocks:int -> rounds:int -> string
val crypto_ccm : blocks:int -> string
val crypto_pbkdf2 : iters:int -> string
val crypto_sha : iters:int -> string
val astar : w:int -> h:int -> string
val richards : iterations:int -> string
val deltablue : chain:int -> iters:int -> string
val splay : nodes:int -> lookups:int -> string
val raytrace : w:int -> h:int -> string
val navier_stokes : n:int -> steps:int -> string
val byte_codec : name:string -> bytes:int -> rounds:int -> string
val codeload : funcs:int -> string
val regexp_scan : copies:int -> string
val string_kernel : iters:int -> string
val float_mix : n:int -> iters:int -> string
val earley_boyer : depth:int -> iters:int -> string
val tokenizer : copies:int -> string
