(* The JetStream2 suite (Figure 7 / Table 3).  JetStream2 aggregates tests
   derived from SunSpider, Octane and Kraken plus web-tooling workloads;
   we instantiate the same kernels under the JetStream names.  Its overall
   score is the geometric mean of per-benchmark scores (higher is better),
   which the runner computes from inverse runtimes.  The paper's WASM
   group is omitted, as it is in the paper's own runs (their Servo
   revision could not complete it). *)

open Bench_def

let dom_page = Dom_scripts.page ~rows:16
let std_page = Dom_scripts.page ~rows:10

let all : suite =
  {
    suite_name = "JetStream2";
    benches =
      [
        bench ~page:std_page "3d-cube-SP" (Kernels.float_mix ~n:200 ~iters:30);
        bench ~page:std_page "3d-raytrace-SP" (Kernels.raytrace ~w:24 ~h:18);
        bench ~page:std_page "ai-astar" (Kernels.astar ~w:28 ~h:28);
        bench ~page:std_page "Air" (Kernels.float_mix ~n:150 ~iters:36);
        bench ~page:std_page "base64-SP" (Kernels.string_kernel ~iters:110);
        bench ~page:std_page "Basic" (Kernels.byte_codec ~name:"basic" ~bytes:900 ~rounds:9);
        bench ~page:std_page "Box2D" (Kernels.float_mix ~n:180 ~iters:36);
        bench ~page:std_page "codeload-wtb" (Kernels.codeload ~funcs:190);
        bench ~page:std_page "crypto" (Kernels.crypto_aes ~blocks:48 ~rounds:9);
        bench ~page:std_page "crypto-aes-SP" (Kernels.crypto_aes ~blocks:42 ~rounds:10);
        bench ~page:std_page "crypto-md5-SP" (Kernels.crypto_pbkdf2 ~iters:2600);
        bench ~page:std_page "crypto-sha1-SP" (Kernels.crypto_sha ~iters:2600);
        bench ~page:std_page "delta-blue" (Kernels.deltablue ~chain:26 ~iters:210);
        bench ~page:std_page "earley-boyer" (Kernels.earley_boyer ~depth:8 ~iters:10);
        bench ~page:std_page "float-mm.c" (Kernels.float_mix ~n:240 ~iters:30);
        bench ~page:std_page "gaussian-blur" (Kernels.gaussian_blur ~w:40 ~h:32 ~passes:3);
        bench ~page:std_page "gbemu" (Kernels.byte_codec ~name:"gbemu" ~bytes:1200 ~rounds:10);
        bench ~page:std_page "hash-map" (Kernels.splay ~nodes:340 ~lookups:460);
        bench ~page:std_page "json-parse-inspector" (Kernels.json_parse_kernel ~rows:110);
        bench ~page:std_page "json-stringify-inspector" (Kernels.json_stringify_kernel ~rows:100);
        bench ~page:std_page "mandreel" (Kernels.float_mix ~n:230 ~iters:30);
        bench ~page:std_page "navier-stokes" (Kernels.navier_stokes ~n:24 ~steps:13);
        bench ~page:std_page "octane-code-load" (Kernels.codeload ~funcs:210);
        bench ~page:std_page "octane-zlib" (Kernels.byte_codec ~name:"zlib" ~bytes:1900 ~rounds:8);
        bench ~page:std_page "pdfjs" (Kernels.byte_codec ~name:"pdfjs" ~bytes:1500 ~rounds:8);
        bench ~page:std_page "regexp" (Kernels.regexp_scan ~copies:50);
        bench ~page:std_page "richards" (Kernels.richards ~iterations:280);
        bench ~page:std_page "splay" (Kernels.splay ~nodes:340 ~lookups:480);
        bench ~page:std_page "stanford-crypto-pbkdf2" (Kernels.crypto_pbkdf2 ~iters:3000);
        bench ~page:std_page "stanford-crypto-sha256" (Kernels.crypto_sha ~iters:2800);
        bench ~page:std_page "string-unpack-code-SP" (Kernels.string_kernel ~iters:120);
        bench ~page:std_page "tagcloud-SP" (Kernels.json_parse_kernel ~rows:90);
        bench ~page:std_page "typescript" (Kernels.tokenizer ~copies:36);
        bench ~page:std_page "uglify-js-wtb" (Kernels.tokenizer ~copies:44);
        bench ~page:dom_page "UniPoker" (Dom_scripts.dom_query ~iters:10);
        bench ~page:dom_page "WSL" (Dom_scripts.dom_traverse ~iters:16);
      ];
  }
