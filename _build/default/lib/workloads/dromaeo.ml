(* The Dromaeo suite, organised into the paper's Table-2 sub-suites.  The
   dom and jslib groups are binding-bound (many transitions, little work
   per transition); v8 / sunspider / dromaeo(core js) are engine-bound. *)

open Bench_def

let dom_page = Dom_scripts.page ~rows:24
let std_page = Dom_scripts.page ~rows:10

let dom =
  {
    suite_name = "dom";
    benches =
      [
        bench ~page:dom_page "dom-attr" (Dom_scripts.dom_attr ~iters:260);
        bench ~page:dom_page "dom-modify" (Dom_scripts.dom_create ~iters:220);
        bench ~page:dom_page "dom-query" (Dom_scripts.dom_query ~iters:30);
        bench ~page:dom_page "dom-html" (Dom_scripts.dom_html ~iters:70);
        bench ~page:dom_page "dom-traverse" (Dom_scripts.dom_traverse ~iters:60);
        bench ~page:dom_page "dom-style" (Dom_scripts.dom_style ~iters:30);
        bench ~page:dom_page "dom-events" (Dom_scripts.dom_events ~iters:120);
      ];
  }

let v8 =
  {
    suite_name = "v8";
    benches =
      [
        bench ~page:std_page "v8-richards" (Kernels.richards ~iterations:260);
        bench ~page:std_page "v8-deltablue" (Kernels.deltablue ~chain:24 ~iters:220);
        bench ~page:std_page "v8-crypto" (Kernels.crypto_aes ~blocks:40 ~rounds:8);
        bench ~page:std_page "v8-raytrace" (Kernels.raytrace ~w:26 ~h:18);
        bench ~page:std_page "v8-splay" (Kernels.splay ~nodes:320 ~lookups:420);
      ];
  }

let dromaeo_js =
  {
    suite_name = "dromaeo";
    benches =
      [
        bench ~page:std_page "dromaeo-array" (Kernels.byte_codec ~name:"array" ~bytes:700 ~rounds:10);
        bench ~page:std_page "dromaeo-string" (Kernels.string_kernel ~iters:130);
        bench ~page:std_page "dromaeo-object" (Kernels.earley_boyer ~depth:7 ~iters:14);
        bench ~page:std_page "dromaeo-regexp" (Kernels.regexp_scan ~copies:46);
      ];
  }

let sunspider =
  {
    suite_name = "sunspider";
    benches =
      [
        bench ~page:std_page "sunspider-fft" (Kernels.fft ~n:256);
        bench ~page:std_page "sunspider-bitops" (Kernels.crypto_sha ~iters:2600);
        bench ~page:std_page "sunspider-3d" (Kernels.float_mix ~n:160 ~iters:40);
        bench ~page:std_page "sunspider-controlflow" (Kernels.astar ~w:26 ~h:26);
        bench ~page:std_page "sunspider-string" (Kernels.tokenizer ~copies:30);
      ];
  }

let jslib =
  {
    suite_name = "jslib";
    benches =
      [
        bench ~page:dom_page "jslib-toggle" (Dom_scripts.jslib_toggle ~iters:300);
        bench ~page:dom_page "jslib-build" (Dom_scripts.jslib_build ~iters:60);
        bench ~page:dom_page "jslib-query" (Dom_scripts.dom_query ~iters:24);
        bench ~page:dom_page "jslib-attr" (Dom_scripts.dom_attr ~iters:230);
        bench ~page:dom_page "jslib-select" (Dom_scripts.jslib_select ~iters:12);
      ];
  }

let sub_suites = [ dom; v8; dromaeo_js; sunspider; jslib ]

let all : suite =
  { suite_name = "Dromaeo"; benches = List.concat_map (fun s -> s.benches) sub_suites }
