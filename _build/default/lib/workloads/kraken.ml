(* The Kraken suite: audio DSP, imaging, JSON and Stanford crypto kernels —
   engine-bound workloads whose paper overheads are on par with baseline
   (Figure 5). *)

open Bench_def

let std_page = Dom_scripts.page ~rows:10

let all : suite =
  {
    suite_name = "Kraken";
    benches =
      [
        bench ~page:std_page "audio-fft" (Kernels.fft ~n:512);
        bench ~page:std_page "audio-beat-detection" (Kernels.beat_detection ~n:2200);
        bench ~page:std_page "audio-dft" (Kernels.dft ~n:110);
        bench ~page:std_page "audio-oscillator" (Kernels.oscillator ~n:420 ~steps:16);
        bench ~page:std_page "imaging-gaussian-blur" (Kernels.gaussian_blur ~w:46 ~h:36 ~passes:3);
        bench ~page:std_page "imaging-darkroom" (Kernels.darkroom ~pixels:5200);
        bench ~page:std_page "imaging-desaturate" (Kernels.desaturate ~pixels:2400);
        bench ~page:std_page "json-parse-financial" (Kernels.json_parse_kernel ~rows:130);
        bench ~page:std_page "json-stringify-tinderbox" (Kernels.json_stringify_kernel ~rows:120);
        bench ~page:std_page "stanford-crypto-aes" (Kernels.crypto_aes ~blocks:56 ~rounds:10);
        bench ~page:std_page "stanford-crypto-ccm" (Kernels.crypto_ccm ~blocks:64);
        bench ~page:std_page "stanford-crypto-pbkdf2" (Kernels.crypto_pbkdf2 ~iters:3400);
        bench ~page:std_page "stanford-crypto-sha256-iterative" (Kernels.crypto_sha ~iters:3200);
        bench ~page:std_page "ai-astar" (Kernels.astar ~w:30 ~h:30);
      ];
  }
