type session = {
  session_name : string;
  page : string;
  scripts : string list;
}

(* Web-platform-test style: structural DOM conformance checks. *)
let wpt =
  {
    session_name = "wpt";
    page = Dom_scripts.page ~rows:8;
    scripts =
      [
        {|
var root = domRoot();
var d = domCreateElement("div");
domSetAttribute(d, "id", "wpt-target");
domAppendChild(root, d);
var back = domGetElementById("wpt-target");
print(back == null ? "FAIL" : "PASS: byId");
print(domTagName(back));
|};
        {|
var host = domGetElementById("wpt-target");
domSetInnerHTML(host, "<span>a</span><span>b</span>");
print("children: " + domChildCount(host));
var html = domGetInnerHTML(host);
print("roundtrip: " + (html.indexOf("<span>") == 0 ? "PASS" : "FAIL"));
|};
      ];
  }

(* jQuery style: query everything, toggle classes, read text. *)
let jquery =
  {
    session_name = "jquery";
    page = Dom_scripts.page ~rows:12;
    scripts =
      [
        {|
var rows = domQueryTag("div");
for (var i = 0; i < rows.length; i = i + 1) {
  domSetAttribute(rows[i], "class", i % 2 == 0 ? "even" : "odd");
}
var cls = domGetAttribute(rows[0], "class");
print("first class: " + cls);
|};
        {|
var spans = domQueryTag("span");
var total = 0;
for (var i = 0; i < spans.length; i = i + 1) {
  total = total + domTextContent(spans[i]).length;
}
print("text total: " + total);
|};
      ];
  }

(* WebIDL style: exercises the binding signatures themselves. *)
let webidl =
  {
    session_name = "webidl";
    page = {|<div id="host" data="idl"><p>payload</p></div>|};
    scripts =
      [
        {|
var host = domGetElementById("host");
var clone = domCloneNode(host);
domAppendChild(domRoot(), clone);
print("cloned data: " + domGetAttribute(clone, "data"));
var parent = domParent(clone);
print("parent tag: " + domTagName(parent));
domRemoveChild(parent, clone);
print("after remove: " + domQueryTag("div").length);
|};
      ];
  }

(* Selenium-style browsing sessions over "common web pages". *)
let browse name rows story =
  {
    session_name = "browse-" ^ name;
    page = Dom_scripts.page ~rows;
    scripts = [ story ];
  }

let browse_search =
  browse "search" 6
    {|
domSetTitle("search results");
var q = domCreateElement("input");
domAppendChild(domRoot(), q);
domSetAttribute(q, "value", "pkru safe");
var results = domQueryTag("div");
print(domGetTitle() + ": " + results.length + " results for " + domGetAttribute(q, "value"));
|}

let browse_wiki =
  browse "wiki" 10
    {|
var paras = domQueryTag("span");
var text = "";
for (var i = 0; i < paras.length && i < 3; i = i + 1) {
  text = text + domTextContent(paras[i]);
}
print("article preview: " + text.substring(0, 12));
|}

let browse_video =
  browse "video" 4
    {|
var player = domCreateElement("video");
domAppendChild(domRoot(), player);
var ticks = 0;
for (var t = 0; t < 12; t = t + 1) {
  domSetAttribute(player, "time", "" + t);
  ticks = ticks + domGetAttribute(player, "time").length;
}
print("played, ticks " + ticks);
|}

(* Selector-heavy session: the jQuery hot path through domQuery. *)
let browse_selectors =
  {
    session_name = "browse-selectors";
    page = Dom_scripts.page ~rows:9;
    scripts =
      [
        {|
var rows = domQuery("div.row");
var spans = domQuery("div.row span");
domSetAttribute(rows[0], "class", "row lead");
var leads = domQuery(".lead, span");
print("rows " + rows.length + ", spans " + spans.length + ", leads " + leads.length);
print(domGetAttribute(domQuery(".lead")[0], "data"));
|};
      ];
  }

let sessions =
  [ wpt; jquery; webidl; browse_search; browse_wiki; browse_video; browse_selectors ]

let run_session env session =
  let browser = Browser.create env in
  Browser.load_page browser session.page;
  List.iter (fun script -> ignore (Browser.exec_script browser script)) session.scripts;
  Browser.console browser

let fail_on_error = function
  | Ok v -> v
  | Error msg -> failwith ("Workloads.Browsing: " ^ msg)

let collect () =
  let corpus = Runtime.Corpus.create () in
  List.iter
    (fun session ->
      let env =
        fail_on_error (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling))
      in
      ignore (run_session env session);
      Runtime.Corpus.add_run corpus ~name:session.session_name
        (Pkru_safe.Env.recorded_profile env))
    sessions;
  corpus

let deployment_profile () = Runtime.Corpus.merged (collect ())
