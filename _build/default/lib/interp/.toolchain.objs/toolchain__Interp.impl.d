lib/interp/interp.ml: Allocators Array Fun Hashtbl Ir List Pkru_safe Printexc Printf Runtime Sim Vmm
