lib/interp/pipeline.ml: Interp Ir List Option Pkru_safe Runtime
