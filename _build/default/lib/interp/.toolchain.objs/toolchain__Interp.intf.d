lib/interp/interp.mli: Ir Pkru_safe
