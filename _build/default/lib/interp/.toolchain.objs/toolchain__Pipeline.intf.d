lib/interp/pipeline.mli: Allocators Interp Ir Pkru_safe Runtime Sim
