(** The IR interpreter.

    Executes a compiled module against a {!Pkru_safe.Env.t}: loads and
    stores go through the simulated machine's checked access path (so MPK
    enforcement and profiling faults happen for real), allocator calls
    dispatch on the pool the compile pipeline chose for each site, and
    [Gate] instructions drive the runtime's call gates.  Costs are charged
    per instruction from the machine's cost model. *)

type host_fn = int list -> int
(** A native (embedder-provided) function; receives evaluated arguments. *)

exception Trap of string
(** Raised on dynamic errors: fuel exhaustion, bad indirect-call targets,
    division by zero, missing entry function. *)

type t

val create : ?fuel:int -> Ir.Module_ir.t -> Pkru_safe.Env.t -> t
(** [fuel] bounds the number of executed instructions (default 500M). *)

val register_host : t -> string -> host_fn -> unit

val env : t -> Pkru_safe.Env.t
val modul : t -> Ir.Module_ir.t

val run : t -> string -> int list -> int
(** [run t fn args] calls [fn]; functions returning no value yield 0.
    @raise Trap on dynamic errors
    @raise Vmm.Fault.Unhandled when enforcement kills an access *)

val steps : t -> int
(** Instructions retired so far. *)
