type host_fn = int list -> int

exception Trap of string

type t = {
  modul : Ir.Module_ir.t;
  env : Pkru_safe.Env.t;
  hosts : (string, host_fn) Hashtbl.t;
  mutable fuel : int;
  mutable steps : int;
  mutable stack_sp : int; (* bump pointer into the trusted stack region *)
}

let create ?(fuel = 500_000_000) modul env =
  (* T's stack is part of MT (§6 stack-protection extension): the region
     carries the trusted key, so U faults on unprofiled stack slots just
     like on heap objects. *)
  let machine = Pkru_safe.Env.machine env in
  if not (Vmm.Page_table.is_reserved machine.Sim.Machine.page_table Vmm.Layout.stack_base) then begin
    match
      Vmm.Page_table.reserve machine.Sim.Machine.page_table ~base:Vmm.Layout.stack_base
        ~size:Vmm.Layout.stack_size ~prot:Vmm.Prot.read_write
        ~pkey:(Pkru_safe.Env.config env).Pkru_safe.Config.trusted_pkey
    with
    | Ok () -> ()
    | Error msg -> raise (Trap ("stack reservation failed: " ^ msg))
  end;
  { modul; env; hosts = Hashtbl.create 16; fuel; steps = 0; stack_sp = Vmm.Layout.stack_base }

let register_host t name fn = Hashtbl.replace t.hosts name fn

let env t = t.env
let modul t = t.modul
let steps t = t.steps

let () =
  Printexc.register_printer (function
    | Trap msg -> Some ("Interp.Trap: " ^ msg)
    | _ -> None)

let truncate_to width v =
  match width with
  | 8 -> v
  | 1 -> v land 0xFF
  | 2 -> v land 0xFFFF
  | 4 -> v land 0xFFFFFFFF
  | _ -> assert false

let rec call t (f : Ir.Func.t) args =
  let machine = Pkru_safe.Env.machine t.env in
  let saved_sp = t.stack_sp in
  (* (address, heap-demoted, instrumented) of this frame's allocas. *)
  let frame_allocas : (int * bool * bool) list ref = ref [] in
  let cpu = machine.Sim.Machine.cpu in
  let cost = cpu.Sim.Cpu.cost in
  let regs = Array.make (max f.Ir.Func.frame_size 1) 0 in
  List.iteri
    (fun i param ->
      match List.nth_opt args i with
      | Some v -> regs.(param) <- v
      | None -> raise (Trap (Printf.sprintf "%s: missing argument %d" f.Ir.Func.name i)))
    f.Ir.Func.params;
  let value = function
    | Ir.Instr.Imm v -> v
    | Ir.Instr.Reg r -> regs.(r)
  in
  let tick () =
    t.steps <- t.steps + 1;
    t.fuel <- t.fuel - 1;
    if t.fuel <= 0 then raise (Trap "out of fuel")
  in
  let exec_binop op a b =
    let open Ir.Instr in
    match op with
    | Add -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; a + b
    | Sub -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; a - b
    | And -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; a land b
    | Or -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; a lor b
    | Xor -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; a lxor b
    | Shl -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; a lsl (b land 63)
    | Shr -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; a asr (b land 63)
    | Mul -> Sim.Cpu.charge cpu cost.Sim.Cost.mul; a * b
    | Div ->
      Sim.Cpu.charge cpu cost.Sim.Cost.div;
      if b = 0 then raise (Trap "division by zero") else a / b
    | Rem ->
      Sim.Cpu.charge cpu cost.Sim.Cost.div;
      if b = 0 then raise (Trap "remainder by zero") else a mod b
    | Eq -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; if a = b then 1 else 0
    | Ne -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; if a <> b then 1 else 0
    | Lt -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; if a < b then 1 else 0
    | Le -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; if a <= b then 1 else 0
    | Gt -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; if a > b then 1 else 0
    | Ge -> Sim.Cpu.charge cpu cost.Sim.Cost.alu; if a >= b then 1 else 0
  in
  let do_alloc pool size =
    Sim.Cpu.charge cpu cost.Sim.Cost.call;
    let pk = Pkru_safe.Env.pkalloc t.env in
    let result =
      match pool with
      | Ir.Instr.Trusted_pool -> Allocators.Pkalloc.alloc_trusted pk size
      | Ir.Instr.Untrusted_pool -> Allocators.Pkalloc.alloc_untrusted pk size
    in
    match result with
    | None -> raise Out_of_memory
    | Some addr -> addr
  in
  let exec_instr (instr : Ir.Instr.t) =
    tick ();
    match instr with
    | Ir.Instr.Const (r, v) ->
      Sim.Cpu.charge cpu cost.Sim.Cost.alu;
      regs.(r) <- v
    | Ir.Instr.Binop (op, r, a, b) -> regs.(r) <- exec_binop op (value a) (value b)
    | Ir.Instr.Load { dst; addr; width } ->
      let a = value addr in
      regs.(dst) <-
        (match width with
        | 1 -> Sim.Machine.read_u8 machine a
        | 2 -> Sim.Machine.read_u16 machine a
        | 4 -> Sim.Machine.read_u32 machine a
        | _ -> Sim.Machine.read_u64 machine a)
    | Ir.Instr.Store { src; addr; width } ->
      let a = value addr in
      let v = truncate_to width (value src) in
      (match width with
      | 1 -> Sim.Machine.write_u8 machine a v
      | 2 -> Sim.Machine.write_u16 machine a v
      | 4 -> Sim.Machine.write_u32 machine a v
      | _ -> Sim.Machine.write_u64 machine a v)
    | Ir.Instr.Alloc { dst; size; site; pool; instrumented } ->
      let size = value size in
      let addr = do_alloc pool size in
      (* The provenance pass made this site call back into the tracking
         runtime (Fig. 2 step 1). *)
      if instrumented then begin
        match Pkru_safe.Env.profiler t.env with
        | Some p -> Runtime.Profiler.log_alloc p ~alloc_id:site ~addr ~size
        | None -> ()
      end;
      regs.(dst) <- addr
    | Ir.Instr.Alloca { dst; size; site; shared; instrumented } ->
      let size = value size in
      let addr =
        if shared then begin
          (* Demoted to a frame-lifetime MU heap allocation. *)
          Sim.Cpu.charge cpu cost.Sim.Cost.call;
          Pkru_safe.Env.malloc_untrusted t.env size
        end
        else begin
          Sim.Cpu.charge cpu cost.Sim.Cost.alu;
          let aligned = (size + 15) land lnot 15 in
          if t.stack_sp + aligned > Vmm.Layout.stack_base + Vmm.Layout.stack_size then
            raise (Trap "stack overflow");
          let a = t.stack_sp in
          t.stack_sp <- t.stack_sp + aligned;
          a
        end
      in
      if instrumented then begin
        match Pkru_safe.Env.profiler t.env with
        | Some p -> Runtime.Profiler.log_alloc p ~alloc_id:site ~addr ~size
        | None -> ()
      end;
      frame_allocas := (addr, shared, instrumented) :: !frame_allocas;
      regs.(dst) <- addr
    | Ir.Instr.Dealloc addr ->
      Sim.Cpu.charge cpu cost.Sim.Cost.call;
      Pkru_safe.Env.dealloc t.env (value addr)
    | Ir.Instr.Realloc { dst; addr; size } ->
      Sim.Cpu.charge cpu cost.Sim.Cost.call;
      regs.(dst) <- Pkru_safe.Env.realloc t.env (value addr) (value size)
    | Ir.Instr.Call { dst; callee; args } ->
      Sim.Cpu.charge cpu cost.Sim.Cost.call;
      let f =
        match Ir.Module_ir.find_func t.modul callee with
        | Some f -> f
        | None -> raise (Trap ("call to unknown function " ^ callee))
      in
      let result = call t f (List.map value args) in
      Sim.Cpu.charge cpu cost.Sim.Cost.ret;
      (match dst with
      | Some r -> regs.(r) <- result
      | None -> ())
    | Ir.Instr.Call_indirect { dst; target; args } ->
      Sim.Cpu.charge cpu cost.Sim.Cost.call_indirect;
      let index = value target in
      let f =
        match Ir.Module_ir.func_table_entry t.modul index with
        | Some name -> Ir.Module_ir.func t.modul name
        | None -> raise (Trap (Printf.sprintf "indirect call to bad target %d" index))
      in
      let result = call t f (List.map value args) in
      Sim.Cpu.charge cpu cost.Sim.Cost.ret;
      (match dst with
      | Some r -> regs.(r) <- result
      | None -> ())
    | Ir.Instr.Func_addr (r, name) ->
      Sim.Cpu.charge cpu cost.Sim.Cost.alu;
      (match Ir.Module_ir.find_index t.modul name with
      | Some index -> regs.(r) <- index
      | None -> raise (Trap ("func_addr without table slot: " ^ name)))
    | Ir.Instr.Call_host { dst; host; args } ->
      Sim.Cpu.charge cpu cost.Sim.Cost.call;
      let fn =
        match Hashtbl.find_opt t.hosts host with
        | Some fn -> fn
        | None -> raise (Trap ("unknown host function " ^ host))
      in
      let result = fn (List.map value args) in
      Sim.Cpu.charge cpu cost.Sim.Cost.ret;
      (match dst with
      | Some r -> regs.(r) <- result
      | None -> ())
    | Ir.Instr.Gate op ->
      let gate = Pkru_safe.Env.gate t.env in
      (match op with
      | Ir.Instr.Enter_untrusted -> Runtime.Gate.enter_untrusted gate
      | Ir.Instr.Exit_untrusted -> Runtime.Gate.exit_untrusted gate
      | Ir.Instr.Enter_trusted -> Runtime.Gate.enter_trusted gate
      | Ir.Instr.Exit_trusted -> Runtime.Gate.exit_trusted gate)
  in
  let rec run_block (block : Ir.Func.block) =
    List.iter exec_instr block.Ir.Func.instrs;
    tick ();
    Sim.Cpu.charge cpu cost.Sim.Cost.branch;
    match block.Ir.Func.term with
    | Ir.Instr.Ret None -> 0
    | Ir.Instr.Ret (Some v) -> value v
    | Ir.Instr.Br b -> run_block (Ir.Func.block f b)
    | Ir.Instr.Cond_br (c, a, b) ->
      run_block (Ir.Func.block f (if value c <> 0 then a else b))
  in
  let unwind_frame () =
    List.iter
      (fun (addr, heap_demoted, instrumented) ->
        if heap_demoted then Pkru_safe.Env.dealloc t.env addr
        else if instrumented then begin
          match Pkru_safe.Env.profiler t.env with
          | Some p -> Runtime.Profiler.log_dealloc p ~addr
          | None -> ()
        end)
      !frame_allocas;
    t.stack_sp <- saved_sp
  in
  Fun.protect ~finally:unwind_frame (fun () -> run_block f.Ir.Func.blocks.(0))

let run t name args =
  match Ir.Module_ir.find_func t.modul name with
  | None -> raise (Trap ("no such entry function: " ^ name))
  | Some f ->
    let machine = Pkru_safe.Env.machine t.env in
    Sim.Cpu.charge machine.Sim.Machine.cpu machine.Sim.Machine.cpu.Sim.Cpu.cost.Sim.Cost.call;
    call t f args
