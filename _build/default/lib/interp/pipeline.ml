type host_spec = string * (Pkru_safe.Env.t -> Interp.host_fn)

type build = {
  interp : Interp.t;
  env : Pkru_safe.Env.t;
  pass_stats : Ir.Passes.stats;
}

let ( let* ) r f =
  match r with
  | Ok v -> f v
  | Error _ as e -> e

let build ?cost ?mu_backend ?profile ?(hosts = []) ~mode source =
  let config = Pkru_safe.Config.make ?mu_backend ?cost mode in
  let gates = Pkru_safe.Config.gates_active config in
  let instrument = mode = Pkru_safe.Config.Profiling in
  let in_profile =
    if Pkru_safe.Config.split_heap config then
      Option.map (fun p id -> Runtime.Profile.mem p id) profile
    else None
  in
  let host_exists name = List.mem_assoc name hosts in
  let* compiled, pass_stats =
    Ir.Passes.compile ~gates ~instrument ?profile:in_profile ~hosts:host_exists source
  in
  let* env = Pkru_safe.Env.create ?profile config in
  let interp = Interp.create compiled env in
  List.iter (fun (name, factory) -> Interp.register_host interp name (factory env)) hosts;
  Ok { interp; env; pass_stats }

let build_static ?cost ?mu_backend ?(hosts = []) ~mode source =
  (* The analysis needs stable AllocIds: run it on an id-assigned copy, and
     rely on assignment being deterministic so the compile pipeline's own
     pass yields identical ids. *)
  let analyzed = Ir.Module_ir.copy source in
  ignore (Ir.Passes.assign_alloc_ids analyzed);
  let result = Ir.Static_taint.analyze analyzed in
  let profile = Runtime.Profile.create () in
  Runtime.Alloc_id.Set.iter (Runtime.Profile.record profile) result.Ir.Static_taint.shared;
  let* built = build ?cost ?mu_backend ~profile ~hosts ~mode source in
  Ok (built, result)

let collect_profile ?hosts source ~inputs =
  let* profiling = build ?hosts ~mode:Pkru_safe.Config.Profiling source in
  List.iter (fun input -> input profiling.interp) inputs;
  Ok (Pkru_safe.Env.recorded_profile profiling.env)

let full_cycle ?hosts source ~inputs =
  let* profile = collect_profile ?hosts source ~inputs in
  build ?hosts ~profile ~mode:Pkru_safe.Config.Mpk source
