(** The four-stage PKRU-Safe toolchain driver (paper Fig. 1).

    {ol
    {- the developer annotates untrusted crates on the source module
       ([Ir.Module_ir.mark_untrusted] — the "4 lines per library");}
    {- {!build} with [Profiling] produces the instrumented profile build;}
    {- running the profile inputs populates the profile
       ({!collect_profile});}
    {- {!build} with [Mpk] and that profile produces the enforcing
       application.}}

    Host functions are registered per build because they close over the
    build's environment (machine, allocator). *)

type host_spec = string * (Pkru_safe.Env.t -> Interp.host_fn)
(** Name and factory for an embedder-provided native function. *)

type build = {
  interp : Interp.t;
  env : Pkru_safe.Env.t;
  pass_stats : Ir.Passes.stats;
}

val build :
  ?cost:Sim.Cost.t ->
  ?mu_backend:Allocators.Pkalloc.mu_backend ->
  ?profile:Runtime.Profile.t ->
  ?hosts:host_spec list ->
  mode:Pkru_safe.Config.mode ->
  Ir.Module_ir.t ->
  (build, string) result
(** Compiles the source module for [mode] (running the pass pipeline on a
    copy) and instantiates a fresh machine + environment. *)

val build_static :
  ?cost:Sim.Cost.t ->
  ?mu_backend:Allocators.Pkalloc.mu_backend ->
  ?hosts:host_spec list ->
  mode:Pkru_safe.Config.mode ->
  Ir.Module_ir.t ->
  (build * Ir.Static_taint.result, string) result
(** Like {!build}, but partitions the heap from the static taint analysis
    instead of a dynamic profile (the §6 alternative) — no profiling runs
    required.  The returned analysis result reports which sites were
    deemed shared. *)

val collect_profile :
  ?hosts:host_spec list ->
  Ir.Module_ir.t ->
  inputs:(Interp.t -> unit) list ->
  (Runtime.Profile.t, string) result
(** Builds the profiling configuration and runs every profiling input
    against it, returning the merged profile. *)

val full_cycle :
  ?hosts:host_spec list ->
  Ir.Module_ir.t ->
  inputs:(Interp.t -> unit) list ->
  (build, string) result
(** Stages 2–4 in one step: profile with [inputs], then produce the final
    enforcing build. *)
