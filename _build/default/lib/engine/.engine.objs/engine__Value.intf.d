lib/engine/value.mli: Hashtbl Pkru_safe
