lib/engine/lexer.ml: Buffer Char List Printexc Printf String Value
