lib/engine/eval.ml: Array Ast Buffer Bytes Char Float Format Hashtbl List Pkru_safe Printexc Printf Sim String Util Value
