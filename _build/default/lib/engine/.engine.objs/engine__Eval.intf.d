lib/engine/eval.mli: Ast Format Value
