lib/engine/value.ml: Array Bytes Float Hashtbl Int64 List Pkru_safe Printf Sim String
