lib/engine/parser.ml: Ast Lexer List Printexc Printf
