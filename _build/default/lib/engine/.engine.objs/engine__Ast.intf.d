lib/engine/ast.mli:
