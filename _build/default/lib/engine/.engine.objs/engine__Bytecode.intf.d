lib/engine/bytecode.mli: Ast Eval Value
