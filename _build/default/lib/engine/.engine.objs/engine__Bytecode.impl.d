lib/engine/bytecode.ml: Array Ast Buffer Eval Hashtbl List Printf String Value
