lib/engine/engine.ml: Ast Bytecode Eval Lexer Parser Pkru_safe Value
