lib/engine/ast.ml:
