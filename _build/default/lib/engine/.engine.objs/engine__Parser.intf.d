lib/engine/parser.mli: Ast Lexer
