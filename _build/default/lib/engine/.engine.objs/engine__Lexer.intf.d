lib/engine/lexer.mli: Value
