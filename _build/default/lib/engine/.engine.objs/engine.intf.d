lib/engine/engine.mli: Ast Bytecode Eval Lexer Parser Pkru_safe Value
