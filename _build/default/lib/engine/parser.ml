exception Parse_error of string

let () =
  Printexc.register_printer (function
    | Parse_error msg -> Some ("Parser.Parse_error: " ^ msg)
    | _ -> None)

type state = { mutable toks : Lexer.located list }

let current st =
  match st.toks with
  | t :: _ -> t
  | [] -> { Lexer.tok = Lexer.Eof; line = 0 }

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let fail st msg =
  let t = current st in
  raise
    (Parse_error
       (Printf.sprintf "line %d: %s (found %s)" t.Lexer.line msg (Lexer.token_to_string t.Lexer.tok)))

let eat_punct st p =
  match (current st).Lexer.tok with
  | Lexer.Punct q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected %S" p)

let try_punct st p =
  match (current st).Lexer.tok with
  | Lexer.Punct q when q = p ->
    advance st;
    true
  | _ -> false

let ident st =
  match (current st).Lexer.tok with
  | Lexer.Ident name ->
    advance st;
    name
  | _ -> fail st "expected identifier"

(* Binary operator precedence, loosest first. *)
let precedences = [ [ "||" ]; [ "&&" ]; [ "|" ]; [ "^" ]; [ "&" ]; [ "=="; "!=" ];
                    [ "<"; "<="; ">"; ">=" ]; [ "<<"; ">>" ]; [ "+"; "-" ]; [ "*"; "/"; "%" ] ]

let rec parse_program st =
  let rec loop acc =
    match (current st).Lexer.tok with
    | Lexer.Eof -> List.rev acc
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

and parse_block st =
  eat_punct st "{";
  let rec loop acc =
    match (current st).Lexer.tok with
    | Lexer.Punct "}" ->
      advance st;
      List.rev acc
    | Lexer.Eof -> fail st "unterminated block"
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st =
  match (current st).Lexer.tok with
  | Lexer.Keyword "var" ->
    advance st;
    let name = ident st in
    let init = if try_punct st "=" then parse_expr st else Ast.Null in
    eat_punct st ";";
    Ast.Var (name, init)
  | Lexer.Keyword "function" ->
    advance st;
    let name = ident st in
    let params = parse_params st in
    let body = parse_block st in
    Ast.Func_decl (name, params, body)
  | Lexer.Keyword "if" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    let then_ = parse_block st in
    let else_ =
      match (current st).Lexer.tok with
      | Lexer.Keyword "else" ->
        advance st;
        (match (current st).Lexer.tok with
        | Lexer.Keyword "if" -> [ parse_stmt st ]
        | _ -> parse_block st)
      | _ -> []
    in
    Ast.If (cond, then_, else_)
  | Lexer.Keyword "while" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    Ast.While (cond, parse_block st)
  | Lexer.Keyword "for" ->
    advance st;
    eat_punct st "(";
    let init =
      if try_punct st ";" then None
      else begin
        let s =
          match (current st).Lexer.tok with
          | Lexer.Keyword "var" ->
            advance st;
            let name = ident st in
            eat_punct st "=";
            Ast.Var (name, parse_expr st)
          | _ -> Ast.Expr (parse_expr st)
        in
        eat_punct st ";";
        Some s
      end
    in
    let cond = if try_punct st ";" then None
      else begin
        let e = parse_expr st in
        eat_punct st ";";
        Some e
      end
    in
    let step =
      match (current st).Lexer.tok with
      | Lexer.Punct ")" -> None
      | _ -> Some (Ast.Expr (parse_expr st))
    in
    eat_punct st ")";
    Ast.For (init, cond, step, parse_block st)
  | Lexer.Keyword "return" ->
    advance st;
    let v =
      match (current st).Lexer.tok with
      | Lexer.Punct ";" -> None
      | _ -> Some (parse_expr st)
    in
    eat_punct st ";";
    Ast.Return v
  | Lexer.Keyword "break" ->
    advance st;
    eat_punct st ";";
    Ast.Break
  | Lexer.Keyword "continue" ->
    advance st;
    eat_punct st ";";
    Ast.Continue
  | Lexer.Punct "{" -> Ast.Block (parse_block st)
  | _ ->
    let e = parse_expr st in
    eat_punct st ";";
    Ast.Expr e

and parse_params st =
  eat_punct st "(";
  if try_punct st ")" then []
  else begin
    let rec loop acc =
      let p = ident st in
      if try_punct st "," then loop (p :: acc)
      else begin
        eat_punct st ")";
        List.rev (p :: acc)
      end
    in
    loop []
  end

and parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  match (current st).Lexer.tok with
  | Lexer.Punct (("=" | "+=" | "-=" | "*=" | "/=" | "%=") as op) ->
    (match lhs with
    | Ast.Ident _ | Ast.Index _ | Ast.Member _ ->
      advance st;
      let rhs = parse_assign st in
      Ast.Assign (op, lhs, rhs)
    | _ -> fail st "invalid assignment target")
  | _ -> lhs

and parse_ternary st =
  let cond = parse_binary st precedences in
  if try_punct st "?" then begin
    let a = parse_assign st in
    eat_punct st ":";
    let b = parse_assign st in
    Ast.Ternary (cond, a, b)
  end
  else cond

and parse_binary st levels =
  match levels with
  | [] -> parse_unary st
  | ops :: tighter ->
    let lhs = parse_binary st tighter in
    let rec loop lhs =
      match (current st).Lexer.tok with
      | Lexer.Punct p when List.mem p ops ->
        advance st;
        let rhs = parse_binary st tighter in
        loop (Ast.Binary (p, lhs, rhs))
      | _ -> lhs
    in
    loop lhs

and parse_unary st =
  match (current st).Lexer.tok with
  | Lexer.Punct "!" ->
    advance st;
    Ast.Unary ("!", parse_unary st)
  | Lexer.Punct "-" ->
    advance st;
    Ast.Unary ("-", parse_unary st)
  | Lexer.Punct "~" ->
    advance st;
    Ast.Unary ("~", parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop e =
    match (current st).Lexer.tok with
    | Lexer.Punct "." ->
      advance st;
      let name = ident st in
      (match (current st).Lexer.tok with
      | Lexer.Punct "(" -> loop (Ast.Method_call (e, name, parse_args st))
      | _ -> loop (Ast.Member (e, name)))
    | Lexer.Punct "[" ->
      advance st;
      let idx = parse_expr st in
      eat_punct st "]";
      loop (Ast.Index (e, idx))
    | Lexer.Punct "(" -> loop (Ast.Call (e, parse_args st))
    | _ -> e
  in
  loop (parse_primary st)

and parse_args st =
  eat_punct st "(";
  if try_punct st ")" then []
  else begin
    let rec loop acc =
      let a = parse_expr st in
      if try_punct st "," then loop (a :: acc)
      else begin
        eat_punct st ")";
        List.rev (a :: acc)
      end
    in
    loop []
  end

and parse_primary st =
  match (current st).Lexer.tok with
  | Lexer.Num f ->
    advance st;
    Ast.Num f
  | Lexer.Str s ->
    advance st;
    Ast.Str s
  | Lexer.Keyword "true" ->
    advance st;
    Ast.Bool true
  | Lexer.Keyword "false" ->
    advance st;
    Ast.Bool false
  | Lexer.Keyword "null" ->
    advance st;
    Ast.Null
  | Lexer.Keyword "new" ->
    (* Only `new Array(n)` is supported; other uses are object literals. *)
    advance st;
    let callee = ident st in
    let args = parse_args st in
    if callee = "Array" then
      match args with
      | [ n ] -> Ast.Call (Ast.Ident "__new_array", [ n ])
      | [] -> Ast.Array_lit []
      | _ -> fail st "new Array takes at most one argument"
    else fail st "only `new Array(...)` is supported"
  | Lexer.Keyword "function" ->
    advance st;
    let params = parse_params st in
    let body = parse_block st in
    Ast.Func_lit (params, body)
  | Lexer.Ident name ->
    advance st;
    Ast.Ident name
  | Lexer.Punct "(" ->
    advance st;
    let e = parse_expr st in
    eat_punct st ")";
    e
  | Lexer.Punct "[" ->
    advance st;
    if try_punct st "]" then Ast.Array_lit []
    else begin
      let rec loop acc =
        let e = parse_expr st in
        if try_punct st "," then loop (e :: acc)
        else begin
          eat_punct st "]";
          List.rev (e :: acc)
        end
      in
      Ast.Array_lit (loop [])
    end
  | Lexer.Punct "{" ->
    advance st;
    if try_punct st "}" then Ast.Object_lit []
    else begin
      let parse_key () =
        match (current st).Lexer.tok with
        | Lexer.Ident name | Lexer.Str name | Lexer.Keyword name ->
          advance st;
          name
        | _ -> fail st "expected property name"
      in
      let rec loop acc =
        let key = parse_key () in
        eat_punct st ":";
        let v = parse_expr st in
        if try_punct st "," then loop ((key, v) :: acc)
        else begin
          eat_punct st "}";
          List.rev ((key, v) :: acc)
        end
      in
      Ast.Object_lit (loop [])
    end
  | _ -> fail st "expected expression"

let parse toks = parse_program { toks }
