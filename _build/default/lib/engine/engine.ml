module Value = Value
module Lexer = Lexer
module Parser = Parser
module Ast = Ast
module Eval = Eval
module Bytecode = Bytecode

type tier =
  | Ast_tier
  | Bytecode_tier

type t = {
  env : Pkru_safe.Env.t;
  heap : Value.heap;
  eval : Eval.t;
}

let create ?seed ?fuel env =
  let heap = Value.create_heap env in
  { env; heap; eval = Eval.create ?seed ?fuel heap }

let env t = t.env
let heap t = t.heap
let evaluator t = t.eval

let register_host t name fn = Eval.register_host t.eval name fn

let eval_source ?(tier = Ast_tier) t src =
  let tokens = Lexer.tokenize t.heap src in
  let program = Parser.parse tokens in
  match tier with
  | Ast_tier -> Eval.run_program t.eval program
  | Bytecode_tier -> Bytecode.run t.eval (Bytecode.compile program)

let eval_string ?tier t text =
  match Value.str_of_string t.heap text with
  | Value.Str s -> eval_source ?tier t s
  | _ -> assert false

let take_output t = Eval.take_output t.eval

let collect t = Eval.gc t.eval

let add_gc_root t provider = Eval.add_gc_root t.eval provider
