(** MiniJS lexer.

    Tokenises a script held in {e machine memory}: every character is a
    checked byte load executed in whatever compartment is current.  When
    the browser hands the engine a script buffer allocated from MT, the
    very first profiling run faults here — script source is the simplest
    of the cross-compartment data flows PKRU-Safe must discover. *)

type token =
  | Num of float
  | Str of string
  | Ident of string
  | Keyword of string (* var function if else while for return break continue true false null *)
  | Punct of string   (* operators and delimiters *)
  | Eof

type located = {
  tok : token;
  line : int;
}

exception Lex_error of string

val tokenize : Value.heap -> Value.str -> located list
(** @raise Lex_error on malformed input. *)

val token_to_string : token -> string
