(** Recursive-descent MiniJS parser with standard operator precedence. *)

exception Parse_error of string

val parse : Lexer.located list -> Ast.program
(** @raise Parse_error on malformed input, with a line number. *)
