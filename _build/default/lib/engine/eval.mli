(** The MiniJS evaluator.

    A tree-walking interpreter whose data lives in machine memory (see
    {!Value}).  Built-in namespaces ([Math], [JSON], [String]) and methods
    on strings/arrays are provided here; embedder bindings (the DOM API)
    are registered as host functions and appear as globals.

    Every evaluation step charges cycles on the simulated CPU, and every
    string/array access is a checked machine access, so running a script
    inside an untrusted compartment faults exactly where real engine code
    would. *)

exception Script_error of string

type host = Value.t list -> Value.t

type t

val create : ?seed:int -> ?fuel:int -> Value.heap -> t
(** [seed] drives [Math.random]; [fuel] bounds evaluation steps
    (default 200M). *)

val heap : t -> Value.heap

val register_host : t -> string -> host -> unit
(** Exposes a native function as a global. *)

val set_global : t -> string -> Value.t -> unit
val get_global : t -> string -> Value.t option

val run_program : t -> Ast.program -> Value.t
(** Executes top-level statements; the value of the last expression
    statement is returned (like a REPL), [Null] otherwise.
    @raise Script_error on runtime errors or fuel exhaustion. *)

val call_function : t -> Value.t -> Value.t list -> Value.t
(** Invoke a [Fun] or [Host] value from the embedder. *)

val take_output : t -> string list
(** Lines produced by [print], oldest first; clears the buffer. *)

val steps : t -> int

(* {2 The tier-shared semantic core}

   The bytecode tier ({!Bytecode}) executes the same language with the
   same observable semantics; rather than duplicating them, the VM drives
   these primitives.  They are exact counterparts of what the AST
   evaluator does internally. *)

type scope

val globals_scope : t -> scope
val new_scope : parent:scope -> scope

val scope_declare : scope -> string -> Value.t -> unit
(** [var name = v] in this scope. *)

val scope_lookup : t -> scope -> string -> Value.t option
(** Walks the scope chain (charging the same lookup cost). *)

val scope_assign : t -> scope -> string -> Value.t -> unit
(** Assignment: updates the innermost binding, or creates a global (the
    language's fallback, as in the AST tier). *)

val host_exists : t -> string -> bool

val call_value : t -> Value.t -> Value.t list -> Value.t
(** Call a [Fun] (AST-interpreted) or [Host] value. *)

val binary_op : t -> string -> Value.t -> Value.t -> Value.t
val truthy_value : Value.t -> bool
val unary_op : t -> string -> Value.t -> Value.t
val method_call : t -> Value.t -> string -> Value.t list -> Value.t
val member_get : t -> Value.t -> string -> Value.t
val member_set : t -> Value.t -> string -> Value.t -> unit
val index_get : t -> Value.t -> Value.t -> Value.t
val index_set : t -> Value.t -> Value.t -> Value.t -> unit
val ns_call : t -> string -> string -> Value.t list -> Value.t
(** Math / JSON / String namespace calls. *)

val print_values : t -> Value.t list -> unit
val array_of_size : t -> Value.t -> Value.t
(** The [new Array(n)] builtin. *)

val make_closure : t -> params:string list -> body:Ast.stmt list -> scope -> Value.t
val closure_parts : t -> int -> string list * Ast.stmt list * scope
(** Inverse of {!make_closure} for a [Fun] id (used by the VM's
    compile-on-call cache). *)

val tick : t -> int -> unit
(** One evaluation step: fuel accounting plus a cycle charge.
    @raise Script_error on fuel exhaustion. *)

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Script_error} with a formatted message. *)

val gc : t -> int
(** Mark-sweep collection of the engine heap: marks everything reachable
    from the global scope (through arrays' machine slots, object
    properties and closure environments) and frees the machine buffers of
    everything else.  Returns the number of buffers freed.

    Only safe at a quiescence point — between scripts — because values
    held solely on the evaluator's OCaml stack are invisible to the
    marker; the embedder API ([Engine.collect]) is the intended entry
    point, and no [gc()] builtin is exposed to scripts.

    Embedders that retain engine values outside the global scope (e.g.
    the browser's event-listener table) must register them as GC roots
    with {!add_gc_root}, the moral equivalent of a handle scope. *)

val add_gc_root : t -> (unit -> Value.t list) -> unit
(** Registers a provider of additional roots, consulted at every
    collection. *)
