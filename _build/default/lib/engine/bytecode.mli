(** The bytecode execution tier.

    Real engines are tiered — SpiderMonkey parses to bytecode and runs a
    baseline interpreter before JIT compilation.  This module is that
    second tier for MiniJS: {!compile} lowers a parsed program to a stack
    bytecode, and {!run} executes it on a value stack, driving the exact
    same semantic core as the AST tier ({!Eval}'s shared primitives), so
    both tiers are observationally identical — a property the test suite
    checks differentially on every benchmark kernel.

    Functions compile lazily on first call (a compile-on-demand baseline
    tier); closures remain interoperable with the AST tier, so a DOM
    callback may AST-interpret a function the VM created. *)

type program

val compile : Ast.program -> program
(** Pure lowering; no evaluator state involved. *)

val disassemble : program -> string
(** Human-readable listing of the top-level code (for tests/debugging). *)

val instruction_count : program -> int
(** Instructions in the top-level code object. *)

val run : Eval.t -> program -> Value.t
(** Executes top-level code against the evaluator's global scope; like the
    AST tier, yields the value of the final expression statement.
    @raise Eval.Script_error on runtime errors / fuel exhaustion. *)
