type expr =
  | Num of float
  | Str of string
  | Bool of bool
  | Null
  | Ident of string
  | Array_lit of expr list
  | Object_lit of (string * expr) list
  | Func_lit of string list * stmt list
  | Unary of string * expr
  | Binary of string * expr * expr
  | Assign of string * expr * expr
  | Ternary of expr * expr * expr
  | Index of expr * expr
  | Member of expr * string
  | Call of expr * expr list
  | Method_call of expr * string * expr list

and stmt =
  | Expr of expr
  | Var of string * expr
  | Func_decl of string * string list * stmt list
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list

type program = stmt list
