type token =
  | Num of float
  | Str of string
  | Ident of string
  | Keyword of string
  | Punct of string
  | Eof

type located = {
  tok : token;
  line : int;
}

exception Lex_error of string

let () =
  Printexc.register_printer (function
    | Lex_error msg -> Some ("Lexer.Lex_error: " ^ msg)
    | _ -> None)

let keywords =
  [ "var"; "function"; "if"; "else"; "while"; "for"; "return"; "break"; "continue";
    "true"; "false"; "null"; "new" ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || is_digit c

(* Two- and one-character punctuators, longest match first. *)
let puncts2 = [ "=="; "!="; "<="; ">="; "&&"; "||"; "+="; "-="; "*="; "/="; "%="; "<<"; ">>" ]
let puncts1 = [ "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "!"; "("; ")"; "{"; "}"; "["; "]";
                ";"; ","; "."; ":"; "?"; "&"; "|"; "^"; "~" ]

type cursor = {
  heap : Value.heap;
  src : Value.str;
  mutable pos : int;
  mutable line : int;
}

let peek cur =
  if cur.pos >= cur.src.Value.s_len then None
  else Some (Char.chr (Value.str_get cur.heap cur.src cur.pos))

let peek2 cur =
  if cur.pos + 1 >= cur.src.Value.s_len then None
  else Some (Char.chr (Value.str_get cur.heap cur.src (cur.pos + 1)))

let advance cur =
  (match peek cur with
  | Some '\n' -> cur.line <- cur.line + 1
  | _ -> ());
  cur.pos <- cur.pos + 1

let fail cur msg = raise (Lex_error (Printf.sprintf "line %d: %s" cur.line msg))

let rec skip_trivia cur =
  match peek cur with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance cur;
    skip_trivia cur
  | Some '/' when peek2 cur = Some '/' ->
    let rec to_eol () =
      match peek cur with
      | Some '\n' | None -> ()
      | Some _ ->
        advance cur;
        to_eol ()
    in
    to_eol ();
    skip_trivia cur
  | Some '/' when peek2 cur = Some '*' ->
    advance cur;
    advance cur;
    let rec to_close () =
      match (peek cur, peek2 cur) with
      | Some '*', Some '/' ->
        advance cur;
        advance cur
      | None, _ -> fail cur "unterminated block comment"
      | _ ->
        advance cur;
        to_close ()
    in
    to_close ();
    skip_trivia cur
  | _ -> ()

let lex_number cur =
  let buf = Buffer.create 16 in
  let rec digits () =
    match peek cur with
    | Some c when is_digit c ->
      Buffer.add_char buf c;
      advance cur;
      digits ()
    | _ -> ()
  in
  digits ();
  (match (peek cur, peek2 cur) with
  | Some '.', Some c when is_digit c ->
    Buffer.add_char buf '.';
    advance cur;
    digits ()
  | _ -> ());
  (match peek cur with
  | Some ('e' | 'E') ->
    Buffer.add_char buf 'e';
    advance cur;
    (match peek cur with
    | Some (('+' | '-') as sign) ->
      Buffer.add_char buf sign;
      advance cur
    | _ -> ());
    digits ()
  | _ -> ());
  match float_of_string_opt (Buffer.contents buf) with
  | Some f -> Num f
  | None -> fail cur ("bad number literal " ^ Buffer.contents buf)

let lex_string cur quote =
  advance cur;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string literal"
    | Some c when c = quote -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some c when c = quote -> Buffer.add_char buf c
      | Some c -> Buffer.add_char buf c
      | None -> fail cur "unterminated escape");
      advance cur;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      loop ()
  in
  loop ();
  Str (Buffer.contents buf)

let lex_word cur =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | Some c when is_ident_char c ->
      Buffer.add_char buf c;
      advance cur;
      loop ()
    | _ -> ()
  in
  loop ();
  let word = Buffer.contents buf in
  if List.mem word keywords then Keyword word else Ident word

let lex_punct cur c =
  let two =
    match peek2 cur with
    | Some c2 ->
      let candidate = Printf.sprintf "%c%c" c c2 in
      if List.mem candidate puncts2 then Some candidate else None
    | None -> None
  in
  match two with
  | Some p ->
    advance cur;
    advance cur;
    Punct p
  | None ->
    let one = String.make 1 c in
    if List.mem one puncts1 then begin
      advance cur;
      Punct one
    end
    else fail cur (Printf.sprintf "unexpected character %C" c)

let tokenize heap src =
  let cur = { heap; src; pos = 0; line = 1 } in
  let rec loop acc =
    skip_trivia cur;
    let line = cur.line in
    match peek cur with
    | None -> List.rev ({ tok = Eof; line } :: acc)
    | Some c ->
      let tok =
        if is_digit c then lex_number cur
        else if is_ident_start c then lex_word cur
        else if c = '"' || c = '\'' then lex_string cur c
        else lex_punct cur c
      in
      loop ({ tok; line } :: acc)
  in
  loop []

let token_to_string = function
  | Num f -> Printf.sprintf "number %g" f
  | Str s -> Printf.sprintf "string %S" s
  | Ident s -> Printf.sprintf "identifier %s" s
  | Keyword s -> Printf.sprintf "keyword %s" s
  | Punct s -> Printf.sprintf "%S" s
  | Eof -> "end of input"
