type block = {
  block_id : int;
  mutable instrs : Instr.t list;
  mutable term : Instr.terminator;
}

type t = {
  name : string;
  crate : string;
  params : Instr.reg list;
  mutable blocks : block array;
  mutable frame_size : int;
  mutable address_taken : bool;
  mutable exported : bool;
  mutable is_wrapper : bool;
}

let max_reg_of_operand acc = function
  | Instr.Imm _ -> acc
  | Instr.Reg r -> max acc r

let max_reg_of_instr acc instr =
  let acc =
    match Instr.defined_reg instr with
    | Some r -> max acc r
    | None -> acc
  in
  List.fold_left max_reg_of_operand acc (Instr.used_operands instr)

let compute_frame_size params blocks =
  let acc = List.fold_left max (-1) params in
  let acc =
    Array.fold_left
      (fun acc block ->
        let acc = List.fold_left max_reg_of_instr acc block.instrs in
        match block.term with
        | Instr.Ret (Some v) | Instr.Cond_br (v, _, _) -> max_reg_of_operand acc v
        | Instr.Ret None | Instr.Br _ -> acc)
      acc blocks
  in
  acc + 1

let create ~name ~crate ~params ?(exported = false) blocks =
  if Array.length blocks = 0 then invalid_arg "Func.create: no blocks";
  {
    name;
    crate;
    params;
    blocks;
    frame_size = compute_frame_size params blocks;
    address_taken = false;
    exported;
    is_wrapper = false;
  }

let block t id =
  if id < 0 || id >= Array.length t.blocks then
    invalid_arg (Printf.sprintf "Func.block: no block %d in %s" id t.name);
  t.blocks.(id)

let iter_instrs t f =
  Array.iter (fun b -> List.iter (fun i -> f b i) b.instrs) t.blocks

let copy_instr (i : Instr.t) : Instr.t =
  match i with
  | Instr.Alloc { dst; size; site; pool; instrumented } ->
    Instr.Alloc { dst; size; site; pool; instrumented }
  | Instr.Alloca { dst; size; site; shared; instrumented } ->
    Instr.Alloca { dst; size; site; shared; instrumented }
  | Instr.Call { dst; callee; args } -> Instr.Call { dst; callee; args }
  | Instr.Const _ | Instr.Binop _ | Instr.Load _ | Instr.Store _ | Instr.Dealloc _
  | Instr.Realloc _ | Instr.Call_indirect _ | Instr.Func_addr _ | Instr.Call_host _
  | Instr.Gate _ ->
    i (* immutable constructors can be shared *)

let copy t =
  {
    t with
    blocks =
      Array.map
        (fun b -> { block_id = b.block_id; instrs = List.map copy_instr b.instrs; term = b.term })
        t.blocks;
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>func @%s(%a) ; crate=%s%s%s%s@," t.name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt r -> Format.fprintf fmt "%%r%d" r))
    t.params t.crate
    (if t.exported then " exported" else "")
    (if t.address_taken then " address-taken" else "")
    (if t.is_wrapper then " wrapper" else "");
  Array.iter
    (fun b ->
      Format.fprintf fmt "^%d:@," b.block_id;
      List.iter (fun i -> Format.fprintf fmt "  %a@," Instr.pp i) b.instrs;
      Format.fprintf fmt "  %a@," Instr.pp_terminator b.term)
    t.blocks;
  Format.fprintf fmt "@]"
