(** Textual IR: parse the exact syntax {!Module_ir.pp} prints.

    Gives the toolchain a durable on-disk program format (the CLI can load
    [.ir] files) and the test suite a print/parse round-trip oracle.

    Grammar, line oriented:
    {v
    crate <name> [untrusted]?
    func @<name>(%r0, %r1, ...) ; crate=<name> [exported] [address-taken] [wrapper]
    ^<n>:
      %r3 = const 42
      %r4 = add %r3, 7            (binops: add sub mul div rem and or xor
                                   shl shr eq ne lt le gt ge)
      %r5 = load.8 [%r4]
      store.4 %r5 -> [%r4]
      %r6 = __rust_alloc(64) ; alloc<f:b:c>
      %r6 = __rust_untrusted_alloc(64) ; alloc<f:b:c> [instrumented]
      __rust_dealloc(%r6)
      %r7 = __rust_realloc(%r6, 128)
      %r8 = call @foo(%r1, 3)     (also without destination)
      %r9 = call_indirect %r5(%r1)
      %r10 = func_addr @foo
      %r11 = call_host @print(%r1)
      gate.enter_untrusted        (and the other three gate ops)
      ret %r8 | ret | br ^1 | cond_br %r3, ^1, ^2
    v} *)

exception Syntax_error of string
(** Carries a 1-based line number and message. *)

val of_string : string -> Module_ir.t
(** Parses a whole module. AllocIds in comments are restored verbatim.
    @raise Syntax_error on malformed input. *)

val to_string : Module_ir.t -> string
(** [Format.asprintf "%a" Module_ir.pp], for symmetry. *)
