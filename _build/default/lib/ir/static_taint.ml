module Site_set = Runtime.Alloc_id.Set

type result = {
  shared : Site_set.t;
  iterations : int;
}

(* Abstract state:
     reg_sites  : (function, register) -> sites the register may hold
     contents   : site -> sites stored into objects allocated there
     returns    : function -> sites its return value may hold
     sunk       : sites passed (directly) across the boundary
   All sets grow monotonically, so a worklist-free global fixpoint
   converges. *)

type state = {
  modul : Module_ir.t;
  reg_sites : (string * int, Site_set.t) Hashtbl.t;
  contents : (Runtime.Alloc_id.t, Site_set.t) Hashtbl.t;
  returns : (string, Site_set.t) Hashtbl.t;
  mutable sunk : Site_set.t;
  mutable changed : bool;
  hosts_are_sinks : bool;
}

let get tbl key =
  match Hashtbl.find_opt tbl key with
  | Some s -> s
  | None -> Site_set.empty

let add_to st tbl key sites =
  if not (Site_set.is_empty sites) then begin
    let old = get tbl key in
    let merged = Site_set.union old sites in
    if not (Site_set.equal old merged) then begin
      Hashtbl.replace tbl key merged;
      st.changed <- true
    end
  end

let sink st sites =
  let merged = Site_set.union st.sunk sites in
  if not (Site_set.equal st.sunk merged) then begin
    st.sunk <- merged;
    st.changed <- true
  end

let reg_key (f : Func.t) r = (f.Func.name, r)

let operand_sites st f = function
  | Instr.Imm _ -> Site_set.empty
  | Instr.Reg r -> get st.reg_sites (reg_key f r)

(* All functions an indirect call might reach: any address-taken function
   of matching arity (the paper places no restriction on function-pointer
   flow, §3.3, so neither can the analysis). *)
let indirect_targets st arity =
  Module_ir.fold_funcs st.modul
    (fun acc (g : Func.t) ->
      if g.Func.address_taken && List.length g.Func.params = arity then g :: acc else acc)
    []

let flow_call st f (callee : Func.t) dst args =
  List.iteri
    (fun i arg -> add_to st st.reg_sites (reg_key callee (List.nth callee.Func.params i))
        (operand_sites st f arg))
    args;
  (match dst with
  | Some r -> add_to st st.reg_sites (reg_key f r) (get st.returns callee.Func.name)
  | None -> ());
  (* Crossing into an untrusted crate sinks every argument. *)
  if Module_ir.is_untrusted_fn st.modul callee && not (Module_ir.is_untrusted_fn st.modul f)
  then List.iter (fun arg -> sink st (operand_sites st f arg)) args

let transfer st (f : Func.t) (instr : Instr.t) =
  match instr with
  | Instr.Const _ | Instr.Func_addr _ | Instr.Gate _ | Instr.Dealloc _ -> ()
  | Instr.Binop (_, r, a, b) ->
    (* Pointer arithmetic preserves provenance. *)
    add_to st st.reg_sites (reg_key f r)
      (Site_set.union (operand_sites st f a) (operand_sites st f b))
  | Instr.Alloc { dst; site; pool; _ } ->
    (* Only trusted-pool sources matter; U's own allocations are MU
       already. *)
    if pool = Instr.Trusted_pool then
      add_to st st.reg_sites (reg_key f dst) (Site_set.singleton site)
  | Instr.Alloca { dst; site; shared; _ } ->
    (* Stack slots of T are MT sources too (§6 extension). *)
    if not shared then add_to st st.reg_sites (reg_key f dst) (Site_set.singleton site)
  | Instr.Realloc { dst; addr; _ } ->
    (* Reallocation keeps provenance (pool-stable realloc, §4.2). *)
    add_to st st.reg_sites (reg_key f dst) (operand_sites st f addr)
  | Instr.Load { dst; addr; _ } ->
    let from = operand_sites st f addr in
    Site_set.iter
      (fun site -> add_to st st.reg_sites (reg_key f dst) (get st.contents site))
      from
  | Instr.Store { src; addr; _ } ->
    let value = operand_sites st f src in
    Site_set.iter (fun site -> add_to st st.contents site value) (operand_sites st f addr)
  | Instr.Call { dst; callee; args } ->
    (match Module_ir.find_func st.modul callee with
    | Some g -> flow_call st f g dst args
    | None -> ())
  | Instr.Call_indirect { dst; target; args } ->
    ignore target;
    List.iter (fun g -> flow_call st f g dst args) (indirect_targets st (List.length args))
  | Instr.Call_host { args; _ } ->
    if st.hosts_are_sinks then List.iter (fun arg -> sink st (operand_sites st f arg)) args

let transfer_terminator st (f : Func.t) (term : Instr.terminator) =
  match term with
  | Instr.Ret (Some v) -> add_to st st.returns f.Func.name (operand_sites st f v)
  | Instr.Ret None | Instr.Br _ | Instr.Cond_br _ -> ()

(* Anything reachable by loads out of a shared object is itself shared:
   once U holds a pointer it can chase interior pointers freely. *)
let reachability_closure st =
  let rec grow shared =
    let next =
      Site_set.fold
        (fun site acc -> Site_set.union acc (get st.contents site))
        shared shared
    in
    if Site_set.equal next shared then shared else grow next
  in
  grow st.sunk

(* Mark address-taken functions so indirect-call targets are known even
   when the gate pass (which normally resolves function addresses) has not
   run on this module. *)
let mark_address_taken modul =
  Module_ir.iter_funcs modul (fun f ->
      Func.iter_instrs f (fun _ instr ->
          match instr with
          | Instr.Func_addr (_, name) ->
            (match Module_ir.find_func modul name with
            | Some g -> g.Func.address_taken <- true
            | None -> ())
          | _ -> ()))

let analyze ?(hosts_are_sinks = true) modul =
  mark_address_taken modul;
  let st =
    {
      modul;
      reg_sites = Hashtbl.create 256;
      contents = Hashtbl.create 64;
      returns = Hashtbl.create 64;
      sunk = Site_set.empty;
      changed = true;
      hosts_are_sinks;
    }
  in
  let iterations = ref 0 in
  while st.changed do
    st.changed <- false;
    incr iterations;
    Module_ir.iter_funcs modul (fun f ->
        Array.iter
          (fun (b : Func.block) ->
            List.iter (transfer st f) b.Func.instrs;
            transfer_terminator st f b.Func.term)
          f.Func.blocks)
  done;
  { shared = reachability_closure st; iterations = !iterations }

let in_profile result site = Site_set.mem site result.shared
