(** Static data-flow analysis: the alternative to dynamic profiling.

    The paper's instrumentation "supports instrumentation entirely based
    on static analysis in principle, which we tested using various small
    programs" (§6) — production use fell back to dynamic profiling
    because LLVM-scale pointer analyses were unsound, exploded, or
    over-approximated.  This module implements the static side so both
    strategies exist and can be compared.

    The analysis models the paper's taint problem directly: allocation
    sites in T are sources, interfaces to U are sinks, and "should any
    source ever flow into (or through) a sink", that site must live in MU
    (§3.4).  It is:
    {ul
    {- {b sound} for the IR's features: flow- and context-insensitive
       over-approximation with a global field-insensitive heap model
       ([contents : site -> sites stored into objects of that site]), a
       transitive-reachability closure (U can chase pointers out of any
       shared object), and conservative handling of indirect calls (any
       address-taken function of matching arity) and host calls (treated
       as sinks);}
    {- {b imprecise} by design: a site that flows to U only on a dead
       branch is still flagged — which is precisely the
       over-approximation §6 complains about, demonstrated in the test
       suite.}}

    Run after {!Passes.assign_alloc_ids} so sites are stable. *)

type result = {
  shared : Runtime.Alloc_id.Set.t; (** sites that must be placed in MU *)
  iterations : int;                (** fixpoint rounds until convergence *)
}

val analyze : ?hosts_are_sinks:bool -> Module_ir.t -> result
(** [hosts_are_sinks] (default true): whether values passed to host
    functions are assumed to escape to the untrusted side. *)

val in_profile : result -> Runtime.Alloc_id.t -> bool
(** Adapter matching the profile predicate used by {!Passes.compile}. *)
