(** The intermediate representation.

    A small register IR standing in for LLVM IR: functions of basic blocks,
    virtual registers, explicit loads/stores against simulated memory, and
    calls.  It carries exactly the information the PKRU-Safe toolchain
    needs: allocator call sites (so the AllocId pass can tag them and the
    profile pass can retarget them), cross-crate calls (so the gate pass
    can wrap boundary interfaces), and function-address captures (so
    address-taken functions of T get reverse gates). *)

type reg = int

type operand =
  | Imm of int
  | Reg of reg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type pool =
  | Trusted_pool    (** __rust_alloc: allocate from MT *)
  | Untrusted_pool  (** __rust_untrusted_alloc: allocate from MU *)

type gate_op =
  | Enter_untrusted
  | Exit_untrusted
  | Enter_trusted
  | Exit_trusted

type t =
  | Const of reg * int
  | Binop of binop * reg * operand * operand
  | Load of {
      dst : reg;
      addr : operand;
      width : int; (* 1, 2, 4 or 8 bytes *)
    }
  | Store of {
      src : operand;
      addr : operand;
      width : int;
    }
  | Alloc of {
      dst : reg;
      size : operand;
      mutable site : Runtime.Alloc_id.t; (* assigned by the AllocId pass *)
      mutable pool : pool;               (* retargeted by the profile pass *)
      mutable instrumented : bool;       (* set by the provenance pass *)
    }
  | Alloca of {
      dst : reg;
      size : operand;
      mutable site : Runtime.Alloc_id.t;
      mutable shared : bool;             (* profile pass: demote to MU heap *)
      mutable instrumented : bool;
    }
      (** Stack allocation (the §6 stack-protection extension): lives in
          the trusted stack region and dies with the frame; when profiling
          shows U touching it, the enforcement build demotes the site to a
          frame-lifetime MU heap allocation. *)
  | Dealloc of operand
  | Realloc of {
      dst : reg;
      addr : operand;
      size : operand;
    }
  | Call of {
      dst : reg option;
      mutable callee : string; (* rewritten to a wrapper by the gate pass *)
      args : operand list;
    }
  | Call_indirect of {
      dst : reg option;
      target : operand; (* index into the module function table *)
      args : operand list;
    }
  | Func_addr of reg * string (* take the address of a function *)
  | Call_host of {
      dst : reg option;
      host : string; (* host function provided by the embedder *)
      args : operand list;
    }
  | Gate of gate_op (* only ever appears in pass-generated wrappers *)

type terminator =
  | Ret of operand option
  | Br of int
  | Cond_br of operand * int * int

val pp_operand : Format.formatter -> operand -> unit
val binop_to_string : binop -> string
val pp : Format.formatter -> t -> unit
val pp_terminator : Format.formatter -> terminator -> unit

val defined_reg : t -> reg option
(** The register an instruction writes, if any. *)

val used_operands : t -> operand list
(** Every operand an instruction reads. *)
