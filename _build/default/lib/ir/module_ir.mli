(** A compilation unit: crates, functions and the indirect-call table.

    Crates model Rust crates / C libraries: the unit of the developer's
    trust annotation.  The function table gives every address-taken
    function a small integer "address" used by [Func_addr] /
    [Call_indirect], standing in for real code addresses. *)

type crate = {
  crate_name : string;
  mutable untrusted : bool; (* the developer's annotation *)
}

type t

val create : unit -> t

val declare_crate : t -> string -> unit
(** Idempotent. *)

val crates : t -> crate list

val crate : t -> string -> crate
(** @raise Not_found for an undeclared crate. *)

val mark_untrusted : t -> string -> unit
(** The developer annotation: tag a crate as an untrusted interface.
    @raise Not_found for an undeclared crate. *)

val is_untrusted_fn : t -> Func.t -> bool
(** Whether a function belongs to an untrusted crate. *)

val add_func : t -> Func.t -> unit
(** Declares the owning crate if needed.
    @raise Invalid_argument on duplicate name. *)

val find_func : t -> string -> Func.t option

val func : t -> string -> Func.t
(** @raise Invalid_argument on unknown name. *)

val iter_funcs : t -> (Func.t -> unit) -> unit
val fold_funcs : t -> ('a -> Func.t -> 'a) -> 'a -> 'a

val func_index : t -> string -> int
(** Index of a function in the indirect-call table, assigning one on first
    use and marking the function address-taken.
    @raise Invalid_argument on unknown name. *)

val func_table_entry : t -> int -> string option
(** Resolve an indirect-call target. *)

val find_index : t -> string -> int option
(** Table index previously assigned to a function, without assigning one. *)

val retarget_entry : t -> index:int -> string -> unit
(** Point a function-table slot at a different function (the gate pass
    retargets address-taken T functions to their entry wrappers). *)

val copy : t -> t
(** Deep copy: crates, functions and the table.  Passes run on copies so a
    single source module can be compiled into several configurations. *)

val pp : Format.formatter -> t -> unit
