(** Convenience builder for IR functions.

    Emission targets a current block; every block must be terminated
    before {!finish}.  Registers are allocated with {!fresh}; parameters
    occupy the first registers. *)

type t

val create : name:string -> crate:string -> nparams:int -> ?exported:bool -> unit -> t
(** Starts a function with entry block 0 selected. *)

val params : t -> Instr.reg list
val fresh : t -> Instr.reg

val new_block : t -> int
(** Creates a block and returns its id (does not switch to it). *)

val switch_to : t -> int -> unit
(** Subsequent emissions go to this block. *)

(* Instruction emitters; those producing a value return the destination
   register. *)

val const : t -> int -> Instr.reg
val binop : t -> Instr.binop -> Instr.operand -> Instr.operand -> Instr.reg
val load : t -> ?width:int -> Instr.operand -> Instr.reg
val store : t -> ?width:int -> src:Instr.operand -> addr:Instr.operand -> unit -> unit
val alloc : t -> Instr.operand -> Instr.reg
val alloca : t -> Instr.operand -> Instr.reg
val dealloc : t -> Instr.operand -> unit
val realloc : t -> addr:Instr.operand -> size:Instr.operand -> Instr.reg
val call : t -> ?ret:bool -> string -> Instr.operand list -> Instr.reg option
val call_indirect : t -> ?ret:bool -> Instr.operand -> Instr.operand list -> Instr.reg option
val func_addr : t -> string -> Instr.reg
val call_host : t -> ?ret:bool -> string -> Instr.operand list -> Instr.reg option

(* Terminators. *)

val ret : t -> Instr.operand option -> unit
val br : t -> int -> unit
val cond_br : t -> Instr.operand -> int -> int -> unit

val finish : t -> Func.t
(** @raise Invalid_argument if any block lacks a terminator. *)
