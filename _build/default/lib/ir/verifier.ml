let ( let* ) r f =
  match r with
  | Ok v -> f v
  | Error _ as e -> e

let err fmt = Format.kasprintf (fun msg -> Error msg) fmt

module Reg_set = Set.Make (Int)

let check_instr m ~hosts (f : Func.t) (instr : Instr.t) =
  let check_reg r =
    if r < 0 || r >= f.Func.frame_size then
      err "%s: register %%r%d out of frame (size %d)" f.Func.name r f.Func.frame_size
    else Ok ()
  in
  let check_operand = function
    | Instr.Imm _ -> Ok ()
    | Instr.Reg r -> check_reg r
  in
  let check_width w =
    match w with
    | 1 | 2 | 4 | 8 -> Ok ()
    | _ -> err "%s: invalid access width %d" f.Func.name w
  in
  let check_callee name args =
    match Module_ir.find_func m name with
    | None -> err "%s: call to unknown function %s" f.Func.name name
    | Some callee ->
      if List.length args <> List.length callee.Func.params then
        err "%s: call to %s with %d args, expected %d" f.Func.name name (List.length args)
          (List.length callee.Func.params)
      else Ok ()
  in
  let* () =
    match Instr.defined_reg instr with
    | Some r -> check_reg r
    | None -> Ok ()
  in
  let* () =
    List.fold_left
      (fun acc op ->
        let* () = acc in
        check_operand op)
      (Ok ()) (Instr.used_operands instr)
  in
  match instr with
  | Instr.Load { width; _ } | Instr.Store { width; _ } -> check_width width
  | Instr.Call { callee; args; _ } -> check_callee callee args
  | Instr.Func_addr (_, name) ->
    if Module_ir.find_func m name = None then
      err "%s: func_addr of unknown function %s" f.Func.name name
    else Ok ()
  | Instr.Call_host { host; _ } ->
    if hosts host then Ok () else err "%s: unknown host function %s" f.Func.name host
  | Instr.Gate _ ->
    if f.Func.is_wrapper then Ok ()
    else err "%s: gate instruction outside a generated wrapper" f.Func.name
  | Instr.Const _ | Instr.Binop _ | Instr.Alloc _ | Instr.Alloca _ | Instr.Dealloc _
  | Instr.Realloc _ | Instr.Call_indirect _ ->
    Ok ()

let check_terminator (f : Func.t) (term : Instr.terminator) =
  let nblocks = Array.length f.Func.blocks in
  let check_target b =
    if b < 0 || b >= nblocks then err "%s: branch to missing block %d" f.Func.name b else Ok ()
  in
  match term with
  | Instr.Ret _ -> Ok ()
  | Instr.Br b -> check_target b
  | Instr.Cond_br (_, a, b) ->
    let* () = check_target a in
    check_target b

(* Forward dataflow: a register may be used only if it is defined on every
   path from entry. *)
let check_definite_assignment (f : Func.t) =
  let nblocks = Array.length f.Func.blocks in
  let all_regs = Reg_set.of_list (List.init f.Func.frame_size Fun.id) in
  let entry_in = Reg_set.of_list f.Func.params in
  let in_sets = Array.make nblocks all_regs in
  in_sets.(0) <- entry_in;
  let preds = Array.make nblocks [] in
  Array.iteri
    (fun i b ->
      match b.Func.term with
      | Instr.Br t -> preds.(t) <- i :: preds.(t)
      | Instr.Cond_br (_, a, bb) ->
        preds.(a) <- i :: preds.(a);
        preds.(bb) <- i :: preds.(bb)
      | Instr.Ret _ -> ())
    f.Func.blocks;
  let out_of block in_set =
    List.fold_left
      (fun acc instr ->
        match Instr.defined_reg instr with
        | Some r -> Reg_set.add r acc
        | None -> acc)
      in_set block.Func.instrs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i b ->
        ignore b;
        if i > 0 then begin
          let new_in =
            match preds.(i) with
            | [] -> entry_in (* unreachable block: treat like entry, stricter *)
            | ps ->
              List.fold_left
                (fun acc p -> Reg_set.inter acc (out_of f.Func.blocks.(p) in_sets.(p)))
                all_regs ps
          in
          if not (Reg_set.equal new_in in_sets.(i)) then begin
            in_sets.(i) <- new_in;
            changed := true
          end
        end)
      f.Func.blocks
  done;
  let check_block i block =
    let use_check defined op =
      match op with
      | Instr.Imm _ -> Ok ()
      | Instr.Reg r ->
        if Reg_set.mem r defined then Ok ()
        else err "%s: block %d uses %%r%d before definition" f.Func.name i r
    in
    let* defined =
      List.fold_left
        (fun acc instr ->
          let* defined = acc in
          let* () =
            List.fold_left
              (fun acc op ->
                let* () = acc in
                use_check defined op)
              (Ok ()) (Instr.used_operands instr)
          in
          match Instr.defined_reg instr with
          | Some r -> Ok (Reg_set.add r defined)
          | None -> Ok defined)
        (Ok in_sets.(i)) block.Func.instrs
    in
    match block.Func.term with
    | Instr.Ret (Some v) | Instr.Cond_br (v, _, _) -> use_check defined v
    | Instr.Ret None | Instr.Br _ -> Ok ()
  in
  let rec loop i =
    if i >= nblocks then Ok ()
    else
      let* () = check_block i f.Func.blocks.(i) in
      loop (i + 1)
  in
  loop 0

let verify_func m ~hosts (f : Func.t) =
  let* () =
    if Array.length f.Func.blocks = 0 then err "%s: no blocks" f.Func.name else Ok ()
  in
  let* () =
    Array.to_list f.Func.blocks
    |> List.fold_left
         (fun acc (b : Func.block) ->
           let* () = acc in
           let* () =
             List.fold_left
               (fun acc i ->
                 let* () = acc in
                 check_instr m ~hosts f i)
               (Ok ()) b.Func.instrs
           in
           check_terminator f b.Func.term)
         (Ok ())
  in
  check_definite_assignment f

let verify ?(hosts = fun _ -> false) m =
  Module_ir.fold_funcs m
    (fun acc f ->
      let* () = acc in
      verify_func m ~hosts f)
    (Ok ())
