lib/ir/verifier.mli: Func Module_ir
