lib/ir/str_split.ml: List String
