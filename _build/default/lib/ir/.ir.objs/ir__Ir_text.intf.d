lib/ir/ir_text.mli: Module_ir
