lib/ir/verifier.ml: Array Format Fun Func Instr Int List Module_ir Set
