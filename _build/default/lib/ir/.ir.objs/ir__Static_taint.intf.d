lib/ir/static_taint.mli: Module_ir Runtime
