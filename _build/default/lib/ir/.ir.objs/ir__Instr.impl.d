lib/ir/instr.ml: Format Runtime
