lib/ir/builder.mli: Func Instr
