lib/ir/module_ir.ml: Array Format Func Hashtbl List Printf
