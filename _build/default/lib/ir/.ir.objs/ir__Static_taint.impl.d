lib/ir/static_taint.ml: Array Func Hashtbl Instr List Module_ir Runtime
