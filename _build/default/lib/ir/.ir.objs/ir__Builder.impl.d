lib/ir/builder.ml: Array Fun Func Instr Int List Printf Runtime
