lib/ir/passes.ml: Array Fun Func Instr List Module_ir Runtime Verifier
