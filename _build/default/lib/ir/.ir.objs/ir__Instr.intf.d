lib/ir/instr.mli: Format Runtime
