lib/ir/module_ir.mli: Format Func
