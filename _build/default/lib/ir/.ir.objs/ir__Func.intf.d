lib/ir/func.mli: Format Instr
