lib/ir/ir_text.ml: Array Format Func Instr Int List Module_ir Option Printexc Printf Runtime Str_split String
