lib/ir/func.ml: Array Format Instr List Printf
