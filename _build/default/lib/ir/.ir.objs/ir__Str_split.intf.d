lib/ir/str_split.mli:
