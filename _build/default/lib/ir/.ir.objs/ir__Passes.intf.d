lib/ir/passes.mli: Module_ir Runtime
