(** String splitting on multi-character separators (stdlib only splits on
    single characters). *)

val split_on_substring : sub:string -> string -> string list
(** [split_on_substring ~sub s] splits [s] at every occurrence of [sub].
    [sub] must be non-empty. *)
