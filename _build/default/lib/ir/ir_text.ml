exception Syntax_error of string

let () =
  Printexc.register_printer (function
    | Syntax_error msg -> Some ("Ir_text.Syntax_error: " ^ msg)
    | _ -> None)

let to_string m = Format.asprintf "%a" Module_ir.pp m

(* --- Parsing --- *)

type cursor = {
  mutable lineno : int;
  text : string;
}

let fail cur fmt =
  Format.kasprintf (fun msg -> raise (Syntax_error (Printf.sprintf "line %d: %s" cur.lineno msg))) fmt

(* Tiny string scanners over one line. *)

let strip s = String.trim s

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let after prefix s = String.sub s (String.length prefix) (String.length s - String.length prefix)

let split_comment line =
  match String.index_opt line ';' with
  | Some i -> (strip (String.sub line 0 i), Some (strip (String.sub line (i + 1) (String.length line - i - 1))))
  | None -> (strip line, None)

let parse_reg cur token =
  let token = strip token in
  if starts_with "%r" token then
    match int_of_string_opt (after "%r" token) with
    | Some r -> r
    | None -> fail cur "bad register %S" token
  else fail cur "expected a register, got %S" token

let parse_operand cur token =
  let token = strip token in
  if starts_with "%r" token then Instr.Reg (parse_reg cur token)
  else
    match int_of_string_opt token with
    | Some v -> Instr.Imm v
    | None -> fail cur "expected an operand, got %S" token

let split_args cur text =
  let text = strip text in
  if not (starts_with "(" text) || not (String.length text > 1 && text.[String.length text - 1] = ')')
  then fail cur "expected an argument list, got %S" text
  else begin
    let inner = strip (String.sub text 1 (String.length text - 2)) in
    if inner = "" then [] else List.map strip (String.split_on_char ',' inner)
  end

let binop_of_string = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "div" -> Some Instr.Div
  | "rem" -> Some Instr.Rem
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl
  | "shr" -> Some Instr.Shr
  | "eq" -> Some Instr.Eq
  | "ne" -> Some Instr.Ne
  | "lt" -> Some Instr.Lt
  | "le" -> Some Instr.Le
  | "gt" -> Some Instr.Gt
  | "ge" -> Some Instr.Ge
  | _ -> None

let parse_site cur comment =
  (* "alloc<f:b:c>" possibly followed by "[instrumented]" *)
  match comment with
  | None -> fail cur "allocation without its AllocId comment"
  | Some comment ->
    let instrumented =
      String.length comment >= 14 && String.sub comment (String.length comment - 14) 14 = "[instrumented]"
    in
    let comment = strip (if instrumented then String.sub comment 0 (String.length comment - 14) else comment) in
    if not (starts_with "alloc<" comment && comment.[String.length comment - 1] = '>') then
      fail cur "malformed AllocId comment %S" comment
    else begin
      let inner = String.sub comment 6 (String.length comment - 7) in
      match List.map int_of_string_opt (String.split_on_char ':' inner) with
      | [ Some func_id; Some block_id; Some call_id ] ->
        (Runtime.Alloc_id.make ~func_id ~block_id ~call_id, instrumented)
      | _ -> fail cur "malformed AllocId %S" inner
    end

let parse_callee cur token =
  let token = strip token in
  match String.index_opt token '(' with
  | None -> fail cur "expected a call, got %S" token
  | Some i ->
    let name = strip (String.sub token 0 i) in
    let args = String.sub token i (String.length token - i) in
    if starts_with "@" name then (after "@" name, split_args cur args)
    else fail cur "expected @function, got %S" name

(* Parse the right-hand side of "%rN = <rhs>". *)
let parse_rhs cur dst rhs comment =
  let rhs = strip rhs in
  if starts_with "const " rhs then
    match int_of_string_opt (strip (after "const " rhs)) with
    | Some v -> Instr.Const (dst, v)
    | None -> fail cur "bad const %S" rhs
  else if starts_with "load." rhs then begin
    match String.index_opt rhs ' ' with
    | None -> fail cur "bad load %S" rhs
    | Some i ->
      let width =
        match int_of_string_opt (String.sub rhs 5 (i - 5)) with
        | Some w -> w
        | None -> fail cur "bad load width in %S" rhs
      in
      let addr_text = strip (String.sub rhs i (String.length rhs - i)) in
      if starts_with "[" addr_text && addr_text.[String.length addr_text - 1] = ']' then
        Instr.Load
          { dst; addr = parse_operand cur (String.sub addr_text 1 (String.length addr_text - 2)); width }
      else fail cur "bad load address %S" addr_text
  end
  else if starts_with "__rust_alloc" rhs || starts_with "__rust_untrusted_alloc" rhs then begin
    let pool, rest =
      if starts_with "__rust_untrusted_alloc" rhs then
        (Instr.Untrusted_pool, after "__rust_untrusted_alloc" rhs)
      else (Instr.Trusted_pool, after "__rust_alloc" rhs)
    in
    match split_args cur rest with
    | [ size ] ->
      let site, instrumented = parse_site cur comment in
      Instr.Alloc { dst; size = parse_operand cur size; site; pool; instrumented }
    | _ -> fail cur "allocator call takes one size argument"
  end
  else if starts_with "alloca" rhs then begin
    let shared, rest =
      if starts_with "alloca_shared" rhs then (true, after "alloca_shared" rhs)
      else (false, after "alloca" rhs)
    in
    match split_args cur rest with
    | [ size ] ->
      let site, instrumented = parse_site cur comment in
      Instr.Alloca { dst; size = parse_operand cur size; site; shared; instrumented }
    | _ -> fail cur "alloca takes one size argument"
  end
  else if starts_with "__rust_realloc" rhs then begin
    match split_args cur (after "__rust_realloc" rhs) with
    | [ addr; size ] ->
      Instr.Realloc { dst; addr = parse_operand cur addr; size = parse_operand cur size }
    | _ -> fail cur "__rust_realloc takes (addr, size)"
  end
  else if starts_with "call_indirect " rhs then begin
    let rest = strip (after "call_indirect " rhs) in
    match String.index_opt rest '(' with
    | None -> fail cur "bad call_indirect %S" rest
    | Some i ->
      let target = parse_operand cur (String.sub rest 0 i) in
      let args = split_args cur (String.sub rest i (String.length rest - i)) in
      Instr.Call_indirect { dst = Some dst; target; args = List.map (parse_operand cur) args }
  end
  else if starts_with "call_host " rhs then begin
    let host, args = parse_callee cur (after "call_host " rhs) in
    Instr.Call_host { dst = Some dst; host; args = List.map (parse_operand cur) args }
  end
  else if starts_with "call " rhs then begin
    let callee, args = parse_callee cur (after "call " rhs) in
    Instr.Call { dst = Some dst; callee; args = List.map (parse_operand cur) args }
  end
  else if starts_with "func_addr " rhs then begin
    let name = strip (after "func_addr " rhs) in
    if starts_with "@" name then Instr.Func_addr (dst, after "@" name)
    else fail cur "bad func_addr %S" name
  end
  else begin
    (* Binop: "<op> <a>, <b>". *)
    match String.index_opt rhs ' ' with
    | None -> fail cur "unrecognized instruction %S" rhs
    | Some i ->
      let op_text = String.sub rhs 0 i in
      (match binop_of_string op_text with
      | None -> fail cur "unrecognized instruction %S" rhs
      | Some op ->
        (match String.split_on_char ',' (String.sub rhs i (String.length rhs - i)) with
        | [ a; b ] -> Instr.Binop (op, dst, parse_operand cur a, parse_operand cur b)
        | _ -> fail cur "binop takes two operands in %S" rhs))
  end

let parse_instr cur line comment =
  if starts_with "store." line then begin
    (* store.W <src> -> [<addr>] *)
    match String.index_opt line ' ' with
    | None -> fail cur "bad store %S" line
    | Some i ->
      let width =
        match int_of_string_opt (String.sub line 6 (i - 6)) with
        | Some w -> w
        | None -> fail cur "bad store width %S" line
      in
      (match Str_split.split_on_substring ~sub:" -> " (String.sub line i (String.length line - i)) with
      | [ src; addr_text ] ->
        let addr_text = strip addr_text in
        if starts_with "[" addr_text && addr_text.[String.length addr_text - 1] = ']' then
          Instr.Store
            {
              src = parse_operand cur src;
              addr = parse_operand cur (String.sub addr_text 1 (String.length addr_text - 2));
              width;
            }
        else fail cur "bad store address %S" addr_text
      | _ -> fail cur "bad store %S" line)
  end
  else if starts_with "__rust_dealloc" line then begin
    match split_args cur (after "__rust_dealloc" line) with
    | [ addr ] -> Instr.Dealloc (parse_operand cur addr)
    | _ -> fail cur "__rust_dealloc takes one argument"
  end
  else if starts_with "gate." line then begin
    match strip (after "gate." line) with
    | "enter_untrusted" -> Instr.Gate Instr.Enter_untrusted
    | "exit_untrusted" -> Instr.Gate Instr.Exit_untrusted
    | "enter_trusted" -> Instr.Gate Instr.Enter_trusted
    | "exit_trusted" -> Instr.Gate Instr.Exit_trusted
    | other -> fail cur "unknown gate %S" other
  end
  else if starts_with "call_indirect " line then begin
    let rest = strip (after "call_indirect " line) in
    match String.index_opt rest '(' with
    | None -> fail cur "bad call_indirect %S" rest
    | Some i ->
      Instr.Call_indirect
        {
          dst = None;
          target = parse_operand cur (String.sub rest 0 i);
          args =
            List.map (parse_operand cur) (split_args cur (String.sub rest i (String.length rest - i)));
        }
  end
  else if starts_with "call_host " line then begin
    let host, args = parse_callee cur (after "call_host " line) in
    Instr.Call_host { dst = None; host; args = List.map (parse_operand cur) args }
  end
  else if starts_with "call " line then begin
    let callee, args = parse_callee cur (after "call " line) in
    Instr.Call { dst = None; callee; args = List.map (parse_operand cur) args }
  end
  else begin
    (* "%rN = <rhs>" *)
    match Str_split.split_on_substring ~sub:" = " line with
    | [ dst; rhs ] -> parse_rhs cur (parse_reg cur dst) rhs comment
    | _ -> fail cur "unrecognized instruction %S" line
  end

let parse_terminator cur line =
  if line = "ret" then Some (Instr.Ret None)
  else if starts_with "ret " line then Some (Instr.Ret (Some (parse_operand cur (after "ret " line))))
  else if starts_with "br ^" line then
    match int_of_string_opt (strip (after "br ^" line)) with
    | Some b -> Some (Instr.Br b)
    | None -> fail cur "bad branch target %S" line
  else if starts_with "cond_br " line then begin
    match String.split_on_char ',' (after "cond_br " line) with
    | [ c; a; b ] ->
      let block token =
        let token = strip token in
        if starts_with "^" token then
          match int_of_string_opt (after "^" token) with
          | Some v -> v
          | None -> fail cur "bad block ref %S" token
        else fail cur "bad block ref %S" token
      in
      Some (Instr.Cond_br (parse_operand cur c, block a, block b))
    | _ -> fail cur "cond_br takes condition and two targets"
  end
  else None

type fn_header = {
  h_name : string;
  h_params : Instr.reg list;
  h_crate : string;
  h_exported : bool;
  h_address_taken : bool;
  h_wrapper : bool;
}

let parse_fn_header cur line comment =
  (* "func @name(%r0, %r1)" with comment "crate=app exported ..." *)
  let rest = strip (after "func @" line) in
  match String.index_opt rest '(' with
  | None -> fail cur "bad function header %S" line
  | Some i ->
    let h_name = strip (String.sub rest 0 i) in
    let params_text = String.sub rest i (String.length rest - i) in
    let h_params = List.map (parse_reg cur) (split_args cur params_text) in
    (match comment with
    | None -> fail cur "function header missing its crate comment"
    | Some comment ->
      let words = String.split_on_char ' ' comment |> List.filter (fun w -> w <> "") in
      let crate =
        match List.find_opt (starts_with "crate=") words with
        | Some w -> after "crate=" w
        | None -> fail cur "function header missing crate="
      in
      {
        h_name;
        h_params;
        h_crate = crate;
        h_exported = List.mem "exported" words;
        h_address_taken = List.mem "address-taken" words;
        h_wrapper = List.mem "wrapper" words;
      })

let of_string text =
  let cur = { lineno = 0; text } in
  let lines = String.split_on_char '\n' text in
  let m = Module_ir.create () in
  (* Mutable parse state for the function under construction. *)
  let header : fn_header option ref = ref None in
  let blocks : Func.block list ref = ref [] in
  let current_instrs : Instr.t list ref = ref [] in
  let current_block : int option ref = ref None in
  let finish_block term =
    match !current_block with
    | None -> fail cur "terminator outside a block"
    | Some block_id ->
      blocks := { Func.block_id; instrs = List.rev !current_instrs; term } :: !blocks;
      current_instrs := [];
      current_block := None
  in
  let finish_function () =
    match !header with
    | None -> ()
    | Some h ->
      if !current_block <> None then fail cur "block %d lacks a terminator" (Option.get !current_block);
      let sorted =
        List.sort (fun a b -> Int.compare a.Func.block_id b.Func.block_id) (List.rev !blocks)
      in
      if sorted = [] then fail cur "function @%s has no blocks" h.h_name;
      let f =
        Func.create ~name:h.h_name ~crate:h.h_crate ~params:h.h_params ~exported:h.h_exported
          (Array.of_list sorted)
      in
      f.Func.address_taken <- h.h_address_taken;
      f.Func.is_wrapper <- h.h_wrapper;
      Module_ir.add_func m f;
      header := None;
      blocks := []
  in
  List.iter
    (fun raw ->
      cur.lineno <- cur.lineno + 1;
      let body, comment = split_comment raw in
      if body = "" then ()
      else if starts_with "crate " body then begin
        finish_function ();
        let rest = strip (after "crate " body) in
        let untrusted =
          String.length rest >= 11
          && String.sub rest (String.length rest - 11) 11 = "[untrusted]"
        in
        let name =
          strip (if untrusted then String.sub rest 0 (String.length rest - 11) else rest)
        in
        Module_ir.declare_crate m name;
        if untrusted then Module_ir.mark_untrusted m name
      end
      else if starts_with "func @" body then begin
        finish_function ();
        header := Some (parse_fn_header cur body comment)
      end
      else if starts_with "^" body then begin
        if !current_block <> None then fail cur "previous block not terminated";
        match String.index_opt body ':' with
        | None -> fail cur "bad block label %S" body
        | Some i ->
          (match int_of_string_opt (String.sub body 1 (i - 1)) with
          | Some id -> current_block := Some id
          | None -> fail cur "bad block label %S" body)
      end
      else begin
        if !header = None then fail cur "instruction outside a function: %S" body;
        match parse_terminator cur body with
        | Some term -> finish_block term
        | None ->
          if !current_block = None then fail cur "instruction outside a block: %S" body;
          current_instrs := parse_instr cur body comment :: !current_instrs
      end)
    lines;
  finish_function ();
  ignore cur.text;
  m
