type building_block = {
  id : int;
  mutable rev_instrs : Instr.t list;
  mutable term : Instr.terminator option;
}

type t = {
  name : string;
  crate : string;
  exported : bool;
  nparams : int;
  mutable next_reg : int;
  mutable blocks : building_block list; (* reverse order *)
  mutable current : building_block;
}

let create ~name ~crate ~nparams ?(exported = false) () =
  let entry = { id = 0; rev_instrs = []; term = None } in
  { name; crate; exported; nparams; next_reg = nparams; blocks = [ entry ]; current = entry }

let params t = List.init t.nparams Fun.id

let fresh t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let new_block t =
  let id = List.length t.blocks in
  t.blocks <- { id; rev_instrs = []; term = None } :: t.blocks;
  id

let switch_to t id =
  match List.find_opt (fun b -> b.id = id) t.blocks with
  | Some b -> t.current <- b
  | None -> invalid_arg (Printf.sprintf "Builder.switch_to: no block %d" id)

let emit t i =
  if t.current.term <> None then
    invalid_arg (Printf.sprintf "Builder: emitting into terminated block %d" t.current.id);
  t.current.rev_instrs <- i :: t.current.rev_instrs

let const t v =
  let r = fresh t in
  emit t (Instr.Const (r, v));
  r

let binop t op a b =
  let r = fresh t in
  emit t (Instr.Binop (op, r, a, b));
  r

let load t ?(width = 8) addr =
  let dst = fresh t in
  emit t (Instr.Load { dst; addr; width });
  dst

let store t ?(width = 8) ~src ~addr () = emit t (Instr.Store { src; addr; width })

(* Fresh Alloc instructions carry a placeholder site; the AllocId pass
   assigns the real one. *)
let alloc t size =
  let dst = fresh t in
  emit t
    (Instr.Alloc
       {
         dst;
         size;
         site = Runtime.Alloc_id.make ~func_id:(-2) ~block_id:(-2) ~call_id:(-2);
         pool = Instr.Trusted_pool;
         instrumented = false;
       });
  dst

let alloca t size =
  let dst = fresh t in
  emit t
    (Instr.Alloca
       {
         dst;
         size;
         site = Runtime.Alloc_id.make ~func_id:(-2) ~block_id:(-2) ~call_id:(-2);
         shared = false;
         instrumented = false;
       });
  dst

let dealloc t addr = emit t (Instr.Dealloc addr)

let realloc t ~addr ~size =
  let dst = fresh t in
  emit t (Instr.Realloc { dst; addr; size });
  dst

let with_ret t ret make =
  let dst = if ret then Some (fresh t) else None in
  emit t (make dst);
  dst

let call t ?(ret = false) callee args =
  with_ret t ret (fun dst -> Instr.Call { dst; callee; args })

let call_indirect t ?(ret = false) target args =
  with_ret t ret (fun dst -> Instr.Call_indirect { dst; target; args })

let func_addr t name =
  let r = fresh t in
  emit t (Instr.Func_addr (r, name));
  r

let call_host t ?(ret = false) host args =
  with_ret t ret (fun dst -> Instr.Call_host { dst; host; args })

let terminate t term =
  if t.current.term <> None then
    invalid_arg (Printf.sprintf "Builder: block %d already terminated" t.current.id);
  t.current.term <- Some term

let ret t v = terminate t (Instr.Ret v)
let br t b = terminate t (Instr.Br b)
let cond_br t c a b = terminate t (Instr.Cond_br (c, a, b))

let finish t =
  let blocks =
    List.sort (fun a b -> Int.compare a.id b.id) t.blocks
    |> List.map (fun b ->
           match b.term with
           | None -> invalid_arg (Printf.sprintf "Builder.finish: block %d unterminated" b.id)
           | Some term ->
             { Func.block_id = b.id; instrs = List.rev b.rev_instrs; term })
    |> Array.of_list
  in
  Func.create ~name:t.name ~crate:t.crate ~params:(params t) ~exported:t.exported blocks
