type reg = int

type operand =
  | Imm of int
  | Reg of reg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type pool =
  | Trusted_pool
  | Untrusted_pool

type gate_op =
  | Enter_untrusted
  | Exit_untrusted
  | Enter_trusted
  | Exit_trusted

type t =
  | Const of reg * int
  | Binop of binop * reg * operand * operand
  | Load of {
      dst : reg;
      addr : operand;
      width : int;
    }
  | Store of {
      src : operand;
      addr : operand;
      width : int;
    }
  | Alloc of {
      dst : reg;
      size : operand;
      mutable site : Runtime.Alloc_id.t;
      mutable pool : pool;
      mutable instrumented : bool;
    }
  | Alloca of {
      dst : reg;
      size : operand;
      mutable site : Runtime.Alloc_id.t;
      mutable shared : bool;
      mutable instrumented : bool;
    }
  | Dealloc of operand
  | Realloc of {
      dst : reg;
      addr : operand;
      size : operand;
    }
  | Call of {
      dst : reg option;
      mutable callee : string;
      args : operand list;
    }
  | Call_indirect of {
      dst : reg option;
      target : operand;
      args : operand list;
    }
  | Func_addr of reg * string
  | Call_host of {
      dst : reg option;
      host : string;
      args : operand list;
    }
  | Gate of gate_op

type terminator =
  | Ret of operand option
  | Br of int
  | Cond_br of operand * int * int

let pp_operand fmt = function
  | Imm i -> Format.fprintf fmt "%d" i
  | Reg r -> Format.fprintf fmt "%%r%d" r

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let gate_op_to_string = function
  | Enter_untrusted -> "enter_untrusted"
  | Exit_untrusted -> "exit_untrusted"
  | Enter_trusted -> "enter_trusted"
  | Exit_trusted -> "exit_trusted"

let pp_args fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_operand fmt args

let pp_dst fmt = function
  | Some r -> Format.fprintf fmt "%%r%d = " r
  | None -> ()

let pp fmt = function
  | Const (r, v) -> Format.fprintf fmt "%%r%d = const %d" r v
  | Binop (op, r, a, b) ->
    Format.fprintf fmt "%%r%d = %s %a, %a" r (binop_to_string op) pp_operand a pp_operand b
  | Load { dst; addr; width } ->
    Format.fprintf fmt "%%r%d = load.%d [%a]" dst width pp_operand addr
  | Store { src; addr; width } ->
    Format.fprintf fmt "store.%d %a -> [%a]" width pp_operand src pp_operand addr
  | Alloc { dst; size; site; pool; instrumented } ->
    Format.fprintf fmt "%%r%d = %s(%a) ; %a%s" dst
      (match pool with
      | Trusted_pool -> "__rust_alloc"
      | Untrusted_pool -> "__rust_untrusted_alloc")
      pp_operand size Runtime.Alloc_id.pp site
      (if instrumented then " [instrumented]" else "")
  | Alloca { dst; size; site; shared; instrumented } ->
    Format.fprintf fmt "%%r%d = %s(%a) ; %a%s" dst
      (if shared then "alloca_shared" else "alloca")
      pp_operand size Runtime.Alloc_id.pp site
      (if instrumented then " [instrumented]" else "")
  | Dealloc addr -> Format.fprintf fmt "__rust_dealloc(%a)" pp_operand addr
  | Realloc { dst; addr; size } ->
    Format.fprintf fmt "%%r%d = __rust_realloc(%a, %a)" dst pp_operand addr pp_operand size
  | Call { dst; callee; args } ->
    Format.fprintf fmt "%acall @%s(%a)" pp_dst dst callee pp_args args
  | Call_indirect { dst; target; args } ->
    Format.fprintf fmt "%acall_indirect %a(%a)" pp_dst dst pp_operand target pp_args args
  | Func_addr (r, name) -> Format.fprintf fmt "%%r%d = func_addr @%s" r name
  | Call_host { dst; host; args } ->
    Format.fprintf fmt "%acall_host @%s(%a)" pp_dst dst host pp_args args
  | Gate op -> Format.fprintf fmt "gate.%s" (gate_op_to_string op)

let pp_terminator fmt = function
  | Ret None -> Format.pp_print_string fmt "ret"
  | Ret (Some v) -> Format.fprintf fmt "ret %a" pp_operand v
  | Br b -> Format.fprintf fmt "br ^%d" b
  | Cond_br (c, a, b) -> Format.fprintf fmt "cond_br %a, ^%d, ^%d" pp_operand c a b

let defined_reg = function
  | Const (r, _) | Binop (_, r, _, _) | Func_addr (r, _) -> Some r
  | Load { dst; _ } | Alloc { dst; _ } | Alloca { dst; _ } | Realloc { dst; _ } -> Some dst
  | Call { dst; _ } | Call_indirect { dst; _ } | Call_host { dst; _ } -> dst
  | Store _ | Dealloc _ | Gate _ -> None

let used_operands = function
  | Const _ | Func_addr _ | Gate _ -> []
  | Binop (_, _, a, b) -> [ a; b ]
  | Load { addr; _ } -> [ addr ]
  | Store { src; addr; _ } -> [ src; addr ]
  | Alloc { size; _ } | Alloca { size; _ } -> [ size ]
  | Dealloc addr -> [ addr ]
  | Realloc { addr; size; _ } -> [ addr; size ]
  | Call { args; _ } -> args
  | Call_indirect { target; args; _ } -> target :: args
  | Call_host { args; _ } -> args
