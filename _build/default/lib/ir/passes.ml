let assign_alloc_ids m =
  let count = ref 0 in
  let func_id = ref 0 in
  Module_ir.iter_funcs m (fun f ->
      Array.iter
        (fun (b : Func.block) ->
          let call_id = ref 0 in
          List.iter
            (fun instr ->
              match instr with
              | Instr.Alloc a ->
                a.site <-
                  Runtime.Alloc_id.make ~func_id:!func_id ~block_id:b.Func.block_id
                    ~call_id:!call_id;
                incr call_id;
                incr count
              | Instr.Alloca a ->
                a.site <-
                  Runtime.Alloc_id.make ~func_id:!func_id ~block_id:b.Func.block_id
                    ~call_id:!call_id;
                incr call_id;
                incr count
              | _ -> ())
            b.Func.instrs)
        f.Func.blocks;
      incr func_id);
  !count

(* Give every address-taken function its table slot before gate insertion,
   so the gate pass can see and retarget all captured addresses. *)
let resolve_func_addrs m =
  Module_ir.iter_funcs m (fun f ->
      Func.iter_instrs f (fun _ instr ->
          match instr with
          | Instr.Func_addr (_, name) -> ignore (Module_ir.func_index m name)
          | _ -> ()))

let lower_untrusted_allocs m =
  Module_ir.iter_funcs m (fun f ->
      if Module_ir.is_untrusted_fn m f then
        Func.iter_instrs f (fun _ instr ->
            match instr with
            | Instr.Alloc a -> a.pool <- Instr.Untrusted_pool
            (* U's own stack frames live in untrusted memory. *)
            | Instr.Alloca a -> a.shared <- true
            | _ -> ()))

let instrument_provenance m =
  let count = ref 0 in
  Module_ir.iter_funcs m (fun f ->
      if not (Module_ir.is_untrusted_fn m f) then
        Func.iter_instrs f (fun _ instr ->
            match instr with
            | Instr.Alloc a ->
              a.instrumented <- true;
              incr count
            | Instr.Alloca a ->
              a.instrumented <- true;
              incr count
            | _ -> ()))
  ;
  !count

(* --- Gate insertion --- *)

let gate_wrapper_name callee = "__pkru_gate$" ^ callee
let entry_wrapper_name callee = "__pkru_entry$" ^ callee
let gates_crate = "__pkru_gates"

(* A wrapper has one block: enter gate, forward the call, exit gate, return
   the callee's result. *)
let make_wrapper ~name ~enter ~exit ~callee (target : Func.t) =
  let nparams = List.length target.Func.params in
  let params = List.init nparams Fun.id in
  let result = nparams in
  let body =
    [
      Instr.Gate enter;
      Instr.Call { dst = Some result; callee; args = List.map (fun r -> Instr.Reg r) params };
      Instr.Gate exit;
    ]
  in
  let block = { Func.block_id = 0; instrs = body; term = Instr.Ret (Some (Instr.Reg result)) } in
  let f = Func.create ~name ~crate:gates_crate ~params [| block |] in
  f.Func.is_wrapper <- true;
  f

let insert_gates m =
  Module_ir.declare_crate m gates_crate;
  let wrappers = ref 0 in
  let ensure_wrapper ~name ~enter ~exit callee =
    match Module_ir.find_func m name with
    | Some _ -> ()
    | None ->
      let target = Module_ir.func m callee in
      Module_ir.add_func m (make_wrapper ~name ~enter ~exit ~callee target);
      incr wrappers
  in
  let ensure_gate_wrapper callee =
    ensure_wrapper ~name:(gate_wrapper_name callee) ~enter:Instr.Enter_untrusted
      ~exit:Instr.Exit_untrusted callee
  in
  let ensure_entry_wrapper callee =
    ensure_wrapper ~name:(entry_wrapper_name callee) ~enter:Instr.Enter_trusted
      ~exit:Instr.Exit_trusted callee
  in
  (* Rewrite direct cross-compartment calls.  Collect function names first:
     adding wrappers while iterating would invalidate the traversal. *)
  let originals = Module_ir.fold_funcs m (fun acc f -> f :: acc) [] in
  List.iter
    (fun (f : Func.t) ->
      let caller_untrusted = Module_ir.is_untrusted_fn m f in
      Func.iter_instrs f (fun _ instr ->
          match instr with
          | Instr.Call c ->
            (match Module_ir.find_func m c.callee with
            | None -> ()
            | Some callee ->
              let callee_untrusted = Module_ir.is_untrusted_fn m callee in
              if (not caller_untrusted) && callee_untrusted then begin
                ensure_gate_wrapper c.callee;
                c.callee <- gate_wrapper_name c.callee
              end
              else if caller_untrusted && not callee_untrusted then begin
                ensure_entry_wrapper c.callee;
                c.callee <- entry_wrapper_name c.callee
              end)
          | _ -> ()))
    originals;
  (* Retarget the indirect-call table: address-taken T functions go through
     entry wrappers ("we instrument all address-taken and externally
     visible APIs from T which may be called from U"), address-taken U
     functions through exit gates so T-held function pointers into U also
     transition. *)
  let rec retarget i =
    match Module_ir.func_table_entry m i with
    | None -> ()
    | Some name ->
      let target = Module_ir.func m name in
      if not target.Func.is_wrapper then begin
        if Module_ir.is_untrusted_fn m target then begin
          ensure_gate_wrapper name;
          Module_ir.retarget_entry m ~index:i (gate_wrapper_name name)
        end
        else begin
          ensure_entry_wrapper name;
          Module_ir.retarget_entry m ~index:i (entry_wrapper_name name)
        end
      end;
      retarget (i + 1)
  in
  retarget 0;
  (* Exported T functions get entry wrappers too, even if no direct U call
     is visible at compile time. *)
  List.iter
    (fun (f : Func.t) ->
      if f.Func.exported && not (Module_ir.is_untrusted_fn m f) && not f.Func.is_wrapper then
        ensure_entry_wrapper f.Func.name)
    originals;
  !wrappers

let apply_profile m ~in_profile =
  let moved = ref 0 in
  Module_ir.iter_funcs m (fun f ->
      if not (Module_ir.is_untrusted_fn m f) then
        Func.iter_instrs f (fun _ instr ->
            match instr with
            | Instr.Alloc a when in_profile a.site ->
              if a.pool = Instr.Trusted_pool then begin
                a.pool <- Instr.Untrusted_pool;
                incr moved
              end
            | Instr.Alloca a when in_profile a.site ->
              if not a.shared then begin
                a.shared <- true;
                incr moved
              end
            | _ -> ()));
  !moved

type stats = {
  alloc_sites : int;
  sites_instrumented : int;
  wrappers : int;
  sites_moved : int;
}

let compile ~gates ~instrument ?profile ~hosts m =
  let m = Module_ir.copy m in
  let alloc_sites = assign_alloc_ids m in
  resolve_func_addrs m;
  lower_untrusted_allocs m;
  let sites_instrumented = if instrument then instrument_provenance m else 0 in
  let wrappers = if gates then insert_gates m else 0 in
  let sites_moved =
    match profile with
    | Some in_profile -> apply_profile m ~in_profile
    | None -> 0
  in
  match Verifier.verify ~hosts m with
  | Error _ as e -> e
  | Ok () -> Ok (m, { alloc_sites; sites_instrumented; wrappers; sites_moved })
