type crate = {
  crate_name : string;
  mutable untrusted : bool;
}

type t = {
  crates_tbl : (string, crate) Hashtbl.t;
  funcs : (string, Func.t) Hashtbl.t;
  mutable order : string list; (* function insertion order, for printing *)
  mutable table : string array; (* indirect-call table *)
  index_of : (string, int) Hashtbl.t;
}

let create () =
  {
    crates_tbl = Hashtbl.create 16;
    funcs = Hashtbl.create 64;
    order = [];
    table = [||];
    index_of = Hashtbl.create 16;
  }

let declare_crate t name =
  if not (Hashtbl.mem t.crates_tbl name) then
    Hashtbl.replace t.crates_tbl name { crate_name = name; untrusted = false }

let crates t = Hashtbl.fold (fun _ c acc -> c :: acc) t.crates_tbl []

let crate t name = Hashtbl.find t.crates_tbl name

let mark_untrusted t name = (crate t name).untrusted <- true

let is_untrusted_fn t (f : Func.t) =
  match Hashtbl.find_opt t.crates_tbl f.Func.crate with
  | Some c -> c.untrusted
  | None -> false

let add_func t (f : Func.t) =
  if Hashtbl.mem t.funcs f.Func.name then
    invalid_arg (Printf.sprintf "Module_ir.add_func: duplicate %s" f.Func.name);
  declare_crate t f.Func.crate;
  Hashtbl.replace t.funcs f.Func.name f;
  t.order <- f.Func.name :: t.order

let find_func t name = Hashtbl.find_opt t.funcs name

let func t name =
  match find_func t name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Module_ir.func: unknown function %s" name)

let iter_funcs t f = List.iter (fun name -> f (Hashtbl.find t.funcs name)) (List.rev t.order)

let fold_funcs t f init =
  List.fold_left (fun acc name -> f acc (Hashtbl.find t.funcs name)) init (List.rev t.order)

let func_index t name =
  match Hashtbl.find_opt t.index_of name with
  | Some i -> i
  | None ->
    let f = func t name in
    f.Func.address_taken <- true;
    let i = Array.length t.table in
    t.table <- Array.append t.table [| name |];
    Hashtbl.replace t.index_of name i;
    i

let func_table_entry t i = if i >= 0 && i < Array.length t.table then Some t.table.(i) else None

let find_index t name = Hashtbl.find_opt t.index_of name

let retarget_entry t ~index name =
  if index < 0 || index >= Array.length t.table then
    invalid_arg "Module_ir.retarget_entry: bad index";
  t.table.(index) <- name

let copy t =
  let fresh = create () in
  Hashtbl.iter
    (fun name c ->
      Hashtbl.replace fresh.crates_tbl name { crate_name = c.crate_name; untrusted = c.untrusted })
    t.crates_tbl;
  List.iter
    (fun name -> Hashtbl.replace fresh.funcs name (Func.copy (Hashtbl.find t.funcs name)))
    t.order;
  fresh.order <- t.order;
  fresh.table <- Array.copy t.table;
  Hashtbl.iter (fun k v -> Hashtbl.replace fresh.index_of k v) t.index_of;
  fresh

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun c ->
      Format.fprintf fmt "crate %s%s@," c.crate_name (if c.untrusted then " [untrusted]" else ""))
    (List.sort compare (crates t));
  iter_funcs t (fun f -> Format.fprintf fmt "%a@," Func.pp f);
  Format.fprintf fmt "@]"
