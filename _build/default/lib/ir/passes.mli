(** The PKRU-Safe compiler passes (paper §4.1 / §4.3.1).

    Each pass mutates a module in place; {!compile} copies the source
    module first, so one source can be built into several configurations,
    just as the evaluation builds base / alloc / profiling / mpk images of
    the same program. *)

val assign_alloc_ids : Module_ir.t -> int
(** Gives every allocator call site its unique AllocId — the (function,
    block, call-site) triple.  Returns the number of sites assigned
    (Servo has 12088 of these, §5.3). *)

val lower_untrusted_allocs : Module_ir.t -> unit
(** Allocations made {e by} untrusted code are U's own malloc and always
    come from MU, in every configuration. *)

val instrument_provenance : Module_ir.t -> int
(** Marks every trusted allocation site for runtime provenance tracking
    (the inserted [log_alloc] callbacks of Fig. 2).  Returns the number of
    sites instrumented. *)

val insert_gates : Module_ir.t -> int
(** Wraps the compartment boundary:
    {ul
    {- every direct T→U call is rewritten to a generated wrapper that
       drops MT access around the callee;}
    {- every exported or address-taken T function gets an entry wrapper
       restoring MT access, and the indirect-call table is retargeted to
       it;}
    {- address-taken U functions get exit wrappers so function pointers
       flowing from U into T still transition correctly when invoked.}}
    Returns the number of wrappers created (the prototype "automatically
    creates hundreds of callgates"). *)

val apply_profile : Module_ir.t -> in_profile:(Runtime.Alloc_id.t -> bool) -> int
(** Retargets every trusted allocation site recorded by the profile to
    [__rust_untrusted_alloc].  Returns the number of sites moved (274 of
    Servo's 12088, §5.3). *)

type stats = {
  alloc_sites : int;
  sites_instrumented : int;
  wrappers : int;
  sites_moved : int;
}

val compile :
  gates:bool ->
  instrument:bool ->
  ?profile:(Runtime.Alloc_id.t -> bool) ->
  hosts:(string -> bool) ->
  Module_ir.t ->
  (Module_ir.t * stats, string) result
(** Copy + pass pipeline + verify.  [gates]/[instrument]/[profile] map to
    the build modes: base = neither, alloc = profile only, profiling =
    gates + instrument, mpk = gates + profile. *)
