(** Module well-formedness checks, run after construction and after every
    pass pipeline.

    Beyond structural checks (branch targets, register bounds, access
    widths, call arity), the verifier enforces two security-relevant
    rules: [Gate] instructions may only appear in pass-generated wrapper
    functions (application code cannot forge a compartment switch,
    mirroring the CFI assumption that stray WRPKRU sequences are not
    reachable), and every register is defined on all paths before use. *)

val verify_func : Module_ir.t -> hosts:(string -> bool) -> Func.t -> (unit, string) result

val verify : ?hosts:(string -> bool) -> Module_ir.t -> (unit, string) result
(** [hosts] says which host (embedder-provided) functions exist; defaults
    to accepting none. *)
