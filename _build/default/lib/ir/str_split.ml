let split_on_substring ~sub s =
  assert (String.length sub > 0);
  let sl = String.length sub in
  let n = String.length s in
  let rec matches_at i j = j >= sl || (s.[i + j] = sub.[j] && matches_at i (j + 1))
  in
  let rec scan start i acc =
    if i + sl > n then List.rev (String.sub s start (n - start) :: acc)
    else if matches_at i 0 then scan (i + sl) (i + sl) (String.sub s start (i - start) :: acc)
    else scan start (i + 1) acc
  in
  scan 0 0 []
