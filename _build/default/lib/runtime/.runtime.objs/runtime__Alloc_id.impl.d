lib/runtime/alloc_id.ml: Format Hashtbl Int Map Set Util
