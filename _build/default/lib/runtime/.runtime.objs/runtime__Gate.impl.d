lib/runtime/gate.ml: Comp_stack Compartment Fun Mpk Sim
