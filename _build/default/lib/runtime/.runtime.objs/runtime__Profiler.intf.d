lib/runtime/profiler.mli: Alloc_id Metadata Mpk Profile Sim
