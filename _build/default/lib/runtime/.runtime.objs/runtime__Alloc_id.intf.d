lib/runtime/alloc_id.mli: Format Map Set Util
