lib/runtime/compartment.ml: Format Mpk
