lib/runtime/metadata.ml: Alloc_id Int Map
