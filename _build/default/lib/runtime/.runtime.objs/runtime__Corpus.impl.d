lib/runtime/corpus.ml: Alloc_id Filename Fun In_channel List Printf Profile Sys Util
