lib/runtime/comp_stack.ml: Mpk
