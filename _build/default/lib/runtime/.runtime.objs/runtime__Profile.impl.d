lib/runtime/profile.ml: Alloc_id Fun In_channel List Util
