lib/runtime/corpus.mli: Alloc_id Profile Util
