lib/runtime/profile.mli: Alloc_id Util
