lib/runtime/profiler.ml: Hashtbl Metadata Mpk Profile Sim Vmm
