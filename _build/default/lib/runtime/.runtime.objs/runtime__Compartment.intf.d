lib/runtime/compartment.mli: Format Mpk
