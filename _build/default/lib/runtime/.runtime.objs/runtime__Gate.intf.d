lib/runtime/gate.mli: Comp_stack Compartment Mpk Sim
