lib/runtime/metadata.mli: Alloc_id
