lib/runtime/comp_stack.mli: Mpk
