(** Profiling corpora: collections of named profiling runs.

    §6 sketches how PKRU-Safe would deploy: "operating systems and
    applications often test and profile applications and collect telemetry
    and performance information using a subset of their installation base.
    In principle, PKRU-Safe could be deployed using similar approaches."
    This module is that machinery: runs from many inputs (or installations)
    are collected, merged into the deployment profile, persisted between
    toolchain stages, and analysed for coverage quality — which runs
    contribute sites, and which sites rest on only a few runs (the ones a
    thinner corpus would lose, crashing the enforcement build). *)

type t

val create : unit -> t

val add_run : t -> name:string -> Profile.t -> unit
(** Adds a named run. @raise Invalid_argument on a duplicate name. *)

val run_count : t -> int
val runs : t -> (string * Profile.t) list
(** In insertion order. *)

val merged : t -> Profile.t
(** The deployment profile: union of every run. *)

val coverage : t -> Alloc_id.t -> int
(** Number of runs that observed the site. *)

val fragile_sites : t -> max_runs:int -> Alloc_id.t list
(** Sites seen by at most [max_runs] runs — the profile's weak spots. *)

val marginal_gains : t -> (string * int) list
(** For each run in insertion order, how many sites it added that no
    earlier run had — a corpus-growth curve (flat tail = saturated
    corpus). *)

val sample : t -> fraction:float -> rng:Util.Rng.t -> t
(** Keeps each run with probability [fraction]: the telemetry model where
    only a subset of installations report. *)

val save_dir : t -> string -> unit
(** Writes one [<name>.profile.json] per run plus a [corpus.json] index.
    Creates the directory if needed. *)

val load_dir : string -> t
(** Inverse of {!save_dir}.
    @raise Sys_error / Invalid_argument on malformed input. *)
