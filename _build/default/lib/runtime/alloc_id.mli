(** Allocation-site identifiers.

    The compiler assigns every call to the global allocator a unique
    AllocId — "a tuple of the function ID, basic block ID, and the ID of
    the allocation call site, which allows us to later tie a specific
    AllocId to its origin location in the IR" (paper §4.3.1).  The
    profiler records AllocIds; the enforcement build rewrites exactly the
    recorded sites. *)

type t = {
  func_id : int;
  block_id : int;
  call_id : int;
}

val make : func_id:int -> block_id:int -> call_id:int -> t

val synthetic : int -> t
(** [synthetic n] is a site id for allocations made by hand-written host
    components (the browser substrate) rather than compiled IR; encoded as
    function [-1], block [0], call [n]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_json : t -> Util.Json.t
val of_json : Util.Json.t -> t
(** @raise Invalid_argument on a malformed value. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
