(** Profiles: the set of allocation sites observed flowing into the
    untrusted compartment.

    A profiling run produces one of these; the enforcement build consumes
    it, moving exactly the recorded sites from MT to MU.  Profiles
    serialise to JSON so they can be saved between the profile and
    enforcement builds (like the artifact's profile files), and merge so a
    corpus of runs can be combined. *)

type t

val create : unit -> t

val record : t -> Alloc_id.t -> unit
(** Adds a site; recording the same AllocId again only bumps its hit
    count ("this limits our profile to a set of unique faulting allocation
    sites"). *)

val mem : t -> Alloc_id.t -> bool
val cardinal : t -> int
val sites : t -> Alloc_id.t list
(** In increasing AllocId order. *)

val hit_count : t -> Alloc_id.t -> int
(** Number of faults recorded for a site (0 if absent). *)

val merge : t -> t -> t
(** Union of two profiling runs, summing hit counts. *)

val subset : t -> fraction:float -> rng:Util.Rng.t -> t
(** Keeps each site with probability [fraction] — models an incomplete
    profiling corpus for the profile-coverage ablation (§6). *)

val to_json : t -> Util.Json.t
val of_json : Util.Json.t -> t
(** @raise Invalid_argument on malformed input. *)

val save : t -> string -> unit
(** Writes pretty JSON to a file. *)

val load : string -> t
(** @raise Sys_error / Invalid_argument on failure. *)
