type t = { mutable entries : (string * Profile.t) list (* reversed *) }

let create () = { entries = [] }

let add_run t ~name profile =
  if List.mem_assoc name t.entries then
    invalid_arg (Printf.sprintf "Corpus.add_run: duplicate run %S" name);
  t.entries <- (name, profile) :: t.entries

let run_count t = List.length t.entries

let runs t = List.rev t.entries

let merged t =
  List.fold_left (fun acc (_, p) -> Profile.merge acc p) (Profile.create ()) t.entries

let coverage t site =
  List.fold_left (fun acc (_, p) -> if Profile.mem p site then acc + 1 else acc) 0 t.entries

let fragile_sites t ~max_runs =
  Profile.sites (merged t) |> List.filter (fun site -> coverage t site <= max_runs)

let marginal_gains t =
  let seen = ref Alloc_id.Set.empty in
  List.map
    (fun (name, profile) ->
      let sites = Alloc_id.Set.of_list (Profile.sites profile) in
      let fresh = Alloc_id.Set.diff sites !seen in
      seen := Alloc_id.Set.union !seen sites;
      (name, Alloc_id.Set.cardinal fresh))
    (runs t)

let sample t ~fraction ~rng =
  let sampled = create () in
  List.iter
    (fun (name, profile) ->
      if Util.Rng.float rng 1.0 < fraction then add_run sampled ~name profile)
    (runs t);
  sampled

let index_file = "corpus.json"

let save_dir t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let names = List.map fst (runs t) in
  let index = Util.Json.Obj [ ("runs", Util.Json.List (List.map (fun n -> Util.Json.String n) names)) ] in
  let oc = open_out (Filename.concat dir index_file) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Util.Json.to_string_pretty index));
  List.iter
    (fun (name, profile) -> Profile.save profile (Filename.concat dir (name ^ ".profile.json")))
    (runs t)

let load_dir dir =
  let ic = open_in (Filename.concat dir index_file) in
  let index =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Util.Json.of_string (In_channel.input_all ic))
  in
  let names =
    match Util.Json.member "runs" index with
    | Util.Json.List items -> List.map Util.Json.to_str items
    | _ | (exception Not_found) -> invalid_arg "Corpus.load_dir: malformed index"
  in
  let t = create () in
  List.iter
    (fun name ->
      add_run t ~name (Profile.load (Filename.concat dir (name ^ ".profile.json"))))
    names;
  t
