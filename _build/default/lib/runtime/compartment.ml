type t =
  | Trusted
  | Untrusted

let equal a b =
  match (a, b) with
  | Trusted, Trusted | Untrusted, Untrusted -> true
  | Trusted, Untrusted | Untrusted, Trusted -> false

let to_string = function
  | Trusted -> "trusted"
  | Untrusted -> "untrusted"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let trusted_view = Mpk.Pkru.all_enabled

let untrusted_view ~trusted_pkey:_ = Mpk.Pkru.all_disabled_except []

let of_pkru ~trusted_pkey pkru =
  if Mpk.Pkru.can_read pkru trusted_pkey then Trusted else Untrusted
