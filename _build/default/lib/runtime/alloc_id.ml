type t = {
  func_id : int;
  block_id : int;
  call_id : int;
}

let make ~func_id ~block_id ~call_id = { func_id; block_id; call_id }

let synthetic n = { func_id = -1; block_id = 0; call_id = n }

let equal a b = a.func_id = b.func_id && a.block_id = b.block_id && a.call_id = b.call_id

let compare a b =
  match Int.compare a.func_id b.func_id with
  | 0 ->
    (match Int.compare a.block_id b.block_id with
    | 0 -> Int.compare a.call_id b.call_id
    | c -> c)
  | c -> c

let hash a = Hashtbl.hash (a.func_id, a.block_id, a.call_id)

let pp fmt a = Format.fprintf fmt "alloc<%d:%d:%d>" a.func_id a.block_id a.call_id

let to_string a = Format.asprintf "%a" pp a

let to_json a =
  Util.Json.Obj
    [ ("func", Util.Json.Int a.func_id); ("block", Util.Json.Int a.block_id); ("call", Util.Json.Int a.call_id) ]

let of_json j =
  match
    ( Util.Json.member "func" j |> Util.Json.to_int,
      Util.Json.member "block" j |> Util.Json.to_int,
      Util.Json.member "call" j |> Util.Json.to_int )
  with
  | func_id, block_id, call_id -> { func_id; block_id; call_id }
  | exception _ -> invalid_arg "Alloc_id.of_json"

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
