(** Compartments and their PKRU views.

    PKRU-Safe partitions the program into exactly two compartments:
    the trusted compartment T gets an unrestricted view of memory (its own
    MT plus the shared MU), while the untrusted compartment U can only
    access MU (key 0 plus anything explicitly shared).  §6 notes two
    domains is a policy choice, so the view constructors take the trusted
    key as a parameter rather than hard-coding it. *)

type t =
  | Trusted
  | Untrusted

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val trusted_view : Mpk.Pkru.t
(** PKRU for code running in T: every key enabled. *)

val untrusted_view : trusted_pkey:Mpk.Pkey.t -> Mpk.Pkru.t
(** PKRU for code running in U: access to the trusted key disabled (all
    non-default keys are disabled, so additional future compartments stay
    unreachable too). *)

val of_pkru : trusted_pkey:Mpk.Pkey.t -> Mpk.Pkru.t -> t
(** Classifies a PKRU value: [Trusted] iff it can access the trusted
    key. *)
