(** The dynamic-analysis runtime (paper §4.3, Figure 2).

    During a profiling build all heap data is allocated in MT, so every
    access from U to data that must be shared raises an MPK violation.
    This module installs the SIGSEGV interposer that services those
    violations: it looks up the faulting address in the live-object
    {!Metadata} table, records the object's AllocId into the {!Profile},
    then single-steps the faulting instruction — temporarily writing a
    permissive PKRU and setting the trap flag so the SIGTRAP handler can
    restore the restricted view immediately after the access completes
    (§4.3.2).  Every other memory access executed while in U is therefore
    still checked, which is what makes the profile complete.

    Faults that are not MPK violations (or concern a different key) are
    passed to previously registered handlers, mirroring how the prototype
    chains Servo's own SIGSEGV handlers. *)

type t

val create : ?trusted_pkey:Mpk.Pkey.t -> Sim.Machine.t -> t

val install : t -> unit
(** Registers the SIGSEGV and SIGTRAP handlers.  Call late, after the
    application's own handlers (the paper registers "as late as
    possible"). *)

(* Compiler-inserted runtime callbacks (Fig. 2 "log_alloc"). *)

val log_alloc : t -> alloc_id:Alloc_id.t -> addr:int -> size:int -> unit
val log_realloc : t -> old_addr:int -> new_addr:int -> new_size:int -> unit
val log_dealloc : t -> addr:int -> unit

val profile : t -> Profile.t
val metadata : t -> Metadata.t

val faults_serviced : t -> int
(** MPK violations this profiler resolved by single-stepping. *)

val untracked_faults : t -> int
(** MPK violations whose address matched no live tracked object (e.g.
    non-heap trusted data); they are single-stepped but recorded
    nowhere. *)
