type t = { mutable hits : int Alloc_id.Map.t }

let create () = { hits = Alloc_id.Map.empty }

let record t id =
  t.hits <-
    Alloc_id.Map.update id
      (function
        | None -> Some 1
        | Some n -> Some (n + 1))
      t.hits

let mem t id = Alloc_id.Map.mem id t.hits

let cardinal t = Alloc_id.Map.cardinal t.hits

let sites t = List.map fst (Alloc_id.Map.bindings t.hits)

let hit_count t id =
  match Alloc_id.Map.find_opt id t.hits with
  | Some n -> n
  | None -> 0

let merge a b =
  { hits = Alloc_id.Map.union (fun _ x y -> Some (x + y)) a.hits b.hits }

let subset t ~fraction ~rng =
  {
    hits =
      Alloc_id.Map.filter (fun _ _ -> Util.Rng.float rng 1.0 < fraction) t.hits;
  }

let to_json t =
  let site (id, hits) =
    match Alloc_id.to_json id with
    | Util.Json.Obj fields -> Util.Json.Obj (fields @ [ ("hits", Util.Json.Int hits) ])
    | _ -> assert false
  in
  Util.Json.Obj
    [
      ("version", Util.Json.Int 1);
      ("sites", Util.Json.List (List.map site (Alloc_id.Map.bindings t.hits)));
    ]

let of_json j =
  match Util.Json.member "sites" j with
  | exception Not_found -> invalid_arg "Profile.of_json: missing sites"
  | sites ->
    let parse_site s =
      let id = Alloc_id.of_json s in
      let hits =
        match Util.Json.member "hits" s with
        | exception Not_found -> 1
        | h -> Util.Json.to_int h
      in
      (id, hits)
    in
    (match Util.Json.to_list sites with
    | exception Invalid_argument _ -> invalid_arg "Profile.of_json: sites not a list"
    | l ->
      {
        hits =
          List.fold_left (fun acc s -> let id, n = parse_site s in Alloc_id.Map.add id n acc)
            Alloc_id.Map.empty l;
      })

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Util.Json.to_string_pretty (to_json t)))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (Util.Json.of_string (In_channel.input_all ic)))
