(** A minimal JSON reader/writer.

    Profiles and benchmark reports are serialised as JSON so they can be
    inspected and diffed by hand, mirroring the artifact's
    [bench-results/*.json] files.  Only the subset needed by the project is
    implemented: objects, arrays, strings, numbers, booleans and null. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a message locating the first syntax error. *)

val to_string : t -> string
(** [to_string v] renders compact JSON. *)

val to_string_pretty : t -> string
(** [to_string_pretty v] renders indented JSON. *)

val of_string : string -> t
(** [of_string s] parses [s].  Numbers without [.], [e] or [E] become
    [Int]. @raise Parse_error on malformed input. *)

val member : string -> t -> t
(** [member key v] looks up [key] in object [v].
    @raise Not_found if [key] is absent or [v] is not an object. *)

val to_int : t -> int
(** Coerces [Int] (and integral [Float]) to int.
    @raise Invalid_argument otherwise. *)

val to_float : t -> float
(** Coerces [Int] or [Float] to float. @raise Invalid_argument otherwise. *)

val to_list : t -> t list
(** @raise Invalid_argument if the value is not a [List]. *)

val to_str : t -> string
(** @raise Invalid_argument if the value is not a [String]. *)
