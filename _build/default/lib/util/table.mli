(** Plain-text table rendering for benchmark reports.

    The bench harness prints every paper table/figure as an aligned text
    table on stdout; this module owns the layout so all reports look the
    same. *)

type align =
  | Left
  | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out [rows] under [header] with column
    separators and a rule under the header.  [align] gives per-column
    alignment (default: first column left, the rest right).  Rows shorter
    than the header are padded with empty cells. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [print] is [render] followed by output to stdout with a trailing
    newline. *)
