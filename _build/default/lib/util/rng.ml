type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (next t) 1L = 1L

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
