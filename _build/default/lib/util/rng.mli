(** Deterministic pseudo-random number generator.

    All randomness in the simulator flows through this module so that every
    experiment is reproducible from a seed.  The implementation is
    splitmix64, which is small, fast and has good statistical quality for
    simulation purposes. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val copy : t -> t
(** [copy t] duplicates the generator state so two streams can diverge. *)

val next : t -> int64
(** [next t] returns the next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] returns a uniform value in [0, bound).  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [0, bound). *)

val bool : t -> bool
(** [bool t] returns a uniform boolean. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)

val pick : t -> 'a array -> 'a
(** [pick t a] returns a uniformly chosen element.  [a] must be non-empty. *)
