type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    newline ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        write buf ~indent ~level:(level + 1) item)
      items;
    newline ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    newline ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf (if indent then ": " else ":");
        write buf ~indent ~level:(level + 1) item)
      fields;
    newline ();
    pad level;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf ~indent:false ~level:0 v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  write buf ~indent:true ~level:0 v;
  Buffer.contents buf

(* Recursive-descent parser over a cursor into the input string. *)
type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance cur;
    skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let parse_literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string_body cur =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | Some '"' -> Buffer.add_char buf '"'; advance cur; loop ()
      | Some '\\' -> Buffer.add_char buf '\\'; advance cur; loop ()
      | Some '/' -> Buffer.add_char buf '/'; advance cur; loop ()
      | Some 'n' -> Buffer.add_char buf '\n'; advance cur; loop ()
      | Some 'r' -> Buffer.add_char buf '\r'; advance cur; loop ()
      | Some 't' -> Buffer.add_char buf '\t'; advance cur; loop ()
      | Some 'b' -> Buffer.add_char buf '\b'; advance cur; loop ()
      | Some 'f' -> Buffer.add_char buf '\012'; advance cur; loop ()
      | Some 'u' ->
        advance cur;
        if cur.pos + 4 > String.length cur.src then fail cur "bad \\u escape";
        let hex = String.sub cur.src cur.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> fail cur "bad \\u escape"
        in
        cur.pos <- cur.pos + 4;
        (* Non-ASCII escapes are encoded as UTF-8. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        loop ()
      | _ -> fail cur "bad escape")
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec loop () =
    match peek cur with
    | Some c when is_num_char c ->
      advance cur;
      loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub cur.src start (cur.pos - start) in
  let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail cur "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> fail cur "bad number"

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> parse_literal cur "null" Null
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some '"' ->
    advance cur;
    String (parse_string_body cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let items = ref [ parse_value cur ] in
      let rec loop () =
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items := parse_value cur :: !items;
          loop ()
        | Some ']' -> advance cur
        | _ -> fail cur "expected ',' or ']'"
      in
      loop ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let parse_field () =
        skip_ws cur;
        expect cur '"';
        let key = parse_string_body cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        (key, v)
      in
      let fields = ref [ parse_field () ] in
      let rec loop () =
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields := parse_field () :: !fields;
          loop ()
        | Some '}' -> advance cur
        | _ -> fail cur "expected ',' or '}'"
      in
      loop ();
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let member key v =
  match v with
  | Obj fields -> List.assoc key fields
  | _ -> raise Not_found

let to_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | _ -> invalid_arg "Json.to_int"

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | _ -> invalid_arg "Json.to_float"

let to_list = function
  | List l -> l
  | _ -> invalid_arg "Json.to_list"

let to_str = function
  | String s -> s
  | _ -> invalid_arg "Json.to_str"
