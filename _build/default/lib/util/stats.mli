(** Small statistics helpers used by the benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean; 0.0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0.0 on the empty list.  All values must be positive. *)

val stddev : float list -> float
(** Population standard deviation; 0.0 for fewer than two samples. *)

val percent_overhead : baseline:float -> measured:float -> float
(** [(measured - baseline) / baseline * 100].  [baseline] must be non-zero. *)

val normalized : baseline:float -> measured:float -> float
(** [measured / baseline].  [baseline] must be non-zero. *)
