let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int (List.length xs))

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percent_overhead ~baseline ~measured =
  assert (baseline <> 0.0);
  (measured -. baseline) /. baseline *. 100.0

let normalized ~baseline ~measured =
  assert (baseline <> 0.0);
  measured /. baseline
