lib/util/rng.mli:
