lib/util/json.mli:
