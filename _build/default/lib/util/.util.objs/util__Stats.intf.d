lib/util/stats.mli:
