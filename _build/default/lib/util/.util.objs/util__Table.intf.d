lib/util/table.mli:
