(** Memory protection keys.

    Intel MPK provides 16 protection keys; every user page carries one in
    its page-table entry.  The simulator reserves key 0 for conventional
    memory (always accessible, matching the kernel default) and uses the
    others for compartment pools. *)

type t = private int

val count : int
(** Number of architectural keys (16). *)

val of_int : int -> t
(** [of_int k] validates [0 <= k < count].
    @raise Invalid_argument otherwise. *)

val to_int : t -> int

val default : t
(** Key 0: the kernel assigns it to all pages unless told otherwise. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
