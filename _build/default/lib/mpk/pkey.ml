type t = int

let count = 16

let of_int k =
  if k < 0 || k >= count then invalid_arg (Printf.sprintf "Pkey.of_int: %d" k);
  k

let to_int k = k

let default = 0

let equal = Int.equal
let compare = Int.compare
let pp fmt k = Format.fprintf fmt "pkey%d" k
