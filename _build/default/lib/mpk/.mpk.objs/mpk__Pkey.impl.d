lib/mpk/pkey.ml: Format Int Printf
