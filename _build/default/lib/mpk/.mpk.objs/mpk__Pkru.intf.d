lib/mpk/pkru.mli: Format Pkey
