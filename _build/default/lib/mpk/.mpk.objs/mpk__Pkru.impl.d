lib/mpk/pkru.ml: Format Int List Pkey Printf
