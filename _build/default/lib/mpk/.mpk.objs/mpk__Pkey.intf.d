lib/mpk/pkey.mli: Format
