(* Oracle-based fuzzing of the substrates:
   - random arithmetic expressions evaluated by the MiniJS engine must
     match OCaml's IEEE double semantics;
   - random HTML trees must round-trip through the parser;
   - random machine write/read sequences must match a byte-array shadow
     model (covering widths and page-straddling);
   - random well-nested gate sequences must restore PKRU exactly. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

(* --- MiniJS arithmetic vs the OCaml oracle --- *)

type arith =
  | Lit of float
  | Neg of arith
  | Bin of char * arith * arith

let rec gen_arith rng depth =
  if depth = 0 || Util.Rng.int rng 4 = 0 then
    Lit (float_of_int (Util.Rng.int rng 200 - 100) /. 4.0)
  else
    match Util.Rng.int rng 5 with
    | 0 -> Neg (gen_arith rng (depth - 1))
    | 1 -> Bin ('+', gen_arith rng (depth - 1), gen_arith rng (depth - 1))
    | 2 -> Bin ('-', gen_arith rng (depth - 1), gen_arith rng (depth - 1))
    | 3 -> Bin ('*', gen_arith rng (depth - 1), gen_arith rng (depth - 1))
    | _ -> Bin ('/', gen_arith rng (depth - 1), Lit (1.0 +. float_of_int (Util.Rng.int rng 9)))

let rec arith_to_js = function
  | Lit f -> if f < 0.0 then Printf.sprintf "(0 - %g)" (-.f) else Printf.sprintf "%g" f
  | Neg e -> Printf.sprintf "(-(%s))" (arith_to_js e)
  | Bin (op, a, b) -> Printf.sprintf "(%s %c %s)" (arith_to_js a) op (arith_to_js b)

let rec arith_eval = function
  | Lit f -> f
  | Neg e -> -.arith_eval e
  | Bin ('+', a, b) -> arith_eval a +. arith_eval b
  | Bin ('-', a, b) -> arith_eval a -. arith_eval b
  | Bin ('*', a, b) -> arith_eval a *. arith_eval b
  | Bin ('/', a, b) -> arith_eval a /. arith_eval b
  | Bin _ -> assert false

let prop_engine_arithmetic_matches_ocaml =
  QCheck.Test.make ~count:200 ~name:"engine arithmetic = IEEE double oracle"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      let expr = gen_arith rng 5 in
      let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
      let engine = Engine.create env in
      match Engine.eval_string engine (arith_to_js expr ^ ";") with
      | Engine.Value.Num got ->
        let want = arith_eval expr in
        Int64.bits_of_float got = Int64.bits_of_float want
      | _ -> false)

(* --- HTML round-trip --- *)

let tags = [| "div"; "span"; "p"; "ul"; "li"; "section" |]
let words = [| "alpha"; "beta"; "gamma delta"; "x1"; "text & more" |]

let rec gen_tree rng depth : Browser.Html.tree =
  if depth = 0 || Util.Rng.int rng 3 = 0 then
    Browser.Html.Text (Util.Rng.pick rng words)
  else begin
    let nattrs = Util.Rng.int rng 3 in
    let attrs = List.init nattrs (fun i -> (Printf.sprintf "a%d" i, Util.Rng.pick rng words)) in
    let nkids = Util.Rng.int rng 3 in
    (* Avoid adjacent text nodes (the parser cannot distinguish them from
       one merged node): alternate element/text deterministically. *)
    let kids =
      List.init nkids (fun i ->
          if i mod 2 = 0 then gen_tree rng (depth - 1)
          else
            Browser.Html.Element (Util.Rng.pick rng tags, [], [ gen_tree rng (depth - 1) ]))
    in
    let kids =
      (* Drop accidental adjacent texts. *)
      List.fold_left
        (fun acc node ->
          match (acc, node) with
          | Browser.Html.Text _ :: _, Browser.Html.Text _ -> acc
          | _ -> node :: acc)
        [] kids
      |> List.rev
    in
    Browser.Html.Element (Util.Rng.pick rng tags, attrs, kids)
  end

let prop_html_roundtrip =
  QCheck.Test.make ~count:200 ~name:"html print/parse round-trip"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      let tree =
        match gen_tree rng 3 with
        | Browser.Html.Text _ as t -> Browser.Html.Element ("div", [], [ t ])
        | t -> t
      in
      let text = Browser.Html.to_string [ tree ] in
      Browser.Html.to_string (Browser.Html.parse text) = text)

(* --- Machine memory vs a shadow byte array --- *)

let prop_machine_memory_matches_shadow =
  QCheck.Test.make ~count:60 ~name:"machine memory = shadow model (widths + straddling)"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      let m = Sim.Machine.create () in
      let pages = 4 in
      let base = 0x40_0000 in
      let size = pages * Vmm.Layout.page_size in
      (match
         Vmm.Page_table.reserve m.Sim.Machine.page_table ~base ~size ~prot:Vmm.Prot.read_write
           ~pkey:Mpk.Pkey.default
       with
      | Ok () -> ()
      | Error e -> failwith e);
      let shadow = Bytes.make size '\000' in
      let widths = [| 1; 2; 4; 8 |] in
      let result = ref true in
      for _ = 1 to 400 do
        let width = widths.(Util.Rng.int rng 4) in
        let offset = Util.Rng.int rng (size - width) in
        if Util.Rng.bool rng then begin
          (* Write both to the machine and to the shadow. *)
          let v = Int64.to_int (Int64.shift_right_logical (Util.Rng.next rng) 8) in
          let v = v land ((1 lsl (8 * width)) - 1) in
          (match width with
          | 1 -> Sim.Machine.write_u8 m (base + offset) v
          | 2 -> Sim.Machine.write_u16 m (base + offset) v
          | 4 -> Sim.Machine.write_u32 m (base + offset) v
          | _ -> Sim.Machine.write_u64 m (base + offset) v);
          for i = 0 to width - 1 do
            Bytes.set shadow (offset + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
          done
        end
        else begin
          let got =
            match width with
            | 1 -> Sim.Machine.read_u8 m (base + offset)
            | 2 -> Sim.Machine.read_u16 m (base + offset)
            | 4 -> Sim.Machine.read_u32 m (base + offset)
            | _ -> Sim.Machine.read_u64 m (base + offset)
          in
          let want = ref 0 in
          for i = width - 1 downto 0 do
            want := (!want lsl 8) lor Char.code (Bytes.get shadow (offset + i))
          done;
          if got <> !want then result := false
        end
      done;
      !result)

(* --- Random well-nested gate sequences --- *)

let prop_gate_nesting_restores_pkru =
  QCheck.Test.make ~count:100 ~name:"random gate nesting restores PKRU"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      let m = Sim.Machine.create () in
      let gate = Runtime.Gate.create m in
      let initial = m.Sim.Machine.cpu.Sim.Cpu.pkru in
      let rec nest depth =
        if depth > 0 && Util.Rng.int rng 3 > 0 then begin
          if Util.Rng.bool rng then
            Runtime.Gate.call_untrusted gate (fun () -> nest (depth - 1))
          else Runtime.Gate.callback_trusted gate (fun () -> nest (depth - 1));
          if Util.Rng.bool rng then nest (depth - 1)
        end
      in
      nest 6;
      Mpk.Pkru.equal m.Sim.Machine.cpu.Sim.Cpu.pkru initial
      && Runtime.Comp_stack.depth (Runtime.Gate.stack gate) = 0)

(* --- Random JSON values survive the engine's JSON round-trip --- *)

let prop_engine_json_roundtrip =
  QCheck.Test.make ~count:100 ~name:"engine JSON.parse . JSON.stringify = id (canonical)"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      (* Generate a JSON-ish MiniJS literal with integers, strings, bools,
         arrays (objects excluded: property order is unspecified). *)
      let rec gen depth =
        if depth = 0 || Util.Rng.int rng 3 = 0 then
          match Util.Rng.int rng 3 with
          | 0 -> string_of_int (Util.Rng.int rng 1000 - 500)
          | 1 -> Printf.sprintf "\"s%d\"" (Util.Rng.int rng 100)
          | _ -> if Util.Rng.bool rng then "true" else "false"
        else begin
          let n = Util.Rng.int rng 4 in
          "[" ^ String.concat "," (List.init n (fun _ -> gen (depth - 1))) ^ "]"
        end
      in
      let literal = "[" ^ gen 3 ^ "]" in
      let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
      let engine = Engine.create env in
      let script =
        Printf.sprintf
          "var v = %s; var a = JSON.stringify(v); var b = JSON.stringify(JSON.parse(a)); a == b;"
          literal
      in
      match Engine.eval_string engine script with
      | Engine.Value.Bool b -> b
      | _ -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_engine_arithmetic_matches_ocaml;
    QCheck_alcotest.to_alcotest prop_html_roundtrip;
    QCheck_alcotest.to_alcotest prop_machine_memory_matches_shadow;
    QCheck_alcotest.to_alcotest prop_gate_nesting_restores_pkru;
    QCheck_alcotest.to_alcotest prop_engine_json_roundtrip;
  ]
