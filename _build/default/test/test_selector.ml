(* Tests for the CSS selector engine: parsing, matching semantics over the
   machine-resident DOM, and the domQuery binding. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let fresh () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
  Browser.create env

let page =
  {|<div id="main" class="panel wide">
      <ul class="list">
        <li class="item first">one</li>
        <li class="item">two</li>
        <li id="last" class="item">three</li>
      </ul>
      <p class="item">outside the list</p>
    </div>
    <div class="panel"><span>side</span></div>|}

let query b text =
  Browser.Selector.query_all (Browser.dom b) (Browser.Selector.parse text)

let tags b nodes = List.map (Browser.Dom.tag_name (Browser.dom b)) nodes

let test_parse_and_print () =
  List.iter
    (fun (input, canon) ->
      Alcotest.(check string) input canon
        (Browser.Selector.to_string (Browser.Selector.parse input)))
    [
      ("div", "div");
      ("#main", "#main");
      (".item", ".item");
      ("div.panel#main", "div.panel#main");
      ("ul   li", "ul li");
      ("h1, h2", "h1, h2");
      ("*", "*");
    ]

let test_parse_errors () =
  List.iter
    (fun input ->
      Alcotest.(check bool) ("rejects " ^ input) true
        (match Browser.Selector.parse input with
        | exception Browser.Selector.Parse_error _ -> true
        | _ -> false))
    [ ""; "  "; "#"; "."; "div..x"; "a>b"; "," ]

let test_simple_queries () =
  let b = fresh () in
  Browser.load_page b page;
  Alcotest.(check int) "by tag" 3 (List.length (query b "li"));
  Alcotest.(check int) "by id" 1 (List.length (query b "#main"));
  Alcotest.(check int) "by class" 4 (List.length (query b ".item"));
  Alcotest.(check int) "universal counts elements" 8 (List.length (query b "*"));
  Alcotest.(check int) "missing" 0 (List.length (query b ".nope"))

let test_compound_and_multiclass () =
  let b = fresh () in
  Browser.load_page b page;
  Alcotest.(check int) "tag+class" 3 (List.length (query b "li.item"));
  Alcotest.(check int) "two classes" 1 (List.length (query b ".item.first"));
  Alcotest.(check int) "class word match" 2 (List.length (query b ".panel"));
  Alcotest.(check int) "tag+id+class" 1 (List.length (query b "li#last.item"));
  Alcotest.(check int) "id with wrong class" 0 (List.length (query b "#last.first"))

let test_descendant_combinator () =
  let b = fresh () in
  Browser.load_page b page;
  (* .item inside ul: excludes the stray <p class="item">. *)
  Alcotest.(check int) "ul .item" 3 (List.length (query b "ul .item"));
  Alcotest.(check int) "#main li" 3 (List.length (query b "#main li"));
  Alcotest.(check int) "deep chain" 1 (List.length (query b "div ul .first"));
  Alcotest.(check int) "non-ancestor chain" 0 (List.length (query b "p li"));
  Alcotest.(check (list string)) "document order" [ "li"; "li"; "li"; "p" ]
    (tags b (query b "#main .item"))

let test_selector_list () =
  let b = fresh () in
  Browser.load_page b page;
  Alcotest.(check (list string)) "union in document order" [ "ul"; "p"; "span" ]
    (tags b (query b "p, ul, span"))

let test_query_first_and_matches () =
  let b = fresh () in
  Browser.load_page b page;
  let dom = Browser.dom b in
  (match Browser.Selector.query_first dom (Browser.Selector.parse ".item") with
  | Some n -> Alcotest.(check string) "first item is a li" "li" (Browser.Dom.tag_name dom n)
  | None -> Alcotest.fail "expected a match");
  let last = Option.get (Browser.Dom.get_element_by_id dom "last") in
  Alcotest.(check bool) "matches positive" true
    (Browser.Selector.matches dom last (Browser.Selector.parse "ul li.item"));
  Alcotest.(check bool) "matches negative" false
    (Browser.Selector.matches dom last (Browser.Selector.parse "p li"))

let test_dom_query_binding () =
  let b = fresh () in
  Browser.load_page b page;
  ignore
    (Browser.exec_script b
       {|
print(domQuery("ul .item").length);
print(domQuery(".panel").length);
var first = domQuery("li.first")[0];
print(domGetAttribute(first, "class"));
print(domQuery("h1, span").length);
|});
  Alcotest.(check (list string)) "script selector results" [ "3"; "2"; "item first"; "1" ]
    (Browser.console b)

let test_dynamic_classes_rematch () =
  (* Selector matching reads live attribute bytes: toggling a class from
     script changes subsequent query results. *)
  let b = fresh () in
  Browser.load_page b {|<div class="a">x</div><div class="b">y</div>|};
  ignore
    (Browser.exec_script b
       {|
print(domQuery(".hot").length);
domSetAttribute(domQuery(".a")[0], "class", "a hot");
print(domQuery(".hot").length);
|});
  Alcotest.(check (list string)) "rematch after mutation" [ "0"; "1" ] (Browser.console b)

let suite =
  [
    Alcotest.test_case "parse + print" `Quick test_parse_and_print;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "simple queries" `Quick test_simple_queries;
    Alcotest.test_case "compound + multiclass" `Quick test_compound_and_multiclass;
    Alcotest.test_case "descendant combinator" `Quick test_descendant_combinator;
    Alcotest.test_case "selector lists" `Quick test_selector_list;
    Alcotest.test_case "query_first + matches" `Quick test_query_first_and_matches;
    Alcotest.test_case "domQuery binding" `Quick test_dom_query_binding;
    Alcotest.test_case "dynamic classes rematch" `Quick test_dynamic_classes_rematch;
  ]
