(* Tests for the MiniJS engine: lexer, parser, evaluator, machine-backed
   values, builtins and host functions. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let fresh_engine ?seed () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
  Engine.create ?seed env

let eval_num src =
  let e = fresh_engine () in
  match Engine.eval_string e src with
  | Engine.Value.Num f -> f
  | v -> Alcotest.fail (Printf.sprintf "expected number, got %s" (Engine.Value.type_name v))

let eval_str src =
  let e = fresh_engine () in
  let v = Engine.eval_string e src in
  Engine.Value.to_display_string (Engine.heap e) v

let check_num name expected src = Alcotest.(check (float 1e-9)) name expected (eval_num src)
let check_str name expected src = Alcotest.(check string) name expected (eval_str src)

(* --- Lexer --- *)

let test_lexer_tokens () =
  let e = fresh_engine () in
  let heap = Engine.heap e in
  let src =
    match Engine.Value.str_of_string heap "var x = 1.5e2; // comment\n x >= 'a\\n';" with
    | Engine.Value.Str s -> s
    | _ -> assert false
  in
  let toks = List.map (fun l -> l.Engine.Lexer.tok) (Engine.Lexer.tokenize heap src) in
  Alcotest.(check (list string)) "token stream"
    [ "keyword var"; "identifier x"; "\"=\""; "number 150"; "\";\""; "identifier x";
      "\">=\""; "string \"a\\n\""; "\";\""; "end of input" ]
    (List.map Engine.Lexer.token_to_string toks)

let test_lexer_line_numbers () =
  let e = fresh_engine () in
  let heap = Engine.heap e in
  let src =
    match Engine.Value.str_of_string heap "1;\n2;\n/* multi\nline */ 3;" with
    | Engine.Value.Str s -> s
    | _ -> assert false
  in
  let lines =
    Engine.Lexer.tokenize heap src
    |> List.filter_map (fun l ->
           match l.Engine.Lexer.tok with
           | Engine.Lexer.Num _ -> Some l.Engine.Lexer.line
           | _ -> None)
  in
  Alcotest.(check (list int)) "lines" [ 1; 2; 4 ] lines

let test_lexer_errors () =
  let e = fresh_engine () in
  List.iter
    (fun src ->
      Alcotest.(check bool) (Printf.sprintf "lex error: %s" src) true
        (match Engine.eval_string e src with
        | exception Engine.Lexer.Lex_error _ -> true
        | _ -> false))
    [ "\"unterminated"; "var x = @;"; "/* open" ]

(* --- Parser --- *)

let test_parser_errors () =
  let e = fresh_engine () in
  List.iter
    (fun src ->
      Alcotest.(check bool) (Printf.sprintf "parse error: %s" src) true
        (match Engine.eval_string e src with
        | exception Engine.Parser.Parse_error _ -> true
        | _ -> false))
    [ "var;"; "if (1) return;"; "1 +;"; "function () {};"; "{ x: 1 };"; "f(1,;" ]

(* --- Arithmetic and operators --- *)

let test_arithmetic () =
  check_num "precedence" 14.0 "2 + 3 * 4;";
  check_num "parens" 20.0 "(2 + 3) * 4;";
  check_num "division" 2.5 "5 / 2;";
  check_num "modulo" 1.0 "7 % 3;";
  check_num "unary minus" (-6.0) "-2 * 3;";
  check_num "ternary" 10.0 "1 < 2 ? 10 : 20;";
  check_num "logical and" 0.0 "0 && 5;";
  check_num "logical or" 7.0 "0 || 7;";
  check_num "comparisons" 2.0 "(1 < 2) + (2 <= 2) + (3 > 4) + (1 == 1) + (1 != 1) - 1;"

let test_string_ops () =
  check_str "concat" "ab3" "'a' + 'b' + 3;";
  check_num "length" 5.0 "'hello'.length;";
  check_num "charCodeAt" 104.0 "'hi'.charCodeAt(0);";
  check_str "substring" "ell" "'hello'.substring(1, 4);";
  check_num "indexOf hit" 2.0 "'hello'.indexOf('ll');";
  check_num "indexOf miss" (-1.0) "'hello'.indexOf('z');";
  check_str "fromCharCode" "AB" "String.fromCharCode(65, 66);";
  check_str "upper" "HI" "'hi'.toUpperCase();";
  check_str "split+join" "a-b-c" "'a,b,c'.split(',').join('-');"

let test_arrays () =
  check_num "literal + index" 30.0 "var a = [10, 20, 30]; a[2];";
  check_num "push returns length" 4.0 "var a = [1,2,3]; a.push(9);";
  check_num "pop" 3.0 "var a = [1,2,3]; a.pop();";
  check_num "length grows" 11.0 "var a = new Array(10); a[10] = 5; a.length;";
  check_num "store + load" 42.0 "var a = new Array(3); a[1] = 42; a[1];";
  check_str "join" "1,2,3" "[1,2,3].join(',');";
  check_num "indexOf" 1.0 "[5,6,7].indexOf(6);";
  check_num "out of range read is null" 1.0 "var a = [1]; a[5] == null ? 1 : 0;"

let test_objects () =
  check_num "literal + member" 7.0 "var o = {a: 7, b: 2}; o.a;";
  check_num "assign member" 9.0 "var o = {}; o.x = 9; o.x;";
  check_num "index by string" 3.0 "var o = {k: 3}; o['k'];";
  check_num "missing is null" 1.0 "var o = {}; o.nope == null ? 1 : 0;";
  check_num "nested" 5.0 "var o = {inner: {v: 5}}; o.inner.v;"

let test_functions_and_closures () =
  check_num "function decl" 120.0
    "function fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); } fact(5);";
  check_num "closure captures" 15.0
    "function adder(n) { return function(x) { return x + n; }; } var add5 = adder(5); add5(10);";
  check_num "function literal" 9.0 "var sq = function(x) { return x * x; }; sq(3);";
  check_num "missing args are null" 1.0 "function f(a, b) { return b == null ? 1 : 0; } f(1);";
  check_num "object method" 8.0 "var o = {f: function(x) { return x * 2; }}; o.f(4);"

let test_control_flow () =
  check_num "while" 45.0 "var s = 0; var i = 0; while (i < 10) { s = s + i; i = i + 1; } s;";
  check_num "for" 45.0 "var s = 0; for (var i = 0; i < 10; i = i + 1) { s += i; } s;";
  check_num "break" 5.0 "var i = 0; while (true) { if (i == 5) { break; } i = i + 1; } i;";
  check_num "continue" 25.0
    "var s = 0; for (var i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { continue; } s += i; } s;";
  check_num "else if" 2.0 "var x = 5; var r = 0; if (x < 3) { r = 1; } else if (x < 7) { r = 2; } else { r = 3; } r;";
  check_num "compound assign" 14.0 "var x = 2; x += 3; x *= 4; x -= 6; x;"

let test_bitwise_ops () =
  check_num "and" 8.0 "12 & 10;";
  check_num "or" 14.0 "12 | 10;";
  check_num "xor" 6.0 "12 ^ 10;";
  check_num "shl" 48.0 "12 << 2;";
  check_num "shr" 3.0 "12 >> 2;";
  check_num "shr negative" (-2.0) "-8 >> 2;";
  check_num "not" (-13.0) "~12;";
  check_num "wrap32" 0.0 "(4294967296 | 0);";
  check_num "wrap32 high bit" (-2147483648.0) "(2147483648 | 0);";
  check_num "precedence vs cmp" 1.0 "(1 & 3) == 1 ? 1 : 0;";
  check_num "shift binds tighter than and" 4.0 "1 << 2 & 12;"

let test_extended_builtins () =
  check_num "parseInt" 42.0 "parseInt('42.9');";
  check_num "parseFloat" 2.5 "parseFloat('2.5');";
  check_num "isNaN" 1.0 "isNaN('zzz') ? 1 : 0;";
  check_str "typeof" "string" "typeof('x');";
  check_num "Math.trunc" (-3.0) "Math.trunc(-3.7);";
  check_num "Math.sign" (-1.0) "Math.sign(-9);";
  check_num "Math.hypot" 5.0 "Math.hypot(3, 4);";
  check_str "slice" "ell" "'hello'.slice(1, 4);";
  check_str "slice negative" "lo" "'hello'.slice(-2, 99);";
  check_str "trim" "hi" "'  hi  '.trim();";
  check_num "startsWith" 1.0 "'hello'.startsWith('he') ? 1 : 0;";
  check_str "replace" "hxllo" "'hello'.replace('e', 'x');";
  check_str "replace miss" "hello" "'hello'.replace('z', 'x');"

let test_higher_order_arrays () =
  check_str "map" "[2,4,6]" "[1,2,3].map(function(x) { return x * 2; });";
  check_str "filter" "[2,4]" "[1,2,3,4].filter(function(x) { return x % 2 == 0; });";
  check_num "reduce" 10.0 "[1,2,3,4].reduce(function(a, b) { return a + b; }, 0);";
  check_str "sort" "[1,2,5,9]" "var a = [5,1,9,2]; a.sort(); a;";
  check_str "reverse" "[3,2,1]" "[1,2,3].reverse();";
  check_str "slice array" "[20,30]" "[10,20,30,40].slice(1, 3);";
  check_str "concat" "[1,2,3,4]" "[1,2].concat([3,4]);";
  check_str "fill" "[7,7,7]" "new Array(3).fill(7);";
  (* map over a closure capturing its environment *)
  check_num "map with capture" 60.0
    "function scale(k) { return function(x) { return x * k; }; } [1,2,3].map(scale(10)).reduce(function(a,b) { return a + b; }, 0);"

let test_math_and_random () =
  check_num "floor" 3.0 "Math.floor(3.7);";
  check_num "sqrt" 5.0 "Math.sqrt(25);";
  check_num "pow" 8.0 "Math.pow(2, 3);";
  check_num "min/max" 7.0 "Math.min(9, 7) + Math.max(-1, 0);";
  (* Math.random is deterministic per seed. *)
  let run seed =
    let e = fresh_engine ~seed () in
    Engine.eval_string e "Math.random();"
  in
  Alcotest.(check bool) "seeded random deterministic" true (run 7 = run 7);
  Alcotest.(check bool) "different seeds differ" true (run 7 <> run 8)

let test_json_roundtrip () =
  check_str "stringify" {|{"a":[1,2,"x"]}|} "JSON.stringify({a: [1, 2, 'x']});";
  check_num "parse" 42.0 "var v = JSON.parse('{\"k\": [41, 42]}'); v.k[1];";
  check_num "roundtrip" 3.0
    "var v = JSON.parse(JSON.stringify({list: [1,2,3]})); v.list.length;"

let test_print_output () =
  let e = fresh_engine () in
  ignore (Engine.eval_string e "print('hello', 42); print([1,2]);");
  Alcotest.(check (list string)) "output" [ "hello 42"; "[1,2]" ] (Engine.take_output e)

let test_runtime_errors () =
  let e = fresh_engine () in
  List.iter
    (fun (src, what) ->
      Alcotest.(check bool) what true
        (match Engine.eval_string e src with
        | exception Engine.Eval.Script_error _ -> true
        | _ -> false))
    [
      ("nope;", "undefined variable");
      ("var a = [1]; a[7] = 0;", "sparse store rejected");
      ("var x = 4; x(1);", "not callable");
      ("null.f();", "method on null");
      ("Math.frobnicate(1);", "unknown Math fn");
    ]

let test_fuel_exhaustion () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
  let e = Engine.create ~fuel:10_000 env in
  Alcotest.(check bool) "infinite loop stopped" true
    (match Engine.eval_string e "while (true) { }" with
    | exception Engine.Eval.Script_error _ -> true
    | _ -> false)

let test_engine_data_lives_in_mu () =
  let e = fresh_engine () in
  (match Engine.eval_string e "[1,2,3];" with
  | Engine.Value.Arr a ->
    Alcotest.(check bool) "array buffer in MU" true (Vmm.Layout.in_untrusted a.Engine.Value.a_buf)
  | _ -> Alcotest.fail "expected array");
  match Engine.eval_string e "'some string';" with
  | Engine.Value.Str s ->
    Alcotest.(check bool) "string bytes in MU" true (Vmm.Layout.in_untrusted s.Engine.Value.s_addr)
  | _ -> Alcotest.fail "expected string"

let test_host_functions () =
  let e = fresh_engine () in
  let heap = Engine.heap e in
  Engine.register_host e "hostDouble" (fun args ->
      match args with
      | [ Engine.Value.Num f ] -> Engine.Value.Num (2.0 *. f)
      | _ -> Alcotest.fail "bad args");
  Engine.register_host e "hostGreet" (fun _ -> Engine.Value.str_of_string heap "hi");
  Alcotest.(check (float 0.0)) "host call" 42.0
    (match Engine.eval_string e "hostDouble(21);" with
    | Engine.Value.Num f -> f
    | _ -> Alcotest.fail "num");
  Alcotest.(check string) "host string" "hi!"
    (Engine.Value.to_display_string heap (Engine.eval_string e "hostGreet() + '!';"))

let test_host_function_as_value () =
  let e = fresh_engine () in
  Engine.register_host e "hostInc" (fun args ->
      match args with
      | [ Engine.Value.Num f ] -> Engine.Value.Num (f +. 1.0)
      | _ -> Alcotest.fail "bad args");
  check_num "host passed around" 0.0 "0;";
  Alcotest.(check (float 0.0)) "indirect host call" 6.0
    (match
       Engine.eval_string e
         "function apply(f, x) { return f(x); } apply(hostInc, 5);"
     with
    | Engine.Value.Num f -> f
    | _ -> Alcotest.fail "num")

let test_nan_boxing_roundtrip () =
  let e = fresh_engine () in
  let heap = Engine.heap e in
  let values =
    [
      Engine.Value.Null;
      Engine.Value.Bool true;
      Engine.Value.Bool false;
      Engine.Value.Num 0.0;
      Engine.Value.Num (-1.5);
      Engine.Value.Num Float.nan;
      Engine.Value.Num Float.infinity;
      Engine.Value.str_of_string heap "xyz";
      Engine.Value.arr_make heap 2;
      Engine.Value.obj_make heap;
      Engine.Value.Handle 99;
    ]
  in
  List.iter
    (fun v ->
      let v' = Engine.Value.unbox heap (Engine.Value.box heap v) in
      match (v, v') with
      | Engine.Value.Num f, Engine.Value.Num f' ->
        Alcotest.(check bool) "num round-trip" true
          (Float.is_nan f && Float.is_nan f' || f = f')
      | a, b -> Alcotest.(check bool) "identity round-trip" true (a == b || a = b))
    values

let test_values_survive_array_storage () =
  (* Mixed-type array contents survive the NaN-boxed machine slots. *)
  check_str "mixed array" "[1.5,x,true,null,[2]]"
    "var a = [1.5, 'x', true, null, [2]]; a;"

let test_gc_reclaims_garbage () =
  let e = fresh_engine () in
  let heap = Engine.heap e in
  ignore
    (Engine.eval_string e
       {|
var keep = [1, "kept string", {k: [2, 3]}];
for (var i = 0; i < 50; i = i + 1) {
  var junk = "temporary " + i;
  var arr = [i, i + 1, junk];
}
var keeper = function(x) { return keep[0] + x; };
|});
  let before = Engine.Value.owned_count heap in
  let freed = Engine.collect e in
  let after = Engine.Value.owned_count heap in
  Alcotest.(check bool) (Printf.sprintf "garbage freed (%d)" freed) true (freed > 40);
  Alcotest.(check int) "registry shrank accordingly" (before - freed) after;
  (* Everything reachable still works after collection. *)
  Alcotest.(check string) "kept data intact" "kept string"
    (Engine.Value.to_display_string heap (Engine.eval_string e "keep[1];"));
  Alcotest.(check (float 0.0)) "closure + captured array intact" 8.0
    (match Engine.eval_string e "keeper(7);" with
    | Engine.Value.Num f -> f
    | _ -> Alcotest.fail "num");
  Alcotest.(check (float 0.0)) "nested object intact" 3.0
    (match Engine.eval_string e "keep[2].k[1];" with
    | Engine.Value.Num f -> f
    | _ -> Alcotest.fail "num")

let test_gc_handles_cycles () =
  let e = fresh_engine () in
  ignore
    (Engine.eval_string e
       {|
var a = {};
var b = {back: a};
a.fwd = b;
var cyclic_array = [];
cyclic_array.push(cyclic_array);
|});
  (* Reachable cycles survive (the only garbage so far is the script
     source buffer itself). *)
  let freed_live = Engine.collect e in
  Alcotest.(check bool) (Printf.sprintf "only scratch freed (%d)" freed_live) true
    (freed_live <= 2);
  Alcotest.(check (float 0.0)) "cycle still intact" 1.0
    (match Engine.eval_string e "a.fwd.back == a ? 1 : 0;" with
    | Engine.Value.Num f -> f
    | _ -> Alcotest.fail "num");
  (* ...unreachable cycles are collected. *)
  ignore (Engine.eval_string e "a = null; b = null; cyclic_array = null;");
  let freed = Engine.collect e in
  Alcotest.(check bool) (Printf.sprintf "cycle reclaimed (%d)" freed) true (freed >= 3)

let test_gc_never_frees_foreign_buffers () =
  (* Strings handed to the engine by the browser are not engine-owned:
     collection must leave them alone even when unreachable. *)
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
  let b = Browser.create env in
  Browser.load_page b {|<div data="browser-owned">x</div>|};
  ignore
    (Browser.exec_script b
       {|var v = domGetAttribute(domQueryTag("div")[0], "data"); v = null;|});
  let engine = Browser.engine b in
  ignore (Engine.collect engine);
  (* The browser can still read its buffer through a fresh getter. *)
  ignore (Browser.exec_script b {|print(domGetAttribute(domQueryTag("div")[0], "data"));|});
  Alcotest.(check (list string)) "attribute intact" [ "browser-owned" ] (Browser.console b)

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer line numbers" `Quick test_lexer_line_numbers;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "string ops" `Quick test_string_ops;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "objects" `Quick test_objects;
    Alcotest.test_case "functions + closures" `Quick test_functions_and_closures;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "bitwise ops" `Quick test_bitwise_ops;
    Alcotest.test_case "extended builtins" `Quick test_extended_builtins;
    Alcotest.test_case "higher-order arrays" `Quick test_higher_order_arrays;
    Alcotest.test_case "math + seeded random" `Quick test_math_and_random;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "print output" `Quick test_print_output;
    Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "engine data in MU" `Quick test_engine_data_lives_in_mu;
    Alcotest.test_case "host functions" `Quick test_host_functions;
    Alcotest.test_case "host function as value" `Quick test_host_function_as_value;
    Alcotest.test_case "nan-boxing round-trip" `Quick test_nan_boxing_roundtrip;
    Alcotest.test_case "mixed arrays survive slots" `Quick test_values_survive_array_storage;
    Alcotest.test_case "gc reclaims garbage" `Quick test_gc_reclaims_garbage;
    Alcotest.test_case "gc handles cycles" `Quick test_gc_handles_cycles;
    Alcotest.test_case "gc spares foreign buffers" `Quick test_gc_never_frees_foreign_buffers;
  ]
