(* Tests for the static taint analysis (the §6 alternative to dynamic
   profiling): soundness relative to dynamic profiles, the documented
   over-approximation, heap-content and pointer-chasing propagation, and
   the end-to-end static enforcement build. *)

open Ir

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let assigned m =
  let m = Module_ir.copy m in
  ignore (Passes.assign_alloc_ids m);
  m

let analyze ?hosts_are_sinks m = Static_taint.analyze ?hosts_are_sinks (assigned m)

let shared_count r = Runtime.Alloc_id.Set.cardinal r.Static_taint.shared

(* Trusted main shares one object directly and keeps one private. *)
let direct_share_module () =
  let m = Module_ir.create () in
  let u = Builder.create ~name:"u_take" ~crate:"clib" ~nparams:1 () in
  Builder.ret u (Some (Instr.Reg 0));
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let shared = Builder.alloc f (Instr.Imm 16) in
  let private_ = Builder.alloc f (Instr.Imm 16) in
  Builder.store f ~src:(Instr.Imm 1) ~addr:(Instr.Reg private_) ();
  ignore (Builder.call f "u_take" [ Instr.Reg shared ]);
  Builder.ret f None;
  Module_ir.add_func m (Builder.finish f);
  m

let test_direct_flow () =
  let r = analyze (direct_share_module ()) in
  Alcotest.(check int) "exactly the shared site" 1 (shared_count r);
  Alcotest.(check bool) "converges quickly" true (r.Static_taint.iterations < 10)

let test_flow_through_helper_and_return () =
  (* The pointer passes through a trusted helper and a return value before
     reaching U — inter-procedural propagation in both directions. *)
  let m = Module_ir.create () in
  let u = Builder.create ~name:"u_take" ~crate:"clib" ~nparams:1 () in
  Builder.ret u None;
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let mk = Builder.create ~name:"make_buffer" ~crate:"app" ~nparams:0 () in
  let p = Builder.alloc mk (Instr.Imm 32) in
  Builder.ret mk (Some (Instr.Reg p));
  Module_ir.add_func m (Builder.finish mk);
  let fwd = Builder.create ~name:"forward" ~crate:"app" ~nparams:1 () in
  ignore (Builder.call fwd "u_take" [ Instr.Reg 0 ]);
  Builder.ret fwd None;
  Module_ir.add_func m (Builder.finish fwd);
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let p = Builder.call f ~ret:true "make_buffer" [] in
  ignore (Builder.call f "forward" [ Instr.Reg (Option.get p) ]);
  Builder.ret f None;
  Module_ir.add_func m (Builder.finish f);
  Alcotest.(check int) "found through two hops" 1 (shared_count (analyze m))

let test_pointer_chasing_closure () =
  (* U receives a struct whose field points at a second trusted object:
     both must move ("objects reachable through the fields of aggregate
     types", §3.4). *)
  let m = Module_ir.create () in
  let u = Builder.create ~name:"u_take" ~crate:"clib" ~nparams:1 () in
  Builder.ret u None;
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let outer = Builder.alloc f (Instr.Imm 16) in
  let inner = Builder.alloc f (Instr.Imm 16) in
  let unrelated = Builder.alloc f (Instr.Imm 16) in
  Builder.store f ~src:(Instr.Reg inner) ~addr:(Instr.Reg outer) ();
  Builder.store f ~src:(Instr.Imm 9) ~addr:(Instr.Reg unrelated) ();
  ignore (Builder.call f "u_take" [ Instr.Reg outer ]);
  Builder.ret f None;
  Module_ir.add_func m (Builder.finish f);
  let r = analyze m in
  Alcotest.(check int) "outer + inner, not the unrelated one" 2 (shared_count r)

let test_over_approximation_on_dead_branch () =
  (* The object only flows to U on a branch that never executes: dynamic
     profiling keeps it private, the static analysis must flag it (§6's
     imprecision, demonstrated). *)
  let m = Module_ir.create () in
  let u = Builder.create ~name:"u_take" ~crate:"clib" ~nparams:1 () in
  Builder.ret u None;
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let dead = Builder.new_block f in
  let live = Builder.new_block f in
  let p = Builder.alloc f (Instr.Imm 8) in
  let never = Builder.const f 0 in
  Builder.cond_br f (Instr.Reg never) dead live;
  Builder.switch_to f dead;
  ignore (Builder.call f "u_take" [ Instr.Reg p ]);
  Builder.br f live;
  Builder.switch_to f live;
  Builder.ret f None;
  Module_ir.add_func m (Builder.finish f);
  (* Static: flagged. *)
  Alcotest.(check int) "static flags the dead-branch flow" 1 (shared_count (analyze m));
  (* Dynamic: not recorded. *)
  let profile =
    ok (Toolchain.Pipeline.collect_profile m
          ~inputs:[ (fun i -> ignore (Toolchain.Interp.run i "main" [])) ])
  in
  Alcotest.(check int) "dynamic profile stays empty" 0 (Runtime.Profile.cardinal profile)

let test_indirect_calls_are_conservative () =
  (* The shared pointer reaches U only through a function pointer; the
     analysis must not miss it. *)
  let m = Module_ir.create () in
  let u = Builder.create ~name:"u_take" ~crate:"clib" ~nparams:1 () in
  Builder.ret u None;
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let p = Builder.alloc f (Instr.Imm 8) in
  let fp = Builder.func_addr f "u_take" in
  ignore (Builder.call_indirect f (Instr.Reg fp) [ Instr.Reg p ]);
  Builder.ret f None;
  Module_ir.add_func m (Builder.finish f);
  Alcotest.(check int) "indirect flow found" 1 (shared_count (analyze m))

let test_host_sink_toggle () =
  let m = Module_ir.create () in
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let p = Builder.alloc f (Instr.Imm 8) in
  ignore (Builder.call_host f "emit" [ Instr.Reg p ]);
  Builder.ret f None;
  Module_ir.add_func m (Builder.finish f);
  Alcotest.(check int) "hosts as sinks" 1 (shared_count (analyze m));
  Alcotest.(check int) "hosts trusted" 0 (shared_count (analyze ~hosts_are_sinks:false m))

let test_realloc_preserves_taint () =
  let m = Module_ir.create () in
  let u = Builder.create ~name:"u_take" ~crate:"clib" ~nparams:1 () in
  Builder.ret u None;
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let p = Builder.alloc f (Instr.Imm 8) in
  let q = Builder.realloc f ~addr:(Instr.Reg p) ~size:(Instr.Imm 128) in
  ignore (Builder.call f "u_take" [ Instr.Reg q ]);
  Builder.ret f None;
  Module_ir.add_func m (Builder.finish f);
  Alcotest.(check int) "original site flagged through realloc" 1 (shared_count (analyze m))

(* Soundness on executable programs: every site the dynamic profile finds,
   the static analysis finds too. *)
let test_static_superset_of_dynamic () =
  let programs =
    [ direct_share_module () ]
  in
  List.iter
    (fun m ->
      let static = analyze m in
      let dynamic =
        ok (Toolchain.Pipeline.collect_profile m
              ~inputs:[ (fun i -> ignore (Toolchain.Interp.run i "main" [])) ])
      in
      List.iter
        (fun site ->
          Alcotest.(check bool)
            (Printf.sprintf "static covers %s" (Runtime.Alloc_id.to_string site))
            true
            (Runtime.Alloc_id.Set.mem site static.Static_taint.shared))
        (Runtime.Profile.sites dynamic))
    programs

let test_static_build_runs_without_profiling () =
  (* E1 with no profiling stage at all: the statically partitioned build
     must run the shared write correctly and still protect private data. *)
  let m = Module_ir.create () in
  let u = Builder.create ~name:"u_write" ~crate:"clib" ~nparams:1 () in
  Builder.store u ~src:(Instr.Imm 1337) ~addr:(Instr.Reg 0) ();
  Builder.ret u None;
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let shared = Builder.alloc f (Instr.Imm 8) in
  let private_ = Builder.alloc f (Instr.Imm 8) in
  Builder.store f ~src:(Instr.Imm 42) ~addr:(Instr.Reg private_) ();
  ignore (Builder.call f "u_write" [ Instr.Reg shared ]);
  let a = Builder.load f (Instr.Reg shared) in
  let b = Builder.load f (Instr.Reg private_) in
  let s = Builder.binop f Instr.Add (Instr.Reg a) (Instr.Reg b) in
  Builder.ret f (Some (Instr.Reg s));
  Module_ir.add_func m (Builder.finish f);
  let build, result = ok (Toolchain.Pipeline.build_static ~mode:Pkru_safe.Config.Mpk m) in
  Alcotest.(check int) "one site statically shared" 1
    (Runtime.Alloc_id.Set.cardinal result.Static_taint.shared);
  Alcotest.(check int) "runs correctly" 1379 (Toolchain.Interp.run build.Toolchain.Pipeline.interp "main" []);
  Alcotest.(check int) "one site moved" 1 build.Toolchain.Pipeline.pass_stats.Passes.sites_moved

let suite =
  [
    Alcotest.test_case "direct flow" `Quick test_direct_flow;
    Alcotest.test_case "flow through helper + return" `Quick test_flow_through_helper_and_return;
    Alcotest.test_case "pointer-chasing closure" `Quick test_pointer_chasing_closure;
    Alcotest.test_case "over-approximation on dead branch" `Quick test_over_approximation_on_dead_branch;
    Alcotest.test_case "indirect calls conservative" `Quick test_indirect_calls_are_conservative;
    Alcotest.test_case "host sink toggle" `Quick test_host_sink_toggle;
    Alcotest.test_case "realloc preserves taint" `Quick test_realloc_preserves_taint;
    Alcotest.test_case "static superset of dynamic" `Quick test_static_superset_of_dynamic;
    Alcotest.test_case "static enforcement build" `Quick test_static_build_runs_without_profiling;
  ]
