(* Tests for the style system and the layout pass — the Servo-flavoured
   substrate: computed styles and boxes live in machine memory, and box
   data returned through the bindings is a shared cross-compartment
   flow. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let fresh ?profile mode =
  let env = ok (Pkru_safe.Env.create ?profile (Pkru_safe.Config.make mode)) in
  Browser.create env

(* --- Style parsing --- *)

let test_style_parse () =
  let s = Browser.Style.parse "display:inline;width:100;height:20;margin:4;padding:2" in
  Alcotest.(check bool) "inline" true (s.Browser.Style.display = Browser.Style.Inline);
  Alcotest.(check (option int)) "width" (Some 100) s.Browser.Style.width;
  Alcotest.(check (option int)) "height" (Some 20) s.Browser.Style.height;
  Alcotest.(check int) "margin" 4 s.Browser.Style.margin;
  Alcotest.(check int) "padding" 2 s.Browser.Style.padding

let test_style_error_recovery () =
  (* CSS error handling: unknown properties and junk are skipped. *)
  let s = Browser.Style.parse "frobnicate:9;width:abc;;display:block;width:50;margin:-3" in
  Alcotest.(check (option int)) "last valid width wins" (Some 50) s.Browser.Style.width;
  Alcotest.(check int) "negative margin rejected" 0 s.Browser.Style.margin;
  Alcotest.(check bool) "block" true (s.Browser.Style.display = Browser.Style.Block)

let test_style_to_string_roundtrip () =
  let cases =
    [ "display:inline;width:100"; "width:50;height:20;margin:4;padding:2"; "display:none"; "" ]
  in
  List.iter
    (fun text ->
      let s = Browser.Style.parse text in
      let s' = Browser.Style.parse (Browser.Style.to_string s) in
      Alcotest.(check bool) ("round-trip " ^ text) true (s = s'))
    cases

let test_style_record_machine_roundtrip () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
  let machine = Pkru_safe.Env.machine env in
  let s = Browser.Style.parse "display:inline;width:123;margin:7;padding:1" in
  let addr = Browser.Style.write_record env s in
  Alcotest.(check bool) "record in MT" true (Vmm.Layout.in_trusted addr);
  Alcotest.(check bool) "round-trip" true (Browser.Style.read_record machine addr = s)

(* --- Layout --- *)

let test_block_stacking () =
  let b = fresh Pkru_safe.Config.Base in
  let dom = Browser.dom b in
  Browser.load_page b
    {|<div style="height:30"></div><div style="height:50;margin:10"></div>|};
  let layout = Browser.Layout.reflow dom in
  (match Browser.Dom.query_tag dom "div" with
  | [ first; second ] ->
    let b1 = Option.get (Browser.Layout.box_of layout first) in
    let b2 = Option.get (Browser.Layout.box_of layout second) in
    Alcotest.(check int) "first at top" 0 b1.Browser.Layout.y;
    Alcotest.(check int) "first height" 30 b1.Browser.Layout.height;
    Alcotest.(check int) "second below first plus margin" 40 b2.Browser.Layout.y;
    Alcotest.(check int) "margins narrow the box" (800 - 20) b2.Browser.Layout.width;
    Alcotest.(check int) "document height stacks" (30 + 50 + 20) (Browser.Layout.document_height layout)
  | _ -> Alcotest.fail "two divs expected")

let test_nested_boxes_and_padding () =
  let b = fresh Pkru_safe.Config.Base in
  let dom = Browser.dom b in
  Browser.load_page b
    {|<div style="width:200;padding:10"><p style="height:40"></p></div>|};
  let layout = Browser.Layout.reflow dom in
  let div = List.hd (Browser.Dom.query_tag dom "div") in
  let p = List.hd (Browser.Dom.query_tag dom "p") in
  let outer = Option.get (Browser.Layout.box_of layout div) in
  let inner = Option.get (Browser.Layout.box_of layout p) in
  Alcotest.(check int) "outer width honoured" 200 outer.Browser.Layout.width;
  Alcotest.(check int) "outer wraps child + padding" (40 + 20) outer.Browser.Layout.height;
  Alcotest.(check int) "child starts after padding x" 10 inner.Browser.Layout.x;
  Alcotest.(check int) "child starts after padding y" 10 inner.Browser.Layout.y;
  Alcotest.(check int) "child fills content width" 180 inner.Browser.Layout.width

let test_text_line_model () =
  let b = fresh Pkru_safe.Config.Base in
  let dom = Browser.dom b in
  (* 90 chars -> 3 lines of 16 units. *)
  Browser.load_page b ("<p>" ^ String.make 90 'x' ^ "</p>");
  let layout = Browser.Layout.reflow dom in
  let p = List.hd (Browser.Dom.query_tag dom "p") in
  let box = Option.get (Browser.Layout.box_of layout p) in
  Alcotest.(check int) "three lines" 48 box.Browser.Layout.height

let test_display_none_subtree () =
  let b = fresh Pkru_safe.Config.Base in
  let dom = Browser.dom b in
  Browser.load_page b
    {|<div style="display:none"><p style="height:99"></p></div><div style="height:10"></div>|};
  let layout = Browser.Layout.reflow dom in
  let p = List.hd (Browser.Dom.query_tag dom "p") in
  Alcotest.(check bool) "hidden node has no box" true
    (Browser.Layout.box_of layout p = None);
  Alcotest.(check int) "hidden subtree takes no space" 10 (Browser.Layout.document_height layout)

let test_box_records_live_in_machine_memory () =
  let b = fresh Pkru_safe.Config.Base in
  let dom = Browser.dom b in
  Browser.load_page b {|<div style="height:5"></div>|};
  let layout = Browser.Layout.reflow dom in
  let div = List.hd (Browser.Dom.query_tag dom "div") in
  (match Browser.Layout.box_record_addr layout div with
  | Some addr -> Alcotest.(check bool) "box record in MT" true (Vmm.Layout.in_trusted addr)
  | None -> Alcotest.fail "no record");
  Alcotest.(check bool) "boxes for all laid-out nodes" true
    (Browser.Layout.boxes_computed layout >= 2)

(* --- Bindings + the compartment story --- *)

let layout_page = {|<div style="height:30"></div><div style="height:50"></div>|}

let layout_script =
  {|
var total = domReflow();
var divs = domQueryTag("div");
var box = domGetBox(divs[1]);
print(total + " / " + box);
|}

let test_layout_bindings () =
  let b = fresh Pkru_safe.Config.Base in
  Browser.load_page b layout_page;
  ignore (Browser.exec_script b layout_script);
  Alcotest.(check (list string)) "script sees layout" [ "80 / 0,30,800,50" ] (Browser.console b)

let test_layout_box_flow_profiles_and_enforces () =
  (* The box string is a shared allocation: profiling must find its site
     and the enforced build must serve it from MU. *)
  let prof_env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling)) in
  let pb = Browser.create prof_env in
  Browser.load_page pb layout_page;
  ignore (Browser.exec_script pb layout_script);
  let profile = Pkru_safe.Env.recorded_profile prof_env in
  Alcotest.(check bool) "box-buffer site profiled" true
    (Runtime.Profile.mem profile Browser.Sites.query_result);
  let b = fresh ~profile Pkru_safe.Config.Mpk in
  Browser.load_page b layout_page;
  ignore (Browser.exec_script b layout_script);
  Alcotest.(check (list string)) "enforced layout agrees" [ "80 / 0,30,800,50" ]
    (Browser.console b);
  (* Without the profile, reading the box buffer crashes. *)
  let denied = fresh ~profile:(Runtime.Profile.create ()) Pkru_safe.Config.Mpk in
  Browser.load_page denied layout_page;
  match Browser.exec_script denied layout_script with
  | exception Vmm.Fault.Unhandled _ -> ()
  | _ -> Alcotest.fail "unprofiled box read should crash"

let test_reflow_after_mutation () =
  let b = fresh Pkru_safe.Config.Base in
  Browser.load_page b {|<div style="height:10"></div>|};
  ignore
    (Browser.exec_script b
       {|
var before = domReflow();
var d = domCreateElement("div");
domSetAttribute(d, "style", "height:25");
domAppendChild(domRoot(), d);
var after = domReflow();
print(before + " -> " + after);
|});
  Alcotest.(check (list string)) "layout tracks the DOM" [ "10 -> 35" ] (Browser.console b)

let suite =
  [
    Alcotest.test_case "style parse" `Quick test_style_parse;
    Alcotest.test_case "style error recovery" `Quick test_style_error_recovery;
    Alcotest.test_case "style to_string round-trip" `Quick test_style_to_string_roundtrip;
    Alcotest.test_case "style record machine round-trip" `Quick test_style_record_machine_roundtrip;
    Alcotest.test_case "block stacking" `Quick test_block_stacking;
    Alcotest.test_case "nested boxes + padding" `Quick test_nested_boxes_and_padding;
    Alcotest.test_case "text line model" `Quick test_text_line_model;
    Alcotest.test_case "display:none" `Quick test_display_none_subtree;
    Alcotest.test_case "box records in machine memory" `Quick test_box_records_live_in_machine_memory;
    Alcotest.test_case "layout bindings" `Quick test_layout_bindings;
    Alcotest.test_case "box flow profiles + enforces" `Quick test_layout_box_flow_profiles_and_enforces;
    Alcotest.test_case "reflow after mutation" `Quick test_reflow_after_mutation;
  ]
