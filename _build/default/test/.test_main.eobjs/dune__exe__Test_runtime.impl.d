test/test_runtime.ml: Alcotest Allocators Filename Fun Gen Hashtbl List Mpk Option QCheck QCheck_alcotest Runtime Sim Sys Util Vmm
