test/test_pipeline_fuzz.ml: Alcotest Array Builder Gen Instr Ir List Module_ir Option Passes Pkru_safe QCheck QCheck_alcotest Runtime Static_taint Toolchain Util
