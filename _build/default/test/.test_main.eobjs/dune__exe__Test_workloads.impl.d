test/test_workloads.ml: Alcotest Browser Float List Pkru_safe Printf Runtime String Vmm Workloads
