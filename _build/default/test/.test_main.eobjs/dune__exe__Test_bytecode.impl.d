test/test_bytecode.ml: Alcotest Array Browser Engine Gen List Pkru_safe Printf QCheck QCheck_alcotest Runtime String Util Vmm Workloads
