test/test_edge_cases.ml: Alcotest Allocators Browser Builder Engine Instr Ir List Module_ir Mpk Option Pkru_safe Runtime Sim String Toolchain Util Vmm
