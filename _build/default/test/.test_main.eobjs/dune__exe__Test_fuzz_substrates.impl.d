test/test_fuzz_substrates.ml: Alcotest Array Browser Bytes Char Engine Gen Int64 List Mpk Pkru_safe Printf QCheck QCheck_alcotest Runtime Sim String Util Vmm
