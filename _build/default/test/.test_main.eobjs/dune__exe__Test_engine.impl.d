test/test_engine.ml: Alcotest Browser Engine Float List Pkru_safe Printf Vmm
