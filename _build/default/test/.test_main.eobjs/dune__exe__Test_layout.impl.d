test/test_layout.ml: Alcotest Browser List Option Pkru_safe Runtime String Vmm
