test/test_util.ml: Alcotest Array Float Hashtbl List QCheck QCheck_alcotest String Util
