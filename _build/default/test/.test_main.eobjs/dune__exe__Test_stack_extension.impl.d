test/test_stack_extension.ml: Alcotest Allocators Builder Instr Ir Ir_text Module_ir Option Passes Pkru_safe Printf Runtime Static_taint Toolchain Vmm
