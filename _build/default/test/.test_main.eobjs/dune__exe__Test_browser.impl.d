test/test_browser.ml: Alcotest Allocators Browser List Option Pkru_safe Printf Runtime Vmm
