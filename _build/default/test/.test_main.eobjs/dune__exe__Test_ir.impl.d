test/test_ir.ml: Alcotest Builder Format Func Instr Ir List Module_ir Option Passes Printf Runtime String Verifier
