test/test_ir_text.ml: Alcotest Func Instr Ir Ir_text List Module_ir Passes Pkru_safe Str_split Toolchain Verifier
