test/test_corpus.ml: Alcotest Array Browser Filename Fun List Pkru_safe Runtime Sys Util
