test/test_toolchain.ml: Alcotest Builder Instr Ir Module_ir Option Passes Pkru_safe Printf Runtime Toolchain Vmm
