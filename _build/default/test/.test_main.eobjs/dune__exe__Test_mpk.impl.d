test/test_mpk.ml: Alcotest Fun List Mpk Printf QCheck QCheck_alcotest
