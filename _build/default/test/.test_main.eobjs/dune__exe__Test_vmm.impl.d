test/test_vmm.ml: Alcotest Allocators Gen Mpk QCheck QCheck_alcotest Sim String Vmm
