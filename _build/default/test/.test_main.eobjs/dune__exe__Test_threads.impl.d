test/test_threads.ml: Alcotest Browser Mpk Pkru_safe Runtime Sim Vmm
