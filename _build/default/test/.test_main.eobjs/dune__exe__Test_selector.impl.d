test/test_selector.ml: Alcotest Browser List Option Pkru_safe
