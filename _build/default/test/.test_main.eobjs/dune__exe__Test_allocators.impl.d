test/test_allocators.ml: Alcotest Allocators Array Dlmalloc_model Gen Hashtbl Jemalloc_model List Mpk Option Pkalloc Pool Printf QCheck QCheck_alcotest Sim Size_class Util Vmm
