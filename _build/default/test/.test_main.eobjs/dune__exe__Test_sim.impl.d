test/test_sim.ml: Alcotest Bytes Float Int64 List Mpk QCheck QCheck_alcotest Sim Vmm
