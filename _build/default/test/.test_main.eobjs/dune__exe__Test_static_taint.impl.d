test/test_static_taint.ml: Alcotest Builder Instr Ir List Module_ir Option Passes Pkru_safe Printf Runtime Static_taint Toolchain
