test/test_core.ml: Alcotest Allocators Pkru_safe Printf Runtime Sim Vmm
