(* Property-based integration tests of the whole toolchain: random
   two-crate programs are compiled into base and (profiled) enforcement
   builds, which must agree on results; the static analysis must cover
   everything the dynamic profile finds; and the number of moved sites
   must equal the number of distinct allocations that really crossed the
   boundary. *)

open Ir

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

type plan = {
  n_allocs : int;
  reads_by_u : bool array;      (* alloc i is passed to an untrusted reader *)
  via_helper : bool array;      (* ... through a trusted forwarding helper *)
  chained : (int * int) option; (* store &alloc_b into alloc_a; U derefs twice *)
}

let random_plan rng =
  let n_allocs = 2 + Util.Rng.int rng 4 in
  let reads_by_u = Array.init n_allocs (fun _ -> Util.Rng.bool rng) in
  let via_helper = Array.init n_allocs (fun _ -> Util.Rng.bool rng) in
  let chained =
    if n_allocs >= 2 && Util.Rng.int rng 3 = 0 then
      let a = Util.Rng.int rng n_allocs in
      let b = (a + 1 + Util.Rng.int rng (n_allocs - 1)) mod n_allocs in
      Some (a, b)
    else None
  in
  { n_allocs; reads_by_u; via_helper; chained }

(* Build the program for a plan.  main allocates n objects with known
   values, routes some of them to untrusted readers (directly or through a
   helper), optionally builds an A->B pointer chain handed to a
   double-dereferencing untrusted function, and returns a checksum. *)
let program_of_plan plan =
  let m = Module_ir.create () in
  (* clib.u_read(p): returns *p. *)
  let u = Builder.create ~name:"u_read" ~crate:"clib" ~nparams:1 () in
  let v = Builder.load u (Instr.Reg 0) in
  Builder.ret u (Some (Instr.Reg v));
  Module_ir.add_func m (Builder.finish u);
  (* clib.u_deref2(p): returns **p. *)
  let u2 = Builder.create ~name:"u_deref2" ~crate:"clib" ~nparams:1 () in
  let inner = Builder.load u2 (Instr.Reg 0) in
  let v2 = Builder.load u2 (Instr.Reg inner) in
  Builder.ret u2 (Some (Instr.Reg v2));
  Module_ir.add_func m (Builder.finish u2);
  Module_ir.mark_untrusted m "clib";
  (* app.forward(p): helper hop. *)
  let fwd = Builder.create ~name:"forward" ~crate:"app" ~nparams:1 () in
  let r = Builder.call fwd ~ret:true "u_read" [ Instr.Reg 0 ] in
  Builder.ret fwd (Some (Instr.Reg (Option.get r)));
  Module_ir.add_func m (Builder.finish fwd);
  (* app.main. *)
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let allocs =
    Array.init plan.n_allocs (fun i ->
        let p = Builder.alloc f (Instr.Imm (16 + (16 * i))) in
        Builder.store f ~src:(Instr.Imm (100 + (7 * i))) ~addr:(Instr.Reg p) ();
        p)
  in
  let sum = ref (Builder.const f 0) in
  let add value = sum := Builder.binop f Instr.Add (Instr.Reg !sum) (Instr.Reg value) in
  Array.iteri
    (fun i p ->
      if plan.reads_by_u.(i) then begin
        let callee = if plan.via_helper.(i) then "forward" else "u_read" in
        let r = Builder.call f ~ret:true callee [ Instr.Reg p ] in
        add (Option.get r)
      end)
    allocs;
  (match plan.chained with
  | Some (a, b) ->
    (* a's payload becomes a pointer to b; U chases it. *)
    Builder.store f ~src:(Instr.Reg allocs.(b)) ~addr:(Instr.Reg allocs.(a)) ();
    let r = Builder.call f ~ret:true "u_deref2" [ Instr.Reg allocs.(a) ] in
    add (Option.get r)
  | None -> ());
  (* main also loads every object itself.  The chained object holds a raw
     pointer whose numeric value depends on the heap layout, so main
     dereferences it instead of summing the address. *)
  let chained_holder =
    match plan.chained with
    | Some (a, _) -> Some a
    | None -> None
  in
  Array.iteri
    (fun i p ->
      let v = Builder.load f (Instr.Reg p) in
      if chained_holder = Some i then begin
        let through = Builder.load f (Instr.Reg v) in
        add through
      end
      else add v)
    allocs;
  Builder.ret f (Some (Instr.Reg !sum));
  Module_ir.add_func m (Builder.finish f);
  m

let expected_shared plan =
  let shared = Array.copy plan.reads_by_u in
  (match plan.chained with
  | Some (a, b) ->
    shared.(a) <- true;
    shared.(b) <- true
  | None -> ());
  Array.fold_left (fun acc flag -> if flag then acc + 1 else acc) 0 shared

let run_main build = Toolchain.Interp.run build.Toolchain.Pipeline.interp "main" []

let prop_pipeline_equivalence =
  QCheck.Test.make ~count:40 ~name:"fuzz: base and enforced builds agree"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      let plan = random_plan rng in
      let source = program_of_plan plan in
      let base = ok (Toolchain.Pipeline.build ~mode:Pkru_safe.Config.Base source) in
      let expected = run_main base in
      let enforced =
        ok (Toolchain.Pipeline.full_cycle source
              ~inputs:[ (fun interp -> ignore (Toolchain.Interp.run interp "main" [])) ])
      in
      let moved = enforced.Toolchain.Pipeline.pass_stats.Passes.sites_moved in
      run_main enforced = expected && moved = expected_shared plan)

let prop_static_covers_dynamic =
  QCheck.Test.make ~count:40 ~name:"fuzz: static analysis covers the dynamic profile"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create (seed + 77) in
      let plan = random_plan rng in
      let source = program_of_plan plan in
      let dynamic =
        ok (Toolchain.Pipeline.collect_profile source
              ~inputs:[ (fun interp -> ignore (Toolchain.Interp.run interp "main" [])) ])
      in
      let analyzed = Module_ir.copy source in
      ignore (Passes.assign_alloc_ids analyzed);
      let static = Static_taint.analyze analyzed in
      List.for_all
        (fun site -> Runtime.Alloc_id.Set.mem site static.Static_taint.shared)
        (Runtime.Profile.sites dynamic))

let prop_static_build_agrees =
  QCheck.Test.make ~count:25 ~name:"fuzz: statically partitioned build agrees with base"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create (seed + 4242) in
      let plan = random_plan rng in
      let source = program_of_plan plan in
      let base = ok (Toolchain.Pipeline.build ~mode:Pkru_safe.Config.Base source) in
      let static_build, _ =
        ok (Toolchain.Pipeline.build_static ~mode:Pkru_safe.Config.Mpk source)
      in
      run_main static_build = run_main base)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_pipeline_equivalence;
    QCheck_alcotest.to_alcotest prop_static_covers_dynamic;
    QCheck_alcotest.to_alcotest prop_static_build_agrees;
  ]
