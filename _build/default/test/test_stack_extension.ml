(* Tests for the §6 stack-protection extension: T's stack is part of MT,
   stack slots are provenance-tracked like heap objects, and profiled
   cross-compartment stack flows are demoted to frame-lifetime MU heap
   allocations — "no methodology change over our approach with heap
   data". *)

open Ir

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

(* main puts a value in a stack slot and shares it with U; a second stack
   slot stays private. *)
let stack_share_module () =
  let m = Module_ir.create () in
  let u = Builder.create ~name:"u_read" ~crate:"clib" ~nparams:1 () in
  let v = Builder.load u (Instr.Reg 0) in
  Builder.ret u (Some (Instr.Reg v));
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let shared = Builder.alloca f (Instr.Imm 16) in
  let private_ = Builder.alloca f (Instr.Imm 16) in
  Builder.store f ~src:(Instr.Imm 500) ~addr:(Instr.Reg shared) ();
  Builder.store f ~src:(Instr.Imm 42) ~addr:(Instr.Reg private_) ();
  let r = Builder.call f ~ret:true "u_read" [ Instr.Reg shared ] in
  let w = Builder.load f (Instr.Reg private_) in
  let sum = Builder.binop f Instr.Add (Instr.Reg (Option.get r)) (Instr.Reg w) in
  Builder.ret f (Some (Instr.Reg sum));
  Module_ir.add_func m (Builder.finish f);
  m

let test_stack_slots_work_in_base () =
  let b = ok (Toolchain.Pipeline.build ~mode:Pkru_safe.Config.Base (stack_share_module ())) in
  Alcotest.(check int) "500 + 42" 542 (Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" [])

let test_stack_frames_unwind () =
  (* Two sequential calls must reuse the same stack addresses: the frame
     pointer is restored on return. *)
  let m = Module_ir.create () in
  let g = Builder.create ~name:"probe" ~crate:"app" ~nparams:0 () in
  let slot = Builder.alloca g (Instr.Imm 32) in
  Builder.ret g (Some (Instr.Reg slot));
  Module_ir.add_func m (Builder.finish g);
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let a = Builder.call f ~ret:true "probe" [] in
  let b = Builder.call f ~ret:true "probe" [] in
  let same = Builder.binop f Instr.Eq (Instr.Reg (Option.get a)) (Instr.Reg (Option.get b)) in
  Builder.ret f (Some (Instr.Reg same));
  Module_ir.add_func m (Builder.finish f);
  let build = ok (Toolchain.Pipeline.build ~mode:Pkru_safe.Config.Base m) in
  Alcotest.(check int) "same address" 1 (Toolchain.Interp.run build.Toolchain.Pipeline.interp "main" [])

let test_recursion_gets_distinct_frames () =
  let m = Module_ir.create () in
  (* rec(n): alloca a slot, store n, recurse, and verify our slot still
     holds n afterwards (frames must not alias). *)
  let g = Builder.create ~name:"recurse" ~crate:"app" ~nparams:1 () in
  let base_b = Builder.new_block g in
  let rec_b = Builder.new_block g in
  let slot = Builder.alloca g (Instr.Imm 16) in
  Builder.store g ~src:(Instr.Reg 0) ~addr:(Instr.Reg slot) ();
  let cond = Builder.binop g Instr.Le (Instr.Reg 0) (Instr.Imm 0) in
  Builder.cond_br g (Instr.Reg cond) base_b rec_b;
  Builder.switch_to g base_b;
  Builder.ret g (Some (Instr.Imm 0));
  Builder.switch_to g rec_b;
  let n1 = Builder.binop g Instr.Sub (Instr.Reg 0) (Instr.Imm 1) in
  let sub = Builder.call g ~ret:true "recurse" [ Instr.Reg n1 ] in
  let mine = Builder.load g (Instr.Reg slot) in
  let okv = Builder.binop g Instr.Eq (Instr.Reg mine) (Instr.Reg 0) in
  let acc = Builder.binop g Instr.Add (Instr.Reg (Option.get sub)) (Instr.Reg okv) in
  Builder.ret g (Some (Instr.Reg acc));
  Module_ir.add_func m (Builder.finish g);
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let r = Builder.call f ~ret:true "recurse" [ Instr.Imm 10 ] in
  Builder.ret f (Some (Instr.Reg (Option.get r)));
  Module_ir.add_func m (Builder.finish f);
  let build = ok (Toolchain.Pipeline.build ~mode:Pkru_safe.Config.Base m) in
  (* Every of the 10 recursive frames found its own value intact. *)
  Alcotest.(check int) "frames disjoint" 10
    (Toolchain.Interp.run build.Toolchain.Pipeline.interp "main" [])

let test_enforcement_blocks_unprofiled_stack_access () =
  let b =
    ok (Toolchain.Pipeline.build ~profile:(Runtime.Profile.create ()) ~mode:Pkru_safe.Config.Mpk
          (stack_share_module ()))
  in
  match Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" [] with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation _; _ } -> ()
  | v -> Alcotest.fail (Printf.sprintf "U read of MT stack slot should crash, got %d" v)

let test_profiling_discovers_and_demotes_stack_slot () =
  let source = stack_share_module () in
  let profile =
    ok (Toolchain.Pipeline.collect_profile source
          ~inputs:[ (fun i -> ignore (Toolchain.Interp.run i "main" [])) ])
  in
  Alcotest.(check int) "exactly the shared slot profiled" 1 (Runtime.Profile.cardinal profile);
  let b = ok (Toolchain.Pipeline.build ~profile ~mode:Pkru_safe.Config.Mpk source) in
  Alcotest.(check int) "enforced run works" 542
    (Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" []);
  Alcotest.(check int) "one site moved" 1 b.Toolchain.Pipeline.pass_stats.Passes.sites_moved;
  (* The demoted slot really is heap-allocated in MU and freed on return:
     running main twice keeps MU live bytes flat. *)
  let pk = Pkru_safe.Env.pkalloc b.Toolchain.Pipeline.env in
  let live_before =
    Allocators.Alloc_stats.live_bytes (Allocators.Pkalloc.untrusted_stats pk)
  in
  ignore (Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" []);
  let live_after =
    Allocators.Alloc_stats.live_bytes (Allocators.Pkalloc.untrusted_stats pk)
  in
  Alcotest.(check int) "frame-lifetime MU allocation freed" live_before live_after

let test_stack_overflow_traps () =
  let m = Module_ir.create () in
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let loop = Builder.new_block f in
  Builder.br f loop;
  Builder.switch_to f loop;
  ignore (Builder.alloca f (Instr.Imm 1_000_000));
  Builder.br f loop;
  Module_ir.add_func m (Builder.finish f);
  let b = ok (Toolchain.Pipeline.build ~mode:Pkru_safe.Config.Base m) in
  Alcotest.(check bool) "overflow trapped" true
    (match Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" [] with
    | exception Toolchain.Interp.Trap msg -> msg = "stack overflow"
    | _ -> false)

let test_static_taint_covers_alloca () =
  let m = Module_ir.copy (stack_share_module ()) in
  ignore (Passes.assign_alloc_ids m);
  let result = Static_taint.analyze m in
  Alcotest.(check int) "the shared stack slot is flagged" 1
    (Runtime.Alloc_id.Set.cardinal result.Static_taint.shared)

let test_ir_text_roundtrip_alloca () =
  let text =
    {|crate app
func @main() ; crate=app
^0:
  %r0 = alloca(32) ; alloc<-2:-2:-2>
  %r1 = alloca_shared(16) ; alloc<-2:-2:-2> [instrumented]
  store.8 7 -> [%r0]
  %r2 = load.8 [%r0]
  ret %r2
|}
  in
  let m = Ir_text.of_string text in
  let once = Ir_text.to_string m in
  Alcotest.(check string) "stable" once (Ir_text.to_string (Ir_text.of_string once));
  let b = ok (Toolchain.Pipeline.build ~mode:Pkru_safe.Config.Base m) in
  Alcotest.(check int) "runs" 7 (Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" [])

let suite =
  [
    Alcotest.test_case "stack slots in base" `Quick test_stack_slots_work_in_base;
    Alcotest.test_case "frames unwind" `Quick test_stack_frames_unwind;
    Alcotest.test_case "recursion frames disjoint" `Quick test_recursion_gets_distinct_frames;
    Alcotest.test_case "enforcement blocks stack access" `Quick test_enforcement_blocks_unprofiled_stack_access;
    Alcotest.test_case "profile + demote stack slot" `Quick test_profiling_discovers_and_demotes_stack_slot;
    Alcotest.test_case "stack overflow traps" `Quick test_stack_overflow_traps;
    Alcotest.test_case "static taint covers alloca" `Quick test_static_taint_covers_alloca;
    Alcotest.test_case "ir-text round-trip" `Quick test_ir_text_roundtrip_alloca;
  ]
