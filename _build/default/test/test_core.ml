(* End-to-end tests of the core environment: the four build modes and the
   full profile -> enforce cycle on machine memory. *)

let site = Runtime.Alloc_id.synthetic

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let env ?profile mode = ok (Pkru_safe.Env.create ?profile (Pkru_safe.Config.make mode))

let test_base_mode_everything_trusted_pool_no_gates () =
  let e = env Pkru_safe.Config.Base in
  let m = Pkru_safe.Env.machine e in
  let a = Pkru_safe.Env.alloc e ~site:(site 1) 64 in
  Alcotest.(check bool) "fast-pool allocation" true (Vmm.Layout.in_trusted a);
  Pkru_safe.Env.ffi_call e (fun () ->
      (* No gates: U code still sees everything in a base build. *)
      Sim.Machine.write_u64 m a 7);
  Alcotest.(check int) "no transitions" 0 (Pkru_safe.Env.transitions e);
  Alcotest.(check int) "value written" 7 (Sim.Machine.read_u64 m a)

let test_profiling_records_cross_compartment_flow () =
  let e = env Pkru_safe.Config.Profiling in
  let m = Pkru_safe.Env.machine e in
  let shared = Pkru_safe.Env.alloc e ~site:(site 1) 64 in
  let private_ = Pkru_safe.Env.alloc e ~site:(site 2) 64 in
  Sim.Machine.write_u64 m shared 123;
  Sim.Machine.write_u64 m private_ 456;
  Pkru_safe.Env.ffi_call e (fun () -> ignore (Sim.Machine.read_u64 m shared));
  let p = Pkru_safe.Env.recorded_profile e in
  Alcotest.(check bool) "shared site recorded" true (Runtime.Profile.mem p (site 1));
  Alcotest.(check bool) "private site not recorded" false (Runtime.Profile.mem p (site 2))

let test_profiling_tracks_realloc_provenance () =
  let e = env Pkru_safe.Config.Profiling in
  let m = Pkru_safe.Env.machine e in
  let a = Pkru_safe.Env.alloc e ~site:(site 9) 32 in
  let b = Pkru_safe.Env.realloc e a 4096 in
  Alcotest.(check bool) "moved" true (a <> b);
  Pkru_safe.Env.ffi_call e (fun () -> ignore (Sim.Machine.read_u64 m b));
  Alcotest.(check bool) "original site recorded through realloc" true
    (Runtime.Profile.mem (Pkru_safe.Env.recorded_profile e) (site 9))

let test_enforcement_blocks_unprofiled_access () =
  let empty = Runtime.Profile.create () in
  let e = env ~profile:empty Pkru_safe.Config.Mpk in
  let m = Pkru_safe.Env.machine e in
  let a = Pkru_safe.Env.alloc e ~site:(site 1) 64 in
  Sim.Machine.write_u64 m a 5;
  match Pkru_safe.Env.ffi_call e (fun () -> Sim.Machine.read_u64 m a) with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation _; _ } -> ()
  | v -> Alcotest.fail (Printf.sprintf "read should crash, got %d" v)

let test_full_profile_then_enforce_cycle () =
  (* Stage 1: profile a program that shares site 1 but not site 2. *)
  let prof_env = env Pkru_safe.Config.Profiling in
  let m = Pkru_safe.Env.machine prof_env in
  let run env m =
    let shared = Pkru_safe.Env.alloc env ~site:(site 1) 64 in
    let private_ = Pkru_safe.Env.alloc env ~site:(site 2) 64 in
    Sim.Machine.write_u64 m shared 1000;
    Sim.Machine.write_u64 m private_ 2000;
    let got = Pkru_safe.Env.ffi_call env (fun () -> Sim.Machine.read_u64 m shared) in
    (got, shared, private_)
  in
  let got, _, _ = run prof_env m in
  Alcotest.(check int) "profiling run sees data" 1000 got;
  let profile = Pkru_safe.Env.recorded_profile prof_env in
  (* Stage 2: rebuild in enforcement mode with that profile. *)
  let mpk_env = env ~profile Pkru_safe.Config.Mpk in
  let m2 = Pkru_safe.Env.machine mpk_env in
  let got2, shared2, private2 = run mpk_env m2 in
  Alcotest.(check int) "enforced run still works" 1000 got2;
  Alcotest.(check bool) "shared site now in MU" true (Vmm.Layout.in_untrusted shared2);
  Alcotest.(check bool) "private site still in MT" true (Vmm.Layout.in_trusted private2);
  (* And U still cannot touch the private object. *)
  (match Pkru_safe.Env.ffi_call mpk_env (fun () -> Sim.Machine.read_u64 m2 private2) with
  | exception Vmm.Fault.Unhandled _ -> ()
  | _ -> Alcotest.fail "private data leaked");
  Alcotest.(check int) "sites used" 2 (Pkru_safe.Env.sites_used mpk_env);
  Alcotest.(check int) "sites moved" 1 (Pkru_safe.Env.sites_moved mpk_env)

let test_alloc_mode_splits_without_gates () =
  let profile = Runtime.Profile.create () in
  Runtime.Profile.record profile (site 1);
  let e = env ~profile Pkru_safe.Config.Alloc in
  let a = Pkru_safe.Env.alloc e ~site:(site 1) 64 in
  let b = Pkru_safe.Env.alloc e ~site:(site 2) 64 in
  Alcotest.(check bool) "profiled site in MU" true (Vmm.Layout.in_untrusted a);
  Alcotest.(check bool) "other site in MT" true (Vmm.Layout.in_trusted b);
  Pkru_safe.Env.ffi_call e (fun () -> ());
  Alcotest.(check int) "no gates in alloc config" 0 (Pkru_safe.Env.transitions e)

let test_callback_reopens_trusted_memory () =
  let e = env ~profile:(Runtime.Profile.create ()) Pkru_safe.Config.Mpk in
  let m = Pkru_safe.Env.machine e in
  let private_ = Pkru_safe.Env.alloc e ~site:(site 1) 64 in
  Sim.Machine.write_u64 m private_ 31337;
  let via_callback = ref 0 in
  Pkru_safe.Env.ffi_call e (fun () ->
      (* U calls back into an exported T API, which may touch MT. *)
      Pkru_safe.Env.callback e (fun () -> via_callback := Sim.Machine.read_u64 m private_));
  Alcotest.(check int) "callback read MT" 31337 !via_callback;
  Alcotest.(check int) "four transitions" 4 (Pkru_safe.Env.transitions e)

let test_dealloc_dispatch_both_pools () =
  let profile = Runtime.Profile.create () in
  Runtime.Profile.record profile (site 1);
  let e = env ~profile Pkru_safe.Config.Mpk in
  let a = Pkru_safe.Env.alloc e ~site:(site 1) 128 in
  let b = Pkru_safe.Env.alloc e ~site:(site 2) 128 in
  Pkru_safe.Env.dealloc e a;
  Pkru_safe.Env.dealloc e b;
  let stats_mu = Allocators.Pkalloc.untrusted_stats (Pkru_safe.Env.pkalloc e) in
  let stats_mt = Allocators.Pkalloc.trusted_stats (Pkru_safe.Env.pkalloc e) in
  Alcotest.(check int) "MU frees" 1 stats_mu.Allocators.Alloc_stats.frees;
  Alcotest.(check int) "MT frees" 1 stats_mt.Allocators.Alloc_stats.frees

let test_realloc_keeps_pool_in_enforcement () =
  let profile = Runtime.Profile.create () in
  Runtime.Profile.record profile (site 1);
  let e = env ~profile Pkru_safe.Config.Mpk in
  let m = Pkru_safe.Env.machine e in
  let a = Pkru_safe.Env.alloc e ~site:(site 1) 32 in
  Sim.Machine.write_u64 m a 11;
  let a' = Pkru_safe.Env.realloc e a 8192 in
  Alcotest.(check bool) "still MU" true (Vmm.Layout.in_untrusted a');
  Alcotest.(check int) "payload copied" 11 (Sim.Machine.read_u64 m a');
  (* U can use the reallocated object without faulting. *)
  let v = Pkru_safe.Env.ffi_call e (fun () -> Sim.Machine.read_u64 m a') in
  Alcotest.(check int) "U reads realloc'd shared object" 11 v

let test_mode_flags () =
  Alcotest.(check bool) "base no gates" false
    (Pkru_safe.Config.gates_active (Pkru_safe.Config.make Pkru_safe.Config.Base));
  Alcotest.(check bool) "mpk gates" true
    (Pkru_safe.Config.gates_active (Pkru_safe.Config.make Pkru_safe.Config.Mpk));
  Alcotest.(check bool) "profiling unsplit" false
    (Pkru_safe.Config.split_heap (Pkru_safe.Config.make Pkru_safe.Config.Profiling));
  Alcotest.(check bool) "alloc split" true
    (Pkru_safe.Config.split_heap (Pkru_safe.Config.make Pkru_safe.Config.Alloc))

let suite =
  [
    Alcotest.test_case "base mode" `Quick test_base_mode_everything_trusted_pool_no_gates;
    Alcotest.test_case "profiling records flow" `Quick test_profiling_records_cross_compartment_flow;
    Alcotest.test_case "profiling tracks realloc" `Quick test_profiling_tracks_realloc_provenance;
    Alcotest.test_case "enforcement blocks unprofiled" `Quick test_enforcement_blocks_unprofiled_access;
    Alcotest.test_case "profile -> enforce cycle" `Quick test_full_profile_then_enforce_cycle;
    Alcotest.test_case "alloc mode splits, no gates" `Quick test_alloc_mode_splits_without_gates;
    Alcotest.test_case "callback reopens MT" `Quick test_callback_reopens_trusted_memory;
    Alcotest.test_case "dealloc dispatch" `Quick test_dealloc_dispatch_both_pools;
    Alcotest.test_case "realloc keeps pool" `Quick test_realloc_keeps_pool_in_enforcement;
    Alcotest.test_case "mode flags" `Quick test_mode_flags;
  ]
