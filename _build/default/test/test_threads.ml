(* Tests for multi-threaded compartmentalization: per-hart PKRU, per-thread
   compartment stacks, and the profiler's per-thread single-step state —
   the "multi-threaded mixed-language environments" claim of the paper. *)

let site = Runtime.Alloc_id.synthetic

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let env ?profile mode = ok (Pkru_safe.Env.create ?profile (Pkru_safe.Config.make mode))

let test_harts_have_independent_pkru () =
  let m = Sim.Machine.create () in
  let worker = Sim.Machine.spawn_cpu m in
  Alcotest.(check int) "ids distinct" 1 worker.Sim.Cpu.id;
  (* Restrict the boot hart; the worker still has the kernel default. *)
  m.Sim.Machine.cpu.Sim.Cpu.pkru <- Mpk.Pkru.all_disabled_except [];
  Sim.Machine.run_on m worker (fun () ->
      Alcotest.(check bool) "worker unrestricted" true
        (Mpk.Pkru.equal m.Sim.Machine.cpu.Sim.Cpu.pkru Mpk.Pkru.all_enabled));
  Alcotest.(check bool) "boot hart still restricted" false
    (Mpk.Pkru.equal m.Sim.Machine.cpu.Sim.Cpu.pkru Mpk.Pkru.all_enabled)

let test_run_on_restores_on_exception () =
  let m = Sim.Machine.create () in
  let boot = m.Sim.Machine.cpu in
  let worker = Sim.Machine.spawn_cpu m in
  (try Sim.Machine.run_on m worker (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "current hart restored" true (m.Sim.Machine.cpu == boot)

let test_cycles_sum_over_harts () =
  let m = Sim.Machine.create () in
  let worker = Sim.Machine.spawn_cpu m in
  Sim.Machine.charge m 10;
  Sim.Machine.run_on m worker (fun () -> Sim.Machine.charge m 32);
  Alcotest.(check int) "total" 42 (Sim.Machine.cycles m)

let test_interleaved_compartment_stacks () =
  (* Thread A parks inside the untrusted compartment while thread B does a
     complete round trip; A's stack and PKRU are untouched. *)
  let e = env ~profile:(Runtime.Profile.create ()) Pkru_safe.Config.Mpk in
  let m = Pkru_safe.Env.machine e in
  let thread_b = Pkru_safe.Env.spawn_thread e in
  let gate_a = Pkru_safe.Env.gate e in
  Runtime.Gate.enter_untrusted gate_a;
  Alcotest.(check string) "A is untrusted" "untrusted"
    (Runtime.Compartment.to_string (Runtime.Gate.current gate_a));
  Pkru_safe.Env.run_on_thread e thread_b (fun () ->
      let gate_b = Pkru_safe.Env.gate e in
      Alcotest.(check bool) "B has its own gate" true (not (gate_b == gate_a));
      Alcotest.(check string) "B starts trusted" "trusted"
        (Runtime.Compartment.to_string (Runtime.Gate.current gate_b));
      Runtime.Gate.call_untrusted gate_b (fun () ->
          Alcotest.(check string) "B gated" "untrusted"
            (Runtime.Compartment.to_string (Runtime.Gate.current gate_b)));
      Alcotest.(check int) "B's stack drained" 0 (Runtime.Comp_stack.depth (Runtime.Gate.stack gate_b)));
  (* Back on A: still parked in U with one stack entry. *)
  Alcotest.(check string) "A still untrusted" "untrusted"
    (Runtime.Compartment.to_string (Runtime.Gate.current gate_a));
  Alcotest.(check int) "A's stack intact" 1 (Runtime.Comp_stack.depth (Runtime.Gate.stack gate_a));
  Runtime.Gate.exit_untrusted gate_a;
  Alcotest.(check int) "four transitions total" 4 (Pkru_safe.Env.transitions e);
  ignore m

let test_enforcement_is_per_thread () =
  (* A trusted object is inaccessible to a thread running in U even while
     another thread (in T) is using it. *)
  let e = env ~profile:(Runtime.Profile.create ()) Pkru_safe.Config.Mpk in
  let m = Pkru_safe.Env.machine e in
  let addr = Pkru_safe.Env.alloc e ~site:(site 1) 64 in
  Sim.Machine.write_u64 m addr 7;
  let worker = Pkru_safe.Env.spawn_thread e in
  Pkru_safe.Env.run_on_thread e worker (fun () ->
      Pkru_safe.Env.ffi_call e (fun () ->
          match Sim.Machine.read_u64 m addr with
          | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation _; _ } -> ()
          | _ -> Alcotest.fail "worker in U must not read MT"));
  (* Main thread (T view) reads it concurrently without issue. *)
  Alcotest.(check int) "main thread reads" 7 (Sim.Machine.read_u64 m addr)

let test_profiler_single_steps_per_thread () =
  (* Two threads fault on different objects; each single-step restores its
     own thread's restricted view and both sites are recorded. *)
  let e = env Pkru_safe.Config.Profiling in
  let m = Pkru_safe.Env.machine e in
  let obj_a = Pkru_safe.Env.alloc e ~site:(site 1) 64 in
  let obj_b = Pkru_safe.Env.alloc e ~site:(site 2) 64 in
  Sim.Machine.write_u64 m obj_a 1;
  Sim.Machine.write_u64 m obj_b 2;
  let worker = Pkru_safe.Env.spawn_thread e in
  (* Main thread enters U and faults on obj_a... *)
  let gate_main = Pkru_safe.Env.gate e in
  Runtime.Gate.enter_untrusted gate_main;
  ignore (Sim.Machine.read_u64 m obj_a);
  (* ...then, still inside U on the main thread, the worker faults too. *)
  Pkru_safe.Env.run_on_thread e worker (fun () ->
      Pkru_safe.Env.ffi_call e (fun () -> ignore (Sim.Machine.read_u64 m obj_b)));
  (* Main thread's restricted view survived the worker's single step. *)
  Alcotest.(check string) "main still untrusted" "untrusted"
    (Runtime.Compartment.to_string (Runtime.Gate.current gate_main));
  Runtime.Gate.exit_untrusted gate_main;
  let profile = Pkru_safe.Env.recorded_profile e in
  Alcotest.(check bool) "site 1 recorded" true (Runtime.Profile.mem profile (site 1));
  Alcotest.(check bool) "site 2 recorded" true (Runtime.Profile.mem profile (site 2))

let test_two_browsers_two_threads () =
  (* Full-stack sanity: two script engines driven from two threads of the
     same enforced process, interleaved. *)
  let prof_env = env Pkru_safe.Config.Profiling in
  let pb = Browser.create prof_env in
  Browser.load_page pb {|<div data="x">t</div>|};
  ignore (Browser.exec_script pb
            {|var d = domQueryTag("div")[0]; domGetAttribute(d, "data").charCodeAt(0);|});
  let profile = Pkru_safe.Env.recorded_profile prof_env in
  let e = env ~profile Pkru_safe.Config.Mpk in
  let browser = Browser.create e in
  Browser.load_page browser {|<div data="x">t</div>|};
  let worker = Pkru_safe.Env.spawn_thread e in
  ignore (Browser.exec_script browser
            {|var d = domQueryTag("div")[0]; print(domGetAttribute(d, "data"));|});
  Pkru_safe.Env.run_on_thread e worker (fun () ->
      ignore (Browser.exec_script browser {|print(1 + 1);|}));
  Alcotest.(check (list string)) "both outputs" [ "x"; "2" ] (Browser.console browser)

let suite =
  [
    Alcotest.test_case "independent pkru per hart" `Quick test_harts_have_independent_pkru;
    Alcotest.test_case "run_on restores" `Quick test_run_on_restores_on_exception;
    Alcotest.test_case "cycles sum over harts" `Quick test_cycles_sum_over_harts;
    Alcotest.test_case "interleaved compartment stacks" `Quick test_interleaved_compartment_stacks;
    Alcotest.test_case "enforcement per thread" `Quick test_enforcement_is_per_thread;
    Alcotest.test_case "profiler single-steps per thread" `Quick test_profiler_single_steps_per_thread;
    Alcotest.test_case "two browsers two threads" `Quick test_two_browsers_two_threads;
  ]
