(* Edge cases and failure injection across the stack. *)

open Ir

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let site = Runtime.Alloc_id.synthetic

(* --- Profiling a dangling access: a freed MT object faults but maps to no
   live metadata, so nothing is recorded (the fault is serviced
   permissively, like any untracked trusted data). --- *)
let test_use_after_free_during_profiling_is_untracked () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling)) in
  let m = Pkru_safe.Env.machine env in
  let addr = Pkru_safe.Env.alloc env ~site:(site 1) 64 in
  Sim.Machine.write_u64 m addr 7;
  Pkru_safe.Env.dealloc env addr;
  (* U dereferences the stale pointer. *)
  Pkru_safe.Env.ffi_call env (fun () -> ignore (Sim.Machine.read_u64 m addr));
  let profiler = Option.get (Pkru_safe.Env.profiler env) in
  Alcotest.(check int) "no site recorded" 0
    (Runtime.Profile.cardinal (Pkru_safe.Env.recorded_profile env));
  Alcotest.(check int) "fault counted as untracked" 1 (Runtime.Profiler.untracked_faults profiler)

(* --- Store-width truncation in the interpreter. --- *)
let test_interp_store_width_truncation () =
  let m = Module_ir.create () in
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let p = Builder.alloc f (Instr.Imm 16) in
  Builder.store f ~src:(Instr.Imm 0x1234_5678) ~addr:(Instr.Reg p) ~width:1 ();
  let low = Builder.load f ~width:1 (Instr.Reg p) in
  Builder.store f ~src:(Instr.Imm 0xABCDE) ~addr:(Instr.Reg p) ~width:2 ();
  let mid = Builder.load f ~width:2 (Instr.Reg p) in
  let shifted = Builder.binop f Instr.Shl (Instr.Reg mid) (Instr.Imm 8) in
  let sum = Builder.binop f Instr.Add (Instr.Reg low) (Instr.Reg shifted) in
  Builder.ret f (Some (Instr.Reg sum));
  Module_ir.add_func m (Builder.finish f);
  let b = ok (Toolchain.Pipeline.build ~mode:Pkru_safe.Config.Base m) in
  Alcotest.(check int) "truncated stores" (0x78 + (0xBCDE lsl 8))
    (Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" [])

(* --- An indirect call to a garbage index traps. --- *)
let test_interp_bad_indirect_target () =
  let m = Module_ir.create () in
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  ignore (Builder.call_indirect f (Instr.Imm 999) []);
  Builder.ret f None;
  Module_ir.add_func m (Builder.finish f);
  let b = ok (Toolchain.Pipeline.build ~mode:Pkru_safe.Config.Base m) in
  Alcotest.(check bool) "trap" true
    (match Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" [] with
    | exception Toolchain.Interp.Trap _ -> true
    | _ -> false)

(* --- Host exceptions propagate out of scripts through the gates, which
   still unwind. --- *)
exception Host_boom

let test_host_exception_unwinds_gates () =
  let env =
    ok
      (Pkru_safe.Env.create ~profile:(Runtime.Profile.create ())
         (Pkru_safe.Config.make Pkru_safe.Config.Mpk))
  in
  let b = Browser.create env in
  Engine.register_host (Browser.engine b) "hostBoom" (fun _ -> raise Host_boom);
  (* Profile the script source first so lexing works under enforcement. *)
  let prof_env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling)) in
  let pb = Browser.create prof_env in
  ignore (Browser.exec_script pb "1;");
  let env2 =
    ok
      (Pkru_safe.Env.create ~profile:(Pkru_safe.Env.recorded_profile prof_env)
         (Pkru_safe.Config.make Pkru_safe.Config.Mpk))
  in
  let b2 = Browser.create env2 in
  Engine.register_host (Browser.engine b2) "hostBoom" (fun _ -> raise Host_boom);
  (match Browser.exec_script b2 "hostBoom();" with
  | exception Host_boom -> ()
  | _ -> Alcotest.fail "expected the host exception");
  (* The gates unwound: the browser is back in T and can keep working. *)
  let gate = Pkru_safe.Env.gate env2 in
  Alcotest.(check string) "back in trusted" "trusted"
    (Runtime.Compartment.to_string (Runtime.Gate.current gate));
  Alcotest.(check int) "stack drained" 0 (Runtime.Comp_stack.depth (Runtime.Gate.stack gate));
  ignore (Browser.exec_script b2 "1 + 1;")

(* --- Deeply nested JSON parses without blowing up. --- *)
let test_json_deep_nesting () =
  let depth = 2_000 in
  let text = String.make depth '[' ^ "1" ^ String.make depth ']' in
  match Util.Json.of_string text with
  | Util.Json.List _ -> ()
  | _ -> Alcotest.fail "expected a list"

(* --- dlmalloc requests larger than its default segment grow a dedicated
   segment. --- *)
let test_dlmalloc_oversized_request () =
  let m = Sim.Machine.create () in
  let pool =
    ok (Allocators.Pool.create m ~base:0x100_0000 ~size:(4096 * Vmm.Layout.page_size)
          ~pkey:Mpk.Pkey.default)
  in
  let dl = Allocators.Dlmalloc_model.create m pool in
  (* Default segment is 16 pages; ask for 50 pages worth. *)
  let big = 50 * Vmm.Layout.page_size in
  let a = Option.get (Allocators.Dlmalloc_model.alloc dl big) in
  Sim.Machine.write_u8 m (a + big - 1) 0xEE;
  Alcotest.(check int) "tail byte" 0xEE (Sim.Machine.read_u8 m (a + big - 1));
  (match Allocators.Dlmalloc_model.usable_size dl a with
  | Some n -> Alcotest.(check bool) "usable covers request" true (n >= big)
  | None -> Alcotest.fail "usable");
  Allocators.Dlmalloc_model.free dl a;
  ok (Allocators.Dlmalloc_model.check_heap dl)

(* --- Profile hit counts accumulate across repeated faults and merge. --- *)
let test_profile_hits_accumulate_across_runs () =
  let run () =
    let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling)) in
    let m = Pkru_safe.Env.machine env in
    let a = Pkru_safe.Env.alloc env ~site:(site 3) 64 in
    Pkru_safe.Env.ffi_call env (fun () ->
        for i = 0 to 4 do
          ignore (Sim.Machine.read_u8 m (a + i))
        done);
    Pkru_safe.Env.recorded_profile env
  in
  let merged = Runtime.Profile.merge (run ()) (run ()) in
  Alcotest.(check int) "one unique site" 1 (Runtime.Profile.cardinal merged);
  Alcotest.(check int) "hits summed across runs" 10 (Runtime.Profile.hit_count merged (site 3))

(* --- Table alignment options. --- *)
let test_table_alignment () =
  let out =
    Util.Table.render
      ~align:[ Util.Table.Right; Util.Table.Left ]
      ~header:[ "n"; "name" ]
      [ [ "1"; "a" ]; [ "22"; "bb" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check string) "right-aligned number" " 1  a   " (List.nth lines 2);
  Alcotest.(check string) "second row" "22  bb  " (List.nth lines 3)

(* --- The engine's display of special floats. --- *)
let test_engine_special_numbers () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
  let e = Engine.create env in
  let show src = Engine.Value.to_display_string (Engine.heap e) (Engine.eval_string e src) in
  Alcotest.(check string) "division by zero" "inf" (show "1 / 0;");
  Alcotest.(check string) "negative infinity" "-inf" (show "-1 / 0;");
  (let shown = show "0 / 0;" in
   Alcotest.(check bool) ("nan rendering: " ^ shown) true
     (shown = "nan" || shown = "-nan"));
  Alcotest.(check string) "negative zero" "-0" (show "-0;")

let suite =
  [
    Alcotest.test_case "UAF during profiling untracked" `Quick
      test_use_after_free_during_profiling_is_untracked;
    Alcotest.test_case "store width truncation" `Quick test_interp_store_width_truncation;
    Alcotest.test_case "bad indirect target" `Quick test_interp_bad_indirect_target;
    Alcotest.test_case "host exception unwinds gates" `Quick test_host_exception_unwinds_gates;
    Alcotest.test_case "json deep nesting" `Quick test_json_deep_nesting;
    Alcotest.test_case "dlmalloc oversized request" `Quick test_dlmalloc_oversized_request;
    Alcotest.test_case "profile hits accumulate" `Quick test_profile_hits_accumulate_across_runs;
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "engine special numbers" `Quick test_engine_special_numbers;
  ]
