(* End-to-end tests of the IR interpreter and the four-stage pipeline —
   including the artifact's experiment E1 (deny -> profile -> enforce). *)

open Ir

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

(* The E1 example program: trusted main allocates an object, hands it to an
   untrusted library function that writes 1337 into it, then reads it
   back.  A second, private allocation is never shared. *)
let e1_module () =
  let m = Module_ir.create () in
  let u = Builder.create ~name:"untrusted_write" ~crate:"clib" ~nparams:1 () in
  (match Builder.params u with
  | [ p ] ->
    Builder.store u ~src:(Instr.Imm 1337) ~addr:(Instr.Reg p) ();
    Builder.ret u None
  | _ -> assert false);
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let shared = Builder.alloc f (Instr.Imm 64) in
  let private_ = Builder.alloc f (Instr.Imm 64) in
  Builder.store f ~src:(Instr.Imm 0) ~addr:(Instr.Reg shared) ();
  Builder.store f ~src:(Instr.Imm 42) ~addr:(Instr.Reg private_) ();
  ignore (Builder.call f "untrusted_write" [ Instr.Reg shared ]);
  let v = Builder.load f (Instr.Reg shared) in
  let w = Builder.load f (Instr.Reg private_) in
  let sum = Builder.binop f Instr.Add (Instr.Reg v) (Instr.Reg w) in
  Builder.ret f (Some (Instr.Reg sum));
  Module_ir.add_func m (Builder.finish f);
  m

let build ?profile mode src = ok (Toolchain.Pipeline.build ?profile ~mode src)

let test_base_build_runs () =
  let b = build Pkru_safe.Config.Base (e1_module ()) in
  Alcotest.(check int) "1337 + 42" 1379 (Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" []);
  Alcotest.(check int) "no transitions" 0 (Pkru_safe.Env.transitions b.Toolchain.Pipeline.env)

let test_e1_step1_deny () =
  (* Enforcement with no profile: the untrusted write must crash. *)
  let b = build ~profile:(Runtime.Profile.create ()) Pkru_safe.Config.Mpk (e1_module ()) in
  match Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" [] with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation _; _ } -> ()
  | v -> Alcotest.fail (Printf.sprintf "expected MPK crash, got %d" v)

let test_e1_step2_profile () =
  let profile =
    ok (Toolchain.Pipeline.collect_profile (e1_module ())
          ~inputs:[ (fun interp -> ignore (Toolchain.Interp.run interp "main" [])) ])
  in
  (* Exactly one of the two allocation sites crossed the boundary. *)
  Alcotest.(check int) "one shared site" 1 (Runtime.Profile.cardinal profile)

let test_e1_step3_enforce () =
  let b = ok (Toolchain.Pipeline.full_cycle (e1_module ())
                ~inputs:[ (fun interp -> ignore (Toolchain.Interp.run interp "main" [])) ]) in
  Alcotest.(check int) "enforced run works" 1379 (Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" []);
  Alcotest.(check int) "one site moved" 1 b.Toolchain.Pipeline.pass_stats.Passes.sites_moved;
  Alcotest.(check bool) "gates were inserted" true (b.Toolchain.Pipeline.pass_stats.Passes.wrappers >= 1);
  (* The boundary was actually crossed through gates. *)
  Alcotest.(check bool) "transitions counted" true (Pkru_safe.Env.transitions b.Toolchain.Pipeline.env >= 2)

let test_e1_private_data_stays_protected () =
  (* Extend U to also read main's private allocation: enforcement must kill
     it even after a correct profile for the shared object. *)
  let m = e1_module () in
  let evil = Builder.create ~name:"untrusted_snoop" ~crate:"clib" ~nparams:1 () in
  (match Builder.params evil with
  | [ p ] ->
    let v = Builder.load evil (Instr.Reg p) in
    Builder.ret evil (Some (Instr.Reg v))
  | _ -> assert false);
  Module_ir.add_func m (Builder.finish evil);
  let g = Builder.create ~name:"main_snoop" ~crate:"app" ~nparams:0 () in
  let shared = Builder.alloc g (Instr.Imm 64) in
  let private_ = Builder.alloc g (Instr.Imm 64) in
  ignore (Builder.call g "untrusted_write" [ Instr.Reg shared ]);
  let r = Builder.call g ~ret:true "untrusted_snoop" [ Instr.Reg private_ ] in
  Builder.ret g (Some (Instr.Reg (Option.get r)));
  Module_ir.add_func m (Builder.finish g);
  (* Profile only the benign entry point; the snooping path is never
     profiled (profiling inputs are assumed benign). *)
  let profile =
    ok (Toolchain.Pipeline.collect_profile m
          ~inputs:[ (fun interp -> ignore (Toolchain.Interp.run interp "main" [])) ])
  in
  let b = build ~profile Pkru_safe.Config.Mpk m in
  match Toolchain.Interp.run b.Toolchain.Pipeline.interp "main_snoop" [] with
  | exception Vmm.Fault.Unhandled _ -> ()
  | v -> Alcotest.fail (Printf.sprintf "snoop should crash, got %d" v)

let test_callback_through_function_pointer () =
  let m = Module_ir.create () in
  (* T callback reads trusted private state (passed as arg). *)
  let cb = Builder.create ~name:"t_callback" ~crate:"app" ~nparams:1 () in
  let v = Builder.load cb (Instr.Reg 0) in
  Builder.ret cb (Some (Instr.Reg v));
  Module_ir.add_func m (Builder.finish cb);
  (* U invokes the function pointer it was given. *)
  let u = Builder.create ~name:"u_invoke" ~crate:"clib" ~nparams:2 () in
  let r = Builder.call_indirect u ~ret:true (Instr.Reg 0) [ Instr.Reg 1 ] in
  Builder.ret u (Some (Instr.Reg (Option.get r)));
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let secret = Builder.alloc f (Instr.Imm 8) in
  Builder.store f ~src:(Instr.Imm 777) ~addr:(Instr.Reg secret) ();
  let addr = Builder.func_addr f "t_callback" in
  let r = Builder.call f ~ret:true "u_invoke" [ Instr.Reg addr; Instr.Reg secret ] in
  Builder.ret f (Some (Instr.Reg (Option.get r)));
  Module_ir.add_func m (Builder.finish f);
  (* No profiling needed: only T code ever dereferences the secret.  The
     reverse gate restores T's view inside the callback. *)
  let b = build ~profile:(Runtime.Profile.create ()) Pkru_safe.Config.Mpk m in
  Alcotest.(check int) "callback result" 777 (Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" []);
  (* main -> U gate (2) + U -> callback entry gate (2). *)
  Alcotest.(check int) "transitions" 4 (Pkru_safe.Env.transitions b.Toolchain.Pipeline.env)

let test_loops_and_arith () =
  let m2 = Module_ir.create () in
  let g = Builder.create ~name:"fib" ~crate:"app" ~nparams:1 () in
  let base = Builder.new_block g in
  let rec_b = Builder.new_block g in
  let cond = Builder.binop g Instr.Lt (Instr.Reg 0) (Instr.Imm 2) in
  Builder.cond_br g (Instr.Reg cond) base rec_b;
  Builder.switch_to g base;
  Builder.ret g (Some (Instr.Reg 0));
  Builder.switch_to g rec_b;
  let n1 = Builder.binop g Instr.Sub (Instr.Reg 0) (Instr.Imm 1) in
  let n2 = Builder.binop g Instr.Sub (Instr.Reg 0) (Instr.Imm 2) in
  let f1 = Option.get (Builder.call g ~ret:true "fib" [ Instr.Reg n1 ]) in
  let f2 = Option.get (Builder.call g ~ret:true "fib" [ Instr.Reg n2 ]) in
  let s = Builder.binop g Instr.Add (Instr.Reg f1) (Instr.Reg f2) in
  Builder.ret g (Some (Instr.Reg s));
  Module_ir.add_func m2 (Builder.finish g);
  let b = build Pkru_safe.Config.Base m2 in
  Alcotest.(check int) "fib 15" 610 (Toolchain.Interp.run b.Toolchain.Pipeline.interp "fib" [ 15 ]);
  Alcotest.(check bool) "cycles charged" true (Pkru_safe.Env.cycles b.Toolchain.Pipeline.env > 0)

let test_host_functions () =
  let m = Module_ir.create () in
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let r = Builder.call_host f ~ret:true "add_mod" [ Instr.Imm 20; Instr.Imm 30 ] in
  Builder.ret f (Some (Instr.Reg (Option.get r)));
  Module_ir.add_func m (Builder.finish f);
  let hosts =
    [ ("add_mod", fun _env args ->
        match args with
        | [ a; b ] -> (a + b) mod 7
        | _ -> -1) ]
  in
  let b = ok (Toolchain.Pipeline.build ~hosts ~mode:Pkru_safe.Config.Base m) in
  Alcotest.(check int) "host result" 1 (Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" [])

let test_traps () =
  let m = Module_ir.create () in
  let f = Builder.create ~name:"div0" ~crate:"app" ~nparams:0 () in
  let r = Builder.binop f Instr.Div (Instr.Imm 1) (Instr.Imm 0) in
  Builder.ret f (Some (Instr.Reg r));
  Module_ir.add_func m (Builder.finish f);
  let loop = Builder.create ~name:"forever" ~crate:"app" ~nparams:0 () in
  let again = Builder.new_block loop in
  Builder.br loop again;
  Builder.switch_to loop again;
  Builder.br loop again;
  Module_ir.add_func m (Builder.finish loop);
  let b = build Pkru_safe.Config.Base m in
  Alcotest.(check bool) "div by zero traps" true
    (match Toolchain.Interp.run b.Toolchain.Pipeline.interp "div0" [] with
    | exception Toolchain.Interp.Trap _ -> true
    | _ -> false);
  let env2 = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
  let interp2 = Toolchain.Interp.create ~fuel:10_000 (Toolchain.Interp.modul b.Toolchain.Pipeline.interp) env2 in
  Alcotest.(check bool) "fuel exhausts" true
    (match Toolchain.Interp.run interp2 "forever" [] with
    | exception Toolchain.Interp.Trap msg -> msg = "out of fuel"
    | _ -> false)

let test_realloc_in_ir_keeps_profile_provenance () =
  (* main allocates, reallocates (moving the object), then shares the
     reallocated pointer; the *original* allocation site must be profiled
     and the enforcement build must work. *)
  let m = Module_ir.create () in
  let u = Builder.create ~name:"u_touch" ~crate:"clib" ~nparams:1 () in
  let v = Builder.load u (Instr.Reg 0) in
  Builder.ret u (Some (Instr.Reg v));
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let p = Builder.alloc f (Instr.Imm 16) in
  let q = Builder.realloc f ~addr:(Instr.Reg p) ~size:(Instr.Imm 8192) in
  Builder.store f ~src:(Instr.Imm 99) ~addr:(Instr.Reg q) ();
  let r = Builder.call f ~ret:true "u_touch" [ Instr.Reg q ] in
  Builder.ret f (Some (Instr.Reg (Option.get r)));
  Module_ir.add_func m (Builder.finish f);
  let b = ok (Toolchain.Pipeline.full_cycle m
                ~inputs:[ (fun interp -> ignore (Toolchain.Interp.run interp "main" [])) ]) in
  Alcotest.(check int) "works end to end" 99 (Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" []);
  Alcotest.(check int) "site moved via realloc provenance" 1
    b.Toolchain.Pipeline.pass_stats.Passes.sites_moved

let test_alloc_config_no_gates_but_split () =
  let profile =
    ok (Toolchain.Pipeline.collect_profile (e1_module ())
          ~inputs:[ (fun interp -> ignore (Toolchain.Interp.run interp "main" [])) ])
  in
  let b = build ~profile Pkru_safe.Config.Alloc (e1_module ()) in
  Alcotest.(check int) "alloc build runs" 1379 (Toolchain.Interp.run b.Toolchain.Pipeline.interp "main" []);
  Alcotest.(check int) "no transitions" 0 (Pkru_safe.Env.transitions b.Toolchain.Pipeline.env);
  Alcotest.(check int) "site still moved" 1 b.Toolchain.Pipeline.pass_stats.Passes.sites_moved

let suite =
  [
    Alcotest.test_case "base build runs" `Quick test_base_build_runs;
    Alcotest.test_case "E1 step 1: deny" `Quick test_e1_step1_deny;
    Alcotest.test_case "E1 step 2: profile" `Quick test_e1_step2_profile;
    Alcotest.test_case "E1 step 3: enforce" `Quick test_e1_step3_enforce;
    Alcotest.test_case "private data stays protected" `Quick test_e1_private_data_stays_protected;
    Alcotest.test_case "callback via function pointer" `Quick test_callback_through_function_pointer;
    Alcotest.test_case "recursion + arithmetic" `Quick test_loops_and_arith;
    Alcotest.test_case "host functions" `Quick test_host_functions;
    Alcotest.test_case "traps" `Quick test_traps;
    Alcotest.test_case "realloc provenance end-to-end" `Quick test_realloc_in_ir_keeps_profile_provenance;
    Alcotest.test_case "alloc config: split, no gates" `Quick test_alloc_config_no_gates_but_split;
  ]
