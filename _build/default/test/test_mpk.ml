(* Tests for the MPK model: pkey validation and PKRU bit semantics. *)

let key = Mpk.Pkey.of_int

let test_pkey_bounds () =
  Alcotest.(check int) "round-trip" 5 (Mpk.Pkey.to_int (key 5));
  Alcotest.check_raises "negative" (Invalid_argument "Pkey.of_int: -1") (fun () ->
      ignore (key (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Pkey.of_int: 16") (fun () ->
      ignore (key 16))

let test_pkru_all_enabled () =
  for k = 0 to Mpk.Pkey.count - 1 do
    Alcotest.(check bool) "read" true (Mpk.Pkru.can_read Mpk.Pkru.all_enabled (key k));
    Alcotest.(check bool) "write" true (Mpk.Pkru.can_write Mpk.Pkru.all_enabled (key k))
  done

let test_pkru_disable_access () =
  let pkru = Mpk.Pkru.set_rights Mpk.Pkru.all_enabled (key 3) Mpk.Pkru.Disable_access in
  Alcotest.(check bool) "no read" false (Mpk.Pkru.can_read pkru (key 3));
  Alcotest.(check bool) "no write" false (Mpk.Pkru.can_write pkru (key 3));
  Alcotest.(check bool) "other keys unaffected" true (Mpk.Pkru.can_write pkru (key 2))

let test_pkru_disable_write () =
  let pkru = Mpk.Pkru.set_rights Mpk.Pkru.all_enabled (key 1) Mpk.Pkru.Disable_write in
  Alcotest.(check bool) "read ok" true (Mpk.Pkru.can_read pkru (key 1));
  Alcotest.(check bool) "write denied" false (Mpk.Pkru.can_write pkru (key 1))

let test_pkru_all_disabled_except () =
  let pkru = Mpk.Pkru.all_disabled_except [ key 2 ] in
  Alcotest.(check bool) "key0 stays enabled" true (Mpk.Pkru.can_write pkru (key 0));
  Alcotest.(check bool) "key2 enabled" true (Mpk.Pkru.can_write pkru (key 2));
  for k = 1 to Mpk.Pkey.count - 1 do
    if k <> 2 then
      Alcotest.(check bool)
        (Printf.sprintf "key%d disabled" k)
        false
        (Mpk.Pkru.can_read pkru (key k))
  done

let test_pkru_raw_roundtrip () =
  let pkru = Mpk.Pkru.all_disabled_except [ key 4 ] in
  let raw = Mpk.Pkru.to_int pkru in
  Alcotest.(check bool) "of_int . to_int = id" true
    (Mpk.Pkru.equal pkru (Mpk.Pkru.of_int raw));
  Alcotest.check_raises "out of range" (Invalid_argument "Pkru.of_int: -1") (fun () ->
      ignore (Mpk.Pkru.of_int (-1)))

(* Property: set_rights then rights decodes the same value, and leaves all
   other keys untouched. *)
let prop_set_rights_roundtrip =
  let gen =
    QCheck.Gen.(
      triple (int_range 0 15) (int_range 0 2)
        (map (fun v -> v land 0xFFFFFFFF) (int_bound max_int)))
  in
  QCheck.Test.make ~count:500 ~name:"pkru set_rights/rights round-trip" (QCheck.make gen)
    (fun (k, r, raw) ->
      let rights =
        match r with
        | 0 -> Mpk.Pkru.Enable
        | 1 -> Mpk.Pkru.Disable_write
        | _ -> Mpk.Pkru.Disable_access
      in
      let pkru = Mpk.Pkru.of_int raw in
      let pkru' = Mpk.Pkru.set_rights pkru (key k) rights in
      let same_decoded = Mpk.Pkru.rights pkru' (key k) = rights in
      let others_untouched =
        List.for_all
          (fun j -> j = k || Mpk.Pkru.rights pkru' (key j) = Mpk.Pkru.rights pkru (key j))
          (List.init 16 Fun.id)
      in
      same_decoded && others_untouched)

let prop_can_write_implies_can_read =
  QCheck.Test.make ~count:500 ~name:"can_write implies can_read"
    (QCheck.make
       QCheck.Gen.(pair (int_range 0 15) (map (fun v -> v land 0xFFFFFFFF) (int_bound max_int))))
    (fun (k, raw) ->
      let pkru = Mpk.Pkru.of_int raw in
      (not (Mpk.Pkru.can_write pkru (key k))) || Mpk.Pkru.can_read pkru (key k))

let suite =
  [
    Alcotest.test_case "pkey bounds" `Quick test_pkey_bounds;
    Alcotest.test_case "pkru all enabled" `Quick test_pkru_all_enabled;
    Alcotest.test_case "pkru disable access" `Quick test_pkru_disable_access;
    Alcotest.test_case "pkru disable write" `Quick test_pkru_disable_write;
    Alcotest.test_case "pkru all_disabled_except" `Quick test_pkru_all_disabled_except;
    Alcotest.test_case "pkru raw round-trip" `Quick test_pkru_raw_roundtrip;
    QCheck_alcotest.to_alcotest prop_set_rights_roundtrip;
    QCheck_alcotest.to_alcotest prop_can_write_implies_can_read;
  ]
