(* Tests for the textual IR format: hand-written program parsing, error
   reporting, and print/parse round-trips (including fuzzed modules). *)

open Ir

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let sample_text =
  {|crate app
crate clib [untrusted]
func @u_read(%r0) ; crate=clib
^0:
  %r1 = load.8 [%r0]
  ret %r1
func @main() ; crate=app
^0:
  %r0 = __rust_alloc(64) ; alloc<-2:-2:-2>
  store.8 123 -> [%r0]
  %r1 = call @u_read(%r0)
  %r2 = add %r1, 1
  %r3 = eq %r2, 124
  cond_br %r3, ^1, ^2
^1:
  ret %r2
^2:
  ret 0
|}

let test_parse_and_run () =
  let m = Ir_text.of_string sample_text in
  ok (Verifier.verify m);
  Alcotest.(check bool) "clib untrusted" true
    (Module_ir.is_untrusted_fn m (Module_ir.func m "u_read"));
  let build = ok (Toolchain.Pipeline.build ~mode:Pkru_safe.Config.Base m) in
  Alcotest.(check int) "program runs" 124
    (Toolchain.Interp.run build.Toolchain.Pipeline.interp "main" [])

let test_roundtrip_stability () =
  let m = Ir_text.of_string sample_text in
  let once = Ir_text.to_string m in
  let twice = Ir_text.to_string (Ir_text.of_string once) in
  Alcotest.(check string) "print . parse . print is stable" once twice

let test_all_instruction_forms_roundtrip () =
  let text =
    {|crate app
crate clib [untrusted]
func @callee(%r0, %r1) ; crate=app exported
^0:
  ret %r0
func @gatey() ; crate=__pkru_gates wrapper
^0:
  gate.enter_untrusted
  gate.exit_untrusted
  gate.enter_trusted
  gate.exit_trusted
  ret
func @kitchen_sink(%r0) ; crate=app
^0:
  %r1 = const -7
  %r2 = sub %r1, %r0
  %r3 = mul %r2, 3
  %r4 = div %r3, 2
  %r5 = rem %r4, 5
  %r6 = and %r5, 12
  %r7 = or %r6, 1
  %r8 = xor %r7, 9
  %r9 = shl %r8, 2
  %r10 = shr %r9, 1
  %r11 = lt %r10, 100
  %r12 = le %r10, 100
  %r13 = gt %r10, 100
  %r14 = ge %r10, 100
  %r15 = ne %r13, %r14
  %r16 = __rust_alloc(32) ; alloc<-2:-2:-2>
  %r17 = __rust_untrusted_alloc(64) ; alloc<-2:-2:-2> [instrumented]
  store.4 %r15 -> [%r16]
  %r18 = load.4 [%r16]
  %r19 = __rust_realloc(%r16, 128)
  __rust_dealloc(%r19)
  %r20 = call @callee(%r18, 1)
  call @callee(%r20, 2)
  %r21 = func_addr @callee
  %r22 = call_indirect %r21(%r20, 3)
  call_indirect %r21(%r22, 4)
  %r23 = call_host @hostfn(%r22)
  call_host @hostfn(%r23)
  br ^1
^1:
  cond_br %r23, ^2, ^3
^2:
  ret %r23
^3:
  ret
|}
  in
  let m = Ir_text.of_string text in
  ok (Verifier.verify ~hosts:(fun h -> h = "hostfn") m);
  let once = Ir_text.to_string m in
  Alcotest.(check string) "stable" once (Ir_text.to_string (Ir_text.of_string once));
  (* Flags survive. *)
  let m2 = Ir_text.of_string once in
  Alcotest.(check bool) "exported" true (Module_ir.func m2 "callee").Func.exported;
  Alcotest.(check bool) "wrapper" true (Module_ir.func m2 "gatey").Func.is_wrapper;
  (* Instrumented alloc flag survives. *)
  let found = ref false in
  Func.iter_instrs (Module_ir.func m2 "kitchen_sink") (fun _ i ->
      match i with
      | Instr.Alloc a when a.pool = Instr.Untrusted_pool ->
        found := a.instrumented
      | _ -> ());
  Alcotest.(check bool) "instrumented flag" true !found

let test_syntax_errors () =
  List.iter
    (fun (what, text) ->
      Alcotest.(check bool) what true
        (match Ir_text.of_string text with
        | exception Ir_text.Syntax_error _ -> true
        | _ -> false))
    [
      ("instruction outside function", "  %r0 = const 1\n");
      ("bad register", "func @f() ; crate=a\n^0:\n  %x = const 1\n  ret\n");
      ("missing crate comment", "func @f()\n^0:\n  ret\n");
      ("unterminated block", "func @f() ; crate=a\n^0:\n  %r0 = const 1\n");
      ("alloc without site", "func @f() ; crate=a\n^0:\n  %r0 = __rust_alloc(8)\n  ret\n");
      ("unknown gate", "func @f() ; crate=a wrapper\n^0:\n  gate.sideways\n  ret\n");
      ("garbage line", "func @f() ; crate=a\n^0:\n  fnord 1, 2\n  ret\n");
    ]

let test_compiled_module_roundtrips () =
  (* A module that went through the full pass pipeline (gates, ids,
     instrumentation) still prints and re-parses stably. *)
  let m = Ir_text.of_string sample_text in
  let compiled, _ =
    ok (Passes.compile ~gates:true ~instrument:true ~hosts:(fun _ -> false) m)
  in
  let once = Ir_text.to_string compiled in
  Alcotest.(check string) "compiled module round-trips" once
    (Ir_text.to_string (Ir_text.of_string once))

let test_split_on_substring () =
  Alcotest.(check (list string)) "middle" [ "a"; "b" ] (Str_split.split_on_substring ~sub:" -> " "a -> b");
  Alcotest.(check (list string)) "none" [ "abc" ] (Str_split.split_on_substring ~sub:"xy" "abc");
  Alcotest.(check (list string)) "ends" [ ""; "a"; "" ] (Str_split.split_on_substring ~sub:"--" "--a--");
  Alcotest.(check (list string)) "repeat" [ "1"; "2"; "3" ] (Str_split.split_on_substring ~sub:", " "1, 2, 3")

let suite =
  [
    Alcotest.test_case "parse and run" `Quick test_parse_and_run;
    Alcotest.test_case "round-trip stability" `Quick test_roundtrip_stability;
    Alcotest.test_case "all instruction forms" `Quick test_all_instruction_forms_roundtrip;
    Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
    Alcotest.test_case "compiled module round-trips" `Quick test_compiled_module_roundtrips;
    Alcotest.test_case "split_on_substring" `Quick test_split_on_substring;
  ]
