(* Tests for the bytecode tier: language-feature checks, the compiler's
   structural output, and — most importantly — differential testing: both
   tiers must be observationally identical on every benchmark kernel, DOM
   workload and fuzzed arithmetic expression. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let fresh_engine ?seed () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
  Engine.create ?seed env

(* Run one script on both tiers (separate engines, same seed) and return
   (display-of-result, console-output) for each. *)
let both_tiers ?(page = None) src =
  let run tier =
    match page with
    | None ->
      let e = fresh_engine ~seed:7 () in
      let v = Engine.eval_string ~tier e src in
      (Engine.Value.to_display_string (Engine.heap e) v, Engine.take_output e)
    | Some html ->
      let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
      let b = Browser.create ~engine_seed:7 env in
      Browser.load_page b html;
      (* Browser.exec_script is AST-tier; drive the engine directly so the
         tier applies, keeping the bindings installed. *)
      let v = Engine.eval_string ~tier (Browser.engine b) src in
      (Engine.Value.to_display_string (Engine.heap (Browser.engine b)) v, Browser.console b)
  in
  (run Engine.Ast_tier, run Engine.Bytecode_tier)

let check_tiers_agree ?page name src =
  let (ast_v, ast_out), (bc_v, bc_out) = both_tiers ?page src in
  Alcotest.(check string) (name ^ ": result agrees") ast_v bc_v;
  Alcotest.(check (list string)) (name ^ ": output agrees") ast_out bc_out

let eval_bc src =
  let e = fresh_engine () in
  let v = Engine.eval_string ~tier:Engine.Bytecode_tier e src in
  Engine.Value.to_display_string (Engine.heap e) v

let check_bc name expected src = Alcotest.(check string) name expected (eval_bc src)

let test_basics () =
  check_bc "arith" "14" "2 + 3 * 4;";
  check_bc "string concat" "ab3" "'a' + 'b' + 3;";
  check_bc "var + assign" "12" "var x = 5; x = x + 7; x;";
  check_bc "compound assign" "14" "var x = 2; x += 3; x *= 4; x -= 6; x;";
  check_bc "ternary" "10" "1 < 2 ? 10 : 20;";
  check_bc "logical and" "0" "0 && 5;";
  check_bc "logical or" "7" "0 || 7;";
  check_bc "unary" "true" "!(1 > 2);";
  check_bc "bitwise" "6" "12 ^ 10;"

let test_control_flow () =
  check_bc "while" "45" "var s = 0; var i = 0; while (i < 10) { s = s + i; i = i + 1; } s;";
  check_bc "for" "45" "var s = 0; for (var i = 0; i < 10; i = i + 1) { s += i; } s;";
  check_bc "break" "5" "var i = 0; while (true) { if (i == 5) { break; } i = i + 1; } i;";
  check_bc "continue" "25"
    "var s = 0; for (var i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { continue; } s += i; } s;";
  check_bc "break from nested block" "3"
    "var i = 0; while (true) { { if (i == 3) { break; } } i = i + 1; } i;";
  check_bc "nested for + scopes" "100"
    "var total = 0; for (var i = 0; i < 10; i = i + 1) { for (var j = 0; j < 10; j = j + 1) { total += 1; } } total;"

let test_functions () =
  check_bc "function decl + call" "120"
    "function fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); } fact(5);";
  check_bc "closure" "15"
    "function adder(n) { return function(x) { return x + n; }; } adder(5)(10);";
  check_bc "higher order through methods" "[2,4,6]"
    "[1,2,3].map(function(x) { return x * 2; });";
  check_bc "early return" "1" "function f() { return 1; var x = 2; } f();";
  check_bc "object methods" "8" "var o = {f: function(x) { return x * 2; }}; o.f(4);"

let test_data_structures () =
  check_bc "array lit + index" "30" "var a = [10, 20, 30]; a[2];";
  check_bc "array push via index" "42" "var a = new Array(3); a[1] = 42; a[1];";
  check_bc "compound index assign" "11" "var a = [10]; a[0] += 1; a[0];";
  check_bc "object lit" "7" "var o = {a: 7}; o.a;";
  check_bc "member assign" "9" "var o = {}; o.x = 9; o.x;";
  check_bc "compound member assign" "6" "var o = {n: 2}; o.n *= 3; o.n;";
  check_bc "json" "42" "JSON.parse(JSON.stringify({k: 42})).k;"

let test_disassembler () =
  let program = Engine.Bytecode.compile (Engine.Parser.parse
    (let e = fresh_engine () in
     match Engine.Value.str_of_string (Engine.heap e) "var x = 1; x + 2;" with
     | Engine.Value.Str s -> Engine.Lexer.tokenize (Engine.heap e) s
     | _ -> assert false)) in
  let listing = Engine.Bytecode.disassemble program in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("listing has " ^ needle) true
        (let nl = String.length needle and hl = String.length listing in
         let rec scan i = i + nl <= hl && (String.sub listing i nl = needle || scan (i + 1)) in
         scan 0))
    [ "push_num 1"; "decl x"; "load x"; "binop +"; "ret" ];
  Alcotest.(check bool) "has instructions" true (Engine.Bytecode.instruction_count program >= 5)

(* The big differential test: every benchmark kernel agrees across tiers. *)
let test_kernels_agree_across_tiers () =
  List.iter
    (fun (name, src) -> check_tiers_agree name src)
    [
      ("fft", Workloads.Kernels.fft ~n:64);
      ("dft", Workloads.Kernels.dft ~n:20);
      ("oscillator", Workloads.Kernels.oscillator ~n:50 ~steps:4);
      ("beat", Workloads.Kernels.beat_detection ~n:300);
      ("blur", Workloads.Kernels.gaussian_blur ~w:10 ~h:8 ~passes:2);
      ("darkroom", Workloads.Kernels.darkroom ~pixels:300);
      ("desaturate", Workloads.Kernels.desaturate ~pixels:200);
      ("jsonparse", Workloads.Kernels.json_parse_kernel ~rows:12);
      ("jsonstringify", Workloads.Kernels.json_stringify_kernel ~rows:10);
      ("aes", Workloads.Kernels.crypto_aes ~blocks:4 ~rounds:3);
      ("ccm", Workloads.Kernels.crypto_ccm ~blocks:5);
      ("pbkdf2", Workloads.Kernels.crypto_pbkdf2 ~iters:100);
      ("sha", Workloads.Kernels.crypto_sha ~iters:100);
      ("astar", Workloads.Kernels.astar ~w:8 ~h:8);
      ("richards", Workloads.Kernels.richards ~iterations:25);
      ("deltablue", Workloads.Kernels.deltablue ~chain:6 ~iters:10);
      ("splay", Workloads.Kernels.splay ~nodes:40 ~lookups:50);
      ("raytrace", Workloads.Kernels.raytrace ~w:6 ~h:5);
      ("navier", Workloads.Kernels.navier_stokes ~n:6 ~steps:2);
      ("codec", Workloads.Kernels.byte_codec ~name:"codec" ~bytes:80 ~rounds:2);
      ("codeload", Workloads.Kernels.codeload ~funcs:12);
      ("regexp", Workloads.Kernels.regexp_scan ~copies:4);
      ("strings", Workloads.Kernels.string_kernel ~iters:8);
      ("floatmix", Workloads.Kernels.float_mix ~n:20 ~iters:3);
      ("boyer", Workloads.Kernels.earley_boyer ~depth:3 ~iters:2);
      ("tokenizer", Workloads.Kernels.tokenizer ~copies:3);
    ]

let test_dom_workloads_agree_across_tiers () =
  let page = Workloads.Dom_scripts.page ~rows:5 in
  List.iter
    (fun (name, src) -> check_tiers_agree ~page:(Some page) name src)
    [
      ("dom_attr", Workloads.Dom_scripts.dom_attr ~iters:8);
      ("dom_create", Workloads.Dom_scripts.dom_create ~iters:8);
      ("dom_query", Workloads.Dom_scripts.dom_query ~iters:3);
      ("jslib_toggle", Workloads.Dom_scripts.jslib_toggle ~iters:8);
      ("jslib_select", Workloads.Dom_scripts.jslib_select ~iters:2);
      ("dom_style", Workloads.Dom_scripts.dom_style ~iters:4);
      ("dom_events", Workloads.Dom_scripts.dom_events ~iters:6);
    ]

let prop_tiers_agree_on_fuzzed_arithmetic =
  QCheck.Test.make ~count:100 ~name:"tiers agree on fuzzed expressions"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Util.Rng.create seed in
      (* Expressions over vars with assignments, conditionals and loops. *)
      let depth = 3 in
      let rec gen_e d =
        if d = 0 || Util.Rng.int rng 3 = 0 then
          match Util.Rng.int rng 3 with
          | 0 -> string_of_int (Util.Rng.int rng 100)
          | 1 -> "x"
          | _ -> "y"
        else
          let op = [| "+"; "-"; "*"; "&"; "|"; "^" |].(Util.Rng.int rng 6) in
          Printf.sprintf "(%s %s %s)" (gen_e (d - 1)) op (gen_e (d - 1))
      in
      let src =
        Printf.sprintf
          "var x = %d; var y = %d; for (var i = 0; i < 5; i = i + 1) { x = %s; y = %s; } x + y;"
          (Util.Rng.int rng 50) (Util.Rng.int rng 50) (gen_e depth) (gen_e depth)
      in
      let (a, _), (b, _) = both_tiers src in
      a = b)

let test_vm_fuel_exhaustion () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
  let e = Engine.create ~fuel:5_000 env in
  Alcotest.(check bool) "vm runs out of fuel" true
    (match Engine.eval_string ~tier:Engine.Bytecode_tier e "while (true) { }" with
    | exception Engine.Eval.Script_error _ -> true
    | _ -> false)

let test_vm_runtime_errors () =
  List.iter
    (fun (what, src) ->
      let e = fresh_engine () in
      Alcotest.(check bool) what true
        (match Engine.eval_string ~tier:Engine.Bytecode_tier e src with
        | exception Engine.Eval.Script_error _ -> true
        | _ -> false))
    [
      ("undefined variable", "nope;");
      ("not callable", "var x = 4; x(1);");
      ("bad index store", "var a = [1]; a[7] = 0;");
      ("method on null", "null.f();");
    ]

let test_vm_under_enforcement () =
  (* The bytecode tier is subject to the same compartment rules: a VM-run
     script reading an unprofiled trusted buffer crashes. *)
  let env =
    ok
      (Pkru_safe.Env.create ~profile:(Runtime.Profile.create ())
         (Pkru_safe.Config.make Pkru_safe.Config.Mpk))
  in
  let b = Browser.create env in
  Browser.load_page b {|<div data="x">y</div>|};
  let engine = Browser.engine b in
  let gate = Pkru_safe.Env.gate env in
  match
    Runtime.Gate.call_untrusted gate (fun () ->
        Engine.eval_string ~tier:Engine.Bytecode_tier engine "1 + 1;")
  with
  | v ->
    (* Engine-heap source copy lives in MU, so plain arithmetic works... *)
    Alcotest.(check string) "arith fine" "2"
      (Engine.Value.to_display_string (Engine.heap engine) v);
    (* ...but touching a trusted binding buffer does not. *)
    (match
       Runtime.Gate.call_untrusted gate (fun () ->
           Engine.eval_string ~tier:Engine.Bytecode_tier engine
             {|domGetAttribute(domQueryTag("div")[0], "data").charCodeAt(0);|})
     with
    | exception Vmm.Fault.Unhandled _ -> ()
    | _ -> Alcotest.fail "VM access to MT should crash")

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions + closures" `Quick test_functions;
    Alcotest.test_case "data structures" `Quick test_data_structures;
    Alcotest.test_case "disassembler" `Quick test_disassembler;
    Alcotest.test_case "kernels agree across tiers" `Quick test_kernels_agree_across_tiers;
    Alcotest.test_case "dom workloads agree across tiers" `Quick test_dom_workloads_agree_across_tiers;
    QCheck_alcotest.to_alcotest prop_tiers_agree_on_fuzzed_arithmetic;
    Alcotest.test_case "vm fuel exhaustion" `Quick test_vm_fuel_exhaustion;
    Alcotest.test_case "vm runtime errors" `Quick test_vm_runtime_errors;
    Alcotest.test_case "vm under enforcement" `Quick test_vm_under_enforcement;
  ]
