(* Tests for the browser substrate: HTML parsing, the machine-resident DOM,
   the gated binding layer, and the full profile->enforce cycle on the
   Servo-like scenario (artifact experiment E2 in miniature). *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let fresh ?profile mode =
  let env = ok (Pkru_safe.Env.create ?profile (Pkru_safe.Config.make mode)) in
  Browser.create env

(* --- HTML parser --- *)

let test_html_roundtrip () =
  let src = {|<div id="a" class="x"><span>hi</span>there<br/></div><p>end</p>|} in
  let parsed = Browser.Html.parse src in
  Alcotest.(check string) "round-trip"
    {|<div id="a" class="x"><span>hi</span>there<br></br></div><p>end</p>|}
    (Browser.Html.to_string parsed)

let test_html_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) (Printf.sprintf "rejects %s" src) true
        (match Browser.Html.parse src with
        | exception Browser.Html.Html_error _ -> true
        | _ -> false))
    [ "<div>"; "</div>"; "<div></span>"; "<div attr=unquoted></div>"; "<a href=\"x></a>" ]

(* --- DOM (base mode: no enforcement in the way) --- *)

let test_dom_tree_construction () =
  let b = fresh Pkru_safe.Config.Base in
  let dom = Browser.dom b in
  let root = Browser.Dom.root dom in
  let div = Browser.Dom.create_element dom "div" in
  let txt = Browser.Dom.create_text dom "hello" in
  Browser.Dom.append_child dom ~parent:root ~child:div;
  Browser.Dom.append_child dom ~parent:div ~child:txt;
  Alcotest.(check int) "children of root" 1 (Browser.Dom.child_count dom root);
  Alcotest.(check string) "tag" "div" (Browser.Dom.tag_name dom div);
  Alcotest.(check bool) "text node" true (Browser.Dom.is_text dom txt);
  Alcotest.(check string) "text content walks tree" "hello" (Browser.Dom.text_content dom root);
  Alcotest.(check (option int)) "parent" (Some div)
    (Browser.Dom.parent dom txt)

let test_dom_attributes () =
  let b = fresh Pkru_safe.Config.Base in
  let dom = Browser.dom b in
  let div = Browser.Dom.create_element dom "div" in
  Alcotest.(check (option string)) "missing" None (Browser.Dom.get_attribute dom div "id");
  Browser.Dom.set_attribute dom div "id" "main";
  Browser.Dom.set_attribute dom div "class" "big";
  Alcotest.(check (option string)) "get" (Some "main") (Browser.Dom.get_attribute dom div "id");
  Browser.Dom.set_attribute dom div "id" "other-longer-value";
  Alcotest.(check (option string)) "overwrite" (Some "other-longer-value")
    (Browser.Dom.get_attribute dom div "id");
  Alcotest.(check int) "two attrs" 2 (Browser.Dom.attribute_count dom div)

let test_dom_memory_in_trusted_pool () =
  let b = fresh Pkru_safe.Config.Base in
  let env = Browser.env b in
  let before = (Allocators.Pkalloc.trusted_stats (Pkru_safe.Env.pkalloc env)).Allocators.Alloc_stats.allocs in
  Browser.load_page b "<div id=\"x\">text</div>";
  let after = (Allocators.Pkalloc.trusted_stats (Pkru_safe.Env.pkalloc env)).Allocators.Alloc_stats.allocs in
  Alcotest.(check bool) "DOM allocates from the trusted allocator" true (after > before)

let test_dom_query_and_serialize () =
  let b = fresh Pkru_safe.Config.Base in
  let dom = Browser.dom b in
  Browser.load_page b {|<div><p>one</p><p>two</p></div><p>three</p>|};
  Alcotest.(check int) "query finds all" 3 (List.length (Browser.Dom.query_tag dom "p"));
  Alcotest.(check string) "serialize"
    {|<div><p>one</p><p>two</p></div><p>three</p>|}
    (Browser.Dom.serialize dom (Browser.Dom.root dom))

let test_dom_remove_children_frees () =
  let b = fresh Pkru_safe.Config.Base in
  let dom = Browser.dom b in
  let env = Browser.env b in
  Browser.load_page b {|<div a="1"><span>deep</span><span>tree</span></div>|};
  let stats = Allocators.Pkalloc.trusted_stats (Pkru_safe.Env.pkalloc env) in
  let live_before = Allocators.Alloc_stats.live_bytes stats in
  let nodes_before = Browser.Dom.node_count dom in
  Browser.Dom.remove_children dom (Browser.Dom.root dom);
  Alcotest.(check bool) "nodes released" true (Browser.Dom.node_count dom < nodes_before);
  Alcotest.(check int) "root only" 1 (Browser.Dom.node_count dom);
  Alcotest.(check bool) "heap shrank" true (Allocators.Alloc_stats.live_bytes stats < live_before)

(* --- Scripts against the DOM (base mode) --- *)

let test_script_builds_dom () =
  let b = fresh Pkru_safe.Config.Base in
  ignore
    (Browser.exec_script b
       {|
var root = domRoot();
for (var i = 0; i < 5; i = i + 1) {
  var d = domCreateElement("div");
  domSetAttribute(d, "idx", "n" + i);
  domAppendChild(root, d);
}
print(domChildCount(root));
|});
  Alcotest.(check (list string)) "script saw its DOM" [ "5" ] (Browser.console b);
  Alcotest.(check int) "host DOM agrees" 5
    (Browser.Dom.child_count (Browser.dom b) (Browser.Dom.root (Browser.dom b)))

let test_script_reads_attributes_and_html () =
  let b = fresh Pkru_safe.Config.Base in
  Browser.load_page b {|<div id="target" data="payload"><span>in</span></div>|};
  ignore
    (Browser.exec_script b
       {|
var divs = domQueryTag("div");
var d = divs[0];
print(domGetAttribute(d, "data"));
print(domGetInnerHTML(d));
print(domTextContent(d));
|});
  Alcotest.(check (list string)) "script output"
    [ "payload"; "<span>in</span>"; "in" ]
    (Browser.console b)

let test_script_inner_html_assignment () =
  let b = fresh Pkru_safe.Config.Base in
  Browser.load_page b {|<div id="host">old</div>|};
  ignore
    (Browser.exec_script b
       {|
var d = domQueryTag("div")[0];
domSetInnerHTML(d, "<p>new</p><p>content</p>");
print(domChildCount(d));
|});
  Alcotest.(check (list string)) "replaced" [ "2" ] (Browser.console b);
  Alcotest.(check int) "query sees new nodes" 2
    (List.length (Browser.Dom.query_tag (Browser.dom b) "p"))

let test_title_bindings () =
  let b = fresh Pkru_safe.Config.Base in
  ignore (Browser.exec_script b {|domSetTitle("hello"); print(domGetTitle() + "!");|});
  Alcotest.(check (list string)) "title round-trip" [ "hello!" ] (Browser.console b)

(* --- The compartment story (E2 in miniature) --- *)

let drive_page b =
  Browser.load_page b {|<div id="app" data="seed"><p>alpha</p><p>beta</p></div>|};
  ignore
    (Browser.exec_script b
       {|
var app = domQueryTag("div")[0];
var total = 0;
for (var i = 0; i < 4; i = i + 1) {
  var p = domCreateElement("p");
  domAppendChild(app, p);
  total = total + domChildCount(app);
}
var data = domGetAttribute(app, "data");
var html = domGetInnerHTML(app);
var txt = domTextContent(app);
print(data + ":" + total + ":" + html.charCodeAt(0) + ":" + txt.substring(0, 3));
|});
  Browser.console b

let test_profiling_browser_records_shared_sites () =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling)) in
  let b = Browser.create env in
  let out = drive_page b in
  Alcotest.(check (list string)) "profiled run behaves" [ "seed:18:60:alp" ] out;
  let profile = Pkru_safe.Env.recorded_profile env in
  (* The shared buffers were discovered... *)
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Printf.sprintf "profile has %s" (Runtime.Alloc_id.to_string site))
        true (Runtime.Profile.mem profile site))
    [ Browser.Sites.script_source; Browser.Sites.get_attribute; Browser.Sites.inner_html;
      Browser.Sites.text_content ];
  (* ...and the DOM's internal records were not. *)
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Printf.sprintf "profile lacks %s" (Runtime.Alloc_id.to_string site))
        false (Runtime.Profile.mem profile site))
    [ Browser.Sites.node_record; Browser.Sites.attr_record; Browser.Sites.attr_value ]

let test_enforced_browser_works_with_profile () =
  (* Stage 1: profile. *)
  let prof_env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling)) in
  let prof_browser = Browser.create prof_env in
  ignore (drive_page prof_browser);
  let profile = Pkru_safe.Env.recorded_profile prof_env in
  (* Stage 2: enforce; the same workload must run cleanly and count
     transitions through real gates. *)
  let env = ok (Pkru_safe.Env.create ~profile (Pkru_safe.Config.make Pkru_safe.Config.Mpk)) in
  let b = Browser.create env in
  Alcotest.(check (list string)) "enforced run behaves" [ "seed:18:60:alp" ] (drive_page b);
  Alcotest.(check bool) "transitions happened" true (Pkru_safe.Env.transitions env > 10);
  Alcotest.(check bool) "some sites moved to MU" true (Pkru_safe.Env.sites_moved env >= 4);
  Alcotest.(check bool) "%MU positive" true (Pkru_safe.Env.percent_untrusted_bytes env > 0.0)

let test_enforced_browser_without_profile_crashes () =
  let env =
    ok
      (Pkru_safe.Env.create ~profile:(Runtime.Profile.create ())
         (Pkru_safe.Config.make Pkru_safe.Config.Mpk))
  in
  let b = Browser.create env in
  match Browser.exec_script b "1 + 1;" with
  | exception Vmm.Fault.Unhandled { Vmm.Fault.kind = Vmm.Fault.Pkey_violation _; _ } -> ()
  | _ -> Alcotest.fail "engine read of unprofiled script buffer should crash"

let test_partial_profile_crashes_on_missed_flow () =
  (* Profile only a script that never touches attributes; then run one that
     does: the getAttribute buffer is a missed dataflow and must crash. *)
  let prof_env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling)) in
  let pb = Browser.create prof_env in
  ignore (Browser.exec_script pb "1;");
  let profile = Pkru_safe.Env.recorded_profile prof_env in
  let env = ok (Pkru_safe.Env.create ~profile (Pkru_safe.Config.make Pkru_safe.Config.Mpk)) in
  let b = Browser.create env in
  Browser.load_page b {|<div data="x">y</div>|};
  (match Browser.exec_script b "1;" with
  | _ -> ());
  match
    Browser.exec_script b {|var d = domQueryTag("div")[0]; domGetAttribute(d, "data").charCodeAt(0);|}
  with
  | exception Vmm.Fault.Unhandled _ -> ()
  | _ -> Alcotest.fail "missed dataflow should crash the enforcement build"

let test_secret_planted () =
  let b = fresh Pkru_safe.Config.Base in
  Alcotest.(check int) "secret" Browser.secret_value (Browser.read_secret b)

let test_base_and_mpk_agree_on_output () =
  (* Functional equivalence across configurations: same scripts, same
     observable results. *)
  let base = fresh Pkru_safe.Config.Base in
  let base_out = drive_page base in
  let prof_env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling)) in
  let pb = Browser.create prof_env in
  ignore (drive_page pb);
  let profile = Pkru_safe.Env.recorded_profile prof_env in
  let mpk_env = ok (Pkru_safe.Env.create ~profile (Pkru_safe.Config.make Pkru_safe.Config.Mpk)) in
  let mb = Browser.create mpk_env in
  Alcotest.(check (list string)) "identical output" base_out (drive_page mb)

let test_dom_remove_and_insert () =
  let b = fresh Pkru_safe.Config.Base in
  let dom = Browser.dom b in
  Browser.load_page b {|<ul><li id="a">1</li><li id="b">2</li><li id="c">3</li></ul>|};
  let ul = List.hd (Browser.Dom.query_tag dom "ul") in
  (match Browser.Dom.query_tag dom "li" with
  | [ _a; bn; c ] ->
    Browser.Dom.remove_child dom ~parent:ul ~child:bn;
    Alcotest.(check int) "two left" 2 (Browser.Dom.child_count dom ul);
    Alcotest.(check string) "serialize after removal"
      {|<li id="a">1</li><li id="c">3</li>|}
      (Browser.Dom.serialize dom ul);
    let fresh_li = Browser.Dom.create_element dom "li" in
    Browser.Dom.set_attribute dom fresh_li "id" "z";
    Browser.Dom.insert_before dom ~parent:ul ~child:fresh_li ~before:c;
    Alcotest.(check string) "inserted in the middle"
      {|<li id="a">1</li><li id="z"></li><li id="c">3</li>|}
      (Browser.Dom.serialize dom ul);
    Alcotest.(check bool) "insert attached child rejected" true
      (match Browser.Dom.insert_before dom ~parent:ul ~child:c ~before:c with
      | exception Invalid_argument _ -> true
      | () -> false)
  | _ -> Alcotest.fail "expected three li")

let test_dom_get_element_by_id_and_clone () =
  let b = fresh Pkru_safe.Config.Base in
  let dom = Browser.dom b in
  Browser.load_page b {|<div id="outer" k="v"><span id="inner">text</span></div>|};
  (match Browser.Dom.get_element_by_id dom "inner" with
  | Some n -> Alcotest.(check string) "found inner" "span" (Browser.Dom.tag_name dom n)
  | None -> Alcotest.fail "inner not found");
  Alcotest.(check bool) "missing id" true (Browser.Dom.get_element_by_id dom "nope" = None);
  let outer = Option.get (Browser.Dom.get_element_by_id dom "outer") in
  let clone = Browser.Dom.clone_subtree dom outer in
  Browser.Dom.append_child dom ~parent:(Browser.Dom.root dom) ~child:clone;
  Alcotest.(check (option string)) "attrs cloned" (Some "v")
    (Browser.Dom.get_attribute dom clone "k");
  Alcotest.(check string) "subtree cloned" "text" (Browser.Dom.text_content dom clone);
  Browser.Dom.set_attribute dom clone "k" "changed";
  Alcotest.(check (option string)) "original untouched" (Some "v")
    (Browser.Dom.get_attribute dom outer "k")

let test_new_bindings_from_script () =
  let b = fresh Pkru_safe.Config.Base in
  Browser.load_page b {|<ul><li id="x">a</li><li id="y">b</li></ul>|};
  ignore
    (Browser.exec_script b
       {|
var y = domGetElementById("y");
var ul = domParent(y);
print(domTagName(ul));
var clone = domCloneNode(y);
domInsertBefore(ul, clone, y);
print(domChildCount(ul));
domRemoveChild(ul, y);
print(domChildCount(ul));
print(domGetElementById("zzz") == null ? "none" : "some");
|});
  Alcotest.(check (list string)) "script output" [ "ul"; "3"; "2"; "none" ] (Browser.console b)

let test_event_listeners_and_bubbling () =
  let b = fresh Pkru_safe.Config.Base in
  Browser.load_page b {|<div id="outer"><p id="inner">x</p></div>|};
  ignore
    (Browser.exec_script b
       {|
var outer = domGetElementById("outer");
var inner = domGetElementById("inner");
domAddEventListener(inner, "click", function(n) { print("inner"); });
domAddEventListener(outer, "click", function(n) { print("outer"); });
domAddEventListener(outer, "other", function(n) { print("nope"); });
var fired = domDispatchEvent(inner, "click");
print("fired " + fired);
|});
  Alcotest.(check (list string)) "bubbles target-first, filters by name"
    [ "inner"; "outer"; "fired 2" ]
    (Browser.console b)

let test_event_callbacks_nest_transitions () =
  (* A listener that itself calls a binding creates the deeply nested
     transition chains of §5.3: script -> binding (dispatch) -> engine
     callback -> binding -> ... *)
  let prof_env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling)) in
  let pb = Browser.create prof_env in
  let scenario browser =
    Browser.load_page browser {|<div id="t" data="payload">x</div>|};
    ignore
      (Browser.exec_script browser
         {|
var t = domGetElementById("t");
domAddEventListener(t, "ping", function(n) {
  print("data: " + domGetAttribute(n, "data"));
});
domDispatchEvent(t, "ping");
|});
    Browser.console browser
  in
  let expected = [ "data: payload" ] in
  Alcotest.(check (list string)) "profiling run" expected (scenario pb);
  let profile = Pkru_safe.Env.recorded_profile prof_env in
  let env = ok (Pkru_safe.Env.create ~profile (Pkru_safe.Config.make Pkru_safe.Config.Mpk)) in
  let b = Browser.create env in
  Alcotest.(check (list string)) "enforced run" expected (scenario b);
  (* Deep nesting: script(U) -> dispatch binding(T) -> callback(U) ->
     getAttribute binding(T) = depth 4 on the compartment stack. *)
  Alcotest.(check bool) "deep nesting observed" true
    (Runtime.Comp_stack.max_depth (Runtime.Gate.stack (Pkru_safe.Env.gate env)) >= 4)

let test_multiple_listeners_fire_in_order () =
  let b = fresh Pkru_safe.Config.Base in
  Browser.load_page b {|<div id="d">x</div>|};
  ignore
    (Browser.exec_script b
       {|
var d = domGetElementById("d");
domAddEventListener(d, "go", function(n) { print("first"); });
domAddEventListener(d, "go", function(n) { print("second"); });
domDispatchEvent(d, "go");
|});
  Alcotest.(check (list string)) "registration order" [ "first"; "second" ] (Browser.console b)

let test_gc_roots_protect_listener_captures () =
  (* A listener capturing engine data is held only by the browser's
     listener table; a collection between scripts must not sweep its
     captured values (the embedder roots them). *)
  let b = fresh Pkru_safe.Config.Base in
  Browser.load_page b {|<div id="d">x</div>|};
  ignore
    (Browser.exec_script b
       {|
var d = domGetElementById("d");
var captured = ["kept", "by", "listener"];
function bind_listener(c) {
  return function(n) { print(c.join("-")); };
}
domAddEventListener(d, "go", bind_listener(captured));
captured = null;
|});
  let freed = Browser.collect b in
  Alcotest.(check bool) (Printf.sprintf "collection ran (%d freed)" freed) true (freed >= 0);
  ignore (Browser.exec_script b {|domDispatchEvent(domGetElementById("d"), "go");|});
  Alcotest.(check (list string)) "captured data survived the GC" [ "kept-by-listener" ]
    (Browser.console b)

let suite =
  [
    Alcotest.test_case "html round-trip" `Quick test_html_roundtrip;
    Alcotest.test_case "html errors" `Quick test_html_errors;
    Alcotest.test_case "dom tree construction" `Quick test_dom_tree_construction;
    Alcotest.test_case "dom attributes" `Quick test_dom_attributes;
    Alcotest.test_case "dom memory in MT" `Quick test_dom_memory_in_trusted_pool;
    Alcotest.test_case "dom query + serialize" `Quick test_dom_query_and_serialize;
    Alcotest.test_case "dom remove children frees" `Quick test_dom_remove_children_frees;
    Alcotest.test_case "script builds dom" `Quick test_script_builds_dom;
    Alcotest.test_case "script reads attrs + html" `Quick test_script_reads_attributes_and_html;
    Alcotest.test_case "script innerHTML assignment" `Quick test_script_inner_html_assignment;
    Alcotest.test_case "title bindings" `Quick test_title_bindings;
    Alcotest.test_case "profiling records shared sites" `Quick test_profiling_browser_records_shared_sites;
    Alcotest.test_case "enforced browser works" `Quick test_enforced_browser_works_with_profile;
    Alcotest.test_case "enforced browser without profile crashes" `Quick test_enforced_browser_without_profile_crashes;
    Alcotest.test_case "partial profile crashes" `Quick test_partial_profile_crashes_on_missed_flow;
    Alcotest.test_case "secret planted" `Quick test_secret_planted;
    Alcotest.test_case "base and mpk agree" `Quick test_base_and_mpk_agree_on_output;
    Alcotest.test_case "dom remove + insert" `Quick test_dom_remove_and_insert;
    Alcotest.test_case "dom byId + clone" `Quick test_dom_get_element_by_id_and_clone;
    Alcotest.test_case "new bindings from script" `Quick test_new_bindings_from_script;
    Alcotest.test_case "event listeners + bubbling" `Quick test_event_listeners_and_bubbling;
    Alcotest.test_case "event callbacks nest transitions" `Quick test_event_callbacks_nest_transitions;
    Alcotest.test_case "listeners fire in order" `Quick test_multiple_listeners_fire_in_order;
    Alcotest.test_case "gc roots protect listener captures" `Quick test_gc_roots_protect_listener_captures;
  ]
