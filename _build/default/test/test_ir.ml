(* Tests for the IR: builder, verifier and the compiler passes. *)

open Ir

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let expect_error = function
  | Ok _ -> Alcotest.fail "expected verification error"
  | Error _ -> ()

(* A two-crate module: trusted "app" calling untrusted "clib". *)
let sample_module () =
  let m = Module_ir.create () in
  let u = Builder.create ~name:"u_read" ~crate:"clib" ~nparams:1 () in
  (match Builder.params u with
  | [ p ] ->
    let v = Builder.load u (Instr.Reg p) in
    Builder.ret u (Some (Instr.Reg v))
  | _ -> assert false);
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let p = Builder.alloc f (Instr.Imm 64) in
  Builder.store f ~src:(Instr.Imm 77) ~addr:(Instr.Reg p) ();
  let r = Builder.call f ~ret:true "u_read" [ Instr.Reg p ] in
  Builder.ret f (Some (Instr.Reg (Option.get r)));
  Module_ir.add_func m (Builder.finish f);
  m

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_builder_and_printer () =
  let m = sample_module () in
  let text = Format.asprintf "%a" Module_ir.pp m in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "printer mentions %S" needle)
        true (contains ~needle text))
    [ "func @main"; "__rust_alloc"; "call @u_read"; "crate clib [untrusted]" ]

let test_verifier_accepts_sample () = ok (Verifier.verify (sample_module ()))

let test_verifier_bad_branch () =
  let m = Module_ir.create () in
  let b = Builder.create ~name:"f" ~crate:"app" ~nparams:0 () in
  Builder.br b 7;
  Module_ir.add_func m (Builder.finish b);
  expect_error (Verifier.verify m)

let test_verifier_use_before_def () =
  let m = Module_ir.create () in
  let blocks =
    [|
      { Func.block_id = 0; instrs = [ Instr.Binop (Instr.Add, 1, Instr.Reg 0, Instr.Imm 1) ];
        term = Instr.Ret (Some (Instr.Reg 1)) };
    |]
  in
  Module_ir.add_func m (Func.create ~name:"f" ~crate:"app" ~params:[] blocks);
  expect_error (Verifier.verify m)

let test_verifier_join_requires_all_paths () =
  (* r defined on only one arm of a diamond: use after the join must be
     rejected. *)
  let m = Module_ir.create () in
  let b = Builder.create ~name:"f" ~crate:"app" ~nparams:1 () in
  let then_b = Builder.new_block b in
  let else_b = Builder.new_block b in
  let join_b = Builder.new_block b in
  Builder.cond_br b (Instr.Reg 0) then_b else_b;
  Builder.switch_to b then_b;
  let r = Builder.const b 5 in
  Builder.br b join_b;
  Builder.switch_to b else_b;
  Builder.br b join_b;
  Builder.switch_to b join_b;
  Builder.ret b (Some (Instr.Reg r));
  Module_ir.add_func m (Builder.finish b);
  expect_error (Verifier.verify m)

let test_verifier_unknown_callee_and_arity () =
  let m = Module_ir.create () in
  let b = Builder.create ~name:"f" ~crate:"app" ~nparams:0 () in
  ignore (Builder.call b "ghost" []);
  Builder.ret b None;
  Module_ir.add_func m (Builder.finish b);
  expect_error (Verifier.verify m);
  let m2 = sample_module () in
  let b2 = Builder.create ~name:"g" ~crate:"app" ~nparams:0 () in
  ignore (Builder.call b2 "u_read" []);
  (* u_read takes 1 arg *)
  Builder.ret b2 None;
  Module_ir.add_func m2 (Builder.finish b2);
  expect_error (Verifier.verify m2)

let test_verifier_rejects_gate_outside_wrapper () =
  let m = Module_ir.create () in
  let blocks =
    [| { Func.block_id = 0; instrs = [ Instr.Gate Instr.Enter_trusted ]; term = Instr.Ret None } |]
  in
  Module_ir.add_func m (Func.create ~name:"forged" ~crate:"app" ~params:[] blocks);
  expect_error (Verifier.verify m)

let test_verifier_bad_width () =
  let m = Module_ir.create () in
  let blocks =
    [|
      { Func.block_id = 0; instrs = [ Instr.Load { dst = 0; addr = Instr.Imm 0; width = 3 } ];
        term = Instr.Ret None };
    |]
  in
  Module_ir.add_func m (Func.create ~name:"f" ~crate:"app" ~params:[] blocks);
  expect_error (Verifier.verify m)

let test_verifier_host_whitelist () =
  let m = Module_ir.create () in
  let b = Builder.create ~name:"f" ~crate:"app" ~nparams:0 () in
  ignore (Builder.call_host b "print" [ Instr.Imm 1 ]);
  Builder.ret b None;
  Module_ir.add_func m (Builder.finish b);
  expect_error (Verifier.verify m);
  ok (Verifier.verify ~hosts:(fun h -> h = "print") m)

let alloc_sites_of m =
  Module_ir.fold_funcs m
    (fun acc f ->
      let sites = ref acc in
      Func.iter_instrs f (fun _ i ->
          match i with
          | Instr.Alloc a -> sites := a.site :: !sites
          | _ -> ());
      !sites)
    []

let test_assign_ids_unique () =
  let m = Module_ir.create () in
  let b = Builder.create ~name:"f" ~crate:"app" ~nparams:0 () in
  ignore (Builder.alloc b (Instr.Imm 8));
  ignore (Builder.alloc b (Instr.Imm 8));
  let b2 = Builder.new_block b in
  Builder.br b b2;
  Builder.switch_to b b2;
  ignore (Builder.alloc b (Instr.Imm 8));
  Builder.ret b None;
  Module_ir.add_func m (Builder.finish b);
  let g = Builder.create ~name:"g" ~crate:"app" ~nparams:0 () in
  ignore (Builder.alloc g (Instr.Imm 8));
  Builder.ret g None;
  Module_ir.add_func m (Builder.finish g);
  let n = Passes.assign_alloc_ids m in
  Alcotest.(check int) "4 sites" 4 n;
  let sites = alloc_sites_of m in
  let unique = List.sort_uniq Runtime.Alloc_id.compare sites in
  Alcotest.(check int) "all unique" 4 (List.length unique)

let test_insert_gates_rewrites_call () =
  let m = sample_module () in
  ignore (Passes.assign_alloc_ids m);
  let wrappers = Passes.insert_gates m in
  Alcotest.(check bool) "wrappers created" true (wrappers >= 1);
  (* main's call now goes through the gate wrapper. *)
  let main = Module_ir.func m "main" in
  let callees = ref [] in
  Func.iter_instrs main (fun _ i ->
      match i with
      | Instr.Call c -> callees := c.callee :: !callees
      | _ -> ());
  Alcotest.(check (list string)) "rewritten" [ "__pkru_gate$u_read" ] !callees;
  (* The wrapper exists, is marked, and contains the gate pair. *)
  let w = Module_ir.func m "__pkru_gate$u_read" in
  Alcotest.(check bool) "is wrapper" true w.Func.is_wrapper;
  ok (Verifier.verify m)

let test_insert_gates_retargets_table () =
  let m = Module_ir.create () in
  (* A trusted callback whose address is taken and handed to U. *)
  let cb = Builder.create ~name:"t_callback" ~crate:"app" ~nparams:0 () in
  Builder.ret cb (Some (Instr.Imm 5));
  Module_ir.add_func m (Builder.finish cb);
  let u = Builder.create ~name:"u_invoke" ~crate:"clib" ~nparams:1 () in
  let r = Builder.call_indirect u ~ret:true (Instr.Reg 0) [] in
  Builder.ret u (Some (Instr.Reg (Option.get r)));
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let addr = Builder.func_addr f "t_callback" in
  let r = Builder.call f ~ret:true "u_invoke" [ Instr.Reg addr ] in
  Builder.ret f (Some (Instr.Reg (Option.get r)));
  Module_ir.add_func m (Builder.finish f);
  let compiled, stats =
    ok (Passes.compile ~gates:true ~instrument:false ~hosts:(fun _ -> false) m)
  in
  Alcotest.(check bool) "several wrappers" true (stats.Passes.wrappers >= 2);
  let index = Option.get (Module_ir.find_index compiled "t_callback") in
  Alcotest.(check (option string)) "table entry retargeted"
    (Some "__pkru_entry$t_callback")
    (Module_ir.func_table_entry compiled index)

let test_lower_untrusted_allocs () =
  let m = Module_ir.create () in
  let u = Builder.create ~name:"u_mk" ~crate:"clib" ~nparams:0 () in
  let p = Builder.alloc u (Instr.Imm 32) in
  Builder.ret u (Some (Instr.Reg p));
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  Passes.lower_untrusted_allocs m;
  Func.iter_instrs (Module_ir.func m "u_mk") (fun _ i ->
      match i with
      | Instr.Alloc a ->
        Alcotest.(check bool) "U alloc lowered to MU" true (a.pool = Instr.Untrusted_pool)
      | _ -> ())

let test_apply_profile_moves_only_recorded () =
  let m = sample_module () in
  ignore (Passes.assign_alloc_ids m);
  let sites = alloc_sites_of m in
  let target = List.hd sites in
  let moved = Passes.apply_profile m ~in_profile:(Runtime.Alloc_id.equal target) in
  Alcotest.(check int) "one site moved" 1 moved;
  (* Idempotent: a second application moves nothing. *)
  Alcotest.(check int) "idempotent" 0
    (Passes.apply_profile m ~in_profile:(Runtime.Alloc_id.equal target))

let test_compile_copies_source () =
  let m = sample_module () in
  let compiled, _ =
    ok (Passes.compile ~gates:true ~instrument:true ~hosts:(fun _ -> false) m)
  in
  (* The source module is untouched: no wrappers, no instrumented sites. *)
  Alcotest.(check bool) "no wrapper in source" true
    (Module_ir.find_func m "__pkru_gate$u_read" = None);
  Alcotest.(check bool) "wrapper in compiled" true
    (Module_ir.find_func compiled "__pkru_gate$u_read" <> None);
  Func.iter_instrs (Module_ir.func m "main") (fun _ i ->
      match i with
      | Instr.Alloc a -> Alcotest.(check bool) "source uninstrumented" false a.instrumented
      | _ -> ())

let suite =
  [
    Alcotest.test_case "builder + printer" `Quick test_builder_and_printer;
    Alcotest.test_case "verifier accepts sample" `Quick test_verifier_accepts_sample;
    Alcotest.test_case "verifier: bad branch" `Quick test_verifier_bad_branch;
    Alcotest.test_case "verifier: use before def" `Quick test_verifier_use_before_def;
    Alcotest.test_case "verifier: partial definition at join" `Quick test_verifier_join_requires_all_paths;
    Alcotest.test_case "verifier: callee checks" `Quick test_verifier_unknown_callee_and_arity;
    Alcotest.test_case "verifier: forged gate" `Quick test_verifier_rejects_gate_outside_wrapper;
    Alcotest.test_case "verifier: bad width" `Quick test_verifier_bad_width;
    Alcotest.test_case "verifier: host whitelist" `Quick test_verifier_host_whitelist;
    Alcotest.test_case "assign ids unique" `Quick test_assign_ids_unique;
    Alcotest.test_case "gates rewrite calls" `Quick test_insert_gates_rewrites_call;
    Alcotest.test_case "gates retarget table" `Quick test_insert_gates_retargets_table;
    Alcotest.test_case "untrusted allocs lowered" `Quick test_lower_untrusted_allocs;
    Alcotest.test_case "profile apply" `Quick test_apply_profile_moves_only_recorded;
    Alcotest.test_case "compile copies source" `Quick test_compile_copies_source;
  ]
