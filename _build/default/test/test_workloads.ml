(* Tests for the workload library: every kernel must run and print one
   checksum, micro-benchmark ratios must have the paper's shape, and the
   runner must produce agreeing outputs across configurations. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let run_script ?(page = "<body></body>") script =
  let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Base)) in
  let b = Browser.create env in
  Browser.load_page b page;
  ignore (Browser.exec_script b script);
  Browser.console b

let all_kernels =
  [
    ("fft", Workloads.Kernels.fft ~n:64);
    ("dft", Workloads.Kernels.dft ~n:24);
    ("oscillator", Workloads.Kernels.oscillator ~n:64 ~steps:4);
    ("beat", Workloads.Kernels.beat_detection ~n:400);
    ("blur", Workloads.Kernels.gaussian_blur ~w:12 ~h:10 ~passes:2);
    ("darkroom", Workloads.Kernels.darkroom ~pixels:500);
    ("desaturate", Workloads.Kernels.desaturate ~pixels:300);
    ("jsonparse", Workloads.Kernels.json_parse_kernel ~rows:20);
    ("jsonstringify", Workloads.Kernels.json_stringify_kernel ~rows:16);
    ("aes", Workloads.Kernels.crypto_aes ~blocks:6 ~rounds:4);
    ("ccm", Workloads.Kernels.crypto_ccm ~blocks:8);
    ("pbkdf2", Workloads.Kernels.crypto_pbkdf2 ~iters:200);
    ("sha", Workloads.Kernels.crypto_sha ~iters:200);
    ("astar", Workloads.Kernels.astar ~w:10 ~h:10);
    ("richards", Workloads.Kernels.richards ~iterations:40);
    ("deltablue", Workloads.Kernels.deltablue ~chain:8 ~iters:20);
    ("splay", Workloads.Kernels.splay ~nodes:60 ~lookups:80);
    ("raytrace", Workloads.Kernels.raytrace ~w:8 ~h:6);
    ("navier", Workloads.Kernels.navier_stokes ~n:8 ~steps:3);
    ("codec", Workloads.Kernels.byte_codec ~name:"codec" ~bytes:120 ~rounds:3);
    ("codeload", Workloads.Kernels.codeload ~funcs:25);
    ("regexp", Workloads.Kernels.regexp_scan ~copies:6);
    ("strings", Workloads.Kernels.string_kernel ~iters:12);
    ("floatmix", Workloads.Kernels.float_mix ~n:30 ~iters:5);
    ("boyer", Workloads.Kernels.earley_boyer ~depth:4 ~iters:3);
    ("tokenizer", Workloads.Kernels.tokenizer ~copies:4);
  ]

let test_every_kernel_runs () =
  List.iter
    (fun (name, script) ->
      match run_script script with
      | [ line ] ->
        Alcotest.(check bool)
          (Printf.sprintf "%s prints a checksum (%s)" name line)
          true
          (String.contains line ':')
      | lines ->
        Alcotest.fail
          (Printf.sprintf "%s: expected one output line, got %d" name (List.length lines)))
    all_kernels

let test_kernels_deterministic () =
  List.iter
    (fun (name, script) ->
      Alcotest.(check (list string)) name (run_script script) (run_script script))
    [ ("fft", Workloads.Kernels.fft ~n:64); ("splay", Workloads.Kernels.splay ~nodes:50 ~lookups:50) ]

let test_dom_scripts_run () =
  let page = Workloads.Dom_scripts.page ~rows:6 in
  List.iter
    (fun (name, script) ->
      match run_script ~page script with
      | [ line ] ->
        Alcotest.(check bool) (name ^ " output " ^ line) true (String.contains line ':')
      | lines -> Alcotest.fail (Printf.sprintf "%s: %d lines" name (List.length lines)))
    [
      ("dom_attr", Workloads.Dom_scripts.dom_attr ~iters:10);
      ("dom_create", Workloads.Dom_scripts.dom_create ~iters:10);
      ("dom_query", Workloads.Dom_scripts.dom_query ~iters:4);
      ("dom_html", Workloads.Dom_scripts.dom_html ~iters:4);
      ("dom_traverse", Workloads.Dom_scripts.dom_traverse ~iters:4);
      ("jslib_toggle", Workloads.Dom_scripts.jslib_toggle ~iters:10);
      ("jslib_build", Workloads.Dom_scripts.jslib_build ~iters:4);
      ("dom_style", Workloads.Dom_scripts.dom_style ~iters:4);
      ("dom_events", Workloads.Dom_scripts.dom_events ~iters:4);
      ("jslib_select", Workloads.Dom_scripts.jslib_select ~iters:2);
    ]

let test_micro_shape () =
  let results = Workloads.Microbench.run ~iterations:2_000 () in
  (match results with
  | [ empty; read_one; callback ] ->
    Alcotest.(check string) "order" "Empty" empty.Workloads.Microbench.name;
    (* Paper §5.2: Empty 8.55x > Read-One 7.61x > Callback 6.17x. *)
    Alcotest.(check bool)
      (Printf.sprintf "empty (%.2fx) is the worst" empty.Workloads.Microbench.overhead_x)
      true
      (empty.Workloads.Microbench.overhead_x > read_one.Workloads.Microbench.overhead_x);
    Alcotest.(check bool)
      (Printf.sprintf "read-one (%.2fx) > callback (%.2fx)"
         read_one.Workloads.Microbench.overhead_x callback.Workloads.Microbench.overhead_x)
      true
      (read_one.Workloads.Microbench.overhead_x > callback.Workloads.Microbench.overhead_x);
    Alcotest.(check bool)
      (Printf.sprintf "empty in the paper's regime: %.2fx" empty.Workloads.Microbench.overhead_x)
      true
      (empty.Workloads.Microbench.overhead_x > 5.0 && empty.Workloads.Microbench.overhead_x < 13.0)
  | _ -> Alcotest.fail "expected three micro results")

let test_sweep_decays () =
  let sweep = Workloads.Microbench.sweep ~loop_counts:[ 0; 10; 50; 200 ] ~iterations:500 () in
  let overheads = List.map snd sweep in
  (match overheads with
  | a :: rest ->
    List.iter
      (fun b -> Alcotest.(check bool) "monotone decay" true (b < a))
      [ List.nth rest (List.length rest - 1) ];
    (* The tail approaches 1.0, as in Figure 3. *)
    let tail = List.nth overheads (List.length overheads - 1) in
    Alcotest.(check bool) (Printf.sprintf "tail %.3f near 1" tail) true (tail < 1.3)
  | [] -> Alcotest.fail "empty sweep");
  Alcotest.(check int) "all points" 4 (List.length sweep)

let test_runner_single_bench () =
  let bench =
    Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:4) "mini-dom"
      (Workloads.Dom_scripts.dom_attr ~iters:15)
  in
  let suite = { Workloads.Bench_def.suite_name = "mini"; benches = [ bench ] } in
  let profile = Workloads.Runner.profile_suite suite in
  let r = Workloads.Runner.run_bench ~profile bench in
  Alcotest.(check bool) "outputs agree across configs" true r.Workloads.Runner.outputs_agree;
  Alcotest.(check bool) "mpk run crossed the boundary" true
    (r.Workloads.Runner.mpk.Workloads.Runner.transitions > 30);
  Alcotest.(check int) "base run has no transitions" 0
    (r.Workloads.Runner.base.Workloads.Runner.transitions);
  Alcotest.(check bool) "mpk costs more than base" true
    (r.Workloads.Runner.mpk_overhead_pct > 0.0)

let test_dom_suite_overhead_exceeds_compute_suite () =
  (* The Table-2 shape: binding-bound dom workloads suffer far more from
     gates than engine-bound compute kernels. *)
  let dom_bench =
    Workloads.Bench_def.bench ~page:(Workloads.Dom_scripts.page ~rows:4) "dom"
      (Workloads.Dom_scripts.dom_attr ~iters:40)
  in
  let compute_bench = Workloads.Bench_def.bench "fft" (Workloads.Kernels.fft ~n:128) in
  let run b =
    let suite = { Workloads.Bench_def.suite_name = "s"; benches = [ b ] } in
    let profile = Workloads.Runner.profile_suite suite in
    (Workloads.Runner.run_bench ~profile b).Workloads.Runner.mpk_overhead_pct
  in
  let dom_pct = run dom_bench in
  let compute_pct = run compute_bench in
  Alcotest.(check bool)
    (Printf.sprintf "dom %.1f%% >> compute %.1f%%" dom_pct compute_pct)
    true
    (dom_pct > 2.0 *. Float.max compute_pct 0.5)

let test_jetstream_scores () =
  let bench = Workloads.Bench_def.bench "k" (Workloads.Kernels.crypto_sha ~iters:300) in
  let suite = { Workloads.Bench_def.suite_name = "s"; benches = [ bench ] } in
  let result = Workloads.Runner.run_suite suite in
  let score = Workloads.Runner.geomean_score result in
  Alcotest.(check bool) "scores positive" true (score Pkru_safe.Config.Base > 0.0);
  (* Engine-bound kernels score on par across configurations (Table 3). *)
  let rel =
    Float.abs (score Pkru_safe.Config.Base -. score Pkru_safe.Config.Mpk)
    /. score Pkru_safe.Config.Base
  in
  Alcotest.(check bool) (Printf.sprintf "scores within 10%% (%.3f)" rel) true (rel < 0.10)

let test_suite_definitions_well_formed () =
  let check_suite (s : Workloads.Bench_def.suite) =
    Alcotest.(check bool) (s.Workloads.Bench_def.suite_name ^ " nonempty") true
      (List.length s.Workloads.Bench_def.benches > 0);
    let names = List.map (fun b -> b.Workloads.Bench_def.name) s.Workloads.Bench_def.benches in
    Alcotest.(check int)
      (s.Workloads.Bench_def.suite_name ^ " unique names")
      (List.length names)
      (List.length (List.sort_uniq compare names))
  in
  List.iter check_suite
    (Workloads.Dromaeo.all :: Workloads.Kraken.all :: Workloads.Octane.all
     :: Workloads.Jetstream.all :: Workloads.Dromaeo.sub_suites)

let test_browsing_corpus () =
  let corpus = Workloads.Browsing.collect () in
  Alcotest.(check int) "seven sessions" 7 (Runtime.Corpus.run_count corpus);
  let profile = Runtime.Corpus.merged corpus in
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Printf.sprintf "corpus covers %s" (Runtime.Alloc_id.to_string site))
        true (Runtime.Profile.mem profile site))
    Browser.Sites.shared_with_engine;
  (* Every session replays cleanly on an enforcement build carrying the
     deployment profile (the paper's E2 behaviour). *)
  List.iter
    (fun session ->
      let env = ok (Pkru_safe.Env.create ~profile (Pkru_safe.Config.make Pkru_safe.Config.Mpk)) in
      let out = Workloads.Browsing.run_session env session in
      Alcotest.(check bool)
        (session.Workloads.Browsing.session_name ^ " produced output")
        true (out <> []))
    Workloads.Browsing.sessions;
  (* And the growth curve saturates: later sessions add fewer new sites. *)
  match Runtime.Corpus.marginal_gains corpus with
  | (first_name, first) :: rest ->
    Alcotest.(check bool) (first_name ^ " seeds the corpus") true (first > 0);
    let tail_total = List.fold_left (fun acc (_, n) -> acc + n) 0 rest in
    Alcotest.(check bool) "tail adds less than the head" true (tail_total <= first + 2)
  | [] -> Alcotest.fail "empty corpus"

let test_single_session_profile_is_incomplete () =
  (* One session alone is not a sufficient corpus: some other session
     crashes under its profile — the missed-dataflow behaviour. *)
  let wpt_only =
    let env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling)) in
    ignore (Workloads.Browsing.run_session env (List.hd Workloads.Browsing.sessions));
    Pkru_safe.Env.recorded_profile env
  in
  let crashed = ref 0 in
  List.iter
    (fun session ->
      let env =
        ok (Pkru_safe.Env.create ~profile:wpt_only (Pkru_safe.Config.make Pkru_safe.Config.Mpk))
      in
      match Workloads.Browsing.run_session env session with
      | _ -> ()
      | exception Vmm.Fault.Unhandled _ -> incr crashed)
    Workloads.Browsing.sessions;
  Alcotest.(check bool) "some session crashes on the thin profile" true (!crashed > 0)

let suite =
  [
    Alcotest.test_case "every kernel runs" `Quick test_every_kernel_runs;
    Alcotest.test_case "kernels deterministic" `Quick test_kernels_deterministic;
    Alcotest.test_case "dom scripts run" `Quick test_dom_scripts_run;
    Alcotest.test_case "micro shape (5.2)" `Quick test_micro_shape;
    Alcotest.test_case "sweep decays (fig 3)" `Quick test_sweep_decays;
    Alcotest.test_case "runner single bench" `Quick test_runner_single_bench;
    Alcotest.test_case "dom >> compute overhead (table 2)" `Quick test_dom_suite_overhead_exceeds_compute_suite;
    Alcotest.test_case "jetstream scores" `Quick test_jetstream_scores;
    Alcotest.test_case "suite definitions" `Quick test_suite_definitions_well_formed;
    Alcotest.test_case "browsing corpus" `Quick test_browsing_corpus;
    Alcotest.test_case "single-session profile incomplete" `Quick test_single_session_profile_is_incomplete;
  ]
