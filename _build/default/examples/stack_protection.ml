(* stack_protection: the §6 extension, implemented.

   The paper's threat model assumes T's stack is protected; §6 sketches
   how the heap methodology would extend to stack data: "mark the stack
   used by T also to be part of MT, and rely on profiling to identify each
   stack allocation ... no methodology change over our approach with heap
   data."  This example shows exactly that lifecycle on a stack slot:

     1. the trusted stack region carries the trusted key, so an
        enforcement build without a profile kills U's access to a stack
        buffer;
     2. profiling attributes the fault to the alloca site;
     3. the rebuilt program demotes that one site to a frame-lifetime
        MU heap allocation, while other stack slots stay on the stack.

   Run with: dune exec examples/stack_protection.exe *)

let ok = function
  | Ok v -> v
  | Error msg -> failwith msg

let source () =
  let open Ir in
  let m = Module_ir.create () in
  (* clib.u_checksum(buf, len): reads the first bytes of a caller-provided
     buffer. *)
  let u = Builder.create ~name:"u_checksum" ~crate:"clib" ~nparams:2 () in
  let b0 = Builder.load u ~width:1 (Instr.Reg 0) in
  let a1 = Builder.binop u Instr.Add (Instr.Reg 0) (Instr.Imm 1) in
  let b1 = Builder.load u ~width:1 (Instr.Reg a1) in
  let sum = Builder.binop u Instr.Add (Instr.Reg b0) (Instr.Reg b1) in
  Builder.ret u (Some (Instr.Reg sum));
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  (* app.main: a stack buffer handed to U, and a private stack slot. *)
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let io_buf = Builder.alloca f (Instr.Imm 64) in
  let secret = Builder.alloca f (Instr.Imm 16) in
  Builder.store f ~src:(Instr.Imm 77) ~addr:(Instr.Reg io_buf) ();
  Builder.store f ~src:(Instr.Imm 42) ~addr:(Instr.Reg secret) ();
  let r = Builder.call f ~ret:true "u_checksum" [ Instr.Reg io_buf; Instr.Imm 8 ] in
  let s = Builder.load f (Instr.Reg secret) in
  let sum = Builder.binop f Instr.Add (Instr.Reg (Option.get r)) (Instr.Reg s) in
  Builder.ret f (Some (Instr.Reg sum));
  Module_ir.add_func m (Builder.finish f);
  m

let () =
  let src = source () in
  print_endline "== step 1: enforce without a profile — U touches a T stack buffer";
  let deny =
    ok (Toolchain.Pipeline.build ~profile:(Runtime.Profile.create ()) ~mode:Pkru_safe.Config.Mpk
          (src))
  in
  (match Toolchain.Interp.run deny.Toolchain.Pipeline.interp "main" [] with
  | v -> Printf.printf "   !! survived: %d\n" v
  | exception Vmm.Fault.Unhandled fault ->
    Printf.printf "   crash on the stack slot: %s\n" (Vmm.Fault.to_string fault));

  print_endline "== step 2: profiling attributes the fault to the alloca site";
  let profile =
    ok (Toolchain.Pipeline.collect_profile (src)
          ~inputs:[ (fun i -> ignore (Toolchain.Interp.run i "main" [])) ])
  in
  List.iter
    (fun site -> Printf.printf "   shared stack site: %s\n" (Runtime.Alloc_id.to_string site))
    (Runtime.Profile.sites profile);

  print_endline "== step 3: rebuild — the shared slot becomes a frame-lifetime MU allocation";
  let final = ok (Toolchain.Pipeline.build ~profile ~mode:Pkru_safe.Config.Mpk (src)) in
  Printf.printf "   main() = %d (io buffer checksummed by U; private slot untouched in MT)\n"
    (Toolchain.Interp.run final.Toolchain.Pipeline.interp "main" []);
  Printf.printf "   sites moved: %d of %d\n"
    final.Toolchain.Pipeline.pass_stats.Ir.Passes.sites_moved
    final.Toolchain.Pipeline.pass_stats.Ir.Passes.alloc_sites
