(* static_analysis: partitioning without a profiling stage (paper §6).

   The paper chose dynamic profiling because LLVM-scale pointer analyses
   were unsound or exploded, but notes the system "supports instrumentation
   entirely based on static analysis in principle, which we tested using
   various small programs".  This example does exactly that — and then
   demonstrates the §6 trade-off: the analysis flags an allocation that
   only flows to U on a branch that never executes, which dynamic
   profiling would have kept private.

   Run with: dune exec examples/static_analysis.exe *)

let ok = function
  | Ok v -> v
  | Error msg -> failwith msg

let source () =
  let open Ir in
  let m = Module_ir.create () in
  let u = Builder.create ~name:"u_take" ~crate:"clib" ~nparams:1 () in
  let v = Builder.load u (Instr.Reg 0) in
  Builder.ret u (Some (Instr.Reg v));
  Module_ir.add_func m (Builder.finish u);
  Module_ir.mark_untrusted m "clib";
  let f = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let dead = Builder.new_block f in
  let live = Builder.new_block f in
  (* One object genuinely shared, one shared only on a dead branch, one
     never shared at all. *)
  let hot = Builder.alloc f (Instr.Imm 16) in
  let cold = Builder.alloc f (Instr.Imm 16) in
  let never = Builder.alloc f (Instr.Imm 16) in
  Builder.store f ~src:(Instr.Imm 7) ~addr:(Instr.Reg hot) ();
  Builder.store f ~src:(Instr.Imm 8) ~addr:(Instr.Reg cold) ();
  Builder.store f ~src:(Instr.Imm 9) ~addr:(Instr.Reg never) ();
  let r = Builder.call f ~ret:true "u_take" [ Instr.Reg hot ] in
  let flag = Builder.const f 0 in
  Builder.cond_br f (Instr.Reg flag) dead live;
  Builder.switch_to f dead;
  ignore (Builder.call f "u_take" [ Instr.Reg cold ]);
  Builder.br f live;
  Builder.switch_to f live;
  let n = Builder.load f (Instr.Reg never) in
  let sum = Builder.binop f Instr.Add (Instr.Reg (Option.get r)) (Instr.Reg n) in
  Builder.ret f (Some (Instr.Reg sum));
  Module_ir.add_func m (Builder.finish f);
  m

let () =
  let src = source () in
  print_endline "== dynamic profiling (one benign input)";
  let profile =
    ok (Toolchain.Pipeline.collect_profile (src)
          ~inputs:[ (fun i -> ignore (Toolchain.Interp.run i "main" [])) ])
  in
  let dyn = ok (Toolchain.Pipeline.build ~profile ~mode:Pkru_safe.Config.Mpk (src)) in
  Printf.printf "   sites moved: %d of 3   main() = %d\n"
    dyn.Toolchain.Pipeline.pass_stats.Ir.Passes.sites_moved
    (Toolchain.Interp.run dyn.Toolchain.Pipeline.interp "main" []);

  print_endline "\n== static taint analysis (no profiling runs at all)";
  let static_build, result = ok (Toolchain.Pipeline.build_static ~mode:Pkru_safe.Config.Mpk (src)) in
  Printf.printf "   sites flagged: %d of 3 (fixpoint in %d rounds)   main() = %d\n"
    (Runtime.Alloc_id.Set.cardinal result.Ir.Static_taint.shared)
    result.Ir.Static_taint.iterations
    (Toolchain.Interp.run static_build.Toolchain.Pipeline.interp "main" []);
  print_endline
    "\nThe static build moves one extra object (the dead-branch flow): sound\n\
     but over-approximate, exactly the §6 trade-off.  The never-shared\n\
     object stays in MT under both strategies."
