(* servo_like: the paper's flagship scenario in miniature (experiment E2).

   A browser written in the safe language hosts a script engine written in
   an unsafe one.  We profile a browsing session, rebuild with enforcement,
   and rerun the same session — then show that a workload the profile never
   saw still crashes, which is exactly the deployment consideration §6
   discusses.

   Run with: dune exec examples/servo_like.exe *)

let ok = function
  | Ok v -> v
  | Error msg -> failwith msg

let page =
  {|<div id="app" class="shell" data="state0">
      <h1>mini servo</h1>
      <ul id="list"><li>first</li><li>second</li></ul>
    </div>|}

(* The "browsing session" used both as the profiling corpus and as the
   deployed workload. *)
let session =
  {|
var app = domQueryTag("div")[0];
var list = domQueryTag("ul")[0];
for (var i = 0; i < 8; i = i + 1) {
  var li = domCreateElement("li");
  domAppendChild(list, li);
  domSetAttribute(app, "data", "state" + i);
}
var state = domGetAttribute(app, "data");
var html = domGetInnerHTML(list);
domSetAttribute(app, "style", "width:600;padding:8");
var height = domReflow();
var box = domGetBox(app);
print("final state: " + state);
print("list items:  " + domChildCount(list));
print("list html starts with: " + html.substring(0, 14));
print("layout: document height " + height + ", app box " + box);
|}

(* A workload the profiling corpus never exercised: reading textContent
   crosses the boundary through a site the profile does not contain. *)
let unprofiled = {|print(domTextContent(domRoot()).charCodeAt(0));|}

let run_in mode ~profile =
  let env = ok (Pkru_safe.Env.create ~profile (Pkru_safe.Config.make mode)) in
  let browser = Browser.create env in
  Browser.load_page browser page;
  ignore (Browser.exec_script browser session);
  (env, browser)

let () =
  print_endline "== profiling the browsing session";
  let prof_env = ok (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling)) in
  let prof_browser = Browser.create prof_env in
  Browser.load_page prof_browser page;
  ignore (Browser.exec_script prof_browser session);
  List.iter (fun line -> Printf.printf "   | %s\n" line) (Browser.console prof_browser);
  let profile = Pkru_safe.Env.recorded_profile prof_env in
  Printf.printf "   profile: %d shared allocation sites\n\n" (Runtime.Profile.cardinal profile);

  print_endline "== enforcement build, same session";
  let env, browser = run_in Pkru_safe.Config.Mpk ~profile in
  List.iter (fun line -> Printf.printf "   | %s\n" line) (Browser.console browser);
  Printf.printf "   transitions: %d   %%MU: %.2f   sites moved/used: %d/%d\n"
    (Pkru_safe.Env.transitions env)
    (Pkru_safe.Env.percent_untrusted_bytes env)
    (Pkru_safe.Env.sites_moved env) (Pkru_safe.Env.sites_used env);

  print_endline "\n== the same build on a workload the corpus never covered";
  (match Browser.exec_script browser unprofiled with
  | _ -> print_endline "   !! unexpectedly survived"
  | exception Vmm.Fault.Unhandled fault ->
    Printf.printf "   crash (missed dataflow, as §6 predicts): %s\n" (Vmm.Fault.to_string fault));

  print_endline "\n== overhead of this session across configurations";
  let cycles mode =
    let env, _ = run_in mode ~profile in
    Pkru_safe.Env.cycles env
  in
  let base = cycles Pkru_safe.Config.Base in
  let alloc = cycles Pkru_safe.Config.Alloc in
  let mpk = cycles Pkru_safe.Config.Mpk in
  Printf.printf "   base  %8d cycles\n" base;
  Printf.printf "   alloc %8d cycles (%+.2f%%)\n" alloc
    (Util.Stats.percent_overhead ~baseline:(float_of_int base) ~measured:(float_of_int alloc));
  Printf.printf "   mpk   %8d cycles (%+.2f%%)\n" mpk
    (Util.Stats.percent_overhead ~baseline:(float_of_int base) ~measured:(float_of_int mpk))
