examples/quickstart.mli:
