examples/stack_protection.ml: Builder Instr Ir List Module_ir Option Pkru_safe Printf Runtime Toolchain Vmm
