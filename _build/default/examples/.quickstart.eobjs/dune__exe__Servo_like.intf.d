examples/servo_like.mli:
