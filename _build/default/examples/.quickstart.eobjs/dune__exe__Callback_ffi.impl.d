examples/callback_ffi.ml: Builder Format Instr Ir Module_ir Option Pkru_safe Printf Runtime Toolchain
