examples/stack_protection.mli:
