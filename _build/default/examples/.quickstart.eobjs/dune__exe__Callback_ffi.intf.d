examples/callback_ffi.mli:
