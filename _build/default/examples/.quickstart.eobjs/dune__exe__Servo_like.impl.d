examples/servo_like.ml: Browser List Pkru_safe Printf Runtime Util Vmm
