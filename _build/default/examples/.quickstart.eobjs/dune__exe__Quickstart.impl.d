examples/quickstart.ml: Builder Instr Ir List Module_ir Pkru_safe Printf Runtime Toolchain Vmm
