examples/static_analysis.ml: Builder Instr Ir Module_ir Option Pkru_safe Printf Runtime Toolchain
