(* Quickstart: the smallest end-to-end use of the public API.

   We build a two-crate program — trusted [app] and untrusted [clib] —
   where app hands one heap object across the FFI and keeps a second one
   private.  Then we run the artifact's three steps (experiment E1):

     1. build with enforcement but no profile  -> the shared access crashes
     2. build with profiling, run the inputs   -> the shared site is found
     3. rebuild with the profile               -> works, private data safe

   Run with: dune exec examples/quickstart.exe *)

let ok = function
  | Ok v -> v
  | Error msg -> failwith msg

(* Step 0: describe the program in the IR.  [clib.poke] writes 1337 into
   the pointer it is given; [app.main] shares one object and keeps a
   second private. *)
let source () =
  let open Ir in
  let m = Module_ir.create () in

  let poke = Builder.create ~name:"poke" ~crate:"clib" ~nparams:1 () in
  Builder.store poke ~src:(Instr.Imm 1337) ~addr:(Instr.Reg 0) ();
  Builder.ret poke None;
  Module_ir.add_func m (Builder.finish poke);

  (* The developer annotation: one line marking the crate untrusted. *)
  Module_ir.mark_untrusted m "clib";

  let main = Builder.create ~name:"main" ~crate:"app" ~nparams:0 () in
  let shared = Builder.alloc main (Instr.Imm 64) in
  let secret = Builder.alloc main (Instr.Imm 64) in
  Builder.store main ~src:(Instr.Imm 0) ~addr:(Instr.Reg shared) ();
  Builder.store main ~src:(Instr.Imm 42) ~addr:(Instr.Reg secret) ();
  ignore (Builder.call main "poke" [ Instr.Reg shared ]);
  let v = Builder.load main (Instr.Reg shared) in
  Builder.ret main (Some (Instr.Reg v));
  Module_ir.add_func m (Builder.finish main);
  m

let () =
  let src = source () in

  print_endline "== step 1: enforcement with an empty profile (expected: crash)";
  let deny =
    ok (Toolchain.Pipeline.build ~profile:(Runtime.Profile.create ())
          ~mode:Pkru_safe.Config.Mpk (src))
  in
  (match Toolchain.Interp.run deny.Toolchain.Pipeline.interp "main" [] with
  | v -> Printf.printf "   !! ran to completion: %d\n" v
  | exception Vmm.Fault.Unhandled fault ->
    Printf.printf "   crash: %s\n" (Vmm.Fault.to_string fault));

  print_endline "== step 2: profiling build discovers the shared allocation";
  let profile =
    ok (Toolchain.Pipeline.collect_profile (src)
          ~inputs:[ (fun interp -> ignore (Toolchain.Interp.run interp "main" [])) ])
  in
  List.iter
    (fun site -> Printf.printf "   shared site: %s\n" (Runtime.Alloc_id.to_string site))
    (Runtime.Profile.sites profile);

  print_endline "== step 3: enforcement with the profile (expected: 0 -> 1337)";
  let final = ok (Toolchain.Pipeline.build ~profile ~mode:Pkru_safe.Config.Mpk (src)) in
  Printf.printf "   main() = %d\n" (Toolchain.Interp.run final.Toolchain.Pipeline.interp "main" []);
  Printf.printf "   compiler stats: %d alloc sites, %d moved to MU, %d call gates generated\n"
    final.Toolchain.Pipeline.pass_stats.Ir.Passes.alloc_sites
    final.Toolchain.Pipeline.pass_stats.Ir.Passes.sites_moved
    final.Toolchain.Pipeline.pass_stats.Ir.Passes.wrappers;
  Printf.printf "   compartment transitions executed: %d\n"
    (Pkru_safe.Env.transitions final.Toolchain.Pipeline.env)
