(** The engine facade: the project's SpiderMonkey stand-in.

    An engine instance owns a machine-backed heap and an evaluator.  The
    embedder (the browser) is expected to invoke {!eval_source} from
    inside the untrusted compartment — i.e. within
    [Pkru_safe.Env.ffi_call] — so that lexing, evaluation and every data
    access the script performs are subject to MPK checks. *)

module Value = Value
module Lexer = Lexer
module Parser = Parser
module Ast = Ast
module Eval = Eval
module Bytecode = Bytecode
module Threaded = Threaded
module Opstats = Opstats

type tier =
  | Ast_tier      (** tree-walking evaluator (default) *)
  | Bytecode_tier (** compile to stack bytecode, then interpret (reference) *)
  | Threaded_tier
      (** closure-compiled dispatch + superinstructions + inline caches
          (layers per [!Threaded.config]); simulates bit-identically to
          [Bytecode_tier] *)

type t

val create : ?seed:int -> ?fuel:int -> ?engine_opts:Threaded.opts -> Pkru_safe.Env.t -> t
(** [engine_opts] pins this instance's threaded-tier layers; omitted, the
    instance defers to [!Threaded.config] at eval time (so
    [Threaded.with_opts] keeps working for process-wide toggles). *)

val env : t -> Pkru_safe.Env.t
val heap : t -> Value.heap
val evaluator : t -> Eval.t

val threaded_stats : t -> Threaded.stats
(** This instance's threaded-tier counters (accumulated across
    [eval_source] calls; variable-IC counters are on the evaluator:
    [Eval.ic_stats (evaluator t)]). *)

val reset_stats : t -> unit
(** Zeroes both the variable-IC and threaded-tier counters. *)

val register_host : t -> string -> Eval.host -> unit
(** Expose an embedder function (e.g. a DOM binding) as a script global. *)

val eval_source : ?tier:tier -> t -> Value.str -> Value.t
(** Tokenise, parse and run a script held in machine memory (possibly a
    buffer owned by the trusted side — the classic shared data flow).
    Both tiers are observationally equivalent; the default is the AST
    tier.
    @raise Eval.Script_error / Lexer.Lex_error / Parser.Parse_error *)

val eval_string : ?tier:tier -> t -> string -> Value.t
(** Convenience for tests: copies the text into the engine's own MU heap
    first, then evaluates. *)

val take_output : t -> string list

val collect : t -> int
(** Run a garbage collection at this quiescence point (between scripts);
    returns the number of machine buffers reclaimed. *)

val add_gc_root : t -> (unit -> Value.t list) -> unit
(** Register embedder-held values (see [Eval.add_gc_root]). *)
