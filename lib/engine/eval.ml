exception Script_error of string

let () =
  Printexc.register_printer (function
    | Script_error msg -> Some ("Eval.Script_error: " ^ msg)
    | _ -> None)

type host = Value.t list -> Value.t

type scope = {
  vars : (string, Value.t ref) Hashtbl.t;
  mutable decls : int;
      (* bumped only when a NEW name is declared in this scope; re-declaring
         an existing name updates its ref in place.  Variable inline caches
         validate against this epoch: an unchanged [decls] on every scope a
         cached walk skipped proves no new shadowing binding appeared. *)
  parent : scope option;
  origin : int;
      (* shared by every scope minted at one closure-call site (0 = not
         tracked).  Declarations at such a site form a fixed sequence —
         params first, then the body's own-scope [var]s in body order —
         so (origin, decls) determines the name of every slot below
         [decls], which is what the slot-resolved variable IC validates
         against. *)
  mutable slots : Value.t ref array; (* i-th newly declared binding, origin scopes only *)
}

let no_slots : Value.t ref array = [||]

type closure = {
  c_params : string list;
  c_body : Ast.stmt list;
  c_scope : scope;
}

type ic_stats = {
  mutable var_hits : int;
  mutable var_misses : int;
}

type t = {
  heap : Value.heap;
  machine : Sim.Machine.t;
  globals : scope;
  hosts : (string, host) Hashtbl.t;
  mutable closures : closure array;
  mutable nclosures : int;
  rng : Util.Rng.t;
  mutable output : string list; (* reversed *)
  mutable fuel : int;
  mutable steps : int;
  mutable gc_roots : (unit -> Value.t list) list;
  mutable origin_counter : int;
      (* per-evaluator, so scope-origin ids don't depend on how many other
         sessions ran first in the process (fleet order-independence) *)
  ic : ic_stats;
  mutable yield_hook : (unit -> unit) option;
      (* fleet scheduling only: called once per tick, after the charge.
         Charges nothing and emits nothing itself, so installing a hook
         cannot perturb simulated cycles/transitions/traces; [None] costs
         one load + one branch (sink discipline). *)
}

(* Non-local control flow inside function bodies. *)
exception Return_exc of Value.t
exception Break_exc
exception Continue_exc

let create ?(seed = 1) ?(fuel = 200_000_000) heap =
  {
    heap;
    machine = Pkru_safe.Env.machine (Value.env heap);
    globals = { vars = Hashtbl.create 64; decls = 0; parent = None; origin = 0; slots = no_slots };
    hosts = Hashtbl.create 32;
    closures = Array.make 16 { c_params = []; c_body = []; c_scope = { vars = Hashtbl.create 1; decls = 0; parent = None; origin = 0; slots = no_slots } };
    nclosures = 0;
    rng = Util.Rng.create seed;
    output = [];
    fuel;
    steps = 0;
    gc_roots = [];
    origin_counter = 0;
    ic = { var_hits = 0; var_misses = 0 };
    yield_hook = None;
  }

let heap t = t.heap

let register_host t name fn = Hashtbl.replace t.hosts name fn

(* Origins for call-site-minted scopes (see [scope]); 0 means untracked.
   Counted per evaluator: two sessions produce the same ids whether they
   run sequentially or interleaved. *)
let fresh_origin t =
  t.origin_counter <- t.origin_counter + 1;
  t.origin_counter

let declare scope name v =
  match Hashtbl.find_opt scope.vars name with
  | Some r -> r := v
  | None ->
    let r = ref v in
    Hashtbl.replace scope.vars name r;
    if scope.origin > 0 then begin
      let n = scope.decls in
      if n >= Array.length scope.slots then begin
        let bigger = Array.make (max 4 (2 * Array.length scope.slots)) r in
        Array.blit scope.slots 0 bigger 0 n;
        scope.slots <- bigger
      end;
      scope.slots.(n) <- r
    end;
    scope.decls <- scope.decls + 1

let set_global t name v = declare t.globals name v

let get_global t name = Option.map ( ! ) (Hashtbl.find_opt t.globals.vars name)

let take_output t =
  let lines = List.rev t.output in
  t.output <- [];
  lines

let steps t = t.steps

let fail fmt = Format.kasprintf (fun msg -> raise (Script_error msg)) fmt

let charge t n = Sim.Machine.charge t.machine n

let tick t n =
  t.steps <- t.steps + 1;
  t.fuel <- t.fuel - 1;
  if t.fuel <= 0 then fail "script ran out of fuel";
  charge t n;
  match t.yield_hook with None -> () | Some hook -> hook ()

let set_yield_hook t hook = t.yield_hook <- hook

let add_closure t c =
  if t.nclosures >= Array.length t.closures then begin
    let bigger = Array.make (2 * Array.length t.closures) c in
    Array.blit t.closures 0 bigger 0 t.nclosures;
    t.closures <- bigger
  end;
  t.closures.(t.nclosures) <- c;
  t.nclosures <- t.nclosures + 1;
  t.nclosures - 1

let rec lookup t scope name =
  charge t 2;
  match Hashtbl.find_opt scope.vars name with
  | Some r -> Some !r
  | None ->
    (match scope.parent with
    | Some p -> lookup t p name
    | None -> None)

let rec assign_existing t scope name v =
  match Hashtbl.find_opt scope.vars name with
  | Some r ->
    r := v;
    true
  | None ->
    (match scope.parent with
    | Some p -> assign_existing t p name v
    | None -> false)

(* --- Variable inline caches ---

   A call site that resolves the same name repeatedly can skip the
   host-side hash lookups of the scope walk while charging exactly the
   cycles the walk would have charged.  Two cache levels:

   - The {e full-walk} cache is anchored on the innermost scope itself.
     While [cur] is physically the same scope (loop bodies, block and
     global scopes survive across iterations) and no scope the walk
     probed has declared a new name since ([decls] epoch — nothing can
     shadow the cached binding), a hit needs zero hash probes.  It
     charges 2 cycles per level the uncached walk would have probed
     (misses below the holder plus the holder itself), so cycle counts
     are bit-identical.

   - Per-call scopes are fresh hash tables, so the full-walk anchor
     never validates inside function bodies.  The fallback performs (and
     charges) the real level-0 probe, then consults the {e walk-above}
     cache anchored on [cur.parent] — the captured scope chain, which IS
     stable across calls to the same closure.

   Sites whose anchors never stabilise (every access lands in a freshly
   minted scope, e.g. locals of a block re-entered each iteration) stop
   paying the cache-refill overhead: after [streak_limit] consecutive
   misses without a hit the site disables itself and reverts to the
   plain charged walk. *)

(* [ic_stats] is declared above [t] (the evaluator owns its counters, so
   concurrent sessions don't cross-pollute each other's hit rates). *)
let ic_stats t = t.ic

let reset_ic_stats t =
  t.ic.var_hits <- 0;
  t.ic.var_misses <- 0

type var_site = {
  vsite_name : string;
  (* slot cache, keyed on the scope's call-site origin: valid for every
     scope minted at that site while its declaration epoch matches *)
  mutable vslot_origin : int; (* 0 = empty *)
  mutable vslot_decls : int;
  mutable vslot_idx : int;
  (* full-walk cache, anchored on [cur] at fill time *)
  mutable vfull_anchor : scope option;
  mutable vfull_ref : Value.t ref;
  mutable vfull_path : (scope * int) array; (* probed-and-missed scopes + decls snapshots *)
  (* walk-above-cur cache, anchored on [cur.parent] at fill time *)
  mutable vsite_anchor : scope option;
  mutable vsite_ref : Value.t ref;
  mutable vsite_levels : int; (* scopes the walk probed below [cur], holder included *)
  mutable vsite_path : (scope * int) array; (* skipped scopes + decls snapshots *)
  mutable vsite_streak : int; (* consecutive misses; negative = site disabled *)
}

let streak_limit = 32

let var_site name =
  { vsite_name = name;
    vslot_origin = 0; vslot_decls = 0; vslot_idx = 0;
    vfull_anchor = None; vfull_ref = ref Value.Null; vfull_path = [||];
    vsite_anchor = None; vsite_ref = ref Value.Null;
    vsite_levels = 0; vsite_path = [||]; vsite_streak = 0 }

(* A level-0 find in an origin-tracked scope can be slot-cached: the ref
   sits in [cur.slots] at a fixed index for every scope of this origin at
   this declaration epoch. *)
let vslot_learn site cur r =
  if cur.origin > 0 then begin
    let n = cur.decls in
    let rec idx i = if i >= n then -1 else if cur.slots.(i) == r then i else idx (i + 1) in
    match idx 0 with
    | -1 -> ()
    | i ->
      site.vslot_origin <- cur.origin;
      site.vslot_decls <- n;
      site.vslot_idx <- i
  end

let vfull_valid site cur =
  (match site.vfull_anchor with Some a -> a == cur | None -> false)
  && Array.for_all (fun (s, d) -> s.decls = d) site.vfull_path

let vsite_valid site parent =
  match site.vsite_anchor with
  | Some a when a == parent ->
    Array.for_all (fun (s, d) -> s.decls = d) site.vsite_path
  | _ -> false

(* Walk from [start] (= cur.parent) resolving [site.vsite_name], charging 2
   per level when [charged] (lookup semantics; assignment charges nothing),
   and refill both cache levels on success. *)
let vsite_fill t ~charged site cur start =
  let missed = ref [] in
  let rec go depth s =
    if charged then charge t 2;
    match Hashtbl.find_opt s.vars site.vsite_name with
    | Some r ->
      let path = Array.of_list (List.rev_map (fun sc -> (sc, sc.decls)) !missed) in
      site.vsite_anchor <- Some start;
      site.vsite_ref <- r;
      site.vsite_levels <- depth + 1;
      site.vsite_path <- path;
      site.vfull_anchor <- Some cur;
      site.vfull_ref <- r;
      site.vfull_path <- Array.append [| (cur, cur.decls) |] path;
      Some r
    | None ->
      missed := s :: !missed;
      (match s.parent with
      | Some p -> go (depth + 1) p
      | None -> None)
  in
  go 0 start

let vsite_miss t site =
  t.ic.var_misses <- t.ic.var_misses + 1;
  if site.vsite_streak >= 0 then begin
    site.vsite_streak <- site.vsite_streak + 1;
    if site.vsite_streak > streak_limit then site.vsite_streak <- -1
  end

let cached_lookup t cur site =
  if site.vsite_streak < 0 then begin
    t.ic.var_misses <- t.ic.var_misses + 1;
    lookup t cur site.vsite_name
  end
  else if
    cur.origin > 0 && cur.origin = site.vslot_origin && cur.decls = site.vslot_decls
  then begin
    t.ic.var_hits <- t.ic.var_hits + 1;
    site.vsite_streak <- 0;
    charge t 2;
    Some !(cur.slots.(site.vslot_idx))
  end
  else if vfull_valid site cur then begin
    t.ic.var_hits <- t.ic.var_hits + 1;
    site.vsite_streak <- 0;
    charge t (2 * (Array.length site.vfull_path + 1));
    Some !(site.vfull_ref)
  end
  else begin
    charge t 2;
    match Hashtbl.find_opt cur.vars site.vsite_name with
    | Some r ->
      (* found in the innermost scope: re-anchor the full-walk cache *)
      site.vsite_streak <- 0;
      site.vfull_anchor <- Some cur;
      site.vfull_ref <- r;
      site.vfull_path <- [||];
      vslot_learn site cur r;
      Some !r
    | None ->
      (match cur.parent with
      | None -> None
      | Some p ->
        if vsite_valid site p then begin
          t.ic.var_hits <- t.ic.var_hits + 1;
          site.vsite_streak <- 0;
          charge t (2 * site.vsite_levels);
          Some !(site.vsite_ref)
        end
        else begin
          vsite_miss t site;
          Option.map ( ! ) (vsite_fill t ~charged:true site cur p)
        end)
  end

let cached_assign t cur site v =
  if site.vsite_streak < 0 then begin
    t.ic.var_misses <- t.ic.var_misses + 1;
    assign_existing t cur site.vsite_name v
  end
  else if
    cur.origin > 0 && cur.origin = site.vslot_origin && cur.decls = site.vslot_decls
  then begin
    t.ic.var_hits <- t.ic.var_hits + 1;
    site.vsite_streak <- 0;
    cur.slots.(site.vslot_idx) := v;
    true
  end
  else if vfull_valid site cur then begin
    t.ic.var_hits <- t.ic.var_hits + 1;
    site.vsite_streak <- 0;
    site.vfull_ref := v;
    true
  end
  else
    match Hashtbl.find_opt cur.vars site.vsite_name with
    | Some r ->
      site.vsite_streak <- 0;
      site.vfull_anchor <- Some cur;
      site.vfull_ref <- r;
      site.vfull_path <- [||];
      vslot_learn site cur r;
      r := v;
      true
    | None ->
      (match cur.parent with
      | None -> false
      | Some p ->
        if vsite_valid site p then begin
          t.ic.var_hits <- t.ic.var_hits + 1;
          site.vsite_streak <- 0;
          site.vsite_ref := v;
          true
        end
        else begin
          vsite_miss t site;
          match vsite_fill t ~charged:false site cur p with
          | Some r ->
            r := v;
            true
          | None -> false
        end)

let to_num t v =
  match v with
  | Value.Num f -> f
  | Value.Bool true -> 1.0
  | Value.Bool false -> 0.0
  | Value.Null -> 0.0
  | Value.Str s ->
    (match float_of_string_opt (String.trim (Value.string_of_str t.heap s)) with
    | Some f -> f
    | None -> Float.nan)
  | v -> fail "cannot convert %s to a number" (Value.type_name v)

let to_int t v = int_of_float (to_num t v)

(* JS ToInt32: wrap the integral part into signed 32-bit range. *)
let wrap32 x =
  let m = x land 0xFFFFFFFF in
  if m >= 0x80000000 then m - 0x100000000 else m

let to_i32 t v =
  let f = to_num t v in
  if Float.is_nan f || Float.is_integer f = false then wrap32 (int_of_float f)
  else wrap32 (int_of_float (Float.rem f 4294967296.0))

let of_i32 x = float_of_int (wrap32 x)

let to_str t v =
  match v with
  | Value.Str _ -> v
  | v -> Value.str_of_string t.heap (Value.to_display_string t.heap v)

let as_str = function
  | Value.Str s -> s
  | v -> fail "expected a string, got %s" (Value.type_name v)

let as_arr = function
  | Value.Arr a -> a
  | v -> fail "expected an array, got %s" (Value.type_name v)

(* --- JSON builtins (kraken-style json-parse / json-stringify) --- *)

let rec json_stringify t buf v =
  match v with
  | Value.Null -> Buffer.add_string buf "null"
  | Value.Bool b -> Buffer.add_string buf (string_of_bool b)
  | Value.Num f ->
    Buffer.add_string buf
      (if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
       else Printf.sprintf "%.12g" f)
  | Value.Str s ->
    Buffer.add_char buf '"';
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      (Value.string_of_str t.heap s);
    Buffer.add_char buf '"'
  | Value.Arr a ->
    Buffer.add_char buf '[';
    for i = 0 to a.Value.a_len - 1 do
      if i > 0 then Buffer.add_char buf ',';
      json_stringify t buf (Value.arr_get t.heap a i)
    done;
    Buffer.add_char buf ']'
  | Value.Obj o ->
    Buffer.add_char buf '{';
    let first = ref true in
    Value.obj_iter
      (fun k v ->
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf (Printf.sprintf "%S" k);
        Buffer.add_char buf ':';
        json_stringify t buf v)
      o;
    Buffer.add_char buf '}'
  | Value.Fun _ | Value.Host _ | Value.Handle _ -> Buffer.add_string buf "null"

let json_parse t (s : Value.str) =
  (* Reuse the util JSON parser on a copy of the bytes (the copy itself is
     a charged machine read), then rebuild engine values. *)
  let text = Value.string_of_str t.heap s in
  let rec convert = function
    | Util.Json.Null -> Value.Null
    | Util.Json.Bool b -> Value.Bool b
    | Util.Json.Int i -> Value.Num (float_of_int i)
    | Util.Json.Float f -> Value.Num f
    | Util.Json.String s -> Value.str_of_string t.heap s
    | Util.Json.List items ->
      let arr = Value.arr_make t.heap 0 in
      let a = as_arr arr in
      List.iter (fun item -> Value.arr_push t.heap a (convert item)) items;
      arr
    | Util.Json.Obj fields ->
      let obj = Value.obj_make t.heap in
      (match obj with
      | Value.Obj o -> List.iter (fun (k, v) -> Value.obj_set t.heap o k (convert v)) fields
      | _ -> assert false);
      obj
  in
  match Util.Json.of_string text with
  | v -> convert v
  | exception Util.Json.Parse_error msg -> fail "JSON.parse: %s" msg

(* --- Static namespaces --- *)

let math_call t name args =
  let num i = to_num t (List.nth args i) in
  let unary f = Value.Num (f (num 0)) in
  charge t 4;
  match (name, List.length args) with
  | "floor", 1 -> unary Float.floor
  | "ceil", 1 -> unary Float.ceil
  | "round", 1 -> unary Float.round
  | "abs", 1 -> unary Float.abs
  | "sqrt", 1 -> unary sqrt
  | "sin", 1 -> unary sin
  | "cos", 1 -> unary cos
  | "tan", 1 -> unary tan
  | "atan", 1 -> unary atan
  | "log", 1 -> unary log
  | "exp", 1 -> unary exp
  | "atan2", 2 -> Value.Num (atan2 (num 0) (num 1))
  | "pow", 2 -> Value.Num (Float.pow (num 0) (num 1))
  | "min", 2 -> Value.Num (Float.min (num 0) (num 1))
  | "max", 2 -> Value.Num (Float.max (num 0) (num 1))
  | "random", 0 -> Value.Num (Util.Rng.float t.rng 1.0)
  | "trunc", 1 -> unary Float.trunc
  | "sign", 1 -> unary (fun f -> if f > 0.0 then 1.0 else if f < 0.0 then -1.0 else 0.0)
  | "hypot", 2 -> Value.Num (Float.hypot (num 0) (num 1))
  | "log2", 1 -> unary (fun f -> log f /. log 2.0)
  | _ -> fail "Math.%s: unknown function or bad arity" name

let string_ns_call t name args =
  match (name, args) with
  | "fromCharCode", codes ->
    let bytes = Bytes.create (List.length codes) in
    List.iteri (fun i c -> Bytes.set bytes i (Char.chr (to_int t c land 0xFF))) codes;
    Value.str_of_string t.heap (Bytes.to_string bytes)
  | _ -> fail "String.%s: unknown function" name

let json_ns_call t name args =
  match (name, args) with
  | "stringify", [ v ] ->
    let buf = Buffer.create 64 in
    json_stringify t buf v;
    (* Building the text costs proportional machine writes. *)
    Value.str_of_string t.heap (Buffer.contents buf)
  | "parse", [ v ] -> json_parse t (as_str v)
  | _ -> fail "JSON.%s: unknown function or bad arity" name

(* --- Value methods --- *)

let rec method_call t recv name args =
  match recv with
  | Value.Arr a ->
    (match (name, args) with
    | "push", [ v ] ->
      Value.arr_push t.heap a v;
      Value.Num (float_of_int a.Value.a_len)
    | "pop", [] -> Value.arr_pop t.heap a
    | "join", [ sep ] ->
      let sep = Value.string_of_str t.heap (as_str (to_str t sep)) in
      let parts =
        List.init a.Value.a_len (fun i ->
            Value.to_display_string t.heap (Value.arr_get t.heap a i))
      in
      Value.str_of_string t.heap (String.concat sep parts)
    | "indexOf", [ v ] ->
      let rec find i =
        if i >= a.Value.a_len then -1
        else if Value.equals t.heap (Value.arr_get t.heap a i) v then i
        else find (i + 1)
      in
      Value.Num (float_of_int (find 0))
    | "slice", [ lo; hi ] ->
      let len = a.Value.a_len in
      let norm i = if i < 0 then max 0 (len + i) else min i len in
      let lo = norm (to_int t lo) and hi = norm (to_int t hi) in
      let out = Value.arr_make t.heap 0 in
      let o = as_arr out in
      for i = lo to hi - 1 do
        Value.arr_push t.heap o (Value.arr_get t.heap a i)
      done;
      out
    | "concat", [ other ] ->
      let other = as_arr other in
      let out = Value.arr_make t.heap 0 in
      let o = as_arr out in
      for i = 0 to a.Value.a_len - 1 do
        Value.arr_push t.heap o (Value.arr_get t.heap a i)
      done;
      for i = 0 to other.Value.a_len - 1 do
        Value.arr_push t.heap o (Value.arr_get t.heap other i)
      done;
      out
    | "reverse", [] ->
      let n = a.Value.a_len in
      for i = 0 to (n / 2) - 1 do
        let x = Value.arr_get t.heap a i in
        let y = Value.arr_get t.heap a (n - 1 - i) in
        Value.arr_set t.heap a i y;
        Value.arr_set t.heap a (n - 1 - i) x
      done;
      recv
    | "fill", [ v ] ->
      for i = 0 to a.Value.a_len - 1 do
        Value.arr_set t.heap a i v
      done;
      recv
    | "map", [ f ] ->
      let out = Value.arr_make t.heap 0 in
      let o = as_arr out in
      for i = 0 to a.Value.a_len - 1 do
        Value.arr_push t.heap o (call_value t f [ Value.arr_get t.heap a i ])
      done;
      out
    | "filter", [ f ] ->
      let out = Value.arr_make t.heap 0 in
      let o = as_arr out in
      for i = 0 to a.Value.a_len - 1 do
        let v = Value.arr_get t.heap a i in
        if Value.truthy (call_value t f [ v ]) then Value.arr_push t.heap o v
      done;
      out
    | "reduce", [ f; init ] ->
      let acc = ref init in
      for i = 0 to a.Value.a_len - 1 do
        acc := call_value t f [ !acc; Value.arr_get t.heap a i ]
      done;
      !acc
    | "sort", [] ->
      (* Numeric ascending (insertion sort through machine slots). *)
      for i = 1 to a.Value.a_len - 1 do
        let v = Value.arr_get t.heap a i in
        let key = to_num t v in
        let j = ref (i - 1) in
        while !j >= 0 && to_num t (Value.arr_get t.heap a !j) > key do
          Value.arr_set t.heap a (!j + 1) (Value.arr_get t.heap a !j);
          decr j
        done;
        Value.arr_set t.heap a (!j + 1) v
      done;
      recv
    | _ -> fail "array has no method %s/%d" name (List.length args))
  | Value.Str s ->
    (match (name, args) with
    | "charCodeAt", [ i ] -> Value.Num (float_of_int (Value.str_get t.heap s (to_int t i)))
    | "charAt", [ i ] ->
      let i = to_int t i in
      if i < 0 || i >= s.Value.s_len then Value.str_of_string t.heap ""
      else Value.str_sub t.heap s i 1
    | "substring", [ a; b ] ->
      let a = to_int t a and b = to_int t b in
      let lo = min a b and hi = max a b in
      Value.str_sub t.heap s lo (hi - lo)
    | "indexOf", [ needle ] ->
      Value.Num (float_of_int (Value.str_index_of t.heap s (as_str needle)))
    | "split", [ sep ] ->
      let text = Value.string_of_str t.heap s in
      let sep = Value.string_of_str t.heap (as_str sep) in
      let parts =
        if String.length sep = 1 then String.split_on_char sep.[0] text
        else fail "split: only single-character separators are supported"
      in
      let arr = Value.arr_make t.heap 0 in
      let a = as_arr arr in
      List.iter (fun p -> Value.arr_push t.heap a (Value.str_of_string t.heap p)) parts;
      arr
    | "slice", [ a; b ] ->
      let len = s.Value.s_len in
      let norm i = if i < 0 then max 0 (len + i) else min i len in
      let a = norm (to_int t a) and b = norm (to_int t b) in
      Value.str_sub t.heap s a (max 0 (b - a))
    | "trim", [] ->
      Value.str_of_string t.heap (String.trim (Value.string_of_str t.heap s))
    | "startsWith", [ p ] ->
      Value.Bool (Value.str_index_of t.heap s (as_str p) = 0)
    | "replace", [ find; repl ] ->
      (* First occurrence only, like the JS string (not regex) form. *)
      let find = as_str find in
      let idx = Value.str_index_of t.heap s find in
      if idx < 0 then Value.Str s
      else begin
        let text = Value.string_of_str t.heap s in
        let repl = Value.string_of_str t.heap (as_str repl) in
        Value.str_of_string t.heap
          (String.sub text 0 idx ^ repl
          ^ String.sub text (idx + find.Value.s_len) (String.length text - idx - find.Value.s_len))
      end
    | "toUpperCase", [] ->
      Value.str_of_string t.heap (String.uppercase_ascii (Value.string_of_str t.heap s))
    | "toLowerCase", [] ->
      Value.str_of_string t.heap (String.lowercase_ascii (Value.string_of_str t.heap s))
    | _ -> fail "string has no method %s/%d" name (List.length args))
  | Value.Obj o ->
    (* Calling a function-valued property. *)
    (match Value.obj_get t.heap o name with
    | Value.Null -> fail "object has no method %s" name
    | f -> call_value t f args)
  | v -> fail "%s has no methods" (Value.type_name v)

and member t recv name =
  match (recv, name) with
  | Value.Arr a, "length" -> Value.Num (float_of_int a.Value.a_len)
  | Value.Str s, "length" -> Value.Num (float_of_int s.Value.s_len)
  | Value.Obj o, _ -> Value.obj_get t.heap o name
  | v, _ -> fail "cannot read property %s of %s" name (Value.type_name v)

and call_value t callee args =
  charge t t.machine.Sim.Machine.cpu.Sim.Cpu.cost.Sim.Cost.call;
  match callee with
  | Value.Fun id ->
    let c = t.closures.(id) in
    let scope = { vars = Hashtbl.create 8; decls = 0; parent = Some c.c_scope; origin = 0; slots = no_slots } in
    List.iteri
      (fun i p ->
        let v =
          match List.nth_opt args i with
          | Some v -> v
          | None -> Value.Null
        in
        declare scope p v)
      c.c_params;
    (try
       exec_stmts t scope c.c_body;
       Value.Null
     with Return_exc v -> v)
  | Value.Host name ->
    (match Hashtbl.find_opt t.hosts name with
    | Some fn -> fn args
    | None -> fail "unknown host function %s" name)
  | v -> fail "%s is not callable" (Value.type_name v)

and eval t scope (e : Ast.expr) : Value.t =
  tick t 1;
  match e with
  | Ast.Num f -> Value.Num f
  | Ast.Str s -> Value.str_of_string t.heap s
  | Ast.Bool b -> Value.Bool b
  | Ast.Null -> Value.Null
  | Ast.Ident "Math" | Ast.Ident "JSON" | Ast.Ident "String" ->
    fail "namespace %s cannot be used as a value"
      (match e with
      | Ast.Ident n -> n
      | _ -> assert false)
  | Ast.Ident name ->
    (match lookup t scope name with
    | Some v -> v
    | None ->
      if Hashtbl.mem t.hosts name then Value.Host name
      else fail "undefined variable %s" name)
  | Ast.Array_lit items ->
    let arr = Value.arr_make t.heap 0 in
    let a = as_arr arr in
    List.iter (fun item -> Value.arr_push t.heap a (eval t scope item)) items;
    arr
  | Ast.Object_lit fields ->
    let obj = Value.obj_make t.heap in
    (match obj with
    | Value.Obj o -> List.iter (fun (k, v) -> Value.obj_set t.heap o k (eval t scope v)) fields
    | _ -> assert false);
    obj
  | Ast.Func_lit (params, body) ->
    Value.Fun (add_closure t { c_params = params; c_body = body; c_scope = scope })
  | Ast.Unary ("!", e) -> Value.Bool (not (Value.truthy (eval t scope e)))
  | Ast.Unary ("-", e) -> Value.Num (-.to_num t (eval t scope e))
  | Ast.Unary ("~", e) -> Value.Num (of_i32 (lnot (to_i32 t (eval t scope e))))
  | Ast.Unary (op, _) -> fail "unknown unary operator %s" op
  | Ast.Binary ("&&", a, b) ->
    let va = eval t scope a in
    if Value.truthy va then eval t scope b else va
  | Ast.Binary ("||", a, b) ->
    let va = eval t scope a in
    if Value.truthy va then va else eval t scope b
  | Ast.Binary (op, a, b) -> binary t op (eval t scope a) (eval t scope b)
  | Ast.Ternary (c, a, b) -> if Value.truthy (eval t scope c) then eval t scope a else eval t scope b
  | Ast.Assign (op, lhs, rhs) ->
    let v = eval t scope rhs in
    let v =
      if op = "=" then v
      else
        let old = eval t scope lhs in
        binary t (String.sub op 0 1) old v
    in
    store t scope lhs v;
    v
  | Ast.Index (a, i) ->
    (match eval t scope a with
    | Value.Arr arr ->
      let i = to_int t (eval t scope i) in
      if i < 0 || i >= arr.Value.a_len then Value.Null else Value.arr_get t.heap arr i
    | Value.Str s ->
      let i = to_int t (eval t scope i) in
      if i < 0 || i >= s.Value.s_len then Value.Null else Value.str_sub t.heap s i 1
    | Value.Obj o -> Value.obj_get t.heap o (Value.string_of_str t.heap (as_str (to_str t (eval t scope i))))
    | v -> fail "cannot index %s" (Value.type_name v))
  | Ast.Member (e, name) -> member t (eval t scope e) name
  | Ast.Method_call (Ast.Ident "Math", name, args) ->
    math_call t name (List.map (eval t scope) args)
  | Ast.Method_call (Ast.Ident "JSON", name, args) ->
    json_ns_call t name (List.map (eval t scope) args)
  | Ast.Method_call (Ast.Ident "String", name, args) ->
    string_ns_call t name (List.map (eval t scope) args)
  | Ast.Method_call (recv, name, args) ->
    let recv = eval t scope recv in
    let args = List.map (eval t scope) args in
    charge t 3;
    method_call t recv name args
  | Ast.Call (Ast.Ident "parseInt", [ arg ]) ->
    let f = to_num t (eval t scope arg) in
    Value.Num (Float.trunc f)
  | Ast.Call (Ast.Ident "parseFloat", [ arg ]) -> Value.Num (to_num t (eval t scope arg))
  | Ast.Call (Ast.Ident "isNaN", [ arg ]) ->
    Value.Bool (Float.is_nan (to_num t (eval t scope arg)))
  | Ast.Call (Ast.Ident "Number", [ arg ]) -> Value.Num (to_num t (eval t scope arg))
  | Ast.Call (Ast.Ident "typeof", [ arg ]) ->
    Value.str_of_string t.heap (Value.type_name (eval t scope arg))
  | Ast.Call (Ast.Ident "print", args) ->
    let parts = List.map (fun a -> Value.to_display_string t.heap (eval t scope a)) args in
    t.output <- String.concat " " parts :: t.output;
    Value.Null
  | Ast.Call (Ast.Ident "__new_array", [ n ]) ->
    Value.arr_make t.heap (to_int t (eval t scope n))
  | Ast.Call (callee, args) ->
    let callee = eval t scope callee in
    let args = List.map (eval t scope) args in
    call_value t callee args

and binary t op a b =
  charge t 1;
  match op with
  | "+" ->
    (match (a, b) with
    | Value.Str _, _ | _, Value.Str _ ->
      Value.str_concat t.heap (as_str (to_str t a)) (as_str (to_str t b))
    | _ -> Value.Num (to_num t a +. to_num t b))
  | "-" -> Value.Num (to_num t a -. to_num t b)
  | "*" -> Value.Num (to_num t a *. to_num t b)
  | "/" -> Value.Num (to_num t a /. to_num t b)
  | "%" -> Value.Num (Float.rem (to_num t a) (to_num t b))
  | "&" -> Value.Num (of_i32 (to_i32 t a land to_i32 t b))
  | "|" -> Value.Num (of_i32 (to_i32 t a lor to_i32 t b))
  | "^" -> Value.Num (of_i32 (to_i32 t a lxor to_i32 t b))
  | "<<" -> Value.Num (of_i32 (to_i32 t a lsl (to_i32 t b land 31)))
  | ">>" -> Value.Num (of_i32 (to_i32 t a asr (to_i32 t b land 31)))
  | "==" -> Value.Bool (Value.equals t.heap a b)
  | "!=" -> Value.Bool (not (Value.equals t.heap a b))
  | "<" -> Value.Bool (to_num t a < to_num t b)
  | "<=" -> Value.Bool (to_num t a <= to_num t b)
  | ">" -> Value.Bool (to_num t a > to_num t b)
  | ">=" -> Value.Bool (to_num t a >= to_num t b)
  | op -> fail "unknown operator %s" op

and store t scope lhs v =
  match lhs with
  | Ast.Ident name ->
    if not (assign_existing t scope name v) then declare t.globals name v
  | Ast.Index (a, i) ->
    (match eval t scope a with
    | Value.Arr arr ->
      let i = to_int t (eval t scope i) in
      if i = arr.Value.a_len then Value.arr_push t.heap arr v
      else if i >= 0 && i < arr.Value.a_len then Value.arr_set t.heap arr i v
      else fail "array store out of range: %d (len %d)" i arr.Value.a_len
    | Value.Obj o ->
      Value.obj_set t.heap o (Value.string_of_str t.heap (as_str (to_str t (eval t scope i)))) v
    | v -> fail "cannot index-assign %s" (Value.type_name v))
  | Ast.Member (e, name) ->
    (match eval t scope e with
    | Value.Obj o -> Value.obj_set t.heap o name v
    | v -> fail "cannot set property %s on %s" name (Value.type_name v))
  | _ -> fail "invalid assignment target"

and exec_stmt t scope (s : Ast.stmt) =
  tick t 1;
  match s with
  | Ast.Expr e -> ignore (eval t scope e)
  | Ast.Var (name, init) ->
    let v = eval t scope init in
    declare scope name v
  | Ast.Func_decl (name, params, body) ->
    let id = add_closure t { c_params = params; c_body = body; c_scope = scope } in
    declare scope name (Value.Fun id)
  | Ast.If (cond, then_, else_) ->
    if Value.truthy (eval t scope cond) then exec_stmts t scope then_
    else exec_stmts t scope else_
  | Ast.While (cond, body) ->
    (try
       while Value.truthy (eval t scope cond) do
         try exec_stmts t scope body with Continue_exc -> ()
       done
     with Break_exc -> ())
  | Ast.For (init, cond, step, body) ->
    let loop_scope = { vars = Hashtbl.create 4; decls = 0; parent = Some scope; origin = 0; slots = no_slots } in
    (match init with
    | Some s -> exec_stmt t loop_scope s
    | None -> ());
    let check () =
      match cond with
      | Some c -> Value.truthy (eval t loop_scope c)
      | None -> true
    in
    (try
       while check () do
         (try exec_stmts t loop_scope body with Continue_exc -> ());
         match step with
         | Some s -> exec_stmt t loop_scope s
         | None -> ()
       done
     with Break_exc -> ())
  | Ast.Return v ->
    raise
      (Return_exc
         (match v with
         | Some e -> eval t scope e
         | None -> Value.Null))
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc
  | Ast.Block body ->
    exec_stmts t { vars = Hashtbl.create 4; decls = 0; parent = Some scope; origin = 0; slots = no_slots } body

and exec_stmts t scope stmts = List.iter (exec_stmt t scope) stmts

(* --- Garbage collection (see the interface for the safety contract) --- *)

let gc t =
  let live = Hashtbl.create 256 in
  let seen_closures = Hashtbl.create 64 in
  let seen_scopes : scope list ref = ref [] in
  let rec mark_value v =
    match v with
    | Value.Null | Value.Bool _ | Value.Num _ | Value.Host _ | Value.Handle _ -> ()
    | Value.Str s -> if s.Value.s_owned then Hashtbl.replace live s.Value.s_addr ()
    | Value.Arr a ->
      if not (Hashtbl.mem live a.Value.a_buf) then begin
        Hashtbl.replace live a.Value.a_buf ();
        for i = 0 to a.Value.a_len - 1 do
          mark_value (Value.arr_get t.heap a i)
        done
      end
    | Value.Obj o ->
      if not (Hashtbl.mem live o.Value.o_addr) then begin
        Hashtbl.replace live o.Value.o_addr ();
        Value.obj_iter (fun _ v -> mark_value v) o
      end
    | Value.Fun id ->
      if not (Hashtbl.mem seen_closures id) then begin
        Hashtbl.add seen_closures id ();
        mark_scope t.closures.(id).c_scope
      end
  and mark_scope scope =
    if not (List.memq scope !seen_scopes) then begin
      seen_scopes := scope :: !seen_scopes;
      Hashtbl.iter (fun _ r -> mark_value !r) scope.vars;
      match scope.parent with
      | Some parent -> mark_scope parent
      | None -> ()
    end
  in
  mark_scope t.globals;
  List.iter (fun provider -> List.iter mark_value (provider ())) t.gc_roots;
  Value.sweep t.heap ~live:(Hashtbl.mem live)

let run_program t (prog : Ast.program) =
  let result = ref Value.Null in
  List.iter
    (fun s ->
      match s with
      | Ast.Expr e -> result := eval t t.globals e
      | s -> exec_stmt t t.globals s)
    prog;
  !result

let call_function t f args = call_value t f args


(* --- The tier-shared semantic core (see the interface) --- *)

let globals_scope t = t.globals

let new_scope ?(origin = 0) ~parent () =
  { vars = Hashtbl.create 8; decls = 0; parent = Some parent; origin; slots = no_slots }

let scope_declare scope name v = declare scope name v

let scope_lookup t scope name = lookup t scope name

let scope_assign t scope name v =
  if not (assign_existing t scope name v) then declare t.globals name v

let host_exists t name = Hashtbl.mem t.hosts name

let binary_op t op a b = binary t op a b

(* Compile-time specialisation of {!binary_op}: the operator string is
   matched once, when the site is compiled, not on every execution.  Each
   returned closure performs exactly the reference sequence — charge 1,
   then the operation — and an unknown operator yields a closure that
   still charges 1 before failing, preserving the reference's
   charge-before-fail order. *)
let binary_fn op : t -> Value.t -> Value.t -> Value.t =
  match op with
  | "+" ->
    fun t a b ->
      charge t 1;
      (match (a, b) with
      | Value.Str _, _ | _, Value.Str _ ->
        Value.str_concat t.heap (as_str (to_str t a)) (as_str (to_str t b))
      | _ -> Value.Num (to_num t a +. to_num t b))
  | "-" ->
    fun t a b ->
      charge t 1;
      Value.Num (to_num t a -. to_num t b)
  | "*" ->
    fun t a b ->
      charge t 1;
      Value.Num (to_num t a *. to_num t b)
  | "/" ->
    fun t a b ->
      charge t 1;
      Value.Num (to_num t a /. to_num t b)
  | "%" ->
    fun t a b ->
      charge t 1;
      Value.Num (Float.rem (to_num t a) (to_num t b))
  | "&" ->
    fun t a b ->
      charge t 1;
      Value.Num (of_i32 (to_i32 t a land to_i32 t b))
  | "|" ->
    fun t a b ->
      charge t 1;
      Value.Num (of_i32 (to_i32 t a lor to_i32 t b))
  | "^" ->
    fun t a b ->
      charge t 1;
      Value.Num (of_i32 (to_i32 t a lxor to_i32 t b))
  | "<<" ->
    fun t a b ->
      charge t 1;
      Value.Num (of_i32 (to_i32 t a lsl (to_i32 t b land 31)))
  | ">>" ->
    fun t a b ->
      charge t 1;
      Value.Num (of_i32 (to_i32 t a asr (to_i32 t b land 31)))
  | "==" ->
    fun t a b ->
      charge t 1;
      Value.Bool (Value.equals t.heap a b)
  | "!=" ->
    fun t a b ->
      charge t 1;
      Value.Bool (not (Value.equals t.heap a b))
  | "<" ->
    fun t a b ->
      charge t 1;
      Value.Bool (to_num t a < to_num t b)
  | "<=" ->
    fun t a b ->
      charge t 1;
      Value.Bool (to_num t a <= to_num t b)
  | ">" ->
    fun t a b ->
      charge t 1;
      Value.Bool (to_num t a > to_num t b)
  | ">=" ->
    fun t a b ->
      charge t 1;
      Value.Bool (to_num t a >= to_num t b)
  | op ->
    fun t _ _ ->
      charge t 1;
      fail "unknown operator %s" op

let truthy_value = Value.truthy

let unary_op t op v =
  match op with
  | "!" -> Value.Bool (not (Value.truthy v))
  | "-" -> Value.Num (-.to_num t v)
  | "~" -> Value.Num (of_i32 (lnot (to_i32 t v)))
  | op -> fail "unknown unary operator %s" op

let member_get t recv name = member t recv name

let member_set t recv name v =
  match recv with
  | Value.Obj o -> Value.obj_set t.heap o name v
  | v -> fail "cannot set property %s on %s" name (Value.type_name v)

let index_get t recv idx =
  match recv with
  | Value.Arr arr ->
    let i = to_int t idx in
    if i < 0 || i >= arr.Value.a_len then Value.Null else Value.arr_get t.heap arr i
  | Value.Str s ->
    let i = to_int t idx in
    if i < 0 || i >= s.Value.s_len then Value.Null else Value.str_sub t.heap s i 1
  | Value.Obj o -> Value.obj_get t.heap o (Value.string_of_str t.heap (as_str (to_str t idx)))
  | v -> fail "cannot index %s" (Value.type_name v)

let index_set t recv idx v =
  match recv with
  | Value.Arr arr ->
    let i = to_int t idx in
    if i = arr.Value.a_len then Value.arr_push t.heap arr v
    else if i >= 0 && i < arr.Value.a_len then Value.arr_set t.heap arr i v
    else fail "array store out of range: %d (len %d)" i arr.Value.a_len
  | Value.Obj o -> Value.obj_set t.heap o (Value.string_of_str t.heap (as_str (to_str t idx))) v
  | v -> fail "cannot index-assign %s" (Value.type_name v)

let ns_call t ns name args =
  match ns with
  | "Math" -> math_call t name args
  | "JSON" -> json_ns_call t name args
  | "String" -> string_ns_call t name args
  | ns -> fail "unknown namespace %s" ns

let print_values t args =
  let parts = List.map (Value.to_display_string t.heap) args in
  t.output <- String.concat " " parts :: t.output

let array_of_size t n = Value.arr_make t.heap (to_int t n)

let make_closure t ~params ~body scope =
  Value.Fun (add_closure t { c_params = params; c_body = body; c_scope = scope })

let closure_parts t id =
  let c = t.closures.(id) in
  (c.c_params, c.c_body, c.c_scope)

let tick = tick

let add_gc_root t provider = t.gc_roots <- provider :: t.gc_roots
