(** Opcode frequency profiling for the reference bytecode interpreter.

    Counts executed opcodes and fall-through adjacent opcode pairs (the
    pairs a superinstruction could fuse).  Purely host-side: collection
    charges no simulated cycles, so a profiled run is bit-identical to an
    unprofiled one.  [report --opcodes] renders the output; the measured
    pair ranking justifies {!Threaded}'s fused set (see EXPERIMENTS.md). *)

type t

val create : unit -> t

val record : t -> ?prev:string -> string -> unit
(** [record t ?prev cur] counts one execution of opcode [cur]; [prev] is
    the previous opcode when it fell through adjacently (pc = prev_pc+1
    in the same frame). *)

val total : t -> int

val current : t option ref
(** The installed collector, consulted by {!Bytecode.exec}. *)

val collect : (unit -> 'a) -> t * 'a
(** Runs [f] with a fresh collector installed (restoring the previous one
    afterwards) and returns the counts alongside [f]'s result. *)

val singles : t -> (string * int) list
(** Opcode counts, descending. *)

val pairs : t -> ((string * string) * int) list
(** Adjacent-pair counts, descending. *)

val to_json : t -> Util.Json.t
val render : t -> string
