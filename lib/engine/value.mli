(** MiniJS values and the engine heap.

    The engine is the untrusted compartment's workload (the SpiderMonkey
    stand-in), so its data lives in simulated memory allocated with U's own
    malloc (always MU):
    {ul
    {- strings are immutable byte buffers in machine memory;}
    {- arrays are growable buffers of 64-bit NaN-boxed slots in machine
       memory — exactly the layout real JS engines use — so every element
       access is a checked load/store;}
    {- objects keep a property map host-side (charged cycles) plus a small
       machine-resident header, standing in for the object's slot
       storage.}}

    Strings created by the {e browser} (trusted code) can be wrapped
    directly with {!of_foreign_buffer}: the engine then reads trusted-pool
    bytes, which is precisely the cross-compartment data flow the profiler
    must discover. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of str
  | Arr of arr
  | Obj of obj
  | Fun of int (* closure id, owned by the evaluator *)
  | Host of string (* named host/builtin function *)
  | Handle of int (* opaque handle minted by the embedder (e.g. DOM node) *)

and str = {
  s_addr : int;
  s_len : int;
  s_owned : bool; (** engine-owned buffer (GC may free) vs foreign *)
}

and arr = {
  mutable a_buf : int; (* machine address of the slot buffer *)
  mutable a_cap : int; (* slots *)
  mutable a_len : int;
}

and obj = {
  o_id : int;
  o_addr : int; (* machine-resident header *)
  mutable o_shape : shape;
  mutable o_slots : t array;
}

and shape = {
  sh_id : int;
  sh_fields : (string, int) Hashtbl.t; (* name -> slot index *)
  sh_names : string array; (* slot index -> name, insertion order *)
  sh_count : int;
  mutable sh_transitions : (string * shape) list;
}
(** Hidden classes: objects that add the same properties in the same order
    share a shape, so a property is a (shape id, slot index) pair — the
    structure inline caches key on.  Adding a new property follows (or
    mints) a transition to a successor shape; in-place updates never
    change the shape. *)

type heap

val create_heap : Pkru_safe.Env.t -> heap
val env : heap -> Pkru_safe.Env.t

(* {2 Strings} *)

val str_of_string : heap -> string -> t
(** Copies an OCaml string into fresh MU memory. *)

val string_of_str : heap -> str -> string
(** Reads the bytes back out through checked loads. *)

val of_foreign_buffer : addr:int -> len:int -> t
(** Wraps a buffer owned by someone else (e.g. the browser) as an engine
    string without copying — the paper's shared-pointer data flow. *)

val str_get : heap -> str -> int -> int
(** Byte at index (checked load). @raise Invalid_argument out of range. *)

val str_concat : heap -> str -> str -> t
val str_sub : heap -> str -> int -> int -> t
val str_equal : heap -> str -> str -> bool
val str_index_of : heap -> str -> str -> int
(** Index of first occurrence, or -1. *)

(* {2 Arrays} *)

val arr_make : heap -> int -> t
(** Fresh array of [n] nulls. *)

val arr_get : heap -> arr -> int -> t
(** @raise Invalid_argument out of range. *)

val arr_set : heap -> arr -> int -> t -> unit
val arr_push : heap -> arr -> t -> unit
val arr_pop : heap -> arr -> t

(* {2 Objects} *)

val obj_make : heap -> t
val obj_get : heap -> obj -> string -> t
(** [Null] for a missing property. *)

val obj_set : heap -> obj -> string -> t -> unit
val obj_has : heap -> obj -> string -> bool

(* {2 Shape/slot access for inline caches}

   A caller that has validated the receiver's shape id may address slots
   directly.  The charged variants charge exactly [prop_cost], like the
   name-keyed path, so an IC hit is architecturally invisible. *)

val obj_shape_id : obj -> int
val obj_slot_index : obj -> string -> int option
(** Host-side lookup in the shape's field table; charges nothing. *)

val obj_get_slot : heap -> obj -> int -> t
val obj_set_slot : heap -> obj -> int -> t -> unit
(** Slot store for an {e existing} property (never transitions). *)

val obj_iter : (string -> t -> unit) -> obj -> unit
(** Iterate properties in insertion (slot) order. *)

val batched_slots : bool ref
(** When set, array/slot traffic uses {!Sim.Machine.read_f64_batched} /
    [write_f64_batched] — bit-identical cycles and traces, fewer host-side
    TLB probes.  The fast dispatch tier enables it for the duration of a
    run; default off. *)

(* {2 NaN boxing (exposed for tests)} *)

val box : heap -> t -> int64
(** Encode a value into a 64-bit slot bit pattern. *)

val unbox : heap -> int64 -> t

(* {2 Misc} *)

val truthy : t -> bool
val type_name : t -> string

val to_display_string : heap -> t -> string
(** Human-readable rendering (numbers, strings, nested arrays). *)

val equals : heap -> t -> t -> bool
(** MiniJS [==]: numeric / string content equality, identity otherwise. *)

val stats_objects : heap -> int
(** Objects allocated so far. *)

(* {2 Garbage collection support}

   The engine heap is collected by mark-sweep (see [Eval.gc]): the
   evaluator marks reachable values, then {!sweep} frees every engine-owned
   machine buffer the marker did not visit.  Foreign (browser-owned)
   buffers are never engine-owned and never swept. *)

val owned_buffer : t -> int option
(** The machine buffer this value owns, if any: an owned string's bytes,
    an array's slot buffer, an object's header. *)

val owned_count : heap -> int
(** Live engine-owned buffers currently registered. *)

val sweep : heap -> live:(int -> bool) -> int
(** [sweep h ~live] frees every registered buffer whose address fails
    [live] and returns how many were freed. *)
