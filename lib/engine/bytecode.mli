(** The bytecode execution tier.

    Real engines are tiered — SpiderMonkey parses to bytecode and runs a
    baseline interpreter before JIT compilation.  This module is that
    second tier for MiniJS: {!compile} lowers a parsed program to a stack
    bytecode, and {!run} executes it on a value stack, driving the exact
    same semantic core as the AST tier ({!Eval}'s shared primitives), so
    both tiers are observationally identical — a property the test suite
    checks differentially on every benchmark kernel.

    Functions compile lazily on first call (a compile-on-demand baseline
    tier); closures remain interoperable with the AST tier, so a DOM
    callback may AST-interpret a function the VM created. *)

(** The instruction set is exposed so the fast tier ({!Threaded}) can
    compile the same code objects to closures and the profiler/report can
    name opcodes; the compiler itself lives here and is shared. *)
type instr =
  | Push_num of float
  | Push_bool of bool
  | Push_null
  | Push_str of string (* materialises a fresh machine string, like the AST tier *)
  | Load_var of string
  | Store_var of string (* assignment; keeps the value on the stack *)
  | Decl_var of string (* var declaration; pops *)
  | Pop
  | Dup
  | Dup2
  | Bin_op of string
  | Un_op of string
  | Jump of int
  | Jump_if_false of int (* pops the condition *)
  | Jump_if_false_peek of int (* && : leaves the falsy value *)
  | Jump_if_true_peek of int (* || : leaves the truthy value *)
  | Load_index (* obj idx -> value *)
  | Store_index_keep (* obj idx value -> value *)
  | Load_member of string
  | Store_member_keep of string (* obj value -> value *)
  | Call_top of int (* callee arg1..argn -> result *)
  | Method_call of string * int
  | Ns_call of string * string * int
  | Print_op of int
  | New_array_op
  | Make_array of int
  | Make_object of string list (* values pushed in field order *)
  | Make_closure of string list * Ast.stmt list
    (* carries the AST; bodies compile on first call (a baseline tier) *)
  | Push_scope
  | Pop_scope
  | Pop_scopes of int
  | Ret
  | Ret_null

type program = { top : instr array }

val compile : Ast.program -> program
(** Pure lowering; no evaluator state involved. *)

val compile_body : Ast.stmt list -> toplevel:bool -> instr array
(** Lower a statement list (a function body when [toplevel:false] — its
    value comes only from [return]). *)

val mnemonic : instr -> string
(** Operand-free opcode name (the opcode-profiling granularity). *)

val instr_to_string : instr -> string

val disassemble : program -> string
(** Human-readable listing of the top-level code (for tests/debugging). *)

val instruction_count : program -> int
(** Instructions in the top-level code object. *)

val run : Eval.t -> program -> Value.t
(** Executes top-level code against the evaluator's global scope; like the
    AST tier, yields the value of the final expression statement.
    @raise Eval.Script_error on runtime errors / fuel exhaustion. *)
