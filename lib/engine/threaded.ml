(* The fast bytecode tier: direct-threaded dispatch, profiler-selected
   superinstructions, and inline caches.

   Everything here is a host-side optimisation of HOW the reference
   interpreter's work gets done, never WHAT work is simulated: each
   optimisation elides OCaml-level overhead (the per-instruction match,
   list-based operand stacks, repeated hash probes) while performing the
   exact same sequence of simulated charges, machine accesses and fault
   checks.  The differential test suite asserts bit-identical cycles,
   compartment transitions and event traces against [Bytecode.exec] on
   every workload kernel, with each layer toggled independently.

   Layers (all on by default, independently toggleable via {!opts}):

   - {b Threaded dispatch}: [Bytecode.instr array] is compiled once per
     code object into an array of closures ("ops"), one per instruction
     index.  The interpreter loop is [while fr.pc < n do ops.(fr.pc) fr
     done]; each op advances [fr.pc] itself, so there is no central
     decode.  Operand stacks are growable arrays, not lists.

   - {b Superinstructions}: adjacent instruction pairs that the opcode
     profiler (Opstats, [report --opcodes]) measures as hot are fused
     into single specialised closures that keep intermediate values in
     OCaml locals instead of bouncing them through the operand stack.
     Fusing never disturbs the instruction index space: the fused op at
     [i] does both instructions' work and continues at [i+2], while
     [ops.(i+1)] keeps its standalone closure for jumps that land there.
     A fused op ticks twice — tick, work1, tick, work2 — in the exact
     order of the unfused pair, so fuel exhaustion hits the same
     instruction boundary.

   - {b Inline caches}: variable sites cache their scope-walk result
     (validated by scope identity + declaration epochs, charging what the
     walk would have charged — see Eval.cached_lookup); property sites
     cache (shape id, slot) pairs against Value's hidden classes,
     mono- then polymorphic up to {!pic_limit} entries, charging exactly
     [prop_cost] on a hit like the name-keyed path.

   Loads and stores additionally flow through the width-specialised
   batched TLB path ([Sim.Machine.read_f64_batched]) when enabled. *)

(* Threaded dispatch itself is the module; running with every layer below
   switched off is plain closure-compiled dispatch. *)
type opts = {
  superinstructions : bool;
  var_ic : bool;
  prop_ic : bool;
  batched_slots : bool;
}

let all_on = { superinstructions = true; var_ic = true; prop_ic = true; batched_slots = true }

let all_off =
  { superinstructions = false; var_ic = false; prop_ic = false; batched_slots = false }

let config = ref all_on

let with_opts opts f =
  let saved = !config in
  config := opts;
  Fun.protect ~finally:(fun () -> config := saved) f

type stats = {
  mutable prop_hits : int;
  mutable prop_misses : int;
  mutable super_execs : int;
  mutable fused_sites : int;
}

(* Counters are per-run (threaded through [tvm]), not process-wide:
   concurrent sessions each see only their own IC behaviour.  [Engine.t]
   owns one record and passes it to every [run]. *)
let make_stats () = { prop_hits = 0; prop_misses = 0; super_execs = 0; fused_sites = 0 }

let reset_stats s =
  s.prop_hits <- 0;
  s.prop_misses <- 0;
  s.super_execs <- 0;
  s.fused_sites <- 0

(* --- Frames --- *)

type frame = {
  mutable stk : Value.t array;
  mutable sp : int;
  mutable scopes : Eval.scope list; (* innermost first *)
  mutable pc : int;
}

type op = frame -> unit

exception Treturn of Value.t

let push fr v =
  let cap = Array.length fr.stk in
  if fr.sp >= cap then begin
    let bigger = Array.make (2 * cap) Value.Null in
    Array.blit fr.stk 0 bigger 0 fr.sp;
    fr.stk <- bigger
  end;
  fr.stk.(fr.sp) <- v;
  fr.sp <- fr.sp + 1

let pop fr =
  if fr.sp = 0 then Eval.fail "vm: stack underflow";
  fr.sp <- fr.sp - 1;
  fr.stk.(fr.sp)

let peek fr =
  if fr.sp = 0 then Eval.fail "vm: stack underflow";
  fr.stk.(fr.sp - 1)

let popn fr n =
  let rec go n acc = if n = 0 then acc else go (n - 1) (pop fr :: acc) in
  go n []

let cur fr = List.hd fr.scopes

(* --- Property inline caches (per compiled site) --- *)

let pic_limit = 4

type pic = {
  mutable p_entries : (int * int) array; (* (shape id, slot index) *)
  mutable p_mega : bool;
}

let pic_make () = { p_entries = [||]; p_mega = false }

let pic_find pic sh =
  let n = Array.length pic.p_entries in
  let rec go i =
    if i >= n then -1
    else
      let s, slot = pic.p_entries.(i) in
      if s = sh then slot else go (i + 1)
  in
  go 0

let pic_add pic sh slot =
  if Array.length pic.p_entries >= pic_limit then pic.p_mega <- true
  else pic.p_entries <- Array.append pic.p_entries [| (sh, slot) |]

(* --- The threaded VM --- *)

type tvm = {
  eval : Eval.t;
  opts : opts;
  stats : stats;
  (* closure id -> (params, compiled body).  The ops are compiled lazily
     on first call and shared (via [code_cache]) by every closure minted
     at the same [Make_closure] site, so the call path is a single
     int-keyed probe — no structural hashing of the body per call. *)
  vm_closures : (int, string list * int * op array Lazy.t) Hashtbl.t;
  code_cache : (Ast.stmt list, op array) Hashtbl.t;
  (* finished frames, recycled to spare a stack array per call *)
  mutable frame_pool : frame list;
}

(* The fused pair set, selected from opcode-pair measurements on the
   dromaeo and octane suites (report --opcodes; the data and ranking are
   recorded in EXPERIMENTS.md).  Pairs are named by reference-interpreter
   mnemonics; compile only fuses a pair whose mnemonics appear here. *)
let fused_pairs =
  [
    ("load", "load");
    ("load", "push_num");
    ("push_num", "binop");
    ("load", "binop");
    ("binop", "jump_if_false");
    ("store", "pop");
    ("load", "load_member");
    ("load", "load_index");
    ("push_num", "load_index");
    ("dup2", "load_index");
    ("load", "store");
    ("load_index", "binop");
    ("binop", "store");
    ("pop", "load");
  ]

let rec compile_ops tvm (code : Bytecode.instr array) : op array =
  let t = tvm.eval in
  let h = Eval.heap t in
  (* Per-site resolvers, shared by plain and fused ops.  Each call mints
     the site's inline-cache state, so call once per compiled site. *)
  let make_load name : frame -> Value.t =
    if tvm.opts.var_ic then begin
      let site = Eval.var_site name in
      fun fr ->
        match Eval.cached_lookup t (cur fr) site with
        | Some v -> v
        | None ->
          if Eval.host_exists t name then Value.Host name
          else Eval.fail "undefined variable %s" name
    end
    else
      fun fr ->
        match Eval.scope_lookup t (cur fr) name with
        | Some v -> v
        | None ->
          if Eval.host_exists t name then Value.Host name
          else Eval.fail "undefined variable %s" name
  in
  let make_store name : frame -> Value.t -> unit =
    if tvm.opts.var_ic then begin
      let site = Eval.var_site name in
      fun fr v ->
        if not (Eval.cached_assign t (cur fr) site v) then Eval.set_global t name v
    end
    else fun fr v -> Eval.scope_assign t (cur fr) name v
  in
  let make_member_load name : Value.t -> Value.t =
    if tvm.opts.prop_ic then begin
      let pic = pic_make () in
      fun recv ->
        match recv with
        | Value.Obj o ->
          let sh = Value.obj_shape_id o in
          let slot = if pic.p_mega then -1 else pic_find pic sh in
          if slot >= 0 then begin
            tvm.stats.prop_hits <- tvm.stats.prop_hits + 1;
            Value.obj_get_slot h o slot
          end
          else begin
            tvm.stats.prop_misses <- tvm.stats.prop_misses + 1;
            match Value.obj_slot_index o name with
            | Some sl ->
              if not pic.p_mega then pic_add pic sh sl;
              Value.obj_get_slot h o sl
            | None -> Eval.member_get t recv name
          end
        | recv -> Eval.member_get t recv name
    end
    else fun recv -> Eval.member_get t recv name
  in
  let make_member_store name : Value.t -> Value.t -> unit =
    if tvm.opts.prop_ic then begin
      let pic = pic_make () in
      fun recv v ->
        match recv with
        | Value.Obj o ->
          let sh = Value.obj_shape_id o in
          let slot = if pic.p_mega then -1 else pic_find pic sh in
          if slot >= 0 then begin
            tvm.stats.prop_hits <- tvm.stats.prop_hits + 1;
            Value.obj_set_slot h o slot v
          end
          else begin
            tvm.stats.prop_misses <- tvm.stats.prop_misses + 1;
            match Value.obj_slot_index o name with
            | Some sl ->
              if not pic.p_mega then pic_add pic sh sl;
              Value.obj_set_slot h o sl v
            | None ->
              (* new property: transitions the shape — never cached *)
              Eval.member_set t recv name v
          end
        | recv -> Eval.member_set t recv name v
    end
    else fun recv v -> Eval.member_set t recv name v
  in
  let make_op i (ins : Bytecode.instr) : op =
    let next = i + 1 in
    match ins with
    | Bytecode.Push_num f ->
      fun fr ->
        Eval.tick t 1;
        push fr (Value.Num f);
        fr.pc <- next
    | Bytecode.Push_bool b ->
      let v = Value.Bool b in
      fun fr ->
        Eval.tick t 1;
        push fr v;
        fr.pc <- next
    | Bytecode.Push_null ->
      fun fr ->
        Eval.tick t 1;
        push fr Value.Null;
        fr.pc <- next
    | Bytecode.Push_str s ->
      fun fr ->
        Eval.tick t 1;
        push fr (Value.str_of_string h s);
        fr.pc <- next
    | Bytecode.Load_var name ->
      let load = make_load name in
      fun fr ->
        Eval.tick t 1;
        push fr (load fr);
        fr.pc <- next
    | Bytecode.Store_var name ->
      let store = make_store name in
      fun fr ->
        Eval.tick t 1;
        store fr (peek fr);
        fr.pc <- next
    | Bytecode.Decl_var name ->
      fun fr ->
        Eval.tick t 1;
        Eval.scope_declare (cur fr) name (pop fr);
        fr.pc <- next
    | Bytecode.Pop ->
      fun fr ->
        Eval.tick t 1;
        ignore (pop fr);
        fr.pc <- next
    | Bytecode.Dup ->
      fun fr ->
        Eval.tick t 1;
        push fr (peek fr);
        fr.pc <- next
    | Bytecode.Dup2 ->
      fun fr ->
        Eval.tick t 1;
        if fr.sp < 2 then Eval.fail "vm: stack underflow";
        let a = fr.stk.(fr.sp - 1) in
        let b = fr.stk.(fr.sp - 2) in
        push fr b;
        push fr a;
        fr.pc <- next
    | Bytecode.Bin_op op ->
      let bf = Eval.binary_fn op in
      fun fr ->
        Eval.tick t 1;
        let b = pop fr in
        let a = pop fr in
        push fr (bf t a b);
        fr.pc <- next
    | Bytecode.Un_op op ->
      fun fr ->
        Eval.tick t 1;
        push fr (Eval.unary_op t op (pop fr));
        fr.pc <- next
    | Bytecode.Jump target ->
      fun fr ->
        Eval.tick t 1;
        fr.pc <- target
    | Bytecode.Jump_if_false target ->
      fun fr ->
        Eval.tick t 1;
        fr.pc <- (if not (Eval.truthy_value (pop fr)) then target else next)
    | Bytecode.Jump_if_false_peek target ->
      fun fr ->
        Eval.tick t 1;
        fr.pc <- (if not (Eval.truthy_value (peek fr)) then target else next)
    | Bytecode.Jump_if_true_peek target ->
      fun fr ->
        Eval.tick t 1;
        fr.pc <- (if Eval.truthy_value (peek fr) then target else next)
    | Bytecode.Load_index ->
      fun fr ->
        Eval.tick t 1;
        let idx = pop fr in
        let obj = pop fr in
        push fr (Eval.index_get t obj idx);
        fr.pc <- next
    | Bytecode.Store_index_keep ->
      fun fr ->
        Eval.tick t 1;
        let v = pop fr in
        let idx = pop fr in
        let obj = pop fr in
        Eval.index_set t obj idx v;
        push fr v;
        fr.pc <- next
    | Bytecode.Load_member name ->
      let mload = make_member_load name in
      fun fr ->
        Eval.tick t 1;
        push fr (mload (pop fr));
        fr.pc <- next
    | Bytecode.Store_member_keep name ->
      let mstore = make_member_store name in
      fun fr ->
        Eval.tick t 1;
        let v = pop fr in
        let obj = pop fr in
        mstore obj v;
        push fr v;
        fr.pc <- next
    | Bytecode.Call_top argc ->
      fun fr ->
        Eval.tick t 1;
        let args = popn fr argc in
        let callee = pop fr in
        push fr (call_value tvm callee args);
        fr.pc <- next
    | Bytecode.Method_call (name, argc) ->
      (* mirrors the reference tier's [method_call]: object receivers
         fetch the function-valued property (through the property IC
         here) and call it via the VM's own path, so VM-minted methods
         execute as threaded code; everything else takes the shared
         AST-tier method path *)
      let mload = make_member_load name in
      fun fr ->
        Eval.tick t 1;
        let args = popn fr argc in
        let recv = pop fr in
        push fr
          (match recv with
          | Value.Obj _ ->
            (match mload recv with
            | Value.Null -> Eval.fail "object has no method %s" name
            | f -> call_value tvm f args)
          | recv -> Eval.method_call t recv name args);
        fr.pc <- next
    | Bytecode.Ns_call (ns, name, argc) ->
      fun fr ->
        Eval.tick t 1;
        push fr (Eval.ns_call t ns name (popn fr argc));
        fr.pc <- next
    | Bytecode.Print_op argc ->
      fun fr ->
        Eval.tick t 1;
        Eval.print_values t (popn fr argc);
        push fr Value.Null;
        fr.pc <- next
    | Bytecode.New_array_op ->
      fun fr ->
        Eval.tick t 1;
        push fr (Eval.array_of_size t (pop fr));
        fr.pc <- next
    | Bytecode.Make_array count ->
      fun fr ->
        Eval.tick t 1;
        let items = popn fr count in
        let arr = Eval.array_of_size t (Value.Num 0.0) in
        (match arr with
        | Value.Arr a -> List.iter (Value.arr_push h a) items
        | _ -> assert false);
        push fr arr;
        fr.pc <- next
    | Bytecode.Make_object keys ->
      fun fr ->
        Eval.tick t 1;
        let values = popn fr (List.length keys) in
        let obj = Value.obj_make h in
        (match obj with
        | Value.Obj o -> List.iter2 (fun k v -> Value.obj_set h o k v) keys values
        | _ -> assert false);
        push fr obj;
        fr.pc <- next
    | Bytecode.Make_closure (params, body) ->
      (* one lazy compile and one scope origin per site; every closure
         minted here shares both *)
      let ops_l = lazy (body_ops tvm body) in
      let origin = Eval.fresh_origin t in
      fun fr ->
        Eval.tick t 1;
        let closure = Eval.make_closure t ~params ~body (cur fr) in
        (match closure with
        | Value.Fun id -> Hashtbl.replace tvm.vm_closures id (params, origin, ops_l)
        | _ -> assert false);
        push fr closure;
        fr.pc <- next
    | Bytecode.Push_scope ->
      fun fr ->
        Eval.tick t 1;
        fr.scopes <- Eval.new_scope ~parent:(cur fr) () :: fr.scopes;
        fr.pc <- next
    | Bytecode.Pop_scope ->
      fun fr ->
        Eval.tick t 1;
        fr.scopes <- List.tl fr.scopes;
        fr.pc <- next
    | Bytecode.Pop_scopes k ->
      fun fr ->
        Eval.tick t 1;
        for _ = 1 to k do
          fr.scopes <- List.tl fr.scopes
        done;
        fr.pc <- next
    | Bytecode.Ret ->
      fun fr ->
        Eval.tick t 1;
        raise (Treturn (pop fr))
    | Bytecode.Ret_null ->
      fun _fr ->
        Eval.tick t 1;
        raise (Treturn Value.Null)
  in
  (* Superinstructions.  A fused op replaces the op at [i] and continues
     at [i+2]; the standalone op at [i+1] survives for jumps landing
     there.  The tick/work interleaving of the unfused pair is preserved
     exactly (tick1, work1, tick1's charges already made, tick2, work2),
     with intermediates held in locals instead of the operand stack. *)
  let make_fused i (a : Bytecode.instr) (b : Bytecode.instr) : op option =
    if not (List.mem (Bytecode.mnemonic a, Bytecode.mnemonic b) fused_pairs) then None
    else
      let after = i + 2 in
      match (a, b) with
      | Bytecode.Load_var x, Bytecode.Load_var y ->
        let lx = make_load x and ly = make_load y in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            let vx = lx fr in
            Eval.tick t 1;
            let vy = ly fr in
            push fr vx;
            push fr vy;
            fr.pc <- after)
      | Bytecode.Load_var x, Bytecode.Push_num f ->
        let lx = make_load x in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            let vx = lx fr in
            Eval.tick t 1;
            push fr vx;
            push fr (Value.Num f);
            fr.pc <- after)
      | Bytecode.Push_num f, Bytecode.Bin_op op ->
        let vb = Value.Num f in
        let bf = Eval.binary_fn op in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            Eval.tick t 1;
            let a = pop fr in
            push fr (bf t a vb);
            fr.pc <- after)
      | Bytecode.Load_var x, Bytecode.Bin_op op ->
        let lx = make_load x in
        let bf = Eval.binary_fn op in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            let vb = lx fr in
            Eval.tick t 1;
            let a = pop fr in
            push fr (bf t a vb);
            fr.pc <- after)
      | Bytecode.Bin_op op, Bytecode.Jump_if_false target ->
        let bf = Eval.binary_fn op in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            let b = pop fr in
            let a = pop fr in
            let v = bf t a b in
            Eval.tick t 1;
            fr.pc <- (if not (Eval.truthy_value v) then target else after))
      | Bytecode.Store_var x, Bytecode.Pop ->
        let store = make_store x in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            store fr (peek fr);
            Eval.tick t 1;
            ignore (pop fr);
            fr.pc <- after)
      | Bytecode.Load_var x, Bytecode.Load_member m ->
        let lx = make_load x in
        let mload = make_member_load m in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            let recv = lx fr in
            Eval.tick t 1;
            push fr (mload recv);
            fr.pc <- after)
      | Bytecode.Load_var x, Bytecode.Load_index ->
        let lx = make_load x in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            let idx = lx fr in
            Eval.tick t 1;
            let obj = pop fr in
            push fr (Eval.index_get t obj idx);
            fr.pc <- after)
      | Bytecode.Push_num f, Bytecode.Load_index ->
        let idx = Value.Num f in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            Eval.tick t 1;
            let obj = pop fr in
            push fr (Eval.index_get t obj idx);
            fr.pc <- after)
      | Bytecode.Dup2, Bytecode.Load_index ->
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            if fr.sp < 2 then Eval.fail "vm: stack underflow";
            let idx = fr.stk.(fr.sp - 1) in
            let obj = fr.stk.(fr.sp - 2) in
            Eval.tick t 1;
            push fr (Eval.index_get t obj idx);
            fr.pc <- after)
      | Bytecode.Load_var x, Bytecode.Store_var y ->
        let lx = make_load x in
        let store = make_store y in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            let v = lx fr in
            Eval.tick t 1;
            store fr v;
            push fr v;
            fr.pc <- after)
      | Bytecode.Load_index, Bytecode.Bin_op op ->
        let bf = Eval.binary_fn op in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            let idx = pop fr in
            let obj = pop fr in
            let b = Eval.index_get t obj idx in
            Eval.tick t 1;
            let a = pop fr in
            push fr (bf t a b);
            fr.pc <- after)
      | Bytecode.Bin_op op, Bytecode.Store_var x ->
        let bf = Eval.binary_fn op in
        let store = make_store x in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            let b = pop fr in
            let a = pop fr in
            let v = bf t a b in
            Eval.tick t 1;
            store fr v;
            push fr v;
            fr.pc <- after)
      | Bytecode.Pop, Bytecode.Load_var x ->
        let lx = make_load x in
        Some
          (fun fr ->
            tvm.stats.super_execs <- tvm.stats.super_execs + 1;
            Eval.tick t 1;
            ignore (pop fr);
            Eval.tick t 1;
            push fr (lx fr);
            fr.pc <- after)
      | _ -> None
  in
  let n = Array.length code in
  let ops = Array.mapi make_op code in
  if tvm.opts.superinstructions then begin
    let i = ref 0 in
    while !i < n - 1 do
      match make_fused !i code.(!i) code.(!i + 1) with
      | Some op ->
        ops.(!i) <- op;
        tvm.stats.fused_sites <- tvm.stats.fused_sites + 1;
        i := !i + 2
      | None -> incr i
    done
  end;
  ops

(* Mirrors [Bytecode.call_value]: closures this VM minted re-enter the
   threaded interpreter through the compiled-body cache (no call-cost
   charge, exactly like the reference tier); everything else takes the
   shared AST-tier call path. *)
and call_value tvm callee args =
  match callee with
  | Value.Fun id ->
    (match Hashtbl.find_opt tvm.vm_closures id with
    | Some (params, origin, ops_l) ->
      let _, _, captured = Eval.closure_parts tvm.eval id in
      let scope = Eval.new_scope ~origin ~parent:captured () in
      List.iteri
        (fun i p ->
          let v =
            match List.nth_opt args i with
            | Some v -> v
            | None -> Value.Null
          in
          Eval.scope_declare scope p v)
        params;
      exec_ops tvm (Lazy.force ops_l) scope
    | None -> Eval.call_value tvm.eval callee args)
  | callee -> Eval.call_value tvm.eval callee args

and body_ops tvm body =
  match Hashtbl.find_opt tvm.code_cache body with
  | Some ops -> ops
  | None ->
    let ops = compile_ops tvm (Bytecode.compile_body body ~toplevel:false) in
    Hashtbl.replace tvm.code_cache body ops;
    ops

(* Frames are recycled through [tvm.frame_pool] on normal exit (a
   Script_error aborts the whole run, so leaking the frame then is
   fine).  A pooled frame's stale stack slots are never read again —
   [sp] is reset — and the engine GC never scans frames, so they keep
   nothing observably alive. *)
and exec_ops tvm ops scope0 =
  let fr =
    match tvm.frame_pool with
    | f :: rest ->
      tvm.frame_pool <- rest;
      f.sp <- 0;
      f.scopes <- [ scope0 ];
      f.pc <- 0;
      f
    | [] -> { stk = Array.make 32 Value.Null; sp = 0; scopes = [ scope0 ]; pc = 0 }
  in
  let n = Array.length ops in
  let ret =
    try
      while fr.pc < n do
        ops.(fr.pc) fr
      done;
      Value.Null
    with Treturn v -> v
  in
  tvm.frame_pool <- fr :: tvm.frame_pool;
  ret

let run ?opts ?stats eval (program : Bytecode.program) =
  let opts =
    match opts with
    | Some o -> o
    | None -> !config
  in
  let stats =
    match stats with
    | Some s -> s
    | None -> make_stats ()
  in
  let tvm =
    { eval; opts; stats; vm_closures = Hashtbl.create 16; code_cache = Hashtbl.create 16;
      frame_pool = [] }
  in
  let saved = !Value.batched_slots in
  Value.batched_slots := opts.batched_slots;
  Fun.protect
    ~finally:(fun () -> Value.batched_slots := saved)
    (fun () -> exec_ops tvm (compile_ops tvm program.Bytecode.top) (Eval.globals_scope eval))
