(** The MiniJS evaluator.

    A tree-walking interpreter whose data lives in machine memory (see
    {!Value}).  Built-in namespaces ([Math], [JSON], [String]) and methods
    on strings/arrays are provided here; embedder bindings (the DOM API)
    are registered as host functions and appear as globals.

    Every evaluation step charges cycles on the simulated CPU, and every
    string/array access is a checked machine access, so running a script
    inside an untrusted compartment faults exactly where real engine code
    would. *)

exception Script_error of string

type host = Value.t list -> Value.t

type t

val create : ?seed:int -> ?fuel:int -> Value.heap -> t
(** [seed] drives [Math.random]; [fuel] bounds evaluation steps
    (default 200M). *)

val heap : t -> Value.heap

val register_host : t -> string -> host -> unit
(** Exposes a native function as a global. *)

val set_global : t -> string -> Value.t -> unit
val get_global : t -> string -> Value.t option

val run_program : t -> Ast.program -> Value.t
(** Executes top-level statements; the value of the last expression
    statement is returned (like a REPL), [Null] otherwise.
    @raise Script_error on runtime errors or fuel exhaustion. *)

val call_function : t -> Value.t -> Value.t list -> Value.t
(** Invoke a [Fun] or [Host] value from the embedder. *)

val take_output : t -> string list
(** Lines produced by [print], oldest first; clears the buffer. *)

val steps : t -> int

(* {2 The tier-shared semantic core}

   The bytecode tier ({!Bytecode}) executes the same language with the
   same observable semantics; rather than duplicating them, the VM drives
   these primitives.  They are exact counterparts of what the AST
   evaluator does internally. *)

type scope

val globals_scope : t -> scope
val new_scope : ?origin:int -> parent:scope -> unit -> scope
(** [origin] (from {!fresh_origin}) marks every scope minted at one
    closure-call site as sharing a deterministic declaration layout,
    enabling the slot-resolved variable IC; omit it for scopes with no
    such guarantee. *)

val fresh_origin : t -> int
(** A per-evaluator-unique id for one closure-call site's scopes.
    Counted per evaluator so session results are order-independent:
    interleaved sessions mint the same ids as sequential ones. *)

val scope_declare : scope -> string -> Value.t -> unit
(** [var name = v] in this scope. *)

val scope_lookup : t -> scope -> string -> Value.t option
(** Walks the scope chain (charging the same lookup cost). *)

val scope_assign : t -> scope -> string -> Value.t -> unit
(** Assignment: updates the innermost binding, or creates a global (the
    language's fallback, as in the AST tier). *)

val host_exists : t -> string -> bool

(* {2 Variable inline caches}

   A bytecode load/store site that resolves the same name repeatedly can
   cache the binding it found and skip the host-side hash probes of the
   scope walk — while charging exactly what the walk would have charged,
   so simulated cycles stay bit-identical.  Two cache levels: a full-walk
   cache anchored on the innermost scope itself (zero probes while that
   scope is physically stable, as loop and global scopes are), and a
   walk-above fallback anchored on the current scope's parent — the
   captured chain, stable across calls to the same closure — behind a
   genuinely probed (and charged) innermost level.  Both validate that no
   scope they skip has declared a new (possibly shadowing) name since the
   fill; sites whose anchors never stabilise disable themselves and
   revert to the plain charged walk. *)

type var_site

val var_site : string -> var_site
(** A fresh (empty) per-call-site cache for [name]. *)

val cached_lookup : t -> scope -> var_site -> Value.t option
(** Same observable behaviour and charges as {!scope_lookup}. *)

val cached_assign : t -> scope -> var_site -> Value.t -> bool
(** Updates the innermost existing binding ([false] if none exists
    anywhere — the caller applies the global-declaration fallback).
    Charges nothing, like the uncached assignment walk. *)

type ic_stats = {
  mutable var_hits : int;
  mutable var_misses : int;
}

val ic_stats : t -> ic_stats
(** This evaluator's variable-IC counters (host-side observability only;
    per-evaluator so concurrent sessions don't cross-pollute). *)

val reset_ic_stats : t -> unit

val call_value : t -> Value.t -> Value.t list -> Value.t
(** Call a [Fun] (AST-interpreted) or [Host] value. *)

val binary_op : t -> string -> Value.t -> Value.t -> Value.t

val binary_fn : string -> t -> Value.t -> Value.t -> Value.t
(** [binary_fn op] resolves the operator string once, at site-compile
    time, returning a closure with the exact observable behaviour of
    [binary_op _ op] — including charging 1 cycle before failing on an
    unknown operator. *)

val truthy_value : Value.t -> bool
val unary_op : t -> string -> Value.t -> Value.t
val method_call : t -> Value.t -> string -> Value.t list -> Value.t
val member_get : t -> Value.t -> string -> Value.t
val member_set : t -> Value.t -> string -> Value.t -> unit
val index_get : t -> Value.t -> Value.t -> Value.t
val index_set : t -> Value.t -> Value.t -> Value.t -> unit
val ns_call : t -> string -> string -> Value.t list -> Value.t
(** Math / JSON / String namespace calls. *)

val print_values : t -> Value.t list -> unit
val array_of_size : t -> Value.t -> Value.t
(** The [new Array(n)] builtin. *)

val make_closure : t -> params:string list -> body:Ast.stmt list -> scope -> Value.t
val closure_parts : t -> int -> string list * Ast.stmt list * scope
(** Inverse of {!make_closure} for a [Fun] id (used by the VM's
    compile-on-call cache). *)

val tick : t -> int -> unit
(** One evaluation step: fuel accounting plus a cycle charge.
    @raise Script_error on fuel exhaustion. *)

val set_yield_hook : t -> (unit -> unit) option -> unit
(** Installs (or clears) a callback invoked after every {!tick}, on all
    execution tiers.  The hook is for cooperative scheduling (it may
    perform an effect to park the session); it must charge no simulated
    cycles and emit no telemetry itself, so a hooked run stays
    bit-identical to an unhooked one.  [None] costs one load and one
    branch per tick. *)

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Script_error} with a formatted message. *)

val gc : t -> int
(** Mark-sweep collection of the engine heap: marks everything reachable
    from the global scope (through arrays' machine slots, object
    properties and closure environments) and frees the machine buffers of
    everything else.  Returns the number of buffers freed.

    Only safe at a quiescence point — between scripts — because values
    held solely on the evaluator's OCaml stack are invisible to the
    marker; the embedder API ([Engine.collect]) is the intended entry
    point, and no [gc()] builtin is exposed to scripts.

    Embedders that retain engine values outside the global scope (e.g.
    the browser's event-listener table) must register them as GC roots
    with {!add_gc_root}, the moral equivalent of a handle scope. *)

val add_gc_root : t -> (unit -> Value.t list) -> unit
(** Registers a provider of additional roots, consulted at every
    collection. *)
