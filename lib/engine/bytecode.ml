(* Stack bytecode.  Compilation is a straightforward syntax-directed
   lowering; the only subtleties are (a) scope bookkeeping — blocks and
   for-loops open scopes, and break/continue must pop the scopes they jump
   out of — and (b) assignment being an expression, so stores keep the
   stored value on the stack. *)

type instr =
  | Push_num of float
  | Push_bool of bool
  | Push_null
  | Push_str of string (* materialises a fresh machine string, like the AST tier *)
  | Load_var of string
  | Store_var of string (* assignment; keeps the value on the stack *)
  | Decl_var of string (* var declaration; pops *)
  | Pop
  | Dup
  | Dup2
  | Bin_op of string
  | Un_op of string
  | Jump of int
  | Jump_if_false of int (* pops the condition *)
  | Jump_if_false_peek of int (* && : leaves the falsy value *)
  | Jump_if_true_peek of int (* || : leaves the truthy value *)
  | Load_index (* obj idx -> value *)
  | Store_index_keep (* obj idx value -> value *)
  | Load_member of string
  | Store_member_keep of string (* obj value -> value *)
  | Call_top of int (* callee arg1..argn -> result *)
  | Method_call of string * int
  | Ns_call of string * string * int
  | Print_op of int
  | New_array_op
  | Make_array of int
  | Make_object of string list (* values pushed in field order *)
  | Make_closure of string list * Ast.stmt list
    (* carries the AST; bodies compile on first call (a baseline tier) *)
  | Push_scope
  | Pop_scope
  | Pop_scopes of int
  | Ret
  | Ret_null

type program = { top : instr array }

(* --- Compiler ---

   Labels are pseudo-instructions during emission, resolved to absolute
   indices in a second pass.  The loop context carries break/continue
   targets plus the scope depth at loop entry, so the jumps unwind the
   block scopes they exit. *)
type emitted =
  | Ins of instr
  | Label of int
  | Jmp of int
  | Jmp_if_false of int
  | Jmp_if_false_peek of int
  | Jmp_if_true_peek of int

type ectx = {
  mutable ebuf : emitted array; (* growable, in emission order *)
  mutable elen : int;
  mutable labels : int;
  mutable eloops : (int * int * int) list; (* (break_lbl, continue_lbl, depth) *)
  mutable edepth : int;
}

(* Append into a growable buffer.  (This used to prepend to a list that
   [assemble] then reversed twice; a doubling array keeps emission O(1)
   amortised and lets assembly run a single forward pass.) *)
let emit c e =
  let cap = Array.length c.ebuf in
  if c.elen >= cap then begin
    let bigger = Array.make (max 32 (2 * cap)) e in
    Array.blit c.ebuf 0 bigger 0 c.elen;
    c.ebuf <- bigger
  end;
  c.ebuf.(c.elen) <- e;
  c.elen <- c.elen + 1

let fresh_label c =
  c.labels <- c.labels + 1;
  c.labels - 1

let rec compile_expr c (e : Ast.expr) =
  match e with
  | Ast.Num f -> emit c (Ins (Push_num f))
  | Ast.Str s -> emit c (Ins (Push_str s))
  | Ast.Bool b -> emit c (Ins (Push_bool b))
  | Ast.Null -> emit c (Ins Push_null)
  | Ast.Ident name -> emit c (Ins (Load_var name))
  | Ast.Array_lit items ->
    List.iter (compile_expr c) items;
    emit c (Ins (Make_array (List.length items)))
  | Ast.Object_lit fields ->
    List.iter (fun (_, v) -> compile_expr c v) fields;
    emit c (Ins (Make_object (List.map fst fields)))
  | Ast.Func_lit (params, body) -> emit c (Ins (Make_closure (params, body)))
  | Ast.Unary (op, e) ->
    compile_expr c e;
    emit c (Ins (Un_op op))
  | Ast.Binary ("&&", a, b) ->
    let l = fresh_label c in
    compile_expr c a;
    emit c (Jmp_if_false_peek l);
    emit c (Ins Pop);
    compile_expr c b;
    emit c (Label l)
  | Ast.Binary ("||", a, b) ->
    let l = fresh_label c in
    compile_expr c a;
    emit c (Jmp_if_true_peek l);
    emit c (Ins Pop);
    compile_expr c b;
    emit c (Label l)
  | Ast.Binary (op, a, b) ->
    compile_expr c a;
    compile_expr c b;
    emit c (Ins (Bin_op op))
  | Ast.Ternary (cond, a, b) ->
    let l_else = fresh_label c in
    let l_end = fresh_label c in
    compile_expr c cond;
    emit c (Jmp_if_false l_else);
    compile_expr c a;
    emit c (Jmp l_end);
    emit c (Label l_else);
    compile_expr c b;
    emit c (Label l_end)
  | Ast.Assign (op, lhs, rhs) -> compile_assign c op lhs rhs
  | Ast.Index (a, i) ->
    compile_expr c a;
    compile_expr c i;
    emit c (Ins Load_index)
  | Ast.Member (e, name) ->
    compile_expr c e;
    emit c (Ins (Load_member name))
  | Ast.Method_call (Ast.Ident (("Math" | "JSON" | "String") as ns), name, args) ->
    List.iter (compile_expr c) args;
    emit c (Ins (Ns_call (ns, name, List.length args)))
  | Ast.Method_call (recv, name, args) ->
    compile_expr c recv;
    List.iter (compile_expr c) args;
    emit c (Ins (Method_call (name, List.length args)))
  | Ast.Call (Ast.Ident "print", args) ->
    List.iter (compile_expr c) args;
    emit c (Ins (Print_op (List.length args)))
  | Ast.Call (Ast.Ident "__new_array", [ n ]) ->
    compile_expr c n;
    emit c (Ins New_array_op)
  | Ast.Call (callee, args) ->
    compile_expr c callee;
    List.iter (compile_expr c) args;
    emit c (Ins (Call_top (List.length args)))

and compile_assign c op lhs rhs =
  match lhs with
  | Ast.Ident name ->
    if op = "=" then compile_expr c rhs
    else begin
      emit c (Ins (Load_var name));
      compile_expr c rhs;
      emit c (Ins (Bin_op (String.sub op 0 1)))
    end;
    emit c (Ins (Store_var name))
  | Ast.Index (a, i) ->
    compile_expr c a;
    compile_expr c i;
    if op = "=" then compile_expr c rhs
    else begin
      emit c (Ins Dup2);
      emit c (Ins Load_index);
      compile_expr c rhs;
      emit c (Ins (Bin_op (String.sub op 0 1)))
    end;
    emit c (Ins Store_index_keep)
  | Ast.Member (e, name) ->
    compile_expr c e;
    if op = "=" then compile_expr c rhs
    else begin
      emit c (Ins Dup);
      emit c (Ins (Load_member name));
      compile_expr c rhs;
      emit c (Ins (Bin_op (String.sub op 0 1)))
    end;
    emit c (Ins (Store_member_keep name))
  | _ -> Eval.fail "invalid assignment target"

and compile_stmt c (s : Ast.stmt) =
  match s with
  | Ast.Expr e ->
    compile_expr c e;
    emit c (Ins Pop)
  | Ast.Var (name, init) ->
    compile_expr c init;
    emit c (Ins (Decl_var name))
  | Ast.Func_decl (name, params, body) ->
    emit c (Ins (Make_closure (params, body)));
    emit c (Ins (Decl_var name))
  | Ast.If (cond, then_, else_) ->
    let l_else = fresh_label c in
    let l_end = fresh_label c in
    compile_expr c cond;
    emit c (Jmp_if_false l_else);
    List.iter (compile_stmt c) then_;
    emit c (Jmp l_end);
    emit c (Label l_else);
    List.iter (compile_stmt c) else_;
    emit c (Label l_end)
  | Ast.While (cond, body) ->
    let l_head = fresh_label c in
    let l_end = fresh_label c in
    emit c (Label l_head);
    compile_expr c cond;
    emit c (Jmp_if_false l_end);
    c.eloops <- (l_end, l_head, c.edepth) :: c.eloops;
    List.iter (compile_stmt c) body;
    c.eloops <- List.tl c.eloops;
    emit c (Jmp l_head);
    emit c (Label l_end)
  | Ast.For (init, cond, step, body) ->
    (* The for statement opens its own scope, like the AST tier. *)
    emit c (Ins Push_scope);
    c.edepth <- c.edepth + 1;
    (match init with
    | Some s -> compile_stmt c s
    | None -> ());
    let l_head = fresh_label c in
    let l_step = fresh_label c in
    let l_end = fresh_label c in
    emit c (Label l_head);
    (match cond with
    | Some e ->
      compile_expr c e;
      emit c (Jmp_if_false l_end)
    | None -> ());
    c.eloops <- (l_end, l_step, c.edepth) :: c.eloops;
    List.iter (compile_stmt c) body;
    c.eloops <- List.tl c.eloops;
    emit c (Label l_step);
    (match step with
    | Some s -> compile_stmt c s
    | None -> ());
    emit c (Jmp l_head);
    emit c (Label l_end);
    emit c (Ins Pop_scope);
    c.edepth <- c.edepth - 1
  | Ast.Return v ->
    (match v with
    | Some e ->
      compile_expr c e;
      emit c (Ins Ret)
    | None -> emit c (Ins Ret_null))
  | Ast.Break ->
    (match c.eloops with
    | (l_break, _, depth) :: _ ->
      if c.edepth > depth then emit c (Ins (Pop_scopes (c.edepth - depth)));
      emit c (Jmp l_break)
    | [] -> Eval.fail "break outside a loop")
  | Ast.Continue ->
    (match c.eloops with
    | (_, l_continue, depth) :: _ ->
      if c.edepth > depth then emit c (Ins (Pop_scopes (c.edepth - depth)));
      emit c (Jmp l_continue)
    | [] -> Eval.fail "continue outside a loop")
  | Ast.Block body ->
    emit c (Ins Push_scope);
    c.edepth <- c.edepth + 1;
    List.iter (compile_stmt c) body;
    emit c (Ins Pop_scope);
    c.edepth <- c.edepth - 1

(* Resolve labels to absolute indices: one forward pass to place labels,
   one to write instructions straight into a pre-sized array. *)
let assemble c : instr array =
  let positions = Hashtbl.create 16 in
  let pc = ref 0 in
  for i = 0 to c.elen - 1 do
    match c.ebuf.(i) with
    | Label l -> Hashtbl.replace positions l !pc
    | Ins _ | Jmp _ | Jmp_if_false _ | Jmp_if_false_peek _ | Jmp_if_true_peek _ -> incr pc
  done;
  let target l =
    match Hashtbl.find_opt positions l with
    | Some p -> p
    | None -> Eval.fail "unresolved label %d" l
  in
  let out = Array.make !pc Ret_null in
  let j = ref 0 in
  let put i =
    out.(!j) <- i;
    incr j
  in
  for i = 0 to c.elen - 1 do
    match c.ebuf.(i) with
    | Label _ -> ()
    | Ins i -> put i
    | Jmp l -> put (Jump (target l))
    | Jmp_if_false l -> put (Jump_if_false (target l))
    | Jmp_if_false_peek l -> put (Jump_if_false_peek (target l))
    | Jmp_if_true_peek l -> put (Jump_if_true_peek (target l))
  done;
  out

let compile_body (stmts : Ast.stmt list) ~toplevel =
  let c = { ebuf = [||]; elen = 0; labels = 0; eloops = []; edepth = 0 } in
  (* Top level: the value of the last expression statement is the result. *)
  let rec walk = function
    | [] -> emit c (Ins Ret_null)
    | [ Ast.Expr e ] when toplevel ->
      compile_expr c e;
      emit c (Ins Ret)
    | s :: rest ->
      compile_stmt c s;
      walk rest
  in
  walk stmts;
  assemble c

let compile (prog : Ast.program) : program = { top = compile_body prog ~toplevel:true }

(* --- Disassembler --- *)

let instr_to_string = function
  | Push_num f -> Printf.sprintf "push_num %g" f
  | Push_bool b -> Printf.sprintf "push_bool %b" b
  | Push_null -> "push_null"
  | Push_str s -> Printf.sprintf "push_str %S" s
  | Load_var v -> "load " ^ v
  | Store_var v -> "store " ^ v
  | Decl_var v -> "decl " ^ v
  | Pop -> "pop"
  | Dup -> "dup"
  | Dup2 -> "dup2"
  | Bin_op op -> "binop " ^ op
  | Un_op op -> "unop " ^ op
  | Jump t -> Printf.sprintf "jump %d" t
  | Jump_if_false t -> Printf.sprintf "jump_if_false %d" t
  | Jump_if_false_peek t -> Printf.sprintf "jump_if_false_peek %d" t
  | Jump_if_true_peek t -> Printf.sprintf "jump_if_true_peek %d" t
  | Load_index -> "load_index"
  | Store_index_keep -> "store_index"
  | Load_member m -> "load_member " ^ m
  | Store_member_keep m -> "store_member " ^ m
  | Call_top n -> Printf.sprintf "call %d" n
  | Method_call (m, n) -> Printf.sprintf "method_call %s/%d" m n
  | Ns_call (ns, m, n) -> Printf.sprintf "ns_call %s.%s/%d" ns m n
  | Print_op n -> Printf.sprintf "print %d" n
  | New_array_op -> "new_array"
  | Make_array n -> Printf.sprintf "make_array %d" n
  | Make_object keys -> "make_object {" ^ String.concat "," keys ^ "}"
  | Make_closure (params, _) -> Printf.sprintf "make_closure (%s)" (String.concat "," params)
  | Push_scope -> "push_scope"
  | Pop_scope -> "pop_scope"
  | Pop_scopes n -> Printf.sprintf "pop_scopes %d" n
  | Ret -> "ret"
  | Ret_null -> "ret_null"

(* Operand-free opcode name, the unit of opcode-frequency profiling (and
   the granularity at which superinstructions are selected). *)
let mnemonic = function
  | Push_num _ -> "push_num"
  | Push_bool _ -> "push_bool"
  | Push_null -> "push_null"
  | Push_str _ -> "push_str"
  | Load_var _ -> "load"
  | Store_var _ -> "store"
  | Decl_var _ -> "decl"
  | Pop -> "pop"
  | Dup -> "dup"
  | Dup2 -> "dup2"
  | Bin_op _ -> "binop"
  | Un_op _ -> "unop"
  | Jump _ -> "jump"
  | Jump_if_false _ -> "jump_if_false"
  | Jump_if_false_peek _ -> "jump_if_false_peek"
  | Jump_if_true_peek _ -> "jump_if_true_peek"
  | Load_index -> "load_index"
  | Store_index_keep -> "store_index"
  | Load_member _ -> "load_member"
  | Store_member_keep _ -> "store_member"
  | Call_top _ -> "call"
  | Method_call _ -> "method_call"
  | Ns_call _ -> "ns_call"
  | Print_op _ -> "print"
  | New_array_op -> "new_array"
  | Make_array _ -> "make_array"
  | Make_object _ -> "make_object"
  | Make_closure _ -> "make_closure"
  | Push_scope -> "push_scope"
  | Pop_scope -> "pop_scope"
  | Pop_scopes _ -> "pop_scopes"
  | Ret -> "ret"
  | Ret_null -> "ret_null"

let disassemble p =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i instr -> Buffer.add_string buf (Printf.sprintf "%4d  %s\n" i (instr_to_string instr)))
    p.top;
  Buffer.contents buf

let instruction_count p = Array.length p.top

(* --- VM --- *)

exception Vm_return of Value.t

(* Closures made by the VM register in the shared closure table (so the
   AST tier can call them); the VM remembers which closure ids it minted
   and caches compiled bodies, keyed by the body itself, so a closure
   created repeatedly in a loop compiles once. *)
type vm = {
  eval : Eval.t;
  vm_closures : (int, string list * Ast.stmt list) Hashtbl.t;
  code_cache : (Ast.stmt list, instr array) Hashtbl.t;
}

(* A function body is never "toplevel": its result comes only from return
   statements. *)
let body_code vm body =
  match Hashtbl.find_opt vm.code_cache body with
  | Some code -> code
  | None ->
    let code = compile_body body ~toplevel:false in
    Hashtbl.replace vm.code_cache body code;
    code

let rec exec vm (code : instr array) scope0 =
  let t = vm.eval in
  let stack = ref [] in
  let scopes = ref [ scope0 ] in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
      stack := rest;
      v
    | [] -> Eval.fail "vm: stack underflow"
  in
  let peek () =
    match !stack with
    | v :: _ -> v
    | [] -> Eval.fail "vm: stack underflow"
  in
  let popn n = List.rev (List.init n (fun _ -> pop ())) in
  let current_scope () = List.hd !scopes in
  let pc = ref 0 in
  let n = Array.length code in
  (* Opcode profiling (host-side only; see Opstats).  Pairs count only
     fall-through adjacency inside this frame — the shapes a fused
     superinstruction could cover. *)
  let last_pc = ref (-2) in
  let last_m = ref "" in
  (try
     while !pc < n do
       let pc0 = !pc in
       let instr = code.(pc0) in
       (match !Opstats.current with
       | Some st ->
         let m = mnemonic instr in
         if pc0 = !last_pc + 1 then Opstats.record st ~prev:!last_m m
         else Opstats.record st m;
         last_pc := pc0;
         last_m := m
       | None -> ());
       incr pc;
       Eval.tick t 1;
       match instr with
       | Push_num f -> push (Value.Num f)
       | Push_bool b -> push (Value.Bool b)
       | Push_null -> push Value.Null
       | Push_str s -> push (Value.str_of_string (Eval.heap t) s)
       | Load_var name ->
         (match Eval.scope_lookup t (current_scope ()) name with
         | Some v -> push v
         | None ->
           if Eval.host_exists t name then push (Value.Host name)
           else Eval.fail "undefined variable %s" name)
       | Store_var name -> Eval.scope_assign t (current_scope ()) name (peek ())
       | Decl_var name -> Eval.scope_declare (current_scope ()) name (pop ())
       | Pop -> ignore (pop ())
       | Dup -> push (peek ())
       | Dup2 ->
         (match !stack with
         | a :: b :: _ ->
           push b;
           push a
         | _ -> Eval.fail "vm: stack underflow")
       | Bin_op op ->
         let b = pop () in
         let a = pop () in
         push (Eval.binary_op t op a b)
       | Un_op op -> push (Eval.unary_op t op (pop ()))
       | Jump target -> pc := target
       | Jump_if_false target -> if not (Eval.truthy_value (pop ())) then pc := target
       | Jump_if_false_peek target -> if not (Eval.truthy_value (peek ())) then pc := target
       | Jump_if_true_peek target -> if Eval.truthy_value (peek ()) then pc := target
       | Load_index ->
         let idx = pop () in
         let obj = pop () in
         push (Eval.index_get t obj idx)
       | Store_index_keep ->
         let v = pop () in
         let idx = pop () in
         let obj = pop () in
         Eval.index_set t obj idx v;
         push v
       | Load_member name -> push (Eval.member_get t (pop ()) name)
       | Store_member_keep name ->
         let v = pop () in
         let obj = pop () in
         Eval.member_set t obj name v;
         push v
       | Call_top argc ->
         let args = popn argc in
         let callee = pop () in
         push (call_value vm callee args)
       | Method_call (name, argc) ->
         let args = popn argc in
         let recv = pop () in
         push (method_call vm recv name args)
       | Ns_call (ns, name, argc) -> push (Eval.ns_call t ns name (popn argc))
       | Print_op argc ->
         Eval.print_values t (popn argc);
         push Value.Null
       | New_array_op -> push (Eval.array_of_size t (pop ()))
       | Make_array count ->
         let items = popn count in
         let arr = Eval.array_of_size t (Value.Num 0.0) in
         (match arr with
         | Value.Arr a -> List.iter (Value.arr_push (Eval.heap t) a) items
         | _ -> assert false);
         push arr
       | Make_object keys ->
         let values = popn (List.length keys) in
         let obj = Value.obj_make (Eval.heap t) in
         (match obj with
         | Value.Obj o ->
           List.iter2 (fun k v -> Value.obj_set (Eval.heap t) o k v) keys values
         | _ -> assert false);
         push obj
       | Make_closure (params, body) ->
         let closure = Eval.make_closure t ~params ~body (current_scope ()) in
         (match closure with
         | Value.Fun id -> Hashtbl.replace vm.vm_closures id (params, body)
         | _ -> assert false);
         push closure
       | Push_scope -> scopes := Eval.new_scope ~parent:(current_scope ()) () :: !scopes
       | Pop_scope -> scopes := List.tl !scopes
       | Pop_scopes k ->
         for _ = 1 to k do
           scopes := List.tl !scopes
         done
       | Ret -> raise (Vm_return (pop ()))
       | Ret_null -> raise (Vm_return Value.Null)
     done;
     Value.Null
   with Vm_return v -> v)

(* Calls from VM code: VM-made closures re-enter the VM through their
   cached proto; anything else (AST-tier closures, hosts) goes through the
   shared call path. *)
(* Method calls: a function-valued property of an object receiver is
   fetched (same charges as the shared path) and called through the VM's
   own call path, so methods the VM minted execute as bytecode like any
   other VM closure.  Every non-object receiver — array/string builtins —
   takes the shared AST-tier method path unchanged. *)
and method_call vm recv name args =
  match recv with
  | Value.Obj o ->
    (match Value.obj_get (Eval.heap vm.eval) o name with
    | Value.Null -> Eval.fail "object has no method %s" name
    | f -> call_value vm f args)
  | recv -> Eval.method_call vm.eval recv name args

and call_value vm callee args =
  match callee with
  | Value.Fun id when Hashtbl.mem vm.vm_closures id ->
    let params, body = Hashtbl.find vm.vm_closures id in
    let _, _, captured = Eval.closure_parts vm.eval id in
    let scope = Eval.new_scope ~parent:captured () in
    List.iteri
      (fun i p ->
        let v =
          match List.nth_opt args i with
          | Some v -> v
          | None -> Value.Null
        in
        Eval.scope_declare scope p v)
      params;
    exec vm (body_code vm body) scope
  | callee -> Eval.call_value vm.eval callee args

let run eval program =
  let vm = { eval; vm_closures = Hashtbl.create 16; code_cache = Hashtbl.create 16 } in
  exec vm program.top (Eval.globals_scope eval)
