module Value = Value
module Lexer = Lexer
module Parser = Parser
module Ast = Ast
module Eval = Eval
module Bytecode = Bytecode
module Threaded = Threaded
module Opstats = Opstats

type tier =
  | Ast_tier
  | Bytecode_tier
  | Threaded_tier

type t = {
  env : Pkru_safe.Env.t;
  heap : Value.heap;
  eval : Eval.t;
  tstats : Threaded.stats;
      (* this engine's threaded-tier counters: per-instance, so fleet
         sessions observe only their own IC behaviour *)
  opts : Threaded.opts option;
      (* per-engine tier layers; [None] defers to [!Threaded.config] at
         eval time (the process-wide default, as before) *)
}

let create ?seed ?fuel ?engine_opts env =
  let heap = Value.create_heap env in
  {
    env;
    heap;
    eval = Eval.create ?seed ?fuel heap;
    tstats = Threaded.make_stats ();
    opts = engine_opts;
  }

let env t = t.env
let heap t = t.heap
let evaluator t = t.eval
let threaded_stats t = t.tstats

let reset_stats t =
  Eval.reset_ic_stats t.eval;
  Threaded.reset_stats t.tstats

let register_host t name fn = Eval.register_host t.eval name fn

(* Workload-phase spans: engine stages become causal spans so a flight
   dump (or Chrome trace) shows which stage a gate crossing or fault
   happened inside.  With no sink installed this is a load and a branch
   per phase — no event, no span, no cycle is ever produced. *)
let with_phase t name f =
  match !Telemetry.Sink.current with
  | None -> f ()
  | Some sink ->
    let machine = Pkru_safe.Env.machine t.env in
    let cpu = machine.Sim.Machine.cpu.Sim.Cpu.id in
    let id =
      Telemetry.Sink.span_enter sink ~ts:(Sim.Machine.cycles machine) ~cpu
        ~kind:Telemetry.Span.Phase name
    in
    Fun.protect
      ~finally:(fun () ->
        match !Telemetry.Sink.current with
        | None -> ()
        | Some sink ->
          Telemetry.Sink.span_exit sink ~ts:(Sim.Machine.cycles machine) ~cpu ~id ())
      f

let eval_source ?(tier = Ast_tier) t src =
  let program =
    with_phase t "engine:parse" (fun () ->
        let tokens = Lexer.tokenize t.heap src in
        Parser.parse tokens)
  in
  match tier with
  | Ast_tier -> with_phase t "engine:eval" (fun () -> Eval.run_program t.eval program)
  | Bytecode_tier ->
    with_phase t "engine:bytecode" (fun () -> Bytecode.run t.eval (Bytecode.compile program))
  | Threaded_tier ->
    with_phase t "engine:bytecode" (fun () ->
        Threaded.run ?opts:t.opts ~stats:t.tstats t.eval (Bytecode.compile program))

let eval_string ?tier t text =
  match Value.str_of_string t.heap text with
  | Value.Str s -> eval_source ?tier t s
  | _ -> assert false

let take_output t = Eval.take_output t.eval

let collect t = Eval.gc t.eval

let add_gc_root t provider = Eval.add_gc_root t.eval provider
