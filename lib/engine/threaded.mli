(** The fast bytecode tier: direct-threaded (closure-compiled) dispatch,
    profiler-selected superinstructions, and inline caches.

    Architecturally invisible by construction: every layer elides only
    host-side OCaml work (decode, operand-stack traffic, hash probes)
    while performing the identical sequence of simulated charges, machine
    accesses and fault checks as the reference interpreter
    ({!Bytecode.run}).  Differential tests assert bit-identical cycles,
    compartment transitions and telemetry traces on every workload
    kernel, per layer.  Only host wall-clock — and TLB hit counts, when
    batched slot access is on — may differ. *)

type opts = {
  superinstructions : bool;  (** fuse measured-hot adjacent opcode pairs *)
  var_ic : bool;  (** scope-walk inline caches (see {!Eval.cached_lookup}) *)
  prop_ic : bool;  (** (shape, slot) property caches over hidden classes *)
  batched_slots : bool;
      (** one TLB probe per in-page 8-byte slot access
          ({!Sim.Machine.read_f64_batched}) *)
}

val all_on : opts
val all_off : opts

val config : opts ref
(** Layers used when {!run} is not given explicit [opts] (e.g. via
    [Engine.Threaded_tier]).  Defaults to {!all_on}. *)

val with_opts : opts -> (unit -> 'a) -> 'a
(** Runs [f] with {!config} temporarily replaced. *)

type stats = {
  mutable prop_hits : int;
  mutable prop_misses : int;
  mutable super_execs : int;  (** fused-pair executions *)
  mutable fused_sites : int;  (** fused sites emitted at compile time *)
}

val make_stats : unit -> stats
(** A fresh zeroed counter record.  Counters are per-run (host-side
    observability only; variable-IC counters live in {!Eval.ic_stats}):
    {!Engine.t} owns one record and passes it to every {!run}, so
    concurrent sessions never cross-pollute each other's hit rates. *)

val reset_stats : stats -> unit

val fused_pairs : (string * string) list
(** The enabled superinstruction set, as mnemonic pairs — chosen from
    [report --opcodes] measurements on dromaeo/octane (see
    EXPERIMENTS.md). *)

val run : ?opts:opts -> ?stats:stats -> Eval.t -> Bytecode.program -> Value.t
(** Same contract as {!Bytecode.run}, same observable simulation;
    [opts] defaults to [!config]; [stats] (accumulated into, never
    reset here) defaults to a fresh discarded record. *)
