type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of str
  | Arr of arr
  | Obj of obj
  | Fun of int
  | Host of string
  | Handle of int

and str = {
  s_addr : int;
  s_len : int;
  s_owned : bool;
}

and arr = {
  mutable a_buf : int;
  mutable a_cap : int;
  mutable a_len : int;
}

and obj = {
  o_id : int;
  o_addr : int;
  mutable o_shape : shape;
  mutable o_slots : t array;
}

(* Hidden classes: objects built by adding the same properties in the same
   order share one shape, so a property access is (shape, slot index)
   instead of a per-object string map — the structure inline caches key
   on.  Shapes form a transition tree from the per-heap root; adding a
   property either follows a recorded transition or mints a new shape. *)
and shape = {
  sh_id : int;
  sh_fields : (string, int) Hashtbl.t; (* name -> slot index *)
  sh_names : string array; (* slot index -> name, insertion order *)
  sh_count : int;
  mutable sh_transitions : (string * shape) list;
}

type heap = {
  env : Pkru_safe.Env.t;
  machine : Sim.Machine.t;
  mutable boxed : t array; (* host-side table for NaN-boxed references *)
  mutable nboxed : int;
  mutable objects : int;
  mutable shapes : int;
  root_shape : shape;
  owned : (int, unit) Hashtbl.t; (* engine-owned machine buffers *)
}

let create_heap env =
  {
    env;
    machine = Pkru_safe.Env.machine env;
    boxed = Array.make 64 Null;
    nboxed = 0;
    objects = 0;
    shapes = 1;
    root_shape =
      {
        sh_id = 0;
        sh_fields = Hashtbl.create 1;
        sh_names = [||];
        sh_count = 0;
        sh_transitions = [];
      };
    owned = Hashtbl.create 256;
  }

let env h = h.env

let malloc h size =
  let addr = Pkru_safe.Env.malloc_untrusted h.env size in
  Hashtbl.replace h.owned addr ();
  addr

(* --- NaN boxing ---

   Slots are 64-bit patterns, stored with the machine's f64 accessors (the
   full 64 bits survive OCaml's 63-bit ints that way).  Numbers are their
   own IEEE bits, canonicalised so a computed NaN cannot collide with a
   box.  The 0xFFF1 tag carries a table index for reference values, 0xFFF2
   carries the three immediates. *)

let tag_ref = 0xFFF1
let tag_imm = 0xFFF2

let canonical_nan = Int64.of_string "0x7FF8000000000000"

let tag_of bits = Int64.to_int (Int64.shift_right_logical bits 48)
let payload_of bits = Int64.to_int (Int64.logand bits 0xFFFF_FFFF_FFFFL)
let with_tag tag payload = Int64.logor (Int64.shift_left (Int64.of_int tag) 48) (Int64.of_int payload)

let box_ref h v =
  if h.nboxed >= Array.length h.boxed then begin
    let bigger = Array.make (2 * Array.length h.boxed) Null in
    Array.blit h.boxed 0 bigger 0 h.nboxed;
    h.boxed <- bigger
  end;
  h.boxed.(h.nboxed) <- v;
  h.nboxed <- h.nboxed + 1;
  h.nboxed - 1

let box_bits h v =
  match v with
  | Num f -> if Float.is_nan f then canonical_nan else Int64.bits_of_float f
  | Null -> with_tag tag_imm 0
  | Bool false -> with_tag tag_imm 1
  | Bool true -> with_tag tag_imm 2
  | Str _ | Arr _ | Obj _ | Fun _ | Host _ | Handle _ -> with_tag tag_ref (box_ref h v)

let unbox_bits h bits =
  let tag = tag_of bits in
  if tag = tag_ref then h.boxed.(payload_of bits)
  else if tag = tag_imm then
    match payload_of bits with
    | 0 -> Null
    | 1 -> Bool false
    | _ -> Bool true
  else Num (Int64.float_of_bits bits)

let box = box_bits
let unbox = unbox_bits

(* When enabled (the fast engine tier turns it on for the duration of a
   run), slot traffic goes through the machine's batched accessors: same
   cycles, faults and events, one TLB probe instead of two. *)
let batched_slots = ref false

let write_slot h addr v =
  let f = Int64.float_of_bits (box_bits h v) in
  if !batched_slots then Sim.Machine.write_f64_batched h.machine addr f
  else Sim.Machine.write_f64 h.machine addr f

let read_slot h addr =
  unbox_bits h
    (Int64.bits_of_float
       (if !batched_slots then Sim.Machine.read_f64_batched h.machine addr
        else Sim.Machine.read_f64 h.machine addr))

(* --- Strings --- *)

let str_of_string h s =
  let len = String.length s in
  let addr = malloc h (max len 1) in
  if len > 0 then Sim.Machine.write_string h.machine addr s;
  Str { s_addr = addr; s_len = len; s_owned = true }

let string_of_str h (s : str) =
  if s.s_len = 0 then ""
  else Bytes.to_string (Sim.Machine.read_bytes h.machine s.s_addr s.s_len)

let of_foreign_buffer ~addr ~len = Str { s_addr = addr; s_len = len; s_owned = false }

let str_get h (s : str) i =
  if i < 0 || i >= s.s_len then invalid_arg "Value.str_get: index out of range";
  Sim.Machine.read_u8 h.machine (s.s_addr + i)

let str_concat h (a : str) (b : str) =
  let len = a.s_len + b.s_len in
  let addr = malloc h (max len 1) in
  if a.s_len > 0 then
    Sim.Machine.write_bytes h.machine addr (Sim.Machine.read_bytes h.machine a.s_addr a.s_len);
  if b.s_len > 0 then
    Sim.Machine.write_bytes h.machine (addr + a.s_len)
      (Sim.Machine.read_bytes h.machine b.s_addr b.s_len);
  Str { s_addr = addr; s_len = len; s_owned = true }

let str_sub h (s : str) start len =
  let start = max 0 start in
  let len = max 0 (min len (s.s_len - start)) in
  let addr = malloc h (max len 1) in
  if len > 0 then
    Sim.Machine.write_bytes h.machine addr
      (Sim.Machine.read_bytes h.machine (s.s_addr + start) len);
  Str { s_addr = addr; s_len = len; s_owned = true }

let str_equal h (a : str) (b : str) =
  a.s_len = b.s_len
  && (a.s_addr = b.s_addr
     ||
     let rec cmp i =
       i >= a.s_len
       || Sim.Machine.read_u8 h.machine (a.s_addr + i) = Sim.Machine.read_u8 h.machine (b.s_addr + i)
          && cmp (i + 1)
     in
     cmp 0)

let str_index_of h (s : str) (needle : str) =
  if needle.s_len = 0 then 0
  else begin
    let limit = s.s_len - needle.s_len in
    let rec matches_at i j =
      j >= needle.s_len
      || Sim.Machine.read_u8 h.machine (s.s_addr + i + j)
         = Sim.Machine.read_u8 h.machine (needle.s_addr + j)
         && matches_at i (j + 1)
    in
    let rec scan i = if i > limit then -1 else if matches_at i 0 then i else scan (i + 1) in
    scan 0
  end

(* --- Arrays --- *)

let arr_make h n =
  let cap = max n 4 in
  let buf = malloc h (cap * 8) in
  let a = { a_buf = buf; a_cap = cap; a_len = n } in
  for i = 0 to n - 1 do
    write_slot h (buf + (8 * i)) Null
  done;
  Arr a

let check_index (a : arr) i op =
  if i < 0 || i >= a.a_len then
    invalid_arg (Printf.sprintf "Value.%s: index %d out of range (len %d)" op i a.a_len)

let arr_get h (a : arr) i =
  check_index a i "arr_get";
  read_slot h (a.a_buf + (8 * i))

let arr_set h (a : arr) i v =
  check_index a i "arr_set";
  write_slot h (a.a_buf + (8 * i)) v

let grow h (a : arr) =
  let cap = a.a_cap * 2 in
  (* U's realloc: stays in MU and copies the slots; keep the ownership
     registry pointing at the (possibly moved) buffer. *)
  Hashtbl.remove h.owned a.a_buf;
  a.a_buf <- Pkru_safe.Env.realloc h.env a.a_buf (cap * 8);
  Hashtbl.replace h.owned a.a_buf ();
  a.a_cap <- cap

let arr_push h (a : arr) v =
  if a.a_len = a.a_cap then grow h a;
  a.a_len <- a.a_len + 1;
  write_slot h (a.a_buf + (8 * (a.a_len - 1))) v

let arr_pop h (a : arr) =
  if a.a_len = 0 then Null
  else begin
    let v = read_slot h (a.a_buf + (8 * (a.a_len - 1))) in
    a.a_len <- a.a_len - 1;
    v
  end

(* --- Objects --- *)

let obj_make h =
  h.objects <- h.objects + 1;
  let addr = malloc h 16 in
  Sim.Machine.write_u64 h.machine addr h.objects;
  Obj { o_id = h.objects; o_addr = addr; o_shape = h.root_shape; o_slots = [||] }

(* Property maps live host-side; charge a representative cost per access
   (hash + probe) so object-heavy workloads still cost cycles. *)
let prop_cost = 6

let shape_add h (sh : shape) name =
  match List.assoc_opt name sh.sh_transitions with
  | Some next -> next
  | None ->
    let fields = Hashtbl.copy sh.sh_fields in
    Hashtbl.replace fields name sh.sh_count;
    let names = Array.make (sh.sh_count + 1) name in
    Array.blit sh.sh_names 0 names 0 sh.sh_count;
    let next =
      {
        sh_id = h.shapes;
        sh_fields = fields;
        sh_names = names;
        sh_count = sh.sh_count + 1;
        sh_transitions = [];
      }
    in
    h.shapes <- h.shapes + 1;
    sh.sh_transitions <- (name, next) :: sh.sh_transitions;
    next

let obj_get h (o : obj) name =
  Sim.Machine.charge h.machine prop_cost;
  match Hashtbl.find_opt o.o_shape.sh_fields name with
  | Some i -> o.o_slots.(i)
  | None -> Null

let obj_set h (o : obj) name v =
  Sim.Machine.charge h.machine prop_cost;
  match Hashtbl.find_opt o.o_shape.sh_fields name with
  | Some i -> o.o_slots.(i) <- v
  | None ->
    let next = shape_add h o.o_shape name in
    let i = next.sh_count - 1 in
    if i >= Array.length o.o_slots then begin
      let bigger = Array.make (max 4 (2 * Array.length o.o_slots)) Null in
      Array.blit o.o_slots 0 bigger 0 (Array.length o.o_slots);
      o.o_slots <- bigger
    end;
    o.o_slots.(i) <- v;
    o.o_shape <- next

let obj_has h (o : obj) name =
  Sim.Machine.charge h.machine prop_cost;
  Hashtbl.mem o.o_shape.sh_fields name

(* {2 Shape/slot access for inline caches}

   An IC that has validated the receiver's shape may address the slot
   directly; the charged variants charge exactly what the name-keyed path
   charges, so a cache hit is architecturally invisible. *)

let obj_shape_id (o : obj) = o.o_shape.sh_id
let obj_slot_index (o : obj) name = Hashtbl.find_opt o.o_shape.sh_fields name

let obj_get_slot h (o : obj) i =
  Sim.Machine.charge h.machine prop_cost;
  o.o_slots.(i)

let obj_set_slot h (o : obj) i v =
  Sim.Machine.charge h.machine prop_cost;
  o.o_slots.(i) <- v

let obj_iter f (o : obj) =
  let names = o.o_shape.sh_names in
  for i = 0 to o.o_shape.sh_count - 1 do
    f names.(i) o.o_slots.(i)
  done

(* --- Misc --- *)

let truthy = function
  | Null -> false
  | Bool b -> b
  | Num f -> f <> 0.0 && not (Float.is_nan f)
  | Str s -> s.s_len > 0
  | Arr _ | Obj _ | Fun _ | Host _ | Handle _ -> true

let type_name = function
  | Null -> "null"
  | Bool _ -> "boolean"
  | Num _ -> "number"
  | Str _ -> "string"
  | Arr _ -> "array"
  | Obj _ -> "object"
  | Fun _ | Host _ -> "function"
  | Handle _ -> "handle"

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec to_display_string h = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> number_to_string f
  | Str s -> string_of_str h s
  | Arr a ->
    let parts = List.init a.a_len (fun i -> to_display_string h (arr_get h a i)) in
    "[" ^ String.concat "," parts ^ "]"
  | Obj o -> Printf.sprintf "[object #%d]" o.o_id
  | Fun _ -> "[function]"
  | Host name -> Printf.sprintf "[host %s]" name
  | Handle n -> Printf.sprintf "[handle %d]" n

let equals h a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y
  | Str x, Str y -> str_equal h x y
  | Arr x, Arr y -> x == y
  | Obj x, Obj y -> x == y
  | Fun x, Fun y -> x = y
  | Host x, Host y -> x = y
  | Handle x, Handle y -> x = y
  | _ -> false

let stats_objects h = h.objects

let owned_buffer = function
  | Str s -> if s.s_owned then Some s.s_addr else None
  | Arr a -> Some a.a_buf
  | Obj o -> Some o.o_addr
  | Null | Bool _ | Num _ | Fun _ | Host _ | Handle _ -> None

let owned_count h = Hashtbl.length h.owned

let sweep h ~live =
  let victims = Hashtbl.fold (fun addr () acc -> if live addr then acc else addr :: acc) h.owned [] in
  List.iter
    (fun addr ->
      Hashtbl.remove h.owned addr;
      Pkru_safe.Env.dealloc h.env addr)
    victims;
  List.length victims
