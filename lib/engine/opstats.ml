(* Opcode frequency profiling for the reference bytecode interpreter.

   The superinstruction set of the fast tier (Threaded) is chosen from
   data, not intuition: running a workload with a collector installed
   counts every executed opcode and every *fall-through adjacent* opcode
   pair (pc = previous pc + 1 within one interpreter frame — the pairs a
   fused closure could actually cover; jump landings and cross-frame
   boundaries are excluded).  `report --opcodes` renders the result and
   EXPERIMENTS.md records the measurements that justify the fused set.

   Collection is host-side observability only: the collector is consulted
   by the reference interpreter between ticks and never charges simulated
   cycles, so profiling runs remain bit-identical to unprofiled ones. *)

type t = {
  singles : (string, int ref) Hashtbl.t;
  pairs : (string * string, int ref) Hashtbl.t;
  mutable total : int;
}

let create () = { singles = Hashtbl.create 64; pairs = Hashtbl.create 256; total = 0 }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let record t ?prev cur =
  t.total <- t.total + 1;
  bump t.singles cur;
  match prev with
  | Some p -> bump t.pairs (p, cur)
  | None -> ()

let total t = t.total

(* The installed collector, consulted by [Bytecode.exec].  None (the
   default) costs one ref read per instruction on the reference tier. *)
let current : t option ref = ref None

let collect f =
  let st = create () in
  let saved = !current in
  current := Some st;
  Fun.protect ~finally:(fun () -> current := saved) (fun () ->
      let result = f () in
      (st, result))

let sorted_bindings tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) -> if a <> b then compare b a else compare ka kb)

let singles t = sorted_bindings t.singles

let pairs t = sorted_bindings t.pairs

let to_json t =
  Util.Json.Obj
    [
      ("total", Util.Json.Int t.total);
      ( "singles",
        Util.Json.Obj (List.map (fun (k, n) -> (k, Util.Json.Int n)) (singles t)) );
      ( "pairs",
        Util.Json.List
          (List.map
             (fun ((a, b), n) ->
               Util.Json.Obj
                 [ ("first", Util.Json.String a); ("second", Util.Json.String b);
                   ("count", Util.Json.Int n) ])
             (pairs t)) );
    ]

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "instructions executed: %d\n\n" t.total);
  Buffer.add_string buf "per-opcode counts:\n";
  List.iter
    (fun (k, n) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-22s %10d  %5.1f%%\n" k n
           (100.0 *. float_of_int n /. float_of_int (max 1 t.total))))
    (singles t);
  Buffer.add_string buf "\nadjacent fall-through pairs:\n";
  let ps = pairs t in
  let shown = List.filteri (fun i _ -> i < 24) ps in
  List.iter
    (fun ((a, b), n) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-34s %10d  %5.1f%%\n"
           (a ^ ";" ^ b) n
           (100.0 *. float_of_int n /. float_of_int (max 1 t.total))))
    shown;
  if List.length ps > List.length shown then
    Buffer.add_string buf
      (Printf.sprintf "  ... %d more pairs\n" (List.length ps - List.length shown));
  Buffer.contents buf
