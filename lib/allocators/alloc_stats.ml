type t = {
  mutable allocs : int;
  mutable frees : int;
  mutable bytes_allocated : int;
  mutable bytes_freed : int;
  mutable peak_live : int;
}

let create () = { allocs = 0; frees = 0; bytes_allocated = 0; bytes_freed = 0; peak_live = 0 }

let live_bytes t = t.bytes_allocated - t.bytes_freed

let record_alloc t bytes =
  t.allocs <- t.allocs + 1;
  t.bytes_allocated <- t.bytes_allocated + bytes;
  let live = live_bytes t in
  if live > t.peak_live then t.peak_live <- live

let record_free t bytes =
  t.frees <- t.frees + 1;
  t.bytes_freed <- t.bytes_freed + bytes

let live_objects t = t.allocs - t.frees
let peak_live_bytes t = t.peak_live

let pp fmt t =
  Format.fprintf fmt "allocs=%d frees=%d bytes=%d live=%d peak=%d" t.allocs t.frees
    t.bytes_allocated (live_bytes t) t.peak_live
