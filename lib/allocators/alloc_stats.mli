(** Allocation counters shared by all allocator implementations; the
    benchmark harness uses them to report %MU (fraction of heap traffic
    served from untrusted memory, Table 1), and the heap census reads the
    live/peak views for its per-pool gauges. *)

type t = {
  mutable allocs : int;
  mutable frees : int;
  mutable bytes_allocated : int;
  mutable bytes_freed : int;
  mutable peak_live : int;  (** high-water mark of {!live_bytes} *)
}

val create : unit -> t
val live_bytes : t -> int

val live_objects : t -> int
(** [allocs - frees]: objects currently live. *)

val peak_live_bytes : t -> int
(** High-water mark of {!live_bytes}, maintained on every allocation. *)

val record_alloc : t -> int -> unit
val record_free : t -> int -> unit
val pp : Format.formatter -> t -> unit
