(* A shared backing-page budget.

   Each pool's reservation is still its own disjoint address range (the
   paper's no-migration invariant is untouched — a budget page never has
   an identity, only a count), but the number of pages a set of pools may
   have in use at once is bounded by one shared budget.  A fleet gives
   every session's pools the same budget, so sessions contend for memory
   the way a real farm's tabs contend for RAM: when the budget runs dry,
   [alloc_span] fails and the session dies with [Out_of_memory].

   Pure host-side accounting: taking or giving pages charges no simulated
   cycles and emits no telemetry. *)

type t = {
  total : int;
  mutable available : int;
  mutable min_available : int;
  mutable takes : int;
  mutable denials : int;
}

let create ~pages =
  if pages <= 0 then invalid_arg "Backing.create: pages must be positive";
  { total = pages; available = pages; min_available = pages; takes = 0; denials = 0 }

let take t n =
  if n <= t.available then begin
    t.available <- t.available - n;
    t.takes <- t.takes + 1;
    if t.available < t.min_available then t.min_available <- t.available;
    true
  end
  else begin
    t.denials <- t.denials + 1;
    false
  end

let give t n =
  t.available <- min t.total (t.available + n)

let total t = t.total
let available t = t.available
let min_available t = t.min_available
let takes t = t.takes
let denials t = t.denials
