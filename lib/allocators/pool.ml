type span = {
  span_base : int;
  span_pages : int;
}

type t = {
  machine : Sim.Machine.t;
  base : int;
  size : int;
  pkey : Mpk.Pkey.t;
  backing : Backing.t option;
      (* shared page budget (fleet memory contention); [None] = unbounded
         beyond the pool's own reservation, exactly the pre-fleet behavior *)
  mutable frontier : int; (* next never-used address *)
  mutable free_spans : span list;
  mutable pages_in_use : int;
  mutable high_water : int;
  mutable retired : bool;
}

let create ?backing machine ~base ~size ~pkey =
  match
    Vmm.Page_table.reserve machine.Sim.Machine.page_table ~base ~size ~prot:Vmm.Prot.read_write
      ~pkey
  with
  | Error _ as e -> e
  | Ok () ->
    Ok
      {
        machine;
        base;
        size;
        pkey;
        backing;
        frontier = base;
        free_spans = [];
        pages_in_use = 0;
        high_water = 0;
        retired = false;
      }

let page_size = Vmm.Layout.page_size

let note_use t npages =
  t.pages_in_use <- t.pages_in_use + npages;
  if t.pages_in_use > t.high_water then t.high_water <- t.pages_in_use

(* Spans recycled through the pool's own free list keep their budget
   pages (free_span gave them back, alloc takes them again), so the
   budget always mirrors [pages_in_use] exactly. *)
let backed t npages =
  match t.backing with
  | None -> true
  | Some b -> Backing.take b npages

let alloc_span t npages =
  assert (npages > 0);
  if not (backed t npages) then None
  else begin
    (* First fit among recycled spans, splitting when oversized. *)
    let rec take acc = function
      | [] -> None
      | span :: rest when span.span_pages >= npages ->
        let remainder =
          if span.span_pages > npages then
            [ { span_base = span.span_base + (npages * page_size); span_pages = span.span_pages - npages } ]
          else []
        in
        t.free_spans <- List.rev_append acc (remainder @ rest);
        Some span.span_base
      | span :: rest -> take (span :: acc) rest
    in
    match take [] t.free_spans with
    | Some addr ->
      note_use t npages;
      Some addr
    | None ->
      let bytes = npages * page_size in
      if t.frontier + bytes > t.base + t.size then begin
        (* Reservation exhausted: the budget pages were never used. *)
        (match t.backing with Some b -> Backing.give b npages | None -> ());
        None
      end
      else begin
        let addr = t.frontier in
        t.frontier <- t.frontier + bytes;
        note_use t npages;
        Some addr
      end
  end

let free_span t addr npages =
  assert (addr >= t.base && addr + (npages * page_size) <= t.base + t.size);
  t.free_spans <- { span_base = addr; span_pages = npages } :: t.free_spans;
  t.pages_in_use <- t.pages_in_use - npages;
  match t.backing with Some b -> Backing.give b npages | None -> ()

let retire t =
  (* Session teardown: return every outstanding page to the shared budget
     exactly once.  The pool must not be used afterwards. *)
  if not t.retired then begin
    t.retired <- true;
    match t.backing with
    | Some b -> Backing.give b t.pages_in_use
    | None -> ()
  end

let contains t addr = addr >= t.base && addr < t.base + t.size

let pkey t = t.pkey
let base t = t.base
let size t = t.size
let pages_in_use t = t.pages_in_use
let high_water_pages t = t.high_water
