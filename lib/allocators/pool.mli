(** A compartment page pool.

    Each compartment's allocator draws pages exclusively from its own pool;
    pools are disjoint reservations and pages are never migrated between
    them (paper §3.4: "pages are never migrated between the pools, in
    particular through mechanisms such as an allocator's page cache").  A
    pool is created by one large up-front reservation tagged with the
    compartment's protection key, relying on on-demand paging so unused
    pages cost nothing. *)

type t

val create :
  ?backing:Backing.t ->
  Sim.Machine.t ->
  base:int ->
  size:int ->
  pkey:Mpk.Pkey.t ->
  (t, string) result
(** Reserves [size] bytes at [base] tagged with [pkey].  With [backing],
    every span drawn also takes pages from the shared budget (and gives
    them back on free), so pools sharing one budget contend for memory;
    a denied take makes {!alloc_span} return [None]. *)

val alloc_span : t -> int -> int option
(** [alloc_span t npages] carves [npages] contiguous pages out of the pool,
    returning the base address; [None] when the pool is exhausted.  Freed
    spans are recycled first-fit before the bump frontier grows. *)

val free_span : t -> int -> int -> unit
(** [free_span t addr npages] returns a span for reuse {e within this pool
    only}.  [addr] must come from {!alloc_span}. *)

val contains : t -> int -> bool
(** Whether an address lies inside this pool's reservation. *)

val pkey : t -> Mpk.Pkey.t
val base : t -> int
val size : t -> int

val pages_in_use : t -> int
(** Pages currently handed out to the allocator. *)

val high_water_pages : t -> int
(** Peak of {!pages_in_use}. *)

val retire : t -> unit
(** Returns every outstanding page to the shared backing budget (no-op
    without one; idempotent).  For session teardown — the pool must not
    be used afterwards. *)
