(** pkalloc: the compartment-aware split allocator (paper §4.4).

    Wraps two heap allocators over two disjoint page pools:
    {ul
    {- [MT], the trusted pool, reserved at startup and tagged with the
       trusted protection key, served by the jemalloc model;}
    {- [MU], the untrusted pool, tagged with the default key (accessible
       from every compartment), served by the libc-malloc model.}}

    This is the extended GlobalAlloc surface: [alloc_trusted] is
    [__rust_alloc], [alloc_untrusted] is [__rust_untrusted_alloc], and
    [realloc] always reallocates from the pool the base pointer originated
    in, so an object's compartment never changes across reallocation —
    the property the provenance-tracking runtime depends on (§4.2).

    The [mu_backend] knob reproduces the paper's §5.3 experiment of
    swapping the MU allocator for the fast one, which removed the
    alloc-configuration overhead. *)

type mu_backend =
  | Mu_dlmalloc  (** default: libc-style allocator, as in the paper *)
  | Mu_jemalloc  (** ablation: fast allocator for MU *)

type t

val create :
  ?backing:Backing.t ->
  ?mu_backend:mu_backend ->
  ?trusted_pkey:Mpk.Pkey.t ->
  Sim.Machine.t ->
  (t, string) result
(** Reserves both pools on the machine's page table ([trusted_pkey]
    defaults to key 1) and builds the two allocators.  With [backing],
    both pools draw pages from that shared budget (fleet memory
    contention): exhaustion surfaces as allocation [None]. *)

val retire : t -> unit
(** Returns both pools' outstanding pages to the shared backing budget
    (no-op without one; idempotent).  Session teardown only. *)

val machine : t -> Sim.Machine.t
val trusted_pkey : t -> Mpk.Pkey.t

val alloc_trusted : ?site:string -> t -> int -> int option
(** [__rust_alloc]: allocate from MT.  [site] is the printed AllocId used
    to tag the telemetry event when a sink is installed. *)

val alloc_untrusted : ?site:string -> t -> int -> int option
(** [__rust_untrusted_alloc]: allocate from MU. *)

val dealloc : t -> int -> unit
(** [__rust_dealloc]: dispatches on the pool owning the pointer.
    @raise Invalid_argument on a foreign pointer. *)

val realloc : t -> int -> int -> int option
(** [realloc t addr new_size] grows/shrinks in the {e same} pool, copying
    the payload through checked machine accesses.  [None] on exhaustion.
    If the fresh block is allocated but the payload copy faults, the fresh
    block is freed before returning [None] — the original allocation stays
    live and no memory leaks (realloc(3) contract). *)

val quarantine_site : t -> string -> unit
(** Record an allocation site (printed AllocId) in the site-override
    table.  The runtime redirects *future* MT allocations from quarantined
    sites to MU; objects already allocated keep their pool, so the
    provenance invariant (an object's compartment never changes) holds. *)

val site_quarantined : t -> string -> bool
val quarantined_count : t -> int

val quarantined_sites : t -> string list
(** Sorted list of quarantined sites (stable output for reports). *)

val fail_nth_alloc : t -> [ `Trusted | `Untrusted ] -> int -> unit
(** Fail-point for the chaos harness: arm the pool so its [n]th upcoming
    allocation attempt ([1] = the next one) reports exhaustion ([None])
    exactly once, then disarm.  [0] disarms immediately.
    @raise Invalid_argument on negative [n]. *)

val usable_size : t -> int -> int option

val pool_of_addr : t -> int -> [ `Trusted | `Untrusted ] option
(** Which compartment's pool an address belongs to (reservation-range
    test, usable on any address including the secret page). *)

val trusted_pool : t -> Pool.t
val untrusted_pool : t -> Pool.t
val trusted_stats : t -> Alloc_stats.t
val untrusted_stats : t -> Alloc_stats.t

val percent_untrusted_bytes : t -> float
(** Fraction (in percent) of all allocated bytes served from MU — the
    "%MU" column of Table 1. *)
