type mu_backend =
  | Mu_dlmalloc
  | Mu_jemalloc

type backend = {
  b_alloc : int -> int option;
  b_free : int -> unit;
  b_usable : int -> int option;
  b_try_resize : int -> int -> bool;
  b_stats : Alloc_stats.t;
}

let jemalloc_backend machine pool =
  let a = Jemalloc_model.create machine pool in
  {
    b_alloc = Jemalloc_model.alloc a;
    b_free = Jemalloc_model.free a;
    b_usable = Jemalloc_model.usable_size a;
    b_try_resize = Jemalloc_model.try_resize a;
    b_stats = Jemalloc_model.stats a;
  }

let dlmalloc_backend machine pool =
  let a = Dlmalloc_model.create machine pool in
  {
    b_alloc = Dlmalloc_model.alloc a;
    b_free = Dlmalloc_model.free a;
    b_usable = Dlmalloc_model.usable_size a;
    b_try_resize = Dlmalloc_model.try_resize a;
    b_stats = Dlmalloc_model.stats a;
  }

type t = {
  machine : Sim.Machine.t;
  trusted_pkey : Mpk.Pkey.t;
  mt_pool : Pool.t;
  mu_pool : Pool.t;
  mt : backend;
  mu : backend;
  (* Site-override table: allocation sites quarantined by the mitigator's
     Promote policy.  Keys are printed AllocIds (this library sits below
     the runtime and cannot name Alloc_id).  The runtime consults it to
     redirect future MT allocations from these sites to MU. *)
  quarantined : (string, unit) Hashtbl.t;
  (* Fail-points (chaos harness): force the nth upcoming allocation on a
     pool to report exhaustion.  0 = disarmed; 1 = fail the next. *)
  mutable fail_mt_in : int;
  mutable fail_mu_in : int;
}

let ( let* ) r f =
  match r with
  | Ok v -> f v
  | Error _ as e -> e

let create ?backing ?(mu_backend = Mu_dlmalloc) ?(trusted_pkey = Mpk.Pkey.of_int 1) machine =
  (* Claim the trusted key from the kernel's pkey allocator, as the
     startup code does with pkey_alloc(2). *)
  let* () =
    match Vmm.Pkeys.reserve machine.Sim.Machine.pkeys trusted_pkey with
    | Ok () -> Ok ()
    | Error errno -> Error (Printf.sprintf "pkey_alloc(%d) failed: %s" (Mpk.Pkey.to_int trusted_pkey) errno)
  in
  (* Both pools draw on the same budget: MT and MU allocations contend
     for the session's share of fleet memory, never for address space. *)
  let* mt_pool =
    Pool.create ?backing machine ~base:Vmm.Layout.trusted_base ~size:Vmm.Layout.trusted_size
      ~pkey:trusted_pkey
  in
  let* mu_pool =
    Pool.create ?backing machine ~base:Vmm.Layout.untrusted_base
      ~size:Vmm.Layout.untrusted_size ~pkey:Mpk.Pkey.default
  in
  let mt = jemalloc_backend machine mt_pool in
  let mu =
    match mu_backend with
    | Mu_dlmalloc -> dlmalloc_backend machine mu_pool
    | Mu_jemalloc -> jemalloc_backend machine mu_pool
  in
  Ok
    {
      machine;
      trusted_pkey;
      mt_pool;
      mu_pool;
      mt;
      mu;
      quarantined = Hashtbl.create 16;
      fail_mt_in = 0;
      fail_mu_in = 0;
    }

let machine t = t.machine
let trusted_pkey t = t.trusted_pkey

let retire t =
  Pool.retire t.mt_pool;
  Pool.retire t.mu_pool

(* Allocation telemetry: compartment-tagged events (carrying the AllocId
   the instrumented global-allocator surface passes down) and per-pool
   size histograms.  Event construction happens only under an installed
   sink. *)
let note_alloc t ~compartment ~histogram ~site ~size result =
  (match (result, !Telemetry.Sink.current) with
  | Some addr, Some sink ->
    Telemetry.Sink.observe sink histogram size;
    Telemetry.Sink.emit sink ~ts:(Sim.Machine.cycles t.machine)
      ~cpu:t.machine.Sim.Machine.cpu.Sim.Cpu.id
      (Telemetry.Event.Alloc { compartment; site; addr; size })
  | _ -> ());
  result

(* Fail-point bookkeeping (chaos harness).  The armed counter ticks down on
   every allocation attempt against the pool and fires — the attempt
   reports exhaustion — exactly once, when it reaches 1; afterwards the
   pool behaves normally again. *)
let fail_nth_alloc t pool n =
  if n < 0 then invalid_arg "pkalloc: fail_nth_alloc expects n >= 0";
  match pool with
  | `Trusted -> t.fail_mt_in <- n
  | `Untrusted -> t.fail_mu_in <- n

let mt_failpoint_fires t =
  match t.fail_mt_in with
  | 0 -> false
  | 1 ->
    t.fail_mt_in <- 0;
    true
  | n ->
    t.fail_mt_in <- n - 1;
    false

let mu_failpoint_fires t =
  match t.fail_mu_in with
  | 0 -> false
  | 1 ->
    t.fail_mu_in <- 0;
    true
  | n ->
    t.fail_mu_in <- n - 1;
    false

let mt_alloc t size = if mt_failpoint_fires t then None else t.mt.b_alloc size
let mu_alloc t size = if mu_failpoint_fires t then None else t.mu.b_alloc size

let alloc_trusted ?site t size =
  note_alloc t ~compartment:Telemetry.Event.Trusted ~histogram:"alloc_size_mt_bytes" ~site
    ~size (mt_alloc t size)

let alloc_untrusted ?site t size =
  note_alloc t ~compartment:Telemetry.Event.Untrusted ~histogram:"alloc_size_mu_bytes" ~site
    ~size (mu_alloc t size)

(* Quarantine (mitigator Promote policy): sites recorded here should have
   their *future* allocations served from MU.  Live objects keep their
   pool — the provenance invariant (§4.2) is about object identity, and
   realloc below still never migrates. *)
let quarantine_site t site =
  if not (Hashtbl.mem t.quarantined site) then Hashtbl.replace t.quarantined site ()

let site_quarantined t site = Hashtbl.mem t.quarantined site
let quarantined_count t = Hashtbl.length t.quarantined

let quarantined_sites t =
  Hashtbl.fold (fun site () acc -> site :: acc) t.quarantined [] |> List.sort compare

let pool_of_addr t addr =
  if Pool.contains t.mt_pool addr then Some `Trusted
  else if Pool.contains t.mu_pool addr then Some `Untrusted
  else None

let backend_of_addr t addr =
  match pool_of_addr t addr with
  | Some `Trusted -> t.mt
  | Some `Untrusted -> t.mu
  | None -> invalid_arg (Printf.sprintf "pkalloc: foreign pointer 0x%x" addr)

let dealloc t addr =
  (match !Telemetry.Sink.current with
  | None -> ()
  | Some sink ->
    let compartment =
      match pool_of_addr t addr with
      | Some `Untrusted -> Telemetry.Event.Untrusted
      | Some `Trusted | None -> Telemetry.Event.Trusted
    in
    Telemetry.Sink.emit sink ~ts:(Sim.Machine.cycles t.machine)
      ~cpu:t.machine.Sim.Machine.cpu.Sim.Cpu.id
      (Telemetry.Event.Free { compartment; addr }));
  (backend_of_addr t addr).b_free addr

let usable_size t addr = (backend_of_addr t addr).b_usable addr

(* Reallocation never migrates between pools: "memory is always reallocated
   from the same pool its base pointer originated from" (§4.2). *)
let realloc t addr new_size =
  let pool =
    match pool_of_addr t addr with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "pkalloc: foreign pointer 0x%x" addr)
  in
  let backend = match pool with `Trusted -> t.mt | `Untrusted -> t.mu in
  let old_usable =
    match backend.b_usable addr with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "pkalloc: realloc of dead pointer 0x%x" addr)
  in
  if backend.b_try_resize addr new_size then Some addr
  else
  let fresh_alloc = match pool with `Trusted -> mt_alloc t | `Untrusted -> mu_alloc t in
  match fresh_alloc new_size with
  | None -> None
  | Some fresh ->
    let to_copy = min old_usable new_size in
    let copied =
      if to_copy = 0 then true
      else
        (* The copy goes through checked machine accesses, so a protection
           or pkey fault mid-copy is possible.  On failure the fresh block
           must not leak: free it and report failure with the original
           allocation still intact (realloc(3) contract). *)
        match
          let payload = Sim.Machine.read_bytes t.machine addr to_copy in
          Sim.Machine.write_bytes t.machine fresh payload
        with
        | () -> true
        | exception Vmm.Fault.Unhandled _ ->
          backend.b_free fresh;
          false
    in
    if not copied then None
    else begin
      backend.b_free addr;
      Some fresh
    end

let trusted_pool t = t.mt_pool
let untrusted_pool t = t.mu_pool
let trusted_stats t = t.mt.b_stats
let untrusted_stats t = t.mu.b_stats

let percent_untrusted_bytes t =
  let mt = float_of_int t.mt.b_stats.Alloc_stats.bytes_allocated in
  let mu = float_of_int t.mu.b_stats.Alloc_stats.bytes_allocated in
  if mt +. mu = 0.0 then 0.0 else 100.0 *. mu /. (mt +. mu)
