(** A shared backing-page budget for pools that must contend for memory.

    Pools keep their own disjoint address reservations (the paper's
    no-migration invariant holds: budget pages are counts, not
    identities), but drawing a span first takes pages from the shared
    budget and freeing one gives them back.  A fleet hands every
    session's pkalloc the same budget so memory pressure is real across
    sessions.  Pure host-side accounting: no simulated cycles, no
    telemetry. *)

type t

val create : pages:int -> t
(** @raise Invalid_argument if [pages <= 0]. *)

val take : t -> int -> bool
(** [take t n] reserves [n] pages; [false] (and a counted denial) when
    fewer than [n] are available. *)

val give : t -> int -> unit
(** Returns [n] pages to the budget (clamped at [total]). *)

val total : t -> int
val available : t -> int

val min_available : t -> int
(** Low-water mark of {!available} — peak fleet-wide memory pressure. *)

val takes : t -> int
(** Successful reservations. *)

val denials : t -> int
(** Failed reservations (each one surfaces as an allocator [None] /
    session [Out_of_memory]). *)
