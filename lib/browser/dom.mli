(** The machine-resident DOM.

    Node records, text payloads and attribute lists all live in simulated
    memory, allocated through the environment's global allocator with the
    browser's {!Sites} — so they are MT objects in every configuration
    that splits the heap, and tree traversals are checked machine loads
    performed by trusted code.

    Node handles are small integers (the values handed across the FFI to
    the engine); the id-to-address map is trusted host state. *)

type node = int

type t

val create : Pkru_safe.Env.t -> t
(** Builds an empty document with an ["html"] root. *)

val env : t -> Pkru_safe.Env.t
val root : t -> node
val node_count : t -> int

val create_element : t -> string -> node
val create_text : t -> string -> node

val append_child : t -> parent:node -> child:node -> unit
(** @raise Invalid_argument on unknown handles or if [child] already has a
    parent. *)

val remove_children : t -> node -> unit
(** Detaches and frees an element's entire subtree (records, text and
    attribute storage go back to the allocator). *)

val remove_child : t -> parent:node -> child:node -> unit
(** Detaches one child and frees its subtree.
    @raise Invalid_argument if [child] is not a child of [parent]. *)

val insert_before : t -> parent:node -> child:node -> before:node -> unit
(** Inserts an unattached [child] in front of existing child [before].
    @raise Invalid_argument on attachment violations. *)

val get_element_by_id : t -> string -> node option
(** Document-order scan for an element whose [id] attribute matches
    (checked machine reads, like a real tree walk). *)

val clone_subtree : t -> node -> node
(** Deep copy of a node: fresh records, attribute storage and text
    payloads; the clone is unattached. *)

val tag_name : t -> node -> string
val is_text : t -> node -> bool
val parent : t -> node -> node option
val children : t -> node -> node list
val child_count : t -> node -> int

val set_attribute : t -> node -> string -> string -> unit
val get_attribute : t -> node -> string -> string option
val attribute_count : t -> node -> int

(* {2 Interned-code access}

   Tag and attribute names share one monotonic intern table.  Compiled
   selectors ({!Selector.compile}) resolve names to codes host-side once
   and revalidate against {!tag_count}; the charged machine reads of a
   code-keyed probe are exactly those of the name-keyed one. *)

val tag_code : t -> node -> int
(** The node's interned tag code (one charged header read, like
    {!tag_name}). *)

val tag_count : t -> int
(** Names interned so far (monotonic; host-side, no charge). *)

val find_code : t -> string -> int option
(** Code for an already-interned name (host-side, no charge). *)

val attribute_by_code : t -> node -> int -> string option
(** {!get_attribute} given a pre-resolved name code: identical charged
    reads (attribute-chain walk + value bytes). *)

val set_text : t -> node -> string -> unit
(** Replaces a text node's payload. @raise Invalid_argument on elements. *)

val text_of : t -> node -> string
(** A text node's payload. @raise Invalid_argument on elements. *)

val text_content : t -> node -> string
(** Concatenated descendant text (a checked-read tree walk). *)

val query_tag : t -> string -> node list
(** All elements with the given tag, in document order. *)

val serialize : t -> node -> string
(** innerHTML-style serialisation of the node's children. *)

(* {2 Buffer-returning variants used by the FFI bindings}

   These copy the result into a fresh allocation from the given site and
   return (address, length) — the object that then flows to the engine. *)

val text_to_buffer : t -> site:Runtime.Alloc_id.t -> string -> int * int

val free_buffer : t -> int -> unit
(** Returns a binding buffer to the allocator. *)
