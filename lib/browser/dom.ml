(* Node record layout (64 bytes, site Sites.node_record):

     0  node id        (u32)
     4  tag/name code  (u32; text nodes use code 0)
     8  parent         (u64 address, 0 = none)
     16 first child
     24 last child
     32 next sibling
     40 text payload address (text nodes)
     48 text length
     56 attribute list head

   Attribute record layout (32 bytes, site Sites.attr_record):

     0  name code
     8  value address
     16 value length
     24 next attribute *)

type node = int

type t = {
  env : Pkru_safe.Env.t;
  machine : Sim.Machine.t;
  mutable tag_names : string array;
  tag_codes : (string, int) Hashtbl.t;
  mutable ntags : int;
  addr_of : (node, int) Hashtbl.t;
  id_at : (int, node) Hashtbl.t; (* address -> id, for pointer walks *)
  mutable next_id : int;
  root : node;
}

let node_size = 64
let attr_size = 32
let text_code = 0

let off_id = 0
let off_tag = 4
let off_parent = 8
let off_first = 16
let off_last = 24
let off_next = 32
let off_text = 40
let off_text_len = 48
let off_attrs = 56

let intern t name =
  match Hashtbl.find_opt t.tag_codes name with
  | Some c -> c
  | None ->
    if t.ntags >= Array.length t.tag_names then begin
      let bigger = Array.make (2 * Array.length t.tag_names) "" in
      Array.blit t.tag_names 0 bigger 0 t.ntags;
      t.tag_names <- bigger
    end;
    t.tag_names.(t.ntags) <- name;
    Hashtbl.replace t.tag_codes name t.ntags;
    t.ntags <- t.ntags + 1;
    t.ntags - 1

let addr t node =
  match Hashtbl.find_opt t.addr_of node with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Dom: unknown node handle %d" node)

let read t a off = Sim.Machine.read_u64 t.machine (a + off)
let write t a off v = Sim.Machine.write_u64 t.machine (a + off) v
let read32 t a off = Sim.Machine.read_u32 t.machine (a + off)
let write32 t a off v = Sim.Machine.write_u32 t.machine (a + off) v

let alloc_node t ~code =
  let a = Pkru_safe.Env.alloc t.env ~site:Sites.node_record node_size in
  Sim.Machine.memset t.machine a '\000' node_size;
  let id = t.next_id in
  t.next_id <- id + 1;
  write32 t a off_id id;
  write32 t a off_tag code;
  Hashtbl.replace t.addr_of id a;
  Hashtbl.replace t.id_at a id;
  id

let create env =
  let t =
    {
      env;
      machine = Pkru_safe.Env.machine env;
      tag_names = Array.make 32 "";
      tag_codes = Hashtbl.create 32;
      ntags = 0;
      addr_of = Hashtbl.create 256;
      id_at = Hashtbl.create 256;
      next_id = 1;
      root = 1;
    }
  in
  ignore (intern t "#text"); (* claims code 0 *)
  let root_code = intern t "html" in
  let root = alloc_node t ~code:root_code in
  assert (root = t.root);
  t

let env t = t.env
let root t = t.root
let node_count t = Hashtbl.length t.addr_of

let create_element t tag = alloc_node t ~code:(intern t tag)

let write_text t a text =
  let len = String.length text in
  let buf = Pkru_safe.Env.alloc t.env ~site:Sites.text_buffer (max len 1) in
  if len > 0 then Sim.Machine.write_string t.machine buf text;
  write t a off_text buf;
  write t a off_text_len len

let create_text t text =
  let id = alloc_node t ~code:text_code in
  write_text t (addr t id) text;
  id

let tag_code t node = read32 t (addr t node) off_tag

let tag_name t node = t.tag_names.(tag_code t node)

(* Host-side intern-table introspection (no machine reads, no charges):
   compiled selectors resolve names to codes once and revalidate against
   [tag_count], which only ever grows. *)
let tag_count t = t.ntags

let find_code t name = Hashtbl.find_opt t.tag_codes name

let is_text t node = tag_code t node = text_code

let parent t node =
  let p = read t (addr t node) off_parent in
  if p = 0 then None else Hashtbl.find_opt t.id_at p

let append_child t ~parent ~child =
  let pa = addr t parent in
  let ca = addr t child in
  if read t ca off_parent <> 0 then invalid_arg "Dom.append_child: child already attached";
  if parent = child then invalid_arg "Dom.append_child: cannot append to self";
  write t ca off_parent pa;
  let last = read t pa off_last in
  if last = 0 then begin
    write t pa off_first ca;
    write t pa off_last ca
  end
  else begin
    write t last off_next ca;
    write t pa off_last ca
  end

let children t node =
  let rec walk a acc =
    if a = 0 then List.rev acc
    else walk (read t a off_next) (Hashtbl.find t.id_at a :: acc)
  in
  walk (read t (addr t node) off_first) []

let child_count t node = List.length (children t node)

(* --- Attributes --- *)

let find_attr t a code =
  let rec walk rec_addr =
    if rec_addr = 0 then None
    else if read t rec_addr 0 = code then Some rec_addr
    else walk (read t rec_addr 24)
  in
  walk (read t a off_attrs)

let alloc_value t value =
  let len = String.length value in
  let buf = Pkru_safe.Env.alloc t.env ~site:Sites.attr_value (max len 1) in
  if len > 0 then Sim.Machine.write_string t.machine buf value;
  (buf, len)

let set_attribute t node name value =
  let a = addr t node in
  let code = intern t name in
  match find_attr t a code with
  | Some rec_addr ->
    (* Replace the value buffer in place. *)
    let old_buf = read t rec_addr 8 in
    Pkru_safe.Env.dealloc t.env old_buf;
    let buf, len = alloc_value t value in
    write t rec_addr 8 buf;
    write t rec_addr 16 len
  | None ->
    let rec_addr = Pkru_safe.Env.alloc t.env ~site:Sites.attr_record attr_size in
    let buf, len = alloc_value t value in
    write t rec_addr 0 code;
    write t rec_addr 8 buf;
    write t rec_addr 16 len;
    write t rec_addr 24 (read t a off_attrs);
    write t a off_attrs rec_addr

let attribute_by_code t node code =
  match find_attr t (addr t node) code with
  | None -> None
  | Some rec_addr ->
    let buf = read t rec_addr 8 in
    let len = read t rec_addr 16 in
    Some (if len = 0 then "" else Bytes.to_string (Sim.Machine.read_bytes t.machine buf len))

let get_attribute t node name =
  match Hashtbl.find_opt t.tag_codes name with
  | None -> None
  | Some code -> attribute_by_code t node code

let attribute_count t node =
  let rec walk rec_addr n = if rec_addr = 0 then n else walk (read t rec_addr 24) (n + 1) in
  walk (read t (addr t node) off_attrs) 0

(* --- Text --- *)

let set_text t node text =
  let a = addr t node in
  if not (is_text t node) then invalid_arg "Dom.set_text: not a text node";
  let old = read t a off_text in
  if old <> 0 then Pkru_safe.Env.dealloc t.env old;
  write_text t a text

let text_of t node =
  let a = addr t node in
  if not (is_text t node) then invalid_arg "Dom.text_of: not a text node";
  let buf = read t a off_text in
  let len = read t a off_text_len in
  if len = 0 then "" else Bytes.to_string (Sim.Machine.read_bytes t.machine buf len)

let rec collect_text t node buf =
  if is_text t node then Buffer.add_string buf (text_of t node)
  else List.iter (fun c -> collect_text t c buf) (children t node)

let text_content t node =
  let buf = Buffer.create 64 in
  collect_text t node buf;
  Buffer.contents buf

(* --- Queries and serialisation --- *)

let query_tag t tag =
  match Hashtbl.find_opt t.tag_codes tag with
  | None -> []
  | Some code ->
    let acc = ref [] in
    let rec walk node =
      if tag_code t node = code then acc := node :: !acc;
      List.iter walk (children t node)
    in
    walk t.root;
    List.rev !acc

let rec serialize_node t node buf =
  if is_text t node then Buffer.add_string buf (text_of t node)
  else begin
    let tag = tag_name t node in
    Buffer.add_char buf '<';
    Buffer.add_string buf tag;
    (* Attributes, in stored (reverse-insertion) order. *)
    let rec attrs rec_addr =
      if rec_addr <> 0 then begin
        let code = read t rec_addr 0 in
        let vbuf = read t rec_addr 8 in
        let vlen = read t rec_addr 16 in
        Buffer.add_char buf ' ';
        Buffer.add_string buf t.tag_names.(code);
        Buffer.add_string buf "=\"";
        if vlen > 0 then
          Buffer.add_string buf (Bytes.to_string (Sim.Machine.read_bytes t.machine vbuf vlen));
        Buffer.add_char buf '"';
        attrs (read t rec_addr 24)
      end
    in
    attrs (read t (addr t node) off_attrs);
    Buffer.add_char buf '>';
    List.iter (fun c -> serialize_node t c buf) (children t node);
    Buffer.add_string buf "</";
    Buffer.add_string buf tag;
    Buffer.add_char buf '>'
  end

let serialize t node =
  let buf = Buffer.create 256 in
  List.iter (fun c -> serialize_node t c buf) (children t node);
  Buffer.contents buf

(* --- Subtree removal --- *)

let rec free_subtree t node =
  List.iter (free_subtree t) (children t node);
  let a = addr t node in
  let text = read t a off_text in
  if text <> 0 then Pkru_safe.Env.dealloc t.env text;
  let rec free_attrs rec_addr =
    if rec_addr <> 0 then begin
      let next = read t rec_addr 24 in
      Pkru_safe.Env.dealloc t.env (read t rec_addr 8);
      Pkru_safe.Env.dealloc t.env rec_addr;
      free_attrs next
    end
  in
  free_attrs (read t a off_attrs);
  Hashtbl.remove t.addr_of node;
  Hashtbl.remove t.id_at a;
  Pkru_safe.Env.dealloc t.env a

let remove_children t node =
  List.iter (free_subtree t) (children t node);
  let a = addr t node in
  write t a off_first 0;
  write t a off_last 0

let detach t ~parent ~child =
  let pa = addr t parent in
  let ca = addr t child in
  if read t ca off_parent <> pa then invalid_arg "Dom.detach: not a child of that parent";
  (* Unlink from the sibling chain. *)
  let first = read t pa off_first in
  if first = ca then begin
    write t pa off_first (read t ca off_next);
    if read t pa off_last = ca then write t pa off_last 0
  end
  else begin
    let rec find_prev prev =
      if prev = 0 then invalid_arg "Dom.detach: corrupted sibling chain"
      else if read t prev off_next = ca then prev
      else find_prev (read t prev off_next)
    in
    let prev = find_prev first in
    write t prev off_next (read t ca off_next);
    if read t pa off_last = ca then write t pa off_last prev
  end;
  write t ca off_parent 0;
  write t ca off_next 0

let remove_child t ~parent ~child =
  detach t ~parent ~child;
  free_subtree t child

let insert_before t ~parent ~child ~before =
  let pa = addr t parent in
  let ca = addr t child in
  let ba = addr t before in
  if read t ca off_parent <> 0 then invalid_arg "Dom.insert_before: child already attached";
  if read t ba off_parent <> pa then invalid_arg "Dom.insert_before: anchor not a child";
  write t ca off_parent pa;
  write t ca off_next ba;
  let first = read t pa off_first in
  if first = ba then write t pa off_first ca
  else begin
    let rec find_prev prev =
      if prev = 0 then invalid_arg "Dom.insert_before: corrupted sibling chain"
      else if read t prev off_next = ba then prev
      else find_prev (read t prev off_next)
    in
    write t (find_prev first) off_next ca
  end

let get_element_by_id t wanted =
  match Hashtbl.find_opt t.tag_codes "id" with
  | None -> None
  | Some code ->
    let rec walk node =
      let hit =
        match find_attr t (addr t node) code with
        | None -> false
        | Some rec_addr ->
          let buf = read t rec_addr 8 in
          let len = read t rec_addr 16 in
          len = String.length wanted
          && (len = 0
             || Bytes.to_string (Sim.Machine.read_bytes t.machine buf len) = wanted)
      in
      if hit then Some node
      else
        let rec try_children = function
          | [] -> None
          | c :: rest ->
            (match walk c with
            | Some _ as found -> found
            | None -> try_children rest)
        in
        try_children (children t node)
    in
    walk t.root

let rec clone_subtree t node =
  if is_text t node then create_text t (text_of t node)
  else begin
    let fresh = alloc_node t ~code:(tag_code t node) in
    (* Attributes, preserving stored order. *)
    let rec collect rec_addr acc =
      if rec_addr = 0 then acc
      else
        let code = read t rec_addr 0 in
        let buf = read t rec_addr 8 in
        let len = read t rec_addr 16 in
        let value =
          if len = 0 then "" else Bytes.to_string (Sim.Machine.read_bytes t.machine buf len)
        in
        collect (read t rec_addr 24) ((t.tag_names.(code), value) :: acc)
    in
    List.iter
      (fun (name, value) -> set_attribute t fresh name value)
      (collect (read t (addr t node) off_attrs) []);
    List.iter
      (fun child -> append_child t ~parent:fresh ~child:(clone_subtree t child))
      (children t node);
    fresh
  end

(* --- Binding buffers --- *)

let text_to_buffer t ~site text =
  let len = String.length text in
  let buf = Pkru_safe.Env.alloc t.env ~site (max len 1) in
  if len > 0 then Sim.Machine.write_string t.machine buf text;
  (buf, len)

let free_buffer t addr = Pkru_safe.Env.dealloc t.env addr
