(** The browser facade: the project's Servo stand-in.

    A browser owns a machine-resident {!Dom}, a script {!Engine} instance
    (the untrusted compartment), and the binding layer between them.  The
    compartment discipline is exactly the paper's:

    {ul
    {- {!exec_script} copies the source into a trusted-side buffer and
       enters the engine through the environment's FFI boundary
       ([Pkru_safe.Env.ffi_call]), so scripts run with the untrusted
       view;}
    {- every DOM binding the script calls re-enters T through the reverse
       gate ([Pkru_safe.Env.callback]), like an exported Servo API;}
    {- bindings that return textual data copy it into fresh allocations
       from dedicated sites and hand the raw buffer to the engine — the
       cross-compartment object flows the profiler must discover.}}

    At startup the browser stores the security experiment's secret (42) at
    the paper's fixed address 0x1680_0000_0000 inside MT, and logs it "on
    exit" via {!read_secret}. *)

module Dom = Dom
module Html = Html
module Sites = Sites
module Style = Style
module Layout = Layout
module Selector = Selector

type t

val create :
  ?engine_seed:int ->
  ?engine_fuel:int ->
  ?engine_opts:Engine.Threaded.opts ->
  Pkru_safe.Env.t ->
  t
(** [engine_opts] pins the session's threaded-tier layers (per-instance;
    omitted, the engine defers to the process-wide [!Threaded.config]). *)

val env : t -> Pkru_safe.Env.t
val dom : t -> Dom.t
val engine : t -> Engine.t

val load_page : t -> string -> unit
(** Parses HTML (trusted-side work) and builds the DOM under the root.
    @raise Html.Html_error on bad markup. *)

val exec_script : ?tier:Engine.tier -> t -> string -> Engine.Value.t
(** Runs a script in the untrusted compartment against this page.
    [tier] selects the execution tier (default [Ast_tier]); every tier is
    observationally equivalent.
    @raise Engine.Eval.Script_error and the engine's parse errors;
    @raise Vmm.Fault.Unhandled when enforcement kills an access. *)

val collect : t -> int
(** Garbage-collect the engine heap between scripts; listener callbacks
    and their captures are rooted and survive. *)

val console : t -> string list
(** Script [print] output collected so far (clears the buffer). *)

val secret_value : int
(** 42, the value planted for the security experiment. *)

val read_secret : t -> int
(** Reads the secret back (trusted-side, as the program-exit log). *)

val scripts_run : t -> int

(* {2 Selector cache observability}

   [domQuery] compiles selectors once per source text and caches them for
   the page's lifetime (see {!Selector}: compiled matching performs the
   identical charged DOM reads, so caching is architecturally invisible —
   it saves host-side parsing/name-resolution only). *)

type selector_stats = {
  mutable sel_hits : int;  (** [domQuery] calls served from the cache *)
  mutable sel_misses : int;  (** calls that parsed + compiled *)
}

val selector_stats : t -> selector_stats
val reset_selector_stats : t -> unit

val selector_cache_enabled : bool ref
(** Default [true]; the differential tests toggle it off to assert
    cached and uncached querying simulate bit-identically. *)
