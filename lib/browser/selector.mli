(** CSS-selector matching over the machine-resident DOM.

    Supports the selector core that drives jQuery-style workloads:
    {ul
    {- simple selectors: [div], [#id], [.class], [*];}
    {- compound selectors: [div.row], [p#main.note];}
    {- descendant combinators: [ul li], [div .row span];}
    {- selector lists: [h1, h2].}}

    Class matching reads the element's [class] attribute out of simulated
    memory (whitespace-separated word match), so selector-heavy workloads
    cost checked machine loads like real style matching does. *)

type t

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on empty or malformed selectors. *)

val to_string : t -> string
(** Canonical rendering (single spaces, original component order). *)

val matches : Dom.t -> Dom.node -> t -> bool
(** Whether a node matches (considering its ancestors for descendant
    combinators). *)

val query_all : Dom.t -> t -> Dom.node list
(** All matching elements, in document order (the root itself is never
    returned; text nodes never match). *)

val query_first : Dom.t -> t -> Dom.node option

(* {2 Compiled selectors}

   One-time host-side preparation of a parsed selector: names resolve to
   interned codes (revalidated against the DOM's monotonic intern count,
   so names interned after compilation are picked up) and class-value
   splitting is memoized by content.  Matching performs the exact same
   charged DOM reads as the interpreted matcher — simulated cycles,
   faults and traces are bit-identical; only host wall-clock drops.
   The browser's per-page selector cache ({!Browser.selector_stats})
   keys compiled selectors by source text. *)

type compiled

val compile : t -> compiled

val source : compiled -> t
(** The parsed selector this was compiled from. *)

val matches_compiled : Dom.t -> Dom.node -> compiled -> bool
val query_all_compiled : Dom.t -> compiled -> Dom.node list

val split_memo_cap : int
(** Size bound on the content-keyed class-split memo.  When full, the
    memo is cleared; the number of evicted entries is added to
    {!split_memo_evictions} and counted into the installed sink (if any)
    as [selector_memo_evict] — a host-side counter only, never an event
    or a cycle. *)

val split_memo_evictions : int ref
(** Total entries evicted from the class-split memo, process lifetime. *)
