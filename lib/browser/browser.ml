module Dom = Dom
module Html = Html
module Sites = Sites
module Style = Style
module Layout = Layout
module Selector = Selector

type selector_stats = {
  mutable sel_hits : int;
  mutable sel_misses : int;
}

type t = {
  env : Pkru_safe.Env.t;
  machine : Sim.Machine.t;
  dom : Dom.t;
  engine : Engine.t;
  mutable title : string;
  mutable scripts_run : int;
  mutable last_layout : Layout.t option;
  listeners : (Dom.node * string, Engine.Value.t list) Hashtbl.t;
    (* (node, event) -> engine callbacks, innermost-first registration *)
  selectors : (string, Selector.compiled) Hashtbl.t;
    (* parse/compile cache keyed by selector source text; compiled
       matching performs identical charged DOM reads (see Selector), so
       the cache only saves host-side parsing and name resolution *)
  sel_stats : selector_stats;
}

(* Selector parse/compile caching is on by default; the differential
   tests toggle it off to assert cached and uncached queries simulate
   bit-identically. *)
let selector_cache_enabled = ref true

let secret_value = 42

let fail fmt = Format.kasprintf (fun msg -> raise (Engine.Eval.Script_error msg)) fmt

(* --- Conversions between engine values and browser data --- *)

let heap t = Engine.heap t.engine

let arg_string t v =
  match v with
  | Engine.Value.Str s -> Engine.Value.string_of_str (heap t) s
  | v -> fail "binding expected a string, got %s" (Engine.Value.type_name v)

let arg_handle v =
  match v with
  | Engine.Value.Handle h -> h
  | v -> fail "binding expected a node handle, got %s" (Engine.Value.type_name v)

(* Copy a trusted-side string into a fresh allocation from [site] and hand
   the engine the raw buffer — the cross-compartment flow under test. *)
let buffer_result t ~site text =
  let addr, len = Dom.text_to_buffer t.dom ~site text in
  Engine.Value.of_foreign_buffer ~addr ~len

(* --- The binding layer (the bindgen-generated Servo APIs) --- *)

let rec install_bindings t =
  (* Every binding is an exported T function: entering it from script code
     crosses the reverse gate. *)
  let bind name fn =
    Engine.register_host t.engine name (fun args ->
        Pkru_safe.Env.callback t.env (fun () -> fn args))
  in
  bind "domRoot" (fun _ -> Engine.Value.Handle (Dom.root t.dom));
  bind "domCreateElement" (fun args ->
      match args with
      | [ tag ] -> Engine.Value.Handle (Dom.create_element t.dom (arg_string t tag))
      | _ -> fail "domCreateElement(tag)");
  bind "domCreateText" (fun args ->
      match args with
      | [ text ] -> Engine.Value.Handle (Dom.create_text t.dom (arg_string t text))
      | _ -> fail "domCreateText(text)");
  bind "domAppendChild" (fun args ->
      match args with
      | [ p; c ] ->
        Dom.append_child t.dom ~parent:(arg_handle p) ~child:(arg_handle c);
        Engine.Value.Null
      | _ -> fail "domAppendChild(parent, child)");
  bind "domSetAttribute" (fun args ->
      match args with
      | [ n; name; value ] ->
        Dom.set_attribute t.dom (arg_handle n) (arg_string t name) (arg_string t value);
        Engine.Value.Null
      | _ -> fail "domSetAttribute(node, name, value)");
  bind "domGetAttribute" (fun args ->
      match args with
      | [ n; name ] ->
        (match Dom.get_attribute t.dom (arg_handle n) (arg_string t name) with
        | Some value -> buffer_result t ~site:Sites.get_attribute value
        | None -> Engine.Value.Null)
      | _ -> fail "domGetAttribute(node, name)");
  bind "domTextContent" (fun args ->
      match args with
      | [ n ] ->
        buffer_result t ~site:Sites.text_content (Dom.text_content t.dom (arg_handle n))
      | _ -> fail "domTextContent(node)");
  bind "domSetText" (fun args ->
      match args with
      | [ n; text ] ->
        Dom.set_text t.dom (arg_handle n) (arg_string t text);
        Engine.Value.Null
      | _ -> fail "domSetText(node, text)");
  bind "domGetInnerHTML" (fun args ->
      match args with
      | [ n ] -> buffer_result t ~site:Sites.inner_html (Dom.serialize t.dom (arg_handle n))
      | _ -> fail "domGetInnerHTML(node)");
  bind "domSetInnerHTML" (fun args ->
      match args with
      | [ n; html ] ->
        let node = arg_handle n in
        let trees = Html.parse (arg_string t html) in
        Dom.remove_children t.dom node;
        build_trees t node trees;
        Engine.Value.Null
      | _ -> fail "domSetInnerHTML(node, html)");
  bind "domChildCount" (fun args ->
      match args with
      | [ n ] -> Engine.Value.Num (float_of_int (Dom.child_count t.dom (arg_handle n)))
      | _ -> fail "domChildCount(node)");
  bind "domRemoveChildren" (fun args ->
      match args with
      | [ n ] ->
        Dom.remove_children t.dom (arg_handle n);
        Engine.Value.Null
      | _ -> fail "domRemoveChildren(node)");
  bind "domQuery" (fun args ->
      match args with
      | [ selector_text ] ->
        let text = arg_string t selector_text in
        let nodes =
          if !selector_cache_enabled then begin
            let compiled =
              match Hashtbl.find_opt t.selectors text with
              | Some c ->
                t.sel_stats.sel_hits <- t.sel_stats.sel_hits + 1;
                c
              | None ->
                t.sel_stats.sel_misses <- t.sel_stats.sel_misses + 1;
                let parsed =
                  try Selector.parse text
                  with Selector.Parse_error msg -> fail "domQuery: %s" msg
                in
                let c = Selector.compile parsed in
                Hashtbl.replace t.selectors text c;
                c
            in
            Selector.query_all_compiled t.dom compiled
          end
          else begin
            let selector =
              try Selector.parse text
              with Selector.Parse_error msg -> fail "domQuery: %s" msg
            in
            Selector.query_all t.dom selector
          end
        in
        let arr = Engine.Value.arr_make (heap t) 0 in
        (match arr with
        | Engine.Value.Arr a ->
          List.iter (fun n -> Engine.Value.arr_push (heap t) a (Engine.Value.Handle n)) nodes
        | _ -> assert false);
        arr
      | _ -> fail "domQuery(selector)");
  bind "domQueryTag" (fun args ->
      match args with
      | [ tag ] ->
        let nodes = Dom.query_tag t.dom (arg_string t tag) in
        let arr = Engine.Value.arr_make (heap t) 0 in
        (match arr with
        | Engine.Value.Arr a ->
          List.iter
            (fun n -> Engine.Value.arr_push (heap t) a (Engine.Value.Handle n))
            nodes
        | _ -> assert false);
        arr
      | _ -> fail "domQueryTag(tag)");
  bind "domRemoveChild" (fun args ->
      match args with
      | [ p; c ] ->
        Dom.remove_child t.dom ~parent:(arg_handle p) ~child:(arg_handle c);
        Engine.Value.Null
      | _ -> fail "domRemoveChild(parent, child)");
  bind "domInsertBefore" (fun args ->
      match args with
      | [ p; c; b ] ->
        Dom.insert_before t.dom ~parent:(arg_handle p) ~child:(arg_handle c)
          ~before:(arg_handle b);
        Engine.Value.Null
      | _ -> fail "domInsertBefore(parent, child, before)");
  bind "domGetElementById" (fun args ->
      match args with
      | [ id ] ->
        (match Dom.get_element_by_id t.dom (arg_string t id) with
        | Some node -> Engine.Value.Handle node
        | None -> Engine.Value.Null)
      | _ -> fail "domGetElementById(id)");
  bind "domParent" (fun args ->
      match args with
      | [ n ] ->
        (match Dom.parent t.dom (arg_handle n) with
        | Some p -> Engine.Value.Handle p
        | None -> Engine.Value.Null)
      | _ -> fail "domParent(node)");
  bind "domTagName" (fun args ->
      match args with
      | [ n ] ->
        buffer_result t ~site:Sites.query_result (Dom.tag_name t.dom (arg_handle n))
      | _ -> fail "domTagName(node)");
  bind "domCloneNode" (fun args ->
      match args with
      | [ n ] -> Engine.Value.Handle (Dom.clone_subtree t.dom (arg_handle n))
      | _ -> fail "domCloneNode(node)");
  bind "domReflow" (fun args ->
      match args with
      | [] ->
        let layout = Layout.reflow t.dom in
        t.last_layout <- Some layout;
        Engine.Value.Num (float_of_int (Layout.document_height layout))
      | _ -> fail "domReflow()");
  bind "domGetBox" (fun args ->
      match args with
      | [ n ] ->
        let layout =
          match t.last_layout with
          | Some l -> l
          | None ->
            let l = Layout.reflow t.dom in
            t.last_layout <- Some l;
            l
        in
        (match Layout.box_of layout (arg_handle n) with
        | Some box ->
          buffer_result t ~site:Sites.query_result
            (Printf.sprintf "%d,%d,%d,%d" box.Layout.x box.Layout.y box.Layout.width
               box.Layout.height)
        | None -> Engine.Value.Null)
      | _ -> fail "domGetBox(node)");
  bind "domAddEventListener" (fun args ->
      match args with
      | [ n; name; (Engine.Value.Fun _ as callback) ] ->
        let key = (arg_handle n, arg_string t name) in
        let existing =
          match Hashtbl.find_opt t.listeners key with
          | Some fns -> fns
          | None -> []
        in
        Hashtbl.replace t.listeners key (existing @ [ callback ]);
        Engine.Value.Null
      | _ -> fail "domAddEventListener(node, name, function)");
  bind "domDispatchEvent" (fun args ->
      match args with
      | [ n; name ] -> Engine.Value.Num (float_of_int (dispatch_event t (arg_handle n) (arg_string t name)))
      | _ -> fail "domDispatchEvent(node, name)");
  bind "domGetTitle" (fun args ->
      match args with
      | [] | [ _ ] -> buffer_result t ~site:Sites.title_buffer t.title
      | _ -> fail "domGetTitle()");
  bind "domSetTitle" (fun args ->
      match args with
      | [ v ] ->
        t.title <- arg_string t v;
        Engine.Value.Null
      | _ -> fail "domSetTitle(title)")

(* Event dispatch with bubbling: the browser (T) walks target -> root and
   fires each listener.  Every listener invocation re-enters the engine —
   a T->U transition nested inside whatever stack the script already built,
   exactly the callback pattern behind the paper's dom/jslib overheads
   (§5.3). *)
and dispatch_event t node name =
  let fired = ref 0 in
  let rec bubble node =
    (match Hashtbl.find_opt t.listeners (node, name) with
    | Some callbacks ->
      List.iter
        (fun callback ->
          incr fired;
          ignore
            (Pkru_safe.Env.ffi_call t.env (fun () ->
                 Engine.Eval.call_function (Engine.evaluator t.engine) callback
                   [ Engine.Value.Handle node ])))
        callbacks
    | None -> ());
    match Dom.parent t.dom node with
    | Some parent -> bubble parent
    | None -> ()
  in
  bubble node;
  !fired

and build_trees t parent trees =
  List.iter
    (fun tree ->
      match tree with
      | Html.Text text ->
        Dom.append_child t.dom ~parent ~child:(Dom.create_text t.dom text)
      | Html.Element (tag, attrs, kids) ->
        let node = Dom.create_element t.dom tag in
        List.iter (fun (k, v) -> Dom.set_attribute t.dom node k v) attrs;
        Dom.append_child t.dom ~parent ~child:node;
        build_trees t node kids)
    trees

let create ?engine_seed ?engine_fuel ?engine_opts env =
  let machine = Pkru_safe.Env.machine env in
  let t =
    {
      env;
      machine;
      dom = Dom.create env;
      engine = Engine.create ?seed:engine_seed ?fuel:engine_fuel ?engine_opts env;
      title = "";
      scripts_run = 0;
      last_layout = None;
      listeners = Hashtbl.create 32;
      selectors = Hashtbl.create 16;
      sel_stats = { sel_hits = 0; sel_misses = 0 };
    }
  in
  (* Plant the security experiment's secret at the paper's fixed address
     inside MT (allocated at program start, logged on exit). *)
  Sim.Machine.write_u64 machine Vmm.Layout.secret_addr secret_value;
  install_bindings t;
  (* Listener callbacks (and anything they capture) are embedder-held
     engine values: root them so engine collections cannot sweep them. *)
  Engine.add_gc_root t.engine (fun () ->
      Hashtbl.fold (fun _ callbacks acc -> callbacks @ acc) t.listeners []);
  t

let env t = t.env
let dom t = t.dom
let engine t = t.engine

(* Workload-phase spans (see Engine.with_phase): page loads and script
   executions become causal roots, so every gate crossing and incident
   underneath them is attributed to the phase that drove it. *)
let with_phase t name f =
  match !Telemetry.Sink.current with
  | None -> f ()
  | Some sink ->
    let cpu = t.machine.Sim.Machine.cpu.Sim.Cpu.id in
    let id =
      Telemetry.Sink.span_enter sink ~ts:(Sim.Machine.cycles t.machine) ~cpu
        ~kind:Telemetry.Span.Phase name
    in
    Fun.protect
      ~finally:(fun () ->
        match !Telemetry.Sink.current with
        | None -> ()
        | Some sink ->
          Telemetry.Sink.span_exit sink ~ts:(Sim.Machine.cycles t.machine) ~cpu ~id ())
      f

let load_page t html =
  with_phase t "phase:load-page" (fun () ->
      build_trees t (Dom.root t.dom) (Html.parse html))

let exec_script_body ?tier t src =
  t.scripts_run <- t.scripts_run + 1;
  let len = String.length src in
  (* The script text is trusted-side data handed to the engine by pointer:
     the canonical shared allocation. *)
  let buf = Pkru_safe.Env.alloc t.env ~site:Sites.script_source (max len 1) in
  if len > 0 then Sim.Machine.write_string t.machine buf src;
  let source =
    match Engine.Value.of_foreign_buffer ~addr:buf ~len with
    | Engine.Value.Str s -> s
    | _ -> assert false
  in
  Pkru_safe.Env.ffi_call t.env (fun () -> Engine.eval_source ?tier t.engine source)

let exec_script ?tier t src =
  with_phase t "phase:exec-script" (fun () -> exec_script_body ?tier t src)

let console t = Engine.take_output t.engine

let collect t = Engine.collect t.engine

let read_secret t = Sim.Machine.priv_read_u64 t.machine Vmm.Layout.secret_addr

let scripts_run t = t.scripts_run

let selector_stats t = t.sel_stats

let reset_selector_stats t =
  t.sel_stats.sel_hits <- 0;
  t.sel_stats.sel_misses <- 0
