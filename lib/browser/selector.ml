(* A compound selector is a conjunction of simple conditions on one
   element; a path is a descendant chain of compounds (rightmost matches
   the candidate, the rest must match ancestors in order); a selector is a
   disjunction of paths. *)

type simple =
  | Tag of string
  | Id of string
  | Class of string
  | Universal

type compound = simple list (* non-empty *)

type t = compound list list (* disjunction of descendant chains *)

exception Parse_error of string

let () =
  Printexc.register_printer (function
    | Parse_error msg -> Some ("Selector.Parse_error: " ^ msg)
    | _ -> None)

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

(* Parse one compound like "div#main.note" or ".row" or "*". *)
let parse_compound text =
  let n = String.length text in
  let rec name_end i = if i < n && is_name_char text.[i] then name_end (i + 1) else i in
  let rec loop i acc =
    if i >= n then List.rev acc
    else
      match text.[i] with
      | '*' -> loop (i + 1) (Universal :: acc)
      | '#' ->
        let stop = name_end (i + 1) in
        if stop = i + 1 then raise (Parse_error ("empty id in " ^ text));
        loop stop (Id (String.sub text (i + 1) (stop - i - 1)) :: acc)
      | '.' ->
        let stop = name_end (i + 1) in
        if stop = i + 1 then raise (Parse_error ("empty class in " ^ text));
        loop stop (Class (String.sub text (i + 1) (stop - i - 1)) :: acc)
      | c when is_name_char c ->
        let stop = name_end i in
        loop stop (Tag (String.sub text i (stop - i)) :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected %C in selector %S" c text))
  in
  match loop 0 [] with
  | [] -> raise (Parse_error ("empty selector component in " ^ text))
  | compound -> compound

let split_on_whitespace text =
  String.split_on_char ' ' text |> List.filter (fun s -> s <> "")

let parse text =
  let alternatives =
    String.split_on_char ',' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map (fun path -> List.map parse_compound (split_on_whitespace path))
  in
  if alternatives = [] || List.exists (fun path -> path = []) alternatives then
    raise (Parse_error (Printf.sprintf "empty selector %S" text));
  alternatives

let simple_to_string = function
  | Tag t -> t
  | Id i -> "#" ^ i
  | Class c -> "." ^ c
  | Universal -> "*"

let to_string t =
  String.concat ", "
    (List.map
       (fun path ->
         String.concat " "
           (List.map (fun compound -> String.concat "" (List.map simple_to_string compound)) path))
       t)

(* --- Matching --- *)

let has_class dom node cls =
  match Dom.get_attribute dom node "class" with
  | None -> false
  | Some value -> List.mem cls (split_on_whitespace value)

let matches_simple dom node = function
  | Universal -> true
  | Tag tag -> Dom.tag_name dom node = tag
  | Id id -> Dom.get_attribute dom node "id" = Some id
  | Class cls -> has_class dom node cls

let matches_compound dom node compound =
  (not (Dom.is_text dom node)) && List.for_all (matches_simple dom node) compound

(* rev_path is the descendant chain rightmost-first; the head must match
   [node], the rest must match some strictly-ascending ancestors. *)
let rec matches_rev_path dom node = function
  | [] -> true
  | compound :: rest ->
    matches_compound dom node compound
    &&
    let rec some_ancestor current =
      match Dom.parent dom current with
      | None -> rest = []
      | Some parent ->
        (match rest with
        | [] -> true
        | next :: _ ->
          ignore next;
          matches_rev_path dom parent rest || some_ancestor parent)
    in
    (match rest with
    | [] -> true
    | _ -> some_ancestor node)

let matches dom node t = List.exists (fun path -> matches_rev_path dom node (List.rev path)) t

let query_all dom t =
  let acc = ref [] in
  let rec walk node =
    if node <> Dom.root dom && matches dom node t then acc := node :: !acc;
    List.iter walk (Dom.children dom node)
  in
  walk (Dom.root dom);
  List.rev !acc

let query_first dom t =
  match query_all dom t with
  | [] -> None
  | node :: _ -> Some node

(* --- Compiled matching ---

   The interpreted matcher above re-resolves selector names against the
   DOM's intern table and re-splits class attribute values on every
   candidate node.  A compiled selector does that host-side work once,
   while performing the exact same *charged* DOM reads in the same order,
   so simulated cycles, faults and traces are bit-identical:

   - tag tests read the node's tag code (one charged header read, same as
     [tag_name]) and compare integers instead of strings;
   - attribute tests use a pre-resolved name code.  A name the DOM has
     never interned matches nothing *without any charged reads* — exactly
     like [get_attribute]'s name-miss path — and codes are revalidated
     against the (monotonic) intern count, since a later
     [createElement]/[setAttribute] can intern a name that compiled as
     unknown;
   - class-attribute values are split through a content-keyed memo
     (splitting is a pure function of the value string, so the memo needs
     no invalidation; it is capped to bound memory). *)

type nref = {
  n_name : string;
  mutable n_code : int; (* -1 = not interned *)
  mutable n_snap : int; (* intern count when last resolved *)
}

type csimple =
  | Ctag of nref
  | Cattr of nref * string (* resolved attribute name, wanted value *)
  | Cclass of nref * string (* resolved "class", wanted class *)
  | Cuniversal

type compiled = {
  source : t;
  cpaths : csimple list list list; (* mirrors [t]'s structure *)
}

let nref name = { n_name = name; n_code = -1; n_snap = -1 }

let code_of dom r =
  let snap = Dom.tag_count dom in
  if r.n_snap <> snap then begin
    r.n_snap <- snap;
    r.n_code <- (match Dom.find_code dom r.n_name with Some c -> c | None -> -1)
  end;
  r.n_code

let compile (sel : t) : compiled =
  let compile_simple = function
    | Tag tag -> Ctag (nref tag)
    | Id id -> Cattr (nref "id", id)
    | Class cls -> Cclass (nref "class", cls)
    | Universal -> Cuniversal
  in
  {
    source = sel;
    cpaths = List.map (List.map (List.map compile_simple)) sel;
  }

let source c = c.source

(* Content-keyed class-split memo: sound with no invalidation (pure
   function of the value string); cleared when oversized so a 100k-session
   fleet can't grow it without bound.  Evictions are counted into the
   sink (a post-hoc host-side counter — no event, no cycle). *)
let split_memo : (string, string list) Hashtbl.t = Hashtbl.create 64
let split_memo_cap = 4096
let split_memo_evictions = ref 0

let split_classes value =
  match Hashtbl.find_opt split_memo value with
  | Some parts -> parts
  | None ->
    let parts = split_on_whitespace value in
    if Hashtbl.length split_memo >= split_memo_cap then begin
      let evicted = Hashtbl.length split_memo in
      split_memo_evictions := !split_memo_evictions + evicted;
      (match !Telemetry.Sink.current with
      | Some sink -> Telemetry.Sink.incr sink ~by:evicted "selector_memo_evict"
      | None -> ());
      Hashtbl.reset split_memo
    end;
    Hashtbl.replace split_memo value parts;
    parts

let matches_csimple dom node = function
  | Cuniversal -> true
  | Ctag r ->
    let code = code_of dom r in
    (* The header read is charged whether or not the tag is known, just
       like the interpreted [tag_name] comparison. *)
    Dom.tag_code dom node = code && code >= 0
  | Cattr (r, wanted) ->
    let code = code_of dom r in
    if code < 0 then false (* uninterned name: no charged reads, like get_attribute *)
    else Dom.attribute_by_code dom node code = Some wanted
  | Cclass (r, cls) ->
    let code = code_of dom r in
    if code < 0 then false
    else (
      match Dom.attribute_by_code dom node code with
      | None -> false
      | Some value -> List.mem cls (split_classes value))

let matches_ccompound dom node compound =
  (not (Dom.is_text dom node)) && List.for_all (matches_csimple dom node) compound

let rec matches_rev_cpath dom node = function
  | [] -> true
  | compound :: rest ->
    matches_ccompound dom node compound
    &&
    let rec some_ancestor current =
      match Dom.parent dom current with
      | None -> rest = []
      | Some parent -> matches_rev_cpath dom parent rest || some_ancestor parent
    in
    (match rest with
    | [] -> true
    | _ -> some_ancestor node)

let matches_compiled dom node c =
  List.exists (fun path -> matches_rev_cpath dom node (List.rev path)) c.cpaths

let query_all_compiled dom c =
  let acc = ref [] in
  let rec walk node =
    if node <> Dom.root dom && matches_compiled dom node c then acc := node :: !acc;
    List.iter walk (Dom.children dom node)
  in
  walk (Dom.root dom);
  List.rev !acc
