(** The per-thread compartment stack.

    Call gates do not assume the previous permissions allowed access to MT;
    they "track permissions in a per-thread compartment stack that ensures
    the permissions are correctly restored" (paper §3.3).  Each gate entry
    pushes the PKRU value in force before the transition; the matching exit
    pops and restores it, so nested and re-entrant cross-compartment calls
    unwind correctly. *)

type t

val create : unit -> t
val push : t -> Mpk.Pkru.t -> unit

val pop : t -> Mpk.Pkru.t
(** @raise Invalid_argument on an empty stack (unbalanced gates). *)

val depth : t -> int

val max_depth : t -> int
(** Deepest nesting observed, e.g. the "deeply nested stack of compartment
    transitions" seen in the dom benchmarks (§5.3). *)

val to_list : t -> Mpk.Pkru.t list
(** Saved PKRU values, most recently pushed first — what the sampling
    profiler snapshots into a folded stack. *)
