type t = {
  mutable items : Mpk.Pkru.t list;
  mutable depth : int;
  mutable max_depth : int;
}

let create () = { items = []; depth = 0; max_depth = 0 }

let push t pkru =
  t.items <- pkru :: t.items;
  t.depth <- t.depth + 1;
  if t.depth > t.max_depth then t.max_depth <- t.depth

let pop t =
  match t.items with
  | [] -> invalid_arg "Comp_stack.pop: unbalanced call gates"
  | pkru :: rest ->
    t.items <- rest;
    t.depth <- t.depth - 1;
    pkru

let depth t = t.depth
let max_depth t = t.max_depth

let to_list t = t.items
