type t = {
  machine : Sim.Machine.t;
  trusted_pkey : Mpk.Pkey.t;
  untrusted_view : Mpk.Pkru.t;
  stack : Comp_stack.t;
  mutable transitions : int;
  mutable span_ids : int list; (* causal span per stack frame, innermost first *)
  mutable resident : Mpk.Pkru.t;
      (* the view the last verified transition installed on this thread;
         what {!reverify} checks the live PKRU against on a fleet resume *)
}

let create ?(trusted_pkey = Mpk.Pkey.of_int 1) machine =
  {
    machine;
    trusted_pkey;
    untrusted_view = Compartment.untrusted_view ~trusted_pkey;
    stack = Comp_stack.create ();
    transitions = 0;
    span_ids = [];
    resident = Mpk.Pkru.all_enabled;
    (* a fresh thread starts fully enabled, like its hart *)
  }

let machine t = t.machine
let trusted_pkey t = t.trusted_pkey
let stack t = t.stack

let cpu t = t.machine.Sim.Machine.cpu

let current t = Compartment.of_pkru ~trusted_pkey:t.trusted_pkey (cpu t).Sim.Cpu.pkru

(* Preallocated events: one per gate side, so the enabled path allocates
   nothing per transition and the disabled path is a load and a branch. *)
let ev_enter_untrusted = Telemetry.Event.Gate_enter { target = Telemetry.Event.Untrusted }
let ev_exit_untrusted = Telemetry.Event.Gate_exit { target = Telemetry.Event.Untrusted }
let ev_enter_trusted = Telemetry.Event.Gate_enter { target = Telemetry.Event.Trusted }
let ev_exit_trusted = Telemetry.Event.Gate_exit { target = Telemetry.Event.Trusted }

(* Fault-injection hook (chaos harness only): when set, the value actually
   written by WRPKRU is the corruptor's output, while the gate still
   verifies against the intended target — modelling a Garmr-style attack
   where gate instructions are reused with a tampered EAX. *)
let chaos_pkru_corruptor : (Mpk.Pkru.t -> Mpk.Pkru.t) option ref = ref None

let transition_name event =
  match event with
  | Telemetry.Event.Gate_enter { target } ->
    "enter:" ^ Telemetry.Event.compartment_to_string target
  | Telemetry.Event.Gate_exit { target } ->
    "exit:" ^ Telemetry.Event.compartment_to_string target
  | _ -> "?"

(* One gate side: bookkeeping + WRPKRU + the verifying RDPKRU.  A mismatch
   after the write means PKRU-modifying code was reused out of context, so
   the gate kills the process rather than continue with broken rights —
   after handing the flight recorder the intended-vs-observed values, with
   the residency span for the corrupted transition still open so the dump's
   causal chain names it. *)
let switch_to t event target =
  let cpu = cpu t in
  Sim.Cpu.charge cpu cpu.Sim.Cpu.cost.Sim.Cost.gate_bookkeeping;
  (match !chaos_pkru_corruptor with
  | None -> Sim.Cpu.wrpkru cpu target
  | Some corrupt -> Sim.Cpu.wrpkru cpu (corrupt target));
  let now = Sim.Cpu.rdpkru cpu in
  if not (Mpk.Pkru.equal now target) then begin
    Telemetry.Flight.dump ~reason:"gate PKRU verification mismatch"
      ~details:
        [
          ("transition", Util.Json.String (transition_name event));
          ("intended_pkru", Util.Json.Int (Mpk.Pkru.to_int target));
          ("observed_pkru", Util.Json.Int (Mpk.Pkru.to_int now));
          ("cycle", Util.Json.Int (Sim.Machine.cycles t.machine));
          ("cpu", Util.Json.Int cpu.Sim.Cpu.id);
        ]
      ();
    raise
      (Sim.Signals.Process_killed
         (Printf.sprintf "call gate: PKRU value mismatch (hart %d)" cpu.Sim.Cpu.id))
  end;
  t.resident <- target;
  t.transitions <- t.transitions + 1;
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink ->
    Telemetry.Sink.emit sink ~ts:(Sim.Machine.cycles t.machine) ~cpu:cpu.Sim.Cpu.id event

(* Residency spans bracket each compartment stay.  The span opens BEFORE
   the verifying write: if the gate's check kills the process, the span is
   still open and the flight dump's causal chain ends at the very
   transition that was corrupted.  Span ids ride a stack parallel to the
   PKRU stack so exits close exactly the frame they pop (and an exception
   unwinding several frames closes the abandoned inner spans too). *)
let span_open t name =
  match !Telemetry.Sink.current with
  | None -> t.span_ids <- 0 :: t.span_ids
  | Some sink ->
    let id =
      Telemetry.Sink.span_enter sink
        ~ts:(Sim.Machine.cycles t.machine)
        ~cpu:(cpu t).Sim.Cpu.id ~kind:Telemetry.Span.Gate name
    in
    t.span_ids <- id :: t.span_ids

let span_close t =
  match t.span_ids with
  | [] -> ()
  | id :: rest -> (
    t.span_ids <- rest;
    match !Telemetry.Sink.current with
    | None -> ()
    | Some sink ->
      if id <> 0 then
        Telemetry.Sink.span_exit sink
          ~ts:(Sim.Machine.cycles t.machine)
          ~cpu:(cpu t).Sim.Cpu.id ~id ())

let enter_untrusted t =
  Comp_stack.push t.stack (cpu t).Sim.Cpu.pkru;
  span_open t "gate:untrusted";
  switch_to t ev_enter_untrusted t.untrusted_view

let exit_untrusted t =
  let saved = Comp_stack.pop t.stack in
  switch_to t ev_exit_untrusted saved;
  span_close t

(* The reverse gate restores T's full view for the duration of a callback;
   it does not assume where it was called from. *)
let enter_trusted t =
  Comp_stack.push t.stack (cpu t).Sim.Cpu.pkru;
  span_open t "gate:trusted";
  switch_to t ev_enter_trusted Compartment.trusted_view

let exit_trusted t =
  let saved = Comp_stack.pop t.stack in
  switch_to t ev_exit_trusted saved;
  span_close t

let bracketed t ~enter ~exit ~latency f =
  match !Telemetry.Sink.current with
  | None ->
    enter t;
    Fun.protect ~finally:(fun () -> exit t) f
  | Some sink ->
    let entered = Sim.Machine.cycles t.machine in
    enter t;
    Fun.protect
      ~finally:(fun () ->
        exit t;
        Telemetry.Sink.observe sink latency (Sim.Machine.cycles t.machine - entered))
      f

let call_untrusted t f =
  bracketed t ~enter:enter_untrusted ~exit:exit_untrusted ~latency:"gate_roundtrip_cycles" f

let callback_trusted t f =
  bracketed t ~enter:enter_trusted ~exit:exit_trusted ~latency:"callback_roundtrip_cycles" f

let transitions t = t.transitions
let reset_transitions t = t.transitions <- 0

let resident_view t = t.resident

(* Garmr defense: gate re-verification at a scheduling boundary.  A
   continuation restore puts a parked thread back on its hart with
   whatever PKRU the hart last held — if a sibling flipped it mid-slice
   (a concurrent WRPKRU race), the thread would resume with rights its
   gates never granted.  Re-checking the live value against the view the
   last verified transition installed catches exactly that, before the
   slice runs a single instruction.  The check is kernel/scheduler work:
   it charges no simulated cycles and emits no events on the pass path,
   so enabling it never perturbs benign traces. *)
let reverify ?attack t =
  let cpu = cpu t in
  let now = cpu.Sim.Cpu.pkru in
  if not (Mpk.Pkru.equal now t.resident) then begin
    Telemetry.Flight.dump ~reason:"resume gate: PKRU re-verification mismatch"
      ~details:
        ([
           ("expected_pkru", Util.Json.Int (Mpk.Pkru.to_int t.resident));
           ("observed_pkru", Util.Json.Int (Mpk.Pkru.to_int now));
           ("cycle", Util.Json.Int (Sim.Machine.cycles t.machine));
           ("hart", Util.Json.Int cpu.Sim.Cpu.id);
         ]
        @ match attack with None -> [] | Some a -> [ ("attack", Util.Json.String a) ])
      ();
    raise
      (Sim.Signals.Process_killed
         (Printf.sprintf "resume gate: PKRU value mismatch (hart %d)" cpu.Sim.Cpu.id))
  end

(* The sampling profiler's stack snapshot: saved PKRU values name the
   compartments entered on the way here (root first), the live PKRU the
   compartment currently running.  Mid-gate samples (after the stack push,
   before the WRPKRU retires) repeat the outgoing compartment as the leaf,
   which is the truthful reading: those cycles retire under the old view. *)
let stack_frames t =
  let name pkru =
    Compartment.to_string (Compartment.of_pkru ~trusted_pkey:t.trusted_pkey pkru)
  in
  List.rev_map name (Comp_stack.to_list t.stack) @ [ name (cpu t).Sim.Cpu.pkru ]
