type t = {
  machine : Sim.Machine.t;
  trusted_pkey : Mpk.Pkey.t;
  metadata : Metadata.t;
  profile : Profile.t;
  saved_pkru : (int, Mpk.Pkru.t) Hashtbl.t; (* per-hart single-step state *)
  step_started : (int, int) Hashtbl.t; (* per-hart cycles at fault entry *)
  mutable faults_serviced : int;
  mutable untracked_faults : int;
}

let create ?(trusted_pkey = Mpk.Pkey.of_int 1) machine =
  {
    machine;
    trusted_pkey;
    metadata = Metadata.create ();
    profile = Profile.create ();
    saved_pkru = Hashtbl.create 4;
    step_started = Hashtbl.create 4;
    faults_serviced = 0;
    untracked_faults = 0;
  }

let on_segv t (fault : Vmm.Fault.t) =
  match fault.Vmm.Fault.kind with
  | Vmm.Fault.Pkey_violation key when Mpk.Pkey.equal key t.trusted_pkey ->
    (* Fig. 2 steps 4-5: look up the faulting object's metadata and record
       its AllocId, then single-step the access with a temporarily
       permissive PKRU. *)
    (match Metadata.lookup t.metadata fault.Vmm.Fault.addr with
    | Some record -> Profile.record t.profile record.Metadata.alloc_id
    | None ->
      t.untracked_faults <- t.untracked_faults + 1;
      (match !Telemetry.Sink.current with
      | None -> ()
      | Some sink -> Telemetry.Sink.incr sink "profiler.untracked_faults"));
    t.faults_serviced <- t.faults_serviced + 1;
    let cpu = t.machine.Sim.Machine.cpu in
    Hashtbl.replace t.saved_pkru cpu.Sim.Cpu.id cpu.Sim.Cpu.pkru;
    if !Telemetry.Sink.current <> None then
      Hashtbl.replace t.step_started cpu.Sim.Cpu.id (Sim.Machine.cycles t.machine);
    Sim.Cpu.set_pkru cpu Mpk.Pkru.all_enabled;
    cpu.Sim.Cpu.trap_flag <- true;
    Sim.Signals.Retry
  | Vmm.Fault.Pkey_violation _ | Vmm.Fault.Not_mapped | Vmm.Fault.Prot_violation ->
    (* "Faults unrelated to an MPK violation behave normally": defer to the
       previously registered handler. *)
    Sim.Signals.Pass

let on_trap t () =
  let cpu = t.machine.Sim.Machine.cpu in
  match Hashtbl.find_opt t.saved_pkru cpu.Sim.Cpu.id with
  | Some pkru ->
    Sim.Cpu.set_pkru cpu pkru;
    Hashtbl.remove t.saved_pkru cpu.Sim.Cpu.id;
    (* Fault-to-trap round trip: the full single-step servicing of one
       recorded access (dispatch, permissive re-execution, #DB restore). *)
    (match (!Telemetry.Sink.current, Hashtbl.find_opt t.step_started cpu.Sim.Cpu.id) with
    | Some sink, Some started ->
      Hashtbl.remove t.step_started cpu.Sim.Cpu.id;
      Telemetry.Sink.observe sink "single_step_cycles" (Sim.Machine.cycles t.machine - started)
    | _ -> Hashtbl.remove t.step_started cpu.Sim.Cpu.id)
  | None -> ()

let install t =
  Sim.Signals.register_segv t.machine.Sim.Machine.signals (on_segv t);
  Sim.Signals.register_trap t.machine.Sim.Machine.signals (on_trap t)

let log_alloc t ~alloc_id ~addr ~size = Metadata.on_alloc t.metadata ~addr ~size ~alloc_id

let log_realloc t ~old_addr ~new_addr ~new_size =
  Metadata.on_realloc t.metadata ~old_addr ~new_addr ~new_size

let log_dealloc t ~addr = Metadata.on_dealloc t.metadata ~addr

let profile t = t.profile
let metadata t = t.metadata
let faults_serviced t = t.faults_serviced
let untracked_faults t = t.untracked_faults
