(** Enforcement-mode fault recovery (resilience tier).

    PKRU-Safe's enforcement build inherits dynamic profiling's blind spot:
    an allocation site never exercised during profiling stays in MT, and
    the first legitimate access from U in production is a fatal
    [SEGV_PKUERR] (§4.3/§6 — the gate "will otherwise exit the
    application").  This module is a SIGSEGV interposer, installed like
    {!Profiler.install}, that applies a configurable recovery policy to
    MPK faults raised by such unprofiled sites.

    Only faults whose address resolves in the mitigator's live-object
    {!Metadata} table are ever recovered; untracked trusted memory (the
    secret page, runtime internals) always takes the abort path whatever
    the policy, so leniency never weakens the isolation boundary itself.

    A token-bucket circuit breaker bounds how many incidents [Emulate] /
    [Promote] may service; once the budget is spent further incidents
    escalate to the [Abort] behaviour, so a probing attacker cannot turn
    leniency into an unlimited read/write oracle. *)

type policy =
  | Abort  (** paper-faithful default: the fault stays unresolved and the
               process dies exactly as a mitigator-less run would. *)
  | Emulate  (** single-step the access once (profiler-style permissive
                 PKRU + trap flag), log an incident, keep running. *)
  | Promote  (** [Emulate], plus quarantine the object's AllocId in
                 pkalloc's site-override table so *future* allocations
                 from that site are served from MU.  Live objects keep
                 their pool: provenance is preserved. *)
  | Degrade  (** deny U all further MT access: every incident raises
                 {!Degraded} so the request fails gracefully (gates
                 restore their balance on the way out). *)

val policy_to_string : policy -> string
val policy_of_string : string -> policy option
val all_policies : policy list

exception Degraded of Vmm.Fault.t
(** Raised out of the faulting access under the [Degrade] policy.  The
    gate brackets ([Gate.call_untrusted]) restore compartment state as the
    exception propagates, so callers can catch it and fail the single
    request. *)

type t

val create :
  ?trusted_pkey:Mpk.Pkey.t ->
  ?budget:int ->
  ?refill_cycles:int ->
  policy:policy ->
  pkalloc:Allocators.Pkalloc.t ->
  Sim.Machine.t ->
  t
(** [budget] (default 65536 — roomy enough that a legitimate workload
    hammering one unprofiled buffer survives, small enough to starve a
    probing loop) is the circuit-breaker token count; each
    serviced [Emulate]/[Promote] incident spends one token and an empty
    bucket escalates to [Abort].  [refill_cycles] > 0 trickles one token
    back per that many simulated cycles (default 0: no refill).
    @raise Invalid_argument on negative [budget] or [refill_cycles]. *)

val install : t -> unit
(** Registers the SIGSEGV interposer (and, except under [Abort], the
    SIGTRAP handler used for single-stepping).  Call late, after the
    application's own handlers, like the profiler. *)

val policy : t -> policy

(* Compiler-inserted runtime callbacks, shared shape with {!Profiler}:
   enforcement builds keep the live-object table so the mitigator can
   attribute faults to allocation sites. *)

val log_alloc : t -> alloc_id:Alloc_id.t -> addr:int -> size:int -> unit
val log_realloc : t -> old_addr:int -> new_addr:int -> new_size:int -> unit
val log_dealloc : t -> addr:int -> unit

val metadata : t -> Metadata.t

val incidents : t -> int
(** Total MPK-violation incidents this mitigator adjudicated (all
    outcomes; always 0 under [Abort], which does no accounting so that
    aborting runs stay bit-identical to mitigator-less ones). *)

val outcome_counts : t -> (string * int) list
(** Sorted [(outcome, count)] pairs; outcomes are ["emulated"],
    ["promoted"], ["degraded"], ["refused"] (untracked address) and
    ["escalated"] (circuit breaker open).  Mirrored into the telemetry
    sink as [mitigation.<policy>.<outcome>] counters and exported as
    [pkru_mitigation_total{policy,outcome}]. *)

val tokens_left : t -> int
val is_degraded : t -> bool

val promoted_sites : t -> string list
(** Sites quarantined so far (sorted) — pkalloc's site-override table. *)
