type record = {
  addr : int;
  size : int;
  alloc_id : Alloc_id.t;
}

module Addr_map = Map.Make (Int)

type t = { mutable by_base : record Addr_map.t }

let create () = { by_base = Addr_map.empty }

let on_alloc t ~addr ~size ~alloc_id =
  t.by_base <- Addr_map.add addr { addr; size; alloc_id } t.by_base

let on_dealloc t ~addr = t.by_base <- Addr_map.remove addr t.by_base

let on_realloc t ~old_addr ~new_addr ~new_size =
  match Addr_map.find_opt old_addr t.by_base with
  | None -> ()
  | Some record ->
    t.by_base <- Addr_map.remove old_addr t.by_base;
    t.by_base <-
      Addr_map.add new_addr { addr = new_addr; size = new_size; alloc_id = record.alloc_id }
        t.by_base

let lookup t a =
  (* Greatest base <= a, then a range check: objects never overlap. *)
  match Addr_map.find_last_opt (fun base -> base <= a) t.by_base with
  | Some (_, record) when a < record.addr + record.size -> Some record
  | Some _ | None -> None

let live_count t = Addr_map.cardinal t.by_base

(* Census iteration: live records in ascending base-address order, so
   any aggregation over the table is deterministic. *)
let fold f t init = Addr_map.fold (fun _base record acc -> f record acc) t.by_base init
let iter f t = Addr_map.iter (fun _base record -> f record) t.by_base
