(** The provenance-tracking runtime's live-object table (paper Fig. 2).

    Every allocation from MT during a profiling run is recorded here with
    its address, size and AllocId; the fault handler looks up the faulting
    address to find which allocation site produced the object.  Tracking
    follows reallocation ("reallocation calls associate the returned memory
    object with the original object's AllocId") and stops at deallocation. *)

type record = {
  addr : int;
  size : int;
  alloc_id : Alloc_id.t;
}

type t

val create : unit -> t

val on_alloc : t -> addr:int -> size:int -> alloc_id:Alloc_id.t -> unit

val on_realloc : t -> old_addr:int -> new_addr:int -> new_size:int -> unit
(** Re-associates the new object with the old object's AllocId.  A no-op
    when [old_addr] is untracked (e.g. an MU object). *)

val on_dealloc : t -> addr:int -> unit
(** Stops tracking; no-op when untracked. *)

val lookup : t -> int -> record option
(** [lookup t a]: the record of the live object whose range contains [a]
    (not just its base address — the faulting access may be anywhere
    inside the object). *)

val live_count : t -> int

val fold : (record -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over every live record in ascending base-address order
    (deterministic) — the heap census aggregates per-site live bytes and
    object counts this way. *)

val iter : (record -> unit) -> t -> unit
(** {!fold} without an accumulator. *)
