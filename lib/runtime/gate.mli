(** Call gates (paper §3.3 / §4.1).

    Every interface from T to U is wrapped so the call first revokes access
    to MT, and the previous permissions are restored on return — tracked on
    the per-thread compartment stack rather than assumed.  Address-taken /
    externally visible functions of T get the reverse gate so callbacks
    from U regain access to MT for their duration.

    Each gate verifies that the PKRU value after the write matches the
    target the gate is meant to enforce and otherwise exits the application
    ("will otherwise exit the application if the values are mismatched").

    With a telemetry sink installed, every compartment residency is also
    bracketed by a causal span ({!Telemetry.Span}, kind [Gate]) opened
    {e before} the verifying write — so if the verify kills the process
    the span is still open and the flight recorder's causal chain names
    the corrupted transition.  A verify mismatch dumps the flight
    recorder (intended vs observed PKRU, transition, cycle) before
    raising. *)

type t

val create : ?trusted_pkey:Mpk.Pkey.t -> Sim.Machine.t -> t
(** [trusted_pkey] defaults to key 1 (pkalloc's default). *)

val machine : t -> Sim.Machine.t
val trusted_pkey : t -> Mpk.Pkey.t
val stack : t -> Comp_stack.t

val current : t -> Compartment.t
(** Compartment implied by the live PKRU value. *)

val enter_untrusted : t -> unit
(** Gate into U: push current PKRU, write the untrusted view, verify. *)

val exit_untrusted : t -> unit
(** Gate back from U: pop, restore, verify.
    @raise Invalid_argument on unbalanced gates. *)

val enter_trusted : t -> unit
(** Reverse gate, entered when U calls an exported T function. *)

val exit_trusted : t -> unit

val call_untrusted : t -> (unit -> 'a) -> 'a
(** [call_untrusted t f] runs [f] bracketed by
    {!enter_untrusted}/{!exit_untrusted}.  The gate is restored even if
    [f] raises, so a simulated crash in U leaves the harness consistent. *)

val callback_trusted : t -> (unit -> 'a) -> 'a
(** Bracketed reverse gate for a U→T callback. *)

val transitions : t -> int
(** Number of compartment transitions executed (each gate side counts
    one — the Transitions column of Tables 1 and 2). *)

val reset_transitions : t -> unit

val resident_view : t -> Mpk.Pkru.t
(** The PKRU view installed by this thread's last verified gate
    transition ([all_enabled] before any transition).  The reference a
    scheduler-boundary re-verification checks the live value against. *)

val reverify : ?attack:string -> t -> unit
(** Garmr defense: re-checks the hart's live PKRU against
    {!resident_view} — called by the fleet scheduler before resuming a
    parked continuation, catching a sibling hart's mid-slice WRPKRU flip
    before the slice runs.  On mismatch, dumps the flight recorder
    (expected vs observed PKRU, hart, and [attack] when given) and kills
    the process.  Charges no simulated cycles and emits nothing when the
    check passes, so enabling it is architecturally invisible on benign
    runs.
    @raise Sim.Signals.Process_killed on mismatch *)

val chaos_pkru_corruptor : (Mpk.Pkru.t -> Mpk.Pkru.t) option ref
(** Fault-injection hook for the chaos harness: when [Some f], every gate
    WRPKRU writes [f target] instead of [target] while still verifying the
    result against [target] — so any corruption that changes the value is
    caught by the gate's own check ({!Sim.Signals.Process_killed}).  [None]
    (the default) is the production path.  Reset it with [:= None] after a
    scenario; never set outside tests/chaos. *)

val stack_frames : t -> string list
(** The current compartment nesting as folded-stack frames, root first
    (e.g. [["trusted"; "untrusted"]] inside an FFI call) — the snapshot
    the {!Telemetry.Sampler} provider takes.  Pure reads; charges no
    cycles. *)
