type policy =
  | Abort
  | Emulate
  | Promote
  | Degrade

let policy_to_string = function
  | Abort -> "abort"
  | Emulate -> "emulate"
  | Promote -> "promote"
  | Degrade -> "degrade"

let policy_of_string = function
  | "abort" -> Some Abort
  | "emulate" -> Some Emulate
  | "promote" -> Some Promote
  | "degrade" -> Some Degrade
  | _ -> None

let all_policies = [ Abort; Emulate; Promote; Degrade ]

exception Degraded of Vmm.Fault.t

let () =
  Printexc.register_printer (function
    | Degraded fault ->
      Some (Printf.sprintf "Mitigator.Degraded: U denied MT access (%s)" (Vmm.Fault.to_string fault))
    | _ -> None)

type t = {
  machine : Sim.Machine.t;
  trusted_pkey : Mpk.Pkey.t;
  pkalloc : Allocators.Pkalloc.t;
  policy : policy;
  metadata : Metadata.t;
  saved_pkru : (int, Mpk.Pkru.t) Hashtbl.t; (* per-hart single-step state *)
  outcomes : (string, int) Hashtbl.t;
  budget : int;
  refill_cycles : int;
  mutable tokens : int;
  mutable refill_mark : int; (* machine cycles at last refill accounting *)
  mutable incidents : int;
  mutable degraded : bool;
}

let create ?(trusted_pkey = Mpk.Pkey.of_int 1) ?(budget = 65536) ?(refill_cycles = 0) ~policy
    ~pkalloc machine =
  if budget < 0 then invalid_arg "Mitigator.create: negative budget";
  if refill_cycles < 0 then invalid_arg "Mitigator.create: negative refill_cycles";
  {
    machine;
    trusted_pkey;
    pkalloc;
    policy;
    metadata = Metadata.create ();
    saved_pkru = Hashtbl.create 4;
    outcomes = Hashtbl.create 8;
    budget;
    refill_cycles;
    tokens = budget;
    refill_mark = Sim.Machine.cycles machine;
    incidents = 0;
    degraded = false;
  }

let policy t = t.policy
let is_degraded t = t.degraded
let incidents t = t.incidents

let outcome_counts t =
  Hashtbl.fold (fun outcome n acc -> (outcome, n) :: acc) t.outcomes [] |> List.sort compare

let promoted_sites t = Allocators.Pkalloc.quarantined_sites t.pkalloc

(* Token-bucket circuit breaker: Emulate/Promote spend one token per
   serviced incident; an empty bucket escalates the policy to Abort so a
   probing attacker cannot use leniency as an unlimited access oracle.
   Tokens optionally trickle back at one per [refill_cycles] simulated
   cycles (0 = no refill). *)
let refill t =
  if t.refill_cycles > 0 && t.tokens < t.budget then begin
    let now = Sim.Machine.cycles t.machine in
    let earned = (now - t.refill_mark) / t.refill_cycles in
    if earned > 0 then begin
      t.tokens <- min t.budget (t.tokens + earned);
      t.refill_mark <- t.refill_mark + (earned * t.refill_cycles)
    end
  end

let take_token t =
  refill t;
  if t.tokens > 0 then begin
    t.tokens <- t.tokens - 1;
    true
  end
  else false

let tokens_left t =
  refill t;
  t.tokens

let record_incident t outcome =
  t.incidents <- t.incidents + 1;
  Hashtbl.replace t.outcomes outcome
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.outcomes outcome));
  match !Telemetry.Sink.current with
  | None -> ()
  | Some sink ->
    Telemetry.Sink.incr sink
      (Printf.sprintf "mitigation.%s.%s" (policy_to_string t.policy) outcome);
    (* Every adjudication also lands as an instant causal span, parented
       under whatever gate/phase span was open on the hart — so a flight
       dump shows which crossing the incident happened inside. *)
    Telemetry.Sink.span_instant sink
      ~ts:(Sim.Machine.cycles t.machine)
      ~cpu:t.machine.Sim.Machine.cpu.Sim.Cpu.id ~kind:Telemetry.Span.Incident
      (Printf.sprintf "mitigation:%s:%s" (policy_to_string t.policy) outcome)

(* Single-step the faulting access exactly as the profiler does (§4.3.2):
   permissive PKRU + trap flag; the SIGTRAP handler restores the view. *)
let single_step t =
  let cpu = t.machine.Sim.Machine.cpu in
  Hashtbl.replace t.saved_pkru cpu.Sim.Cpu.id cpu.Sim.Cpu.pkru;
  Sim.Cpu.set_pkru cpu Mpk.Pkru.all_enabled;
  cpu.Sim.Cpu.trap_flag <- true;
  Sim.Signals.Retry

let on_segv t (fault : Vmm.Fault.t) =
  match fault.Vmm.Fault.kind with
  | Vmm.Fault.Pkey_violation key when Mpk.Pkey.equal key t.trusted_pkey -> (
    match t.policy with
    | Abort ->
      (* Paper-faithful: do not resolve, do not account — the run must be
         bit-identical (cycles, counters, traces) to one without the
         mitigator installed. *)
      Sim.Signals.Pass
    | Degrade ->
      t.degraded <- true;
      record_incident t "degraded";
      Telemetry.Flight.dump ~reason:"mitigator degraded: U denied MT access"
        ~details:
          ([
             ("policy", Util.Json.String "degrade");
             ("fault", Util.Json.String (Vmm.Fault.to_string fault));
             ("addr", Util.Json.Int fault.Vmm.Fault.addr);
             ("cycle", Util.Json.Int (Sim.Machine.cycles t.machine));
           ]
          @
          match Metadata.lookup t.metadata fault.Vmm.Fault.addr with
          | None -> []
          | Some r ->
            [
              ( "suspect_alloc",
                Util.Json.Obj
                  [
                    ("alloc_id", Util.Json.String (Alloc_id.to_string r.Metadata.alloc_id));
                    ("base", Util.Json.Int r.Metadata.addr);
                    ("size", Util.Json.Int r.Metadata.size);
                  ] );
            ])
        ();
      raise (Degraded fault)
    | (Emulate | Promote) as p -> (
      (* Only faults on live tracked heap objects are recoverable: an MPK
         violation on untracked trusted memory (the secret page, runtime
         internals) is never emulated, under any policy. *)
      match Metadata.lookup t.metadata fault.Vmm.Fault.addr with
      | None ->
        record_incident t "refused";
        Sim.Signals.Pass
      | Some record ->
        if not (take_token t) then begin
          record_incident t "escalated";
          Sim.Signals.Pass
        end
        else begin
          (match p with
          | Promote ->
            Allocators.Pkalloc.quarantine_site t.pkalloc
              (Alloc_id.to_string record.Metadata.alloc_id);
            record_incident t "promoted"
          | _ -> record_incident t "emulated");
          single_step t
        end))
  | Vmm.Fault.Pkey_violation _ | Vmm.Fault.Not_mapped | Vmm.Fault.Prot_violation ->
    Sim.Signals.Pass

let on_trap t () =
  let cpu = t.machine.Sim.Machine.cpu in
  match Hashtbl.find_opt t.saved_pkru cpu.Sim.Cpu.id with
  | Some pkru ->
    Sim.Cpu.set_pkru cpu pkru;
    Hashtbl.remove t.saved_pkru cpu.Sim.Cpu.id
  | None -> ()

let install t =
  Sim.Signals.register_segv t.machine.Sim.Machine.signals (on_segv t);
  (* Abort never single-steps, so it needs no SIGTRAP handler — and must
     not install one, to leave the machine exactly as a mitigator-less
     enforcement run would have it. *)
  if t.policy <> Abort then
    Sim.Signals.register_trap t.machine.Sim.Machine.signals (on_trap t)

let log_alloc t ~alloc_id ~addr ~size = Metadata.on_alloc t.metadata ~addr ~size ~alloc_id

let log_realloc t ~old_addr ~new_addr ~new_size =
  Metadata.on_realloc t.metadata ~old_addr ~new_addr ~new_size

let log_dealloc t ~addr = Metadata.on_dealloc t.metadata ~addr

let metadata t = t.metadata
