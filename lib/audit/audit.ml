(* Conservative pointer scan of U-accessible memory.

   "U-accessible" is decided exactly the way the simulated MMU decides
   it: a resident page whose pkey is not the trusted key and whose
   protection includes read.  Each 8-byte-aligned word on such a page is
   treated as a candidate pointer; a word that lands inside the MT
   pool's reservation AND inside a live object tracked by the supplied
   metadata table is evidence that the unsafe compartment can name — and
   with MPK off, reach — a trusted-heap object.

   Only resident pages are walked (Page_table.resident_page_list), so
   the scan never demand-materialises and never perturbs fault counts;
   words are read straight out of the page's backing bytes, so no cycles
   are charged and no checked access can fault.  Page order and word
   order are ascending, so reports are deterministic. *)

type finding = {
  f_site : string;
  f_obj_base : int;
  f_obj_size : int;
  f_ptr_addr : int;
  f_ptr_value : int;
}

type site_summary = {
  s_site : string;
  s_objects : int;
  s_bytes : int;
  s_refs : int;
}

type report = {
  scanned_pages : int;
  scanned_words : int;
  findings : finding list;
  sites : site_summary list;
}

let words_per_page = Vmm.Layout.page_size / 8

let summarise findings =
  (* Per site: distinct objects (by base), their summed sizes, and the
     number of referencing words. *)
  let by_site : (string, (int, int) Hashtbl.t * int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let objects, refs =
        match Hashtbl.find_opt by_site f.f_site with
        | Some cell -> cell
        | None ->
          let cell = (Hashtbl.create 4, ref 0) in
          Hashtbl.add by_site f.f_site cell;
          cell
      in
      Hashtbl.replace objects f.f_obj_base f.f_obj_size;
      incr refs)
    findings;
  Hashtbl.fold
    (fun site (objects, refs) acc ->
      {
        s_site = site;
        s_objects = Hashtbl.length objects;
        s_bytes = Hashtbl.fold (fun _ size sum -> sum + size) objects 0;
        s_refs = !refs;
      }
      :: acc)
    by_site []
  |> List.sort (fun a b -> compare a.s_site b.s_site)

let scan ~metadata pkalloc =
  let machine = Allocators.Pkalloc.machine pkalloc in
  let trusted_pkey = Allocators.Pkalloc.trusted_pkey pkalloc in
  let pages = Vmm.Page_table.resident_page_list machine.Sim.Machine.page_table in
  let scanned_pages = ref 0 in
  let scanned_words = ref 0 in
  let findings = ref [] in
  List.iter
    (fun (page_number, (page : Vmm.Page.t)) ->
      let u_readable =
        (not (Mpk.Pkey.equal page.Vmm.Page.pkey trusted_pkey)) && page.Vmm.Page.prot.Vmm.Prot.read
      in
      if u_readable then begin
        incr scanned_pages;
        let base = Vmm.Layout.addr_of_page page_number in
        for w = 0 to words_per_page - 1 do
          incr scanned_words;
          let value = Int64.to_int (Bytes.get_int64_le page.Vmm.Page.data (w * 8)) in
          match Allocators.Pkalloc.pool_of_addr pkalloc value with
          | Some `Trusted -> (
            match Runtime.Metadata.lookup metadata value with
            | Some r ->
              findings :=
                {
                  f_site = Runtime.Alloc_id.to_string r.Runtime.Metadata.alloc_id;
                  f_obj_base = r.Runtime.Metadata.addr;
                  f_obj_size = r.Runtime.Metadata.size;
                  f_ptr_addr = base + (w * 8);
                  f_ptr_value = value;
                }
                :: !findings
            | None -> () (* dangling or metadata-untracked: not a live leak *))
          | Some `Untrusted | None -> ()
        done
      end)
    pages;
  let findings = List.rev !findings in
  {
    scanned_pages = !scanned_pages;
    scanned_words = !scanned_words;
    findings;
    sites = summarise findings;
  }

let leak_free report = report.findings = []

let corroborate report attr =
  List.map
    (fun s ->
      let faults =
        match Telemetry.Attribution.site_stats attr s.s_site with
        | Some site -> site.Telemetry.Attribution.mpk_faults
        | None -> 0
      in
      (s.s_site, faults > 0))
    report.sites

let promote pkalloc report =
  List.filter_map
    (fun s ->
      if Allocators.Pkalloc.site_quarantined pkalloc s.s_site then None
      else begin
        Allocators.Pkalloc.quarantine_site pkalloc s.s_site;
        Some s.s_site
      end)
    report.sites

(* --- rendering --- *)

let finding_json f =
  let open Util.Json in
  Obj
    [
      ("site", String f.f_site);
      ("obj_base", Int f.f_obj_base);
      ("obj_size", Int f.f_obj_size);
      ("ptr_addr", Int f.f_ptr_addr);
      ("ptr_value", Int f.f_ptr_value);
    ]

let site_summary_json s =
  let open Util.Json in
  Obj
    [
      ("site", String s.s_site);
      ("objects", Int s.s_objects);
      ("bytes", Int s.s_bytes);
      ("refs", Int s.s_refs);
    ]

let to_json report =
  let open Util.Json in
  Obj
    [
      ("schema", String "pkru-safe.audit/1");
      ("scanned_pages", Int report.scanned_pages);
      ("scanned_words", Int report.scanned_words);
      ("leak_free", Bool (leak_free report));
      ("findings_total", Int (List.length report.findings));
      ("sites", List (List.map site_summary_json report.sites));
      ("findings", List (List.map finding_json report.findings));
    ]

let render ?attribution report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "provenance audit: %d U-accessible pages, %d words scanned\n"
       report.scanned_pages report.scanned_words);
  if leak_free report then
    Buffer.add_string buf "no MT object reachable from the unsafe compartment\n"
  else begin
    let corroborated =
      match attribution with Some attr -> corroborate report attr | None -> []
    in
    Buffer.add_string buf
      (Printf.sprintf "LEAK: %d MT object(s) reachable from U across %d site(s)\n"
         (List.fold_left (fun acc s -> acc + s.s_objects) 0 report.sites)
         (List.length report.sites));
    let header =
      [ "site"; "objects"; "bytes"; "refs" ]
      @ (if attribution = None then [] else [ "trace faults" ])
    in
    let rows =
      List.map
        (fun s ->
          [ s.s_site; string_of_int s.s_objects; string_of_int s.s_bytes; string_of_int s.s_refs ]
          @
          if attribution = None then []
          else if List.assoc_opt s.s_site corroborated = Some true then [ "corroborated" ]
          else [ "latent" ])
        report.sites
    in
    Buffer.add_string buf (Util.Table.render ~header rows)
  end;
  Buffer.contents buf

let to_metrics report =
  let open Telemetry in
  let reg = Metrics.create () in
  Metrics.set
    (Metrics.gauge reg ~help:"Resident U-accessible pages visited by the audit scan"
       "pkru_audit_scanned_pages")
    (float_of_int report.scanned_pages);
  Metrics.set
    (Metrics.gauge reg ~help:"Aligned words examined by the audit scan"
       "pkru_audit_scanned_words")
    (float_of_int report.scanned_words);
  Metrics.incr
    ~by:(List.length report.findings)
    (Metrics.counter reg ~help:"Pointer words in U-accessible memory referencing live MT objects"
       "pkru_audit_findings_total");
  List.iter
    (fun s ->
      let labels = [ ("site", s.s_site) ] in
      Metrics.set
        (Metrics.gauge reg ~help:"Distinct live MT objects reachable from U, per site" ~labels
           "pkru_audit_leaked_objects")
        (float_of_int s.s_objects);
      Metrics.set
        (Metrics.gauge reg ~help:"Bytes of live MT objects reachable from U, per site" ~labels
           "pkru_audit_leaked_bytes")
        (float_of_int s.s_bytes);
      Metrics.incr ~by:s.s_refs
        (Metrics.counter reg
           ~help:"Pointer words in U-accessible memory referencing live MT objects" ~labels
           "pkru_audit_findings_total"))
    report.sites;
  reg

let prometheus report = Telemetry.Metrics.expose (to_metrics report)
