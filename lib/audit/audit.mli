(** The cross-compartment provenance auditor.

    The runtime counterpart of the paper's offline dynamic analysis: a
    conservative pointer scan that answers, from live machine state, the
    question the PKRU-safe classification is supposed to have settled —
    {e can the unsafe compartment reach any trusted-pool object?}

    The scan walks every {e resident} page the unsafe compartment can
    read (per-page pkey ≠ trusted key, protection includes read), reads
    each 8-byte-aligned little-endian word, and flags words that point
    into a live MT-pool object (interior pointers included) as recorded
    by the supplied live-object table.  Each finding is attributed to the
    object's allocation site, so confirmed leaks can be routed to MU on
    the next run through pkalloc's quarantine/site-override table
    ({!promote}) — exactly the feedback loop of the paper's
    profile-guided placement, but driven by runtime evidence.

    The scan is a pure read over page bytes and allocator metadata: it
    charges no simulated cycles, takes no checked accesses, and never
    materialises pages, so an audited run is bit-identical (cycles,
    faults, event trace) to an unaudited one. *)

type finding = {
  f_site : string;  (** printed AllocId of the leaked object's site *)
  f_obj_base : int;  (** base address of the reachable MT object *)
  f_obj_size : int;
  f_ptr_addr : int;  (** U-accessible address holding the pointer word *)
  f_ptr_value : int;  (** the word (may point inside the object) *)
}

type site_summary = {
  s_site : string;
  s_objects : int;  (** distinct MT objects reachable from U *)
  s_bytes : int;  (** summed sizes of those objects *)
  s_refs : int;  (** pointer words referencing them *)
}

type report = {
  scanned_pages : int;  (** resident U-accessible pages visited *)
  scanned_words : int;  (** aligned words examined *)
  findings : finding list;  (** in page-then-offset scan order *)
  sites : site_summary list;  (** aggregated, sorted by site *)
}

val scan : metadata:Runtime.Metadata.t -> Allocators.Pkalloc.t -> report
(** Conservative pointer scan of the machine behind [pkalloc].  A word is
    a finding iff it falls inside the MT pool's reservation {e and}
    inside a live object tracked by [metadata] — dangling values into
    freed objects are not leaks.  Deterministic: pages are walked in
    ascending page-number order, words in ascending offset order. *)

val leak_free : report -> bool
(** No MT object reachable from U — the invariant chaos asserts. *)

val corroborate : report -> Telemetry.Attribution.t -> (string * bool) list
(** Cross-check against the flow matrix / site heat of a traced run: for
    every leaking site, whether the trace also saw MPK faults landing in
    that site's allocations.  A corroborated finding is a site the
    enforcement build already tripped over; an uncorroborated one is a
    latent leak the workload never dereferenced from U. *)

val promote : Allocators.Pkalloc.t -> report -> string list
(** Feed the evidence into pkalloc's quarantine/site-override table:
    every leaking site not already quarantined is quarantined, so its
    {e future} allocations are served from MU (live objects keep their
    pool — the provenance invariant).  Returns the sites newly
    quarantined, sorted. *)

val to_json : report -> Util.Json.t
val render : ?attribution:Telemetry.Attribution.t -> report -> string
(** Human-readable table; with [attribution], each site row carries the
    {!corroborate} verdict. *)

val to_metrics : report -> Telemetry.Metrics.t
(** [pkru_audit_*] families: scanned pages/words, findings total, and
    per-site leaked objects / bytes / refs gauges. *)

val prometheus : report -> string
