type region = {
  base : int;
  size : int;
  mutable prot : Prot.t;
  mutable pkey : Mpk.Pkey.t;
}

type t = {
  pages : (int, Page.t) Hashtbl.t; (* page number -> page *)
  mutable regions : region array; (* disjoint, sorted by base *)
  mutable demand_faults : int;
  mutable epoch : int;
}

let create () =
  { pages = Hashtbl.create 4096; regions = [||]; demand_faults = 0; epoch = 0 }

let aligned addr = Layout.page_offset addr = 0

(* Any mapping or protection change invalidates cached translations
   (the simulator's software TLB compares this epoch on every lookup). *)
let bump_epoch t = t.epoch <- t.epoch + 1

let epoch t = t.epoch

(* Regions are disjoint and sorted by base, so point and range queries
   binary-search instead of scanning the whole list — demand misses used
   to pay O(regions) per fault. *)

(* First index whose base is strictly greater than [addr]. *)
let insertion_point a addr =
  let lo = ref 0 in
  let hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid).base <= addr then lo := mid + 1 else hi := mid
  done;
  !lo

let region_index t addr =
  let a = t.regions in
  let p = insertion_point a addr in
  if p > 0 && addr < a.(p - 1).base + a.(p - 1).size then Some (p - 1) else None

let region_of t addr =
  match region_index t addr with
  | Some i -> Some t.regions.(i)
  | None -> None

let insert_region t fresh =
  let a = t.regions in
  let p = insertion_point a fresh.base in
  let n = Array.length a in
  let grown = Array.make (n + 1) fresh in
  Array.blit a 0 grown 0 p;
  Array.blit a p grown (p + 1) (n - p);
  t.regions <- grown

let reserve t ~base ~size ~prot ~pkey =
  match Prot.validate prot with
  | Error _ as e -> e
  | Ok prot ->
    if not (aligned base && aligned size) then
      Error (Printf.sprintf "reserve: unaligned range 0x%x+0x%x" base size)
    else if size <= 0 then Error "reserve: empty range"
    else
      (* Disjoint + sorted: an overlap can only involve the would-be
         neighbours of the insertion point. *)
      let a = t.regions in
      let p = insertion_point a base in
      let overlaps_pred = p > 0 && a.(p - 1).base + a.(p - 1).size > base in
      let overlaps_succ = p < Array.length a && a.(p).base < base + size in
      if overlaps_pred || overlaps_succ then
        Error (Printf.sprintf "reserve: overlap at 0x%x" base)
      else begin
        insert_region t { base; size; prot; pkey };
        bump_epoch t;
        Ok ()
      end

let materialise t region page_number =
  let page = Page.create ~prot:region.prot ~pkey:region.pkey in
  Hashtbl.replace t.pages page_number page;
  page

let lookup t addr =
  let page_number = Layout.page_of_addr addr in
  match Hashtbl.find_opt t.pages page_number with
  | Some _ as found -> found
  | None ->
    (match region_of t addr with
    | None -> None
    | Some region ->
      t.demand_faults <- t.demand_faults + 1;
      Some (materialise t region page_number))

let map_now t ~base ~size ~prot ~pkey =
  match reserve t ~base ~size ~prot ~pkey with
  | Error _ as e -> e
  | Ok () ->
    let region =
      match region_of t base with
      | Some r -> r
      | None -> assert false
    in
    let first = Layout.page_of_addr base in
    let last = Layout.page_of_addr (base + size - 1) in
    for page_number = first to last do
      ignore (materialise t region page_number)
    done;
    Ok ()

let is_reserved t addr = region_of t addr <> None

let iter_range_pages t ~base ~size f =
  let first = Layout.page_of_addr base in
  let last = Layout.page_of_addr (base + size - 1) in
  for page_number = first to last do
    match Hashtbl.find_opt t.pages page_number with
    | Some page -> f page
    | None -> ()
  done

let covering_regions t ~base ~size =
  let a = t.regions in
  let n = Array.length a in
  let start =
    let p = insertion_point a base in
    if p > 0 && a.(p - 1).base + a.(p - 1).size > base then p - 1 else p
  in
  let rec collect i acc =
    if i >= n || a.(i).base >= base + size then List.rev acc
    else collect (i + 1) (a.(i) :: acc)
  in
  collect start []

let pkey_mprotect t ~base ~size pkey =
  if not (aligned base && aligned size) then
    Error (Printf.sprintf "pkey_mprotect: unaligned range 0x%x+0x%x" base size)
  else
    match covering_regions t ~base ~size with
    | [] -> Error (Printf.sprintf "pkey_mprotect: no mapping at 0x%x" base)
    | regions ->
      List.iter (fun r -> r.pkey <- pkey) regions;
      iter_range_pages t ~base ~size (fun page -> page.Page.pkey <- pkey);
      bump_epoch t;
      Ok ()

let mprotect t ~base ~size prot =
  match Prot.validate prot with
  | Error _ as e -> e
  | Ok prot ->
    if not (aligned base && aligned size) then
      Error (Printf.sprintf "mprotect: unaligned range 0x%x+0x%x" base size)
    else
      (match covering_regions t ~base ~size with
      | [] -> Error (Printf.sprintf "mprotect: no mapping at 0x%x" base)
      | regions ->
        List.iter (fun r -> r.prot <- prot) regions;
        iter_range_pages t ~base ~size (fun page -> page.Page.prot <- prot);
        bump_epoch t;
        Ok ())

let resident_pages t = Hashtbl.length t.pages

(* Deterministic enumeration of materialised pages, sorted by page
   number.  The provenance auditor walks exactly what is resident, so a
   scan never demand-materialises pages (and never perturbs the
   demand-fault count). *)
let resident_page_list t =
  Hashtbl.fold (fun page_number page acc -> (page_number, page) :: acc) t.pages []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let demand_faults t = t.demand_faults
