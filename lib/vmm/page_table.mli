(** The simulated process page table.

    Supports the two mapping idioms pkalloc relies on:
    {ul
    {- [reserve]: one large up-front mmap with on-demand paging — pages are
       only materialised (zeroed, counted) on first touch, so reserving a
       huge MT region "has virtually no cost if those pages are never
       used" (paper §4.4);}
    {- [map_now]: eager mapping for small fixed regions such as the secret
       page in the security experiment.}}

    Pages carry MPK keys; [pkey_mprotect] retags a range, like the Linux
    syscall of the same name. *)

type t

val create : unit -> t

val reserve : t -> base:int -> size:int -> prot:Prot.t -> pkey:Mpk.Pkey.t -> (unit, string) result
(** Registers an on-demand region.  Fails on overlap with an existing
    reservation, on W^X-violating protections, or on unaligned arguments. *)

val map_now : t -> base:int -> size:int -> prot:Prot.t -> pkey:Mpk.Pkey.t -> (unit, string) result
(** [reserve] followed by materialising every page in the range. *)

val lookup : t -> int -> Page.t option
(** [lookup t addr] returns the page holding [addr], materialising it on
    demand if [addr] falls in a reservation; [None] if unmapped. *)

val is_reserved : t -> int -> bool
(** True if [addr] lies inside any reservation (mapped or not yet). *)

val pkey_mprotect : t -> base:int -> size:int -> Mpk.Pkey.t -> (unit, string) result
(** Retags all pages of an existing reservation range with a new key, and
    records the key so pages materialised later also get it. *)

val mprotect : t -> base:int -> size:int -> Prot.t -> (unit, string) result
(** Changes protection bits over a reserved range. *)

val resident_pages : t -> int
(** Number of materialised pages (the simulated RSS, in pages). *)

val resident_page_list : t -> (int * Page.t) list
(** Every materialised page as [(page number, page)], sorted by page
    number.  Pure read: never materialises, so iterating it cannot
    perturb {!demand_faults} — the property the conservative pointer
    scan of the provenance auditor relies on. *)

val demand_faults : t -> int
(** Number of pages materialised lazily, i.e. soft page faults taken. *)

val epoch : t -> int
(** The mapping epoch: a generation counter bumped by every successful
    [reserve], [map_now], [mprotect] and [pkey_mprotect].  Cached
    translations (the simulator's software TLB) record the epoch at fill
    time and revalidate against it on every lookup, so mapping or
    protection changes invalidate them without any eager flush. *)
