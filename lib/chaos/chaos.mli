(** Deterministic fault-injection harness for the enforcement pipeline.

    Every scenario perturbs a full pipeline run (profile → enforcement
    build → workload) in one specific way, drives it to completion or
    death, and then checks the invariants that must survive {e any}
    perturbation:

    {ul
    {- the secret page is never readable from U — probed through the gate
       after the run, whatever happened during it;}
    {- gate balance is restored whenever execution continued or failed
       gracefully (fail-stop deaths freeze the stack at the kill point by
       design and are exempt);}
    {- mitigation incidents are visible in telemetry
       ([pkru_mitigation_total{policy,outcome}]);}
    {- no MT-pool object is reachable from U — a conservative
       {!Audit.scan} over every U-readable resident page after the run.
       A finding at an {e in-profile} site is always a failure (profiled
       sites allocate from MU by construction); fully-profiled scenarios
       ([Pkalloc_oom], [Gate_corruption]) must come back entirely
       leak-free, while the dropped-site scenarios may legitimately
       surface out-of-profile objects (that gap {e is} the scenario);}
    {- [Abort]-policy runs die exactly as the seed does.}}

    All randomness flows from the scenario seed through {!Util.Rng}, so a
    [(scenario, policy, seed)] triple replays bit-identically. *)

type scenario =
  | Coverage_gap
      (** drop a fraction of the input profile's entries, modelling
          allocation sites never exercised during profiling (§6). *)
  | Pkalloc_oom
      (** force pkalloc to report exhaustion on the nth allocation,
          mid-workload. *)
  | Gate_corruption
      (** corrupt the PKRU value written by every gate (Garmr-style gate
          attack); the gate's own verify must catch it. *)
  | Handler_tamper
      (** unregister, shadow or reorder the SIGSEGV handler chain before
          the workload runs. *)

val all_scenarios : scenario list
val scenario_to_string : scenario -> string
val scenario_of_string : string -> scenario option

type report = {
  scenario : scenario;
  policy : Runtime.Mitigator.policy;
  seed : int;
  completed : bool;  (** the workload script ran to completion *)
  outcome : string;
      (** ["completed"], or the class of death / graceful failure
          (["unhandled-fault: ..."], ["killed: ..."], ["degraded: ..."],
          ["oom"]). *)
  incidents : int;  (** mitigator incidents during the (first) run *)
  incident_outcomes : (string * int) list;
  rerun_incidents : int option;
      (** [Coverage_gap] re-runs the workload on the same image; under
          [Promote] this second count must be strictly below [incidents]
          (quarantined sites now allocate in MU). *)
  promoted_sites : string list;
  secret_intact : bool;
  gate_balanced : bool;
  audit_leak_free : bool;
      (** the post-run {!Audit.scan} found no MT object reachable from U *)
  audit_findings : (string * int) list;
      (** leaking sites with the number of U-visible words referencing
          their objects; non-empty only when [audit_leak_free] is false *)
  invariant_failures : string list;  (** empty iff every invariant held *)
  details : string list;  (** what the injector actually did *)
  prometheus : string;
      (** the run's telemetry rendered as the Prometheus text exposition —
          [pkru_mitigation_total{policy,outcome}] carries the incident
          counts (same pipeline as the CLI's [report prom]). *)
  flight_dumps : Util.Json.t list;
      (** {!Telemetry.Flight} post-mortems recorded while the scenario
          drove the workload (deaths inside the boundary) plus one for any
          invariant failure — each self-contained and renderable with the
          [doctor] CLI.  Empty when nothing died and every invariant
          held. *)
}

val run :
  ?drop:float ->
  ?oom_at:int ->
  scenario:scenario ->
  policy:Runtime.Mitigator.policy ->
  seed:int ->
  unit ->
  report
(** One scenario under one policy.  [drop] (default 0.10) is the profile
    fraction removed by [Coverage_gap]/[Handler_tamper] — at least one
    site is always dropped, so the scenario never degenerates into a
    no-op on small profiles; [oom_at] (default 40) the 1-based
    allocation index [Pkalloc_oom] poisons. *)

val run_all : ?drop:float -> ?oom_at:int -> seed:int -> unit -> report list
(** Every scenario under every policy, seeds derived from [seed]. *)

val report_to_json : report -> Util.Json.t
val pp_report : Format.formatter -> report -> unit

(** {2 The Garmr attack battery}

    Each attack class from {!Exploit.Garmr} is run twice on the same
    seed — defense off, then on — and both halves are adjudicated:

    {ul
    {- {b undefended must leak}: an attack the defense-off run silently
       stops proves nothing about the defense (the battery must have
       teeth);}
    {- {b defended must be defeated}: nothing leaks, the attacker is
       killed or refused, at least one flight dump names the attack at
       the point of kill, and the kill/refusal message is attributed to
       a hart;}
    {- benign victim programs complete in both halves.}}

    Violations are seed-tagged invariant failures; the CLI's
    [chaos --attacks] exits non-zero on any. *)

type attack_report = {
  ar_attack : Exploit.Garmr.attack;
  ar_seed : int;
  ar_harts : int;
  ar_undefended : Exploit.Garmr.result;
  ar_defended : Exploit.Garmr.result;
  ar_invariant_failures : string list;  (** empty iff every invariant held *)
  ar_flight_dumps : Util.Json.t list;
      (** both halves' post-mortems, undefended first *)
}

val run_attack :
  ?harts:int -> attack:Exploit.Garmr.attack -> seed:int -> unit -> attack_report
(** One attack class, undefended then defended, on [harts] (default 2)
    concurrently scheduled programs. *)

val run_attacks :
  ?harts:int -> ?attacks:Exploit.Garmr.attack list -> seed:int -> unit -> attack_report list
(** The full battery (default {!Exploit.Garmr.all_attacks}); per-attack
    seeds are derived from [seed]. *)

val attack_report_to_json : attack_report -> Util.Json.t
val pp_attack_report : Format.formatter -> attack_report -> unit
