type scenario =
  | Coverage_gap
  | Pkalloc_oom
  | Gate_corruption
  | Handler_tamper

let all_scenarios = [ Coverage_gap; Pkalloc_oom; Gate_corruption; Handler_tamper ]

let scenario_to_string = function
  | Coverage_gap -> "coverage-gap"
  | Pkalloc_oom -> "pkalloc-oom"
  | Gate_corruption -> "gate-corruption"
  | Handler_tamper -> "handler-tamper"

let scenario_of_string = function
  | "coverage-gap" -> Some Coverage_gap
  | "pkalloc-oom" -> Some Pkalloc_oom
  | "gate-corruption" -> Some Gate_corruption
  | "handler-tamper" -> Some Handler_tamper
  | _ -> None

type report = {
  scenario : scenario;
  policy : Runtime.Mitigator.policy;
  seed : int;
  completed : bool;
  outcome : string;
  incidents : int;
  incident_outcomes : (string * int) list;
  rerun_incidents : int option;
  promoted_sites : string list;
  secret_intact : bool;
  gate_balanced : bool;
  audit_leak_free : bool;
  audit_findings : (string * int) list; (* leaking site -> referencing words *)
  invariant_failures : string list;
  details : string list;
  prometheus : string;
  flight_dumps : Util.Json.t list; (* post-mortems recorded during the scenario *)
}

let ok_exn = function
  | Ok v -> v
  | Error msg -> failwith ("Chaos: " ^ msg)

(* Every invariant-failure message carries the harness seed, so a failing
   CI log alone is enough to reproduce the run (chaos --scenario ...
   --seed N). *)
let tag_seed ~seed msg = Printf.sprintf "%s [seed %d]" msg seed

(* The injected workload: the gate-bound DOM benchmark — its binding calls
   cross the boundary in a tight loop, so a single dropped profile entry
   is exercised early and often. *)
let workload =
  Workloads.Bench_def.bench
    ~page:(Workloads.Dom_scripts.page ~rows:8)
    "gate-bound"
    (Workloads.Dom_scripts.dom_attr ~iters:120)

let profile_workload () =
  let env =
    ok_exn (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling))
  in
  let browser = Browser.create ~engine_seed:workload.Workloads.Bench_def.engine_seed env in
  Browser.load_page browser workload.Workloads.Bench_def.page;
  ignore (Browser.exec_script browser workload.Workloads.Bench_def.script);
  Pkru_safe.Env.recorded_profile env

let make_env ~profile ~policy =
  ok_exn
    (Pkru_safe.Env.create ~profile
       (Pkru_safe.Config.make ~mitigation:policy Pkru_safe.Config.Mpk))

(* Drives one workload execution and classifies how it ended.  Graceful
   ends (completion, Degraded, OOM) propagate through the gates'
   Fun.protect, so the compartment stack must be balanced afterwards;
   fail-stop ends (unhandled fault, kill) freeze state at the death
   point by design. *)
type ending =
  | Completed
  | Unhandled_fault of string
  | Killed of string
  | Degraded_out of string
  | Oom

let graceful = function
  | Completed | Degraded_out _ | Oom -> true
  | Unhandled_fault _ | Killed _ -> false

let ending_to_string = function
  | Completed -> "completed"
  | Unhandled_fault msg -> "unhandled-fault: " ^ msg
  | Killed msg -> "killed: " ^ msg
  | Degraded_out msg -> "degraded: " ^ msg
  | Oom -> "oom"

let drive f =
  match f () with
  | _ -> Completed
  | exception Vmm.Fault.Unhandled fault -> Unhandled_fault (Vmm.Fault.to_string fault)
  | exception Sim.Signals.Process_killed msg -> Killed msg
  | exception Runtime.Mitigator.Degraded fault ->
    Degraded_out (Vmm.Fault.to_string fault)
  | exception Out_of_memory -> Oom

(* Invariant: the secret page is unreadable from U.  Probed through the
   real boundary — an FFI call that attempts the read with the untrusted
   view — and cross-checked with a privileged read of the planted value.
   Every legal way for the probe to end is a denial: an unhandled fault,
   a kill, or a Degraded failure; only a normal return means the wall has
   a hole. *)
let secret_unreadable_from_u env =
  let machine = Pkru_safe.Env.machine env in
  let planted =
    Sim.Machine.priv_read_u64 machine Vmm.Layout.secret_addr = Browser.secret_value
  in
  let denied =
    match
      Pkru_safe.Env.ffi_call env (fun () ->
          Sim.Machine.read_u64 machine Vmm.Layout.secret_addr)
    with
    | _ -> false
    | exception Vmm.Fault.Unhandled _ -> true
    | exception Sim.Signals.Process_killed _ -> true
    | exception Runtime.Mitigator.Degraded _ -> true
  in
  planted && denied

let gate_depth env = Runtime.Comp_stack.depth (Runtime.Gate.stack (Pkru_safe.Env.gate env))

(* Every scenario drives its workload with the flight recorder armed: a
   death inside the boundary (gate verify kill, unhandled fault, trap with
   no handler) snapshots the scenario's own sink — recent events, the
   gate tail, and the causal span chain that was open at the death. *)
let flight_for env sink =
  let recorder = Telemetry.Flight.create () in
  Telemetry.Flight.attach_sink recorder sink;
  Telemetry.Flight.set_context recorder (Pkru_safe.Env.flight_context env);
  recorder

(* The injection window is itself a causal span, so everything the
   workload does — phases, crossings, incidents — nests under it. *)
let chaos_span env sink name f =
  let machine = Pkru_safe.Env.machine env in
  let cpu = machine.Sim.Machine.cpu.Sim.Cpu.id in
  let id =
    Telemetry.Sink.span_enter sink ~ts:(Sim.Machine.cycles machine) ~cpu
      ~kind:Telemetry.Span.Chaos name
  in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Sink.span_exit sink ~ts:(Sim.Machine.cycles machine) ~cpu ~id ())
    f

let driven env sink recorder name f =
  Telemetry.Flight.with_recorder recorder (fun () ->
      Telemetry.Sink.with_sink sink (fun () -> chaos_span env sink name f))

let mitigator_exn env =
  match Pkru_safe.Env.mitigator env with
  | Some m -> m
  | None -> failwith "Chaos: enforcement env has no mitigator"

(* Common post-mortem: snapshot mitigator accounting (before the secret
   probe, which itself is adjudicated), then check invariants.  Any
   invariant failure records one more flight dump so a failing chaos run
   always leaves a machine-readable post-mortem behind. *)
let finish ~scenario ~policy ~seed ~ending ~rerun_incidents ~details ~sink ~recorder ~profile
    env =
  let m = mitigator_exn env in
  let incidents = Runtime.Mitigator.incidents m in
  let incident_outcomes = Runtime.Mitigator.outcome_counts m in
  let promoted_sites = Runtime.Mitigator.promoted_sites m in
  let gate_balanced = gate_depth env = 0 in
  let secret_intact = secret_unreadable_from_u env in
  (* The provenance audit, as a first-class chaos property: conservatively
     scan every U-readable resident page for pointers into live MT
     objects.  A profiled site allocates from MU by construction, so a
     finding at an in-profile site is impossible-by-design and always an
     invariant failure; dropped-site scenarios may legitimately leave
     out-of-profile objects in MT (that gap is the scenario), but the
     fully-profiled scenarios must come back leak-free. *)
  let audit =
    Audit.scan ~metadata:(Runtime.Mitigator.metadata m) (Pkru_safe.Env.pkalloc env)
  in
  let audit_leak_free = Audit.leak_free audit in
  let audit_findings =
    List.map (fun s -> (s.Audit.s_site, s.Audit.s_refs)) audit.Audit.sites
  in
  let in_profile site =
    List.exists
      (fun id -> String.equal (Runtime.Alloc_id.to_string id) site)
      (Runtime.Profile.sites profile)
  in
  let prometheus = Telemetry.Export.prometheus sink in
  let telemetry_incidents =
    List.fold_left
      (fun acc (name, n) ->
        if String.length name > 11 && String.sub name 0 11 = "mitigation." then acc + n
        else acc)
      0 (Telemetry.Sink.counters sink)
  in
  let failures = ref [] in
  let fail msg = failures := tag_seed ~seed msg :: !failures in
  if not secret_intact then fail "secret readable from U";
  if graceful ending && not gate_balanced then
    fail (Printf.sprintf "gate stack unbalanced (depth %d) after graceful end" (gate_depth env));
  if telemetry_incidents <> incidents then
    fail
      (Printf.sprintf "telemetry mitigation counters (%d) != mitigator incidents (%d)"
         telemetry_incidents incidents);
  (match policy with
  | Runtime.Mitigator.Abort when incidents <> 0 ->
    fail "Abort policy did accounting (must stay bit-identical to seed)"
  | _ -> ());
  List.iter
    (fun (site, refs) ->
      if in_profile site then
        fail
          (Printf.sprintf
             "audit: in-profile site %s has MT objects reachable from U (%d refs)" site refs))
    audit_findings;
  (match scenario with
  | Pkalloc_oom | Gate_corruption ->
    (* The full profile was supplied, so every boundary-crossing site
       allocates from MU: nothing in MT may be reachable from U. *)
    if not audit_leak_free then
      fail
        (Printf.sprintf "audit: fully-profiled run leaks MT objects to U (%d findings)"
           (List.length audit.Audit.findings))
  | Coverage_gap | Handler_tamper -> ());
  if !failures <> [] then
    ignore
      (Telemetry.Flight.record recorder ~reason:"chaos invariant failure"
         ~details:
           [
             ("scenario", Util.Json.String (scenario_to_string scenario));
             ("policy", Util.Json.String (Runtime.Mitigator.policy_to_string policy));
             ( "failures",
               Util.Json.List (List.map (fun s -> Util.Json.String s) (List.rev !failures)) );
           ]);
  {
    scenario;
    policy;
    seed;
    completed = ending = Completed;
    outcome = ending_to_string ending;
    incidents;
    incident_outcomes;
    rerun_incidents;
    promoted_sites;
    secret_intact;
    gate_balanced;
    audit_leak_free;
    audit_findings;
    invariant_failures = List.rev !failures;
    details;
    prometheus;
    flight_dumps = Telemetry.Flight.dumps recorder;
  }

let run_script browser =
  drive (fun () -> ignore (Browser.exec_script browser workload.Workloads.Bench_def.script))

(* Remove a guaranteed number of sites: ceil(drop * cardinal), at least
   one.  Profile.subset's per-site Bernoulli draw can keep everything on
   small profiles, which would make the scenario a no-op. *)
let drop_sites full ~drop ~rng =
  let sites = Array.of_list (Runtime.Profile.sites full) in
  let n = Array.length sites in
  let to_drop = min n (max 1 (int_of_float (ceil (drop *. float_of_int n)))) in
  Util.Rng.shuffle rng sites;
  let kept = Array.sub sites to_drop (n - to_drop) in
  let profile = Runtime.Profile.create () in
  Array.iter (Runtime.Profile.record profile) kept;
  profile

let coverage_gap ~drop ~policy ~seed =
  let full = profile_workload () in
  let rng = Util.Rng.create seed in
  let profile = drop_sites full ~drop ~rng in
  let dropped = Runtime.Profile.cardinal full - Runtime.Profile.cardinal profile in
  let env = make_env ~profile ~policy in
  let browser = Browser.create ~engine_seed:workload.Workloads.Bench_def.engine_seed env in
  Browser.load_page browser workload.Workloads.Bench_def.page;
  let sink = Telemetry.Sink.create () in
  let recorder = flight_for env sink in
  let ending =
    driven env sink recorder "chaos:coverage-gap" (fun () -> run_script browser)
  in
  let m = mitigator_exn env in
  let first_incidents = Runtime.Mitigator.incidents m in
  (* Second run of the same workload on the same image: Promote's
     quarantine must have moved the hot sites to MU, so it faults
     strictly less.  Only meaningful when the first run survived. *)
  let rerun_incidents =
    if ending = Completed then begin
      let ending2 =
        driven env sink recorder "chaos:coverage-gap:rerun" (fun () -> run_script browser)
      in
      match ending2 with
      | Completed -> Some (Runtime.Mitigator.incidents m - first_incidents)
      | _ -> Some max_int (* a surviving policy must keep surviving *)
    end
    else None
  in
  let details =
    [
      Printf.sprintf "profile entries: %d of %d (dropped %d, fraction %.2f)"
        (Runtime.Profile.cardinal profile)
        (Runtime.Profile.cardinal full)
        dropped drop;
    ]
  in
  finish ~scenario:Coverage_gap ~policy ~seed ~ending ~rerun_incidents ~details ~sink ~recorder
    ~profile env

let pkalloc_oom ~oom_at ~policy ~seed =
  let profile = profile_workload () in
  let env = make_env ~profile ~policy in
  let browser = Browser.create ~engine_seed:workload.Workloads.Bench_def.engine_seed env in
  Browser.load_page browser workload.Workloads.Bench_def.page;
  let rng = Util.Rng.create seed in
  let pool = if Util.Rng.bool rng then `Trusted else `Untrusted in
  let pkalloc = Pkru_safe.Env.pkalloc env in
  Allocators.Pkalloc.fail_nth_alloc pkalloc pool oom_at;
  let sink = Telemetry.Sink.create () in
  let recorder = flight_for env sink in
  let ending = driven env sink recorder "chaos:pkalloc-oom" (fun () -> run_script browser) in
  (* Exhaustion must be a one-shot, leaving consistent books: the
     failpoint disarms after firing and both pools' counters still
     balance. *)
  let stats_consistent (s : Allocators.Alloc_stats.t) =
    s.Allocators.Alloc_stats.allocs >= s.Allocators.Alloc_stats.frees
    && s.Allocators.Alloc_stats.bytes_allocated >= s.Allocators.Alloc_stats.bytes_freed
    && Allocators.Alloc_stats.live_bytes s >= 0
  in
  let books_ok =
    stats_consistent (Allocators.Pkalloc.trusted_stats pkalloc)
    && stats_consistent (Allocators.Pkalloc.untrusted_stats pkalloc)
  in
  let recovered =
    match Allocators.Pkalloc.alloc_untrusted pkalloc 16 with
    | Some addr ->
      Allocators.Pkalloc.dealloc pkalloc addr;
      true
    | None -> false
  in
  let details =
    [
      Printf.sprintf "poisoned pool: %s, allocation #%d"
        (match pool with `Trusted -> "MT" | `Untrusted -> "MU")
        oom_at;
      Printf.sprintf "alloc-stats consistent: %b; allocator recovered: %b" books_ok recovered;
    ]
  in
  let report =
    finish ~scenario:Pkalloc_oom ~policy ~seed ~ending ~rerun_incidents:None ~details ~sink
      ~recorder ~profile env
  in
  let extra = ref [] in
  let fail msg = extra := tag_seed ~seed msg :: !extra in
  if not books_ok then fail "alloc stats inconsistent after forced OOM";
  if not recovered then fail "allocator did not recover after one-shot OOM";
  (match ending with
  | Oom | Completed -> ()
  | _ -> fail "forced OOM ended in a fault instead of Out_of_memory");
  { report with invariant_failures = report.invariant_failures @ List.rev !extra }

let gate_corruption ~policy ~seed =
  let profile = profile_workload () in
  let env = make_env ~profile ~policy in
  let browser = Browser.create ~engine_seed:workload.Workloads.Bench_def.engine_seed env in
  Browser.load_page browser workload.Workloads.Bench_def.page;
  let rng = Util.Rng.create seed in
  let variant, corrupt =
    if Util.Rng.bool rng then
      ( "grant-all (PKRU forced permissive)",
        fun (_ : Mpk.Pkru.t) -> Mpk.Pkru.all_enabled )
    else begin
      let bit = Util.Rng.int rng 32 in
      ( Printf.sprintf "bit-flip (PKRU bit %d)" bit,
        fun target -> Mpk.Pkru.of_int (Mpk.Pkru.to_int target lxor (1 lsl bit)) )
    end
  in
  let sink = Telemetry.Sink.create () in
  let recorder = flight_for env sink in
  let ending =
    Fun.protect
      ~finally:(fun () -> Runtime.Gate.chaos_pkru_corruptor := None)
      (fun () ->
        Runtime.Gate.chaos_pkru_corruptor := Some corrupt;
        driven env sink recorder ("chaos:gate-corruption:" ^ variant) (fun () ->
            run_script browser))
  in
  let details = [ "corruption: " ^ variant ] in
  let report =
    finish ~scenario:Gate_corruption ~policy ~seed ~ending ~rerun_incidents:None ~details ~sink
      ~recorder ~profile env
  in
  (* Any value-changing corruption must be caught by the gate's own
     verifying RDPKRU — the run may never complete with a corrupted
     PKRU in force. *)
  let extra =
    match ending with
    | Killed _ -> []
    | e ->
      [
        tag_seed ~seed
          (Printf.sprintf "gate corruption was not caught by the gate verify (ended: %s)"
             (ending_to_string e));
      ]
  in
  { report with invariant_failures = report.invariant_failures @ extra }

let handler_tamper ~drop ~policy ~seed =
  let full = profile_workload () in
  let rng = Util.Rng.create seed in
  let profile = drop_sites full ~drop ~rng in
  let env = make_env ~profile ~policy in
  let browser = Browser.create ~engine_seed:workload.Workloads.Bench_def.engine_seed env in
  Browser.load_page browser workload.Workloads.Bench_def.page;
  let signals = (Pkru_safe.Env.machine env).Sim.Machine.signals in
  let action, expect_fail_closed =
    match Util.Rng.int rng 3 with
    | 0 ->
      (* Drop the mitigator from the chain entirely: the next MPK fault
         finds no handler — leniency must fail closed, not open. *)
      ignore (Sim.Signals.unregister_segv signals);
      ("unregister-mitigator", true)
    | 1 ->
      (* Shadow it with a benign handler that passes every fault: the
         chain must still reach the mitigator in reverse registration
         order. *)
      Sim.Signals.register_segv signals (fun _ -> Sim.Signals.Pass);
      ("shadow-with-pass-handler", false)
    | _ ->
      Sim.Signals.register_segv signals (fun _ -> Sim.Signals.Pass);
      Sim.Signals.reorder_segv signals List.rev;
      ("reorder-chain (benign handler moved behind mitigator)", false)
  in
  let sink = Telemetry.Sink.create () in
  let recorder = flight_for env sink in
  let ending =
    driven env sink recorder ("chaos:handler-tamper:" ^ action) (fun () -> run_script browser)
  in
  let details =
    [
      "tamper: " ^ action;
      Printf.sprintf "handler chain depth after tamper: %d"
        (Sim.Signals.segv_handler_count signals);
    ]
  in
  let report =
    finish ~scenario:Handler_tamper ~policy ~seed ~ending ~rerun_incidents:None ~details ~sink
      ~recorder ~profile env
  in
  let extra =
    if expect_fail_closed && report.completed then
      [ tag_seed ~seed "workload survived with the mitigator unregistered (fail-open)" ]
    else []
  in
  { report with invariant_failures = report.invariant_failures @ extra }

let run ?(drop = 0.10) ?(oom_at = 40) ~scenario ~policy ~seed () =
  match scenario with
  | Coverage_gap -> coverage_gap ~drop ~policy ~seed
  | Pkalloc_oom -> pkalloc_oom ~oom_at ~policy ~seed
  | Gate_corruption -> gate_corruption ~policy ~seed
  | Handler_tamper -> handler_tamper ~drop ~policy ~seed

let run_all ?drop ?oom_at ~seed () =
  List.concat_map
    (fun scenario ->
      List.mapi
        (fun i policy ->
          let derived = seed + (1000 * i) + (17 * String.length (scenario_to_string scenario)) in
          run ?drop ?oom_at ~scenario ~policy ~seed:derived ())
        Runtime.Mitigator.all_policies)
    all_scenarios

(* --- The Garmr attack battery (defended vs undefended) -------------------

   For each attack class the battery runs the same seeded scenario twice
   — defense off, defense on — and adjudicates both halves:

   - undefended, the attack MUST leak the planted secret (an attack the
     defense-off run silently stops proves nothing about the defense);
   - defended, nothing may leak AND the attacker must be killed or
     refused, with at least one flight dump naming the attack, and the
     kill/refusal attributed to a hart.

   Any violation is an invariant failure (seed-tagged, like every chaos
   failure), which the CLI turns into a non-zero exit. *)

type attack_report = {
  ar_attack : Exploit.Garmr.attack;
  ar_seed : int;
  ar_harts : int;
  ar_undefended : Exploit.Garmr.result;
  ar_defended : Exploit.Garmr.result;
  ar_invariant_failures : string list;
  ar_flight_dumps : Util.Json.t list; (* both halves, undefended first *)
}

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let run_attack ?(harts = 2) ~attack ~seed () =
  let undefended = Exploit.Garmr.run ~harts ~attack ~defended:false ~seed () in
  let defended = Exploit.Garmr.run ~harts ~attack ~defended:true ~seed () in
  let name = Exploit.Garmr.attack_to_string attack in
  let defense = Exploit.Garmr.defense_name attack in
  let failures = ref [] in
  let fail msg = failures := tag_seed ~seed msg :: !failures in
  if not (Exploit.Garmr.succeeded undefended) then
    fail
      (Printf.sprintf "undefended %s was silently stopped (attacker: %s)" name
         undefended.Exploit.Garmr.g_attacker_outcome);
  if Exploit.Garmr.succeeded defended then
    fail (Printf.sprintf "defense %s failed: %s leaked the secret" defense name);
  if not (Exploit.Garmr.defeated defended) then
    fail
      (Printf.sprintf "defended %s neither killed nor refused (attacker: %s)" name
         defended.Exploit.Garmr.g_attacker_outcome);
  (* The point-of-kill post-mortem must name the attack... *)
  let named_dump =
    List.exists
      (fun dump -> contains ~sub:name (Util.Json.to_string dump))
      defended.Exploit.Garmr.g_flight_dumps
  in
  if Exploit.Garmr.defeated defended && not named_dump then
    fail (Printf.sprintf "no flight dump names %s at the point of kill" name);
  (* ... and the kill or refusal must be attributed to a hart. *)
  let hart_attributed =
    (defended.Exploit.Garmr.g_killed
    && contains ~sub:"(hart" defended.Exploit.Garmr.g_attacker_outcome)
    ||
    match defended.Exploit.Garmr.g_refusal with
    | Some msg -> contains ~sub:"(hart" msg
    | None -> false
  in
  if Exploit.Garmr.defeated defended && not hart_attributed then
    fail (Printf.sprintf "defended %s kill/refusal not attributed to a hart" name);
  (* Benign victims are never collateral damage, defended or not. *)
  List.iter
    (fun (half, r) ->
      List.iteri
        (fun i outcome ->
          if outcome <> "completed" then
            fail (Printf.sprintf "%s %s: victim-%d did not complete (%s)" half name i outcome))
        r.Exploit.Garmr.g_victim_outcomes)
    [ ("undefended", undefended); ("defended", defended) ];
  {
    ar_attack = attack;
    ar_seed = seed;
    ar_harts = harts;
    ar_undefended = undefended;
    ar_defended = defended;
    ar_invariant_failures = List.rev !failures;
    ar_flight_dumps =
      undefended.Exploit.Garmr.g_flight_dumps @ defended.Exploit.Garmr.g_flight_dumps;
  }

let run_attacks ?harts ?(attacks = Exploit.Garmr.all_attacks) ~seed () =
  List.mapi (fun i attack -> run_attack ?harts ~attack ~seed:(seed + (101 * i)) ()) attacks

let attack_report_to_json r =
  let open Util.Json in
  Obj
    [
      ("attack", String (Exploit.Garmr.attack_to_string r.ar_attack));
      ("defense", String (Exploit.Garmr.defense_name r.ar_attack));
      ("seed", Int r.ar_seed);
      ("harts", Int r.ar_harts);
      ("undefended", Exploit.Garmr.result_to_json r.ar_undefended);
      ("defended", Exploit.Garmr.result_to_json r.ar_defended);
      ("invariant_failures", List (List.map (fun s -> String s) r.ar_invariant_failures));
      ("flight_dumps", List r.ar_flight_dumps);
    ]

let pp_attack_report fmt r =
  let half label (g : Exploit.Garmr.result) =
    Format.fprintf fmt "@.    %-10s leaked=%-6s killed=%-5b refused=%-5b %s" label
      (match g.Exploit.Garmr.g_leaked with
      | Some v -> string_of_int v
      | None -> "none")
      g.Exploit.Garmr.g_killed g.Exploit.Garmr.g_refused g.Exploit.Garmr.g_attacker_outcome
  in
  Format.fprintf fmt "%-18s defense=%-15s seed=%-6d harts=%d %s"
    (Exploit.Garmr.attack_to_string r.ar_attack)
    (Exploit.Garmr.defense_name r.ar_attack)
    r.ar_seed r.ar_harts
    (if r.ar_invariant_failures = [] then "invariants ok"
     else "INVARIANT FAILURES: " ^ String.concat "; " r.ar_invariant_failures);
  half "undefended" r.ar_undefended;
  half "defended" r.ar_defended

let report_to_json r =
  let open Util.Json in
  Obj
    [
      ("scenario", String (scenario_to_string r.scenario));
      ("policy", String (Runtime.Mitigator.policy_to_string r.policy));
      ("seed", Int r.seed);
      ("completed", Bool r.completed);
      ("outcome", String r.outcome);
      ("incidents", Int r.incidents);
      ( "incident_outcomes",
        Obj (List.map (fun (name, n) -> (name, Int n)) r.incident_outcomes) );
      ( "rerun_incidents",
        match r.rerun_incidents with Some n -> Int n | None -> Null );
      ("promoted_sites", List (List.map (fun s -> String s) r.promoted_sites));
      ("secret_intact", Bool r.secret_intact);
      ("gate_balanced", Bool r.gate_balanced);
      ("audit_leak_free", Bool r.audit_leak_free);
      ( "audit_findings",
        Obj (List.map (fun (site, refs) -> (site, Int refs)) r.audit_findings) );
      ("invariant_failures", List (List.map (fun s -> String s) r.invariant_failures));
      ("details", List (List.map (fun s -> String s) r.details));
      ("flight_dumps", List r.flight_dumps);
    ]

let pp_report fmt r =
  Format.fprintf fmt "%-15s %-8s seed=%-6d %-9s incidents=%-3d %s"
    (scenario_to_string r.scenario)
    (Runtime.Mitigator.policy_to_string r.policy)
    r.seed
    (if r.completed then "completed" else "died")
    r.incidents
    (if r.invariant_failures = [] then "invariants ok"
     else "INVARIANT FAILURES: " ^ String.concat "; " r.invariant_failures);
  (match r.rerun_incidents with
  | Some n -> Format.fprintf fmt " rerun-incidents=%d" n
  | None -> ());
  if not r.audit_leak_free then
    Format.fprintf fmt " audit-findings=%d"
      (List.fold_left (fun acc (_, refs) -> acc + refs) 0 r.audit_findings);
  if r.flight_dumps <> [] then
    Format.fprintf fmt " flight-dumps=%d" (List.length r.flight_dumps);
  if r.outcome <> "completed" then Format.fprintf fmt "@.    %s" r.outcome
