(* The analysis tier over a sink's event trace: fold the events into
   per-allocation-site heat (who allocates, how much is live, which sites
   take MPK faults) and a compartment flow matrix (crossings per direction,
   cycles spent per compartment).  This is pure post-processing — it runs
   after the measured execution, over the trace window the ring kept. *)

let unattributed = "(unattributed)"

type site = {
  site : string; (* AllocId label, or {!unattributed} *)
  mutable allocs : int;
  mutable frees : int;
  mutable bytes_allocated : int;
  mutable live_bytes : int;
  mutable peak_live_bytes : int;
  mutable mt_bytes : int; (* bytes served from the trusted pool *)
  mutable mu_bytes : int; (* bytes served from the shared pool *)
  mutable mpk_faults : int; (* faults landing inside a live allocation of this site *)
}

type flow = {
  mutable t_to_u : int; (* gate entries into U *)
  mutable u_to_t : int; (* reverse-gate entries into T (callbacks) *)
  mutable crossings : int; (* every gate side *)
  mutable max_nesting : int; (* deepest gate nesting seen in the trace *)
  mutable cycles_trusted : int;
  mutable cycles_untrusted : int;
  mutable allocs_mt : int;
  mutable allocs_mu : int;
  mutable mpk_faults : int;
}

type t = {
  sites : (string, site) Hashtbl.t;
  flow : flow;
  mutable unmatched_frees : int; (* frees whose alloc fell outside the trace window *)
  mutable total_cycles : int;
  events_folded : int;
  events_dropped : int;
}

let fresh_site key =
  {
    site = key;
    allocs = 0;
    frees = 0;
    bytes_allocated = 0;
    live_bytes = 0;
    peak_live_bytes = 0;
    mt_bytes = 0;
    mu_bytes = 0;
    mpk_faults = 0;
  }

let find_site t key =
  match Hashtbl.find_opt t.sites key with
  | Some s -> s
  | None ->
    let s = fresh_site key in
    Hashtbl.add t.sites key s;
    s

(* Attribute an address to the live allocation containing it: exact base
   match first, interval scan otherwise (faults are rare; the scan never
   runs on the allocation path). *)
let containing live addr =
  match Hashtbl.find_opt live addr with
  | Some (key, size) -> Some (key, addr, size)
  | None ->
    Hashtbl.fold
      (fun base (key, size) acc ->
        match acc with
        | Some _ -> acc
        | None -> if base <= addr && addr < base + size then Some (key, base, size) else None)
      live None

let of_sink ?total_cycles sink =
  let events = Sink.events sink in
  let t =
    {
      sites = Hashtbl.create 64;
      flow =
        {
          t_to_u = 0;
          u_to_t = 0;
          crossings = 0;
          max_nesting = 0;
          cycles_trusted = 0;
          cycles_untrusted = 0;
          allocs_mt = 0;
          allocs_mu = 0;
          mpk_faults = 0;
        };
      unmatched_frees = 0;
      total_cycles = 0;
      events_folded = List.length events;
      events_dropped = Sink.dropped sink;
    }
  in
  let live : (int, string * int) Hashtbl.t = Hashtbl.create 256 in
  (* Compartment-cycle accounting: execution starts in T; each gate event
     closes the interval since the previous event and charges it to the
     compartment that was running. *)
  let current = ref Event.Trusted in
  let stack = ref [] in
  let last_ts = ref 0 in
  let charge_until ts =
    let elapsed = max 0 (ts - !last_ts) in
    (match !current with
    | Event.Trusted -> t.flow.cycles_trusted <- t.flow.cycles_trusted + elapsed
    | Event.Untrusted -> t.flow.cycles_untrusted <- t.flow.cycles_untrusted + elapsed);
    last_ts := max !last_ts ts
  in
  List.iter
    (fun (r : Event.record) ->
      match r.Event.event with
      | Event.Gate_enter { target } ->
        charge_until r.Event.ts;
        t.flow.crossings <- t.flow.crossings + 1;
        (match target with
        | Event.Untrusted -> t.flow.t_to_u <- t.flow.t_to_u + 1
        | Event.Trusted -> t.flow.u_to_t <- t.flow.u_to_t + 1);
        stack := !current :: !stack;
        if List.length !stack > t.flow.max_nesting then t.flow.max_nesting <- List.length !stack;
        current := target
      | Event.Gate_exit { target } ->
        charge_until r.Event.ts;
        t.flow.crossings <- t.flow.crossings + 1;
        (match !stack with
        | previous :: rest ->
          stack := rest;
          current := previous
        | [] ->
          (* The matching enter was evicted from the ring; the exit still
             tells us which compartment we were leaving. *)
          current :=
            (match target with Event.Untrusted -> Event.Trusted | Event.Trusted -> Event.Untrusted))
      | Event.Alloc { compartment; site; addr; size } ->
        let key = Option.value site ~default:unattributed in
        let s = find_site t key in
        s.allocs <- s.allocs + 1;
        s.bytes_allocated <- s.bytes_allocated + size;
        s.live_bytes <- s.live_bytes + size;
        if s.live_bytes > s.peak_live_bytes then s.peak_live_bytes <- s.live_bytes;
        (match compartment with
        | Event.Trusted ->
          s.mt_bytes <- s.mt_bytes + size;
          t.flow.allocs_mt <- t.flow.allocs_mt + 1
        | Event.Untrusted ->
          s.mu_bytes <- s.mu_bytes + size;
          t.flow.allocs_mu <- t.flow.allocs_mu + 1);
        Hashtbl.replace live addr (key, size)
      | Event.Free { addr; _ } -> (
        match Hashtbl.find_opt live addr with
        | Some (key, size) ->
          Hashtbl.remove live addr;
          let s = find_site t key in
          s.frees <- s.frees + 1;
          s.live_bytes <- s.live_bytes - size
        | None -> t.unmatched_frees <- t.unmatched_frees + 1)
      | Event.Mpk_fault { addr; _ } -> (
        t.flow.mpk_faults <- t.flow.mpk_faults + 1;
        match containing live addr with
        | Some (key, _, _) ->
          let s = find_site t key in
          s.mpk_faults <- s.mpk_faults + 1
        | None -> ())
      | Event.Wrpkru _ | Event.Signal_dispatch _ | Event.Page_fault _ | Event.Thread_switch _ ->
        ())
    events;
  (* Close the final interval: up to the caller-supplied run length when
     known, otherwise to the last event seen. *)
  (match total_cycles with
  | Some total -> charge_until total
  | None -> ());
  t.total_cycles <- t.flow.cycles_trusted + t.flow.cycles_untrusted;
  t

let flow t = t.flow
let unmatched_frees t = t.unmatched_frees
let total_cycles t = t.total_cycles

let sites t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.sites []
  |> List.sort (fun a b ->
         match compare b.bytes_allocated a.bytes_allocated with
         | 0 -> compare a.site b.site
         | c -> c)

let site_stats t key = Hashtbl.find_opt t.sites key

let pool_of_site s =
  match (s.mt_bytes > 0, s.mu_bytes > 0) with
  | true, false -> "MT"
  | false, true -> "MU"
  | true, true -> "MT+MU"
  | false, false -> "-"

let compartment_cycle_share t =
  let total = t.flow.cycles_trusted + t.flow.cycles_untrusted in
  if total = 0 then (0.0, 0.0)
  else
    ( float_of_int t.flow.cycles_trusted /. float_of_int total,
      float_of_int t.flow.cycles_untrusted /. float_of_int total )

(* --- JSON --- *)

let site_json s =
  let open Util.Json in
  Obj
    [
      ("site", String s.site);
      ("pool", String (pool_of_site s));
      ("allocs", Int s.allocs);
      ("frees", Int s.frees);
      ("bytes_allocated", Int s.bytes_allocated);
      ("live_bytes", Int s.live_bytes);
      ("peak_live_bytes", Int s.peak_live_bytes);
      ("mt_bytes", Int s.mt_bytes);
      ("mu_bytes", Int s.mu_bytes);
      ("mpk_faults", Int s.mpk_faults);
    ]

let site_heat_json ?limit t =
  let all = sites t in
  let kept = match limit with Some n -> List.filteri (fun i _ -> i < n) all | None -> all in
  Util.Json.Obj
    [
      ("sites_total", Util.Json.Int (List.length all));
      ("sites", Util.Json.List (List.map site_json kept));
    ]

let flow_json t =
  let open Util.Json in
  let trusted_share, untrusted_share = compartment_cycle_share t in
  Obj
    [
      ("t_to_u", Int t.flow.t_to_u);
      ("u_to_t", Int t.flow.u_to_t);
      ("gate_crossings", Int t.flow.crossings);
      ("max_nesting", Int t.flow.max_nesting);
      ("cycles_trusted", Int t.flow.cycles_trusted);
      ("cycles_untrusted", Int t.flow.cycles_untrusted);
      ("cycle_share_trusted", Float trusted_share);
      ("cycle_share_untrusted", Float untrusted_share);
      ("allocs_mt", Int t.flow.allocs_mt);
      ("allocs_mu", Int t.flow.allocs_mu);
      ("mpk_faults", Int t.flow.mpk_faults);
    ]

let to_json ?site_limit t =
  Util.Json.Obj
    [
      ("site_heat", site_heat_json ?limit:site_limit t);
      ("flow_matrix", flow_json t);
      ("events_folded", Util.Json.Int t.events_folded);
      ("events_dropped", Util.Json.Int t.events_dropped);
      ("unmatched_frees", Util.Json.Int t.unmatched_frees);
    ]

(* --- Tables --- *)

let site_table ?limit t =
  let all = sites t in
  let kept = match limit with Some n -> List.filteri (fun i _ -> i < n) all | None -> all in
  Util.Table.render
    ~header:[ "site"; "pool"; "allocs"; "frees"; "bytes"; "live"; "peak"; "faults" ]
    (List.map
       (fun s ->
         [
           s.site;
           pool_of_site s;
           string_of_int s.allocs;
           string_of_int s.frees;
           string_of_int s.bytes_allocated;
           string_of_int s.live_bytes;
           string_of_int s.peak_live_bytes;
           string_of_int s.mpk_faults;
         ])
       kept)

let flow_table t =
  let trusted_share, untrusted_share = compartment_cycle_share t in
  Util.Table.render
    ~header:[ "flow"; "value" ]
    [
      [ "T->U crossings"; string_of_int t.flow.t_to_u ];
      [ "U->T crossings"; string_of_int t.flow.u_to_t ];
      [ "gate crossings"; string_of_int t.flow.crossings ];
      [ "max gate nesting"; string_of_int t.flow.max_nesting ];
      [ "cycles in T"; Printf.sprintf "%d (%.1f%%)" t.flow.cycles_trusted (100.0 *. trusted_share) ];
      [
        "cycles in U";
        Printf.sprintf "%d (%.1f%%)" t.flow.cycles_untrusted (100.0 *. untrusted_share);
      ];
      [ "allocs to MT"; string_of_int t.flow.allocs_mt ];
      [ "allocs to MU"; string_of_int t.flow.allocs_mu ];
      [ "MPK faults"; string_of_int t.flow.mpk_faults ];
    ]

let report ?site_limit t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Compartment flow matrix";
  if t.events_dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf " (over trace window; %d events dropped)" t.events_dropped);
  Buffer.add_string buf ":\n";
  Buffer.add_string buf (flow_table t);
  Buffer.add_char buf '\n';
  let nsites = Hashtbl.length t.sites in
  if nsites > 0 then begin
    Buffer.add_string buf
      (match site_limit with
      | Some n when n < nsites ->
        Printf.sprintf "Allocation-site heat (top %d of %d sites by bytes):\n" n nsites
      | _ -> Printf.sprintf "Allocation-site heat (%d sites):\n" nsites);
    Buffer.add_string buf (site_table ?limit:site_limit t)
  end;
  Buffer.contents buf
