(** The telemetry sink: bounded event trace + streaming counters and
    histograms, behind a process-wide [option] so disabled builds pay one
    pointer load per instrumentation site.

    Instrumented code follows this pattern — the match is the whole cost
    when telemetry is off, and the event payload is only constructed in
    the [Some] arm:

    {[
      match !Telemetry.Sink.current with
      | None -> ()
      | Some sink -> Telemetry.Sink.emit sink ~ts ~cpu (Telemetry.Event.Wrpkru { value })
    ]} *)

type t

val default_capacity : int
(** 65536 trace records (counters and histograms are unbounded-precision
    regardless of ring capacity). *)

val default_gate_tail : int
(** 256 — the dedicated last-N ring of gate transitions kept for the
    flight recorder. *)

val create :
  ?capacity:int -> ?span_capacity:int -> ?record_spans:bool -> ?gate_tail:int -> unit -> t
(** [record_spans] (default true) switches the span layer off entirely:
    span calls become no-ops and the event trace is bit-identical to a
    span-recording sink's. *)

(* {2 Recording} *)

val emit : t -> ts:int -> cpu:int -> Event.t -> unit
(** Appends to the ring (dropping oldest-first at capacity, counted under
    the ["trace.dropped"] counter) and bumps the event-kind counter.
    Gate transitions are additionally copied into the bounded gate
    tail. *)

val observe : t -> string -> int -> unit
(** Records a sample into the named histogram, creating it on first use. *)

val incr : ?by:int -> t -> string -> unit
(** Bumps a named counter without producing a trace record. *)

(* {2 Reading} *)

val count : t -> string -> int
val events_total : t -> int
(** Every event ever emitted, including those the ring has dropped. *)

val events : t -> Event.record list
(** Trace contents, oldest first. *)

val dropped : t -> int
val histogram : t -> string -> Histogram.t option
val counters : t -> (string * int) list
val histograms : t -> (string * Histogram.t) list

val gate_transitions : t -> int
(** [count "gate_enter" + count "gate_exit"] — must equal
    {!Runtime.Gate.transitions} summed over the traced run's gates. *)

val gate_tail : t -> Event.record list
(** The last-N gate transitions (oldest first), kept separately from the
    main ring so flight dumps retain the recent crossing history even
    when allocation events dominate the trace. *)

(* {2 Spans} *)

val spans : t -> Span.t

val span_enter : t -> ts:int -> cpu:int -> kind:Span.kind -> string -> int
(** Opens a causal span (see {!Span.enter}); returns 0 when span
    recording is disabled. *)

val span_exit : t -> ts:int -> cpu:int -> ?id:int -> unit -> unit
(** Closes the innermost open span on the hart, or — with the [id]
    returned by {!span_enter} — that specific span, closing abandoned
    children.  [~id:0] (the disabled-spans sentinel) closes the
    innermost. *)

val span_instant : t -> ts:int -> cpu:int -> kind:Span.kind -> string -> unit
(** A zero-duration span ({!Span.instant}). *)

(* {2 The process-wide sink} *)

val current : t option ref
(** Matched directly by instrumentation sites; [None] compiles the layer
    down to a load-and-branch. *)

val enable : ?capacity:int -> unit -> t
val disable : unit -> unit
val active : unit -> bool

val with_sink : t -> (unit -> 'a) -> 'a
(** Installs [sink] for the duration of the callback, restoring the
    previous sink afterwards (exception-safe). *)
