(** The telemetry sink: bounded event trace + streaming counters and
    histograms, behind a process-wide [option] so disabled builds pay one
    pointer load per instrumentation site.

    Instrumented code follows this pattern — the match is the whole cost
    when telemetry is off, and the event payload is only constructed in
    the [Some] arm:

    {[
      match !Telemetry.Sink.current with
      | None -> ()
      | Some sink -> Telemetry.Sink.emit sink ~ts ~cpu (Telemetry.Event.Wrpkru { value })
    ]} *)

type t

val default_capacity : int
(** 65536 trace records (counters and histograms are unbounded-precision
    regardless of ring capacity). *)

val create : ?capacity:int -> unit -> t

(* {2 Recording} *)

val emit : t -> ts:int -> cpu:int -> Event.t -> unit
(** Appends to the ring (dropping oldest-first at capacity) and bumps the
    event-kind counter. *)

val observe : t -> string -> int -> unit
(** Records a sample into the named histogram, creating it on first use. *)

val incr : ?by:int -> t -> string -> unit
(** Bumps a named counter without producing a trace record. *)

(* {2 Reading} *)

val count : t -> string -> int
val events_total : t -> int
(** Every event ever emitted, including those the ring has dropped. *)

val events : t -> Event.record list
(** Trace contents, oldest first. *)

val dropped : t -> int
val histogram : t -> string -> Histogram.t option
val counters : t -> (string * int) list
val histograms : t -> (string * Histogram.t) list

val gate_transitions : t -> int
(** [count "gate_enter" + count "gate_exit"] — must equal
    {!Runtime.Gate.transitions} summed over the traced run's gates. *)

(* {2 The process-wide sink} *)

val current : t option ref
(** Matched directly by instrumentation sites; [None] compiles the layer
    down to a load-and-branch. *)

val enable : ?capacity:int -> unit -> t
val disable : unit -> unit
val active : unit -> bool

val with_sink : t -> (unit -> 'a) -> 'a
(** Installs [sink] for the duration of the callback, restoring the
    previous sink afterwards (exception-safe). *)
