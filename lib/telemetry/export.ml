(* Exporters over a sink snapshot: compact JSON, Chrome trace_event JSON
   (chrome://tracing / Perfetto), and an ASCII summary table. *)

let counters_json sink =
  Util.Json.Obj (List.map (fun (name, n) -> (name, Util.Json.Int n)) (Sink.counters sink))

let histograms_json sink =
  Util.Json.Obj (List.map (fun (name, h) -> (name, Histogram.to_json h)) (Sink.histograms sink))

let to_json sink =
  let open Util.Json in
  Obj
    [
      ("events_total", Int (Sink.events_total sink));
      ("events_dropped", Int (Sink.dropped sink));
      ("gate_transitions", Int (Sink.gate_transitions sink));
      ("counters", counters_json sink);
      ("histograms", histograms_json sink);
      ("events", List (List.map Event.record_to_json (Sink.events sink)));
    ]

(* Chrome trace_event format: gates become nested duration slices (ph B/E —
   gate sides nest by construction of the compartment stack), everything
   else an instant event.  "ts" is in simulated cycles; the unit only
   matters for the viewer's axis labels. *)
let chrome_record (r : Event.record) =
  let open Util.Json in
  let common name cat ph extra =
    Obj
      ([
         ("name", String name);
         ("cat", String cat);
         ("ph", String ph);
         ("ts", Int r.Event.ts);
         ("pid", Int 0);
         ("tid", Int r.Event.cpu);
       ]
      @ extra)
  in
  let args = [ ("args", Obj (Event.args_json r.Event.event)) ] in
  match r.Event.event with
  | Event.Gate_enter { target } ->
    common ("gate:" ^ Event.compartment_to_string target) "gate" "B" args
  | Event.Gate_exit _ -> common "gate" "gate" "E" []
  | event ->
    common (Event.kind event) (Event.kind event) "i" ([ ("s", String "t") ] @ args)

let chrome_trace sink =
  let open Util.Json in
  Obj
    [
      ("traceEvents", List (List.map chrome_record (Sink.events sink)));
      ("displayTimeUnit", String "ns");
      ( "otherData",
        Obj
          [
            ("gate_transitions", Int (Sink.gate_transitions sink));
            ("events_total", Int (Sink.events_total sink));
            ("events_dropped", Int (Sink.dropped sink));
          ] );
    ]

(* Gate round-trip latencies recovered from the trace: per-hart stacks of
   Gate_enter timestamps, popped by the matching Gate_exit.  These are the
   exact samples (within ring capacity), so the summary reports true
   percentiles via Util.Stats.percentile rather than the histogram's
   bucket-resolution approximation. *)
let gate_latencies sink =
  let stacks : (int, int list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack cpu =
    match Hashtbl.find_opt stacks cpu with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks cpu s;
      s
  in
  let out = ref [] in
  List.iter
    (fun (r : Event.record) ->
      match r.Event.event with
      | Event.Gate_enter _ ->
        let s = stack r.Event.cpu in
        s := r.Event.ts :: !s
      | Event.Gate_exit _ ->
        let s = stack r.Event.cpu in
        (match !s with
        | entered :: rest ->
          s := rest;
          out := float_of_int (r.Event.ts - entered) :: !out
        | [] -> () (* the matching enter was dropped by the ring *))
      | _ -> ())
    (Sink.events sink);
  List.rev !out

(* Everything except the raw trace: what a results directory wants to keep
   per run without storing millions of event records. *)
let summary_json sink =
  let open Util.Json in
  let gate_percentiles =
    match gate_latencies sink with
    | [] -> Null
    | latencies ->
      Obj
        [
          ("pairs", Int (List.length latencies));
          ("p50", Float (Util.Stats.percentile 50.0 latencies));
          ("p90", Float (Util.Stats.percentile 90.0 latencies));
          ("p99", Float (Util.Stats.percentile 99.0 latencies));
        ]
  in
  Obj
    [
      ("events_total", Int (Sink.events_total sink));
      ("events_dropped", Int (Sink.dropped sink));
      ("gate_transitions", Int (Sink.gate_transitions sink));
      ("gate_roundtrip_cycles_exact", gate_percentiles);
      ("counters", counters_json sink);
      ("histograms", histograms_json sink);
    ]

let summary sink =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "events: %d total, %d in trace, %d dropped; gate transitions: %d\n\n"
       (Sink.events_total sink)
       (List.length (Sink.events sink))
       (Sink.dropped sink) (Sink.gate_transitions sink));
  let counters = Sink.counters sink in
  if counters <> [] then begin
    Buffer.add_string buf
      (Util.Table.render ~header:[ "counter"; "count" ]
         (List.map (fun (name, n) -> [ name; string_of_int n ]) counters));
    Buffer.add_char buf '\n'
  end;
  let histograms = Sink.histograms sink in
  if histograms <> [] then begin
    Buffer.add_string buf
      (Util.Table.render
         ~header:[ "histogram"; "count"; "min"; "mean"; "p50"; "p90"; "p99"; "max" ]
         (List.map
            (fun (name, h) ->
              [
                name;
                string_of_int (Histogram.count h);
                string_of_int (Histogram.min_value h);
                Printf.sprintf "%.1f" (Histogram.mean h);
                Printf.sprintf "%.0f" (Histogram.percentile h 50.0);
                Printf.sprintf "%.0f" (Histogram.percentile h 90.0);
                Printf.sprintf "%.0f" (Histogram.percentile h 99.0);
                string_of_int (Histogram.max_value h);
              ])
            histograms));
    Buffer.add_char buf '\n'
  end;
  (match gate_latencies sink with
  | [] -> ()
  | latencies ->
    Buffer.add_string buf
      (Printf.sprintf
         "gate round-trip from trace (%d pairs): p50 %.0f  p90 %.0f  p99 %.0f cycles\n"
         (List.length latencies)
         (Util.Stats.percentile 50.0 latencies)
         (Util.Stats.percentile 90.0 latencies)
         (Util.Stats.percentile 99.0 latencies)));
  Buffer.contents buf
