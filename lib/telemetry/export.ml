(* Exporters over a sink snapshot: compact JSON, Chrome trace_event JSON
   (chrome://tracing / Perfetto), an ASCII summary table, and a
   Prometheus-style exposition built through the metrics registry. *)

let counters_json sink =
  Util.Json.Obj (List.map (fun (name, n) -> (name, Util.Json.Int n)) (Sink.counters sink))

let histograms_json sink =
  Util.Json.Obj (List.map (fun (name, h) -> (name, Histogram.to_json h)) (Sink.histograms sink))

let spans_json sink =
  let spans = Sink.spans sink in
  Util.Json.Obj
    [
      ("digest", Span.digest_json spans);
      ("closed", Util.Json.List (List.map Span.record_to_json (Span.closed spans)));
      ("open", Util.Json.List (List.map Span.record_to_json (Span.open_spans spans)));
    ]

let to_json sink =
  let open Util.Json in
  Obj
    [
      ("events_total", Int (Sink.events_total sink));
      ("events_dropped", Int (Sink.dropped sink));
      ("gate_transitions", Int (Sink.gate_transitions sink));
      ("counters", counters_json sink);
      ("histograms", histograms_json sink);
      ("events", List (List.map Event.record_to_json (Sink.events sink)));
      ("spans", spans_json sink);
    ]

(* Chrome trace_event format: gates become nested duration slices (ph B/E —
   gate sides nest by construction of the compartment stack), everything
   else an instant event.  "ts" is in simulated cycles; the unit only
   matters for the viewer's axis labels. *)
let chrome_record (r : Event.record) =
  let open Util.Json in
  let common name cat ph extra =
    Obj
      ([
         ("name", String name);
         ("cat", String cat);
         ("ph", String ph);
         ("ts", Int r.Event.ts);
         ("pid", Int 0);
         ("tid", Int r.Event.cpu);
       ]
      @ extra)
  in
  let args = [ ("args", Obj (Event.args_json r.Event.event)) ] in
  match r.Event.event with
  | Event.Gate_enter { target } ->
    common ("gate:" ^ Event.compartment_to_string target) "gate" "B" args
  | Event.Gate_exit _ -> common "gate" "gate" "E" []
  | event ->
    common (Event.kind event) (Event.kind event) "i" ([ ("s", String "t") ] @ args)

(* Spans export as Chrome "complete" slices (ph X with an explicit dur)
   on a dedicated pid so the causal-span track sits alongside — not
   interleaved with — the raw gate B/E track on pid 0.  Spans still open
   at snapshot time become dangling B slices, which the viewer renders
   as running to the end of the trace: exactly the "open at death"
   reading the flight recorder wants. *)
let chrome_span (r : Span.record) =
  let open Util.Json in
  let common ph extra =
    Obj
      ([
         ("name", String r.Span.name);
         ("cat", String ("span:" ^ Span.kind_to_string r.Span.kind));
         ("ph", String ph);
         ("ts", Int r.Span.t_begin);
         ("pid", Int 1);
         ("tid", Int r.Span.cpu);
         ( "args",
           Obj [ ("id", Int r.Span.id); ("parent", Int r.Span.parent) ] );
       ]
      @ extra)
  in
  if Span.is_open r then common "B" []
  else common "X" [ ("dur", Int (Span.duration r)) ]

let chrome_trace sink =
  let open Util.Json in
  let spans = Sink.spans sink in
  let span_records =
    List.sort
      (fun (a : Span.record) b -> compare (a.Span.t_begin, a.Span.id) (b.Span.t_begin, b.Span.id))
      (Span.closed spans @ Span.open_spans spans)
  in
  Obj
    [
      ( "traceEvents",
        List (List.map chrome_record (Sink.events sink) @ List.map chrome_span span_records) );
      ("displayTimeUnit", String "ns");
      ( "otherData",
        Obj
          [
            ("gate_transitions", Int (Sink.gate_transitions sink));
            ("events_total", Int (Sink.events_total sink));
            ("events_dropped", Int (Sink.dropped sink));
          ] );
    ]

(* Gate round-trip latencies recovered from the trace: per-hart stacks of
   Gate_enter timestamps, popped by the matching Gate_exit.  These are the
   exact samples (within ring capacity), so the summary reports true
   percentiles via Util.Stats.percentile rather than the histogram's
   bucket-resolution approximation. *)
let gate_latencies sink =
  let stacks : (int, int list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack cpu =
    match Hashtbl.find_opt stacks cpu with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks cpu s;
      s
  in
  let out = ref [] in
  List.iter
    (fun (r : Event.record) ->
      match r.Event.event with
      | Event.Gate_enter _ ->
        let s = stack r.Event.cpu in
        s := r.Event.ts :: !s
      | Event.Gate_exit _ ->
        let s = stack r.Event.cpu in
        (match !s with
        | entered :: rest ->
          s := rest;
          out := float_of_int (r.Event.ts - entered) :: !out
        | [] -> () (* the matching enter was dropped by the ring *))
      | _ -> ())
    (Sink.events sink);
  List.rev !out

(* Everything except the raw trace: what a results directory wants to keep
   per run without storing millions of event records. *)
let summary_json ?census sink =
  let open Util.Json in
  let gate_percentiles =
    match gate_latencies sink with
    | [] -> Null
    | latencies ->
      Obj
        [
          ("pairs", Int (List.length latencies));
          ("p50", Float (Util.Stats.percentile 50.0 latencies));
          ("p90", Float (Util.Stats.percentile 90.0 latencies));
          ("p99", Float (Util.Stats.percentile 99.0 latencies));
        ]
  in
  Obj
    [
      ("events_total", Int (Sink.events_total sink));
      ("events_dropped", Int (Sink.dropped sink));
      ("gate_transitions", Int (Sink.gate_transitions sink));
      ("gate_roundtrip_cycles_exact", gate_percentiles);
      ("counters", counters_json sink);
      ("histograms", histograms_json sink);
      ("spans", Span.digest_json (Sink.spans sink));
      ("census", (match census with None -> Null | Some c -> Census.digest_json c));
    ]

let summary sink =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "events: %d total, %d in trace, %d dropped; gate transitions: %d\n\n"
       (Sink.events_total sink)
       (List.length (Sink.events sink))
       (Sink.dropped sink) (Sink.gate_transitions sink));
  let counters = Sink.counters sink in
  if counters <> [] then begin
    Buffer.add_string buf
      (Util.Table.render ~header:[ "counter"; "count" ]
         (List.map (fun (name, n) -> [ name; string_of_int n ]) counters));
    Buffer.add_char buf '\n'
  end;
  let histograms = Sink.histograms sink in
  if histograms <> [] then begin
    Buffer.add_string buf
      (Util.Table.render
         ~header:[ "histogram"; "count"; "min"; "mean"; "p50"; "p90"; "p99"; "max" ]
         (List.map
            (fun (name, h) ->
              [
                name;
                string_of_int (Histogram.count h);
                string_of_int (Histogram.min_value h);
                Printf.sprintf "%.1f" (Histogram.mean h);
                Printf.sprintf "%.0f" (Histogram.percentile h 50.0);
                Printf.sprintf "%.0f" (Histogram.percentile h 90.0);
                Printf.sprintf "%.0f" (Histogram.percentile h 99.0);
                string_of_int (Histogram.max_value h);
              ])
            histograms));
    Buffer.add_char buf '\n'
  end;
  (match gate_latencies sink with
  | [] -> ()
  | latencies ->
    Buffer.add_string buf
      (Printf.sprintf
         "gate round-trip from trace (%d pairs): p50 %.0f  p90 %.0f  p99 %.0f cycles\n"
         (List.length latencies)
         (Util.Stats.percentile 50.0 latencies)
         (Util.Stats.percentile 90.0 latencies)
         (Util.Stats.percentile 99.0 latencies)));
  let spans = Sink.spans sink in
  if Span.opened_total spans > 0 then begin
    Buffer.add_string buf
      (Printf.sprintf "\nspans: %d opened, %d closed in ring, %d dropped, %d still open\n"
         (Span.opened_total spans)
         (List.length (Span.closed spans))
         (Span.dropped spans)
         (List.length (Span.open_spans spans)));
    let agg = Hashtbl.create 16 in
    List.iter
      (fun (r : Span.record) ->
        let key = (r.Span.name, Span.kind_to_string r.Span.kind) in
        let count, total, worst =
          match Hashtbl.find_opt agg key with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0, ref 0) in
            Hashtbl.add agg key cell;
            cell
        in
        Stdlib.incr count;
        total := !total + Span.duration r;
        worst := max !worst (Span.duration r))
      (Span.closed spans);
    let rows =
      Hashtbl.fold
        (fun (name, kind) (count, total, worst) acc ->
          [ name; kind; string_of_int !count; string_of_int !total; string_of_int !worst ]
          :: acc)
        agg []
      |> List.sort compare
    in
    if rows <> [] then
      Buffer.add_string buf
        (Util.Table.render ~header:[ "span"; "kind"; "count"; "total cyc"; "max cyc" ] rows)
  end;
  Buffer.contents buf

(* --- Prometheus exposition via the metrics registry --- *)

(* Windowed series from the trace: per-window gate crossings and
   allocation counts, so a bench run plots as a trajectory.  The window
   defaults to 1/50th of the covered cycle range (min 1000 cycles). *)
let default_series_window events =
  match List.rev events with
  | [] -> 1000
  | (last : Event.record) :: _ -> max 1000 (last.Event.ts / 50)

(* Folds a sink snapshot (plus optional attribution and sampler digests)
   into a metrics registry.  Event-kind counters become
   pkru_events_<kind>_total, sink histograms are attached under their own
   names, attribution becomes labelled site/flow gauges, and the sampler
   becomes per-stack sample counters. *)
let to_metrics ?attribution ?sampler ?census ?series_window ?tlb sink =
  let reg = Metrics.create () in
  (* Software-TLB effectiveness: dedicated families, always exposed (a
     zero hit count on a TLB-off run is itself the datum).  Values come
     from [tlb] when the caller holds live machine stats, else from the
     counters the runner injects into the sink after a timed run. *)
  let tlb_hits, tlb_misses, tlb_flushes =
    match tlb with
    | Some (h, m, f) -> (h, m, f)
    | None -> (Sink.count sink "tlb_hit", Sink.count sink "tlb_miss", Sink.count sink "tlb_flush")
  in
  Metrics.incr ~by:tlb_hits
    (Metrics.counter reg ~help:"Software-TLB hits on the checked access path"
       "pkru_tlb_hits_total");
  Metrics.incr ~by:tlb_misses
    (Metrics.counter reg ~help:"Software-TLB misses (slow resolve path taken)"
       "pkru_tlb_misses_total");
  Metrics.incr ~by:tlb_flushes
    (Metrics.counter reg ~help:"Software-TLB invalidation generations observed"
       "pkru_tlb_flushes_total");
  (* Fast-tier engine effectiveness: like the TLB families, always
     exposed — all-zero cells on an AST- or reference-tier run are the
     datum that the fast tier was not in play.  Values come from the
     counters the runner injects post-run (never from the execution path,
     so traces stay bit-identical across tiers). *)
  let engine_counter sink_name family help =
    Metrics.incr ~by:(Sink.count sink sink_name) (Metrics.counter reg ~help family)
  in
  engine_counter "engine_var_ic_hit" "pkru_engine_var_ic_hits_total"
    "Variable-IC hits (scope walk elided; charges unchanged)";
  engine_counter "engine_var_ic_miss" "pkru_engine_var_ic_misses_total"
    "Variable-IC misses (cache refilled by a genuine walk)";
  engine_counter "engine_prop_ic_hit" "pkru_engine_prop_ic_hits_total"
    "Property-IC hits keyed on object shape";
  engine_counter "engine_prop_ic_miss" "pkru_engine_prop_ic_misses_total"
    "Property-IC misses (shape transition or polymorphic overflow)";
  engine_counter "engine_super_exec" "pkru_engine_superinstructions_total"
    "Fused opcode-pair (superinstruction) executions";
  engine_counter "engine_selector_hit" "pkru_engine_selector_hits_total"
    "DOM selector-cache hits";
  engine_counter "engine_selector_miss" "pkru_engine_selector_misses_total"
    "DOM selector-cache misses (DOM mutated since fill)";
  (* Fault-recovery incidents: sink counters named
     mitigation.<policy>.<outcome> become labelled cells of one family.
     The unlabelled cell carries the total and is always exposed — a zero
     on an enforcement run says the mitigator had nothing to do. *)
  let mitigation_cells =
    List.filter_map
      (fun (name, n) ->
        match String.split_on_char '.' name with
        | [ "mitigation"; policy; outcome ] -> Some (policy, outcome, n)
        | _ -> None)
      (Sink.counters sink)
  in
  let mitigation_help = "Enforcement-mode MPK-fault incidents adjudicated by the mitigator" in
  Metrics.incr
    ~by:(List.fold_left (fun acc (_, _, n) -> acc + n) 0 mitigation_cells)
    (Metrics.counter reg ~help:mitigation_help "pkru_mitigation_total");
  List.iter
    (fun (policy, outcome, n) ->
      Metrics.incr ~by:n
        (Metrics.counter reg ~help:mitigation_help
           ~labels:[ ("policy", policy); ("outcome", outcome) ]
           "pkru_mitigation_total"))
    mitigation_cells;
  Metrics.incr
    ~by:(Sink.events_total sink)
    (Metrics.counter reg ~help:"Telemetry events emitted" "pkru_telemetry_events_total");
  Metrics.incr
    ~by:(Sink.dropped sink)
    (Metrics.counter reg ~help:"Events evicted from the trace ring"
       "pkru_telemetry_events_dropped_total");
  List.iter
    (fun (name, n) ->
      Metrics.incr ~by:n
        (Metrics.counter reg ~help:"Events by kind" ~labels:[ ("kind", name) ]
           "pkru_events_total"))
    (Sink.counters sink);
  List.iter
    (fun (name, h) ->
      Metrics.attach_histogram reg ~help:"Sink histogram (log2 buckets)" ("pkru_" ^ name) h)
    (Sink.histograms sink);
  (* Trajectories: gate crossings and allocations per cycle window. *)
  let events = Sink.events sink in
  let window = match series_window with Some w -> w | None -> default_series_window events in
  let crossings =
    Metrics.series reg ~help:"Gate crossings per cycle window" ~window
      "pkru_gate_crossings_per_window"
  in
  let allocs =
    Metrics.series reg ~help:"Allocations per cycle window" ~window "pkru_allocs_per_window"
  in
  List.iter
    (fun (r : Event.record) ->
      match r.Event.event with
      | Event.Gate_enter _ | Event.Gate_exit _ ->
        Metrics.observe_series crossings ~cycle:(max 0 r.Event.ts) 1.0
      | Event.Alloc _ -> Metrics.observe_series allocs ~cycle:(max 0 r.Event.ts) 1.0
      | _ -> ())
    events;
  (match attribution with
  | None -> ()
  | Some attr ->
    let flow = Attribution.flow attr in
    let crossing direction n =
      Metrics.incr ~by:n
        (Metrics.counter reg ~help:"Gate crossings by direction"
           ~labels:[ ("direction", direction) ] "pkru_flow_crossings_total")
    in
    crossing "t_to_u" flow.Attribution.t_to_u;
    crossing "u_to_t" flow.Attribution.u_to_t;
    let comp_cycles name n =
      Metrics.incr ~by:n
        (Metrics.counter reg ~help:"Cycles attributed per compartment"
           ~labels:[ ("compartment", name) ] "pkru_compartment_cycles_total")
    in
    comp_cycles "trusted" flow.Attribution.cycles_trusted;
    comp_cycles "untrusted" flow.Attribution.cycles_untrusted;
    Metrics.set
      (Metrics.gauge reg ~help:"Deepest gate nesting in the trace" "pkru_gate_nesting_max")
      (float_of_int flow.Attribution.max_nesting);
    List.iter
      (fun (s : Attribution.site) ->
        let labels = [ ("site", s.Attribution.site); ("pool", Attribution.pool_of_site s) ] in
        Metrics.incr ~by:s.Attribution.allocs
          (Metrics.counter reg ~help:"Allocations per site" ~labels "pkru_site_allocs_total");
        Metrics.incr ~by:s.Attribution.bytes_allocated
          (Metrics.counter reg ~help:"Bytes allocated per site" ~labels
             "pkru_site_bytes_allocated_total");
        Metrics.set
          (Metrics.gauge reg ~help:"Live bytes per site at end of trace" ~labels
             "pkru_site_live_bytes")
          (float_of_int s.Attribution.live_bytes);
        if s.Attribution.mpk_faults > 0 then
          Metrics.incr ~by:s.Attribution.mpk_faults
            (Metrics.counter reg ~help:"MPK faults landing in the site's allocations" ~labels
               "pkru_site_mpk_faults_total"))
      (Attribution.sites attr));
  (match sampler with
  | None -> ()
  | Some s ->
    List.iter
      (fun (stack, n) ->
        Metrics.incr ~by:n
          (Metrics.counter reg ~help:"Cycle samples per compartment stack"
             ~labels:[ ("stack", stack) ] "pkru_profile_samples_total"))
      (Sampler.stacks s));
  (* Heap census: per-pool pkru_census_* / pkru_pool_* gauges and the
     per-site live view, all from the latest snapshot, plus the running
     snapshot count and the object-age histogram. *)
  (match census with
  | None -> ()
  | Some c -> (
    Metrics.incr ~by:(Census.taken_total c)
      (Metrics.counter reg ~help:"Heap-census snapshots taken" "pkru_census_snapshots_total");
    match Census.latest c with
    | None -> ()
    | Some snap ->
      Metrics.set
        (Metrics.gauge reg ~help:"Cycle of the latest census snapshot" "pkru_census_at_cycle")
        (float_of_int snap.Census.at_cycle);
      List.iter
        (fun (p : Census.pool_stats) ->
          let labels = [ ("pool", p.Census.cp_pool) ] in
          Metrics.set
            (Metrics.gauge reg ~help:"Live bytes per pool at the latest census" ~labels
               "pkru_census_live_bytes")
            (float_of_int p.Census.cp_live_bytes);
          Metrics.set
            (Metrics.gauge reg ~help:"Live objects per pool at the latest census" ~labels
               "pkru_census_live_objects")
            (float_of_int p.Census.cp_live_objects);
          Metrics.set
            (Metrics.gauge reg
               ~help:"1 - live_bytes/(pages_in_use * page_size) at the latest census" ~labels
               "pkru_census_fragmentation")
            p.Census.cp_fragmentation;
          Metrics.set
            (Metrics.gauge reg ~help:"Pool pages currently handed to the allocator" ~labels
               "pkru_pool_pages_in_use")
            (float_of_int p.Census.cp_pages_in_use);
          Metrics.set
            (Metrics.gauge reg ~help:"Peak of pool pages in use" ~labels
               "pkru_pool_high_water_pages")
            (float_of_int p.Census.cp_high_water_pages);
          Metrics.set
            (Metrics.gauge reg ~help:"Live bytes per pool" ~labels "pkru_pool_live_bytes")
            (float_of_int p.Census.cp_live_bytes);
          Metrics.set
            (Metrics.gauge reg ~help:"High-water mark of live bytes per pool" ~labels
               "pkru_pool_peak_live_bytes")
            (float_of_int p.Census.cp_peak_live_bytes);
          Metrics.incr ~by:p.Census.cp_allocs
            (Metrics.counter reg ~help:"Allocations per pool" ~labels "pkru_pool_allocs_total");
          Metrics.incr ~by:p.Census.cp_frees
            (Metrics.counter reg ~help:"Frees per pool" ~labels "pkru_pool_frees_total"))
        snap.Census.pools;
      List.iter
        (fun (s : Census.site_stats) ->
          let labels = [ ("site", s.Census.cs_site); ("pool", s.Census.cs_pool) ] in
          Metrics.set
            (Metrics.gauge reg ~help:"Live bytes per site at the latest census" ~labels
               "pkru_census_site_live_bytes")
            (float_of_int s.Census.cs_live_bytes);
          Metrics.set
            (Metrics.gauge reg ~help:"Live objects per site at the latest census" ~labels
               "pkru_census_site_live_objects")
            (float_of_int s.Census.cs_live_objects))
        snap.Census.sites;
      Metrics.attach_histogram reg ~help:"Live-object ages at the latest census (cycles)"
        "pkru_census_object_age_cycles" snap.Census.ages));
  reg

let prometheus ?attribution ?sampler ?census ?series_window ?tlb sink =
  Metrics.expose (to_metrics ?attribution ?sampler ?census ?series_window ?tlb sink)
