(** The continuous heap census: a cycle-driven periodic walk over
    allocator state.

    Every [every] simulated cycles (ticked from the machine's charge
    path) the census calls the registered {!val-provider} and stores the
    returned {!snapshot} — per-pool (MT/MU) live bytes, object counts,
    fragmentation and high-water marks, per-AllocId live bytes, and a
    log₂ histogram of live-object ages — in a bounded ring.  Each
    snapshot also records a zero-duration [census] span on the active
    sink (span recording only: the event trace is untouched).

    The census never charges simulated cycles and the disabled path is
    one load and one branch per charge, so censused and uncensused runs
    retire bit-identical cycle counts and event traces — the same
    architectural-invisibility discipline as the sink, sampler, spans and
    software TLB. *)

type pool_stats = {
  cp_pool : string;  (** ["mt"] or ["mu"] *)
  cp_live_bytes : int;
  cp_live_objects : int;
  cp_allocs : int;
  cp_frees : int;
  cp_bytes_allocated : int;
  cp_bytes_freed : int;
  cp_peak_live_bytes : int;  (** high-water mark of live bytes *)
  cp_pages_in_use : int;
  cp_high_water_pages : int;
  cp_fragmentation : float;
      (** [1 - live_bytes/(pages_in_use * page_size)]; 0 for an empty
          pool *)
}

type site_stats = {
  cs_site : string;  (** printed AllocId *)
  cs_pool : string;  (** ["mt"] or ["mu"] *)
  cs_live_bytes : int;
  cs_live_objects : int;
}

type snapshot = {
  at_cycle : int;
  pools : pool_stats list;
  sites : site_stats list;  (** sorted by [(site, pool)] *)
  ages : Histogram.t;  (** log₂ histogram of live-object ages, in cycles *)
}

type t

val default_keep : int
(** 64 retained snapshots. *)

val create : ?keep:int -> every:int -> unit -> t
(** @raise Invalid_argument when [every <= 0] or [keep <= 0]. *)

val every : t -> int

(* {2 The process-wide census} *)

val current : t option ref
(** Matched directly by [Sim.Cpu.charge]; [None] compiles the layer down
    to a load-and-branch. *)

val provider : (unit -> snapshot) option ref
(** Builds one snapshot from live allocator state.  Registered by the
    layer that owns pkalloc and the live-object table; must not charge
    simulated cycles (pure OCaml reads only). *)

val install : ?provider:(unit -> snapshot) -> t -> unit
val disable : unit -> unit
val active : unit -> bool

val with_census : ?provider:(unit -> snapshot) -> t -> (unit -> 'a) -> 'a
(** Installs the census (and provider, when given) for the duration of
    the callback, restoring both afterwards (exception-safe). *)

(* {2 Recording} *)

val tick : t -> cpu:int -> int -> unit
(** Advances the cycle credit by [n]; takes one snapshot when a period
    boundary is crossed (a single large charge spanning several periods
    still takes one snapshot — allocator state is identical for all of
    them — with leftover credit preserving the cadence). *)

(* {2 Reading} *)

val taken_total : t -> int
val snapshots : t -> snapshot list
(** Retained snapshots, oldest first. *)

val latest : t -> snapshot option

val snapshot_json : snapshot -> Util.Json.t
val digest_json : t -> Util.Json.t
(** Totals plus the latest snapshot — the [census] digest carried by
    report and bench artifacts. *)

val to_json : t -> Util.Json.t
(** Every retained snapshot. *)
