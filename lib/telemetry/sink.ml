type t = {
  ring : Event.record Ring.t;
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  mutable events_total : int;
  spans : Span.t;
  record_spans : bool;
  gate_tail : Event.record Ring.t;
}

let default_capacity = 65536
let default_gate_tail = 256

let create ?(capacity = default_capacity) ?span_capacity ?(record_spans = true)
    ?(gate_tail = default_gate_tail) () =
  {
    ring = Ring.create ~capacity;
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 16;
    events_total = 0;
    spans = Span.create ?capacity:span_capacity ();
    record_spans;
    gate_tail = Ring.create ~capacity:gate_tail;
  }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let emit t ~ts ~cpu event =
  t.events_total <- t.events_total + 1;
  incr t (Event.kind event);
  (* The eviction the ring is about to perform becomes a visible counter,
     so digests report how much of the trace was lost rather than
     silently truncating. *)
  if Ring.length t.ring = Ring.capacity t.ring then incr t "trace.dropped";
  let record = { Event.ts; cpu; event } in
  Ring.push t.ring record;
  (* Gate transitions additionally feed a dedicated short tail: the
     flight recorder's last-N crossings survive even when the main ring
     is churning with allocation events. *)
  if Event.is_gate_transition event then Ring.push t.gate_tail record

let observe t name value =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
      let h = Histogram.create () in
      Hashtbl.add t.histograms name h;
      h
  in
  Histogram.observe h value

let count t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> !r
  | None -> 0

let events_total t = t.events_total
let events t = Ring.to_list t.ring
let dropped t = Ring.dropped t.ring
let histogram t name = Hashtbl.find_opt t.histograms name

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let gate_transitions t = count t "gate_enter" + count t "gate_exit"

let gate_tail t = Ring.to_list t.gate_tail

(* {2 Spans} *)

let spans t = t.spans

let span_enter t ~ts ~cpu ~kind name =
  if t.record_spans then Span.enter t.spans ~ts ~cpu ~kind name else 0

let span_exit t ~ts ~cpu ?id () =
  if t.record_spans then
    Span.exit t.spans ~ts ~cpu ?id:(match id with Some 0 -> None | _ -> id) ()

let span_instant t ~ts ~cpu ~kind name =
  if t.record_spans then ignore (Span.instant t.spans ~ts ~cpu ~kind name)

(* The process-wide sink.  Instrumentation sites pattern-match on this ref
   directly — when it is [None] the entire telemetry layer costs one load
   and one branch, and no event value is ever constructed. *)
let current : t option ref = ref None

let enable ?capacity () =
  Guard.check "Telemetry.Sink.enable";
  let sink = create ?capacity () in
  current := Some sink;
  sink

let disable () = current := None

let active () = !current <> None

let with_sink sink f =
  Guard.check "Telemetry.Sink.with_sink";
  let previous = !current in
  current := Some sink;
  Fun.protect ~finally:(fun () -> current := previous) f
