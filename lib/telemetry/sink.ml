type t = {
  ring : Event.record Ring.t;
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  mutable events_total : int;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  {
    ring = Ring.create ~capacity;
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 16;
    events_total = 0;
  }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let emit t ~ts ~cpu event =
  t.events_total <- t.events_total + 1;
  incr t (Event.kind event);
  Ring.push t.ring { Event.ts; cpu; event }

let observe t name value =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
      let h = Histogram.create () in
      Hashtbl.add t.histograms name h;
      h
  in
  Histogram.observe h value

let count t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> !r
  | None -> 0

let events_total t = t.events_total
let events t = Ring.to_list t.ring
let dropped t = Ring.dropped t.ring
let histogram t name = Hashtbl.find_opt t.histograms name

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let gate_transitions t = count t "gate_enter" + count t "gate_exit"

(* The process-wide sink.  Instrumentation sites pattern-match on this ref
   directly — when it is [None] the entire telemetry layer costs one load
   and one branch, and no event value is ever constructed. *)
let current : t option ref = ref None

let enable ?capacity () =
  let sink = create ?capacity () in
  current := Some sink;
  sink

let disable () = current := None

let active () = !current <> None

let with_sink sink f =
  let previous = !current in
  current := Some sink;
  Fun.protect ~finally:(fun () -> current := previous) f
