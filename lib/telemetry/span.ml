(* Hierarchical causal spans.  A span covers a cycle interval on one hart
   and links to the span that was open on that hart when it began, so a
   fault can be walked back through the exact chain of transitions that
   led to it: workload phase -> gate crossing -> nested callback -> ...

   The store is bounded like the event ring: closed spans land in a ring
   (oldest evicted first), open spans live on per-hart stacks until their
   end is recorded.  Nothing here charges simulated cycles — recording
   only reads timestamps the caller already holds. *)

type kind =
  | Gate
  | Incident
  | Chaos
  | Phase
  | Census

let kind_to_string = function
  | Gate -> "gate"
  | Incident -> "incident"
  | Chaos -> "chaos"
  | Phase -> "phase"
  | Census -> "census"

let kind_of_string = function
  | "gate" -> Some Gate
  | "incident" -> Some Incident
  | "chaos" -> Some Chaos
  | "phase" -> Some Phase
  | "census" -> Some Census
  | _ -> None

type record = {
  id : int;             (* 1-based, unique within the store *)
  parent : int;         (* 0 = root (no enclosing span on this hart) *)
  name : string;
  kind : kind;
  cpu : int;
  t_begin : int;
  mutable t_end : int;  (* -1 while the span is still open *)
}

let is_open r = r.t_end < 0
let duration r = if is_open r then 0 else r.t_end - r.t_begin

type t = {
  closed : record Ring.t;
  stacks : (int, record list ref) Hashtbl.t; (* cpu -> open spans, innermost first *)
  mutable next_id : int;
  mutable opened_total : int;
}

let default_capacity = 8192

let create ?(capacity = default_capacity) () =
  { closed = Ring.create ~capacity; stacks = Hashtbl.create 4; next_id = 1; opened_total = 0 }

let stack t cpu =
  match Hashtbl.find_opt t.stacks cpu with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.add t.stacks cpu s;
    s

let top_id stack = match !stack with [] -> 0 | r :: _ -> r.id

let enter t ~ts ~cpu ~kind name =
  let s = stack t cpu in
  let r =
    { id = t.next_id; parent = top_id s; name; kind; cpu; t_begin = ts; t_end = -1 }
  in
  t.next_id <- t.next_id + 1;
  t.opened_total <- t.opened_total + 1;
  s := r :: !s;
  r.id

let close t r ~ts =
  r.t_end <- ts;
  Ring.push t.closed r

(* Without [id], closes the innermost open span on the hart.  With [id],
   pops until that span is closed — any inner spans abandoned by an
   exception are closed at the same timestamp, keeping nesting coherent. *)
let exit t ~ts ~cpu ?id () =
  let s = stack t cpu in
  match (!s, id) with
  | [], _ -> () (* the matching enter predates this store *)
  | r :: rest, None ->
    s := rest;
    close t r ~ts
  | opened, Some id ->
    if List.exists (fun r -> r.id = id) opened then begin
      let rec pop = function
        | [] -> []
        | r :: rest ->
          close t r ~ts;
          if r.id = id then rest else pop rest
      in
      s := pop opened
    end

let instant t ~ts ~cpu ~kind name =
  let s = stack t cpu in
  let r = { id = t.next_id; parent = top_id s; name; kind; cpu; t_begin = ts; t_end = ts } in
  t.next_id <- t.next_id + 1;
  t.opened_total <- t.opened_total + 1;
  Ring.push t.closed r;
  r.id

let closed t = Ring.to_list t.closed
let dropped t = Ring.dropped t.closed
let opened_total t = t.opened_total

let open_spans t =
  Hashtbl.fold (fun _ s acc -> List.rev_append !s acc) t.stacks []
  |> List.sort (fun a b -> compare a.id b.id)

(* The open chain on one hart, root first: the causal path to "now". *)
let open_chain t ~cpu =
  match Hashtbl.find_opt t.stacks cpu with
  | None -> []
  | Some s -> List.rev !s

let record_to_json r =
  let open Util.Json in
  Obj
    [
      ("id", Int r.id);
      ("parent", Int r.parent);
      ("name", String r.name);
      ("kind", String (kind_to_string r.kind));
      ("cpu", Int r.cpu);
      ("begin", Int r.t_begin);
      ("end", if is_open r then Null else Int r.t_end);
    ]

let record_of_json j =
  let open Util.Json in
  let int k = to_int (member k j) in
  let kind =
    match kind_of_string (to_str (member "kind" j)) with
    | Some k -> k
    | None -> invalid_arg "Span.record_of_json: unknown kind"
  in
  {
    id = int "id";
    parent = int "parent";
    name = to_str (member "name" j);
    kind;
    cpu = int "cpu";
    t_begin = int "begin";
    t_end = (match member "end" j with Null -> -1 | v -> to_int v);
  }

(* Aggregate digest: per-(name, kind) counts and cycle totals over the
   closed ring, plus store-level accounting.  This is what report/bench
   artifacts keep without storing every span. *)
let digest_json t =
  let agg : (string * kind, int ref * int ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let count, total, worst =
        match Hashtbl.find_opt agg (r.name, r.kind) with
        | Some cell -> cell
        | None ->
          let cell = (ref 0, ref 0, ref 0) in
          Hashtbl.add agg (r.name, r.kind) cell;
          cell
      in
      incr count;
      total := !total + duration r;
      worst := max !worst (duration r))
    (closed t);
  let by_name =
    Hashtbl.fold
      (fun (name, kind) (count, total, worst) acc ->
        ( name,
          Util.Json.Obj
            [
              ("kind", Util.Json.String (kind_to_string kind));
              ("count", Util.Json.Int !count);
              ("total_cycles", Util.Json.Int !total);
              ("max_cycles", Util.Json.Int !worst);
            ] )
        :: acc)
      agg []
    |> List.sort compare
  in
  Util.Json.Obj
    [
      ("opened_total", Util.Json.Int t.opened_total);
      ("closed_in_ring", Util.Json.Int (Ring.length t.closed));
      ("dropped", Util.Json.Int (Ring.dropped t.closed));
      ("open_now", Util.Json.Int (List.length (open_spans t)));
      ("by_name", Util.Json.Obj by_name);
    ]
