(* The continuous heap census.  The machine's charge path ticks the
   installed census with every batch of retired cycles; each time a whole
   census period elapses, the census asks the registered provider for a
   snapshot of allocator state — per-pool live bytes / objects /
   fragmentation plus per-AllocId live bytes and a log2 object-age
   histogram — and stores it in a bounded ring.

   The telemetry library cannot see the allocators, so snapshots are
   generic records built by the provider (the runtime environment, which
   owns pkalloc and the live-object table).  Like the sink and the
   sampler, the census charges no simulated cycles and the disabled path
   is one load and one branch, so censused and uncensused runs retire
   bit-identical cycle counts and event traces. *)

type pool_stats = {
  cp_pool : string; (* "mt" | "mu" *)
  cp_live_bytes : int;
  cp_live_objects : int;
  cp_allocs : int;
  cp_frees : int;
  cp_bytes_allocated : int;
  cp_bytes_freed : int;
  cp_peak_live_bytes : int;
  cp_pages_in_use : int;
  cp_high_water_pages : int;
  cp_fragmentation : float; (* 1 - live/(pages_in_use * page_size); 0 when empty *)
}

type site_stats = {
  cs_site : string; (* printed AllocId *)
  cs_pool : string; (* "mt" | "mu" *)
  cs_live_bytes : int;
  cs_live_objects : int;
}

type snapshot = {
  at_cycle : int;
  pools : pool_stats list;
  sites : site_stats list; (* sorted by (site, pool) for stable output *)
  ages : Histogram.t; (* log2 histogram of live-object ages, in cycles *)
}

type t = {
  every : int; (* census period in simulated cycles *)
  mutable credit : int; (* cycles accumulated toward the next snapshot *)
  mutable taken : int; (* snapshots taken, total *)
  mutable snapshots : snapshot list; (* newest first, bounded *)
  max_keep : int;
}

let default_keep = 64

let create ?(keep = default_keep) ~every () =
  if every <= 0 then invalid_arg "Census.create: every must be positive";
  if keep <= 0 then invalid_arg "Census.create: keep must be positive";
  { every; credit = 0; taken = 0; snapshots = []; max_keep = keep }

let every t = t.every
let taken_total t = t.taken
let snapshots t = List.rev t.snapshots
let latest t = match t.snapshots with [] -> None | s :: _ -> Some s

(* The process-wide census, matched directly by Cpu.charge. *)
let current : t option ref = ref None

(* Snapshot provider: walks pkalloc / pool / live-object state.
   Registered by the runtime layer that owns the allocators; must not
   charge simulated cycles (pure OCaml reads only). *)
let provider : (unit -> snapshot) option ref = ref None

let truncate n list =
  let len = List.length list in
  if len <= n then list else List.filteri (fun i _ -> i < n) list

let record t snap =
  t.taken <- t.taken + 1;
  t.snapshots <- truncate t.max_keep (snap :: t.snapshots)

let tick t ~cpu n =
  t.credit <- t.credit + n;
  if t.credit >= t.every then begin
    (* A single large charge may span several periods; the allocator
       state is the same for all of them, so one snapshot is taken and
       the leftover credit keeps the cadence aligned. *)
    t.credit <- t.credit mod t.every;
    match !provider with
    | None -> ()
    | Some f ->
      let snap = f () in
      record t snap;
      (match !Sink.current with
      | None -> ()
      | Some sink -> Sink.span_instant sink ~ts:snap.at_cycle ~cpu ~kind:Span.Census "census")
  end

let install ?provider:p t =
  Guard.check "Telemetry.Census.install";
  current := Some t;
  match p with Some _ -> provider := p | None -> ()

let disable () =
  current := None;
  provider := None

let active () = !current <> None

let with_census ?provider:p t f =
  Guard.check "Telemetry.Census.with_census";
  let previous = !current in
  let previous_provider = !provider in
  current := Some t;
  (match p with Some _ -> provider := p | None -> ());
  Fun.protect
    ~finally:(fun () ->
      current := previous;
      provider := previous_provider)
    f

(* --- JSON --- *)

let pool_stats_json p =
  let open Util.Json in
  Obj
    [
      ("live_bytes", Int p.cp_live_bytes);
      ("live_objects", Int p.cp_live_objects);
      ("allocs", Int p.cp_allocs);
      ("frees", Int p.cp_frees);
      ("bytes_allocated", Int p.cp_bytes_allocated);
      ("bytes_freed", Int p.cp_bytes_freed);
      ("peak_live_bytes", Int p.cp_peak_live_bytes);
      ("pages_in_use", Int p.cp_pages_in_use);
      ("high_water_pages", Int p.cp_high_water_pages);
      ("fragmentation", Float p.cp_fragmentation);
    ]

let site_stats_json s =
  let open Util.Json in
  Obj
    [
      ("site", String s.cs_site);
      ("pool", String s.cs_pool);
      ("live_bytes", Int s.cs_live_bytes);
      ("live_objects", Int s.cs_live_objects);
    ]

let snapshot_json snap =
  let open Util.Json in
  Obj
    [
      ("at_cycle", Int snap.at_cycle);
      ("pools", Obj (List.map (fun p -> (p.cp_pool, pool_stats_json p)) snap.pools));
      ("sites", List (List.map site_stats_json snap.sites));
      ("object_age_cycles", Histogram.to_json snap.ages);
    ]

let digest_json t =
  let open Util.Json in
  Obj
    [
      ("census_every_cycles", Int t.every);
      ("snapshots_total", Int t.taken);
      ("snapshots_kept", Int (List.length t.snapshots));
      ("latest", (match latest t with None -> Null | Some s -> snapshot_json s));
    ]

let to_json t =
  let open Util.Json in
  Obj
    [
      ("census_every_cycles", Int t.every);
      ("snapshots_total", Int t.taken);
      ("snapshots", List (List.map snapshot_json (snapshots t)));
    ]
