(** Streaming log₂-bucketed histograms.

    Fixed memory (63 buckets spanning every non-negative int), O(1)
    observation — suitable for per-event hot-path recording of gate
    round-trip latencies, allocation sizes and fault-service times. *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Records one sample; negative values clamp to 0. *)

val count : t -> int
val sum : t -> int
val min_value : t -> int
val max_value : t -> int
val mean : t -> float

val percentile : t -> float -> float
(** Bucket-resolution approximation (reports the covering bucket's upper
    bound, clamped to the observed min/max).
    @raise Invalid_argument when the rank is outside [0, 100], or when the
    histogram is empty (same contract as {!Util.Stats.percentile}: a
    percentile of nothing is a programming error, not 0). *)

val bucket_of : int -> int
(** Index of the bucket holding a value: [0] for 0 and 1, else ⌊log₂ v⌋. *)

val nonempty_buckets : t -> (int * int * int) list
(** [(lower, upper, count)] for every populated bucket, ascending. *)

val to_json : t -> Util.Json.t
