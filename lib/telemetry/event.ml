type compartment =
  | Trusted
  | Untrusted

let compartment_to_string = function
  | Trusted -> "trusted"
  | Untrusted -> "untrusted"

type signal =
  | Segv
  | Trap

let signal_to_string = function
  | Segv -> "segv"
  | Trap -> "trap"

type page_fault_kind =
  | Not_mapped
  | Prot_violation
  | Demand_paged

let page_fault_kind_to_string = function
  | Not_mapped -> "not_mapped"
  | Prot_violation -> "prot_violation"
  | Demand_paged -> "demand_paged"

type t =
  | Gate_enter of { target : compartment }
  | Gate_exit of { target : compartment }
  | Wrpkru of { value : int }
  | Mpk_fault of { addr : int; pkey : int }
  | Signal_dispatch of { signal : signal }
  | Alloc of { compartment : compartment; site : string option; addr : int; size : int }
  | Free of { compartment : compartment; addr : int }
  | Page_fault of { addr : int; kind : page_fault_kind }
  | Thread_switch of { from_cpu : int; to_cpu : int }

type record = {
  ts : int;  (* Machine.cycles at emission *)
  cpu : int;
  event : t;
}

let kind = function
  | Gate_enter _ -> "gate_enter"
  | Gate_exit _ -> "gate_exit"
  | Wrpkru _ -> "wrpkru"
  | Mpk_fault _ -> "mpk_fault"
  | Signal_dispatch _ -> "signal_dispatch"
  | Alloc _ -> "alloc"
  | Free _ -> "free"
  | Page_fault _ -> "page_fault"
  | Thread_switch _ -> "thread_switch"

let is_gate_transition = function
  | Gate_enter _ | Gate_exit _ -> true
  | _ -> false

(* The event payload as JSON fields, shared by the compact-JSON and
   Chrome-trace exporters (the latter nests them under "args"). *)
let args_json event =
  let open Util.Json in
  match event with
  | Gate_enter { target } | Gate_exit { target } ->
    [ ("target", String (compartment_to_string target)) ]
  | Wrpkru { value } -> [ ("value", Int value) ]
  | Mpk_fault { addr; pkey } -> [ ("addr", Int addr); ("pkey", Int pkey) ]
  | Signal_dispatch { signal } -> [ ("signal", String (signal_to_string signal)) ]
  | Alloc { compartment; site; addr; size } ->
    [
      ("compartment", String (compartment_to_string compartment));
      ("site", (match site with Some s -> String s | None -> Null));
      ("addr", Int addr);
      ("size", Int size);
    ]
  | Free { compartment; addr } ->
    [ ("compartment", String (compartment_to_string compartment)); ("addr", Int addr) ]
  | Page_fault { addr; kind } ->
    [ ("addr", Int addr); ("kind", String (page_fault_kind_to_string kind)) ]
  | Thread_switch { from_cpu; to_cpu } ->
    [ ("from_cpu", Int from_cpu); ("to_cpu", Int to_cpu) ]

let record_to_json { ts; cpu; event } =
  let open Util.Json in
  Obj ([ ("ts", Int ts); ("cpu", Int cpu); ("kind", String (kind event)) ] @ args_json event)
