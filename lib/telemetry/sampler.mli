(** Cycle-driven sampling profiler with folded-stack output.

    Every [every] simulated cycles (ticked from the machine's charge
    path), the sampler snapshots the current compartment stack — obtained
    from the registered {!val-provider} — and accumulates it as a folded
    stack.  {!to_folded} emits the standard collapsed format
    ["frame;frame;frame count"] that flamegraph tooling (Brendan Gregg's
    [flamegraph.pl], speedscope, inferno) loads directly.

    The sampler never charges simulated cycles, so sampled and unsampled
    runs retire bit-identical cycle counts; disabled, the whole feature is
    one load and one branch per charge. *)

type t

val create : every:int -> t
(** @raise Invalid_argument when [every <= 0]. *)

val every : t -> int

(* {2 The process-wide sampler} *)

val current : t option ref
(** Matched directly by [Sim.Cpu.charge]; [None] compiles the layer down
    to a load-and-branch. *)

val provider : (unit -> string list) option ref
(** Returns the current compartment stack, root first (e.g.
    [["trusted"; "untrusted"]] inside an FFI call).  Registered by the
    layer that owns the compartment stack; must not charge cycles. *)

val install : ?provider:(unit -> string list) -> t -> unit
val disable : unit -> unit
val active : unit -> bool

val with_sampler : ?provider:(unit -> string list) -> t -> (unit -> 'a) -> 'a
(** Installs sampler (and provider, when given) for the duration of the
    callback, restoring both afterwards (exception-safe). *)

(* {2 Recording} *)

val tick : t -> int -> unit
(** Advances the cycle credit by [n]; takes one sample per whole period
    elapsed (a single large charge spanning k periods records k samples
    against the same stack, keeping samples proportional to cycles). *)

(* {2 Reading} *)

val samples_total : t -> int

val stacks : t -> (string * int) list
(** [(folded stack, samples)], sorted by stack for deterministic output. *)

val leaf_counts : t -> (string * int) list
(** Samples aggregated by innermost frame — the per-compartment sample
    distribution checked against the flow matrix's cycle totals. *)

val leaf_shares : t -> (string * float) list
(** {!leaf_counts} normalised to fractions of all samples (empty when no
    samples were taken). *)

val to_folded : t -> string
(** One ["stack count"] line per distinct stack. *)

val to_json : t -> Util.Json.t
