(** The black-box flight recorder.

    Always-on once armed, it captures a bounded window of recent telemetry
    — events, closed and open spans, the last-N gate transitions, counters
    — plus a caller-provided context snapshot (cycles, per-hart PKRU, gate
    depth, suspect allocation) and turns it into a self-contained JSON
    post-mortem when something dies: a gate-verify kill, an unrecovered
    SEGV, mitigator degradation, a chaos invariant failure.

    The recorder does nothing on the happy path: instrumentation sites
    call {!dump}, which is a single [ref] load when disarmed, and the
    failure paths that call it are already off the cycle-charged fast
    path. *)

type t

val schema_version : string
(** ["pkru-safe.flight/1"] — stamped into every dump. *)

val current : t option ref
(** The armed recorder, if any.  Instrumentation sites call {!dump},
    which no-ops when this is [None]. *)

val create : ?path:string -> ?max_dumps:int -> unit -> t
(** [path] writes each dump to that file (latest wins); [max_dumps]
    (default 8) bounds the in-memory dump list. *)

val arm : ?path:string -> ?max_dumps:int -> unit -> t
(** Creates a recorder and installs it as {!current}. *)

val disarm : unit -> unit

val with_recorder : t -> (unit -> 'a) -> 'a
(** Installs [t] as {!current} for the callback, restoring the previous
    recorder afterwards (exception-safe). *)

val attach_sink : t -> Sink.t -> unit
(** Pins the sink whose rings dumps will capture; without an attachment,
    dumps read [!Sink.current] at dump time. *)

val set_context : t -> (unit -> Util.Json.t) -> unit
(** Registers the machine-context provider (cycles, per-hart PKRU, gate
    depth, last fault, suspect allocation).  A provider that raises is
    recorded as such rather than masking the original failure. *)

val dump : ?details:(string * Util.Json.t) list -> reason:string -> unit -> unit
(** The instrumentation-site entry point: snapshot everything into a
    dump on the current recorder.  No-op when disarmed; never raises. *)

val record : t -> reason:string -> details:(string * Util.Json.t) list -> Util.Json.t
(** Like {!dump} on a specific recorder, returning the dump. *)

val dumps : t -> Util.Json.t list
(** All retained dumps, oldest first. *)

val last : t -> Util.Json.t option
val dump_total : t -> int
(** Every dump ever recorded, including those evicted from the bounded
    list. *)

val render : Util.Json.t -> string
(** Renders a dump (as produced by {!dump} or re-parsed from its file)
    into the human-readable incident report the [doctor] CLI prints:
    context, gate-tail balance, span timeline with causal nesting, the
    open chain at death, and the last raw events. *)
