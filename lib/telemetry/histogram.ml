(* 63 buckets cover every non-negative OCaml int: bucket i holds values in
   [2^i, 2^(i+1)), with 0 and 1 both landing in bucket 0. *)
let nbuckets = 63

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
}

let create () = { buckets = Array.make nbuckets 0; count = 0; sum = 0; min = max_int; max = 0 }

let bucket_of v =
  if v <= 1 then 0
  else begin
    let i = ref 0 in
    let v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      incr i
    done;
    !i
  end

let bucket_lower i = if i = 0 then 0 else 1 lsl i
let bucket_upper i = (1 lsl (i + 1)) - 1

let observe t v =
  let v = max v 0 in
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min
let max_value t = t.max
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

(* Approximate: walks the cumulative bucket counts and reports the bucket's
   upper bound, clamped to the observed extrema.  Exact percentiles over raw
   samples live in Util.Stats.percentile; the histogram trades that
   precision for O(1) memory. *)
let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p outside [0, 100]";
  (* Same contract as Util.Stats.percentile: a percentile of nothing is a
     programming error, not 0. *)
  if t.count = 0 then invalid_arg "Histogram.percentile: empty histogram"
  else begin
    let rank = p /. 100.0 *. float_of_int t.count in
    let acc = ref 0 in
    let result = ref t.max in
    (try
       for i = 0 to nbuckets - 1 do
         acc := !acc + t.buckets.(i);
         if float_of_int !acc >= rank && t.buckets.(i) > 0 then begin
           result := bucket_upper i;
           raise Exit
         end
       done
     with Exit -> ());
    float_of_int (Stdlib.min t.max (Stdlib.max t.min !result))
  end

let nonempty_buckets t =
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.buckets.(i) > 0 then out := (bucket_lower i, bucket_upper i, t.buckets.(i)) :: !out
  done;
  !out

let to_json t =
  let open Util.Json in
  let pct p = if t.count = 0 then Null else Float (percentile t p) in
  Obj
    [
      ("count", Int t.count);
      ("sum", Int t.sum);
      ("min", Int (min_value t));
      ("max", Int t.max);
      ("mean", Float (mean t));
      ("p50", pct 50.0);
      ("p90", pct 90.0);
      ("p99", pct 99.0);
      ( "buckets",
        List
          (List.map
             (fun (lo, hi, n) -> Obj [ ("lo", Int lo); ("hi", Int hi); ("count", Int n) ])
             (nonempty_buckets t)) );
    ]
