type 'a t = {
  data : 'a option array;
  capacity : int;
  mutable next : int; (* slot the next push writes *)
  mutable length : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity None; capacity; next = 0; length = 0; dropped = 0 }

let push t v =
  if t.length = t.capacity then t.dropped <- t.dropped + 1
  else t.length <- t.length + 1;
  t.data.(t.next) <- Some v;
  t.next <- (t.next + 1) mod t.capacity

let length t = t.length
let capacity t = t.capacity
let dropped t = t.dropped

let to_list t =
  (* Oldest-first: the oldest live element sits at [next] once the buffer
     has wrapped, at 0 before that. *)
  let start = (t.next - t.length + t.capacity) mod t.capacity in
  List.init t.length (fun i ->
      match t.data.((start + i) mod t.capacity) with
      | Some v -> v
      | None -> assert false)

let iter t f = List.iter f (to_list t)

let clear t =
  Array.fill t.data 0 t.capacity None;
  t.next <- 0;
  t.length <- 0;
  t.dropped <- 0
