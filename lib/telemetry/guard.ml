(* Exclusive ownership of the process-wide telemetry writer slots.

   The sink, sampler, census and flight recorder are installed into
   process-global refs — fine for one session at a time, silently wrong
   under a fleet, where a second writer would cross-wire sessions'
   telemetry.  A fleet run acquires the guard for its duration; every
   install path calls [check], which raises while the guard is held.
   Single-session flows (the CLI, the runner, tests) never acquire it,
   so their cost is one load and one branch per install. *)

let owner : string option ref = ref None

let acquire label =
  match !owner with
  | Some held ->
    invalid_arg
      (Printf.sprintf
         "Telemetry.Guard: %S cannot take exclusive telemetry ownership: already held by %S"
         label held)
  | None -> owner := Some label

let release () = owner := None

let held () = !owner

let with_exclusive label f =
  acquire label;
  Fun.protect ~finally:release f

let check what =
  match !owner with
  | None -> ()
  | Some held ->
    invalid_arg
      (Printf.sprintf
         "%s: refusing to install a process-wide telemetry writer while fleet run %S is \
          active — per-session telemetry would be cross-wired; install the writer before \
          the fleet starts, or use the fleet's own telemetry mode"
         what held)
