(** Attribution analysis over a sink's event trace.

    PKRU-Safe's pipeline hinges on knowing {e which} allocation sites and
    gates are responsible for cross-boundary traffic.  This module folds a
    {!Sink} snapshot into two views:

    - a {b site heat map}: per-{!Runtime.Alloc_id} (as labelled by the
      instrumented allocator surface) allocation/free counts, allocated and
      live bytes, the pool (MT / MU) the site was served from, and MPK
      faults landing inside the site's live allocations;
    - a {b compartment flow matrix}: T→U and U→T gate crossings, the
      deepest gate nesting, and cycles spent per compartment — recovered
      from gate-event timestamps.

    All of it is post-processing over the bounded trace ring: it costs
    nothing during the measured run and degrades gracefully (counts cover
    the retained window) when the ring dropped events. *)

type t

type site = {
  site : string;
  mutable allocs : int;
  mutable frees : int;
  mutable bytes_allocated : int;
  mutable live_bytes : int;
  mutable peak_live_bytes : int;
  mutable mt_bytes : int;
  mutable mu_bytes : int;
  mutable mpk_faults : int;
}

type flow = {
  mutable t_to_u : int;
  mutable u_to_t : int;
  mutable crossings : int;
  mutable max_nesting : int;
  mutable cycles_trusted : int;
  mutable cycles_untrusted : int;
  mutable allocs_mt : int;
  mutable allocs_mu : int;
  mutable mpk_faults : int;
}

val unattributed : string
(** Site key used for allocations that carried no AllocId label. *)

val of_sink : ?total_cycles:int -> Sink.t -> t
(** Folds the sink's retained events.  Execution is assumed to start in
    the trusted compartment at cycle 0 (the runner resets counters before
    the timed region).  When [total_cycles] — the measured run length — is
    given, the tail after the last event is charged to the compartment
    then in force, so per-compartment cycles sum to the run length. *)

val sites : t -> site list
(** Descending by [bytes_allocated], ties broken by name. *)

val site_stats : t -> string -> site option
val flow : t -> flow

val unmatched_frees : t -> int
(** Frees whose allocation fell outside the retained trace window. *)

val total_cycles : t -> int
(** [cycles_trusted + cycles_untrusted]. *)

val compartment_cycle_share : t -> float * float
(** [(trusted, untrusted)] shares of attributed cycles, each in [0, 1];
    [(0, 0)] when no cycles were attributed. *)

val pool_of_site : site -> string
(** ["MT"], ["MU"] or ["MT+MU"]. *)

(* {2 Exports} *)

val site_json : site -> Util.Json.t
val site_heat_json : ?limit:int -> t -> Util.Json.t
(** [limit] keeps only the hottest N sites (the digest form bench results
    embed); [sites_total] always reports the full count. *)

val flow_json : t -> Util.Json.t
val to_json : ?site_limit:int -> t -> Util.Json.t

val site_table : ?limit:int -> t -> string
val flow_table : t -> string

val report : ?site_limit:int -> t -> string
(** Flow matrix + site heat as aligned text tables. *)
