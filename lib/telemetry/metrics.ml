(* A metrics registry in the Prometheus data model: named families of
   counters / gauges / histograms / windowed series, each family holding
   one cell per label set.  The registry is a passive container — nothing
   in the hot path touches it; exporters build one from a sink snapshot
   (see Export.to_metrics) and render it with [expose]. *)

type labels = (string * string) list

type series = {
  s_window : int; (* simulated cycles per bucket *)
  s_buckets : (int, float ref) Hashtbl.t; (* bucket index -> accumulated value *)
}

type cell =
  | Counter of int ref
  | Gauge of float ref
  | Hist of Histogram.t
  | Series of series

type family = {
  f_name : string;
  f_help : string;
  f_kind : string; (* "counter" | "gauge" | "histogram" | "series" *)
  f_cells : (labels, cell) Hashtbl.t;
}

type t = { families : (string, family) Hashtbl.t }

let create () = { families = Hashtbl.create 32 }

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. *)
let valid_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let family t ~kind ~help name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  match Hashtbl.find_opt t.families name with
  | Some f ->
    if f.f_kind <> kind then
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered as a %s, not a %s" name f.f_kind kind);
    f
  | None ->
    let f = { f_name = name; f_help = help; f_kind = kind; f_cells = Hashtbl.create 4 } in
    Hashtbl.add t.families name f;
    f

(* Prometheus label names: [a-zA-Z_][a-zA-Z0-9_]* (no colons, unlike
   metric names; "__"-prefixed names are reserved for internal use). *)
let valid_label_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name
  && not (String.length name >= 2 && name.[0] = '_' && name.[1] = '_')

(* Label sets are compared structurally; sort so ("a",_)::("b",_) and its
   permutation are the same cell.  Label values are unrestricted (any
   UTF-8, escaped at exposition time) but names must be valid — an
   invalid name would corrupt the text format for every scraper. *)
let norm labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label name %S" k))
    labels;
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let cell f labels make =
  let labels = norm labels in
  match Hashtbl.find_opt f.f_cells labels with
  | Some c -> c
  | None ->
    let c = make () in
    Hashtbl.add f.f_cells labels c;
    c

let wrong_kind name = invalid_arg (Printf.sprintf "Metrics: %S holds a different cell kind" name)

let counter t ?(help = "") ?(labels = []) name =
  let f = family t ~kind:"counter" ~help name in
  match cell f labels (fun () -> Counter (ref 0)) with
  | Counter r -> r
  | _ -> wrong_kind name

let incr ?(by = 1) r = r := !r + by

let gauge t ?(help = "") ?(labels = []) name =
  let f = family t ~kind:"gauge" ~help name in
  match cell f labels (fun () -> Gauge (ref 0.0)) with
  | Gauge r -> r
  | _ -> wrong_kind name

let set r v = r := v

let histogram t ?(help = "") ?(labels = []) name =
  let f = family t ~kind:"histogram" ~help name in
  match cell f labels (fun () -> Hist (Histogram.create ())) with
  | Hist h -> h
  | _ -> wrong_kind name

let attach_histogram t ?(help = "") ?(labels = []) name h =
  let f = family t ~kind:"histogram" ~help name in
  ignore (cell f labels (fun () -> Hist h))

let series t ?(help = "") ?(labels = []) ~window name =
  if window <= 0 then invalid_arg "Metrics.series: window must be positive";
  let f = family t ~kind:"series" ~help name in
  match cell f labels (fun () -> Series { s_window = window; s_buckets = Hashtbl.create 16 }) with
  | Series s -> s
  | _ -> wrong_kind name

let observe_series s ~cycle v =
  if cycle < 0 then invalid_arg "Metrics.observe_series: negative cycle";
  let bucket = cycle / s.s_window in
  match Hashtbl.find_opt s.s_buckets bucket with
  | Some r -> r := !r +. v
  | None -> Hashtbl.add s.s_buckets bucket (ref v)

let series_points s =
  Hashtbl.fold (fun bucket r acc -> (bucket * s.s_window, !r) :: acc) s.s_buckets []
  |> List.sort compare

let series_window s = s.s_window

(* --- Prometheus text exposition (version 0.0.4) --- *)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf {|\\|}
      | '"' -> Buffer.add_string buf {|\"|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf {|\\|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label_value v ^ "\"") labels)
    ^ "}"

(* Prometheus spells the special values "NaN", "+Inf" and "-Inf" —
   OCaml's %g would print "nan" / "inf", which scrapers reject. *)
let render_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let render_cell buf name labels = function
  | Counter r -> Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name (render_labels labels) !r)
  | Gauge r ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" name (render_labels labels) (render_float !r))
  | Hist h ->
    (* Cumulative le-buckets over the histogram's log2 bucket bounds. *)
    let cumulative = ref 0 in
    List.iter
      (fun (_, hi, n) ->
        cumulative := !cumulative + n;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" name
             (render_labels (labels @ [ ("le", string_of_int hi) ]))
             !cumulative))
      (Histogram.nonempty_buckets h);
    Buffer.add_string buf
      (Printf.sprintf "%s_bucket%s %d\n" name
         (render_labels (labels @ [ ("le", "+Inf") ]))
         (Histogram.count h));
    Buffer.add_string buf
      (Printf.sprintf "%s_sum%s %d\n" name (render_labels labels) (Histogram.sum h));
    Buffer.add_string buf
      (Printf.sprintf "%s_count%s %d\n" name (render_labels labels) (Histogram.count h))
  | Series s ->
    List.iter
      (fun (start, v) ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" name
             (render_labels (labels @ [ ("window_start", string_of_int start) ]))
             (render_float v)))
      (series_points s)

let expose t =
  let buf = Buffer.create 4096 in
  let families =
    Hashtbl.fold (fun _ f acc -> f :: acc) t.families []
    |> List.sort (fun a b -> compare a.f_name b.f_name)
  in
  List.iter
    (fun f ->
      if f.f_help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" f.f_name (escape_help f.f_help));
      (* A windowed series is a gauge sampled per cycle window. *)
      let exposition_type = if f.f_kind = "series" then "gauge" else f.f_kind in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.f_name exposition_type);
      Hashtbl.fold (fun labels c acc -> (labels, c) :: acc) f.f_cells []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (labels, c) -> render_cell buf f.f_name labels c))
    families;
  Buffer.contents buf

let cell_json = function
  | Counter r -> Util.Json.Int !r
  | Gauge r -> Util.Json.Float !r
  | Hist h -> Histogram.to_json h
  | Series s ->
    Util.Json.List
      (List.map
         (fun (start, v) ->
           Util.Json.Obj [ ("window_start", Util.Json.Int start); ("value", Util.Json.Float v) ])
         (series_points s))

let to_json t =
  let families =
    Hashtbl.fold (fun _ f acc -> f :: acc) t.families []
    |> List.sort (fun a b -> compare a.f_name b.f_name)
  in
  Util.Json.Obj
    (List.map
       (fun f ->
         let cells =
           Hashtbl.fold (fun labels c acc -> (labels, c) :: acc) f.f_cells []
           |> List.sort (fun (a, _) (b, _) -> compare a b)
           |> List.map (fun (labels, c) ->
                  Util.Json.Obj
                    [
                      ( "labels",
                        Util.Json.Obj (List.map (fun (k, v) -> (k, Util.Json.String v)) labels) );
                      ("value", cell_json c);
                    ])
         in
         ( f.f_name,
           Util.Json.Obj
             [
               ("type", Util.Json.String f.f_kind);
               ("help", Util.Json.String f.f_help);
               ("cells", Util.Json.List cells);
             ] ))
       families)
