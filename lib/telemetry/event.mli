(** The telemetry event taxonomy.

    Every observable action inside the simulated machine is one of these
    typed events; the instrumented subsystems construct them only when a
    sink is installed, so a disabled run allocates nothing.  Timestamps
    are simulated cycles ({!Sim.Machine.cycles} at emission), which makes
    traces deterministic and replayable. *)

type compartment =
  | Trusted
  | Untrusted

val compartment_to_string : compartment -> string

type signal =
  | Segv
  | Trap

val signal_to_string : signal -> string

type page_fault_kind =
  | Not_mapped       (** access to an unmapped address *)
  | Prot_violation   (** page-protection (not pkey) denial *)
  | Demand_paged     (** first touch materialised a reserved page *)

val page_fault_kind_to_string : page_fault_kind -> string

type t =
  | Gate_enter of { target : compartment }
      (** One gate side switching {e into} [target]. *)
  | Gate_exit of { target : compartment }
      (** The matching gate side restoring the saved view; [target] is the
          compartment being left. *)
  | Wrpkru of { value : int }
  | Mpk_fault of { addr : int; pkey : int }
  | Signal_dispatch of { signal : signal }
  | Alloc of { compartment : compartment; site : string option; addr : int; size : int }
      (** [site] is the printed {!Runtime.Alloc_id.t} when the allocation
          came through the instrumented global-allocator surface. *)
  | Free of { compartment : compartment; addr : int }
  | Page_fault of { addr : int; kind : page_fault_kind }
  | Thread_switch of { from_cpu : int; to_cpu : int }

type record = {
  ts : int;  (** simulated cycles at emission *)
  cpu : int; (** hart the event occurred on *)
  event : t;
}

val kind : t -> string
(** Stable snake_case tag, used as the counter key and JSON "kind". *)

val is_gate_transition : t -> bool
(** True for [Gate_enter]/[Gate_exit] — the events whose count must equal
    {!Runtime.Gate.transitions}. *)

val args_json : t -> (string * Util.Json.t) list
val record_to_json : record -> Util.Json.t
