(** A metrics registry in the Prometheus data model.

    Families are named once (with a type and optional help text) and hold
    one cell per label set: monotone counters, gauges, log₂ histograms
    ({!Histogram}) and cycle-windowed series — the last bucketing a value
    stream into per-K-cycles windows so a benchmark run can be plotted as
    a trajectory rather than a single aggregate.

    The registry is passive: nothing on the simulator's hot path writes
    into it.  Exporters fold a {!Sink} snapshot (plus attribution and
    sampler digests) into a registry and render it with {!expose}, whose
    output is the Prometheus text exposition format (0.0.4). *)

type t

type labels = (string * string) list

val create : unit -> t

(* {2 Cells}

   Each accessor registers the family on first use and returns the cell
   for the given label set, creating it when absent.
   @raise Invalid_argument if the name is not a valid Prometheus metric
   name ([[a-zA-Z_:][a-zA-Z0-9_:]*]), a label name is not a valid
   Prometheus label name ([[a-zA-Z_][a-zA-Z0-9_]*], no leading [__]),
   or the family was previously registered with a different type.
   Label {e values} are unrestricted — backslashes, quotes and newlines
   are escaped at exposition time per the 0.0.4 text format. *)

val counter : t -> ?help:string -> ?labels:labels -> string -> int ref
val incr : ?by:int -> int ref -> unit

val gauge : t -> ?help:string -> ?labels:labels -> string -> float ref
val set : float ref -> float -> unit

val histogram : t -> ?help:string -> ?labels:labels -> string -> Histogram.t

val attach_histogram : t -> ?help:string -> ?labels:labels -> string -> Histogram.t -> unit
(** Registers an already-populated histogram (e.g. one owned by a sink)
    under the family without copying it. *)

type series

val series : t -> ?help:string -> ?labels:labels -> window:int -> string -> series
(** A windowed time series: [window] simulated cycles per bucket.
    @raise Invalid_argument when [window <= 0]. *)

val observe_series : series -> cycle:int -> float -> unit
(** Adds [v] into the bucket containing [cycle].
    @raise Invalid_argument on a negative cycle. *)

val series_points : series -> (int * float) list
(** [(window_start_cycle, accumulated value)] per populated bucket,
    ascending. *)

val series_window : series -> int

(* {2 Export} *)

val expose : t -> string
(** Prometheus text format: [# HELP] / [# TYPE] headers, one sample line
    per cell (histograms expand to cumulative [_bucket]/[_sum]/[_count];
    series render as gauges with a [window_start] label).  Families and
    cells are emitted in sorted order so output is deterministic.  Label
    values escape backslash, double-quote and newline; help text escapes
    backslash and newline; non-finite gauge values render as [NaN] /
    [+Inf] / [-Inf] per the spec. *)

val to_json : t -> Util.Json.t
