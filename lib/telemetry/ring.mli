(** A bounded ring buffer that drops oldest-first at capacity.

    The trace buffer must never grow with run length — a multi-second
    simulated run emits millions of events — so the ring keeps the most
    recent [capacity] entries and counts what it discarded. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity <= 0]. *)

val push : 'a t -> 'a -> unit
(** O(1); evicts the oldest element when full. *)

val length : 'a t -> int
val capacity : 'a t -> int

val dropped : 'a t -> int
(** Elements evicted so far (total pushes = length + dropped). *)

val to_list : 'a t -> 'a list
(** Live elements, oldest first. *)

val iter : 'a t -> ('a -> unit) -> unit
val clear : 'a t -> unit
