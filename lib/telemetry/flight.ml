(* The black-box flight recorder.

   Armed once per run, it turns the sink's bounded rings (recent events,
   closed + open spans, the last-N gate transitions) plus a caller-
   provided context snapshot (PKRU per hart, gate depth, suspect
   allocation metadata) into a self-contained JSON post-mortem at the
   moment of death: gate-verify kills, unrecovered SEGVs, mitigator
   degradation, chaos invariant failures.  Dumps are kept in memory
   (bounded) and optionally written to a file for the `doctor` CLI.

   Nothing here runs unless [dump] is called, and [dump] is only called
   on failure paths — the recorder costs nothing on the happy path and
   never charges simulated cycles. *)

let schema_version = "pkru-safe.flight/1"

type t = {
  mutable sink : Sink.t option; (* explicit attachment; else !Sink.current at dump time *)
  mutable context : (unit -> Util.Json.t) option;
  mutable dumps : Util.Json.t list; (* newest first, bounded *)
  mutable dump_total : int;
  path : string option;
  max_dumps : int;
}

let current : t option ref = ref None

let create ?path ?(max_dumps = 8) () =
  { sink = None; context = None; dumps = []; dump_total = 0; path; max_dumps }

let arm ?path ?max_dumps () =
  Guard.check "Telemetry.Flight.arm";
  let t = create ?path ?max_dumps () in
  current := Some t;
  t

let disarm () = current := None

let with_recorder t f =
  Guard.check "Telemetry.Flight.with_recorder";
  let previous = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := previous) f

let attach_sink t sink = t.sink <- Some sink
let set_context t provider = t.context <- Some provider

let dumps t = List.rev t.dumps
let last t = match t.dumps with [] -> None | d :: _ -> Some d
let dump_total t = t.dump_total

(* Last-events window kept in a dump: enough to read the death's
   neighbourhood without shipping the whole 64k ring. *)
let tail n list =
  let len = List.length list in
  if len <= n then list else List.filteri (fun i _ -> i >= len - n) list

let dump_json t ~reason ~details =
  let open Util.Json in
  let sink = match t.sink with Some s -> Some s | None -> !Sink.current in
  let sink_fields =
    match sink with
    | None -> [ ("telemetry", Null) ]
    | Some sink ->
      let spans = Sink.spans sink in
      [
        ( "telemetry",
          Obj
            [
              ("events_total", Int (Sink.events_total sink));
              ("events_dropped", Int (Sink.dropped sink));
              ("gate_transitions", Int (Sink.gate_transitions sink));
              ("counters", Obj (List.map (fun (k, n) -> (k, Int n)) (Sink.counters sink)));
            ] );
        ("events", List (List.map Event.record_to_json (tail 512 (Sink.events sink))));
        ("gate_tail", List (List.map Event.record_to_json (Sink.gate_tail sink)));
        ( "spans",
          Obj
            [
              ("digest", Span.digest_json spans);
              ("closed", List (List.map Span.record_to_json (tail 256 (Span.closed spans))));
              ("open", List (List.map Span.record_to_json (Span.open_spans spans)));
            ] );
      ]
  in
  let context =
    match t.context with
    | None -> Null
    | Some provider -> ( try provider () with _ -> String "context provider raised")
  in
  Obj
    ([
       ("schema", String schema_version);
       ("reason", String reason);
       ("details", Obj details);
       ("context", context);
     ]
    @ sink_fields)

let write_path t json =
  match t.path with
  | None -> ()
  | Some path -> (
    try Out_channel.with_open_text path (fun oc -> output_string oc (Util.Json.to_string_pretty json ^ "\n"))
    with Sys_error _ -> () (* a failing disk must not mask the original failure *))

let record t ~reason ~details =
  let json = dump_json t ~reason ~details in
  t.dump_total <- t.dump_total + 1;
  t.dumps <- json :: (if List.length t.dumps >= t.max_dumps then tail (t.max_dumps - 1) (List.rev t.dumps) |> List.rev else t.dumps);
  write_path t json;
  json

(* The instrumentation-site entry point: a no-op when disarmed. *)
let dump ?(details = []) ~reason () =
  match !current with
  | None -> ()
  | Some t -> ignore (record t ~reason ~details)

(* --- doctor: render a dump into a human-readable incident report --- *)

let get ?(default = Util.Json.Null) key json =
  match Util.Json.member key json with v -> v | exception Not_found -> default

let opt_int json =
  match json with
  | Util.Json.Null -> None
  | v -> ( try Some (Util.Json.to_int v) with Invalid_argument _ -> None)

let span_line buf (r : Span.record) ~depth_of =
  let indent = String.make (2 * depth_of r.Span.id) ' ' in
  Buffer.add_string buf
    (Printf.sprintf "  %10d  cpu%-2d %s%s [%s] %s\n" r.Span.t_begin r.Span.cpu indent
       r.Span.name
       (Span.kind_to_string r.Span.kind)
       (if Span.is_open r then "OPEN at death"
        else Printf.sprintf "%d cycles" (Span.duration r)))

let render json =
  let open Util.Json in
  let buf = Buffer.create 4096 in
  let reason = match get "reason" json with String s -> s | _ -> "unknown" in
  Buffer.add_string buf (Printf.sprintf "=== Flight-recorder incident report ===\n");
  Buffer.add_string buf
    (Printf.sprintf "schema: %s\nreason: %s\n"
       (match get "schema" json with String s -> s | _ -> "?")
       reason);
  (match get "details" json with
  | Obj [] | Null -> ()
  | Obj fields ->
    List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s: %s\n" k (to_string v))) fields
  | _ -> ());
  (* Context: PKRU per hart, gate depth, suspect allocation. *)
  (match get "context" json with
  | Obj _ as ctx ->
    (match opt_int (get "cycles" ctx) with
    | Some c -> Buffer.add_string buf (Printf.sprintf "cycles at dump: %d\n" c)
    | None -> ());
    (match get "cpus" ctx with
    | List cpus ->
      List.iter
        (fun cpu ->
          match (opt_int (get "id" cpu), opt_int (get "pkru" cpu)) with
          | Some id, Some pkru ->
            Buffer.add_string buf (Printf.sprintf "cpu%d PKRU = 0x%08x\n" id pkru)
          | _ -> ())
        cpus
    | _ -> ());
    (match opt_int (get "gate_depth" ctx) with
    | Some 0 -> Buffer.add_string buf "gate stack: balanced (depth 0)\n"
    | Some d ->
      Buffer.add_string buf
        (Printf.sprintf "gate stack: IMBALANCED — depth %d at death (died inside a compartment)\n" d)
    | None -> ());
    (match get "last_fault" ctx with
    | Obj _ as f ->
      Buffer.add_string buf
        (Printf.sprintf "last fault: %s at 0x%x\n"
           (match get "kind" f with String s -> s | _ -> "?")
           (Option.value ~default:0 (opt_int (get "addr" f))))
    | _ -> ());
    (match get "suspect_alloc" ctx with
    | Obj _ as a ->
      Buffer.add_string buf
        (Printf.sprintf "suspect allocation: %s (base 0x%x, %d bytes)\n"
           (match get "alloc_id" a with String s -> s | _ -> "?")
           (Option.value ~default:0 (opt_int (get "base" a)))
           (Option.value ~default:0 (opt_int (get "size" a))))
    | _ -> ());
    (* Heap census at death: the last snapshot a live census took. *)
    (match get "census" ctx with
    | Obj _ as census ->
      Buffer.add_string buf
        (Printf.sprintf "heap census (snapshot at cycle %d):\n"
           (Option.value ~default:0 (opt_int (get "at_cycle" census))));
      (match get "pools" census with
      | Obj pools ->
        List.iter
          (fun (pool, stats) ->
            Buffer.add_string buf
              (Printf.sprintf
                 "  %-3s %d live bytes in %d objects, %d pages in use (peak %d), frag %.2f\n"
                 pool
                 (Option.value ~default:0 (opt_int (get "live_bytes" stats)))
                 (Option.value ~default:0 (opt_int (get "live_objects" stats)))
                 (Option.value ~default:0 (opt_int (get "pages_in_use" stats)))
                 (Option.value ~default:0 (opt_int (get "high_water_pages" stats)))
                 (match get "fragmentation" stats with
                 | Float f -> f
                 | Int i -> float_of_int i
                 | _ -> 0.0)))
          pools
      | _ -> ());
      (match get "sites" census with
      | List (_ :: _ as sites) ->
        Buffer.add_string buf (Printf.sprintf "  %d live site(s); hottest:\n" (List.length sites));
        let by_bytes =
          List.sort
            (fun a b ->
              compare
                (Option.value ~default:0 (opt_int (get "live_bytes" b)))
                (Option.value ~default:0 (opt_int (get "live_bytes" a))))
            sites
        in
        List.iteri
          (fun i site ->
            if i < 5 then
              Buffer.add_string buf
                (Printf.sprintf "    %s [%s] %d bytes / %d objects\n"
                   (match get "site" site with String s -> s | _ -> "?")
                   (match get "pool" site with String s -> s | _ -> "?")
                   (Option.value ~default:0 (opt_int (get "live_bytes" site)))
                   (Option.value ~default:0 (opt_int (get "live_objects" site)))))
          by_bytes
      | _ -> ())
    | _ -> ())
  | _ -> ());
  (* Gate tail: the recent crossing history and its enter/exit balance. *)
  (match get "gate_tail" json with
  | List tail when tail <> [] ->
    let enters =
      List.length (List.filter (fun e -> get "kind" e = String "gate_enter") tail)
    in
    let exits = List.length tail - enters in
    Buffer.add_string buf
      (Printf.sprintf "\nlast %d gate transitions (%d enter / %d exit%s):\n" (List.length tail)
         enters exits
         (if enters = exits then "" else " — IMBALANCED TAIL"));
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "  %10d  cpu%-2d %-10s -> %s\n"
             (Option.value ~default:0 (opt_int (get "ts" e)))
             (Option.value ~default:0 (opt_int (get "cpu" e)))
             (match get "kind" e with String s -> s | _ -> "?")
             (match get "target" e with String s -> s | _ -> "?")))
      (tail |> fun l -> if List.length l > 12 then List.filteri (fun i _ -> i >= List.length l - 12) l else l)
  | _ -> ());
  (* Span timeline: closed spans then the open chain, indented by
     parent depth so the causal nesting is visible. *)
  (match get "spans" json with
  | Obj _ as spans -> (
    let records field =
      match get field spans with
      | List l -> List.map Span.record_of_json l
      | _ -> []
    in
    let closed = records "closed" and opened = records "open" in
    let all = closed @ opened in
    let parents = List.map (fun r -> (r.Span.id, r.Span.parent)) all in
    let rec depth id n =
      if n > 32 then n
      else
        match List.assoc_opt id parents with
        | Some 0 | None -> n
        | Some p -> depth p (n + 1)
    in
    let depth_of id = depth id 0 in
    match all with
    | [] -> ()
    | _ ->
      Buffer.add_string buf "\nspan timeline (cycle, hart, causal nesting):\n";
      List.iter (fun r -> span_line buf r ~depth_of)
        (List.sort (fun a b -> compare (a.Span.t_begin, a.Span.id) (b.Span.t_begin, b.Span.id))
           (tail 40 all));
      (match opened with
      | [] -> ()
      | _ ->
        Buffer.add_string buf "\ncausal chain open at death (root -> leaf):\n";
        List.iter
          (fun r ->
            Buffer.add_string buf
              (Printf.sprintf "  #%d %s (%s), opened at cycle %d on cpu%d\n" r.Span.id r.Span.name
                 (Span.kind_to_string r.Span.kind) r.Span.t_begin r.Span.cpu))
          (List.sort (fun a b -> compare a.Span.id b.Span.id) opened)))
  | _ -> ());
  (* Event neighbourhood: the last few raw events before death. *)
  (match get "events" json with
  | List events when events <> [] ->
    let last = if List.length events > 10 then List.filteri (fun i _ -> i >= List.length events - 10) events else events in
    Buffer.add_string buf (Printf.sprintf "\nlast %d events:\n" (List.length last));
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "  %10d  cpu%-2d %s\n"
             (Option.value ~default:0 (opt_int (get "ts" e)))
             (Option.value ~default:0 (opt_int (get "cpu" e)))
             (match get "kind" e with String s -> s | _ -> "?")))
      last
  | _ -> ());
  Buffer.contents buf
