(** Sink exporters: compact JSON, Chrome [trace_event] JSON, ASCII summary. *)

val to_json : Sink.t -> Util.Json.t
(** Full snapshot: counters, histogram summaries, the trace, and the
    span store (digest + closed + open records). *)

val spans_json : Sink.t -> Util.Json.t
(** Just the span store: [{digest; closed; open}]. *)

val chrome_trace : Sink.t -> Util.Json.t
(** Chrome trace_event format, loadable in [chrome://tracing] or Perfetto
    ([ui.perfetto.dev]).  Gate enters/exits become nested duration slices
    (one [ph:"B"] or [ph:"E"] record per transition, so the slice-record
    count equals {!Sink.gate_transitions}); every other event is an
    instant.  Causal spans ride on a separate track ([pid 1]): closed
    spans as [ph:"X"] complete slices with explicit [dur], still-open
    spans as dangling [ph:"B"] slices. *)

val gate_latencies : Sink.t -> float list
(** Gate round-trip times (cycles) recovered by pairing enter/exit records
    in the trace, per hart, in completion order. *)

val summary_json : ?census:Census.t -> Sink.t -> Util.Json.t
(** Counters, histogram summaries, exact gate round-trip percentiles,
    the span digest and (when given) the heap-census digest — everything
    except the raw event trace. *)

val summary : Sink.t -> string
(** Human-readable overview: event totals, counter table, histogram
    percentile table, exact gate round-trip percentiles, and a per-name
    span table when any spans were recorded. *)

val to_metrics :
  ?attribution:Attribution.t ->
  ?sampler:Sampler.t ->
  ?census:Census.t ->
  ?series_window:int ->
  ?tlb:int * int * int ->
  Sink.t ->
  Metrics.t
(** Folds a sink snapshot into a {!Metrics} registry: event-kind counters
    ([pkru_events_total{kind=...}]), the sink's histograms, windowed
    gate-crossing / allocation series ([series_window] cycles per bucket,
    default 1/50th of the trace span), plus labelled site-heat and
    flow-matrix metrics when [attribution] is given, per-stack sample
    counters when [sampler] is, and — when [census] is — the
    [pkru_census_*] / [pkru_pool_*] families (per-pool live bytes /
    objects / fragmentation / page high-water gauges, per-site live
    views, snapshot totals and the object-age histogram, all from the
    latest snapshot).

    Software-TLB effectiveness is always exposed as
    [pkru_tlb_hits_total] / [pkru_tlb_misses_total] /
    [pkru_tlb_flushes_total] (zeroes included): from [tlb] as
    [(hits, misses, flushes)] when given, otherwise from the sink
    counters ["tlb_hit"] / ["tlb_miss"] / ["tlb_flush"] that
    [Workloads.Runner] injects after a timed run. *)

val prometheus :
  ?attribution:Attribution.t ->
  ?sampler:Sampler.t ->
  ?census:Census.t ->
  ?series_window:int ->
  ?tlb:int * int * int ->
  Sink.t ->
  string
(** [Metrics.expose] of {!to_metrics}: the Prometheus text format. *)
