(* The cycle-driven sampling profiler.  The machine's charge path ticks
   the installed sampler with every batch of retired cycles; each time a
   whole sampling period elapses the sampler snapshots the current
   compartment stack (via the registered provider) into a folded-stack
   count.  Output is the standard flamegraph collapsed format:
   "frame;frame;frame <samples>" per line.

   Like the sink, the sampler charges no simulated cycles and the disabled
   path is one load and one branch, so traced and untraced runs retire
   identical cycle counts. *)

type t = {
  every : int; (* sampling period in simulated cycles *)
  mutable credit : int; (* cycles accumulated toward the next sample *)
  mutable total : int; (* samples taken *)
  counts : (string, int ref) Hashtbl.t; (* folded stack -> samples *)
}

let create ~every =
  if every <= 0 then invalid_arg "Sampler.create: every must be positive";
  { every; credit = 0; total = 0; counts = Hashtbl.create 32 }

let every t = t.every

(* The process-wide sampler, matched directly by Cpu.charge. *)
let current : t option ref = ref None

(* Snapshot provider: returns the current compartment stack, root first.
   Registered by the runtime layer that owns the stack (Env/Gate); the
   telemetry library cannot depend on it directly. *)
let provider : (unit -> string list) option ref = ref None

let record t frames weight =
  let key = String.concat ";" frames in
  (match Hashtbl.find_opt t.counts key with
  | Some r -> r := !r + weight
  | None -> Hashtbl.add t.counts key (ref weight));
  t.total <- t.total + weight

let tick t n =
  t.credit <- t.credit + n;
  if t.credit >= t.every then begin
    (* A single large charge may span several periods: each contributes
       one sample so sample counts stay proportional to cycles. *)
    let k = t.credit / t.every in
    t.credit <- t.credit - (k * t.every);
    let frames = match !provider with Some f -> f () | None -> [ "(no stack provider)" ] in
    record t frames k
  end

let samples_total t = t.total

let stacks t =
  Hashtbl.fold (fun key r acc -> (key, !r) :: acc) t.counts [] |> List.sort compare

let leaf_of key =
  match String.rindex_opt key ';' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let leaf_counts t =
  let acc = Hashtbl.create 8 in
  Hashtbl.iter
    (fun key r ->
      let leaf = leaf_of key in
      match Hashtbl.find_opt acc leaf with
      | Some l -> l := !l + !r
      | None -> Hashtbl.add acc leaf (ref !r))
    t.counts;
  Hashtbl.fold (fun leaf r out -> (leaf, !r) :: out) acc [] |> List.sort compare

let leaf_shares t =
  if t.total = 0 then []
  else List.map (fun (leaf, n) -> (leaf, float_of_int n /. float_of_int t.total)) (leaf_counts t)

let to_folded t =
  let buf = Buffer.create 1024 in
  List.iter (fun (key, n) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" key n)) (stacks t);
  Buffer.contents buf

let to_json t =
  let open Util.Json in
  Obj
    [
      ("sample_every_cycles", Int t.every);
      ("samples_total", Int t.total);
      ( "stacks",
        List
          (List.map
             (fun (key, n) -> Obj [ ("stack", String key); ("samples", Int n) ])
             (stacks t)) );
      ( "leaf_shares",
        Obj (List.map (fun (leaf, share) -> (leaf, Float share)) (leaf_shares t)) );
    ]

let install ?provider:p t =
  Guard.check "Telemetry.Sampler.install";
  current := Some t;
  match p with Some _ -> provider := p | None -> ()

let disable () =
  current := None;
  provider := None

let active () = !current <> None

let with_sampler ?provider:p t f =
  Guard.check "Telemetry.Sampler.with_sampler";
  let previous = !current in
  let previous_provider = !provider in
  current := Some t;
  (match p with Some _ -> provider := p | None -> ());
  Fun.protect
    ~finally:(fun () ->
      current := previous;
      provider := previous_provider)
    f
