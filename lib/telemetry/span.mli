(** Hierarchical causal spans: cycle-stamped intervals with parent links,
    opened at compartment crossings, mitigator incidents, chaos
    injections and workload phases.

    Each hart keeps a stack of open spans; a new span's parent is the
    span that was open on that hart when it began, so a crash's open
    chain reads as the causal path to the failure.  Closed spans land in
    a bounded ring (oldest evicted first).  Recording never charges
    simulated cycles. *)

type kind =
  | Gate      (** one compartment residency between a gate enter and its exit *)
  | Incident  (** a mitigator adjudication (instant) *)
  | Chaos     (** a chaos-harness injection window *)
  | Phase     (** an engine / browser workload phase *)
  | Census    (** one heap-census snapshot walk (instant) *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type record = {
  id : int;             (** 1-based, unique within the store *)
  parent : int;         (** 0 = root *)
  name : string;
  kind : kind;
  cpu : int;
  t_begin : int;
  mutable t_end : int;  (** -1 while open *)
}

val is_open : record -> bool
val duration : record -> int
(** [t_end - t_begin]; 0 while open. *)

type t

val default_capacity : int
(** 8192 closed spans. *)

val create : ?capacity:int -> unit -> t

val enter : t -> ts:int -> cpu:int -> kind:kind -> string -> int
(** Opens a span and returns its id; the parent is the hart's innermost
    open span. *)

val exit : t -> ts:int -> cpu:int -> ?id:int -> unit -> unit
(** Closes the hart's innermost open span.  With [id], pops until that
    span closes, closing any abandoned inner spans at the same timestamp
    (exception-unwind coherence).  A close with no matching open is a
    no-op. *)

val instant : t -> ts:int -> cpu:int -> kind:kind -> string -> int
(** A zero-duration span, parented like {!enter}, immediately closed. *)

val closed : t -> record list
(** Closed spans still in the ring, oldest first. *)

val open_spans : t -> record list
(** Every open span across all harts, by id. *)

val open_chain : t -> cpu:int -> record list
(** The open spans on one hart, root first: the causal path to "now". *)

val opened_total : t -> int
val dropped : t -> int

val record_to_json : record -> Util.Json.t
val record_of_json : Util.Json.t -> record
(** Inverse of {!record_to_json}.
    @raise Invalid_argument on malformed input. *)

val digest_json : t -> Util.Json.t
(** Aggregate per-name counts / cycle totals plus store accounting —
    the [spans] digest carried by report and bench artifacts. *)
