(** Exclusive ownership of the process-wide telemetry writer slots.

    The sink ({!Sink.current}), sampler ({!Sampler.current}/provider),
    census ({!Census.current}/provider) and flight recorder
    ({!Flight.current}) are process-global refs.  A fleet run — many
    concurrent sessions — takes the guard for its duration; every
    install path calls {!check}, which raises [Invalid_argument] with a
    clear message while the guard is held, instead of silently
    cross-wiring sessions' telemetry.  With the guard free, [check] is
    one load and one branch. *)

val acquire : string -> unit
(** Take ownership under the given label (e.g. ["fleet n=1000"]).
    @raise Invalid_argument if already held. *)

val release : unit -> unit

val held : unit -> string option
(** The current owner's label, if any. *)

val with_exclusive : string -> (unit -> 'a) -> 'a
(** [acquire]/[release] around [f], exception-safe. *)

val check : string -> unit
(** Called from writer install paths with the caller's name.
    @raise Invalid_argument while the guard is held. *)
