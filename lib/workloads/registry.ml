(* The name -> workload registry shared by the CLI and the bench harness,
   so "unknown name" errors can list every valid spelling. *)

let suites =
  [
    ("dromaeo", Dromaeo.all);
    ("dom", Dromaeo.dom);
    ("v8", Dromaeo.v8);
    ("sunspider", Dromaeo.sunspider);
    ("jslib", Dromaeo.jslib);
    ("kraken", Kraken.all);
    ("octane", Octane.all);
    ("jetstream2", Jetstream.all);
  ]

let suite_names = List.map fst suites

(* The four paper suites; the Dromaeo sub-suites partition [Dromaeo.all],
   so only the parent is included when enumerating benchmarks. *)
let top_suites = [ Dromaeo.all; Kraken.all; Octane.all; Jetstream.all ]

let benches = List.concat_map (fun s -> s.Bench_def.benches) top_suites
let bench_names = List.map (fun (b : Bench_def.bench) -> b.Bench_def.name) benches

let suite_of_name name =
  match List.assoc_opt name suites with
  | Some suite -> Ok suite
  | None ->
    Error (Printf.sprintf "unknown suite %S; known: %s" name (String.concat ", " suite_names))

let bench_of_name name =
  match List.find_opt (fun (b : Bench_def.bench) -> b.Bench_def.name = name) benches with
  | Some bench -> Ok bench
  | None ->
    Error
      (Printf.sprintf "unknown benchmark %S; known: %s" name (String.concat ", " bench_names))
