(** The bench regression sentinel.

    A fixed set of small probe workloads whose simulated cycle counts are
    deterministic, compared against a checked-in, schema-versioned
    baseline ([BENCH_BASELINE.json]).  Because the simulator is
    deterministic, the cycle comparison is {e exact}: any drift means the
    simulation's behaviour changed and is flagged hard.  Host wall-clock
    is machine-dependent and only ever warns, past a generous tolerance
    factor. *)

val schema_version : string
(** ["pkru-safe.bench-baseline/1"] — stamped into every baseline file and
    checked on load. *)

type probe_result = {
  p_name : string;
  p_tier : string;  (** engine execution tier: ["ast"], ["bytecode"] or ["threaded"] *)
  p_cycles : int;  (** simulated cycles — deterministic, compared exactly *)
  p_transitions : int;  (** gate transitions — deterministic, compared exactly *)
  p_wall_s : float;  (** host wall time — machine-dependent, warn-only *)
}

val probe_names : string list
(** Names of the probes [run_probes] produces, in order. *)

val twin_pairs : (string * string) list
(** Probe pairs the baseline pins cycle-equal: the mitigator's, the
    census's and the threaded dispatch tier's architectural invisibility,
    each expressed as a pair of probes that must report identical cycles
    and transitions. *)

val twin_mismatches : probe_result list -> (string * string) list
(** The {!twin_pairs} whose two probes diverged in this run (pairs with a
    missing member are skipped — [compare_results] flags those). *)

val run_probes : unit -> probe_result list
(** Profile and run every probe (fresh machine per probe, same pipeline as
    the bench harness). *)

val commit_hash : unit -> string
(** [git rev-parse HEAD], or ["unknown"] outside a git checkout. *)

val result_to_json : probe_result -> Util.Json.t
val result_of_json : Util.Json.t -> probe_result

val baseline_json : ?commit:string -> probe_result list -> Util.Json.t
(** Wrap results as a baseline artifact: [{schema; commit; probes}].
    [commit] defaults to {!commit_hash}[ ()]. *)

val baseline_of_json : Util.Json.t -> string * probe_result list
(** Inverse of {!baseline_json}; returns [(commit, results)].  Raises
    [Invalid_argument] on a missing or mismatched schema stamp. *)

type verdict =
  | Match
  | Cycle_drift of { base_cycles : int; base_transitions : int }
      (** simulated cycles or transitions differ from the baseline — a
          hard flag, the deterministic simulation changed *)
  | Wall_slow of { base_wall_s : float; ratio : float }
      (** host wall time exceeded [wall_tolerance] × baseline {e and} the
          absolute slowdown exceeds 50ms — warn-only; the probes take
          ~1ms, so a ratio alone would warn on scheduler noise *)
  | Missing_in_baseline  (** probe ran but the baseline has no entry — warn-only *)
  | Missing_in_run  (** baseline entry with no fresh result — hard flag *)

val is_regression : verdict -> bool
(** [Cycle_drift] and [Missing_in_run]. *)

val is_warning : verdict -> bool
(** [Wall_slow] and [Missing_in_baseline]. *)

val default_wall_tolerance : float
(** 2.5× — CI machines are slow and noisy; only flag order-of-magnitude
    problems. *)

val compare_results :
  ?wall_tolerance:float ->
  baseline:probe_result list ->
  probe_result list ->
  (string * probe_result * verdict) list
(** Diff a fresh run against the baseline.  One entry per fresh probe (in
    run order) followed by one [Missing_in_run] entry per baseline probe
    the run did not produce (carrying the baseline's own result). *)

val has_regression : (string * probe_result * verdict) list -> bool

val render_comparison : commit:string -> (string * probe_result * verdict) list -> string
(** Human-readable comparison table, one line per probe plus a summary
    line; [commit] is the baseline's stamp. *)
