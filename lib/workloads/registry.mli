(** Name lookup for suites and benchmarks.

    One registry backs the CLI ([suite], [trace], [report]) and the bench
    harness, so an unknown name always fails with the same message — one
    that lists every valid spelling — instead of a bare "unknown". *)

val suites : (string * Bench_def.suite) list
(** Every addressable suite: the four paper suites plus the Dromaeo
    sub-suites ([dom], [v8], [sunspider], [jslib]). *)

val suite_names : string list

val benches : Bench_def.bench list
(** Every benchmark, enumerated from the four top-level suites (the
    Dromaeo sub-suites partition [dromaeo], so no benchmark repeats). *)

val bench_names : string list

val suite_of_name : string -> (Bench_def.suite, string) result
(** [Error] carries a message listing all of {!suite_names}. *)

val bench_of_name : string -> (Bench_def.bench, string) result
(** [Error] carries a message listing all of {!bench_names}. *)
