type measurement = {
  cycles : int;
  transitions : int;
  pct_mu : float;
  mt_bytes : int;
  mu_bytes : int;
  output : string list;
  trace : Telemetry.Sink.t option;
  samples : Telemetry.Sampler.t option;
  census : Telemetry.Census.t option;
  quarantined_sites : string list;
}

type bench_result = {
  bench : string;
  base : measurement;
  alloc : measurement;
  mpk : measurement;
  alloc_overhead_pct : float;
  mpk_overhead_pct : float;
  outputs_agree : bool;
}

type suite_result = {
  suite : string;
  bench_results : bench_result list;
  mean_alloc_pct : float;
  mean_mpk_pct : float;
  total_transitions : int;
  mean_pct_mu : float;
}

let fail_on_error = function
  | Ok v -> v
  | Error msg -> failwith ("Workloads.Runner: " ^ msg)

let profile_bench ?engine_tier (bench : Bench_def.bench) =
  let env =
    fail_on_error (Pkru_safe.Env.create (Pkru_safe.Config.make Pkru_safe.Config.Profiling))
  in
  let browser = Browser.create ~engine_seed:bench.Bench_def.engine_seed env in
  Browser.load_page browser bench.Bench_def.page;
  ignore (Browser.exec_script ?tier:engine_tier browser bench.Bench_def.script);
  Pkru_safe.Env.recorded_profile env

let profile_suite (suite : Bench_def.suite) =
  List.fold_left
    (fun acc bench -> Runtime.Profile.merge acc (profile_bench bench))
    (Runtime.Profile.create ()) suite.Bench_def.benches

let run_config ?(telemetry = false) ?sample_every ?census_every ?tlb ?mitigation ?engine_tier
    ~mode ~profile (bench : Bench_def.bench) =
  let env =
    fail_on_error (Pkru_safe.Env.create ~profile (Pkru_safe.Config.make ?tlb ?mitigation mode))
  in
  (* Census tracking must cover page-load allocations too: objects built
     during setup are still live — and ageing — when the timed script
     runs. *)
  if census_every <> None then Pkru_safe.Env.track_census env;
  let browser = Browser.create ~engine_seed:bench.Bench_def.engine_seed env in
  Browser.load_page browser bench.Bench_def.page;
  (* Page construction is setup; the script run is what the suites time. *)
  Pkru_safe.Env.reset_counters env;
  (* Engine IC / superinstruction counters are per-instance; reset so the
     deltas injected below describe this timed run only. *)
  Engine.reset_stats (Browser.engine browser);
  Browser.reset_selector_stats browser;
  let exec () = ignore (Browser.exec_script ?tier:engine_tier browser bench.Bench_def.script) in
  let sampler = Option.map (fun every -> Telemetry.Sampler.create ~every) sample_every in
  let exec =
    match sampler with
    | None -> exec
    | Some s ->
      fun () ->
        Telemetry.Sampler.with_sampler ~provider:(fun () -> Pkru_safe.Env.stack_frames env) s
          exec
  in
  let census = Option.map (fun every -> Telemetry.Census.create ~every ()) census_every in
  let exec =
    match census with
    | None -> exec
    | Some c ->
      fun () ->
        Telemetry.Census.with_census ~provider:(Pkru_safe.Env.census_snapshot env) c exec
  in
  let trace =
    if telemetry then begin
      let sink = Telemetry.Sink.create () in
      let machine = Pkru_safe.Env.machine env in
      let before = Sim.Machine.tlb_stats machine in
      Telemetry.Sink.with_sink sink exec;
      (* TLB counters are injected after the timed run, never emitted from
         the access path, so event traces and timestamps stay bit-identical
         with the TLB on or off; only these counter values differ. *)
      let after = Sim.Machine.tlb_stats machine in
      Telemetry.Sink.incr sink ~by:(after.Sim.Tlb.hits - before.Sim.Tlb.hits) "tlb_hit";
      Telemetry.Sink.incr sink ~by:(after.Sim.Tlb.misses - before.Sim.Tlb.misses) "tlb_miss";
      Telemetry.Sink.incr sink ~by:(after.Sim.Tlb.flushes - before.Sim.Tlb.flushes) "tlb_flush";
      (* Engine fast-tier counters, injected the same way (post-run, never
         from the execution path): inline-cache hit/miss digests and
         superinstruction executions.  All zero on the AST and reference
         bytecode tiers. *)
      let ic = Engine.Eval.ic_stats (Engine.evaluator (Browser.engine browser)) in
      let ts = Engine.threaded_stats (Browser.engine browser) in
      Telemetry.Sink.incr sink ~by:ic.Engine.Eval.var_hits "engine_var_ic_hit";
      Telemetry.Sink.incr sink ~by:ic.Engine.Eval.var_misses "engine_var_ic_miss";
      Telemetry.Sink.incr sink ~by:ts.Engine.Threaded.prop_hits "engine_prop_ic_hit";
      Telemetry.Sink.incr sink ~by:ts.Engine.Threaded.prop_misses "engine_prop_ic_miss";
      Telemetry.Sink.incr sink ~by:ts.Engine.Threaded.super_execs "engine_super_exec";
      let sel = Browser.selector_stats browser in
      Telemetry.Sink.incr sink ~by:sel.Browser.sel_hits "engine_selector_hit";
      Telemetry.Sink.incr sink ~by:sel.Browser.sel_misses "engine_selector_miss";
      Some sink
    end
    else begin
      exec ();
      None
    end
  in
  let mt_bytes, mu_bytes = Pkru_safe.Env.t_heap_bytes env in
  {
    cycles = Pkru_safe.Env.cycles env;
    transitions = Pkru_safe.Env.transitions env;
    pct_mu = Pkru_safe.Env.percent_untrusted_bytes env;
    mt_bytes;
    mu_bytes;
    output = Browser.console browser;
    trace;
    samples = sampler;
    census;
    quarantined_sites = Allocators.Pkalloc.quarantined_sites (Pkru_safe.Env.pkalloc env);
  }

let overhead ~base ~measured =
  Util.Stats.percent_overhead ~baseline:(float_of_int base.cycles)
    ~measured:(float_of_int measured.cycles)

let run_bench ?(telemetry = false) ?sample_every ~profile (bench : Bench_def.bench) =
  let base = run_config ~telemetry ?sample_every ~mode:Pkru_safe.Config.Base ~profile bench in
  let alloc =
    run_config ~telemetry ?sample_every ~mode:Pkru_safe.Config.Alloc ~profile bench
  in
  let mpk = run_config ~telemetry ?sample_every ~mode:Pkru_safe.Config.Mpk ~profile bench in
  {
    bench = bench.Bench_def.name;
    base;
    alloc;
    mpk;
    alloc_overhead_pct = overhead ~base ~measured:alloc;
    mpk_overhead_pct = overhead ~base ~measured:mpk;
    outputs_agree = base.output = alloc.output && base.output = mpk.output;
  }

let run_suite ?(progress = fun _ -> ()) ?(telemetry = false) ?sample_every
    (suite : Bench_def.suite) =
  let profile = profile_suite suite in
  let bench_results =
    List.map
      (fun bench ->
        progress bench.Bench_def.name;
        run_bench ~telemetry ?sample_every ~profile bench)
      suite.Bench_def.benches
  in
  let mean f = Util.Stats.mean (List.map f bench_results) in
  (* Suite-level %MU is aggregated over bytes (as the paper's per-suite
     statistic is), not a mean of per-benchmark ratios. *)
  let mt = List.fold_left (fun acc r -> acc + r.mpk.mt_bytes) 0 bench_results in
  let mu = List.fold_left (fun acc r -> acc + r.mpk.mu_bytes) 0 bench_results in
  {
    suite = suite.Bench_def.suite_name;
    bench_results;
    mean_alloc_pct = mean (fun r -> r.alloc_overhead_pct);
    mean_mpk_pct = mean (fun r -> r.mpk_overhead_pct);
    total_transitions = List.fold_left (fun acc r -> acc + r.mpk.transitions) 0 bench_results;
    mean_pct_mu =
      (if mt + mu = 0 then 0.0 else 100.0 *. float_of_int mu /. float_of_int (mt + mu));
  }

let score m = 1e9 /. float_of_int (max m.cycles 1)

let geomean_score result mode =
  let pick (r : bench_result) =
    match mode with
    | Pkru_safe.Config.Base -> r.base
    | Pkru_safe.Config.Alloc -> r.alloc
    | Pkru_safe.Config.Mpk | Pkru_safe.Config.Profiling -> r.mpk
  in
  Util.Stats.geomean (List.map (fun r -> score (pick r)) result.bench_results)
