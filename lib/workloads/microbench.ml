type result = {
  name : string;
  ungated_cycles_per_call : float;
  gated_cycles_per_call : float;
  overhead_x : float;
}

let fail_on_error = function
  | Ok v -> v
  | Error msg -> failwith ("Workloads.Microbench: " ^ msg)

type fixture = {
  env : Pkru_safe.Env.t;
  machine : Sim.Machine.t;
  gate : Runtime.Gate.t;
  shared : int; (* an MU object both compartments may touch *)
}

let fixture () =
  let env =
    fail_on_error
      (Pkru_safe.Env.create ~profile:(Runtime.Profile.create ())
         (Pkru_safe.Config.make Pkru_safe.Config.Mpk))
  in
  let machine = Pkru_safe.Env.machine env in
  let shared = Pkru_safe.Env.malloc_untrusted env 64 in
  Sim.Machine.write_u64 machine shared 7;
  { env; machine; gate = Pkru_safe.Env.gate env; shared }

let cost f = f.machine.Sim.Machine.cpu.Sim.Cpu.cost

(* One FFI invocation: caller-side call/ret plus the callee body.  The
   gated variant brackets the body exactly as the generated wrappers do. *)
let invoke f ~gated body =
  let c = cost f in
  Sim.Machine.charge f.machine c.Sim.Cost.call;
  if gated then Runtime.Gate.call_untrusted f.gate body else body ();
  Sim.Machine.charge f.machine c.Sim.Cost.ret

let measure f ~gated ~iterations body =
  (* Warm once so demand-paging charges do not skew the per-call figure. *)
  invoke f ~gated body;
  let start = Sim.Machine.cycles f.machine in
  for _ = 1 to iterations do
    invoke f ~gated body
  done;
  float_of_int (Sim.Machine.cycles f.machine - start) /. float_of_int iterations

let empty_body _f () = ()

let read_one_body f () = ignore (Sim.Machine.read_u64 f.machine f.shared)

(* The callee invokes a T callback through a function pointer; the gated
   variant pays the reverse gate, the trusted variant a plain indirect
   call.  The callback body itself is empty. *)
let callback_body f ~gated () =
  let c = cost f in
  (* Argument marshalling before the indirect call, as the real workload's
     callee does. *)
  Sim.Machine.charge f.machine ((3 * c.Sim.Cost.alu) + (2 * c.Sim.Cost.load));
  Sim.Machine.charge f.machine c.Sim.Cost.call_indirect;
  if gated then Runtime.Gate.callback_trusted f.gate (fun () -> ())
  else ();
  Sim.Machine.charge f.machine c.Sim.Cost.ret

let work_body f ~loops () =
  let c = cost f in
  for _ = 1 to loops do
    Sim.Machine.charge f.machine ((2 * c.Sim.Cost.alu) + c.Sim.Cost.branch)
  done

let run_one ~iterations name body_of =
  (* Separate fixtures so cycle counters and pools are independent. *)
  let trusted = fixture () in
  let untrusted = fixture () in
  let ungated = measure trusted ~gated:false ~iterations (body_of trusted ~gated:false) in
  let gated = measure untrusted ~gated:true ~iterations (body_of untrusted ~gated:true) in
  { name; ungated_cycles_per_call = ungated; gated_cycles_per_call = gated;
    overhead_x = gated /. ungated }

let run ?(iterations = 20_000) () =
  [
    run_one ~iterations "Empty" (fun f ~gated:_ -> empty_body f);
    run_one ~iterations "Read-One" (fun f ~gated:_ -> read_one_body f);
    run_one ~iterations "Callback" (fun f ~gated -> callback_body f ~gated);
  ]

(* {2 The software-TLB microbench}

   A page-hot loop — the TLB's best case and the checked path's common
   case — run twice on identical machines, once with the TLB and once
   forced down the slow resolve path.  Simulated cycles must agree
   exactly (the TLB is architecturally invisible); only host wall-clock
   differs, and the ratio is the reported speedup. *)

type tlb_result = {
  pages : int;
  iters : int;
  wall_on_s : float;
  wall_off_s : float;
  speedup : float;
  cycles_on : int;
  cycles_off : int;
  tlb : Sim.Tlb.stats;
}

let tlb_base = 0x4000_0000

let tlb_machine ~tlb ~pages =
  let machine = Sim.Machine.create ~tlb () in
  (match
     Vmm.Page_table.map_now machine.Sim.Machine.page_table ~base:tlb_base
       ~size:(pages * Vmm.Layout.page_size) ~prot:Vmm.Prot.read_write
       ~pkey:Mpk.Pkey.default
   with
  | Ok () -> ()
  | Error msg -> failwith ("Workloads.Microbench: " ^ msg));
  machine

(* Each iteration reads and rewrites one u64 in every page of the working
   set, so with [pages] <= the TLB size every access after the first
   round is a hit. *)
let tlb_workload machine ~pages ~iters =
  for _ = 1 to iters do
    for p = 0 to pages - 1 do
      let addr = tlb_base + (p * Vmm.Layout.page_size) in
      let v = Sim.Machine.read_u64 machine addr in
      Sim.Machine.write_u64 machine addr (v + 1)
    done
  done

let tlb_run ~tlb ~pages ~iters =
  let machine = tlb_machine ~tlb ~pages in
  (* One warm-up round so both variants start page-hot. *)
  tlb_workload machine ~pages ~iters:1;
  let start = Unix.gettimeofday () in
  tlb_workload machine ~pages ~iters;
  let wall = Unix.gettimeofday () -. start in
  (wall, Sim.Machine.cycles machine, Sim.Machine.tlb_stats machine)

let tlb_hot ?(pages = 8) ?(iters = 200_000) () =
  let wall_off_s, cycles_off, _ = tlb_run ~tlb:false ~pages ~iters in
  let wall_on_s, cycles_on, stats = tlb_run ~tlb:true ~pages ~iters in
  {
    pages;
    iters;
    wall_on_s;
    wall_off_s;
    speedup = (if wall_on_s > 0.0 then wall_off_s /. wall_on_s else 0.0);
    cycles_on;
    cycles_off;
    tlb = stats;
  }

let sweep ~loop_counts ?(iterations = 5_000) () =
  List.map
    (fun loops ->
      let r = run_one ~iterations (Printf.sprintf "work-%d" loops)
          (fun f ~gated:_ -> work_body f ~loops)
      in
      (loops, r.overhead_x))
    loop_counts
