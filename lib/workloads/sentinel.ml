(* The bench regression sentinel.

   A small fixed set of probe workloads, each deterministic in simulated
   cycles, run against a checked-in baseline (BENCH_BASELINE.json).  The
   comparison rules follow what the simulator guarantees:

   - simulated cycles and gate transitions are deterministic, so ANY
     drift against the baseline is a real behavioural change (a perf
     regression or an unacknowledged improvement) and is flagged exactly;
   - host wall-clock is machine-dependent, so it only warns, and only
     past a generous tolerance factor.

   The baseline file is schema-versioned and stamped with the commit that
   produced it, so `bench --compare` output can always say what it was
   diffed against. *)

let schema_version = "pkru-safe.bench-baseline/1"

type probe_result = {
  p_name : string;
  p_tier : string;
  p_cycles : int;
  p_transitions : int;
  p_wall_s : float;
}

(* --- the probe set --- *)

let page = Dom_scripts.page ~rows:6

let bench name script = Bench_def.bench ~page name script

type probe = {
  name : string;
  bench : Bench_def.bench;
  mode : Pkru_safe.Config.mode;
  mitigation : Runtime.Mitigator.policy option;
  census_every : int option;
  tier : Engine.tier;
}

let tier_name = function
  | Engine.Ast_tier -> "ast"
  | Engine.Bytecode_tier -> "bytecode"
  | Engine.Threaded_tier -> "threaded"

(* Eight probes spanning the perf-relevant axes: gate-bound DOM traffic,
   DOM construction, a compute kernel where gates are rare, an engine-
   heavy benchmark, the mitigator's interposition cost, the heap census
   (whose cycles must stay exactly equal to the uncensused dom-attr
   probe — the baseline pins the census's architectural invisibility),
   and the two bytecode dispatch tiers (whose cycles must stay exactly
   equal to each other — the baseline pins the fast tier's architectural
   invisibility the same way). *)
let probes =
  [
    {
      name = "dom-attr:mpk";
      bench = bench "dom-attr" (Dom_scripts.dom_attr ~iters:40);
      mode = Pkru_safe.Config.Mpk;
      mitigation = None;
      census_every = None;
      tier = Engine.Ast_tier;
    };
    {
      name = "dom-create:mpk";
      bench = bench "dom-create" (Dom_scripts.dom_create ~iters:24);
      mode = Pkru_safe.Config.Mpk;
      mitigation = None;
      census_every = None;
      tier = Engine.Ast_tier;
    };
    {
      name = "fft:base";
      bench = bench "fft" (Kernels.fft ~n:64);
      mode = Pkru_safe.Config.Base;
      mitigation = None;
      census_every = None;
      tier = Engine.Ast_tier;
    };
    {
      name = "richards:mpk";
      bench = bench "richards" (Kernels.richards ~iterations:12);
      mode = Pkru_safe.Config.Mpk;
      mitigation = None;
      census_every = None;
      tier = Engine.Ast_tier;
    };
    {
      name = "dom-attr:mpk:emulate";
      bench = bench "dom-attr-mitigated" (Dom_scripts.dom_attr ~iters:40);
      mode = Pkru_safe.Config.Mpk;
      mitigation = Some Runtime.Mitigator.Emulate;
      census_every = None;
      tier = Engine.Ast_tier;
    };
    {
      name = "dom-attr:mpk:census";
      bench = bench "dom-attr-censused" (Dom_scripts.dom_attr ~iters:40);
      mode = Pkru_safe.Config.Mpk;
      mitigation = None;
      census_every = Some 64;
      tier = Engine.Ast_tier;
    };
    {
      name = "richards:bc-ref";
      bench = bench "richards-bc-ref" (Kernels.richards ~iterations:12);
      mode = Pkru_safe.Config.Mpk;
      mitigation = None;
      census_every = None;
      tier = Engine.Bytecode_tier;
    };
    {
      name = "richards:bc-threaded";
      bench = bench "richards-bc-threaded" (Kernels.richards ~iterations:12);
      mode = Pkru_safe.Config.Mpk;
      mitigation = None;
      census_every = None;
      tier = Engine.Threaded_tier;
    };
  ]

let probe_names = List.map (fun p -> p.name) probes

(* Probe pairs the baseline pins cycle-equal: each optimisation's
   architectural invisibility, expressed as data.  Checked by
   [twin_mismatches] on every fresh run too, so a divergence is caught
   even before a baseline comparison. *)
let twin_pairs =
  [
    ("dom-attr:mpk", "dom-attr:mpk:emulate");
    ("dom-attr:mpk", "dom-attr:mpk:census");
    ("richards:bc-ref", "richards:bc-threaded");
  ]

let twin_mismatches results =
  let find n = List.find_opt (fun r -> r.p_name = n) results in
  List.filter
    (fun (a, b) ->
      match (find a, find b) with
      | Some ra, Some rb ->
        ra.p_cycles <> rb.p_cycles || ra.p_transitions <> rb.p_transitions
      | _ -> false)
    twin_pairs

let run_probe p =
  let profile =
    Runner.profile_suite { Bench_def.suite_name = "sentinel"; benches = [ p.bench ] }
  in
  let t0 = Unix.gettimeofday () in
  let m =
    Runner.run_config ?mitigation:p.mitigation ?census_every:p.census_every
      ~engine_tier:p.tier ~mode:p.mode ~profile p.bench
  in
  let wall = Unix.gettimeofday () -. t0 in
  {
    p_name = p.name;
    p_tier = tier_name p.tier;
    p_cycles = m.Runner.cycles;
    p_transitions = m.Runner.transitions;
    p_wall_s = wall;
  }

let run_probes () = List.map run_probe probes

(* --- commit stamping --- *)

(* `git rev-parse HEAD`, tolerating environments with no git or no repo:
   artifacts are still valid, just unstamped. *)
let commit_hash () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when String.length line >= 7 -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

(* --- baseline (de)serialisation --- *)

let result_to_json r =
  let open Util.Json in
  Obj
    [
      ("name", String r.p_name);
      ("tier", String r.p_tier);
      ("cycles", Int r.p_cycles);
      ("transitions", Int r.p_transitions);
      ("wall_s", Float r.p_wall_s);
    ]

let result_of_json j =
  let open Util.Json in
  {
    p_name = to_str (member "name" j);
    p_tier =
      (match member "tier" j with
      | String s -> s
      | _ | (exception Not_found) -> "ast" (* pre-tier baselines *));
    p_cycles = to_int (member "cycles" j);
    p_transitions = to_int (member "transitions" j);
    p_wall_s = to_float (member "wall_s" j);
  }

let baseline_json ?commit results =
  let open Util.Json in
  Obj
    [
      ("schema", String schema_version);
      ("commit", String (match commit with Some c -> c | None -> commit_hash ()));
      ("probes", List (List.map result_to_json results));
    ]

let baseline_of_json j =
  let open Util.Json in
  (match member "schema" j with
  | String s when s = schema_version -> ()
  | String s ->
    invalid_arg
      (Printf.sprintf "Sentinel: baseline schema %S, this build expects %S" s schema_version)
  | _ -> invalid_arg "Sentinel: baseline has no schema field"
  | exception Not_found -> invalid_arg "Sentinel: baseline has no schema field");
  let commit =
    match member "commit" j with String s -> s | _ | (exception Not_found) -> "unknown"
  in
  (commit, List.map result_of_json (to_list (member "probes" j)))

(* --- comparison --- *)

type verdict =
  | Match
  | Cycle_drift of { base_cycles : int; base_transitions : int }
  | Wall_slow of { base_wall_s : float; ratio : float }
  | Missing_in_baseline
  | Missing_in_run

let is_regression = function
  | Cycle_drift _ | Missing_in_run -> true
  | Match | Wall_slow _ | Missing_in_baseline -> false

let is_warning = function
  | Wall_slow _ | Missing_in_baseline -> true
  | Match | Cycle_drift _ | Missing_in_run -> false

let default_wall_tolerance = 2.5

let compare_results ?(wall_tolerance = default_wall_tolerance) ~baseline fresh =
  let verdict_for (b : probe_result) (f : probe_result) =
    if b.p_cycles <> f.p_cycles || b.p_transitions <> f.p_transitions then
      Cycle_drift { base_cycles = b.p_cycles; base_transitions = b.p_transitions }
    else begin
      (* Guard against a zero/garbage baseline wall time, and require an
         absolute slowdown too: the probes take ~1ms, where a ratio alone
         would warn on scheduler noise. *)
      let ratio = if b.p_wall_s > 1e-9 then f.p_wall_s /. b.p_wall_s else 1.0 in
      if ratio > wall_tolerance && f.p_wall_s -. b.p_wall_s > 0.05 then
        Wall_slow { base_wall_s = b.p_wall_s; ratio }
      else Match
    end
  in
  let fresh_verdicts =
    List.map
      (fun (f : probe_result) ->
        match List.find_opt (fun (b : probe_result) -> b.p_name = f.p_name) baseline with
        | None -> (f.p_name, f, Missing_in_baseline)
        | Some b -> (f.p_name, f, verdict_for b f))
      fresh
  in
  let missing =
    List.filter_map
      (fun (b : probe_result) ->
        if List.exists (fun (f : probe_result) -> f.p_name = b.p_name) fresh then None
        else Some (b.p_name, b, Missing_in_run))
      baseline
  in
  fresh_verdicts @ missing

let render_comparison ~commit verdicts =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "bench --compare against baseline %s\n" commit);
  List.iter
    (fun (name, (r : probe_result), verdict) ->
      let line =
        match verdict with
        | Match ->
          Printf.sprintf "  ok    %-22s %10d cycles  %5d transitions  %.3fs" name r.p_cycles
            r.p_transitions r.p_wall_s
        | Cycle_drift { base_cycles; base_transitions } ->
          Printf.sprintf
            "  DRIFT %-22s cycles %d -> %d (%+d), transitions %d -> %d — deterministic \
             simulation changed"
            name base_cycles r.p_cycles (r.p_cycles - base_cycles) base_transitions
            r.p_transitions
        | Wall_slow { base_wall_s; ratio } ->
          Printf.sprintf
            "  warn  %-22s host wall %.3fs vs baseline %.3fs (%.1fx > tolerance) — \
             machine-dependent, not gating"
            name r.p_wall_s base_wall_s ratio
        | Missing_in_baseline ->
          Printf.sprintf "  warn  %-22s not in baseline (new probe?) — re-generate with \
                          --baseline-out" name
        | Missing_in_run -> Printf.sprintf "  DRIFT %-22s in baseline but not produced by this run" name
      in
      Buffer.add_string buf (line ^ "\n"))
    verdicts;
  let regressions = List.filter (fun (_, _, v) -> is_regression v) verdicts in
  let warnings = List.filter (fun (_, _, v) -> is_warning v) verdicts in
  Buffer.add_string buf
    (Printf.sprintf "%d probes: %d ok, %d drift, %d warnings\n" (List.length verdicts)
       (List.length verdicts - List.length regressions - List.length warnings)
       (List.length regressions) (List.length warnings));
  Buffer.contents buf

let has_regression verdicts = List.exists (fun (_, _, v) -> is_regression v) verdicts
